package stubby_test

import (
	"runtime"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
)

// TestDeprecatedWrappersCloseTheirSessions: the package-level Run /
// Profile / Optimize / EstimateCost wrappers build throwaway sessions;
// each must close its session on every path, so repeated wrapper calls
// leave the process's goroutine count where it started (a session close
// drains the admission queue's worker pool).
func TestDeprecatedWrappersCloseTheirSessions(t *testing.T) {
	wl := tinyWorkload(t, "IR")

	// One warm-up pass so lazily initialized runtime state (scheduler,
	// finalizer goroutines) is excluded from the growth measurement.
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		if _, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), wl.Workflow); err != nil {
			t.Fatal(err)
		}
		if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{RRSEvals: 10}); err != nil {
			t.Fatal(err)
		}
		if _, err := stubby.EstimateCost(wl.Cluster, wl.Workflow); err != nil {
			t.Fatal(err)
		}
	}

	// Drained workers exit asynchronously; poll briefly before judging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across 20 wrapper calls; throwaway sessions are leaking", base, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
