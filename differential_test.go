package stubby_test

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby"
)

// The differential regression suite proves the estimate cache transparent:
// for every paper workload × every registered planner, optimization with a
// shared, concurrently-used cache returns byte-identical plans and equal
// estimated costs to optimization without one — including under
// Parallelism > 1 (CI runs this file under -race). Any fingerprint
// collision, stale entry, remapping slip, or cross-workflow
// cross-pollination through the shared cache shows up here as a plan or
// cost diff.

// differentialSize keeps the 8-workload × all-planner matrix fast while
// still exercising every transformation the workloads trigger.
const differentialSize = 0.1

// differentialRRSEvals caps the configuration-search budget for the
// differential pairs. Transparency must hold at any budget, and both sides
// of every pair use the same budget, so a small one keeps the full matrix
// tractable under -race. The golden-snapshot suite covers the default
// budget.
const differentialRRSEvals = 40

// differentialWorkloads builds and profiles every paper workload once for
// the whole suite (profiling dominates runtime, and both sides of each
// differential pair must start from the same annotated plan).
var (
	diffOnce sync.Once
	diffWls  map[string]*stubby.Workload
)

func differentialWorkloads(t *testing.T) map[string]*stubby.Workload {
	t.Helper()
	diffOnce.Do(func() {
		diffWls = make(map[string]*stubby.Workload)
		for _, abbr := range stubby.Workloads() {
			diffWls[abbr] = profiledWorkload(t, abbr, differentialSize, 1)
		}
	})
	if diffWls == nil {
		t.Fatal("workload preparation failed earlier")
	}
	return diffWls
}

// disableIncremental lets CI run the whole differential suite under both
// estimation modes: unset, searches delta-estimate incrementally (the
// default); with STUBBY_DISABLE_INCREMENTAL set, every probe goes through
// the monolithic estimator. Transparency must hold either way.
func disableIncremental() bool {
	return os.Getenv("STUBBY_DISABLE_INCREMENTAL") != ""
}

// optimizeWith runs one Optimize for the differential pair. parallelism > 1
// engages the concurrent subplan search on the cached side.
func optimizeWith(t *testing.T, wl *stubby.Workload, planner string,
	cache *stubby.EstimateCache, parallelism int) *stubby.Result {
	t.Helper()
	opts := []stubby.SessionOption{
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithPlanner(planner),
		stubby.WithParallelism(parallelism),
		stubby.WithIncrementalEstimation(!disableIncremental()),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}),
	}
	if cache != nil {
		opts = append(opts, stubby.WithEstimateCache(cache))
	}
	sess, err := stubby.NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Optimize(context.Background(), wl.Workflow)
	if err != nil {
		t.Fatalf("%s on %s: %v", planner, wl.Abbr, err)
	}
	return res
}

// TestDifferentialCachedVsUncached is the full matrix: eight workloads ×
// every registered planner, uncached serial vs cached parallel. One cache
// is shared across the entire matrix, so reuse across workloads and
// planners must also stay transparent.
func TestDifferentialCachedVsUncached(t *testing.T) {
	wls := differentialWorkloads(t)
	names, err := func() ([]string, error) {
		s, err := stubby.NewSession()
		if err != nil {
			return nil, err
		}
		return s.Planners(), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	shared := stubby.NewEstimateCache(0)
	for _, abbr := range stubby.Workloads() {
		wl := wls[abbr]
		for _, planner := range names {
			t.Run(abbr+"/"+planner, func(t *testing.T) {
				uncached := optimizeWith(t, wl, planner, nil, 1)
				cached := optimizeWith(t, wl, planner, shared, 4)
				assertSamePlan(t, uncached, cached)
			})
		}
	}
	if st := shared.Stats(); st.Lookups() == 0 {
		t.Fatal("shared cache was never consulted")
	}
}

// TestDifferentialOptimizeAllSharedCache: a concurrent OptimizeAll fan-out
// over all eight workloads through one shared cache must match per-workflow
// uncached optimization, and a second fan-out re-optimizing two of them
// (every estimate already cached) must recompute nothing.
func TestDifferentialOptimizeAllSharedCache(t *testing.T) {
	wls := differentialWorkloads(t)
	abbrs := stubby.Workloads()
	var flows []*stubby.Workflow
	for _, abbr := range abbrs {
		flows = append(flows, wls[abbr].Workflow)
	}
	// Generous capacity so the repeat fan-out below is pure reuse (the
	// matrix test above already stresses transparency under eviction).
	cache := stubby.NewEstimateCache(1 << 19)
	cachedSess, err := stubby.NewSession(
		stubby.WithSeed(1),
		stubby.WithParallelism(4),
		stubby.WithEstimateCache(cache),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := cachedSess.OptimizeAll(context.Background(), flows...)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := cachedSess.EstimateCacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("shared cache saw no reuse across the fan-out: %+v", st)
	}
	if st.Evictions != 0 {
		t.Logf("note: %d evictions despite generous capacity", st.Evictions)
	}
	for i, abbr := range abbrs {
		uncachedSess, err := stubby.NewSession(stubby.WithSeed(1), stubby.WithParallelism(1),
			stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}))
		if err != nil {
			t.Fatal(err)
		}
		uncached, err := uncachedSess.Optimize(context.Background(), wls[abbr].Workflow)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(abbr, func(t *testing.T) {
			assertSamePlan(t, uncached, results[i])
		})
	}
	// Second fan-out over two already-optimized workflows: the search is
	// deterministic, so every estimate request replays and must hit.
	repeats, err := cachedSess.OptimizeAll(context.Background(), wls["IR"].Workflow, wls["BA"].Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evictions == 0 {
		for i, res := range repeats {
			if res.WhatIfComputed != 0 {
				t.Errorf("repeat %d recomputed %d estimates, want 0 (requests=%d)",
					i, res.WhatIfComputed, res.WhatIfCalls)
			}
		}
	}
	assertSamePlan(t, results[0], repeats[0])
	assertSamePlan(t, results[4], repeats[1])
}

// TestDifferentialIncrementalVsMonolithic pins the incremental estimator's
// end-to-end transparency directly: for every workload, a search whose
// probes delta-estimate through whatif.Prepared must choose a byte-identical
// plan at an equal cost to a search re-estimating every probe monolithically
// — the optimizer-level witness of the estimator's bitwise-equivalence
// contract (the flow/scheduling split, slot-pool snapshots, card
// memoization, and tail truncation all sit under this test).
func TestDifferentialIncrementalVsMonolithic(t *testing.T) {
	wls := differentialWorkloads(t)
	for _, abbr := range stubby.Workloads() {
		wl := wls[abbr]
		t.Run(abbr, func(t *testing.T) {
			run := func(incremental bool) *stubby.Result {
				sess, err := stubby.NewSession(
					stubby.WithCluster(wl.Cluster),
					stubby.WithSeed(1),
					stubby.WithParallelism(1),
					stubby.WithIncrementalEstimation(incremental),
					stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sess.Optimize(context.Background(), wl.Workflow)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			mono := run(false)
			incr := run(true)
			assertSamePlan(t, mono, incr)
			if mono.WhatIfCalls != incr.WhatIfCalls {
				t.Errorf("incremental estimation changed the search itself: %d vs %d requests",
					mono.WhatIfCalls, incr.WhatIfCalls)
			}
			if incr.FlowCards >= mono.FlowCards {
				t.Errorf("incremental path saved no flow work: %d vs %d cards",
					incr.FlowCards, mono.FlowCards)
			}
		})
	}
}

// assertSamePlan requires byte-identical exported plans and equal costs.
func assertSamePlan(t *testing.T, want, got *stubby.Result) {
	t.Helper()
	if want.EstimatedCost != got.EstimatedCost {
		t.Errorf("EstimatedCost diverged: uncached %.9f vs cached %.9f",
			want.EstimatedCost, got.EstimatedCost)
	}
	wb := exportBytes(t, want.Plan)
	gb := exportBytes(t, got.Plan)
	if !bytes.Equal(wb, gb) {
		t.Errorf("plans diverged:\n--- uncached (%d bytes)\n%.2000s\n--- cached (%d bytes)\n%.2000s",
			len(wb), wb, len(gb), gb)
	}
}
