package stubby

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// Client speaks the stubbyd wire protocol: it submits OptimizeRequests as
// versioned JSON documents, polls status, streams typed events, cancels,
// and retrieves results. Errors reconstruct the server's *Error taxonomy,
// so errors.Is(err, ErrKindOverloaded) works identically to in-process
// Submit. A Client is safe for concurrent use.
//
// Plans travel as black boxes (stage names, no function bodies): the
// Result.Plan a Client returns carries every annotation and can be costed,
// compared, and re-optimized, but not executed — exactly the paper's
// Figure 2 deployment, where the optimizer service never sees user code.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
	clientCounters
}

// ClientOption configures a Client under construction.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default:
// http.DefaultClient). Use it to set timeouts, transports, or tracing.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// NewClient builds a client for the stubbyd server at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "client", "", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, stubbyerr.New(stubbyerr.KindInvalid, "client", "", "",
			"base URL %q must be http or https", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// decodeHTTPError turns a non-2xx response into the server's structured
// error. Bodies that are not error envelopes degrade to ErrKindInternal.
func decodeHTTPError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env planio.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		return env.Error.Err()
	}
	return stubbyerr.New(stubbyerr.KindInternal, "http", "", "",
		"%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "http", "", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's deadline so the server can bound the job's
	// execution instead of computing a plan nobody is waiting for.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	c.requests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindUnavailable, "http", "", err)
	}
	return resp, nil
}

// ServiceStats is a stubbyd server's /statsz snapshot: queue occupancy
// plus the counters of the serving session's optional subsystems.
// EstimateCache and PlanStore are nil when the server runs without them.
type ServiceStats struct {
	// Status is "ok", or "draining" after shutdown began.
	Status string
	// Workers/QueueDepth describe the worker pool and admission bound;
	// Queued/Busy are point-in-time occupancy.
	Workers    int
	QueueDepth int
	Queued     int
	Busy       int
	// EstimateCache carries the estimate cache's counters, when attached.
	EstimateCache *EstimateCacheStats
	// PlanStore carries the plan store's counters, when attached.
	PlanStore *PlanStoreStats
	// ReuseCatalog carries the sub-plan reuse catalog's counters, when
	// attached.
	ReuseCatalog *ReuseCatalogStats
	// Journal carries the durable job journal's counters, when attached.
	Journal *JournalStats
	// Cluster carries the coordinator's cluster counters, when the server
	// runs with WithCoordinator.
	Cluster *ClusterStats
}

// Stats fetches the server's /statsz counters.
func (c *Client) Stats(ctx context.Context) (*ServiceStats, error) {
	var st *ServiceStats
	err := c.doRetry(ctx, http.MethodGet, "/statsz", nil, func(resp *http.Response) error {
		var doc planio.StatszDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return stubbyerr.WithKind(stubbyerr.KindInternal, "stats", "", err)
		}
		st = &ServiceStats{
			Status:     doc.Status,
			Workers:    doc.Queue.Workers,
			QueueDepth: doc.Queue.Depth,
			Queued:     doc.Queue.Queued,
			Busy:       doc.Queue.Busy,
		}
		if doc.EstCache != nil {
			st.EstimateCache = &EstimateCacheStats{Hits: doc.EstCache.Hits,
				Misses: doc.EstCache.Misses, Evictions: doc.EstCache.Evictions,
				Entries: doc.EstCache.Entries, Capacity: doc.EstCache.Capacity}
		}
		if doc.PlanStore != nil {
			stats := storeStatsFromDoc(doc.PlanStore)
			st.PlanStore = &stats
		}
		if doc.ReuseCatalog != nil {
			stats := reuseStatsFromDoc(doc.ReuseCatalog)
			st.ReuseCatalog = &stats
		}
		if doc.Journal != nil {
			stats := journalStatsFromDoc(doc.Journal)
			st.Journal = &stats
		}
		if doc.Cluster != nil {
			stats := clusterStatsFromDoc(*doc.Cluster)
			st.Cluster = &stats
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Submit encodes the request as a wire document, posts it, and returns a
// remote job bound to the server-assigned ID. Overload and drain
// rejections surface as ErrKindOverloaded / ErrKindUnavailable.
func (c *Client) Submit(ctx context.Context, req OptimizeRequest) (*RemoteJob, error) {
	if req.Workflow == nil {
		return nil, stubbyerr.New(stubbyerr.KindInvalid, "submit", "", "", "nil workflow")
	}
	body, err := planio.EncodeRequest(&planio.Request{
		Planner:            req.Planner,
		Seed:               req.Seed,
		DisableIncremental: req.DisableIncremental,
		Cluster:            req.Cluster,
		Plan:               req.Workflow,
	})
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "submit", req.Workflow.Name, err)
	}
	var ack planio.SubmitResponse
	err = c.doRetry(ctx, http.MethodPost, "/v1/jobs", body, func(resp *http.Response) error {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return stubbyerr.WithKind(stubbyerr.KindInternal, "submit", req.Workflow.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RemoteJob{c: c, id: ack.ID, workflow: req.Workflow.Name}, nil
}

// Job binds a RemoteJob to an already-known ID (e.g. persisted from an
// earlier Submit). The binding is not verified until the first call.
func (c *Client) Job(id string) *RemoteJob { return &RemoteJob{c: c, id: id} }

// JobStatus is a remote job's status snapshot.
type JobStatus struct {
	ID       string
	Workflow string
	Progress Progress
	// Err is the structured failure/cancellation cause for terminal
	// non-Done states, nil otherwise.
	Err error
}

// State returns the snapshot's lifecycle state.
func (s *JobStatus) State() JobState { return s.Progress.State }

// RemoteJob is the client-side handle to a job on a stubbyd server: the
// over-the-wire counterpart of OptimizeHandle. Methods take a context
// because every one is an HTTP call. A RemoteJob is safe for concurrent
// use — all fields are set at construction and never mutated (a job
// rebound with Client.Job carries no workflow name; its errors omit it).
type RemoteJob struct {
	c        *Client
	id       string
	workflow string
}

// ID returns the server-assigned job ID.
func (j *RemoteJob) ID() string { return j.id }

// Status fetches the job's state and progress snapshot.
func (j *RemoteJob) Status(ctx context.Context) (*JobStatus, error) {
	var st *JobStatus
	err := j.c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(j.id), nil,
		func(resp *http.Response) error {
			var derr error
			st, derr = j.decodeStatus(resp.Body)
			return derr
		})
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (j *RemoteJob) decodeStatus(r io.Reader) (*JobStatus, error) {
	var doc planio.StatusDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "status", j.workflow, err)
	}
	st, err := parseJobState(doc.State)
	if err != nil {
		return nil, err
	}
	return &JobStatus{
		ID:       doc.ID,
		Workflow: doc.Workflow,
		Progress: Progress{State: st, Units: doc.Units, Subplans: doc.Subplans,
			Improvements: doc.Improvements, BestCost: doc.BestCost},
		Err: doc.Error.Err(),
	}, nil
}

// Cancel requests cancellation server-side (see OptimizeHandle.Cancel for
// the semantics) and returns the status observed after the request.
// Cancellation is idempotent, so retrying it is safe.
func (j *RemoteJob) Cancel(ctx context.Context) (*JobStatus, error) {
	var st *JobStatus
	err := j.c.doRetry(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(j.id)+"/cancel", nil,
		func(resp *http.Response) error {
			var derr error
			st, derr = j.decodeStatus(resp.Body)
			return derr
		})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Events streams the job's typed events: the server replays the full
// stream from submission, then follows live; the channel closes after the
// terminal StateChangedEvent or when ctx ends. Unknown event types from a
// newer server are skipped. Under a retry policy the stream is resumable:
// a dropped connection reconnects with the server's ?from= cursor (the
// per-job event sequence number — the count of complete NDJSON lines
// received so far) and the replayed suffix is exactly the missed events,
// with no duplicates and no gaps.
func (j *RemoteJob) Events(ctx context.Context) (<-chan Event, error) {
	resp, err := j.connectEvents(ctx, 0)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event)
	if j.c.retry == nil {
		go j.pumpEvents(ctx, resp, ch)
	} else {
		go j.pumpResumable(ctx, resp, ch)
	}
	return ch, nil
}

// connectEvents opens the job's event stream at the given cursor,
// retrying transient connect failures under the retry policy (the stream
// itself, once open, is the caller's to drain).
func (j *RemoteJob) connectEvents(ctx context.Context, from int) (*http.Response, error) {
	path := "/v1/jobs/" + url.PathEscape(j.id) + "/events"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	attempts := 1
	if j.c.retry != nil {
		attempts = j.c.retry.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			j.c.retries.Add(1)
		}
		var retryAfter time.Duration
		resp, err := j.c.do(ctx, http.MethodGet, path, nil)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				return resp, nil
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			err = decodeHTTPError(resp)
			resp.Body.Close()
		}
		lastErr = err
		if j.c.retry == nil || attempt == attempts-1 || ctx.Err() != nil || !j.c.retryable(err) {
			return nil, lastErr
		}
		if !sleepCtx(ctx, j.c.retryDelay(attempt, retryAfter)) {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// pumpEvents drains one event-stream connection without resume: the
// no-policy behavior, where any drop simply ends the channel.
func (j *RemoteJob) pumpEvents(ctx context.Context, resp *http.Response, ch chan<- Event) {
	defer close(ch)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var doc planio.EventDoc
		if err := json.Unmarshal(line, &doc); err != nil {
			continue
		}
		ev, ok := eventFromDoc(&doc)
		if !ok {
			continue
		}
		select {
		case ch <- ev:
		case <-ctx.Done():
			return
		}
	}
}

// pumpResumable drains the event stream across reconnects, resuming each
// time at the cursor of complete lines already consumed. It stops at the
// job's terminal event (stream complete), on ctx end, or after
// MaxAttempts consecutive reconnects that made no progress (e.g. the job
// was recovered by a restarted server whose rebuilt event log is shorter
// than our cursor — Wait then falls back to status polling).
func (j *RemoteJob) pumpResumable(ctx context.Context, resp *http.Response, ch chan<- Event) {
	defer close(ch)
	cursor, stale := 0, 0
	for {
		read, terminal := j.drainStream(ctx, resp, ch)
		cursor += read
		if terminal || ctx.Err() != nil {
			return
		}
		if read == 0 {
			if stale++; stale >= j.c.retry.MaxAttempts {
				return
			}
		} else {
			stale = 0
		}
		next, err := j.connectEvents(ctx, cursor)
		if err != nil {
			return
		}
		j.c.resumes.Add(1)
		resp = next
	}
}

// drainStream consumes one event-stream connection, forwarding decoded
// events. It returns how many complete lines it consumed — the cursor
// advance; the server's per-job event sequence is exactly the NDJSON line
// index — and whether the stream reached the job's terminal event.
// A line that fails to unmarshal is a torn tail from a mid-line cut: it is
// not counted, so the resume replays it whole.
func (j *RemoteJob) drainStream(ctx context.Context, resp *http.Response, ch chan<- Event) (lines int, terminal bool) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var doc planio.EventDoc
		if err := json.Unmarshal(line, &doc); err != nil {
			return lines, false
		}
		lines++
		ev, ok := eventFromDoc(&doc)
		if !ok {
			// Unknown event type from a newer server: skipped, but it still
			// occupies a slot in the server's sequence, so it counts.
			continue
		}
		select {
		case ch <- ev:
		case <-ctx.Done():
			return lines, false
		}
		if st, ok := ev.(StateChangedEvent); ok && st.State.Terminal() {
			terminal = true
		}
	}
	return lines, terminal
}

// Result fetches the finished job's result document and decodes it,
// verifying the plan fingerprint the server stamped. An unfinished job
// yields ErrKindConflict; a failed or canceled one yields its structured
// error.
func (j *RemoteJob) Result(ctx context.Context) (*Result, error) {
	var res *Result
	err := j.c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(j.id)+"/result", nil,
		func(resp *http.Response) error {
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				// A cut mid-body is transient: the journal-era server will
				// serve the identical document again.
				return stubbyerr.WithKind(stubbyerr.KindUnavailable, "result", j.workflow, err)
			}
			doc, err := planio.DecodeResult(body)
			if err != nil {
				return stubbyerr.WithKind(stubbyerr.KindInternal, "result", j.workflow, err)
			}
			res = &Result{
				Plan:           doc.Plan,
				EstimatedCost:  doc.EstimatedCost,
				Duration:       time.Duration(doc.DurationMS * float64(time.Millisecond)),
				WhatIfCalls:    doc.WhatIfCalls,
				WhatIfComputed: doc.WhatIfComputed,
				FlowCards:      doc.FlowCards,
				Robustness:     robustnessFromDoc(doc.Robustness),
				ReusedSubplans: doc.ReusedSubplans,
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Wait blocks until the job is terminal and returns its outcome, following
// the event stream (one long poll, no timer loop). Like
// OptimizeHandle.Wait: the Result for StateDone, the structured error for
// StateFailed/StateCanceled, ctx's error if it ends first. Under a retry
// policy Wait survives connection drops and even a server crash/restart:
// the event stream resumes at its cursor, and if the stream cannot be
// resumed Wait degrades to polling Status until the job lands.
func (j *RemoteJob) Wait(ctx context.Context) (*Result, error) {
	events, err := j.Events(ctx)
	if err != nil {
		return nil, err
	}
	var terminal *StateChangedEvent
	for ev := range events {
		if sc, ok := ev.(StateChangedEvent); ok && sc.State.Terminal() {
			terminal = &sc
			break
		}
	}
	if terminal != nil {
		return j.finish(ctx, terminal.State, terminal.Err, terminal.Workflow)
	}
	// Stream ended without a terminal transition: ctx expired or the
	// connection dropped mid-flight.
	if err := ctx.Err(); err != nil {
		return nil, stubbyerr.From("wait", j.workflow, err)
	}
	if j.c.retry == nil {
		return nil, stubbyerr.New(stubbyerr.KindUnavailable, "wait", j.workflow, "",
			"event stream for job %s ended before the job finished", j.id)
	}
	// Under a retry policy the stream giving out is not the end: the job is
	// still running somewhere (possibly re-enqueued by a restarted server
	// whose rebuilt event log is shorter than our cursor). Poll status until
	// terminal, riding out transient unavailability.
	for {
		st, err := j.Status(ctx)
		if err != nil {
			if !j.c.retryable(err) {
				return nil, err
			}
		} else if st.State().Terminal() {
			return j.finish(ctx, st.State(), st.Err, st.Workflow)
		}
		if !sleepCtx(ctx, 50*time.Millisecond) {
			return nil, stubbyerr.From("wait", j.workflow, ctx.Err())
		}
	}
}

// finish converts a terminal state into Wait's outcome: the Result for
// Done, the structured cause for Failed/Canceled.
func (j *RemoteJob) finish(ctx context.Context, state JobState, cause error, workflow string) (*Result, error) {
	switch state {
	case StateDone:
		return j.Result(ctx)
	case StateCanceled:
		return nil, stubbyerr.WithKind(stubbyerr.KindCanceled, "optimize", workflow,
			fmt.Errorf("job %s canceled: %w", j.id, context.Canceled))
	default: // StateFailed
		if cause != nil {
			return nil, cause
		}
		return nil, stubbyerr.New(stubbyerr.KindInternal, "optimize", workflow, "",
			"job %s failed", j.id)
	}
}
