package stubby

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// Client speaks the stubbyd wire protocol: it submits OptimizeRequests as
// versioned JSON documents, polls status, streams typed events, cancels,
// and retrieves results. Errors reconstruct the server's *Error taxonomy,
// so errors.Is(err, ErrKindOverloaded) works identically to in-process
// Submit. A Client is safe for concurrent use.
//
// Plans travel as black boxes (stage names, no function bodies): the
// Result.Plan a Client returns carries every annotation and can be costed,
// compared, and re-optimized, but not executed — exactly the paper's
// Figure 2 deployment, where the optimizer service never sees user code.
type Client struct {
	base string
	hc   *http.Client
}

// ClientOption configures a Client under construction.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default:
// http.DefaultClient). Use it to set timeouts, transports, or tracing.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// NewClient builds a client for the stubbyd server at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "client", "", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, stubbyerr.New(stubbyerr.KindInvalid, "client", "", "",
			"base URL %q must be http or https", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// decodeHTTPError turns a non-2xx response into the server's structured
// error. Bodies that are not error envelopes degrade to ErrKindInternal.
func decodeHTTPError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env planio.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		return env.Error.Err()
	}
	return stubbyerr.New(stubbyerr.KindInternal, "http", "", "",
		"%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "http", "", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindUnavailable, "http", "", err)
	}
	return resp, nil
}

// ServiceStats is a stubbyd server's /statsz snapshot: queue occupancy
// plus the counters of the serving session's optional subsystems.
// EstimateCache and PlanStore are nil when the server runs without them.
type ServiceStats struct {
	// Status is "ok", or "draining" after shutdown began.
	Status string
	// Workers/QueueDepth describe the worker pool and admission bound;
	// Queued/Busy are point-in-time occupancy.
	Workers    int
	QueueDepth int
	Queued     int
	Busy       int
	// EstimateCache carries the estimate cache's counters, when attached.
	EstimateCache *EstimateCacheStats
	// PlanStore carries the plan store's counters, when attached.
	PlanStore *PlanStoreStats
}

// Stats fetches the server's /statsz counters.
func (c *Client) Stats(ctx context.Context) (*ServiceStats, error) {
	resp, err := c.do(ctx, http.MethodGet, "/statsz", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var doc planio.StatszDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "stats", "", err)
	}
	st := &ServiceStats{
		Status:     doc.Status,
		Workers:    doc.Queue.Workers,
		QueueDepth: doc.Queue.Depth,
		Queued:     doc.Queue.Queued,
		Busy:       doc.Queue.Busy,
	}
	if doc.EstCache != nil {
		st.EstimateCache = &EstimateCacheStats{Hits: doc.EstCache.Hits,
			Misses: doc.EstCache.Misses, Evictions: doc.EstCache.Evictions,
			Entries: doc.EstCache.Entries, Capacity: doc.EstCache.Capacity}
	}
	if doc.PlanStore != nil {
		stats := storeStatsFromDoc(doc.PlanStore)
		st.PlanStore = &stats
	}
	return st, nil
}

// Submit encodes the request as a wire document, posts it, and returns a
// remote job bound to the server-assigned ID. Overload and drain
// rejections surface as ErrKindOverloaded / ErrKindUnavailable.
func (c *Client) Submit(ctx context.Context, req OptimizeRequest) (*RemoteJob, error) {
	if req.Workflow == nil {
		return nil, stubbyerr.New(stubbyerr.KindInvalid, "submit", "", "", "nil workflow")
	}
	body, err := planio.EncodeRequest(&planio.Request{
		Planner:            req.Planner,
		Seed:               req.Seed,
		DisableIncremental: req.DisableIncremental,
		Cluster:            req.Cluster,
		Plan:               req.Workflow,
	})
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "submit", req.Workflow.Name, err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeHTTPError(resp)
	}
	var ack planio.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "submit", req.Workflow.Name, err)
	}
	return &RemoteJob{c: c, id: ack.ID, workflow: req.Workflow.Name}, nil
}

// Job binds a RemoteJob to an already-known ID (e.g. persisted from an
// earlier Submit). The binding is not verified until the first call.
func (c *Client) Job(id string) *RemoteJob { return &RemoteJob{c: c, id: id} }

// JobStatus is a remote job's status snapshot.
type JobStatus struct {
	ID       string
	Workflow string
	Progress Progress
	// Err is the structured failure/cancellation cause for terminal
	// non-Done states, nil otherwise.
	Err error
}

// State returns the snapshot's lifecycle state.
func (s *JobStatus) State() JobState { return s.Progress.State }

// RemoteJob is the client-side handle to a job on a stubbyd server: the
// over-the-wire counterpart of OptimizeHandle. Methods take a context
// because every one is an HTTP call. A RemoteJob is safe for concurrent
// use — all fields are set at construction and never mutated (a job
// rebound with Client.Job carries no workflow name; its errors omit it).
type RemoteJob struct {
	c        *Client
	id       string
	workflow string
}

// ID returns the server-assigned job ID.
func (j *RemoteJob) ID() string { return j.id }

// Status fetches the job's state and progress snapshot.
func (j *RemoteJob) Status(ctx context.Context) (*JobStatus, error) {
	resp, err := j.c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(j.id), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	return j.decodeStatus(resp.Body)
}

func (j *RemoteJob) decodeStatus(r io.Reader) (*JobStatus, error) {
	var doc planio.StatusDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "status", j.workflow, err)
	}
	st, err := parseJobState(doc.State)
	if err != nil {
		return nil, err
	}
	return &JobStatus{
		ID:       doc.ID,
		Workflow: doc.Workflow,
		Progress: Progress{State: st, Units: doc.Units, Subplans: doc.Subplans,
			Improvements: doc.Improvements, BestCost: doc.BestCost},
		Err: doc.Error.Err(),
	}, nil
}

// Cancel requests cancellation server-side (see OptimizeHandle.Cancel for
// the semantics) and returns the status observed after the request.
func (j *RemoteJob) Cancel(ctx context.Context) (*JobStatus, error) {
	resp, err := j.c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(j.id)+"/cancel", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	return j.decodeStatus(resp.Body)
}

// Events streams the job's typed events: the server replays the full
// stream from submission, then follows live; the channel closes after the
// terminal StateChangedEvent or when ctx ends. Unknown event types from a
// newer server are skipped.
func (j *RemoteJob) Events(ctx context.Context) (<-chan Event, error) {
	resp, err := j.c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(j.id)+"/events", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeHTTPError(resp)
	}
	ch := make(chan Event)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var doc planio.EventDoc
			if err := json.Unmarshal(line, &doc); err != nil {
				continue
			}
			ev, ok := eventFromDoc(&doc)
			if !ok {
				continue
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// Result fetches the finished job's result document and decodes it,
// verifying the plan fingerprint the server stamped. An unfinished job
// yields ErrKindConflict; a failed or canceled one yields its structured
// error.
func (j *RemoteJob) Result(ctx context.Context) (*Result, error) {
	resp, err := j.c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(j.id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindUnavailable, "result", j.workflow, err)
	}
	doc, err := planio.DecodeResult(body)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "result", j.workflow, err)
	}
	return &Result{
		Plan:           doc.Plan,
		EstimatedCost:  doc.EstimatedCost,
		Duration:       time.Duration(doc.DurationMS * float64(time.Millisecond)),
		WhatIfCalls:    doc.WhatIfCalls,
		WhatIfComputed: doc.WhatIfComputed,
		FlowCards:      doc.FlowCards,
		Robustness:     robustnessFromDoc(doc.Robustness),
	}, nil
}

// Wait blocks until the job is terminal and returns its outcome, following
// the event stream (one long poll, no timer loop). Like
// OptimizeHandle.Wait: the Result for StateDone, the structured error for
// StateFailed/StateCanceled, ctx's error if it ends first.
func (j *RemoteJob) Wait(ctx context.Context) (*Result, error) {
	events, err := j.Events(ctx)
	if err != nil {
		return nil, err
	}
	var terminal *StateChangedEvent
	for ev := range events {
		if sc, ok := ev.(StateChangedEvent); ok && sc.State.Terminal() {
			terminal = &sc
			break
		}
	}
	if terminal == nil {
		// Stream ended without a terminal transition: ctx expired or the
		// connection dropped mid-flight.
		if err := ctx.Err(); err != nil {
			return nil, stubbyerr.From("wait", j.workflow, err)
		}
		return nil, stubbyerr.New(stubbyerr.KindUnavailable, "wait", j.workflow, "",
			"event stream for job %s ended before the job finished", j.id)
	}
	switch terminal.State {
	case StateDone:
		return j.Result(ctx)
	case StateCanceled:
		return nil, stubbyerr.WithKind(stubbyerr.KindCanceled, "optimize", terminal.Workflow,
			fmt.Errorf("job %s canceled: %w", j.id, context.Canceled))
	default: // StateFailed
		if terminal.Err != nil {
			return nil, terminal.Err
		}
		return nil, stubbyerr.New(stubbyerr.KindInternal, "optimize", terminal.Workflow, "",
			"job %s failed", j.id)
	}
}
