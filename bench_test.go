// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each benchmark drives the experiment harness and prints the
// same rows/series the paper reports; absolute numbers come from the
// simulated substrate, so the shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction target (EXPERIMENTS.md
// records paper-vs-measured for each).
//
// Run with:
//
//	go test -bench=. -benchmem
package stubby_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/bench"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// benchConfig keeps benchmark runs quick while preserving paper-scale
// virtual dataset sizes.
var benchConfig = bench.Config{SizeFactor: 0.2, Seed: 1}

var printOnce sync.Map

func printHeader(b *testing.B, key, title string) bool {
	_, loaded := printOnce.LoadOrStore(key, true)
	if !loaded {
		fmt.Printf("\n=== %s ===\n", title)
	}
	return !loaded
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		rows, err := h.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "t1", "Table 1: workflows and data sizes") {
			for _, r := range rows {
				fmt.Printf("%-3s %-28s paper=%4.0fGB simulated=%4.0fGB records=%7d jobs=%d\n",
					r.Abbr, r.Title, r.PaperGB, r.VirtualGB, r.Records, r.Jobs)
			}
		}
		if len(rows) != 8 {
			b.Fatalf("expected 8 workloads, got %d", len(rows))
		}
	}
}

func BenchmarkFigure5Packing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		rows, err := h.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f5", "Figure 5: packing improvement and degradation") {
			for _, r := range rows {
				fmt.Printf("%-15s %-12s no-packing=%8.1fs packed=%8.1fs speedup=%.2fx\n",
					r.Transformation, r.Case, r.Unpacked, r.Packed, r.Speedup)
			}
		}
		for _, r := range rows {
			switch r.Case {
			case "improvement":
				if r.Speedup <= 1 {
					b.Errorf("%s improvement case lost: %.2fx", r.Transformation, r.Speedup)
				}
			case "degradation":
				if r.Speedup >= 1 {
					b.Errorf("%s degradation case won: %.2fx", r.Transformation, r.Speedup)
				}
			}
		}
	}
}

func reportSpeedups(b *testing.B, key, title string, runs map[string][]bench.PlannerRun) {
	if printHeader(b, key, title) {
		for _, abbr := range workloads.Abbrs() {
			for _, r := range runs[abbr] {
				fmt.Printf("%-3s %-11s %d jobs  %9.1fs  %5.2fx vs Baseline\n",
					abbr, r.Planner, r.Jobs, r.Makespan, r.Speedup)
			}
		}
	}
	// Aggregate metric: Stubby's geometric-mean speedup across workflows.
	prod, n := 1.0, 0
	for _, abbr := range workloads.Abbrs() {
		for _, r := range runs[abbr] {
			if r.Planner == "Stubby" {
				prod *= r.Speedup
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(math.Pow(prod, 1/float64(n)), "stubby-geomean-speedup")
	}
}

func BenchmarkFigure11TransformationGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		runs, err := h.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedups(b, "f11", "Figure 11: Stubby vs Vertical vs Horizontal (speedup over Baseline)", runs)
	}
}

func BenchmarkFigure12StateOfTheArt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		runs, err := h.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedups(b, "f12", "Figure 12: Stubby vs Starfish vs YSmart vs MRShare (speedup over Baseline)", runs)
	}
}

func BenchmarkFigure13OptimizationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		rows, err := h.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f13", "Figure 13: optimization overhead") {
			for _, r := range rows {
				fmt.Printf("%-3s optimize=%7.0fms workflow=%9.0fs overhead=%.4f%%\n",
					r.Workload, r.OptimizeMS, r.WorkflowSec, r.OverheadPct)
			}
		}
		var worst float64
		for _, r := range rows {
			if r.OverheadPct > worst {
				worst = r.OverheadPct
			}
		}
		b.ReportMetric(worst, "worst-overhead-%")
	}
}

func BenchmarkFigure14EstimateAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		points, err := h.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f14", "Figure 14: actual vs estimated normalized cost (IR, first unit)") {
			for _, p := range points {
				fmt.Printf("est=%.3f actual=%.3f  %s\n", p.EstimatedNorm, p.ActualNorm, p.Description)
			}
		}
		if len(points) < 3 {
			b.Fatalf("too few subplans: %d", len(points))
		}
		// The paper's takeaway: estimates identify the best and worst
		// subplans. Check rank agreement at the extremes.
		bestEst, worstEst, bestAct, worstAct := 0, 0, 0, 0
		for i, p := range points {
			if p.EstimatedNorm < points[bestEst].EstimatedNorm {
				bestEst = i
			}
			if p.EstimatedNorm > points[worstEst].EstimatedNorm {
				worstEst = i
			}
			if p.ActualNorm < points[bestAct].ActualNorm {
				bestAct = i
			}
			if p.ActualNorm > points[worstAct].ActualNorm {
				worstAct = i
			}
		}
		// Best-estimated subplan should be within 25% of the actual best.
		if points[bestEst].ActualNorm > points[bestAct].ActualNorm*1.25 {
			b.Errorf("estimated-best subplan is far from actual best: %.3f vs %.3f",
				points[bestEst].ActualNorm, points[bestAct].ActualNorm)
		}
	}
}

// --- ablation benchmarks -----------------------------------------------------
//
// These regenerate the ablation tables for the design choices DESIGN.md
// calls out: phase ordering (Section 4), configuration-search strategy
// (Section 4.2), optimization-unit scope (Section 4.1), and profile
// sampling fraction (Sections 2.2/5). They use a reduced workload subset
// so a full -bench=. run stays tractable.

var ablationWorkloads = []string{"IR", "BR", "BA"}

func reportAblation(b *testing.B, key, title string, runs map[string][]bench.AblationRun) {
	if printHeader(b, key, title) {
		for _, abbr := range ablationWorkloads {
			for _, r := range runs[abbr] {
				fmt.Printf("%-3s %-13s %d jobs  %9.1fs  %5.2fx vs default  opt=%6.0fms\n",
					abbr, r.Variant, r.Jobs, r.Makespan, r.Speedup, r.OptimizeMS)
			}
		}
	}
}

func BenchmarkAblationPhaseOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		runs, err := h.AblationOrdering(ablationWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, "ab-ord", "Ablation: Vertical-then-Horizontal vs reversed", runs)
		// The paper's rationale (Section 4): on vertically-dominated
		// workflows, packing horizontally first blocks vertical packing.
		for _, r := range runs["IR"] {
			if r.Variant == "H-then-V" && r.Speedup > 1.02 {
				b.Errorf("reversed ordering beat the paper's ordering on IR: %.2fx", r.Speedup)
			}
		}
	}
}

func BenchmarkAblationConfigSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		runs, err := h.AblationSearch(ablationWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, "ab-sch", "Ablation: RRS vs uniform random vs no configuration search", runs)
		// Dropping configuration search entirely must not win meaningfully
		// anywhere. RRS minimizes the What-if estimate, so the measured
		// makespan can wobble a few percent either way on estimator error;
		// only flag wins beyond that noise band.
		for _, abbr := range ablationWorkloads {
			for _, r := range runs[abbr] {
				if r.Variant == "NoSearch" && r.Speedup > 1.15 {
					b.Errorf("%s: no-search beat RRS well beyond noise: %.2fx", abbr, r.Speedup)
				}
			}
		}
	}
}

func BenchmarkAblationUnitScope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		runs, err := h.AblationUnitScope(ablationWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		reportAblation(b, "ab-unit", "Ablation: dynamic optimization units vs one global unit", runs)
	}
}

func BenchmarkAblationProfileFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		rows, err := h.AblationProfileFraction("IR", []float64{0.05, 0.25, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ab-prof", "Ablation: profile sampling fraction (IR)") {
			for _, r := range rows {
				fmt.Printf("fraction=%.2f est=%8.1fs actual=%8.1fs err=%5.1f%% speedup=%.2fx\n",
					r.Fraction, r.Estimated, r.Actual, r.RelError*100, r.Speedup)
			}
		}
		// Plan quality should not collapse at small fractions: the chosen
		// plans must still beat the unoptimized workflow.
		for _, r := range rows {
			if r.Speedup < 1 {
				b.Errorf("fraction %.2f chose a plan slower than unoptimized: %.2fx", r.Fraction, r.Speedup)
			}
		}
	}
}

// --- estimate-cache benchmarks -----------------------------------------------
//
// These record What-if call counts per workload (so BENCH_*.json captures
// the cache's effect) and time the OptimizeAll fan-out with the cache off
// and on. "computed" counts full estimator runs; the difference between the
// off and on pairs is the work the fingerprint-keyed cache absorbed.

func BenchmarkWhatIfCallCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		rows, err := h.WhatIfCounts()
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "whatif", "What-if call counts per workload (cache off vs on vs repeat)") {
			for _, r := range rows {
				fmt.Printf("%-3s uncached=%7d/%5d cached: requests=%7d computed=%7d (%.1f%% absorbed) repeat=%d identical=%v\n",
					r.Workload, r.UncachedCalls, r.UncachedComputed, r.CachedRequests, r.CachedComputed,
					r.HitRatePct, r.RepeatComputed, r.PlansIdentical)
			}
		}
		var uncached, computed, repeat float64
		for _, r := range rows {
			if !r.PlansIdentical {
				b.Fatalf("%s: cache changed the chosen plan", r.Workload)
			}
			uncached += float64(r.UncachedComputed)
			computed += float64(r.CachedComputed)
			repeat += float64(r.RepeatComputed)
		}
		b.ReportMetric(uncached, "whatif-uncached")
		b.ReportMetric(computed, "whatif-cached-computed")
		b.ReportMetric(repeat, "whatif-repeat-computed")
		if uncached > 0 {
			b.ReportMetric(100*(uncached-computed)/uncached, "first-pass-absorbed-%")
		}
	}
}

// optimizeWorkloadsBench optimizes every paper workload through the public
// Session API — one session per workload, bound to that workload's
// paper-scaled cluster, all sharing the given estimate cache (the
// cross-session sharing WithEstimateCache advertises) — and returns total
// What-if computations. Workload construction and profiling run with the
// timer stopped, so ns/op measures only the optimizations.
func optimizeWorkloadsBench(b *testing.B, cache *stubby.EstimateCache) float64 {
	b.Helper()
	b.StopTimer()
	type prepared struct {
		sess *stubby.Session
		flow *stubby.Workflow
	}
	var preps []prepared
	for _, abbr := range workloads.Abbrs() {
		wl, err := stubby.BuildWorkload(abbr, stubby.WorkloadOptions{SizeFactor: benchConfig.SizeFactor, Seed: benchConfig.Seed})
		if err != nil {
			b.Fatal(err)
		}
		opts := []stubby.SessionOption{
			stubby.WithCluster(wl.Cluster),
			stubby.WithSeed(benchConfig.Seed),
			stubby.WithParallelism(4),
		}
		if cache != nil {
			opts = append(opts, stubby.WithEstimateCache(cache))
		}
		sess, err := stubby.NewSession(opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Profile(context.Background(), wl.Workflow, wl.DFS); err != nil {
			b.Fatal(err)
		}
		preps = append(preps, prepared{sess: sess, flow: wl.Workflow})
	}
	b.StartTimer()
	var computed float64
	for _, p := range preps {
		res, err := p.sess.Optimize(context.Background(), p.flow)
		if err != nil {
			b.Fatal(err)
		}
		computed += float64(res.WhatIfComputed)
	}
	return computed
}

// BenchmarkOptimizeIncrementalVsMonolithic is the incremental estimator's
// regression gate: the full Stubby search runs over the paper workloads and
// the deep synthetic pipelines with incremental estimation forced off and
// on, verifying byte-identical plans and reporting the hot-path savings.
// Flow-card counts are deterministic, so the multi-job reduction factor is
// asserted outright; wall-clock speedup is reported as a metric (and
// recorded durably by `stubby-bench -bench-optimizer` in
// BENCH_optimizer.json) rather than asserted, since CI machines vary.
func BenchmarkOptimizeIncrementalVsMonolithic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchConfig)
		abbrs := append(append([]string{}, workloads.Abbrs()...), bench.DeepPipelineAbbrs()...)
		rows, err := h.OptimizerBench(abbrs)
		if err != nil {
			b.Fatal(err)
		}
		rep := bench.OptimizerBenchReport(rows, benchConfig.SizeFactor, benchConfig.Seed)
		if printHeader(b, "optinc", "Optimizer hot path: incremental vs monolithic estimation") {
			for _, r := range rows {
				fmt.Printf("%-4s %2dj mono=%7.0fms inc=%7.0fms wall=%.2fx cards %8d -> %8d (%.2fx) identical=%v\n",
					r.Workload, r.Jobs, r.MonolithicMS, r.IncrementalMS, r.WallSpeedup,
					r.MonolithicFlowCards, r.IncrementalFlowCards, r.FlowCardRatio, r.PlansIdentical)
			}
		}
		if !rep.All.PlansIdentical {
			b.Fatal("incremental estimation changed a chosen plan or cost")
		}
		if rep.MultiJob.FlowCardRatio < 2 {
			b.Errorf("multi-job flow-card reduction regressed: %.2fx < 2x", rep.MultiJob.FlowCardRatio)
		}
		b.ReportMetric(rep.MultiJob.FlowCardRatio, "multijob-flowcard-ratio")
		b.ReportMetric(rep.MultiJob.WallSpeedup, "multijob-wall-speedup")
		b.ReportMetric(rep.All.WallSpeedup, "all-wall-speedup")
	}
}

func BenchmarkOptimizeWorkloadsCacheOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		computed := optimizeWorkloadsBench(b, nil)
		b.ReportMetric(computed, "whatif-computed")
	}
}

func BenchmarkOptimizeWorkloadsCacheOn(b *testing.B) {
	// One cache across iterations: iteration 2+ replays entirely from it,
	// which is exactly the repeated-workflow serving scenario.
	cache := stubby.NewEstimateCache(1 << 18)
	for i := 0; i < b.N; i++ {
		computed := optimizeWorkloadsBench(b, cache)
		b.ReportMetric(computed, "whatif-computed")
		b.ReportMetric(float64(cache.Stats().Hits), "cache-hits-cum")
	}
}
