package stubby

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/planstore"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif/estcache"
)

// PlanStore is a durable, content-addressed store of optimized plans. It
// persists every optimization a session performs as a versioned planio
// result document, keyed by the canonical workflow fingerprint plus the
// cluster, planner, and seed the search depended on, so a repeat
// submission — from this process, a restarted one, or another replica
// sharing the directory — returns the byte-identical plan without running
// the optimizer. See internal/planstore for the on-disk format and
// durability guarantees.
type PlanStore = planstore.Store

// PlanStoreStats snapshots a PlanStore's counters; see
// Session.PlanStoreStats and PlanStoreEvent.
type PlanStoreStats = planstore.Stats

// NewPlanStore opens (creating if needed) a plan store rooted at dir.
// Reopening a directory recovers crash-safely: torn record tails are
// truncated and every surviving plan remains CRC- and
// fingerprint-verified on read. Any number of stores — across processes —
// may share one directory; close the store when done to publish its final
// index snapshot.
func NewPlanStore(dir string) (*PlanStore, error) {
	ps, err := planstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// WithPlanStore attaches a persistent plan store to the session: Optimize
// and Submit consult it before searching, concurrent submissions of the
// same workflow collapse into one optimization (single-flight), and every
// fresh result is durably published for later sessions and other replicas.
// The store is transparent — a hit returns the byte-identical plan and
// estimated cost the original search produced, with Result.FromStore set
// and zero What-if activity. The caller retains ownership: Close the store
// after the session is done with it.
func WithPlanStore(ps *PlanStore) SessionOption {
	return func(s *Session) error {
		if ps == nil {
			return errors.New("stubby: WithPlanStore(nil)")
		}
		s.planStore = ps
		return nil
	}
}

// PlanStore returns the store attached via WithPlanStore, or nil.
func (s *Session) PlanStore() *PlanStore { return s.planStore }

// PlanStoreStats snapshots the attached store's counters. ok is false when
// the session has no plan store.
func (s *Session) PlanStoreStats() (stats PlanStoreStats, ok bool) {
	if s.planStore == nil {
		return PlanStoreStats{}, false
	}
	return s.planStore.Stats(), true
}

// planKey builds the store key of one optimization: everything the search
// outcome depends on. The workflow fingerprint is canonical (insensitive
// to names and job-ID renaming), so resubmitting a renamed copy of a known
// workflow still hits.
func (s *Session) planKey(w *Workflow, planner string, seed int64) planstore.Key {
	return planstore.Key{
		Plan:    wf.FingerprintWorkflow(w),
		Cluster: estcache.ClusterFingerprint(s.cluster),
		Planner: planner,
		Seed:    seed,
	}
}

// requestKey renders the canonical in-flight identity of a submission: the
// plan-store key fields — workflow fingerprint, cluster fingerprint,
// resolved planner, resolved seed — as a map key. Two requests with equal
// keys produce byte-identical plans, so a journaled server lets the second
// attach to the first's job instead of running it twice (the idempotency
// that makes client-side submit retries safe).
func (s *Session) requestKey(req OptimizeRequest) string {
	if req.Workflow == nil {
		return ""
	}
	name := req.Planner
	if name == "" {
		name = s.plannerName
	}
	if name == "" {
		name = "stubby"
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.seed
	}
	cluster := s.cluster
	if req.Cluster != nil {
		cluster = req.Cluster
	}
	return fmt.Sprintf("%v|%v|%s|%d", wf.FingerprintWorkflow(req.Workflow),
		estcache.ClusterFingerprint(cluster), name, seed)
}

// encodeStoredResult renders an optimization result as the planio wire
// document the store persists, stamped with the plan's fingerprint so
// every later read is integrity-checked end to end.
func encodeStoredResult(res *Result) ([]byte, error) {
	return planio.EncodeResult(&planio.Result{
		Plan:           res.Plan,
		EstimatedCost:  res.EstimatedCost,
		DurationMS:     float64(res.Duration) / float64(time.Millisecond),
		WhatIfCalls:    res.WhatIfCalls,
		WhatIfComputed: res.WhatIfComputed,
		FlowCards:      res.FlowCards,
		Fingerprint:    wf.FingerprintWorkflow(res.Plan).String(),
		ReusedSubplans: res.ReusedSubplans,
	})
}

// decodeStoredResult reconstructs a stored plan, binding its stage
// functions through the submitted workflow's own function library (the
// optimizer only rearranges the submitter's stages, so the input workflow
// carries every binding the optimized plan references). The decode
// re-verifies the stamped fingerprint; a document that fails to decode or
// verify is treated as a miss by the callers, never returned.
func decodeStoredResult(doc []byte, w *Workflow) (*Result, error) {
	reg := planio.NewRegistry()
	reg.RegisterWorkflow(w)
	wres, err := planio.DecodeResultBound(doc, reg)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: wres.Plan, EstimatedCost: wres.EstimatedCost, FromStore: true,
		ReusedSubplans: wres.ReusedSubplans}, nil
}

// storeLookup is the non-computing store probe Submit uses before
// enqueueing: a decodable hit comes back as a ready Result, anything else
// (miss, store error, undecodable document) defers to the worker path.
func (s *Session) storeLookup(w *Workflow, planner string, seed int64) (*Result, bool) {
	doc, ok, err := s.planStore.Get(s.planKey(w, planner, seed))
	if err != nil || !ok {
		return nil, false
	}
	res, err := decodeStoredResult(doc, w)
	if err != nil {
		return nil, false
	}
	return res, true
}

// optimizeNamed dispatches one named optimization, fronted by the plan
// store when one is attached: a stored plan is returned without searching,
// and a miss runs the search under a per-key single-flight — in-process and,
// through the store's claim files, across every replica sharing the store
// directory — so concurrent submissions of the same workflow cost one
// optimization cluster-wide.
func (s *Session) optimizeNamed(ctx context.Context, w *Workflow, name string, seed int64, obs optimizer.Observer) (*Result, error) {
	if s.planStore == nil {
		return s.optimizeDirect(ctx, w, name, seed, obs)
	}
	key := s.planKey(w, name, seed)
	for {
		var computed *Result
		doc, hit, err := s.planStore.GetOrComputeCtx(ctx, key, func() ([]byte, error) {
			res, rerr := s.optimizeDirect(ctx, w, name, seed, obs)
			if rerr != nil {
				return nil, rerr
			}
			computed = res
			return encodeStoredResult(res)
		})
		if computed != nil {
			// This call ran the search. Even if encoding for persistence
			// failed, the result itself is good — never waste a completed
			// optimization on a storage problem.
			return computed, nil
		}
		if err != nil {
			// A waiter can inherit another submitter's cancellation through
			// the shared flight. If our own context is still live, the work
			// is still wanted — retry (and likely become the owner).
			if ctx.Err() == nil &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				continue
			}
			return nil, err
		}
		if hit {
			if res, derr := decodeStoredResult(doc, w); derr == nil {
				return res, nil
			}
			// An undecodable stored document (e.g. a foreign stage name)
			// must not fail the submission; optimize directly instead.
			return s.optimizeDirect(ctx, w, name, seed, obs)
		}
		// Unreachable: a non-hit, non-error return always set computed.
		return s.optimizeDirect(ctx, w, name, seed, obs)
	}
}
