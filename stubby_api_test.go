package stubby_test

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby"
)

// TestPublicAPIRoundTrip exercises the whole facade: build a workload,
// profile, estimate, optimize, execute, and verify result equivalence —
// the README quick-start, as a test.
func TestPublicAPIRoundTrip(t *testing.T) {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	est, err := stubby.EstimateCost(wl.Cluster, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if est.Fallback || est.Makespan <= 0 {
		t.Fatalf("estimate unusable: %+v", est)
	}
	res, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Jobs) >= len(wl.Workflow.Jobs) {
		t.Errorf("IR should pack: %d -> %d jobs", len(wl.Workflow.Jobs), len(res.Plan.Jobs))
	}
	before, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	after, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if after.Makespan >= before.Makespan {
		t.Errorf("optimized plan slower: %.1f vs %.1f", after.Makespan, before.Makespan)
	}
}

func TestPublicAPIBuildWorkflowByHand(t *testing.T) {
	// A user-defined workflow through the facade only.
	var pairs []stubby.Pair
	for i := 0; i < 500; i++ {
		pairs = append(pairs, stubby.Pair{Key: stubby.T(int64(i % 7)), Value: stubby.T(int64(1))})
	}
	dfs := stubby.NewDFS()
	if err := dfs.Ingest("in", pairs, stubby.IngestSpec{
		NumPartitions: 3,
		KeyFields:     []string{"k"},
		Layout:        stubby.Layout{PartFields: []string{"k"}},
	}); err != nil {
		t.Fatal(err)
	}
	w := &stubby.Workflow{
		Name: "byhand",
		Jobs: []*stubby.Job{{
			ID: "J", Config: stubby.DefaultConfig(), Origin: []string{"J"},
			MapBranches: []stubby.MapBranch{{
				Tag: 0, Input: "in",
				Stages: []stubby.Stage{stubby.MapStage("m",
					func(k, v stubby.Tuple, emit stubby.Emit) { emit(k, v) }, 1e-6)},
			}},
			ReduceGroups: []stubby.ReduceGroup{{
				Tag: 0, Output: "out",
				Stages: []stubby.Stage{stubby.ReduceStage("r",
					func(k stubby.Tuple, vs []stubby.Tuple, emit stubby.Emit) {
						emit(k, stubby.T(int64(len(vs))))
					}, nil, 1e-6)},
			}},
		}},
		Datasets: []*stubby.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}},
			{ID: "out"},
		},
	}
	cluster := stubby.DefaultCluster()
	rep, err := stubby.Run(cluster, dfs, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.Job("J") == nil {
		t.Fatal("run report unusable")
	}
	stored, ok := dfs.Get("out")
	if !ok || stored.Records() != 7 {
		t.Fatalf("expected 7 groups, got %d", stored.Records())
	}
}

func TestPublicAPIPlanners(t *testing.T) {
	wl, err := stubby.BuildWorkload("PJ", stubby.WorkloadOptions{SizeFactor: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 4); err != nil {
		t.Fatal(err)
	}
	for _, p := range []stubby.Planner{
		stubby.NewBaseline(wl.Cluster),
		stubby.NewStarfish(wl.Cluster, 4),
		stubby.NewYSmart(wl.Cluster),
		stubby.NewMRShare(wl.Cluster, 4),
		stubby.NewStubbyPlanner(wl.Cluster, stubby.GroupAll, 4, ""),
	} {
		plan, err := p.Plan(wl.Workflow)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if _, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), plan); err != nil {
			t.Fatalf("%s plan failed: %v", p.Name(), err)
		}
	}
}

func TestWorkloadsListing(t *testing.T) {
	ws := stubby.Workloads()
	if len(ws) != 8 || ws[0] != "IR" {
		t.Fatalf("Workloads() = %v", ws)
	}
	if _, err := stubby.BuildWorkload("XX", stubby.WorkloadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Error("unknown workload should error")
	}
}
