package stubby

// journal.go is the public face of the durable job journal (see
// internal/service/journal.go for the on-disk format): OpenJournal +
// WithJournal make a Server crash-safe. Every accepted submission is
// journaled — verbatim request document, propagated deadline, and each
// lifecycle transition — in an append-only CRC-checked log, and a server
// constructed over a reopened journal re-enqueues exactly the jobs that
// were in flight when the previous process died, under their original
// IDs. Re-executed jobs complete idempotently through the plan store
// (same fingerprint key, byte-identical plan), canceled jobs stay
// canceled, and finished jobs are never resurrected.

import (
	"context"
	"errors"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/service"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// JournalStats snapshots a Journal's counters; see Server.JournalStats.
type JournalStats = service.JournalStats

// Journal is a durable job journal: the persistence layer that lets a
// Server survive a crash with its in-flight jobs intact. Open one with
// OpenJournal and attach it with WithJournal; the caller retains
// ownership and should Close it after the server is done.
type Journal struct {
	j          *service.Journal
	incomplete []service.IncompleteJob
}

// OpenJournal opens (creating if needed) the journal rooted at dir and
// recovers its record of in-flight jobs. Reopening is crash-safe: a torn
// record tail is truncated, corrupt records freeze the scan at the last
// valid one, and the surviving in-flight set is compacted into a fresh
// log. The journal holds an exclusive lock on dir for its lifetime — a
// second live opener fails instead of interleaving appends.
func OpenJournal(dir string) (*Journal, error) {
	j, incomplete, err := service.OpenJournal(dir)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "journal", "", err)
	}
	return &Journal{j: j, incomplete: incomplete}, nil
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats { return j.j.Stats() }

// SetCompactionThresholds tunes the journal's live compaction: the log is
// rewritten to just the in-flight submit records once terminalEvery jobs
// reached a terminal state since the last compaction, or once it exceeds
// maxBytes with droppable records in it. terminalEvery <= 0 restores the
// default (256); maxBytes <= 0 disables the byte trigger. Without tuning,
// both defaults apply — a long-lived server's journal stays proportional
// to its in-flight set instead of its history.
func (j *Journal) SetCompactionThresholds(terminalEvery int, maxBytes int64) {
	j.j.SetCompactionThresholds(terminalEvery, maxBytes)
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.j.Dir() }

// Close releases the journal's log and directory lock.
func (j *Journal) Close() error { return j.j.Close() }

// WithJournal attaches a durable job journal to the server: accepted
// submissions are journaled before they are acknowledged, lifecycle
// transitions are appended as they happen, and NewServer re-enqueues the
// journal's incomplete jobs — under their original IDs — before serving
// traffic. A journaled server also deduplicates in-flight submissions: a
// request whose resolved (workflow, cluster, planner, seed) fingerprint
// matches a live job attaches to that job instead of starting another,
// which is what makes client submit retries idempotent.
func WithJournal(j *Journal) ServerOption {
	return func(s *Server) {
		if j != nil {
			s.journal = j
		}
	}
}

// JournalStats snapshots the attached journal's counters. ok is false
// when the server runs without a journal.
func (s *Server) JournalStats() (stats JournalStats, ok bool) {
	if s.journal == nil {
		return JournalStats{}, false
	}
	return s.journal.Stats(), true
}

// recoverJournaled re-enqueues every journaled job that never reached a
// terminal state, preserving original IDs and deadlines. It runs inside
// NewServer — before the server can accept traffic — so recovered jobs
// are queryable the moment the listener opens. Each re-execution is
// idempotent: the plan store answers repeat fingerprints with the stored
// byte-identical plan, so a job that in fact finished just before the
// crash (its terminal record lost) completes again without re-optimizing.
func (s *Server) recoverJournaled() {
	for _, in := range s.journal.incomplete {
		req, err := planio.DecodeRequest(in.Doc)
		if err != nil {
			// The document is unreadable (schema drift, corruption inside a
			// valid CRC frame): journal it failed so it is not re-recovered
			// on every future restart.
			_ = s.journal.j.AppendState(in.ID, service.Failed)
			continue
		}
		oreq := OptimizeRequest{
			Workflow:           req.Plan,
			Planner:            req.Planner,
			Seed:               req.Seed,
			Cluster:            req.Cluster,
			DisableIncremental: req.DisableIncremental,
			resumeID:           in.ID,
		}
		if in.DeadlineUnixMS > 0 {
			// An already-expired deadline still re-enqueues: the job fails
			// promptly with a deadline error, which is the terminal record
			// the journal needs.
			oreq.deadline = time.UnixMilli(in.DeadlineUnixMS)
		}
		s.sess.reserveJobID(in.ID)
		var h *OptimizeHandle
		var serr error
		for attempt := 0; attempt < 250; attempt++ {
			h, serr = s.sess.Submit(context.Background(), oreq)
			if !errors.Is(serr, stubbyerr.KindOverloaded) {
				break
			}
			// The admission queue is smaller than the recovered backlog;
			// wait for workers to drain a slot.
			time.Sleep(20 * time.Millisecond)
		}
		if serr != nil {
			_ = s.journal.j.AppendState(in.ID, service.Failed)
			continue
		}
		s.adopt(h, s.sess.requestKey(oreq))
	}
}

// watch journals h's lifecycle transitions (Running and the terminal
// state; Queued is implied by the submit record) and, once the job is
// terminal, retires its fingerprint from the in-flight index.
func (s *Server) watch(h *OptimizeHandle, key string) {
	for ev := range h.Events(context.Background()) {
		sc, ok := ev.(StateChangedEvent)
		if !ok || sc.State == StateQueued {
			continue
		}
		_ = s.journal.j.AppendState(h.ID(), sc.State)
	}
	// The stream closes after the terminal event.
	if key != "" {
		s.mu.Lock()
		if s.inflight[key] == h.ID() {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
	}
}
