package stubby

// Event is the closed sum type of progress events delivered by
// OptimizeHandle.Events and Client event streams. It replaces the
// ever-widening Observer interface: adding a new event type is a
// non-breaking change (consumers switch on the types they care about),
// whereas adding an Observer method broke every implementor.
//
//	for ev := range handle.Events(ctx) {
//		switch e := ev.(type) {
//		case stubby.BestCostImprovedEvent:
//			log.Printf("unit %d best <- %.1f", e.Unit, e.Cost)
//		case stubby.StateChangedEvent:
//			log.Printf("state %s", e.State)
//		}
//	}
//
// The set is closed: only types in this package implement Event.
type Event interface {
	// WorkflowName returns the name of the workflow the event is about.
	WorkflowName() string
	event()
}

// UnitStartedEvent fires when the optimizer opens an optimization unit.
type UnitStartedEvent struct {
	Workflow string
	Phase    string
	Unit     int
	Jobs     []string
}

// SubplanEnumeratedEvent fires per enumerated subplan with its best cost
// after configuration search.
type SubplanEnumeratedEvent struct {
	Workflow string
	Unit     int
	Desc     string
	Cost     float64
}

// BestCostImprovedEvent fires when a subplan displaces the unit's
// incumbent.
type BestCostImprovedEvent struct {
	Workflow string
	Unit     int
	Desc     string
	Cost     float64
}

// JobFinishedEvent fires after the execution engine completes a job of a
// Run.
type JobFinishedEvent struct {
	Workflow string
	Job      string
	Start    float64
	End      float64
}

// CacheReportEvent carries the estimate cache's cumulative statistics
// after an optimization on a session with a cache attached.
type CacheReportEvent struct {
	Workflow string
	Stats    EstimateCacheStats
}

// PlanStoreEvent fires once per submission on a session with a plan store
// attached (WithPlanStore), reporting whether the submission was answered
// from the store — Hit means the plan came back without running the
// optimizer — along with the store's cumulative statistics.
type PlanStoreEvent struct {
	Workflow string
	Hit      bool
	Stats    PlanStoreStats
}

// ReuseReportEvent fires once per optimizing submission on a session with
// a reuse catalog attached (WithReuseCatalog), reporting how many rooted
// sub-DAGs of this workflow's plan were replaced with scans of previously
// materialized results, along with the catalog's cumulative statistics.
type ReuseReportEvent struct {
	Workflow string
	Reused   int
	Stats    ReuseCatalogStats
}

// RobustnessEvent fires once per submission on a session with robustness-
// aware planning configured (WithRobustness), carrying the chosen plan's
// Monte-Carlo makespan distribution under the session's fault model.
type RobustnessEvent struct {
	Workflow string
	Report   *Robustness
}

// StateChangedEvent fires on every lifecycle transition of a submitted
// job: Queued on admission, Running when a worker picks it up, then
// exactly one of Done, Failed (Err set), or Canceled. It is always the
// last event of a job's stream.
type StateChangedEvent struct {
	Workflow string
	JobID    string
	State    JobState
	Err      error
}

func (e UnitStartedEvent) WorkflowName() string       { return e.Workflow }
func (e SubplanEnumeratedEvent) WorkflowName() string { return e.Workflow }
func (e BestCostImprovedEvent) WorkflowName() string  { return e.Workflow }
func (e JobFinishedEvent) WorkflowName() string       { return e.Workflow }
func (e CacheReportEvent) WorkflowName() string       { return e.Workflow }
func (e PlanStoreEvent) WorkflowName() string         { return e.Workflow }
func (e ReuseReportEvent) WorkflowName() string       { return e.Workflow }
func (e RobustnessEvent) WorkflowName() string        { return e.Workflow }
func (e StateChangedEvent) WorkflowName() string      { return e.Workflow }

func (UnitStartedEvent) event()       {}
func (SubplanEnumeratedEvent) event() {}
func (BestCostImprovedEvent) event()  {}
func (JobFinishedEvent) event()       {}
func (CacheReportEvent) event()       {}
func (PlanStoreEvent) event()         {}
func (ReuseReportEvent) event()       {}
func (RobustnessEvent) event()        {}
func (StateChangedEvent) event()      {}

// ObserverEvents adapts a deprecated Observer to an event consumer: the
// returned function dispatches each event to the matching Observer method
// (StateChangedEvent has no Observer counterpart and is dropped). It is
// the migration bridge for code that still owns an Observer implementation
// but consumes the new typed stream:
//
//	sink := stubby.ObserverEvents(myObserver)
//	for ev := range handle.Events(ctx) { sink(ev) }
func ObserverEvents(obs Observer) func(Event) {
	return func(ev Event) {
		switch e := ev.(type) {
		case UnitStartedEvent:
			obs.UnitStarted(e.Workflow, e.Phase, e.Unit, e.Jobs)
		case SubplanEnumeratedEvent:
			obs.SubplanEnumerated(e.Workflow, e.Unit, e.Desc, e.Cost)
		case BestCostImprovedEvent:
			obs.BestCostImproved(e.Workflow, e.Unit, e.Desc, e.Cost)
		case JobFinishedEvent:
			obs.JobFinished(e.Workflow, e.Job, e.Start, e.End)
		case CacheReportEvent:
			obs.EstimateCacheReport(e.Workflow, e.Stats)
		}
	}
}
