package stubby_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/gen"
)

// The reuse equivalence suite is the oracle for cross-workflow sub-plan
// reuse: generator-produced families of overlapping workflows, member 0
// run to completion with a catalog attached, later members optimized
// against that catalog. Every rewritten plan must (a) actually reuse at
// least one stored sub-DAG and (b) produce tuple-for-tuple identical sink
// outputs to the member's own identity plan. A metamorphic guard pins the
// other side: workflows with no catalog match must optimize to
// byte-identical plans whether or not a (populated) catalog is attached.

// reuseFamilySeeds are the family seeds the suite sweeps. Each must yield
// at least one adopted reuse rewrite per non-reference member — a seed
// that stops reusing is a regression in the pre-pass, not test flake,
// because everything here is deterministic.
var reuseFamilySeeds = []int64{1, 2, 3, 5, 8}

// reuseRRSEvals caps the per-member search budget; equivalence must hold
// at any budget.
const reuseRRSEvals = 40

func reuseSession(t *testing.T, c *gen.Case, cat *stubby.ReuseCatalog) *stubby.Session {
	t.Helper()
	opts := []stubby.SessionOption{
		stubby.WithCluster(c.Cluster),
		stubby.WithSeed(1),
		stubby.WithProfileFraction(0.5),
		stubby.WithIncrementalEstimation(!disableIncremental()),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: reuseRRSEvals}),
	}
	if cat != nil {
		opts = append(opts, stubby.WithReuseCatalog(cat))
	}
	sess, err := stubby.NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestReuseEquivalenceFamilies(t *testing.T) {
	ctx := context.Background()
	for _, seed := range reuseFamilySeeds {
		seed := seed
		t.Run(fmt.Sprintf("family%d", seed), func(t *testing.T) {
			fam := gen.Family(seed, 3, gen.Options{})
			cat, err := stubby.NewReuseCatalog(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer cat.Close()

			// Member 0 is the producing run: profile, execute, and let the
			// session publish every materialized intermediate to the catalog.
			sess := reuseSession(t, fam[0], cat)
			if err := sess.Profile(ctx, fam[0].Workflow, fam[0].DFS); err != nil {
				t.Fatal(err)
			}
			runDFS := fam[0].DFS.Clone()
			if _, err := sess.Run(ctx, runDFS, fam[0].Workflow); err != nil {
				t.Fatal(err)
			}
			st, ok := sess.ReuseCatalogStats()
			if !ok || st.Entries == 0 {
				t.Fatalf("producing run published nothing: %+v", st)
			}

			for k := 1; k < len(fam); k++ {
				k := k
				t.Run(fmt.Sprintf("member%d", k), func(t *testing.T) {
					c := fam[k]
					if err := sess.Profile(ctx, c.Workflow, c.DFS); err != nil {
						t.Fatal(err)
					}
					res, err := sess.Optimize(ctx, c.Workflow)
					if err != nil {
						t.Fatal(err)
					}
					if res.ReusedSubplans < 1 {
						t.Fatalf("seed %d member %d: optimizer reused no stored sub-plans", seed, k)
					}

					// Oracle: the rewritten plan scans datasets member 0
					// materialized, so it executes over the post-run DFS —
					// which also holds the (identical) base data the identity
					// reference needs.
					subject := c.Subject()
					subject.DFS = runDFS
					ref, err := subject.Reference()
					if err != nil {
						t.Fatal(err)
					}
					if err := subject.CheckPlan(ref, "reuse-rewritten", res.Plan); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestReuseNoMatchByteIdentical is the metamorphic guard: attaching a
// populated catalog to the session must not perturb optimization of
// workflows that match nothing in it — byte-identical plans, equal costs,
// and not a single extra What-if estimate.
func TestReuseNoMatchByteIdentical(t *testing.T) {
	ctx := context.Background()

	// Populate a catalog from one family's producing run.
	fam := gen.Family(4, 2, gen.Options{})
	cat, err := stubby.NewReuseCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	seedSess := reuseSession(t, fam[0], cat)
	if err := seedSess.Profile(ctx, fam[0].Workflow, fam[0].DFS); err != nil {
		t.Fatal(err)
	}
	if _, err := seedSess.Run(ctx, fam[0].DFS.Clone(), fam[0].Workflow); err != nil {
		t.Fatal(err)
	}
	if st, _ := seedSess.ReuseCatalogStats(); st.Entries == 0 {
		t.Fatal("catalog is empty; the guard would be vacuous")
	}

	// Disjoint generator seeds: different base data, so no sub-fingerprint
	// in these workflows can match the family's entries.
	for _, seed := range []int64{21, 22, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Options{})
			plain := reuseSession(t, c, nil)
			if err := plain.Profile(ctx, c.Workflow, c.DFS); err != nil {
				t.Fatal(err)
			}
			want, err := plain.Optimize(ctx, c.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			withCat := reuseSession(t, c, cat)
			got, err := withCat.Optimize(ctx, c.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			if got.ReusedSubplans != 0 {
				t.Errorf("seed %d: %d sub-plans reused across unrelated base data", seed, got.ReusedSubplans)
			}
			if got.WhatIfCalls != want.WhatIfCalls {
				t.Errorf("seed %d: attaching the catalog changed What-if traffic: %d vs %d calls",
					seed, got.WhatIfCalls, want.WhatIfCalls)
			}
			assertSamePlan(t, want, got)
		})
	}
}
