package profile

import (
	"math"
	"math/rand"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

func passMap(key, value keyval.Tuple, emit wf.Emit) { emit(key, value) }

func sumReduce(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

func halfMap(key, value keyval.Tuple, emit wf.Emit) {
	if key[0].(int64)%2 == 0 {
		emit(key, value)
	}
}

func genPairs(n, card int, seed int64) []keyval.Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]keyval.Pair, n)
	for i := range out {
		out[i] = keyval.Pair{Key: keyval.T(int64(r.Intn(card))), Value: keyval.T(int64(1))}
	}
	return out
}

func testWorkflowAndDFS(t *testing.T) (*wf.Workflow, *mrsim.DFS, []keyval.Pair) {
	t.Helper()
	pairs := genPairs(8000, 40, 1)
	dfs := mrsim.NewDFS()
	err := dfs.Ingest("in", pairs, mrsim.IngestSpec{
		NumPartitions: 6,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	job := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "in",
			Stages: []wf.Stage{wf.MapStage("half", halfMap, 2e-6)},
			KeyIn:  []string{"k"}, KeyOut: []string{"k"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "out",
			Stages: []wf.Stage{wf.ReduceStage("sum", sumReduce, nil, 3e-6)},
			KeyIn:  []string{"k"}, KeyOut: []string{"k"},
		}},
	}
	w := &wf.Workflow{
		Name: "p",
		Jobs: []*wf.Job{job},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "out"},
		},
	}
	return w, dfs, pairs
}

func TestAnnotateFullFraction(t *testing.T) {
	w, dfs, pairs := testWorkflowAndDFS(t)
	p := NewProfiler(mrsim.DefaultCluster(), 1.0, 7)
	if err := p.Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	if !HasFullProfiles(w) {
		t.Fatal("profiles missing after Annotate")
	}
	job := w.Job("J1")
	mp := job.Profile.MapProfile(job.MapBranches[0])
	if mp == nil {
		t.Fatal("map profile missing")
	}
	// halfMap keeps even keys only; with keys uniform over [0,40) the
	// selectivity is close to 0.5 and exact at fraction 1.0.
	var kept int
	for _, pr := range pairs {
		if pr.Key[0].(int64)%2 == 0 {
			kept++
		}
	}
	want := float64(kept) / float64(len(pairs))
	if math.Abs(mp.Selectivity-want) > 1e-9 {
		t.Errorf("map selectivity = %v, want %v", mp.Selectivity, want)
	}
	if math.Abs(mp.CPUPerRecord-2e-6) > 1e-12 {
		t.Errorf("map CPU/record = %v, want 2e-6", mp.CPUPerRecord)
	}
	rp := job.Profile.ReduceProfile(0)
	if rp == nil {
		t.Fatal("reduce profile missing")
	}
	// 20 even keys -> 20 groups out of `kept` records.
	if math.Abs(rp.GroupsPerRecord-20/float64(kept)) > 1e-9 {
		t.Errorf("groups/record = %v", rp.GroupsPerRecord)
	}
	if rp.Selectivity <= 0 || rp.Selectivity > 1 {
		t.Errorf("reduce selectivity = %v", rp.Selectivity)
	}
	if len(mp.KeySample) == 0 {
		t.Error("map key sample empty")
	}
	for _, k := range mp.KeySample {
		if k[0].(int64)%2 != 0 {
			t.Error("key sample contains filtered-out key")
		}
	}
	// Dataset annotations filled from the real DFS.
	in := w.Dataset("in")
	if in.EstRecords != 8000 || in.EstPartitions != 6 || in.EstBytes <= 0 {
		t.Errorf("dataset annotation wrong: %+v", in)
	}
}

func TestAnnotateSampledCloseToTruth(t *testing.T) {
	w, dfs, _ := testWorkflowAndDFS(t)
	p := NewProfiler(mrsim.DefaultCluster(), 0.2, 7)
	if err := p.Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	mp := w.Job("J1").Profile.MapProfile(w.Jobs[0].MapBranches[0])
	if math.Abs(mp.Selectivity-0.5) > 0.1 {
		t.Errorf("sampled selectivity %v too far from 0.5", mp.Selectivity)
	}
	// Sampling must not disturb the original DFS.
	stored, _ := dfs.Get("in")
	if stored.Records() != 8000 {
		t.Error("profiling mutated the source data")
	}
}

func TestAnnotateDeterministic(t *testing.T) {
	w1, dfs1, _ := testWorkflowAndDFS(t)
	w2, dfs2, _ := testWorkflowAndDFS(t)
	if err := NewProfiler(mrsim.DefaultCluster(), 0.3, 11).Annotate(w1, dfs1); err != nil {
		t.Fatal(err)
	}
	if err := NewProfiler(mrsim.DefaultCluster(), 0.3, 11).Annotate(w2, dfs2); err != nil {
		t.Fatal(err)
	}
	a := w1.Job("J1").Profile.MapProfile(w1.Jobs[0].MapBranches[0])
	b := w2.Job("J1").Profile.MapProfile(w2.Jobs[0].MapBranches[0])
	if a.Selectivity != b.Selectivity || a.CPUPerRecord != b.CPUPerRecord {
		t.Error("profiling not deterministic")
	}
}

func TestAnnotateRejectsBadFraction(t *testing.T) {
	w, dfs, _ := testWorkflowAndDFS(t)
	for _, f := range []float64{0, -0.5, 1.5} {
		if err := NewProfiler(mrsim.DefaultCluster(), f, 1).Annotate(w, dfs); err == nil {
			t.Errorf("fraction %v accepted", f)
		}
	}
}

func TestComposeSerial(t *testing.T) {
	a := &wf.PipelineProfile{
		Selectivity: 0.5, CPUPerRecord: 2e-6,
		InBytesPerRecord: 100, OutBytesPerRecord: 80,
		GroupsPerRecord: 0.1, CombineReduction: 0.3,
	}
	b := &wf.PipelineProfile{
		Selectivity: 2, CPUPerRecord: 4e-6,
		InBytesPerRecord: 80, OutBytesPerRecord: 50,
		KeySample: []keyval.Tuple{keyval.T(1)},
	}
	c := ComposeSerial(a, b)
	if c.Selectivity != 1.0 {
		t.Errorf("selectivity = %v, want 1.0", c.Selectivity)
	}
	// CPU: a pays 2e-6 per input record; b sees 0.5 records per input
	// record, each costing 4e-6.
	if math.Abs(c.CPUPerRecord-(2e-6+0.5*4e-6)) > 1e-15 {
		t.Errorf("cpu = %v", c.CPUPerRecord)
	}
	if c.InBytesPerRecord != 100 || c.OutBytesPerRecord != 50 {
		t.Error("byte rates not taken from ends of the pipeline")
	}
	if c.GroupsPerRecord != 0.1 || c.CombineReduction != 0.3 {
		t.Error("grouping stats not preserved from upstream")
	}
	if len(c.KeySample) != 1 {
		t.Error("key sample should come from downstream")
	}
	if ComposeSerial(nil, b) != nil || ComposeSerial(a, nil) != nil {
		t.Error("unknown inputs must compose to unknown")
	}
}

func TestComposeSerialAssociativeSelectivity(t *testing.T) {
	// Selectivity and CPU composition must be associative: packing
	// (a∘b)∘c and a∘(b∘c) describe the same pipeline.
	mk := func(sel, cpu float64) *wf.PipelineProfile {
		return &wf.PipelineProfile{Selectivity: sel, CPUPerRecord: cpu, CombineReduction: 1}
	}
	a, b, c := mk(0.5, 1e-6), mk(3, 2e-6), mk(0.1, 5e-6)
	left := ComposeSerial(ComposeSerial(a, b), c)
	right := ComposeSerial(a, ComposeSerial(b, c))
	if math.Abs(left.Selectivity-right.Selectivity) > 1e-15 {
		t.Error("selectivity composition not associative")
	}
	if math.Abs(left.CPUPerRecord-right.CPUPerRecord) > 1e-15 {
		t.Error("CPU composition not associative")
	}
}

func TestAdjustIntraVertical(t *testing.T) {
	job := &wf.Job{ID: "jc", Profile: &wf.JobProfile{}}
	job.Profile.SetMapProfile(0, "d", &wf.PipelineProfile{Selectivity: 0.5, CPUPerRecord: 1e-6, CombineReduction: 1})
	job.Profile.SetReduceProfile(0, &wf.PipelineProfile{Selectivity: 0.1, CPUPerRecord: 2e-6, CombineReduction: 1})
	got := AdjustIntraVertical(job, 0, "d")
	if got == nil || math.Abs(got.Selectivity-0.05) > 1e-12 {
		t.Fatalf("adjusted = %+v", got)
	}
	if AdjustIntraVertical(&wf.Job{ID: "x"}, 0, "d") != nil {
		t.Error("missing profile should adjust to nil")
	}
}

func TestMergeHorizontal(t *testing.T) {
	j1 := &wf.Job{
		ID:          "a",
		MapBranches: []wf.MapBranch{{Tag: 0, Input: "d"}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "o1",
			Stages: []wf.Stage{wf.ReduceStage("r", sumReduce, nil, 0)},
		}},
		Profile: &wf.JobProfile{},
	}
	j1.Profile.SetMapProfile(0, "d", &wf.PipelineProfile{Selectivity: 0.5})
	j1.Profile.SetReduceProfile(0, &wf.PipelineProfile{Selectivity: 0.1})
	j2 := &wf.Job{
		ID:          "b",
		MapBranches: []wf.MapBranch{{Tag: 0, Input: "d"}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "o2",
			Stages: []wf.Stage{wf.ReduceStage("r", sumReduce, nil, 0)},
		}},
		Profile: &wf.JobProfile{},
	}
	j2.Profile.SetMapProfile(0, "d", &wf.PipelineProfile{Selectivity: 0.25})
	j2.Profile.SetReduceProfile(0, &wf.PipelineProfile{Selectivity: 0.2})
	merged := MergeHorizontal([]*wf.Job{j1, j2}, map[string]int{"a": 0, "b": 1})
	if merged == nil {
		t.Fatal("merge failed")
	}
	if merged.MapProfile(wf.MapBranch{Tag: 0, Input: "d"}).Selectivity != 0.5 {
		t.Error("tag 0 map profile wrong")
	}
	if merged.MapProfile(wf.MapBranch{Tag: 1, Input: "d"}).Selectivity != 0.25 {
		t.Error("tag 1 map profile wrong")
	}
	if merged.ReduceProfile(1).Selectivity != 0.2 {
		t.Error("tag 1 reduce profile wrong")
	}
	// A job without a profile poisons the merge (information spectrum).
	j2.Profile = nil
	if MergeHorizontal([]*wf.Job{j1, j2}, map[string]int{"a": 0, "b": 1}) != nil {
		t.Error("merge with unknown profile should be unknown")
	}
}

func TestHasFullProfiles(t *testing.T) {
	w := &wf.Workflow{Jobs: []*wf.Job{{ID: "a", Profile: &wf.JobProfile{}}, {ID: "b"}}}
	if HasFullProfiles(w) {
		t.Error("missing profile not detected")
	}
	w.Jobs[1].Profile = &wf.JobProfile{}
	if !HasFullProfiles(w) {
		t.Error("full profiles not detected")
	}
}
