// Package profile generates and adjusts profile annotations.
//
// Profiles are collected the way Starfish collects them — by observing an
// actual execution — except that the execution happens on the mrsim
// substrate over a data sample instead of an instrumented Hadoop run
// (Section 2.2, Section 6). The sampling step is what injects realistic
// estimation error into the What-if engine, producing the
// estimated-vs-actual scatter of Figure 14.
//
// The package also implements the paper's "adjustment" step (Section 5):
// when a packing transformation builds new jobs out of old ones, new
// profile annotations are derived from the old ones (record selectivities
// multiply along a pipeline; CPU costs accumulate weighted by upstream
// selectivity).
package profile

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Profiler runs workflows on sampled inputs to produce profile annotations.
type Profiler struct {
	// Cluster calibrates the simulated execution used for profiling.
	Cluster *mrsim.Cluster
	// SampleFraction is the fraction of each base partition profiled
	// (0 < f <= 1). 1.0 profiles the full data (no estimation error).
	SampleFraction float64
	// Seed drives deterministic sampling.
	Seed int64
}

// NewProfiler returns a profiler with the given sampling fraction.
func NewProfiler(cluster *mrsim.Cluster, fraction float64, seed int64) *Profiler {
	return &Profiler{Cluster: cluster, SampleFraction: fraction, Seed: seed}
}

// Annotate executes the workflow over a sampled copy of the base data and
// attaches a JobProfile annotation to every job of w (in place). It also
// fills in dataset size annotations (EstRecords, EstBytes, EstPartitions)
// for base datasets from the real DFS contents.
func (p *Profiler) Annotate(w *wf.Workflow, dfs *mrsim.DFS) error {
	return p.AnnotateContext(context.Background(), w, dfs)
}

// AnnotateContext is Annotate under a context. Cancellation is checked
// throughout the sample execution; a cancelled profiling run returns
// ctx.Err() and leaves w entirely unannotated (profiles and dataset sizes
// are only attached after the sample run completes).
func (p *Profiler) AnnotateContext(ctx context.Context, w *wf.Workflow, dfs *mrsim.DFS) error {
	if p.SampleFraction <= 0 || p.SampleFraction > 1 {
		return fmt.Errorf("profile: sample fraction %v out of (0,1]", p.SampleFraction)
	}
	sampled := p.sampleDFS(w, dfs)
	// Profile with combiners enabled wherever one exists, so the combine
	// reduction statistic is observed even if the submitted configuration
	// leaves the combiner off — otherwise the What-if engine could never
	// price combiner-enabled configurations.
	wRun := w.Clone()
	for _, job := range wRun.Jobs {
		for _, g := range job.ReduceGroups {
			if g.Combiner != nil {
				job.Config.UseCombiner = true
				break
			}
		}
	}
	eng := mrsim.NewEngine(p.Cluster, sampled)
	rep, err := eng.RunWorkflowContext(ctx, wRun)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("profile: sample run failed: %w", err)
	}
	for _, job := range w.Jobs {
		jr := rep.Job(job.ID)
		if jr == nil {
			return fmt.Errorf("profile: no report for job %s", job.ID)
		}
		job.Profile = FromReport(job, jr)
	}
	// Base dataset annotations come from the full (unsampled) data.
	for _, d := range w.Datasets {
		if !d.Base {
			continue
		}
		stored, ok := dfs.Get(d.ID)
		if !ok {
			return fmt.Errorf("profile: base dataset %q not on DFS", d.ID)
		}
		d.EstRecords = float64(stored.Records())
		d.EstBytes = float64(stored.Bytes())
		d.EstPartitions = len(stored.Parts)
		d.Layout = stored.Layout.Clone()
	}
	return nil
}

// sampleDFS builds a DFS holding a deterministic Bernoulli sample of each
// base dataset used by w; other datasets are not copied (the run recreates
// intermediates).
func (p *Profiler) sampleDFS(w *wf.Workflow, dfs *mrsim.DFS) *mrsim.DFS {
	out := mrsim.NewDFS()
	for _, d := range w.Datasets {
		if !d.Base {
			continue
		}
		stored, ok := dfs.Get(d.ID)
		if !ok {
			continue // surfaced later as a run error
		}
		parts := make([]*mrsim.Partition, len(stored.Parts))
		rng := rand.New(rand.NewSource(p.Seed ^ seedFor(d.ID)))
		for i, part := range stored.Parts {
			var kept []keyval.Pair
			if p.SampleFraction >= 1 {
				kept = part.Pairs
			} else {
				for _, pair := range part.Pairs {
					if rng.Float64() < p.SampleFraction {
						kept = append(kept, pair)
					}
				}
			}
			np := mrsim.NewPartition(kept)
			np.Bounds = part.Bounds
			parts[i] = np
		}
		out.Put(d.ID, parts, stored.Layout.Clone())
	}
	return out
}

// FromReport converts one job's observed execution statistics into a
// profile annotation.
func FromReport(job *wf.Job, jr *mrsim.JobReport) *wf.JobProfile {
	prof := &wf.JobProfile{}
	for tag, ts := range jr.Tags {
		// SetMapProfile's per-tag slot is last-writer-wins, and MapByInput
		// is a Go map: iterating it directly would let map order pick which
		// input's statistics represent a multi-input (join) tag, varying
		// per process. Walk inputs in the job's branch order instead (any
		// leftovers sorted), so profiles — and everything estimated from
		// them — are deterministic.
		seen := map[string]bool{}
		var inputs []string
		for _, b := range job.MapBranches {
			if b.Tag == tag && !seen[b.Input] {
				if _, ok := ts.MapByInput[b.Input]; ok {
					seen[b.Input] = true
					inputs = append(inputs, b.Input)
				}
			}
		}
		var rest []string
		for input := range ts.MapByInput {
			if !seen[input] {
				rest = append(rest, input)
			}
		}
		sort.Strings(rest)
		inputs = append(inputs, rest...)
		for _, input := range inputs {
			prof.SetMapProfile(tag, input, pipelineProfile(ts.MapByInput[input], 0))
		}
		g := job.Group(tag)
		if g != nil && len(g.Stages) > 0 {
			rp := pipelineProfile(&ts.Reduce, ts.Reduce.Groups)
			if ts.CombineIn > 0 {
				rp.CombineReduction = float64(ts.CombineOut) / float64(ts.CombineIn)
			} else {
				rp.CombineReduction = 1
			}
			if pre := ts.MapTotals().OutRecords; pre > 0 && ts.Reduce.Groups > 0 {
				rp.GroupsPerMapRecord = float64(ts.Reduce.Groups) / float64(pre)
			}
			prof.SetReduceProfile(tag, rp)
		}
		if mp := prof.MapSide[tag]; mp != nil {
			mp.KeySample = ts.MapKeySample
		}
	}
	return prof
}

func pipelineProfile(ps *mrsim.PipeStats, groups int64) *wf.PipelineProfile {
	out := &wf.PipelineProfile{Selectivity: 1, CombineReduction: 1}
	if ps.InRecords > 0 {
		out.Selectivity = float64(ps.OutRecords) / float64(ps.InRecords)
		out.CPUPerRecord = ps.CPU / float64(ps.InRecords)
		out.InBytesPerRecord = float64(ps.InBytes) / float64(ps.InRecords)
		if groups > 0 {
			out.GroupsPerRecord = float64(groups) / float64(ps.InRecords)
		}
	}
	if ps.OutRecords > 0 {
		out.OutBytesPerRecord = float64(ps.OutBytes) / float64(ps.OutRecords)
	}
	return out
}

// HasFullProfiles reports whether every job of w carries a profile
// annotation — the availability test the What-if engine uses before
// falling back to the #jobs cost model (Section 5).
func HasFullProfiles(w *wf.Workflow) bool {
	for _, j := range w.Jobs {
		if j.Profile == nil {
			return false
		}
	}
	return true
}

func seedFor(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
