package profile

import "github.com/stubby-mr/stubby/internal/wf"

// Adjustment of profile annotations for packing transformations
// (Section 5): "the new map-task record selectivity is calculated as the
// product of the record selectivities of the old map and reduce functions
// ... the CPU cost of the new map task is calculated as the sum of the CPU
// costs of the old functions" — generalized here to arbitrary pipeline
// composition, with downstream CPU weighted by upstream selectivity
// (cardinality-estimation style).

// ComposeSerial derives the profile of a pipeline formed by running `b`
// immediately after `a` (a's outputs are b's inputs). Either input may be
// nil, meaning "unknown": the result is then nil too, because a packed
// pipeline's statistics cannot be derived from partial information.
func ComposeSerial(a, b *wf.PipelineProfile) *wf.PipelineProfile {
	if a == nil || b == nil {
		return nil
	}
	out := &wf.PipelineProfile{
		Selectivity:       a.Selectivity * b.Selectivity,
		CPUPerRecord:      a.CPUPerRecord + a.Selectivity*b.CPUPerRecord,
		InBytesPerRecord:  a.InBytesPerRecord,
		OutBytesPerRecord: b.OutBytesPerRecord,
		// Grouping density is set by the first grouped stage, i.e. a's.
		GroupsPerRecord:    a.GroupsPerRecord,
		GroupsPerMapRecord: a.GroupsPerMapRecord,
		// The combiner, if any, still belongs to the upstream job's map
		// output; keep its observed reduction.
		CombineReduction: a.CombineReduction,
	}
	if out.CombineReduction == 0 {
		out.CombineReduction = 1
	}
	// The composed pipeline emits b's keys: downstream decisions (split
	// points, skew) should see b's sample. Samples are immutable once
	// attached (see wf.PipelineProfile), so the composed profile shares
	// the backing slice.
	if b.KeySample != nil {
		out.KeySample = b.KeySample
	} else if a.KeySample != nil {
		out.KeySample = a.KeySample
	}
	return out
}

// AdjustIntraVertical derives the consumer-side profile after an intra-job
// vertical packing converts consumer job jc into a map-only job: the new
// map pipeline is [Mc..., Rc...], so its profile is the composition of the
// consumer's old map-side and reduce-side profiles for the given tag and
// input.
func AdjustIntraVertical(jc *wf.Job, tag int, input string) *wf.PipelineProfile {
	if jc.Profile == nil {
		return nil
	}
	mp := jc.Profile.MapProfile(wf.MapBranch{Tag: tag, Input: input})
	rp := jc.Profile.ReduceProfile(tag)
	return ComposeSerial(mp, rp)
}

// AdjustInterVerticalIntoReduce derives the producer's new reduce-side
// profile after inter-job vertical packing appends a map-only consumer's
// map pipeline to the producer's reduce pipeline.
func AdjustInterVerticalIntoReduce(producerReduce, consumerMap *wf.PipelineProfile) *wf.PipelineProfile {
	return ComposeSerial(producerReduce, consumerMap)
}

// AdjustInterVerticalIntoMap derives the consumer's new map-side profile
// after inter-job vertical packing prepends a map-only producer's map
// pipeline to the consumer's map pipeline.
func AdjustInterVerticalIntoMap(producerMap, consumerMap *wf.PipelineProfile) *wf.PipelineProfile {
	return ComposeSerial(producerMap, consumerMap)
}

// MergeHorizontal builds the profile of a horizontally packed job from the
// profiles of the original jobs, renumbered by the tag mapping:
// tagOf[jobID] gives the offset added to each original tag. Jobs without
// profiles yield a nil (unknown) merged profile.
func MergeHorizontal(jobs []*wf.Job, tagOf map[string]int) *wf.JobProfile {
	out := &wf.JobProfile{}
	for _, j := range jobs {
		if j.Profile == nil {
			return nil
		}
		offset := tagOf[j.ID]
		for i := range j.MapBranches {
			b := j.MapBranches[i]
			mp := j.Profile.MapProfile(b)
			if mp == nil {
				return nil
			}
			out.SetMapProfile(b.Tag+offset, b.Input, mp.Clone())
		}
		for i := range j.ReduceGroups {
			g := j.ReduceGroups[i]
			if g.MapOnly() {
				continue
			}
			rp := j.Profile.ReduceProfile(g.Tag)
			if rp == nil {
				return nil
			}
			out.SetReduceProfile(g.Tag+offset, rp.Clone())
		}
	}
	return out
}
