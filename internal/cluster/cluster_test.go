package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRegisterHeartbeatLease(t *testing.T) {
	t.Parallel()
	c := New(WithLeaseTTL(80 * time.Millisecond))
	id, ttl := c.Register("http://w1", "")
	if id != "w-1" || ttl != 80*time.Millisecond {
		t.Fatalf("Register = %q, %v", id, ttl)
	}
	if !c.Heartbeat(id, 3, 7) {
		t.Fatal("heartbeat for live worker rejected")
	}
	if c.Heartbeat("w-99", 0, 0) {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	st := c.Stats()
	if st.Workers != 1 || st.LiveWorkers != 1 || st.SingleFlightHits != 3 || st.Computes != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// Silence past the TTL expires the lease...
	waitFor(t, "lease expiry", func() bool { return c.Stats().LiveWorkers == 0 })
	// ...and re-registering under the old ID revives it.
	id2, _ := c.Register("http://w1b", id)
	if id2 != id {
		t.Fatalf("re-register assigned %q, want %q", id2, id)
	}
	ws := c.Workers()
	if len(ws) != 1 || !ws[0].Live || ws[0].URL != "http://w1b" {
		t.Fatalf("workers after revive = %+v", ws)
	}
}

func TestHeartbeatAfterMarkDeadDemandsReregister(t *testing.T) {
	t.Parallel()
	c := New()
	id, _ := c.Register("http://w1", "")
	c.markDead(id)
	if c.Heartbeat(id, 0, 0) {
		t.Fatal("heartbeat accepted for dead-marked worker")
	}
	if got, _ := c.Register("http://w1", id); got != id {
		t.Fatalf("revival re-register = %q, want %q", got, id)
	}
	if !c.Heartbeat(id, 0, 0) {
		t.Fatal("heartbeat rejected after revival")
	}
}

// fakeWorker is a minimal stand-in for a stubbyd worker's job API: every
// submission becomes a job that reaches the configured terminal state.
type fakeWorker struct {
	srv        *httptest.Server
	submits    atomic.Int64
	state      string // terminal state reported after submission
	result     []byte
	errDoc     *planio.ErrorDoc
	submitCode int // non-zero: reject submissions with this HTTP status
}

func newFakeWorker(t *testing.T, state string, result []byte) *fakeWorker {
	t.Helper()
	f := &fakeWorker{state: state, result: result}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := f.submits.Add(1)
		if f.submitCode != 0 {
			w.WriteHeader(f.submitCode)
			_ = json.NewEncoder(w).Encode(planio.ErrorEnvelope{Error: f.errDoc})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(planio.SubmitResponse{ID: fmt.Sprintf("job-%d", n), State: "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc := planio.StatusDoc{ID: r.PathValue("id"), State: f.state, Error: f.errDoc}
		_ = json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(f.result)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func TestDispatchRoundTrip(t *testing.T) {
	t.Parallel()
	want := []byte(`{"plan":"dispatched"}`)
	fw := newFakeWorker(t, "done", want)
	c := New(WithPollInterval(2 * time.Millisecond))
	id, _ := c.Register(fw.srv.URL, "")
	res, err := c.Dispatch(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(res) != string(want) {
		t.Fatalf("Dispatch result = %q, want %q", res, want)
	}
	st := c.Stats()
	if st.Dispatches != 1 || st.Redispatches != 0 || st.Failovers != 0 {
		t.Fatalf("counters = %+v", st)
	}
	if !c.alive(id) {
		t.Fatal("worker lost its lease over a successful dispatch")
	}
}

func TestDispatchNoWorkersFailsOver(t *testing.T) {
	t.Parallel()
	c := New()
	_, err := c.Dispatch(context.Background(), []byte(`{}`))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Dispatch error = %v, want ErrNoWorkers", err)
	}
	if st := c.Stats(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
}

func TestDispatchPermanentErrorNoRetry(t *testing.T) {
	t.Parallel()
	fw := newFakeWorker(t, "done", nil)
	fw.submitCode = http.StatusBadRequest
	fw.errDoc = &planio.ErrorDoc{Kind: "invalid", Message: "bad plan"}
	c := New(WithPollInterval(2 * time.Millisecond))
	c.Register(fw.srv.URL, "")
	_, err := c.Dispatch(context.Background(), []byte(`{}`))
	if err == nil || errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Dispatch error = %v, want permanent error", err)
	}
	if n := fw.submits.Load(); n != 1 {
		t.Fatalf("submits = %d, want 1 (no retry on permanent errors)", n)
	}
	if st := c.Stats(); st.LiveWorkers != 1 {
		t.Fatal("permanent error killed the worker's lease")
	}
}

func TestDispatchJobFailureIsPermanent(t *testing.T) {
	t.Parallel()
	fw := newFakeWorker(t, "failed", nil)
	fw.errDoc = &planio.ErrorDoc{Kind: "internal", Message: "search exploded"}
	c := New(WithPollInterval(2 * time.Millisecond))
	c.Register(fw.srv.URL, "")
	_, err := c.Dispatch(context.Background(), []byte(`{}`))
	if err == nil || isTransient(err) {
		t.Fatalf("Dispatch error = %v, want permanent job failure", err)
	}
	if n := fw.submits.Load(); n != 1 {
		t.Fatalf("submits = %d, want 1", n)
	}
}

func TestDispatchRedispatchesOffDeadWorker(t *testing.T) {
	t.Parallel()
	// Worker A accepts the job but never finishes it (state stays
	// "running"); worker B completes. A's lease is allowed to lapse
	// mid-job, so the coordinator must re-dispatch to B.
	want := []byte(`{"plan":"from-b"}`)
	wa := newFakeWorker(t, "running", nil)
	wb := newFakeWorker(t, "done", want)
	c := New(WithLeaseTTL(60*time.Millisecond), WithPollInterval(2*time.Millisecond))
	idA, _ := c.Register(wa.srv.URL, "")
	idB, _ := c.Register(wb.srv.URL, "")
	stop := make(chan struct{})
	defer close(stop)
	go func() { // keep only B alive
		t := time.NewTicker(15 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Heartbeat(idB, 0, 0)
			}
		}
	}()
	// The id tiebreak ("w-1" < "w-2") sends the first attempt to A.
	res, err := c.Dispatch(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(res) != string(want) {
		t.Fatalf("Dispatch result = %q, want %q", res, want)
	}
	st := c.Stats()
	if st.Redispatches == 0 {
		t.Fatalf("redispatches = 0, want > 0 (counters %+v)", st)
	}
	if c.alive(idA) {
		t.Fatal("dead worker still holds a lease")
	}
	if wa.submits.Load() < 1 || wb.submits.Load() < 1 {
		t.Fatalf("submits a=%d b=%d, want both >= 1", wa.submits.Load(), wb.submits.Load())
	}
}

func TestDispatchContextCancel(t *testing.T) {
	t.Parallel()
	fw := newFakeWorker(t, "running", nil) // never finishes
	c := New(WithPollInterval(2 * time.Millisecond))
	id, _ := c.Register(fw.srv.URL, "")
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Heartbeat(id, 0, 0)
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	_, err := c.Dispatch(ctx, []byte(`{}`))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Dispatch error = %v, want deadline exceeded", err)
	}
}

func TestAgentLifecycle(t *testing.T) {
	t.Parallel()
	c := New(WithLeaseTTL(120 * time.Millisecond))
	mux := http.NewServeMux()
	c.Handle(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var hits, comps atomic.Uint64
	hits.Store(5)
	comps.Store(2)
	a := NewAgent(srv.URL, "http://worker-1", WithAgentStats(func() (uint64, uint64) {
		return hits.Load(), comps.Load()
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx) }()

	waitFor(t, "agent registration", func() bool { return c.Stats().LiveWorkers == 1 })
	waitFor(t, "heartbeat-reported stats", func() bool {
		st := c.Stats()
		return st.SingleFlightHits == 5 && st.Computes == 2
	})
	id := a.ID()
	if id == "" {
		t.Fatal("agent has no ID after registration")
	}

	// A coordinator that marks the worker dead (or restarts) rejects the
	// next heartbeat; the agent must re-register under the same ID.
	c.markDead(id)
	waitFor(t, "agent re-registration", func() bool {
		return c.Stats().LiveWorkers == 1 && a.ID() == id
	})

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not stop on context cancel")
	}
}
