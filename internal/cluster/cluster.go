// Package cluster turns stubbyd into a horizontally scaled service: a
// coordinator accepts the ordinary /v1/jobs API and dispatches each
// optimization to a pool of registered workers, themselves plain stubbyd
// processes that also run an Agent (register + heartbeat).
//
// The control plane is deliberately thin. Workers register with a base URL
// and renew a lease by heartbeating; the data plane is the existing job
// wire — the coordinator submits to a worker's /v1/jobs, polls its status,
// and fetches the result document verbatim. Failure handling composes with
// the layers below rather than duplicating them: a worker whose lease
// expires mid-job gets its jobs re-dispatched to a live worker, and
// because every worker shares the plan store (and may journal its queue),
// a re-dispatched or crash-recovered job converges to the byte-identical
// plan through the store's content addressing and cross-replica
// single-flight.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
)

// ErrNoWorkers reports a dispatch attempted with no live workers. The
// serving layer treats it as the failover signal: the coordinator's own
// session optimizes locally instead of failing the job.
var ErrNoWorkers = errors.New("cluster: no live workers")

const (
	// DefaultLeaseTTL is how long a silent worker keeps its lease.
	DefaultLeaseTTL = 3 * time.Second
	// defaultPollInterval paces the coordinator's status polls against a
	// worker executing one of its jobs.
	defaultPollInterval = 20 * time.Millisecond
	// maxDispatchAttempts bounds re-dispatch: a job that fails
	// transiently on this many distinct attempts stops bouncing.
	maxDispatchAttempts = 8
)

// transientError marks a dispatch failure worth retrying on another
// worker: connection failures, worker overload or drain, lease expiry.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(format string, args ...any) error {
	return &transientError{fmt.Errorf(format, args...)}
}

func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// worker is one registered replica.
type worker struct {
	id       string
	url      string
	lastBeat time.Time
	dead     bool // marked unreachable; revives by re-registering
	leases   int  // in-flight dispatches held by this worker

	// Last heartbeat-reported store counters, summed into Stats so the
	// coordinator can report cluster-wide single-flight effectiveness
	// without polling every worker.
	claimHits uint64
	computes  uint64
}

// Coordinator owns cluster membership and job dispatch.
type Coordinator struct {
	leaseTTL time.Duration
	poll     time.Duration
	hc       *http.Client

	mu      sync.Mutex
	workers map[string]*worker
	nextID  int

	dispatches   uint64
	redispatches uint64
	failovers    uint64
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithLeaseTTL sets how long a worker's lease survives without a
// heartbeat. Heartbeats are sent at a third of the TTL.
func WithLeaseTTL(d time.Duration) Option {
	return func(c *Coordinator) {
		if d > 0 {
			c.leaseTTL = d
		}
	}
}

// WithHTTPClient sets the HTTP client used for dispatch.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Coordinator) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithPollInterval sets the status-poll pacing for in-flight dispatches.
func WithPollInterval(d time.Duration) Option {
	return func(c *Coordinator) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New builds a Coordinator with no workers.
func New(opts ...Option) *Coordinator {
	c := &Coordinator{
		leaseTTL: DefaultLeaseTTL,
		poll:     defaultPollInterval,
		hc:       &http.Client{},
		workers:  make(map[string]*worker),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// LeaseTTL reports the configured worker lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.leaseTTL }

// Register admits (or revives) a worker and returns its ID and lease TTL.
// A worker re-registering under its previous ID keeps it; an unknown or
// empty ID gets a fresh one.
func (c *Coordinator) Register(wurl, id string) (string, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; id != "" && ok {
		w.url = wurl
		w.lastBeat = time.Now()
		w.dead = false
		return w.id, c.leaseTTL
	}
	c.nextID++
	w := &worker{id: fmt.Sprintf("w-%d", c.nextID), url: wurl, lastBeat: time.Now()}
	c.workers[w.id] = w
	return w.id, c.leaseTTL
}

// Heartbeat renews a worker's lease and records its reported store
// counters. It reports false — re-register — for workers the coordinator
// does not know or has marked dead, so a worker that was presumed lost
// re-admits itself cleanly instead of heartbeating into the void.
func (c *Coordinator) Heartbeat(id string, claimHits, computes uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || w.dead {
		return false
	}
	w.lastBeat = time.Now()
	w.claimHits = claimHits
	w.computes = computes
	return true
}

// liveLocked reports whether w holds a valid lease. Callers hold c.mu.
func (c *Coordinator) liveLocked(w *worker, now time.Time) bool {
	return !w.dead && now.Sub(w.lastBeat) <= c.leaseTTL
}

// alive reports whether the worker named id currently holds a lease.
func (c *Coordinator) alive(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	return ok && c.liveLocked(w, time.Now())
}

// markDead drops a worker from dispatch until it re-registers.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok {
		w.dead = true
	}
}

// pick returns the live worker with the fewest in-flight dispatches (ties
// broken by ID for determinism), or nil when no worker holds a lease.
func (c *Coordinator) pick() *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *worker
	for _, w := range c.workers {
		if !c.liveLocked(w, now) {
			continue
		}
		if best == nil || w.leases < best.leases || (w.leases == best.leases && w.id < best.id) {
			best = w
		}
	}
	if best != nil {
		best.leases++
	}
	return best
}

func (c *Coordinator) dropLease(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok && w.leases > 0 {
		w.leases--
	}
}

// Workers snapshots the membership for /v1/cluster/workers.
func (c *Coordinator) Workers() []planio.WorkerDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	docs := make([]planio.WorkerDoc, 0, len(c.workers))
	for _, w := range c.workers {
		docs = append(docs, planio.WorkerDoc{
			ID:         w.id,
			URL:        w.url,
			Live:       c.liveLocked(w, now),
			Leases:     w.leases,
			LastBeatMS: w.lastBeat.UnixMilli(),
		})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	return docs
}

// Stats snapshots the cluster counters for /statsz. SingleFlightHits and
// Computes are cluster-wide sums of the workers' last-reported store
// counters.
func (c *Coordinator) Stats() planio.ClusterStatsDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	doc := planio.ClusterStatsDoc{
		Workers:      len(c.workers),
		Dispatches:   c.dispatches,
		Redispatches: c.redispatches,
		Failovers:    c.failovers,
	}
	for _, w := range c.workers {
		if c.liveLocked(w, now) {
			doc.LiveWorkers++
			doc.Leases += w.leases
		}
		doc.SingleFlightHits += w.claimHits
		doc.Computes += w.computes
	}
	return doc
}

// Dispatch runs one encoded optimize request (a planio request document)
// on the cluster and returns the worker's encoded result document.
// Transient failures — an unreachable worker, a drained or overloaded one,
// a lease expiring mid-job — mark the worker dead and re-dispatch to
// another, up to maxDispatchAttempts. Permanent failures (an invalid
// request, the optimization itself failing) return immediately: they would
// fail identically anywhere. With no live workers it returns ErrNoWorkers,
// the caller's cue to fail over to local optimization.
func (c *Coordinator) Dispatch(ctx context.Context, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < maxDispatchAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := c.pick()
		if w == nil {
			c.mu.Lock()
			c.failovers++
			c.mu.Unlock()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (after: %v)", ErrNoWorkers, lastErr)
			}
			return nil, ErrNoWorkers
		}
		c.mu.Lock()
		if attempt == 0 {
			c.dispatches++
		} else {
			c.redispatches++
		}
		c.mu.Unlock()
		res, err := c.runOn(ctx, w, body)
		c.dropLease(w.id)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !isTransient(err) {
			return nil, err
		}
		// Transient: presume the worker lost, re-dispatch elsewhere. The
		// worker re-admits itself by re-registering once healthy.
		c.markDead(w.id)
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: dispatch gave up after %d attempts: %w", maxDispatchAttempts, lastErr)
}

// runOn executes one job on one worker: submit, poll, fetch result. A
// worker whose lease lapses while its job runs yields a transient error so
// the job re-dispatches; the abandoned worker's own copy is harmless — if
// it finishes anyway it publishes the same content-addressed plan.
func (c *Coordinator) runOn(ctx context.Context, w *worker, body []byte) ([]byte, error) {
	id, err := c.submit(ctx, w, body)
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(c.poll)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
		if !c.alive(w.id) {
			return nil, transient("cluster: worker %s lease expired with job %s in flight", w.id, id)
		}
		st, err := c.status(ctx, w, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			return c.result(ctx, w, id)
		case "failed", "canceled":
			if st.Error != nil {
				return nil, st.Error.Err()
			}
			return nil, fmt.Errorf("cluster: job %s on worker %s ended %s", id, w.id, st.State)
		}
		timer.Reset(c.poll)
	}
}

// submit posts the request document to the worker's job API, propagating
// any remaining context deadline the way a direct client would.
func (c *Coordinator) submit(ctx context.Context, w *worker, body []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Stubby-Deadline-MS", strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", transient("cluster: submit to worker %s: %v", w.id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", transient("cluster: read submit ack from worker %s: %v", w.id, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", classifyHTTP(w.id, "submit", resp.StatusCode, data)
	}
	var ack planio.SubmitResponse
	if err := json.Unmarshal(data, &ack); err != nil || ack.ID == "" {
		return "", transient("cluster: malformed submit ack from worker %s", w.id)
	}
	return ack.ID, nil
}

func (c *Coordinator) status(ctx context.Context, w *worker, id string) (*planio.StatusDoc, error) {
	data, err := c.get(ctx, w, "/v1/jobs/"+url.PathEscape(id), "status")
	if err != nil {
		return nil, err
	}
	var doc planio.StatusDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, transient("cluster: malformed status from worker %s: %v", w.id, err)
	}
	return &doc, nil
}

func (c *Coordinator) result(ctx context.Context, w *worker, id string) ([]byte, error) {
	return c.get(ctx, w, "/v1/jobs/"+url.PathEscape(id)+"/result", "result")
}

func (c *Coordinator) get(ctx context.Context, w *worker, path, op string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transient("cluster: %s from worker %s: %v", op, w.id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, transient("cluster: read %s from worker %s: %v", op, w.id, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classifyHTTP(w.id, op, resp.StatusCode, data)
	}
	return data, nil
}

// classifyHTTP folds a worker's HTTP error into the transient/permanent
// split. 4xx responses are the request's fault (or the job's own terminal
// state) and would repeat on any worker; 5xx and 429 mean this worker
// can't take the job right now — some other one may.
func classifyHTTP(workerID, op string, code int, body []byte) error {
	msg := fmt.Sprintf("cluster: %s on worker %s: HTTP %d", op, workerID, code)
	var env planio.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		if code == http.StatusTooManyRequests || code >= 500 {
			return &transientError{env.Error.Err()}
		}
		return env.Error.Err()
	}
	if code == http.StatusTooManyRequests || code >= 500 {
		return transient("%s", msg)
	}
	return errors.New(msg)
}

// Handle mounts the cluster control plane onto a serving mux.
func (c *Coordinator) Handle(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/cluster/workers", c.handleWorkers)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reg, err := planio.DecodeRegisterRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, ttl := c.Register(reg.URL, reg.ID)
	writeJSON(w, planio.RegisterResponse{ID: id, TTLMS: ttl.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hb, err := planio.DecodeHeartbeatRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, planio.HeartbeatResponse{OK: c.Heartbeat(hb.ID, hb.ClaimHits, hb.Computes)})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, planio.WorkersResponse{Workers: c.Workers()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
