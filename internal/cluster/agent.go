package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
)

// registerRetryInterval paces registration attempts while the coordinator
// is unreachable (not started yet, restarting, partitioned).
const registerRetryInterval = 200 * time.Millisecond

// Agent is the worker-side half of the control plane: it registers a
// worker's serving URL with a coordinator and keeps the worker's lease
// alive by heartbeating, re-registering whenever the coordinator stops
// recognizing it (coordinator restart, missed heartbeats, a transient
// partition that got the worker marked dead).
type Agent struct {
	join      string
	advertise string
	hc        *http.Client
	stats     func() (claimHits, computes uint64)

	mu  sync.Mutex
	id  string
	ttl time.Duration
}

// AgentOption configures an Agent.
type AgentOption func(*Agent)

// WithAgentHTTPClient sets the HTTP client used for control traffic.
func WithAgentHTTPClient(hc *http.Client) AgentOption {
	return func(a *Agent) {
		if hc != nil {
			a.hc = hc
		}
	}
}

// WithAgentStats supplies the store counters each heartbeat reports: the
// worker's cumulative cross-replica single-flight hits and computes. The
// coordinator sums them into its cluster stats.
func WithAgentStats(fn func() (claimHits, computes uint64)) AgentOption {
	return func(a *Agent) { a.stats = fn }
}

// NewAgent builds an agent that joins the coordinator at join (base URL)
// and advertises the worker's own serving base URL.
func NewAgent(join, advertise string, opts ...AgentOption) *Agent {
	a := &Agent{join: join, advertise: advertise, hc: &http.Client{}}
	for _, o := range opts {
		o(a)
	}
	return a
}

// ID returns the coordinator-assigned worker ID ("" before the first
// successful registration).
func (a *Agent) ID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

// Run registers and then heartbeats until ctx ends, re-registering
// whenever the coordinator rejects a heartbeat. It only returns with
// ctx's error.
func (a *Agent) Run(ctx context.Context) error {
	for {
		if err := a.register(ctx); err != nil {
			return err
		}
		if err := a.beat(ctx); err != nil {
			return err
		}
		// beat returned without a ctx error: the coordinator no longer
		// recognizes us — loop back into registration.
	}
}

// register loops until one registration succeeds or ctx ends. An existing
// ID is re-announced so the worker keeps its identity across coordinator
// restarts.
func (a *Agent) register(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		body, err := planio.EncodeRegisterRequest(&planio.RegisterRequest{URL: a.advertise, ID: a.ID()})
		if err != nil {
			return err
		}
		var resp planio.RegisterResponse
		if err := a.post(ctx, "/v1/cluster/register", body, &resp); err == nil && resp.ID != "" {
			a.mu.Lock()
			a.id = resp.ID
			a.ttl = time.Duration(resp.TTLMS) * time.Millisecond
			a.mu.Unlock()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(registerRetryInterval):
		}
	}
}

// beat heartbeats at a third of the lease TTL. It returns nil when the
// coordinator rejects the heartbeat (re-register) and ctx.Err() when the
// context ends. Send failures are retried on the next tick — the lease
// tolerates two missed beats.
func (a *Agent) beat(ctx context.Context) error {
	a.mu.Lock()
	ttl := a.ttl
	a.mu.Unlock()
	interval := ttl / 3
	if interval <= 0 {
		interval = DefaultLeaseTTL / 3
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		hb := &planio.HeartbeatRequest{ID: a.ID()}
		if a.stats != nil {
			hb.ClaimHits, hb.Computes = a.stats()
		}
		body, err := planio.EncodeHeartbeatRequest(hb)
		if err != nil {
			return err
		}
		var resp planio.HeartbeatResponse
		if err := a.post(ctx, "/v1/cluster/heartbeat", body, &resp); err != nil {
			continue // transient; the lease survives a missed beat
		}
		if !resp.OK {
			return nil // unknown to the coordinator: re-register
		}
	}
}

func (a *Agent) post(ctx context.Context, path string, body []byte, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.join+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, into)
}
