package lang

import (
	"reflect"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// execBases builds a small deterministic DFS with the test tables:
//
//	sales:   (ord | part, qty, price)  — 60 rows, parts p0..p4
//	parts:   (part | brand)            — 5 rows
func execBases(t *testing.T) (*mrsim.DFS, []*wf.Dataset) {
	t.Helper()
	var sales []keyval.Pair
	for i := 0; i < 60; i++ {
		part := "p" + string(rune('0'+i%5))
		sales = append(sales, keyval.Pair{
			Key:   keyval.T(int64(i)),
			Value: keyval.T(part, int64(i%7+1), float64(i%10)*1.5),
		})
	}
	var parts []keyval.Pair
	for i := 0; i < 5; i++ {
		p := "p" + string(rune('0'+i))
		parts = append(parts, keyval.Pair{Key: keyval.T(p), Value: keyval.T("brand" + p)})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("sales", sales, mrsim.IngestSpec{
		NumPartitions: 4,
		KeyFields:     []string{"ord"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"ord"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dfs.Ingest("parts", parts, mrsim.IngestSpec{
		NumPartitions: 2,
		KeyFields:     []string{"part"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"part"}},
	}); err != nil {
		t.Fatal(err)
	}
	bases := []*wf.Dataset{
		{ID: "sales", Base: true, KeyFields: []string{"ord"}, ValueFields: []string{"part", "qty", "price"}},
		{ID: "parts", Base: true, KeyFields: []string{"part"}, ValueFields: []string{"brand"}},
	}
	return dfs, bases
}

func execCluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.VirtualScale = 1000
	return c
}

// runQuery compiles and executes a query, returning the sorted pairs of the
// named output dataset.
func runQuery(t *testing.T, src, out string) []keyval.Pair {
	t.Helper()
	dfs, bases := execBases(t)
	w, err := CompileString(src, bases, Options{Name: "exec"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := mrsim.NewEngine(execCluster(), dfs).RunWorkflow(w); err != nil {
		t.Fatalf("run: %v", err)
	}
	st, ok := dfs.Get(out)
	if !ok {
		t.Fatalf("output %q not materialized", out)
	}
	pairs := st.AllPairs()
	keyval.SortPairs(pairs, nil)
	return pairs
}

func TestExecGroupAggregates(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		g = GROUP s BY part;
		r = FOREACH g GENERATE group, COUNT(*) AS n, SUM(qty) AS tq, AVG(price) AS mp, MAX(qty), MIN(price);
		STORE r INTO 'agg';
	`, "agg")
	// Compute expectations directly from the generator formula.
	type acc struct {
		n          int64
		qty        int64
		price      float64
		maxQ       int64
		minP       float64
		havePrices bool
	}
	accs := map[string]*acc{}
	for i := 0; i < 60; i++ {
		part := "p" + string(rune('0'+i%5))
		q := int64(i%7 + 1)
		p := float64(i%10) * 1.5
		a, ok := accs[part]
		if !ok {
			a = &acc{minP: p, maxQ: q}
			accs[part] = a
		}
		a.n++
		a.qty += q
		a.price += p
		if q > a.maxQ {
			a.maxQ = q
		}
		if p < a.minP {
			a.minP = p
		}
	}
	if len(got) != 5 {
		t.Fatalf("groups = %d, want 5: %v", len(got), got)
	}
	for _, pr := range got {
		part := pr.Key[0].(string)
		a := accs[part]
		if a == nil {
			t.Fatalf("unexpected group %q", part)
		}
		want := keyval.T(a.n, float64(a.qty), a.price/float64(a.n), a.maxQ, a.minP)
		if keyval.Compare(pr.Value, want) != 0 {
			t.Errorf("group %s = %v, want %v", part, pr.Value, want)
		}
	}
}

func TestExecJoin(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		p = LOAD 'parts';
		j = JOIN s BY part, p BY part;
		STORE j INTO 'joined';
	`, "joined")
	if len(got) != 60 {
		t.Fatalf("join rows = %d, want 60", len(got))
	}
	for _, pr := range got {
		part := pr.Key[0].(string)
		brand := pr.Value[len(pr.Value)-1].(string)
		if brand != "brand"+part {
			t.Errorf("row %v joined wrong brand %q", pr, brand)
		}
	}
}

func TestExecJoinFiltersBothSides(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		cheap = FILTER s BY price < 6;
		p = LOAD 'parts';
		sel = FILTER p BY part == 'p2';
		j = JOIN cheap BY part, sel BY part;
		STORE j INTO 'joined';
	`, "joined")
	want := 0
	for i := 0; i < 60; i++ {
		if i%5 == 2 && float64(i%10)*1.5 < 6 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("filtered join rows = %d, want %d", len(got), want)
	}
	for _, pr := range got {
		if pr.Key[0].(string) != "p2" {
			t.Errorf("row %v escaped the part filter", pr)
		}
	}
}

func TestExecOrderLimitDesc(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		g = GROUP s BY part;
		rev = FOREACH g GENERATE group, SUM(price) AS total;
		srt = ORDER rev BY total DESC;
		top = LIMIT srt 3;
		STORE top INTO 'top3';
	`, "top3")
	if len(got) != 3 {
		t.Fatalf("top rows = %d, want 3", len(got))
	}
	// Ranks ascend while totals descend.
	for i, pr := range got {
		if pr.Key[0].(int64) != int64(i+1) {
			t.Fatalf("rank %d = %v", i, pr.Key)
		}
		if i > 0 && got[i-1].Value[1].(float64) < pr.Value[1].(float64) {
			t.Errorf("totals not descending: %v then %v", got[i-1].Value, pr.Value)
		}
	}
}

func TestExecOrderLimitAsc(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		g = GROUP s BY part;
		rev = FOREACH g GENERATE group, SUM(price) AS total;
		srt = ORDER rev BY total ASC;
		bottom = LIMIT srt 2;
		STORE bottom INTO 'bottom2';
	`, "bottom2")
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	if got[0].Value[1].(float64) > got[1].Value[1].(float64) {
		t.Errorf("totals not ascending: %v then %v", got[0].Value, got[1].Value)
	}
}

func TestExecMaterializedOrder(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		g = GROUP s BY part;
		rev = FOREACH g GENERATE group, SUM(price) AS total;
		srt = ORDER rev BY total;
		STORE srt INTO 'sorted';
	`, "sorted")
	if len(got) != 5 {
		t.Fatalf("rows = %d, want 5", len(got))
	}
	// Output key is the sort field.
	for i := 1; i < len(got); i++ {
		if keyval.Compare(got[i-1].Key, got[i].Key) > 0 {
			t.Errorf("sort keys out of order at %d: %v then %v", i, got[i-1].Key, got[i].Key)
		}
	}
}

func TestExecDistinct(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		p = FOREACH s GENERATE part;
		d = DISTINCT p;
		STORE d INTO 'uniq';
	`, "uniq")
	if len(got) != 5 {
		t.Fatalf("distinct parts = %d, want 5", len(got))
	}
}

func TestExecSplitTwoStores(t *testing.T) {
	dfs, bases := execBases(t)
	w, err := CompileString(`
		s = LOAD 'sales';
		SPLIT s INTO lo IF qty < 4, hi IF qty >= 4;
		gl = GROUP lo BY part;
		al = FOREACH gl GENERATE group, COUNT(*) AS n;
		gh = GROUP hi BY part;
		ah = FOREACH gh GENERATE group, COUNT(*) AS n;
		STORE al INTO 'lo_n';
		STORE ah INTO 'hi_n';
	`, bases, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := mrsim.NewEngine(execCluster(), dfs).RunWorkflow(w); err != nil {
		t.Fatalf("run: %v", err)
	}
	sum := func(ds string) int64 {
		st, ok := dfs.Get(ds)
		if !ok {
			t.Fatalf("%s missing", ds)
		}
		var total int64
		for _, pr := range st.AllPairs() {
			total += pr.Value[0].(int64)
		}
		return total
	}
	if lo, hi := sum("lo_n"), sum("hi_n"); lo+hi != 60 {
		t.Fatalf("split counts lo=%d hi=%d, want total 60", lo, hi)
	}
}

func TestExecFilterTypesAndOperators(t *testing.T) {
	got := runQuery(t, `
		s = LOAD 'sales';
		f = FILTER s BY qty >= 2 AND qty != 5 AND price < 12.5 AND part == 'p1';
		g = GROUP f BY part;
		r = FOREACH g GENERATE group, COUNT(*) AS n;
		STORE r INTO 'n';
	`, "n")
	want := int64(0)
	for i := 0; i < 60; i++ {
		q := int64(i%7 + 1)
		p := float64(i%10) * 1.5
		if i%5 == 1 && q >= 2 && q != 5 && p < 12.5 {
			want++
		}
	}
	if len(got) != 1 || got[0].Value[0].(int64) != want {
		t.Fatalf("filtered count = %v, want %d", got, want)
	}
}

// TestExecOptimizedQueryEquivalence is the paper's correctness contract
// applied to the language path: profile a compiled query, let Stubby
// transform it, and check the optimized plan produces identical outputs.
func TestExecOptimizedQueryEquivalence(t *testing.T) {
	src := `
		s = LOAD 'sales';
		SPLIT s INTO lo IF price < 7, hi IF price >= 7;
		gl = GROUP lo BY part;
		al = FOREACH gl GENERATE group, COUNT(*) AS n, SUM(price) AS rev;
		gh = GROUP hi BY part;
		ah = FOREACH gh GENERATE group, COUNT(*) AS n, MAX(qty) AS mq;
		STORE al INTO 'lo_agg';
		STORE ah INTO 'hi_agg';
	`
	dfs, bases := execBases(t)
	w, err := CompileString(src, bases, Options{Name: "equiv"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cl := execCluster()
	if err := profile.NewProfiler(cl, 1.0, 1).Annotate(w, dfs); err != nil {
		t.Fatalf("profile: %v", err)
	}
	res, err := optimizer.New(cl, optimizer.Options{Seed: 1}).Optimize(w)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	collect := func(plan *wf.Workflow) map[string][]keyval.Pair {
		d := dfs.Clone()
		if _, err := mrsim.NewEngine(cl, d).RunWorkflow(plan); err != nil {
			t.Fatalf("run: %v", err)
		}
		out := map[string][]keyval.Pair{}
		for _, ds := range []string{"lo_agg", "hi_agg"} {
			st, ok := d.Get(ds)
			if !ok {
				t.Fatalf("%s missing", ds)
			}
			pairs := st.AllPairs()
			keyval.SortPairs(pairs, nil)
			out[ds] = pairs
		}
		return out
	}
	want := collect(w)
	got := collect(res.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("optimized query changed results:\nwant %v\ngot  %v", want, got)
	}
}
