package lang

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

// FuzzParse drives the lexer and parser with arbitrary inputs. In normal
// test runs only the seed corpus executes; `go test -fuzz=FuzzParse
// ./internal/lang` explores further. The invariants: Parse never panics,
// and when it succeeds the canonical rendering reparses to the same
// rendering (print-parse fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		comprehensiveScript,
		"r = LOAD 'x';",
		"r = LOAD 'x' AS (a, b); s = FILTER r BY a < 1 AND b == 'q'; STORE s INTO 'o';",
		"SPLIT r INTO a IF x < 1, b IF x >= 1;",
		"g = GROUP r BY (a, b); s = FOREACH g GENERATE group, COUNT(*), AVG(a) AS m;",
		"j = JOIN a BY (x, y), b BY (u, v); o = ORDER j BY x DESC; t = LIMIT o 3;",
		"-- comment only\n",
		"r = LOAD 'x'; -- trailing\nSTORE r INTO 'y';",
		"'", "''", ";;;", "= = =", "r = FILTER s BY a <",
		"\x00\x01\x02", "r = LOAD 'x\n';",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return
		}
		printed := script.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, printed)
		}
		if again.String() != printed {
			t.Fatalf("print-parse not a fixpoint:\n%s\nvs\n%s", printed, again.String())
		}
	})
}

// FuzzCompile feeds parsed-and-compilable scripts through the compiler.
// The invariant: CompileString never panics, and any workflow it returns
// validates.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"r = LOAD 't'; g = GROUP r BY grp; s = FOREACH g GENERATE group, COUNT(*); STORE s INTO 'o';",
		"r = LOAD 't'; f = FILTER r BY x < 5; STORE f INTO 'o';",
		"r = LOAD 't'; d = DISTINCT r; STORE d INTO 'o';",
		"r = LOAD 't'; o = ORDER r BY x; STORE o INTO 's';",
		"r = LOAD 't'; o = ORDER r BY x DESC; l = LIMIT o 2; STORE l INTO 's';",
		"a = LOAD 't'; b = LOAD 't'; j = JOIN a BY id, b BY id; STORE j INTO 'o';",
		"r = LOAD 't'; SPLIT r INTO u IF x < 1, v IF x >= 1; STORE u INTO 'a'; STORE v INTO 'b';",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	bases := []*wf.Dataset{{
		ID: "t", Base: true,
		KeyFields:   []string{"id"},
		ValueFields: []string{"grp", "x"},
	}}
	f.Fuzz(func(t *testing.T, src string) {
		w, err := CompileString(src, bases, Options{})
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("compiled workflow invalid without error: %v", verr)
		}
	})
}
