package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types produced by the lexer.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer or decimal literal, possibly negative
	tokString // single-quoted literal
	tokAssign // =
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokSemi   // ;
	tokStar   // *
	tokLT     // <
	tokLE     // <=
	tokGT     // >
	tokGE     // >=
	tokEQ     // ==
	tokNE     // !=
	tokKeyword
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokAssign:
		return "'='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'=='"
	case tokNE:
		return "'!='"
	case tokKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("tokKind(%d)", int(k))
	}
}

// keywords are matched case-insensitively against identifiers. The value is
// the canonical (upper-case) spelling stored in the token text.
var keywords = map[string]bool{
	"LOAD": true, "AS": true, "FILTER": true, "BY": true, "AND": true,
	"FOREACH": true, "GENERATE": true, "GROUP": true, "JOIN": true,
	"ORDER": true, "DESC": true, "ASC": true, "LIMIT": true,
	"DISTINCT": true, "STORE": true, "INTO": true, "SPLIT": true,
	"IF": true,
}

// Pos locates a token in the source for error reporting.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

type token struct {
	kind tokKind
	text string // identifier name, canonical keyword, literal text
	pos  Pos
}

func (t token) String() string {
	switch t.kind {
	case tokIdent, tokKeyword:
		return t.text
	case tokNumber:
		return t.text
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.kind.String()
	}
}

// Error is a positioned parse or compile error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns source text into tokens. Comments run from "--" to end of
// line, as in Pig Latin and SQL.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '-':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token or a positioned error.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil
	case isDigit(c), c == '-' && lx.off+1 < len(lx.src) && isDigit(lx.src[lx.off+1]):
		start := lx.off
		lx.advance() // first digit or '-'
		seenDot := false
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if isDigit(c) {
				lx.advance()
				continue
			}
			if c == '.' && !seenDot && lx.off+1 < len(lx.src) && isDigit(lx.src[lx.off+1]) {
				seenDot = true
				lx.advance()
				continue
			}
			break
		}
		return token{kind: tokNumber, text: lx.src[start:lx.off], pos: pos}, nil
	case c == '\'':
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && lx.peekByte() != '\'' {
			if lx.peekByte() == '\n' {
				return token{}, errf(pos, "unterminated string literal")
			}
			lx.advance()
		}
		if lx.off >= len(lx.src) {
			return token{}, errf(pos, "unterminated string literal")
		}
		text := lx.src[start:lx.off]
		lx.advance() // closing quote
		return token{kind: tokString, text: text, pos: pos}, nil
	}
	lx.advance()
	switch c {
	case '=':
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokEQ, pos: pos}, nil
		}
		return token{kind: tokAssign, pos: pos}, nil
	case '!':
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokNE, pos: pos}, nil
		}
		return token{}, errf(pos, "unexpected character %q", '!')
	case '<':
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokLE, pos: pos}, nil
		}
		return token{kind: tokLT, pos: pos}, nil
	case '>':
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokGE, pos: pos}, nil
		}
		return token{kind: tokGT, pos: pos}, nil
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case ';':
		return token{kind: tokSemi, pos: pos}, nil
	case '*':
		return token{kind: tokStar, pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", rune(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
