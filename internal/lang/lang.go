// Package lang is a query-based interface for generating annotated
// MapReduce workflows, in the role Pig Latin plays in the paper's
// evaluation stack (Figure 2). It demonstrates the interface spectrum:
// Stubby's optimizer-level components are untouched; the language front-end
// merely compiles queries to plans and derives the schema, filter, and
// dataset annotations mechanically during compilation — exactly the
// annotation-extraction duty Section 6 assigns to the workflow generator.
//
// # Language
//
// A script is a sequence of statements terminated by semicolons; comments
// run from "--" to end of line. Keywords are case-insensitive.
//
//	rel  = LOAD 'dataset' [AS (f1, f2, ...)]
//	rel  = FILTER rel BY field op literal [AND field op literal ...]
//	rel  = FOREACH rel GENERATE item [, item ...]
//	rel  = GROUP rel BY field | GROUP rel BY (f1, f2, ...)
//	rel  = JOIN a BY ka, b BY kb        (inner equi-join; key lists allowed)
//	rel  = ORDER rel BY field [ASC|DESC]
//	rel  = LIMIT rel n
//	rel  = DISTINCT rel
//	SPLIT rel INTO a IF pred, b IF pred [, ...]
//	STORE rel INTO 'dataset'
//
// GENERATE items are field references (with optional AS alias) over flat
// relations, or `group` and aggregate calls — COUNT(*), COUNT(f), SUM(f),
// AVG(f), MAX(f), MIN(f) — over GROUP results. Comparison operators are <,
// <=, >, >=, ==, != against integer, decimal, or 'string' literals.
//
// # Compilation
//
// Blocking operators (GROUP+FOREACH, JOIN, DISTINCT, ORDER, LIMIT) each
// become one MapReduce job; FILTER and flat FOREACH fold into the next
// job's map pipeline (or a map-only job at STORE), as Pig compiles them.
// GROUP fuses with the following FOREACH into a single job whose reduce
// computes the aggregates, with an algebraic combiner. ORDER followed by
// LIMIT compiles to the scalable top-K pattern (task-local selection, one
// merge group); a standalone ORDER compiles to a sort job carrying a
// range-partitioning constraint that Stubby's partition function
// transformation later satisfies with profile-driven split points.
//
// The compiled plan is deliberately unoptimized — it is Stubby's input, so
// queries with shared scans, packable producer-consumer chains, and
// prunable filters present exactly the opportunities the optimizer's
// transformations exploit.
package lang
