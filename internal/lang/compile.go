package lang

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Options controls compilation.
type Options struct {
	// Name labels the compiled workflow (default "query").
	Name string
}

// CompileString parses and compiles a query against the given base dataset
// descriptors, returning an annotated MapReduce workflow ready for Stubby.
func CompileString(src string, bases []*wf.Dataset, opt Options) (*wf.Workflow, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(script, bases, opt)
}

// Compile lowers a parsed script to an annotated MapReduce workflow. Each
// blocking operator (GROUP+FOREACH, JOIN, DISTINCT, ORDER, LIMIT) becomes a
// MapReduce job; map-side operators (FILTER, flat FOREACH) fold into the
// next job's map pipeline, as in Pig's compilation. Schema, filter, and
// dataset annotations are derived mechanically from the query — the
// annotation-extraction role Section 6 assigns to the workflow generator.
func Compile(script *Script, bases []*wf.Dataset, opt Options) (*wf.Workflow, error) {
	name := opt.Name
	if name == "" {
		name = "query"
	}
	c := &compiler{
		w:     &wf.Workflow{Name: name},
		bases: map[string]*wf.Dataset{},
		rels:  map[string]*relState{},
		ds:    map[string]bool{},
		sinks: map[string]bool{},
	}
	for _, d := range bases {
		c.bases[d.ID] = d
	}
	for _, st := range script.Stmts {
		var err error
		switch s := st.(type) {
		case *Assign:
			err = c.assign(s)
		case *Split:
			err = c.split(s)
		case *Store:
			err = c.store(s)
		default:
			err = errf(st.Position(), "unsupported statement %T", st)
		}
		if err != nil {
			return nil, err
		}
	}
	if len(c.w.Jobs) == 0 {
		return nil, fmt.Errorf("lang: script compiles to no MapReduce jobs; add a blocking operator or STORE a transformed relation")
	}
	if !c.stored {
		return nil, fmt.Errorf("lang: script has no STORE statement; results would be discarded")
	}
	if err := c.w.Validate(); err != nil {
		return nil, fmt.Errorf("lang: compiled workflow invalid: %w", err)
	}
	return c.w, nil
}

// relState tracks one relation: where its records come from (a materialized
// dataset plus pending map-side stages) and what they look like (flat
// schema, key split). States are immutable once bound; derivations copy.
type relState struct {
	name string
	// ds is the source dataset; inKey/inVal name its record fields as this
	// relation reads them (the branch K1/V1 schema annotation).
	ds           string
	inKey, inVal []string
	// pending holds map-side stages to apply after reading ds; pendKeyW is
	// the key width of records leaving the pipeline.
	pending  []wf.Stage
	pendKeyW int
	// schema names the flat record fields after pending (key ++ value).
	schema []string
	// filters are input-subset annotations accumulated from FILTER
	// statements (sound supersets of the exact predicates).
	filters []wf.Filter
	// grouped marks a GROUP result awaiting its FOREACH GENERATE.
	grouped *groupState
	// ordered marks an ORDER result awaiting LIMIT or materialization.
	ordered *orderState
}

type groupState struct {
	by    []string
	byIdx []int
}

type orderState struct {
	by    string
	byIdx int
	desc  bool
}

// derive copies the state for a downstream relation, dropping the deferred
// markers.
func (r *relState) derive(name string) *relState {
	out := &relState{
		name:     name,
		ds:       r.ds,
		inKey:    append([]string(nil), r.inKey...),
		inVal:    append([]string(nil), r.inVal...),
		pending:  append([]wf.Stage(nil), r.pending...),
		pendKeyW: r.pendKeyW,
		schema:   append([]string(nil), r.schema...),
		filters:  append([]wf.Filter(nil), r.filters...),
	}
	return out
}

type compiler struct {
	w      *wf.Workflow
	bases  map[string]*wf.Dataset
	rels   map[string]*relState
	ds     map[string]bool // dataset IDs present in the workflow
	sinks  map[string]bool // dataset IDs pinned by a STORE statement
	jobSeq int
	stgSeq int
	stored bool
}

// rename re-labels an intermediate dataset that no job consumes and no
// STORE has pinned, updating its producer and every relation reading it.
// It reports whether the rename applied.
func (c *compiler) rename(old, new string) bool {
	d := c.w.Dataset(old)
	if d == nil || d.Base || c.sinks[old] || len(c.w.Consumers(old)) > 0 {
		return false
	}
	prod := c.w.Producer(old)
	if prod == nil {
		return false
	}
	for i := range prod.ReduceGroups {
		if prod.ReduceGroups[i].Output == old {
			prod.ReduceGroups[i].Output = new
		}
	}
	d.ID = new
	delete(c.ds, old)
	c.ds[new] = true
	c.sinks[new] = true
	for _, r := range c.rels {
		if r.ds == old {
			r.ds = new
		}
	}
	return true
}

func (c *compiler) newJobID() string {
	c.jobSeq++
	return fmt.Sprintf("Q%d", c.jobSeq)
}

func (c *compiler) stageName(prefix string) string {
	c.stgSeq++
	return fmt.Sprintf("%s%d", prefix, c.stgSeq)
}

// freshDS allocates a unique dataset ID, preferring the given name.
func (c *compiler) freshDS(pref string) string {
	if !c.ds[pref] {
		return pref
	}
	for i := 2; ; i++ {
		id := fmt.Sprintf("%s_%d", pref, i)
		if !c.ds[id] {
			return id
		}
	}
}

func (c *compiler) addDataset(d *wf.Dataset) {
	c.w.Datasets = append(c.w.Datasets, d)
	c.ds[d.ID] = true
}

func (c *compiler) rel(name string, pos Pos) (*relState, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, errf(pos, "unknown relation %q", name)
	}
	return r, nil
}

// flatRel fetches a relation and rejects deferred GROUP/ORDER states that
// the consuming operator cannot handle.
func (c *compiler) flatRel(name string, pos Pos, op string) (*relState, error) {
	r, err := c.rel(name, pos)
	if err != nil {
		return nil, err
	}
	if r.grouped != nil {
		return nil, errf(pos, "%s cannot consume grouped relation %q; follow GROUP with FOREACH ... GENERATE", op, name)
	}
	if r.ordered != nil {
		// Materialize the sort so the consumer sees a flat relation.
		mat, err := c.materializeOrder(r, "", pos)
		if err != nil {
			return nil, err
		}
		c.rels[name] = mat
		return mat, nil
	}
	return r, nil
}

func (c *compiler) assign(a *Assign) error {
	var (
		r   *relState
		err error
	)
	switch op := a.Op.(type) {
	case *Load:
		r, err = c.load(a.Name, op, a.Pos)
	case *Filter:
		r, err = c.filter(a.Name, op, a.Pos)
	case *Foreach:
		r, err = c.foreach(a.Name, op, a.Pos)
	case *Group:
		r, err = c.group(a.Name, op, a.Pos)
	case *Join:
		r, err = c.join(a.Name, op, a.Pos)
	case *Order:
		r, err = c.order(a.Name, op, a.Pos)
	case *Limit:
		r, err = c.limit(a.Name, op, a.Pos)
	case *Distinct:
		r, err = c.distinct(a.Name, op, a.Pos)
	default:
		return errf(a.Pos, "unsupported operator %T", a.Op)
	}
	if err != nil {
		return err
	}
	c.rels[a.Name] = r
	return nil
}

func (c *compiler) load(name string, op *Load, pos Pos) (*relState, error) {
	base, ok := c.bases[op.Dataset]
	if !ok {
		return nil, errf(pos, "unknown base dataset %q; pass its descriptor to Compile", op.Dataset)
	}
	if base.KeyFields == nil || base.ValueFields == nil {
		return nil, errf(pos, "base dataset %q lacks key/value schema annotations required by LOAD", op.Dataset)
	}
	keyW := len(base.KeyFields)
	total := keyW + len(base.ValueFields)
	keyNames := append([]string(nil), base.KeyFields...)
	valNames := append([]string(nil), base.ValueFields...)
	if op.Schema != nil {
		if len(op.Schema) != total {
			return nil, errf(pos, "AS schema has %d fields but dataset %q has %d", len(op.Schema), op.Dataset, total)
		}
		keyNames = append([]string(nil), op.Schema[:keyW]...)
		valNames = append([]string(nil), op.Schema[keyW:]...)
	}
	if err := checkUnique(append(append([]string{}, keyNames...), valNames...), pos); err != nil {
		return nil, err
	}
	if !c.ds[base.ID] {
		d := base.Clone()
		d.Base = true
		d.KeyFields = append([]string(nil), keyNames...)
		d.ValueFields = append([]string(nil), valNames...)
		c.addDataset(d)
	}
	return &relState{
		name:     name,
		ds:       base.ID,
		inKey:    keyNames,
		inVal:    valNames,
		pendKeyW: keyW,
		schema:   append(append([]string{}, keyNames...), valNames...),
	}, nil
}

func (c *compiler) filter(name string, op *Filter, pos Pos) (*relState, error) {
	src, err := c.flatRel(op.Rel, pos, "FILTER")
	if err != nil {
		return nil, err
	}
	terms := make([]compiledTerm, len(op.Pred.Terms))
	for i, t := range op.Pred.Terms {
		idx := fieldIndex(src.schema, t.Field)
		if idx < 0 {
			return nil, errf(t.Pos, "relation %q has no field %q (fields: %v)", op.Rel, t.Field, src.schema)
		}
		terms[i] = compiledTerm{idx: idx, op: t.Op, lit: keyval.T(t.Lit)[0]}
	}
	r := src.derive(name)
	r.pending = append(r.pending, filterStage(c.stageName("F"), r.pendKeyW, terms))
	r.filters = append(r.filters, filtersFromPredicate(op.Pred)...)
	return r, nil
}

func (c *compiler) foreach(name string, op *Foreach, pos Pos) (*relState, error) {
	src, err := c.rel(op.Rel, pos)
	if err != nil {
		return nil, err
	}
	if src.grouped != nil {
		return c.foreachGrouped(name, op, src, pos)
	}
	if src.ordered != nil {
		if src, err = c.flatRel(op.Rel, pos, "FOREACH"); err != nil {
			return nil, err
		}
	}
	// Flat projection: every item must be a plain field reference.
	var idx []int
	var names []string
	for _, it := range op.Items {
		if it.IsGroup || it.Agg != "" {
			return nil, errf(it.Pos, "aggregate %q over non-grouped relation %q; GROUP it first", it, op.Rel)
		}
		i := fieldIndex(src.schema, it.Field)
		if i < 0 {
			return nil, errf(it.Pos, "relation %q has no field %q (fields: %v)", op.Rel, it.Field, src.schema)
		}
		idx = append(idx, i)
		out := it.Field
		if it.Alias != "" {
			out = it.Alias
		}
		names = append(names, out)
	}
	if err := checkUnique(names, pos); err != nil {
		return nil, err
	}
	r := src.derive(name)
	r.pending = append(r.pending, projectStage(c.stageName("P"), r.pendKeyW, idx))
	r.pendKeyW = 0
	r.schema = names
	return r, nil
}

func (c *compiler) group(name string, op *Group, pos Pos) (*relState, error) {
	src, err := c.flatRel(op.Rel, pos, "GROUP")
	if err != nil {
		return nil, err
	}
	byIdx := make([]int, len(op.By))
	for i, f := range op.By {
		idx := fieldIndex(src.schema, f)
		if idx < 0 {
			return nil, errf(pos, "relation %q has no field %q (fields: %v)", op.Rel, f, src.schema)
		}
		byIdx[i] = idx
	}
	if err := checkUnique(op.By, pos); err != nil {
		return nil, err
	}
	// The grouped relation keeps the source's flat schema as its inner
	// (bag) schema for aggregate arguments; the deferred marker prevents
	// anything but FOREACH ... GENERATE from consuming it.
	r := src.derive(name)
	r.grouped = &groupState{by: append([]string(nil), op.By...), byIdx: byIdx}
	return r, nil
}

// foreachGrouped completes a GROUP: the aggregates fuse into the grouping
// job's reduce function (as Pig compiles GROUP+FOREACH into one job), with
// an algebraic combiner when every aggregate decomposes into
// format-preserving merges (all of COUNT, SUM, AVG, MAX, MIN do).
func (c *compiler) foreachGrouped(name string, op *Foreach, src *relState, pos Pos) (*relState, error) {
	gs := src.grouped
	var aggItems []GenItem
	var outNames []string
	for _, it := range op.Items {
		switch {
		case it.IsGroup:
			// The group key is always the output key; the item is allowed
			// for familiarity but adds no value fields.
		case it.Agg != "":
			if it.Agg != "COUNT" {
				if idx := fieldIndex(src.schema, it.AggField); idx < 0 {
					return nil, errf(it.Pos, "relation has no field %q (fields: %v)", it.AggField, src.schema)
				}
			}
			aggItems = append(aggItems, it)
			outNames = append(outNames, aggOutName(it))
		default:
			return nil, errf(it.Pos, "field %q in FOREACH over grouped relation; only `group` and aggregates are supported", it.Field)
		}
	}
	if len(aggItems) == 0 {
		return nil, errf(pos, "FOREACH over grouped relation needs at least one aggregate")
	}
	outNames = dedupeNames(outNames, gs.by)

	plan := buildAggPlan(aggItems, func(f string) int { return fieldIndex(src.schema, f) })
	slotNames := make([]string, len(plan.slots))
	for i := range slotNames {
		slotNames[i] = fmt.Sprintf("s%d", i)
	}

	jobID := c.newJobID()
	outDS := c.freshDS(name)
	branch := c.branch(src, aggInitStage(c.stageName("GA"), src.pendKeyW, gs.byIdx, plan.slots))
	branch.KeyOut = append([]string(nil), gs.by...)
	branch.ValOut = slotNames
	combiner := aggCombineStage(c.stageName("GC"), plan.slots)
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{branch},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:      0,
			Stages:   []wf.Stage{aggFinalStage(c.stageName("GR"), plan)},
			Combiner: &combiner,
			Output:   outDS,
			KeyIn:    append([]string(nil), gs.by...),
			ValIn:    slotNames,
			KeyOut:   append([]string(nil), gs.by...),
			ValOut:   outNames,
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: outDS, KeyFields: append([]string(nil), gs.by...), ValueFields: outNames})
	return materializedRel(name, outDS, gs.by, outNames), nil
}

func (c *compiler) join(name string, op *Join, pos Pos) (*relState, error) {
	left, err := c.flatRel(op.Left, pos, "JOIN")
	if err != nil {
		return nil, err
	}
	right, err := c.flatRel(op.Right, pos, "JOIN")
	if err != nil {
		return nil, err
	}
	lIdx, err := fieldIndices(left.schema, op.LeftKeys, op.Left, pos)
	if err != nil {
		return nil, err
	}
	rIdx, err := fieldIndices(right.schema, op.RightKeys, op.Right, pos)
	if err != nil {
		return nil, err
	}
	lRestIdx, lRest := restFields(left.schema, lIdx)
	rRestIdx, rRest := restFields(right.schema, rIdx)
	// Join-key fields carry the left input's names on both branches:
	// identical names assert that the data is the same after the equality
	// join, which is what downstream flow reasoning needs.
	keyNames := append([]string(nil), op.LeftKeys...)
	rRest = dedupeNames(prefixCollisions(rRest, append(keyNames, lRest...), op.Right+"_"), keyNames)

	lb := c.branch(left, joinMapStage(c.stageName("JL"), left.pendKeyW, lIdx, lRestIdx, "l"))
	lb.KeyOut = keyNames
	lb.ValOut = append([]string{"side"}, lRest...)
	rb := c.branch(right, joinMapStage(c.stageName("JR"), right.pendKeyW, rIdx, rRestIdx, "r"))
	rb.KeyOut = keyNames
	rb.ValOut = append([]string{"side"}, rRest...)

	jobID := c.newJobID()
	outDS := c.freshDS(name)
	outVal := append(append([]string{}, lRest...), rRest...)
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{lb, rb},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Stages: []wf.Stage{joinReduceStage(c.stageName("JM"))},
			Output: outDS,
			KeyIn:  keyNames,
			KeyOut: keyNames,
			ValOut: outVal,
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: outDS, KeyFields: keyNames, ValueFields: outVal})
	return materializedRel(name, outDS, keyNames, outVal), nil
}

func (c *compiler) order(name string, op *Order, pos Pos) (*relState, error) {
	src, err := c.flatRel(op.Rel, pos, "ORDER")
	if err != nil {
		return nil, err
	}
	idx := fieldIndex(src.schema, op.By)
	if idx < 0 {
		return nil, errf(pos, "relation %q has no field %q (fields: %v)", op.Rel, op.By, src.schema)
	}
	r := src.derive(name)
	r.ordered = &orderState{by: op.By, byIdx: idx, desc: op.Desc}
	return r, nil
}

// materializeOrder compiles a standalone ORDER into a range-partitioned
// sort job. The range requirement is expressed as a partition constraint —
// the paper's example of an initial condition a workflow generator imposes
// on a job's partition function (Section 3.4); Stubby's partition function
// transformation later chooses split points from profile samples.
func (c *compiler) materializeOrder(r *relState, target string, pos Pos) (*relState, error) {
	os := r.ordered
	if os.desc {
		return nil, errf(pos, "ORDER ... DESC must be followed by LIMIT; materialized sorts are ascending")
	}
	restIdx, rest := restFields(r.schema, []int{os.byIdx})
	outDS := target
	if outDS == "" {
		outDS = c.freshDS(r.name)
	}
	keyNames := []string{os.by}
	branch := c.branch(r, rekeyStage(c.stageName("OS"), cpuRekey, r.pendKeyW, []int{os.byIdx}, restIdx))
	branch.KeyOut = keyNames
	branch.ValOut = rest
	rt := keyval.RangePartition
	jobID := c.newJobID()
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{branch},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Stages: []wf.Stage{emitAllStage(c.stageName("OE"))},
			Output: outDS,
			Part:   keyval.PartitionSpec{Type: keyval.RangePartition},
			Constraints: []wf.PartitionConstraint{{
				RequireType: &rt,
				Reason:      "ORDER BY " + os.by,
			}},
			KeyIn:  keyNames,
			ValIn:  rest,
			KeyOut: keyNames,
			ValOut: rest,
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: outDS, KeyFields: keyNames, ValueFields: rest})
	return materializedRel(r.name, outDS, keyNames, rest), nil
}

func (c *compiler) limit(name string, op *Limit, pos Pos) (*relState, error) {
	src, err := c.rel(op.Rel, pos)
	if err != nil {
		return nil, err
	}
	if src.grouped != nil {
		return nil, errf(pos, "LIMIT cannot consume grouped relation %q; follow GROUP with FOREACH ... GENERATE", op.Rel)
	}
	sortWidth := 0
	desc := false
	valIdx := identityIndices(len(src.schema))
	valOut := append([]string(nil), src.schema...)
	if src.ordered != nil {
		sortWidth = 1
		desc = src.ordered.desc
		valIdx = append([]int{src.ordered.byIdx}, valIdx...)
		valOut = append([]string{"sortkey"}, valOut...)
	}
	pre := rekeyStage(c.stageName("LK"), cpuRekey, src.pendKeyW, nil, valIdx)
	local := limitLocalStage(c.stageName("LL"), op.N, sortWidth, desc)
	branch := c.branch(src, pre, local)
	branch.KeyOut = []string{"g"}
	branch.ValOut = valOut

	outNames := dedupeNames(append([]string(nil), src.schema...), []string{"rank"})
	jobID := c.newJobID()
	outDS := c.freshDS(name)
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{branch},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Stages: []wf.Stage{limitMergeStage(c.stageName("LM"), op.N, sortWidth, desc)},
			Output: outDS,
			KeyIn:  []string{"g"},
			ValIn:  valOut,
			KeyOut: []string{"rank"},
			ValOut: outNames,
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: outDS, KeyFields: []string{"rank"}, ValueFields: outNames})
	return materializedRel(name, outDS, []string{"rank"}, outNames), nil
}

func (c *compiler) distinct(name string, op *Distinct, pos Pos) (*relState, error) {
	src, err := c.flatRel(op.Rel, pos, "DISTINCT")
	if err != nil {
		return nil, err
	}
	branch := c.branch(src, distinctKeyStage(c.stageName("DK"), src.pendKeyW, len(src.schema)))
	branch.KeyOut = append([]string(nil), src.schema...)
	branch.ValOut = []string{}
	combiner := distinctCombineStage(c.stageName("DC"))
	jobID := c.newJobID()
	outDS := c.freshDS(name)
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{branch},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:      0,
			Stages:   []wf.Stage{distinctReduceStage(c.stageName("DR"))},
			Combiner: &combiner,
			Output:   outDS,
			KeyIn:    append([]string(nil), src.schema...),
			ValIn:    []string{},
			KeyOut:   append([]string(nil), src.schema...),
			ValOut:   []string{},
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: outDS, KeyFields: append([]string(nil), src.schema...), ValueFields: []string{}})
	return materializedRel(name, outDS, src.schema, []string{}), nil
}

func (c *compiler) split(s *Split) error {
	src, err := c.flatRel(s.Rel, s.Pos, "SPLIT")
	if err != nil {
		return err
	}
	_ = src // validated above; filter re-resolves by name
	for _, arm := range s.Arms {
		r, err := c.filter(arm.Name, &Filter{Rel: s.Rel, Pred: arm.Pred}, s.Pos)
		if err != nil {
			return err
		}
		c.rels[arm.Name] = r
	}
	return nil
}

func (c *compiler) store(s *Store) error {
	src, err := c.rel(s.Rel, s.Pos)
	if err != nil {
		return err
	}
	if src.grouped != nil {
		return errf(s.Pos, "cannot STORE grouped relation %q; follow GROUP with FOREACH ... GENERATE", s.Rel)
	}
	if c.ds[s.Dataset] {
		if src.ds == s.Dataset && len(src.pending) == 0 && src.ordered == nil {
			c.stored = true
			c.sinks[s.Dataset] = true
			return nil // already materialized under this name
		}
		return errf(s.Pos, "dataset %q already exists in the workflow", s.Dataset)
	}
	if src.ordered != nil {
		if _, err := c.materializeOrder(src, s.Dataset, s.Pos); err != nil {
			return err
		}
		c.stored = true
		return nil
	}
	if len(src.pending) == 0 && src.ds != "" {
		// Materialized under an auto-chosen name: rename the dataset in
		// place when nothing else depends on it yet, so STORE does not
		// spend a MapReduce job on a copy.
		if c.rename(src.ds, s.Dataset) {
			c.stored = true
			return nil
		}
		// Otherwise copy with an identity map-only job so the requested
		// output dataset exists alongside the original.
		src = src.derive(src.name)
		src.pending = append(src.pending, identityStage(c.stageName("ID")))
	}
	keyOut := append([]string(nil), src.schema[:src.pendKeyW]...)
	valOut := append([]string(nil), src.schema[src.pendKeyW:]...)
	branch := c.branch(src)
	branch.KeyOut = keyOut
	branch.ValOut = valOut
	jobID := c.newJobID()
	job := &wf.Job{
		ID: jobID, Config: wf.DefaultConfig(), Origin: []string{jobID},
		MapBranches: []wf.MapBranch{branch},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Output: s.Dataset,
			KeyOut: keyOut,
			ValOut: valOut,
		}},
	}
	c.w.Jobs = append(c.w.Jobs, job)
	c.addDataset(&wf.Dataset{ID: s.Dataset, KeyFields: keyOut, ValueFields: valOut})
	c.stored = true
	return nil
}

// branch assembles a map branch reading the relation's source dataset,
// running its pending pipeline plus any extra stages, annotated with the
// input schema and the best filter annotation.
func (c *compiler) branch(r *relState, extra ...wf.Stage) wf.MapBranch {
	stages := append(append([]wf.Stage{}, r.pending...), extra...)
	return wf.MapBranch{
		Tag:    0,
		Input:  r.ds,
		Stages: stages,
		Filter: pickFilter(r.filters),
		KeyIn:  append([]string(nil), r.inKey...),
		ValIn:  append([]string(nil), r.inVal...),
	}
}

func materializedRel(name, ds string, keyF, valF []string) *relState {
	return &relState{
		name:     name,
		ds:       ds,
		inKey:    append([]string(nil), keyF...),
		inVal:    append([]string(nil), valF...),
		pendKeyW: len(keyF),
		schema:   append(append([]string{}, keyF...), valF...),
	}
}

// --- helpers -------------------------------------------------------------------

func fieldIndex(schema []string, name string) int {
	for i, f := range schema {
		if f == name {
			return i
		}
	}
	return -1
}

func fieldIndices(schema, names []string, rel string, pos Pos) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := fieldIndex(schema, n)
		if idx < 0 {
			return nil, errf(pos, "relation %q has no field %q (fields: %v)", rel, n, schema)
		}
		out[i] = idx
	}
	return out, nil
}

// restFields returns the indices and names of schema fields not in the
// given index set, in schema order.
func restFields(schema []string, used []int) ([]int, []string) {
	usedSet := map[int]bool{}
	for _, i := range used {
		usedSet[i] = true
	}
	var idx []int
	var names []string
	for i, f := range schema {
		if !usedSet[i] {
			idx = append(idx, i)
			names = append(names, f)
		}
	}
	return idx, names
}

func identityIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func checkUnique(names []string, pos Pos) error {
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			return errf(pos, "duplicate field name %q", n)
		}
		seen[n] = true
	}
	return nil
}

// prefixCollisions renames entries of names that collide with taken by
// prepending the prefix.
func prefixCollisions(names, taken []string, prefix string) []string {
	takenSet := map[string]bool{}
	for _, t := range taken {
		takenSet[t] = true
	}
	out := make([]string, len(names))
	for i, n := range names {
		if takenSet[n] {
			out[i] = prefix + n
		} else {
			out[i] = n
		}
	}
	return out
}

// dedupeNames suffixes duplicates (within names or against reserved) so the
// final list is collision-free.
func dedupeNames(names, reserved []string) []string {
	seen := map[string]bool{}
	for _, r := range reserved {
		seen[r] = true
	}
	out := make([]string, len(names))
	for i, n := range names {
		cand := n
		for k := 2; seen[cand]; k++ {
			cand = fmt.Sprintf("%s_%d", n, k)
		}
		seen[cand] = true
		out[i] = cand
	}
	return out
}

func aggOutName(it GenItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch it.Agg {
	case "COUNT":
		return "cnt"
	case "SUM":
		return "sum_" + it.AggField
	case "AVG":
		return "avg_" + it.AggField
	case "MAX":
		return "max_" + it.AggField
	case "MIN":
		return "min_" + it.AggField
	default:
		return it.Agg
	}
}

// filtersFromPredicate derives per-field interval annotations from a
// conjunction. Annotations must cover a superset of the records the exact
// predicate accepts (that is what makes pruning against them sound), so
// bounds that the half-open integer interval cannot express exactly are
// relaxed: f > c over floats or strings contributes Lo=c, f <= c over
// non-integers contributes no upper bound, and != contributes nothing.
func filtersFromPredicate(pred Predicate) []wf.Filter {
	ivs := map[string]keyval.Interval{}
	order := []string{}
	add := func(field string, iv keyval.Interval) {
		cur, ok := ivs[field]
		if !ok {
			order = append(order, field)
			ivs[field] = iv
			return
		}
		ivs[field] = cur.Intersect(iv)
	}
	for _, t := range pred.Terms {
		lit := keyval.T(t.Lit)[0]
		switch t.Op {
		case CmpGE:
			add(t.Field, keyval.Interval{Lo: lit})
		case CmpGT:
			// Lo = lit is the tightest sound bound even for integer
			// literals: fields are dynamically typed, so a float between
			// lit and lit+1 can satisfy the exact predicate.
			add(t.Field, keyval.Interval{Lo: lit})
		case CmpLT:
			add(t.Field, keyval.Interval{Hi: lit})
		case CmpLE:
			// Hi = lit+1 over-approximates x <= lit for every dynamic
			// type that can compare equal to an integer, so it is sound;
			// non-integers have no sound exclusive upper bound.
			if i, ok := lit.(int64); ok {
				add(t.Field, keyval.Interval{Hi: i + 1})
			}
		case CmpEQ:
			switch v := lit.(type) {
			case int64:
				add(t.Field, keyval.Interval{Lo: v, Hi: v + 1})
			case string:
				add(t.Field, keyval.Interval{Lo: v, Hi: v + "\x00"})
			default:
				add(t.Field, keyval.Interval{Lo: lit})
			}
		case CmpNE:
			// no interval information
		}
	}
	var out []wf.Filter
	for _, f := range order {
		iv := ivs[f]
		if iv.Unbounded() {
			continue
		}
		out = append(out, wf.Filter{Field: f, Interval: iv})
	}
	return out
}

// pickFilter selects the most useful interval for the branch's single
// filter annotation slot: bounded on both sides beats bounded on one.
func pickFilter(filters []wf.Filter) *wf.Filter {
	var best *wf.Filter
	score := func(f wf.Filter) int {
		s := 0
		if f.Interval.Lo != nil {
			s++
		}
		if f.Interval.Hi != nil {
			s++
		}
		return s
	}
	for i := range filters {
		if best == nil || score(filters[i]) > score(*best) {
			best = &filters[i]
		}
	}
	if best == nil {
		return nil
	}
	out := *best
	return &out
}
