package lang

import (
	"strings"
	"testing"
)

const comprehensiveScript = `
-- business report over lineitems
li = LOAD 'lineitem' AS (ord, part, supp, qty, price);
cheap = FILTER li BY price < 100.5 AND qty >= 2;
proj = FOREACH cheap GENERATE ord, part, price AS p;
byorder = GROUP proj BY (ord, part);
agg = FOREACH byorder GENERATE group, COUNT(*) AS n, SUM(p), AVG(p) AS mean, MAX(p), MIN(p);
pr = LOAD 'pageranks';
j = JOIN agg BY ord, pr BY url;
srt = ORDER j BY n DESC;
top = LIMIT srt 10;
d = DISTINCT proj;
SPLIT li INTO small IF qty < 3, big IF qty >= 3;
STORE top INTO 'topn';
STORE d INTO 'uniq';
`

func TestParseComprehensive(t *testing.T) {
	s, err := Parse(comprehensiveScript)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got, want := len(s.Stmts), 13; got != want {
		t.Fatalf("statements = %d, want %d", got, want)
	}
	// Spot-check a few statements.
	a0 := s.Stmts[0].(*Assign)
	l := a0.Op.(*Load)
	if l.Dataset != "lineitem" || len(l.Schema) != 5 {
		t.Errorf("load = %v", l)
	}
	a1 := s.Stmts[1].(*Assign)
	f := a1.Op.(*Filter)
	if len(f.Pred.Terms) != 2 || f.Pred.Terms[0].Op != CmpLT || f.Pred.Terms[0].Lit != 100.5 {
		t.Errorf("filter = %v", f)
	}
	if f.Pred.Terms[1].Lit != int64(2) {
		t.Errorf("integer literal parsed as %T", f.Pred.Terms[1].Lit)
	}
	a4 := s.Stmts[4].(*Assign)
	fe := a4.Op.(*Foreach)
	if len(fe.Items) != 6 || !fe.Items[0].IsGroup || fe.Items[1].Agg != "COUNT" || fe.Items[1].Alias != "n" {
		t.Errorf("foreach = %v", fe)
	}
	if fe.Items[3].Agg != "AVG" || fe.Items[3].AggField != "p" || fe.Items[3].Alias != "mean" {
		t.Errorf("avg item = %v", fe.Items[3])
	}
	sp := s.Stmts[10].(*Split)
	if sp.Rel != "li" || len(sp.Arms) != 2 || sp.Arms[1].Name != "big" {
		t.Errorf("split = %v", sp)
	}
}

// TestParsePrintParseFixpoint checks that rendering a script and reparsing
// yields the same rendering — the canonical-form property.
func TestParsePrintParseFixpoint(t *testing.T) {
	s1, err := Parse(comprehensiveScript)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := s1.String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of canonical form failed: %v\n%s", err, printed)
	}
	if printed != s2.String() {
		t.Fatalf("canonical form not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, s2.String())
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s, err := Parse("r = load 'x'; s = Filter r by a == 1; store s into 'y';")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(s.Stmts) != 3 {
		t.Fatalf("statements = %d", len(s.Stmts))
	}
}

func TestParseComments(t *testing.T) {
	src := "r = LOAD 'x'; -- trailing comment\n-- full line comment\nSTORE r INTO 'y';"
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse with comments: %v", err)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s, err := Parse("r = LOAD 'x'; f = FILTER r BY a > -5 AND b < -2.5; STORE f INTO 'y';")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := s.Stmts[1].(*Assign).Op.(*Filter)
	if f.Pred.Terms[0].Lit != int64(-5) || f.Pred.Terms[1].Lit != -2.5 {
		t.Fatalf("negative literals = %v, %v", f.Pred.Terms[0].Lit, f.Pred.Terms[1].Lit)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"empty", "", "empty script"},
		{"missing semi", "r = LOAD 'x'", "';'"},
		{"bad statement", "LOAD 'x';", "expected statement"},
		{"no assign", "r LOAD 'x';", "'='"},
		{"bad operator", "r = INTO 'x';", "unexpected keyword"},
		{"unterminated string", "r = LOAD 'x;", "unterminated string"},
		{"filter needs by", "r = FILTER s a < 3;", "expected BY"},
		{"bad comparison", "r = FILTER s BY a ~ 3;", "unexpected character"},
		{"missing literal", "r = FILTER s BY a < ;", "expected literal"},
		{"join key mismatch", "r = JOIN a BY (x, y), b BY z;", "differ in length"},
		{"bad agg", "r = FOREACH g GENERATE MEDIAN(x);", "unknown aggregate"},
		{"sum star", "r = FOREACH g GENERATE SUM(*);", "requires a field"},
		{"limit zero", "r = LIMIT s 0;", "positive integer"},
		{"split one arm", "SPLIT r INTO a IF x < 1;", "at least two arms"},
		{"store needs into", "STORE r 'x';", "expected INTO"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("parse succeeded")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("r = LOAD 'x';\ns = FILTER r BY ;")
	if err == nil {
		t.Fatal("parse succeeded")
	}
	if !strings.Contains(err.Error(), "2:17") {
		t.Fatalf("error %q lacks position 2:17", err)
	}
}

func TestLexerTokenKinds(t *testing.T) {
	lx := newLexer("abc <= 'str' == != 12 -3.5 ( ) , ; * group")
	var kinds []tokKind
	var texts []string
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []tokKind{tokIdent, tokLE, tokString, tokEQ, tokNE, tokNumber,
		tokNumber, tokLParen, tokRParen, tokComma, tokSemi, tokStar, tokKeyword}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v (%q), want %v", i, kinds[i], texts[i], want[i])
		}
	}
	if texts[len(texts)-1] != "GROUP" {
		t.Errorf("keyword not canonicalized: %q", texts[len(texts)-1])
	}
}
