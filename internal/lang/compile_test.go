package lang

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// testBases returns the base dataset descriptors shared by compile tests:
// a lineitem-like table and a small dimension table.
func testBases() []*wf.Dataset {
	return []*wf.Dataset{
		{
			ID: "lineitem", Base: true,
			KeyFields:   []string{"ord"},
			ValueFields: []string{"part", "qty", "price"},
			Layout:      wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"ord"}},
		},
		{
			ID: "parts", Base: true,
			KeyFields:   []string{"part"},
			ValueFields: []string{"brand"},
		},
	}
}

func compileOK(t *testing.T, src string) *wf.Workflow {
	t.Helper()
	w, err := CompileString(src, testBases(), Options{Name: "t"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("compiled workflow invalid: %v", err)
	}
	return w
}

func TestCompileFilterFoldsIntoNextJob(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		cheap = FILTER li BY price < 100;
		g = GROUP cheap BY part;
		r = FOREACH g GENERATE group, COUNT(*);
		STORE r INTO 'out';
	`)
	if len(w.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (filter must fold into the group job)", len(w.Jobs))
	}
	j := w.Jobs[0]
	b := j.MapBranches[0]
	if len(b.Stages) != 2 {
		t.Fatalf("branch stages = %d, want 2 (filter + agg init)", len(b.Stages))
	}
	if b.Filter == nil || b.Filter.Field != "price" {
		t.Fatalf("filter annotation missing: %+v", b.Filter)
	}
	if hi, ok := b.Filter.Interval.Hi.(int64); !ok || hi != 100 {
		t.Fatalf("filter Hi = %v", b.Filter.Interval.Hi)
	}
	if !wf.FieldsEqual(b.KeyIn, []string{"ord"}) || !wf.FieldsEqual(b.ValIn, []string{"part", "qty", "price"}) {
		t.Fatalf("branch input schema = %v | %v", b.KeyIn, b.ValIn)
	}
	g := j.ReduceGroups[0]
	if g.Combiner == nil {
		t.Fatal("algebraic aggregate lost its combiner")
	}
	if !wf.FieldsEqual(g.KeyOut, []string{"part"}) || !wf.FieldsEqual(g.ValOut, []string{"cnt"}) {
		t.Fatalf("group output schema = %v | %v", g.KeyOut, g.ValOut)
	}
}

func TestCompileProjectionIsMapOnly(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		p = FOREACH li GENERATE part, price AS cost;
		STORE p INTO 'out';
	`)
	if len(w.Jobs) != 1 || !w.Jobs[0].MapOnly() {
		t.Fatalf("want one map-only job, got %s", w.Summary())
	}
	d := w.Dataset("out")
	if !wf.FieldsEqual(d.ValueFields, []string{"part", "cost"}) {
		t.Fatalf("out schema = %v | %v", d.KeyFields, d.ValueFields)
	}
}

func TestCompileJoinShape(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		pp = LOAD 'parts';
		j = JOIN li BY part, pp BY part;
		STORE j INTO 'j';
	`)
	if len(w.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(w.Jobs))
	}
	j := w.Jobs[0]
	if len(j.MapBranches) != 2 {
		t.Fatalf("branches = %d, want 2", len(j.MapBranches))
	}
	for _, b := range j.MapBranches {
		if !wf.FieldsEqual(b.KeyOut, []string{"part"}) {
			t.Fatalf("branch KeyOut = %v, want [part]", b.KeyOut)
		}
	}
	g := j.ReduceGroups[0]
	if !wf.FieldsEqual(g.ValOut, []string{"ord", "qty", "price", "brand"}) {
		t.Fatalf("join ValOut = %v", g.ValOut)
	}
}

func TestCompileJoinRenamesCollisions(t *testing.T) {
	w := compileOK(t, `
		a = LOAD 'lineitem';
		b = LOAD 'lineitem' AS (ord, part, qty, price);
		j = JOIN a BY ord, b BY ord;
		STORE j INTO 'j';
	`)
	g := w.Jobs[0].ReduceGroups[0]
	want := []string{"part", "qty", "price", "b_part", "b_qty", "b_price"}
	if !wf.FieldsEqual(g.ValOut, want) {
		t.Fatalf("join ValOut = %v, want %v", g.ValOut, want)
	}
}

func TestCompileOrderLimitTopK(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		g = GROUP li BY part;
		c = FOREACH g GENERATE group, SUM(price) AS rev;
		s = ORDER c BY rev DESC;
		top = LIMIT s 5;
		STORE top INTO 'top5';
	`)
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (group job + top-K job)\n%s", len(w.Jobs), w.Summary())
	}
	topJob := w.Producer("top5")
	if topJob == nil {
		t.Fatal("no producer for top5")
	}
	// The branch must contain the local selection (a reduce-kind stage with
	// empty group fields running per-stream).
	var local *wf.Stage
	for i, s := range topJob.MapBranches[0].Stages {
		if s.Kind == wf.ReduceKind {
			local = &topJob.MapBranches[0].Stages[i]
		}
	}
	if local == nil || local.GroupFields == nil || len(local.GroupFields) != 0 {
		t.Fatalf("local top-K stage missing or mis-grouped: %+v", local)
	}
	d := w.Dataset("top5")
	if !wf.FieldsEqual(d.KeyFields, []string{"rank"}) {
		t.Fatalf("top5 key = %v", d.KeyFields)
	}
}

func TestCompileStandaloneOrderRangeConstraint(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		s = ORDER li BY price;
		STORE s INTO 'sorted';
	`)
	j := w.Producer("sorted")
	g := j.ReduceGroups[0]
	if g.Part.Type != keyval.RangePartition {
		t.Fatalf("sort job partition type = %v, want range", g.Part.Type)
	}
	found := false
	for _, c := range g.Constraints {
		if c.RequireType != nil && *c.RequireType == keyval.RangePartition {
			found = true
		}
	}
	if !found {
		t.Fatalf("range-partitioning constraint missing: %+v", g.Constraints)
	}
}

func TestCompileOrderDescNeedsLimit(t *testing.T) {
	_, err := CompileString(`
		li = LOAD 'lineitem';
		s = ORDER li BY price DESC;
		STORE s INTO 'sorted';
	`, testBases(), Options{})
	if err == nil || !strings.Contains(err.Error(), "DESC") {
		t.Fatalf("materialized DESC sort not rejected: %v", err)
	}
}

func TestCompileDistinct(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		p = FOREACH li GENERATE part;
		d = DISTINCT p;
		STORE d INTO 'uniq';
	`)
	if len(w.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(w.Jobs))
	}
	g := w.Jobs[0].ReduceGroups[0]
	if g.Combiner == nil {
		t.Fatal("distinct lost its combiner")
	}
	if !wf.FieldsEqual(g.KeyOut, []string{"part"}) || len(g.ValOut) != 0 || g.ValOut == nil {
		t.Fatalf("distinct schema = %v | %#v", g.KeyOut, g.ValOut)
	}
}

func TestCompileSplitSharesInput(t *testing.T) {
	// The US workload pattern: one producer, two filtered consumers — the
	// shared input is the horizontal packing / partition pruning setup.
	w := compileOK(t, `
		li = LOAD 'lineitem';
		SPLIT li INTO lo IF price < 50, hi IF price >= 50;
		gl = GROUP lo BY part;
		al = FOREACH gl GENERATE group, COUNT(*);
		gh = GROUP hi BY part;
		ah = FOREACH gh GENERATE group, COUNT(*);
		STORE al INTO 'lo_counts';
		STORE ah INTO 'hi_counts';
	`)
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(w.Jobs), w.Summary())
	}
	var lo, hi *wf.Job
	for _, j := range w.Jobs {
		switch j.Outputs()[0] {
		case "lo_counts":
			lo = j
		case "hi_counts":
			hi = j
		}
	}
	if lo == nil || hi == nil {
		t.Fatalf("missing consumers:\n%s", w.Summary())
	}
	if lo.MapBranches[0].Input != "lineitem" || hi.MapBranches[0].Input != "lineitem" {
		t.Fatal("split consumers do not share the base input")
	}
	lf, hf := lo.MapBranches[0].Filter, hi.MapBranches[0].Filter
	if lf == nil || hf == nil {
		t.Fatal("split filter annotations missing")
	}
	if lf.Interval.Overlaps(hf.Interval) {
		t.Fatalf("split intervals overlap: %v vs %v", lf.Interval, hf.Interval)
	}
}

func TestCompileStoreOfMaterializedCopies(t *testing.T) {
	w := compileOK(t, `
		li = LOAD 'lineitem';
		g = GROUP li BY part;
		c = FOREACH g GENERATE group, COUNT(*);
		STORE c INTO 'c';
		STORE c INTO 'c_again';
	`)
	// First store is a no-op (dataset already named c); second adds a copy.
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(w.Jobs), w.Summary())
	}
	cp := w.Producer("c_again")
	if cp == nil || !cp.MapOnly() {
		t.Fatalf("copy job missing or not map-only:\n%s", w.Summary())
	}
}

func TestCompileFilterAnnotationRelaxations(t *testing.T) {
	cases := []struct {
		name, pred string
		check      func(t *testing.T, f *wf.Filter)
	}{
		{"gt int", "qty > 5", func(t *testing.T, f *wf.Filter) {
			// Lo stays 5 (not 6): a float 5.5 satisfies qty > 5, so the
			// integer tightening would be unsound for dynamic fields.
			if f == nil || f.Interval.Lo != int64(5) || f.Interval.Hi != nil {
				t.Fatalf("filter = %v", f)
			}
		}},
		{"le int", "qty <= 5", func(t *testing.T, f *wf.Filter) {
			if f == nil || f.Interval.Hi != int64(6) {
				t.Fatalf("filter = %v", f)
			}
		}},
		{"gt float relaxed", "price > 5.5", func(t *testing.T, f *wf.Filter) {
			if f == nil || f.Interval.Lo != 5.5 {
				t.Fatalf("filter = %v", f)
			}
		}},
		{"le float unbounded", "price <= 5.5", func(t *testing.T, f *wf.Filter) {
			if f != nil {
				t.Fatalf("filter = %v, want none (no sound Hi bound)", f)
			}
		}},
		{"ne none", "qty != 5", func(t *testing.T, f *wf.Filter) {
			if f != nil {
				t.Fatalf("filter = %v, want none", f)
			}
		}},
		{"range", "qty >= 2 AND qty < 8", func(t *testing.T, f *wf.Filter) {
			if f == nil || f.Interval.Lo != int64(2) || f.Interval.Hi != int64(8) {
				t.Fatalf("filter = %v", f)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := compileOK(t, `
				li = LOAD 'lineitem';
				f = FILTER li BY `+tc.pred+`;
				g = GROUP f BY part;
				r = FOREACH g GENERATE group, COUNT(*);
				STORE r INTO 'out';
			`)
			tc.check(t, w.Jobs[0].MapBranches[0].Filter)
		})
	}
}

func TestCompileEqStringAnnotation(t *testing.T) {
	w := compileOK(t, `
		pp = LOAD 'parts';
		f = FILTER pp BY brand == 'acme';
		g = GROUP f BY part;
		r = FOREACH g GENERATE group, COUNT(*);
		STORE r INTO 'out';
	`)
	f := w.Jobs[0].MapBranches[0].Filter
	if f == nil || f.Interval.Lo != "acme" || f.Interval.Hi != "acme\x00" {
		t.Fatalf("string equality annotation = %v", f)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"unknown dataset", "r = LOAD 'nope'; STORE r INTO 'x';", "unknown base dataset"},
		{"unknown relation", "r = FILTER ghost BY a < 1; STORE r INTO 'x';", "unknown relation"},
		{"unknown field", "r = LOAD 'lineitem'; f = FILTER r BY ghost < 1; STORE f INTO 'x';", "no field"},
		{"as width", "r = LOAD 'lineitem' AS (a, b); STORE r INTO 'x';", "AS schema has 2 fields"},
		{"group then filter", "r = LOAD 'lineitem'; g = GROUP r BY part; f = FILTER g BY qty < 1; STORE f INTO 'x';", "grouped relation"},
		{"store grouped", "r = LOAD 'lineitem'; g = GROUP r BY part; STORE g INTO 'x';", "grouped relation"},
		{"agg without group", "r = LOAD 'lineitem'; f = FOREACH r GENERATE COUNT(*); STORE f INTO 'x';", "non-grouped"},
		{"plain field in grouped foreach", "r = LOAD 'lineitem'; g = GROUP r BY part; f = FOREACH g GENERATE qty; STORE f INTO 'x';", "only `group` and aggregates"},
		{"no aggregates", "r = LOAD 'lineitem'; g = GROUP r BY part; f = FOREACH g GENERATE group; STORE f INTO 'x';", "at least one aggregate"},
		{"duplicate store", "r = LOAD 'lineitem'; STORE r INTO 'o'; s = FILTER r BY qty < 1; STORE s INTO 'o';", "already exists"},
		{"store into base", "r = LOAD 'lineitem'; f = FILTER r BY qty < 1; STORE f INTO 'lineitem';", "already exists"},
		{"no store", "r = LOAD 'lineitem'; f = FILTER r BY qty < 1;", "no MapReduce jobs"},
		{"no store with job", "r = LOAD 'lineitem'; g = GROUP r BY part; c = FOREACH g GENERATE group, COUNT(*);", "no STORE"},
		{"dup projection names", "r = LOAD 'lineitem'; p = FOREACH r GENERATE qty, price AS qty; STORE p INTO 'x';", "duplicate field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileString(tc.src, testBases(), Options{})
			if err == nil {
				t.Fatal("compile succeeded")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestCompileLoadWithoutSchemaAnnotationsFails(t *testing.T) {
	bases := []*wf.Dataset{{ID: "raw", Base: true}}
	_, err := CompileString("r = LOAD 'raw'; STORE r INTO 'x';", bases, Options{})
	if err == nil || !strings.Contains(err.Error(), "schema annotations") {
		t.Fatalf("schema-less load not rejected: %v", err)
	}
}
