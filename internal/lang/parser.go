package lang

import "strconv"

// Parse turns query source text into a Script. Errors carry source
// positions ("lang: line:col: message").
func Parse(src string) (*Script, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	script := &Script{}
	for p.tok.kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		script.Stmts = append(script.Stmts, st)
		if err := p.expect(tokSemi, "';' after statement"); err != nil {
			return nil, err
		}
	}
	if len(script.Stmts) == 0 {
		return nil, errf(p.tok.pos, "empty script")
	}
	return script, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expect consumes a token of the given kind or fails with a description of
// what was required.
func (p *parser) expect(kind tokKind, what string) error {
	if p.tok.kind != kind {
		return errf(p.tok.pos, "expected %s, found %s", what, p.tok)
	}
	return p.advance()
}

// keyword consumes the given keyword or fails.
func (p *parser) keyword(kw string) error {
	if !p.atKeyword(kw) {
		return errf(p.tok.pos, "expected %s, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) ident(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", errf(p.tok.pos, "expected %s, found %s", what, p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) stringLit(what string) (string, error) {
	if p.tok.kind != tokString {
		return "", errf(p.tok.pos, "expected %s, found %s", what, p.tok)
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *parser) statement() (Stmt, error) {
	pos := p.tok.pos
	switch {
	case p.atKeyword("STORE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.keyword("INTO"); err != nil {
			return nil, err
		}
		ds, err := p.stringLit("dataset name")
		if err != nil {
			return nil, err
		}
		return &Store{Pos: pos, Rel: rel, Dataset: ds}, nil
	case p.atKeyword("SPLIT"):
		return p.split(pos)
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokAssign, "'=' after relation name"); err != nil {
			return nil, err
		}
		op, err := p.operator()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: pos, Name: name, Op: op}, nil
	default:
		return nil, errf(pos, "expected statement, found %s", p.tok)
	}
}

func (p *parser) split(pos Pos) (Stmt, error) {
	if err := p.advance(); err != nil { // SPLIT
		return nil, err
	}
	rel, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	s := &Split{Pos: pos, Rel: rel}
	for {
		name, err := p.ident("split target name")
		if err != nil {
			return nil, err
		}
		if err := p.keyword("IF"); err != nil {
			return nil, err
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		s.Arms = append(s.Arms, SplitArm{Name: name, Pred: pred})
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if len(s.Arms) < 2 {
		return nil, errf(pos, "SPLIT needs at least two arms, got %d", len(s.Arms))
	}
	return s, nil
}

func (p *parser) operator() (Op, error) {
	pos := p.tok.pos
	if p.tok.kind != tokKeyword {
		return nil, errf(pos, "expected operator keyword, found %s", p.tok)
	}
	kw := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch kw {
	case "LOAD":
		return p.load()
	case "FILTER":
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		return &Filter{Rel: rel, Pred: pred}, nil
	case "FOREACH":
		return p.foreach()
	case "GROUP":
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		by, err := p.fieldList()
		if err != nil {
			return nil, err
		}
		return &Group{Rel: rel, By: by}, nil
	case "JOIN":
		return p.join()
	case "ORDER":
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		field, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		o := &Order{Rel: rel, By: field}
		if p.atKeyword("DESC") {
			o.Desc = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.atKeyword("ASC") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return o, nil
	case "LIMIT":
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, errf(p.tok.pos, "expected limit count, found %s", p.tok)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 1 {
			return nil, errf(p.tok.pos, "limit count must be a positive integer, got %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Limit{Rel: rel, N: n}, nil
	case "DISTINCT":
		rel, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		return &Distinct{Rel: rel}, nil
	default:
		return nil, errf(pos, "unexpected keyword %s at start of operator", kw)
	}
}

func (p *parser) load() (Op, error) {
	ds, err := p.stringLit("dataset name")
	if err != nil {
		return nil, err
	}
	l := &Load{Dataset: ds}
	if p.atKeyword("AS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "'(' after AS"); err != nil {
			return nil, err
		}
		for {
			f, err := p.ident("field name")
			if err != nil {
				return nil, err
			}
			l.Schema = append(l.Schema, f)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokRParen, "')' closing schema"); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (p *parser) foreach() (Op, error) {
	rel, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("GENERATE"); err != nil {
		return nil, err
	}
	f := &Foreach{Rel: rel}
	for {
		item, err := p.genItem()
		if err != nil {
			return nil, err
		}
		f.Items = append(f.Items, item)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// aggFuncs names the supported aggregate functions; COUNT allows a '*'
// argument.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MAX": true, "MIN": true,
}

func (p *parser) genItem() (GenItem, error) {
	item := GenItem{Pos: p.tok.pos}
	switch {
	case p.atKeyword("GROUP"):
		item.IsGroup = true
		if err := p.advance(); err != nil {
			return item, err
		}
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return item, err
		}
		if p.tok.kind == tokLParen {
			upper := toUpper(name)
			if !aggFuncs[upper] {
				return item, errf(item.Pos, "unknown aggregate function %q (supported: COUNT, SUM, AVG, MAX, MIN)", name)
			}
			if err := p.advance(); err != nil {
				return item, err
			}
			item.Agg = upper
			switch {
			case p.tok.kind == tokStar:
				if upper != "COUNT" {
					return item, errf(p.tok.pos, "%s requires a field argument", upper)
				}
				if err := p.advance(); err != nil {
					return item, err
				}
			case p.tok.kind == tokIdent:
				item.AggField = p.tok.text
				if err := p.advance(); err != nil {
					return item, err
				}
			default:
				return item, errf(p.tok.pos, "expected aggregate argument, found %s", p.tok)
			}
			if err := p.expect(tokRParen, "')' closing aggregate"); err != nil {
				return item, err
			}
		} else {
			item.Field = name
		}
	default:
		return item, errf(p.tok.pos, "expected GENERATE item, found %s", p.tok)
	}
	if p.atKeyword("AS") {
		if err := p.advance(); err != nil {
			return item, err
		}
		alias, err := p.ident("alias")
		if err != nil {
			return item, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) join() (Op, error) {
	left, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("BY"); err != nil {
		return nil, err
	}
	lk, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokComma, "',' between join inputs"); err != nil {
		return nil, err
	}
	right, err := p.ident("relation name")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("BY"); err != nil {
		return nil, err
	}
	rk, err := p.fieldList()
	if err != nil {
		return nil, err
	}
	if len(lk) != len(rk) {
		return nil, errf(p.tok.pos, "join key lists differ in length: %d vs %d", len(lk), len(rk))
	}
	return &Join{Left: left, LeftKeys: lk, Right: right, RightKeys: rk}, nil
}

// fieldList parses "f" or "(f1, f2, ...)".
func (p *parser) fieldList() ([]string, error) {
	if p.tok.kind == tokIdent {
		f := p.tok.text
		return []string{f}, p.advance()
	}
	if err := p.expect(tokLParen, "field name or '('"); err != nil {
		return nil, err
	}
	var out []string
	for {
		f, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		out = append(out, f)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokRParen, "')' closing field list"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) predicate() (Predicate, error) {
	var pred Predicate
	for {
		cmp, err := p.comparison()
		if err != nil {
			return pred, err
		}
		pred.Terms = append(pred.Terms, cmp)
		if !p.atKeyword("AND") {
			return pred, nil
		}
		if err := p.advance(); err != nil {
			return pred, err
		}
	}
}

func (p *parser) comparison() (Comparison, error) {
	cmp := Comparison{Pos: p.tok.pos}
	field, err := p.ident("field name")
	if err != nil {
		return cmp, err
	}
	cmp.Field = field
	switch p.tok.kind {
	case tokLT:
		cmp.Op = CmpLT
	case tokLE:
		cmp.Op = CmpLE
	case tokGT:
		cmp.Op = CmpGT
	case tokGE:
		cmp.Op = CmpGE
	case tokEQ:
		cmp.Op = CmpEQ
	case tokNE:
		cmp.Op = CmpNE
	default:
		return cmp, errf(p.tok.pos, "expected comparison operator, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return cmp, err
	}
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		if hasDot(text) {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return cmp, errf(p.tok.pos, "bad number %q: %v", text, err)
			}
			cmp.Lit = f
		} else {
			i, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return cmp, errf(p.tok.pos, "bad integer %q: %v", text, err)
			}
			cmp.Lit = i
		}
	case tokString:
		cmp.Lit = p.tok.text
	default:
		return cmp, errf(p.tok.pos, "expected literal, found %s", p.tok)
	}
	return cmp, p.advance()
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

func toUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
