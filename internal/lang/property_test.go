package lang

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// randPredicate builds a random conjunction over fields f0..f2 with mixed
// literal types and operators.
func randPredicate(r *rand.Rand) Predicate {
	fields := []string{"f0", "f1", "f2"}
	n := 1 + r.Intn(4)
	var pred Predicate
	for i := 0; i < n; i++ {
		var lit any
		switch r.Intn(3) {
		case 0:
			lit = int64(r.Intn(200) - 100)
		case 1:
			lit = float64(r.Intn(2000)-1000) / 10
		default:
			lit = string(rune('a' + r.Intn(26)))
		}
		pred.Terms = append(pred.Terms, Comparison{
			Field: fields[r.Intn(len(fields))],
			Op:    CmpOp(r.Intn(6)),
			Lit:   lit,
		})
	}
	return pred
}

// randValue draws a field value from the same domains the predicates use.
func randValue(r *rand.Rand) keyval.Field {
	switch r.Intn(3) {
	case 0:
		return int64(r.Intn(240) - 120)
	case 1:
		return float64(r.Intn(2400)-1200) / 10
	default:
		return string(rune('a' + r.Intn(26)))
	}
}

// evalPredicate applies the exact predicate semantics the compiled filter
// stage uses.
func evalPredicate(pred Predicate, rec map[string]keyval.Field) bool {
	for _, t := range pred.Terms {
		ct := compiledTerm{op: t.Op, lit: keyval.T(t.Lit)[0]}
		if !ct.eval(rec[t.Field]) {
			return false
		}
	}
	return true
}

// TestFilterAnnotationSoundnessQuick is the soundness property behind
// partition pruning: every record the exact predicate accepts must lie in
// every derived filter interval. (Annotations may over-approximate — that
// only costs pruning opportunities — but must never under-approximate,
// which would drop live data.)
func TestFilterAnnotationSoundnessQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pred := randPredicate(r)
		filters := filtersFromPredicate(pred)
		for trial := 0; trial < 60; trial++ {
			rec := map[string]keyval.Field{
				"f0": randValue(r), "f1": randValue(r), "f2": randValue(r),
			}
			if !evalPredicate(pred, rec) {
				continue
			}
			for _, fl := range filters {
				if !fl.Interval.Contains(rec[fl.Field]) {
					t.Logf("pred %v accepted %v but filter %v excludes it", pred, rec, fl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLimitSelectionQuick checks the LIMIT selection operator against a
// straightforward specification: it returns the n extremes in order, and
// merging selections of a partition of the input equals selecting over the
// whole input (the property that makes local-then-merge top-K correct).
func TestLimitSelectionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		desc := r.Intn(2) == 0
		sortWidth := r.Intn(2) // 0 = whole tuple, 1 = first field
		var vs []keyval.Tuple
		for i := 0; i < r.Intn(40); i++ {
			vs = append(vs, keyval.T(int64(r.Intn(10)), int64(i)))
		}
		whole := selectLimit(vs, n, sortWidth, desc)
		// Property 1: ordered under limitCompare.
		for i := 1; i < len(whole); i++ {
			if limitCompare(whole[i-1], whole[i], sortWidth, desc) > 0 {
				return false
			}
		}
		// Property 2: split-select-merge equals whole-select.
		cut := 0
		if len(vs) > 0 {
			cut = r.Intn(len(vs))
		}
		part := append([]keyval.Tuple{}, selectLimit(vs[:cut], n, sortWidth, desc)...)
		part = append(part, selectLimit(vs[cut:], n, sortWidth, desc)...)
		merged := selectLimit(part, n, sortWidth, desc)
		if len(merged) != len(whole) {
			return false
		}
		for i := range merged {
			if keyval.Compare(merged[i], whole[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestAggMergeAssociativityQuick checks that slot merging is associative
// and order-insensitive over partitions — the property that makes the
// compiled combiner safe to run zero or more times at any granularity.
func TestAggMergeAssociativityQuick(t *testing.T) {
	slots := []slotDef{{kind: slotSumI}, {kind: slotSumF}, {kind: slotMax}, {kind: slotMin}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		vs := make([]keyval.Tuple, n)
		for i := range vs {
			vs[i] = keyval.T(int64(r.Intn(5)), float64(r.Intn(100)), int64(r.Intn(50)), int64(r.Intn(50)))
		}
		whole := mergeSlots(slots, vs)
		cut := 1 + r.Intn(n)
		if cut >= n {
			cut = n - 1
		}
		if cut < 1 {
			return keyval.Compare(whole, mergeSlots(slots, vs)) == 0
		}
		left := mergeSlots(slots, vs[:cut])
		right := mergeSlots(slots, vs[cut:])
		combined := mergeSlots(slots, []keyval.Tuple{left, right})
		return keyval.Compare(whole, combined) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
