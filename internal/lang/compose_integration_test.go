package lang

import (
	"reflect"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// TestComposeCleaningWithQuery reproduces the paper's Figure 1 story: a
// hand-written workflow cleans OLTP snapshots, and an independently
// developed query (the Pig role) consumes its output; the two are composed
// Oozie-style and optimized as one plan. Stubby must find cross-component
// packing opportunities and must not change the results.
func TestComposeCleaningWithQuery(t *testing.T) {
	// Raw snapshot: key (ord), value (part, qty, price, status); status 1
	// marks records the cleaning stage keeps.
	var raw []keyval.Pair
	for i := 0; i < 400; i++ {
		raw = append(raw, keyval.Pair{
			Key: keyval.T(int64(i)),
			Value: keyval.T(
				"p"+string(rune('0'+i%4)),
				int64(i%5+1),
				float64(i%9)*2.5,
				int64(i%10/7), // ~30% dirty
			),
		})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("raw", raw, mrsim.IngestSpec{
		NumPartitions: 4,
		KeyFields:     []string{"ord"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"ord"}},
	}); err != nil {
		t.Fatal(err)
	}

	// Component 1: the hand-written cleaning workflow (a "Java" job):
	// drop records with status != 0 and strip the status column.
	cleanStage := wf.MapStage("M_clean", func(k, v keyval.Tuple, emit wf.Emit) {
		if v[3] == int64(0) {
			emit(k, v[:3])
		}
	}, 1e-6)
	cleaning := &wf.Workflow{
		Name: "cleaning",
		Jobs: []*wf.Job{{
			ID: "CLEAN", Config: wf.DefaultConfig(), Origin: []string{"CLEAN"},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "raw",
				Stages: []wf.Stage{cleanStage},
				KeyIn:  []string{"ord"}, ValIn: []string{"part", "qty", "price", "status"},
				KeyOut: []string{"ord"}, ValOut: []string{"part", "qty", "price"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: "cleaned",
				KeyOut: []string{"ord"}, ValOut: []string{"part", "qty", "price"},
			}},
		}},
		Datasets: []*wf.Dataset{
			{ID: "raw", Base: true, KeyFields: []string{"ord"}, ValueFields: []string{"part", "qty", "price", "status"}},
			{ID: "cleaned", KeyFields: []string{"ord"}, ValueFields: []string{"part", "qty", "price"}},
		},
	}

	// Component 2: the report query, developed against "cleaned" as if it
	// were a base dataset (the query author never sees the cleaning code).
	report, err := CompileString(`
		c = LOAD 'cleaned';
		g = GROUP c BY part;
		r = FOREACH g GENERATE group, COUNT(*) AS n, SUM(price) AS rev;
		STORE r INTO 'report';
	`, []*wf.Dataset{{
		ID: "cleaned", Base: true,
		KeyFields:   []string{"ord"},
		ValueFields: []string{"part", "qty", "price"},
	}}, Options{Name: "report"})
	if err != nil {
		t.Fatalf("compile report: %v", err)
	}

	combined, err := wf.Compose("figure1", cleaning, report)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if combined.Dataset("cleaned").Base {
		t.Fatal("stitched dataset still base")
	}

	cl := mrsim.DefaultCluster()
	cl.VirtualScale = 2000
	if err := profile.NewProfiler(cl, 1.0, 1).Annotate(combined, dfs); err != nil {
		t.Fatalf("profile: %v", err)
	}
	res, err := optimizer.New(cl, optimizer.Options{Seed: 1}).Optimize(combined)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	// The map-only cleaning job packs into the query's aggregation job:
	// cross-component inter-job vertical packing.
	if len(res.Plan.Jobs) != 1 {
		t.Errorf("cross-component packing missed: %d jobs\n%s", len(res.Plan.Jobs), res.Plan.Summary())
	}

	collect := func(plan *wf.Workflow) []keyval.Pair {
		d := dfs.Clone()
		if _, err := mrsim.NewEngine(cl, d).RunWorkflow(plan); err != nil {
			t.Fatalf("run: %v", err)
		}
		st, ok := d.Get("report")
		if !ok {
			t.Fatal("report missing")
		}
		pairs := st.AllPairs()
		keyval.SortPairs(pairs, nil)
		return pairs
	}
	want := collect(combined)
	got := collect(res.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("optimized composition changed results:\nwant %v\ngot  %v", want, got)
	}
	if len(want) != 4 {
		t.Fatalf("report groups = %d, want 4", len(want))
	}
}
