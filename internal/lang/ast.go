package lang

import (
	"fmt"
	"strings"
)

// Script is a parsed query: a sequence of statements ending in one or more
// STORE statements, mirroring a Pig Latin script.
type Script struct {
	Stmts []Stmt
}

// String renders the script in canonical form; Parse(s.String()) yields an
// equivalent script (the parse-print-parse fixpoint tested in the suite).
func (s *Script) String() string {
	var b strings.Builder
	for _, st := range s.Stmts {
		fmt.Fprintf(&b, "%s;\n", st)
	}
	return b.String()
}

// Stmt is one statement: an assignment, a SPLIT, or a STORE.
type Stmt interface {
	fmt.Stringer
	// Position locates the statement for error reporting.
	Position() Pos
}

// Assign binds a relation name to an operator result: "name = op".
type Assign struct {
	Pos  Pos
	Name string
	Op   Op
}

func (a *Assign) Position() Pos  { return a.Pos }
func (a *Assign) String() string { return fmt.Sprintf("%s = %s", a.Name, a.Op) }

// Split is "SPLIT rel INTO a IF pred, b IF pred" — the user-defined logical
// split pattern of the US workload (Section 7.1), sugar for parallel FILTER
// statements over one relation.
type Split struct {
	Pos  Pos
	Rel  string
	Arms []SplitArm
}

// SplitArm is one "name IF predicate" arm of a SPLIT.
type SplitArm struct {
	Name string
	Pred Predicate
}

func (s *Split) Position() Pos { return s.Pos }
func (s *Split) String() string {
	var arms []string
	for _, a := range s.Arms {
		arms = append(arms, fmt.Sprintf("%s IF %s", a.Name, a.Pred))
	}
	return fmt.Sprintf("SPLIT %s INTO %s", s.Rel, strings.Join(arms, ", "))
}

// Store is "STORE rel INTO 'dataset'".
type Store struct {
	Pos     Pos
	Rel     string
	Dataset string
}

func (s *Store) Position() Pos  { return s.Pos }
func (s *Store) String() string { return fmt.Sprintf("STORE %s INTO '%s'", s.Rel, s.Dataset) }

// Op is the right-hand side of an assignment.
type Op interface{ fmt.Stringer }

// Load is "LOAD 'dataset' [AS (f1, f2, ...)]".
type Load struct {
	Dataset string
	Schema  []string // nil: take field names from the dataset annotation
}

func (l *Load) String() string {
	if l.Schema == nil {
		return fmt.Sprintf("LOAD '%s'", l.Dataset)
	}
	return fmt.Sprintf("LOAD '%s' AS (%s)", l.Dataset, strings.Join(l.Schema, ", "))
}

// Filter is "FILTER rel BY predicate".
type Filter struct {
	Rel  string
	Pred Predicate
}

func (f *Filter) String() string { return fmt.Sprintf("FILTER %s BY %s", f.Rel, f.Pred) }

// Foreach is "FOREACH rel GENERATE items...". Over a flat relation the items
// must be field references (projection); over a GROUP result they may be
// aggregate calls, which fuse into the grouping job's reduce function.
type Foreach struct {
	Rel   string
	Items []GenItem
}

func (f *Foreach) String() string {
	var items []string
	for _, it := range f.Items {
		items = append(items, it.String())
	}
	return fmt.Sprintf("FOREACH %s GENERATE %s", f.Rel, strings.Join(items, ", "))
}

// Group is "GROUP rel BY f1, f2, ...".
type Group struct {
	Rel string
	By  []string
}

func (g *Group) String() string {
	return fmt.Sprintf("GROUP %s BY %s", g.Rel, keyList(g.By))
}

// Join is "JOIN a BY (ka...), b BY (kb...)" — an inner repartition join.
type Join struct {
	Left      string
	LeftKeys  []string
	Right     string
	RightKeys []string
}

func (j *Join) String() string {
	return fmt.Sprintf("JOIN %s BY %s, %s BY %s",
		j.Left, keyList(j.LeftKeys), j.Right, keyList(j.RightKeys))
}

func keyList(keys []string) string {
	if len(keys) == 1 {
		return keys[0]
	}
	return "(" + strings.Join(keys, ", ") + ")"
}

// Order is "ORDER rel BY field [ASC|DESC]".
type Order struct {
	Rel  string
	By   string
	Desc bool
}

func (o *Order) String() string {
	dir := "ASC"
	if o.Desc {
		dir = "DESC"
	}
	return fmt.Sprintf("ORDER %s BY %s %s", o.Rel, o.By, dir)
}

// Limit is "LIMIT rel n". Following an ORDER it compiles to the scalable
// top-K pattern; otherwise it selects the first n records of the relation
// in full-record order (deterministic).
type Limit struct {
	Rel string
	N   int
}

func (l *Limit) String() string { return fmt.Sprintf("LIMIT %s %d", l.Rel, l.N) }

// Distinct is "DISTINCT rel".
type Distinct struct {
	Rel string
}

func (d *Distinct) String() string { return fmt.Sprintf("DISTINCT %s", d.Rel) }

// GenItem is one item of a GENERATE list.
type GenItem struct {
	Pos Pos
	// Field references a field of a flat relation, or an inner field for
	// aggregate arguments. Empty when Agg or IsGroup is set.
	Field string
	// IsGroup marks the `group` keyword item (the grouping key).
	IsGroup bool
	// Agg is the aggregate function name (COUNT, SUM, AVG, MAX, MIN) or "".
	Agg string
	// AggField is the aggregate argument field; empty for COUNT(*).
	AggField string
	// Alias renames the output field (AS alias).
	Alias string
}

func (g GenItem) String() string {
	var s string
	switch {
	case g.IsGroup:
		s = "group"
	case g.Agg != "":
		arg := g.AggField
		if arg == "" {
			arg = "*"
		}
		s = fmt.Sprintf("%s(%s)", g.Agg, arg)
	default:
		s = g.Field
	}
	if g.Alias != "" {
		s += " AS " + g.Alias
	}
	return s
}

// CmpOp is a comparison operator in a filter predicate.
type CmpOp int

const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

func (op CmpOp) String() string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Comparison is one "field op literal" term.
type Comparison struct {
	Pos   Pos
	Field string
	Op    CmpOp
	// Lit is the literal operand: int64, float64, or string.
	Lit any
}

func (c Comparison) String() string {
	switch v := c.Lit.(type) {
	case string:
		return fmt.Sprintf("%s %s '%s'", c.Field, c.Op, v)
	default:
		return fmt.Sprintf("%s %s %v", c.Field, c.Op, v)
	}
}

// Predicate is a conjunction of comparisons.
type Predicate struct {
	Terms []Comparison
}

func (p Predicate) String() string {
	var terms []string
	for _, t := range p.Terms {
		terms = append(terms, t.String())
	}
	return strings.Join(terms, " AND ")
}
