package lang

import (
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Compiled stage generators. Records flowing between lang-compiled stages
// are flat: the logical record is the concatenation key ++ value, split at a
// statically known key width. Closures capture field positions resolved at
// compile time, so the emitted functions remain black boxes to the
// optimizer — exactly the paper's contract, where program semantics reach
// Stubby only through annotations.

// Per-record CPU cost estimates (seconds) charged by the simulator for each
// generated operator, in line with the hand-built workloads' constants.
const (
	cpuFilter   = 0.3e-6
	cpuProject  = 0.4e-6
	cpuRekey    = 0.5e-6
	cpuFold     = 0.5e-6
	cpuJoinMap  = 0.5e-6
	cpuJoinRed  = 1.0e-6
	cpuDistinct = 0.4e-6
	cpuTopK     = 0.5e-6
	cpuEmitAll  = 0.4e-6
	cpuIdentity = 0.3e-6
)

// fieldAt reads flat field i of a record whose key holds the first kw
// fields.
func fieldAt(k, v keyval.Tuple, kw, i int) keyval.Field {
	if i < kw {
		if i < len(k) {
			return k[i]
		}
		return nil
	}
	j := i - kw
	if j < len(v) {
		return v[j]
	}
	return nil
}

// compiledTerm is one comparison with its field position resolved.
type compiledTerm struct {
	idx int
	op  CmpOp
	lit keyval.Field
}

func (t compiledTerm) eval(f keyval.Field) bool {
	c := keyval.CompareFields(f, t.lit)
	switch t.op {
	case CmpLT:
		return c < 0
	case CmpLE:
		return c <= 0
	case CmpGT:
		return c > 0
	case CmpGE:
		return c >= 0
	case CmpEQ:
		return c == 0
	case CmpNE:
		return c != 0
	default:
		return false
	}
}

// filterStage passes records satisfying every term, preserving the key/value
// split.
func filterStage(name string, kw int, terms []compiledTerm) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		for _, t := range terms {
			if !t.eval(fieldAt(k, v, kw, t.idx)) {
				return
			}
		}
		emit(k, v)
	}, cpuFilter)
}

// projectStage emits the selected flat fields as the value of a key-less
// record.
func projectStage(name string, kw int, idx []int) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		out := make(keyval.Tuple, len(idx))
		for i, j := range idx {
			out[i] = fieldAt(k, v, kw, j)
		}
		emit(nil, out)
	}, cpuProject)
}

// rekeyStage rebuilds the key and value from selected flat fields.
func rekeyStage(name string, cpu float64, kw int, keyIdx, valIdx []int) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		nk := make(keyval.Tuple, len(keyIdx))
		for i, j := range keyIdx {
			nk[i] = fieldAt(k, v, kw, j)
		}
		nv := make(keyval.Tuple, len(valIdx))
		for i, j := range valIdx {
			nv[i] = fieldAt(k, v, kw, j)
		}
		emit(nk, nv)
	}, cpu)
}

// identityStage passes records through (used when a map-only store job has
// no pending pipeline).
func identityStage(name string) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, cpuIdentity)
}

// --- aggregation --------------------------------------------------------------

// slotKind is the merge rule for one slot of the pre-aggregated value
// layout. Every supported aggregate decomposes into slots with associative
// merges, so one layout serves map output, combine output, and reduce input
// (the Hadoop requirement that combiners be format-preserving).
type slotKind int

const (
	slotSumF slotKind = iota // float64 sum
	slotSumI                 // int64 sum
	slotMax                  // max by field comparison
	slotMin                  // min by field comparison
)

// slotDef is one slot: its merge rule and the flat source field it
// initializes from (-1 for constant-1 counters).
type slotDef struct {
	kind slotKind
	src  int
}

// aggPlan decomposes the GENERATE aggregate list into slots plus the
// finalizers that turn merged slots into output fields.
type aggPlan struct {
	slots []slotDef
	// finals computes output field i from the merged slot tuple.
	finals []func(slots keyval.Tuple) keyval.Field
}

func buildAggPlan(items []GenItem, fieldIdx func(string) int) aggPlan {
	var p aggPlan
	for _, it := range items {
		if it.Agg == "" {
			continue
		}
		base := len(p.slots)
		switch it.Agg {
		case "COUNT":
			p.slots = append(p.slots, slotDef{kind: slotSumI, src: -1})
			p.finals = append(p.finals, func(s keyval.Tuple) keyval.Field { return s[base] })
		case "SUM":
			p.slots = append(p.slots, slotDef{kind: slotSumF, src: fieldIdx(it.AggField)})
			p.finals = append(p.finals, func(s keyval.Tuple) keyval.Field { return s[base] })
		case "AVG":
			p.slots = append(p.slots,
				slotDef{kind: slotSumF, src: fieldIdx(it.AggField)},
				slotDef{kind: slotSumI, src: -1})
			p.finals = append(p.finals, func(s keyval.Tuple) keyval.Field {
				n := s[base+1].(int64)
				if n == 0 {
					return 0.0
				}
				return s[base].(float64) / float64(n)
			})
		case "MAX":
			p.slots = append(p.slots, slotDef{kind: slotMax, src: fieldIdx(it.AggField)})
			p.finals = append(p.finals, func(s keyval.Tuple) keyval.Field { return s[base] })
		case "MIN":
			p.slots = append(p.slots, slotDef{kind: slotMin, src: fieldIdx(it.AggField)})
			p.finals = append(p.finals, func(s keyval.Tuple) keyval.Field { return s[base] })
		}
	}
	return p
}

func asFloat(f keyval.Field) float64 {
	switch x := f.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// aggInitStage emits (group key, initial slots) per record.
func aggInitStage(name string, kw int, keyIdx []int, slots []slotDef) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		nk := make(keyval.Tuple, len(keyIdx))
		for i, j := range keyIdx {
			nk[i] = fieldAt(k, v, kw, j)
		}
		nv := make(keyval.Tuple, len(slots))
		for i, s := range slots {
			switch s.kind {
			case slotSumI:
				if s.src < 0 {
					nv[i] = int64(1)
				} else {
					nv[i] = int64(asFloat(fieldAt(k, v, kw, s.src)))
				}
			case slotSumF:
				nv[i] = asFloat(fieldAt(k, v, kw, s.src))
			case slotMax, slotMin:
				nv[i] = fieldAt(k, v, kw, s.src)
			}
		}
		emit(nk, nv)
	}, cpuRekey)
}

// mergeSlots folds a list of slot tuples into one.
func mergeSlots(slots []slotDef, vs []keyval.Tuple) keyval.Tuple {
	out := keyval.Clone(vs[0])
	for _, v := range vs[1:] {
		for i, s := range slots {
			switch s.kind {
			case slotSumI:
				out[i] = out[i].(int64) + v[i].(int64)
			case slotSumF:
				out[i] = out[i].(float64) + v[i].(float64)
			case slotMax:
				if keyval.CompareFields(v[i], out[i]) > 0 {
					out[i] = v[i]
				}
			case slotMin:
				if keyval.CompareFields(v[i], out[i]) < 0 {
					out[i] = v[i]
				}
			}
		}
	}
	return out
}

// aggCombineStage pre-merges slot tuples (format-preserving).
func aggCombineStage(name string, slots []slotDef) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(k, mergeSlots(slots, vs))
	}, nil, cpuFold)
}

// aggFinalStage merges slots and emits the finalized output fields.
func aggFinalStage(name string, plan aggPlan) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		merged := mergeSlots(plan.slots, vs)
		out := make(keyval.Tuple, len(plan.finals))
		for i, fin := range plan.finals {
			out[i] = fin(merged)
		}
		emit(k, out)
	}, nil, cpuFold)
}

// --- join ----------------------------------------------------------------------

// joinMapStage emits (join key, (side, payload...)) where payload is the
// record minus the join key fields.
func joinMapStage(name string, kw int, keyIdx, payloadIdx []int, side string) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		nk := make(keyval.Tuple, len(keyIdx))
		for i, j := range keyIdx {
			nk[i] = fieldAt(k, v, kw, j)
		}
		nv := make(keyval.Tuple, 0, len(payloadIdx)+1)
		nv = append(nv, side)
		for _, j := range payloadIdx {
			nv = append(nv, fieldAt(k, v, kw, j))
		}
		emit(nk, nv)
	}, cpuJoinMap)
}

// joinReduceStage performs the inner equi-join: the cross product of left
// and right payloads per key, emitting (key, left payload ++ right payload).
func joinReduceStage(name string) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var lefts, rights []keyval.Tuple
		for _, v := range vs {
			if v[0] == "l" {
				lefts = append(lefts, v[1:])
			} else {
				rights = append(rights, v[1:])
			}
		}
		for _, l := range lefts {
			for _, r := range rights {
				out := make(keyval.Tuple, 0, len(l)+len(r))
				out = append(out, l...)
				out = append(out, r...)
				emit(k, out)
			}
		}
	}, nil, cpuJoinRed)
}

// --- distinct -------------------------------------------------------------------

// distinctKeyStage rekeys the whole record into the key.
func distinctKeyStage(name string, kw int, width int) wf.Stage {
	idx := make([]int, width)
	for i := range idx {
		idx[i] = i
	}
	return rekeyStage(name, cpuDistinct, kw, idx, nil)
}

// distinctReduceStage emits one record per group.
func distinctReduceStage(name string) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(k, keyval.Tuple{})
	}, nil, cpuDistinct)
}

// distinctCombineStage collapses duplicate keys early.
func distinctCombineStage(name string) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(k, keyval.Tuple{})
	}, nil, cpuDistinct)
}

// --- order / limit ---------------------------------------------------------------

// limitCompare orders value tuples for LIMIT selection. sortWidth leading
// fields form the sort key (0 compares the whole tuple); desc reverses.
func limitCompare(a, b keyval.Tuple, sortWidth int, desc bool) int {
	var c int
	if sortWidth == 0 {
		c = keyval.Compare(a, b)
	} else {
		idx := make([]int, sortWidth)
		for i := range idx {
			idx[i] = i
		}
		c = keyval.CompareOn(a, b, idx)
		if c == 0 {
			c = keyval.Compare(a, b) // total order for determinism
		}
	}
	if desc {
		return -c
	}
	return c
}

// selectLimit returns the n least values under limitCompare, in order.
func selectLimit(vs []keyval.Tuple, n, sortWidth int, desc bool) []keyval.Tuple {
	out := make([]keyval.Tuple, 0, len(vs))
	out = append(out, vs...)
	sort.SliceStable(out, func(i, j int) bool {
		return limitCompare(out[i], out[j], sortWidth, desc) < 0
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// limitLocalStage keeps the task-local best n records per stream under a
// constant key, so a single downstream group can merge them (the SN
// workload's scalable top-K pattern).
func limitLocalStage(name string, n, sortWidth int, desc bool) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		for _, v := range selectLimit(vs, n, sortWidth, desc) {
			emit(keyval.T(int64(0)), v)
		}
	}, []int{}, cpuTopK) // empty group fields: one group per stream
}

// limitMergeStage merges candidates into the global best n, emitting
// (rank, record) with the sort-key prefix stripped.
func limitMergeStage(name string, n, sortWidth int, desc bool) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		for i, v := range selectLimit(vs, n, sortWidth, desc) {
			emit(keyval.T(int64(i+1)), v[sortWidth:])
		}
	}, nil, cpuTopK)
}

// emitAllStage is the reduce side of a materialized ORDER BY: every record
// of the group is emitted in arrival (sorted) order.
func emitAllStage(name string) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		for _, v := range vs {
			emit(k, v)
		}
	}, nil, cpuEmitAll)
}
