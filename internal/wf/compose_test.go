package wf

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
)

func passMap(k, v keyval.Tuple, emit Emit) { emit(k, v) }

// miniWorkflow builds "name": base in -> J(name) -> out.
func miniWorkflow(name, in, out string, inBase bool) *Workflow {
	return &Workflow{
		Name: name,
		Jobs: []*Job{{
			ID: "J_" + name, Config: DefaultConfig(), Origin: []string{"J_" + name},
			MapBranches: []MapBranch{{Tag: 0, Input: in,
				Stages: []Stage{MapStage("M_"+name, passMap, 1e-6)}}},
			ReduceGroups: []ReduceGroup{{Tag: 0, Output: out}},
		}},
		Datasets: []*Dataset{
			{ID: in, Base: inBase, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: out, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
		},
	}
}

func TestComposeStitchesProducerToConsumer(t *testing.T) {
	producer := miniWorkflow("clean", "raw", "cleaned", true)
	consumer := miniWorkflow("report", "cleaned", "result", true) // sees cleaned as base

	w, err := Compose("pipeline", producer, consumer)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if len(w.Jobs) != 2 || len(w.Datasets) != 3 {
		t.Fatalf("composed shape: %d jobs, %d datasets", len(w.Jobs), len(w.Datasets))
	}
	d := w.Dataset("cleaned")
	if d.Base {
		t.Fatal("stitched dataset still marked base")
	}
	if p := w.Producer("cleaned"); p == nil || p.ID != "J_clean" {
		t.Fatalf("producer of cleaned = %v", p)
	}
	if cs := w.Consumers("cleaned"); len(cs) != 1 || cs[0].ID != "J_report" {
		t.Fatalf("consumers of cleaned = %v", cs)
	}
	order, err := w.TopoSort()
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	if order[0].ID != "J_clean" {
		t.Fatalf("topological order wrong: %v", order[0].ID)
	}
}

func TestComposeRejectsDuplicateJobIDs(t *testing.T) {
	a := miniWorkflow("x", "in_a", "out_a", true)
	b := miniWorkflow("x", "in_b", "out_b", true) // same job ID J_x
	if _, err := Compose("dup", a, b); err == nil || !strings.Contains(err.Error(), "Namespace") {
		t.Fatalf("duplicate job IDs not rejected: %v", err)
	}
}

func TestComposeAfterNamespace(t *testing.T) {
	a := miniWorkflow("x", "shared", "out", true)
	b := miniWorkflow("x", "shared", "out", true)
	w, err := Compose("both", a.Namespace("a"), b.Namespace("b"))
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(w.Jobs))
	}
	if w.Dataset("shared") == nil || !w.Dataset("shared").Base {
		t.Fatal("shared base dataset lost")
	}
	if w.Dataset("a/out") == nil || w.Dataset("b/out") == nil {
		t.Fatalf("namespaced outputs missing: %s", w.Summary())
	}
	// Both jobs consume the same (un-namespaced) base input.
	if len(w.Consumers("shared")) != 2 {
		t.Fatalf("consumers of shared = %d", len(w.Consumers("shared")))
	}
}

func TestComposeRejectsSchemaDisagreement(t *testing.T) {
	a := miniWorkflow("a", "in", "out_a", true)
	b := miniWorkflow("b", "in", "out_b", true)
	b.Dataset("in").KeyFields = []string{"other"}
	if _, err := Compose("bad", a, b); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("schema disagreement not rejected: %v", err)
	}
}

func TestComposeProducerSchemaWins(t *testing.T) {
	producer := miniWorkflow("clean", "raw", "cleaned", true)
	producer.Dataset("cleaned").KeyFields = []string{"id"}
	producer.Dataset("cleaned").ValueFields = []string{"payload"}
	consumer := miniWorkflow("report", "cleaned", "result", true)
	consumer.Dataset("cleaned").KeyFields = []string{"legacy_id"} // consumer's stale view

	w, err := Compose("pipeline", producer, consumer)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if got := w.Dataset("cleaned").KeyFields; !FieldsEqual(got, []string{"id"}) {
		t.Fatalf("producer schema did not win: %v", got)
	}
}

func TestComposeFillsUnknownAnnotations(t *testing.T) {
	a := miniWorkflow("a", "in", "out_a", true)
	a.Dataset("in").KeyFields = nil
	a.Dataset("in").ValueFields = nil
	b := miniWorkflow("b", "in", "out_b", true)
	b.Dataset("in").EstRecords = 500

	w, err := Compose("fill", a, b)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	d := w.Dataset("in")
	if !FieldsEqual(d.KeyFields, []string{"k"}) || d.EstRecords != 500 {
		t.Fatalf("annotations not merged: %+v", d)
	}
}

func TestComposeCycleRejected(t *testing.T) {
	a := miniWorkflow("a", "x", "y", true)
	b := miniWorkflow("b", "y", "x", true) // closes the loop
	if _, err := Compose("cycle", a, b); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cyclic composition not rejected: %v", err)
	}
}

func TestNamespacePreservesSemantics(t *testing.T) {
	w := miniWorkflow("x", "in", "out", true)
	n := w.Namespace("ns")
	if err := n.Validate(); err != nil {
		t.Fatalf("namespaced workflow invalid: %v", err)
	}
	if n.Job("ns/J_x") == nil {
		t.Fatalf("job not renamed: %s", n.Summary())
	}
	if n.Dataset("in") == nil {
		t.Fatal("base dataset renamed; must stay shared")
	}
	if n.Dataset("ns/out") == nil {
		t.Fatal("intermediate dataset not renamed")
	}
	// The original is untouched.
	if w.Job("J_x") == nil || w.Dataset("out") == nil {
		t.Fatal("Namespace mutated its receiver")
	}
}

// TestComposeEdgeCases is the table-driven edge-case suite for Compose:
// empty part lists, single-workflow (identity) composition, single-job
// components, and diamond sharing where two independently developed
// components consume one produced dataset.
func TestComposeEdgeCases(t *testing.T) {
	producer := func() *Workflow { return miniWorkflow("clean", "raw", "cleaned", true) }
	left := func() *Workflow { return miniWorkflow("left", "cleaned", "lout", true) }
	right := func() *Workflow { return miniWorkflow("right", "cleaned", "rout", true) }

	cases := []struct {
		name    string
		parts   func() []*Workflow
		wantErr bool
		check   func(t *testing.T, w *Workflow)
	}{
		{
			name:    "empty part set rejected",
			parts:   func() []*Workflow { return nil },
			wantErr: true,
		},
		{
			name:  "single workflow composes to itself",
			parts: func() []*Workflow { return []*Workflow{producer()} },
			check: func(t *testing.T, w *Workflow) {
				if len(w.Jobs) != 1 || len(w.Datasets) != 2 {
					t.Fatalf("shape: %d jobs, %d datasets", len(w.Jobs), len(w.Datasets))
				}
				if !w.Dataset("raw").Base || w.Dataset("cleaned").Base {
					t.Fatal("base flags wrong after identity composition")
				}
			},
		},
		{
			name: "single-job components stitch into a chain",
			parts: func() []*Workflow {
				return []*Workflow{producer(), miniWorkflow("report", "cleaned", "result", true)}
			},
			check: func(t *testing.T, w *Workflow) {
				order, err := w.TopoSort()
				if err != nil || len(order) != 2 || order[0].ID != "J_clean" {
					t.Fatalf("topo = %v, %v", order, err)
				}
			},
		},
		{
			name: "diamond sharing: two components consume one produced dataset",
			parts: func() []*Workflow {
				return []*Workflow{producer(), left(), right()}
			},
			check: func(t *testing.T, w *Workflow) {
				if cs := w.Consumers("cleaned"); len(cs) != 2 {
					t.Fatalf("cleaned has %d consumers, want 2", len(cs))
				}
				if w.Dataset("cleaned").Base {
					t.Fatal("shared dataset still marked base")
				}
				if jp := w.Job("J_clean"); ClassifyProducer(w, jp) != OneToMany {
					t.Fatalf("diamond producer classifies as %v", ClassifyProducer(w, jp))
				}
			},
		},
		{
			name: "order independence: consumers listed before the producer",
			parts: func() []*Workflow {
				return []*Workflow{left(), right(), producer()}
			},
			check: func(t *testing.T, w *Workflow) {
				if w.Producer("cleaned") == nil {
					t.Fatal("producer not stitched when listed last")
				}
				if w.Dataset("cleaned").Base {
					t.Fatal("base flag survived late-producer stitching")
				}
			},
		},
		{
			name: "two producers of one dataset rejected",
			parts: func() []*Workflow {
				a := miniWorkflow("a", "raw", "dup", true)
				b := miniWorkflow("b", "raw2", "dup", true)
				return []*Workflow{a, b}
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := Compose("combo", tc.parts()...)
			if tc.wantErr {
				if err == nil {
					t.Fatal("composition unexpectedly succeeded")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if verr := w.Validate(); verr != nil {
				t.Fatalf("composed workflow invalid: %v", verr)
			}
			tc.check(t, w)
		})
	}
}
