package wf

import "fmt"

// Config is the per-job configuration a configuration transformation
// rewrites (Section 3.5). It is a small but representative slice of the
// dozens of Hadoop parameters the paper cites, chosen so that every
// performance effect the evaluation exercises has a knob:
// parallelism (reduce tasks, split size), the sort/spill pipeline
// (sort buffer, merge factor), pre-aggregation (combiner), and I/O
// compression trade-offs.
type Config struct {
	// NumReduceTasks sets reduce-side parallelism. Ignored for map-only
	// jobs and overridden by range partitioning's split-point count.
	NumReduceTasks int
	// SplitSizeMB controls map-side parallelism: each map task consumes
	// roughly this many (virtual) megabytes of input. Ignored when the
	// job's map tasks are aligned to input partitions by a vertical
	// packing postcondition.
	SplitSizeMB int
	// SortBufferMB is the in-memory buffer for sorting map output; output
	// exceeding it spills to disk in multiple passes.
	SortBufferMB int
	// IOSortFactor caps how many spill runs merge in one pass.
	IOSortFactor int
	// UseCombiner enables the combine function where one is defined.
	UseCombiner bool
	// CompressMapOutput compresses intermediate map output (less I/O and
	// shuffle bytes, more CPU).
	CompressMapOutput bool
	// CompressOutput compresses the job's output dataset, affecting both
	// this job's write cost and downstream read costs.
	CompressOutput bool
}

// DefaultConfig mirrors stock Hadoop defaults: one reducer, 128 MB splits,
// 100 MB sort buffer, merge factor 10, no combiner, no compression.
func DefaultConfig() Config {
	return Config{
		NumReduceTasks: 1,
		SplitSizeMB:    128,
		SortBufferMB:   100,
		IOSortFactor:   10,
	}
}

// Validate rejects non-positive parameters.
func (c Config) Validate() error {
	if c.NumReduceTasks < 1 {
		return fmt.Errorf("wf: NumReduceTasks %d < 1", c.NumReduceTasks)
	}
	if c.SplitSizeMB < 1 {
		return fmt.Errorf("wf: SplitSizeMB %d < 1", c.SplitSizeMB)
	}
	if c.SortBufferMB < 1 {
		return fmt.Errorf("wf: SortBufferMB %d < 1", c.SortBufferMB)
	}
	if c.IOSortFactor < 2 {
		return fmt.Errorf("wf: IOSortFactor %d < 2", c.IOSortFactor)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("reduce=%d split=%dMB buf=%dMB factor=%d combiner=%v mapcomp=%v outcomp=%v",
		c.NumReduceTasks, c.SplitSizeMB, c.SortBufferMB, c.IOSortFactor,
		c.UseCombiner, c.CompressMapOutput, c.CompressOutput)
}
