package wf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// randomDAG builds a random layered workflow: jobs are arranged in layers,
// every job reads one or more datasets from earlier layers (or a base
// dataset) and writes one dataset. The result is always a valid DAG.
func randomDAG(r *rand.Rand) *Workflow {
	w := &Workflow{Name: "rand"}
	nBases := 1 + r.Intn(3)
	var available []string
	for i := 0; i < nBases; i++ {
		id := fmt.Sprintf("base%d", i)
		w.Datasets = append(w.Datasets, &Dataset{
			ID: id, Base: true,
			KeyFields: []string{"k"}, ValueFields: []string{"v"},
		})
		available = append(available, id)
	}
	layers := 1 + r.Intn(4)
	jobN := 0
	for l := 0; l < layers; l++ {
		width := 1 + r.Intn(3)
		var produced []string
		for j := 0; j < width; j++ {
			jobN++
			id := fmt.Sprintf("J%d", jobN)
			out := fmt.Sprintf("d%d", jobN)
			nIn := 1 + r.Intn(2)
			job := &Job{ID: id, Config: DefaultConfig(), Origin: []string{id}}
			seen := map[string]bool{}
			for b := 0; b < nIn; b++ {
				in := available[r.Intn(len(available))]
				if seen[in] {
					continue
				}
				seen[in] = true
				job.MapBranches = append(job.MapBranches, MapBranch{
					Tag: 0, Input: in,
					Stages: []Stage{MapStage(fmt.Sprintf("M%d_%d", jobN, b), passMap, 1e-6)},
				})
			}
			job.ReduceGroups = []ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []Stage{ReduceStage(fmt.Sprintf("R%d", jobN), func(k keyval.Tuple, vs []keyval.Tuple, emit Emit) {
					emit(k, vs[0])
				}, nil, 1e-6)},
			}}
			w.Jobs = append(w.Jobs, job)
			w.Datasets = append(w.Datasets, &Dataset{ID: out})
			produced = append(produced, out)
		}
		available = append(available, produced...)
	}
	return w
}

func TestRandomDAGsValidate(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(rand.New(rand.NewSource(seed)))
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopoSortIsLinearExtensionQuick: the order contains every job exactly
// once and every producer precedes its consumers.
func TestTopoSortIsLinearExtensionQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(rand.New(rand.NewSource(seed)))
		order, err := w.TopoSort()
		if err != nil {
			return false
		}
		if len(order) != len(w.Jobs) {
			return false
		}
		pos := map[string]int{}
		for i, j := range order {
			if _, dup := pos[j.ID]; dup {
				return false
			}
			pos[j.ID] = i
		}
		for _, j := range w.Jobs {
			for _, p := range w.JobProducers(j) {
				if pos[p.ID] >= pos[j.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIsDeepQuick: mutating every mutable field of a clone leaves the
// original untouched (checked through the canonical Summary and a stage
// spot-check).
func TestCloneIsDeepQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(rand.New(rand.NewSource(seed)))
		before := w.Summary()
		c := w.Clone()
		for _, j := range c.Jobs {
			j.ID = j.ID + "_mut"
			j.Config.NumReduceTasks = 999
			for i := range j.MapBranches {
				j.MapBranches[i].Input = "mut"
				j.MapBranches[i].KeyIn = []string{"mut"}
				if len(j.MapBranches[i].Stages) > 0 {
					j.MapBranches[i].Stages[0].Name = "mut"
				}
			}
			for i := range j.ReduceGroups {
				j.ReduceGroups[i].Output = "mut"
			}
		}
		for _, d := range c.Datasets {
			d.ID = "mut_" + d.ID
			d.KeyFields = []string{"mut"}
		}
		if w.Summary() != before {
			return false
		}
		for _, j := range w.Jobs {
			if j.Config.NumReduceTasks == 999 {
				return false
			}
			for _, b := range j.MapBranches {
				if len(b.Stages) > 0 && b.Stages[0].Name == "mut" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNamespaceComposeRoundTripQuick: namespacing two random workflows and
// composing them always yields a valid workflow with all jobs present and
// base datasets shared.
func TestNamespaceComposeRoundTripQuick(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomDAG(rand.New(rand.NewSource(seedA)))
		b := randomDAG(rand.New(rand.NewSource(seedB)))
		combined, err := Compose("both", a.Namespace("a"), b.Namespace("b"))
		if err != nil {
			return false
		}
		if len(combined.Jobs) != len(a.Jobs)+len(b.Jobs) {
			return false
		}
		return combined.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGCIdempotentQuick: GC removes nothing from a fully wired workflow
// and is idempotent after a job removal.
func TestGCIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(rand.New(rand.NewSource(seed)))
		n := len(w.Datasets)
		w.GC()
		if len(w.Datasets) != n {
			return false
		}
		// Remove a sink job; its output dataset must be collected, bases
		// and still-referenced intermediates kept.
		var sinkJob *Job
		for _, j := range w.Jobs {
			if len(w.JobConsumers(j)) == 0 {
				sinkJob = j
			}
		}
		if sinkJob == nil {
			return false
		}
		outs := sinkJob.Outputs()
		w.RemoveJob(sinkJob.ID)
		w.GC()
		for _, out := range outs {
			if w.Dataset(out) != nil {
				return false
			}
		}
		w.GC()
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
