package wf

import "github.com/stubby-mr/stubby/internal/keyval"

// PipelineProfile is the profile annotation for one pipeline (the map side
// of a branch or the reduce side of a group): the paper's two statistic
// families, dataflow statistics (record/byte distributions through the
// phases) and cost statistics (time spent per phase), reduced to the
// per-record rates the What-if engine consumes (Sections 2.2 and 5).
//
// A PipelineProfile is write-once: it is populated by the profiler or by a
// packing adjustment (package profile's Compose/Adjust helpers, which build
// fresh values) and must never be mutated after being attached to a job.
// JobProfile.Clone relies on that to share pipeline profiles across plan
// clones — configuration search clones plans thousands of times, and
// copying key-sample reservoirs each time would dominate its allocation
// profile — and pointer-keyed memoizers (sample digests, fingerprint
// hashers) rely on it to hit across clones.
type PipelineProfile struct {
	// Selectivity is output records per input record for the whole
	// pipeline (the paper's "record selectivity").
	Selectivity float64
	// CPUPerRecord is estimated seconds of compute per input record.
	CPUPerRecord float64
	// OutBytesPerRecord is the average encoded size of an output record.
	OutBytesPerRecord float64
	// InBytesPerRecord is the average encoded size of an input record.
	InBytesPerRecord float64
	// GroupsPerRecord, for reduce-side pipelines, is reduce groups per
	// input record (the reciprocal of the mean group size).
	GroupsPerRecord float64
	// GroupsPerMapRecord, for reduce-side pipelines, is distinct reduce
	// groups per pre-combine map-output record — the key-cardinality rate
	// the What-if engine needs to model combiner effectiveness at
	// arbitrary task granularities.
	GroupsPerMapRecord float64
	// CombineReduction is records surviving the combiner per record in
	// (1 = combiner does not help). Only meaningful where a combiner is
	// defined.
	CombineReduction float64
	// KeySample is a deterministic reservoir sample of this pipeline's
	// output keys: for map-side pipelines these are map-output keys, used
	// for range split points and reduce-skew estimation.
	KeySample []keyval.Tuple
}

// Clone deep-copies the profile.
func (p *PipelineProfile) Clone() *PipelineProfile {
	if p == nil {
		return nil
	}
	out := *p
	if p.KeySample != nil {
		out.KeySample = make([]keyval.Tuple, len(p.KeySample))
		for i, k := range p.KeySample {
			out.KeySample[i] = keyval.Clone(k)
		}
	}
	return &out
}

// JobProfile is the profile annotation of a whole job, keyed by branch and
// group tags. A nil JobProfile means no profile annotation is available and
// cost estimation must fall back to the simpler #jobs model (Section 5).
type JobProfile struct {
	// MapSide holds per-branch map pipeline statistics, keyed by tag.
	// For multi-input tags (join), keyed by branch input dataset via
	// MapSideByInput instead when inputs differ.
	MapSide map[int]*PipelineProfile
	// MapSideByInput refines MapSide for tags with several input branches:
	// statistics per (tag, input dataset).
	MapSideByInput map[string]*PipelineProfile
	// ReduceSide holds per-group reduce pipeline statistics, keyed by tag.
	ReduceSide map[int]*PipelineProfile
}

// Clone copies the job profile. The maps are copied (Set*Profile mutates
// them), but the pipeline profiles themselves are shared: they are
// write-once (see PipelineProfile), so clones alias the same statistics and
// key samples.
func (p *JobProfile) Clone() *JobProfile {
	if p == nil {
		return nil
	}
	out := &JobProfile{}
	if p.MapSide != nil {
		out.MapSide = make(map[int]*PipelineProfile, len(p.MapSide))
		for k, v := range p.MapSide {
			out.MapSide[k] = v
		}
	}
	if p.MapSideByInput != nil {
		out.MapSideByInput = make(map[string]*PipelineProfile, len(p.MapSideByInput))
		for k, v := range p.MapSideByInput {
			out.MapSideByInput[k] = v
		}
	}
	if p.ReduceSide != nil {
		out.ReduceSide = make(map[int]*PipelineProfile, len(p.ReduceSide))
		for k, v := range p.ReduceSide {
			out.ReduceSide[k] = v
		}
	}
	return out
}

// MapProfile returns the map-side profile for a branch, preferring the
// per-input refinement. Returns nil if unknown.
func (p *JobProfile) MapProfile(b MapBranch) *PipelineProfile {
	if p == nil {
		return nil
	}
	if pp, ok := p.MapSideByInput[branchKey(b.Tag, b.Input)]; ok {
		return pp
	}
	return p.MapSide[b.Tag]
}

// ReduceProfile returns the reduce-side profile for a group tag, or nil.
func (p *JobProfile) ReduceProfile(tag int) *PipelineProfile {
	if p == nil {
		return nil
	}
	return p.ReduceSide[tag]
}

// SetMapProfile records the map-side profile for (tag, input).
func (p *JobProfile) SetMapProfile(tag int, input string, pp *PipelineProfile) {
	if p.MapSide == nil {
		p.MapSide = make(map[int]*PipelineProfile)
	}
	if p.MapSideByInput == nil {
		p.MapSideByInput = make(map[string]*PipelineProfile)
	}
	p.MapSide[tag] = pp
	p.MapSideByInput[branchKey(tag, input)] = pp
}

// SetReduceProfile records the reduce-side profile for a tag.
func (p *JobProfile) SetReduceProfile(tag int, pp *PipelineProfile) {
	if p.ReduceSide == nil {
		p.ReduceSide = make(map[int]*PipelineProfile)
	}
	p.ReduceSide[tag] = pp
}

func branchKey(tag int, input string) string {
	return input + "#" + itoa(tag)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
