package wf

import "github.com/stubby-mr/stubby/internal/keyval"

// Rooted-subgraph fingerprints (ReStore-style sub-plan reuse): a canonical
// digest of everything that determines the *content* of one dataset — the
// producing sub-DAG's structure, per-job programs, configurations, and
// profile annotations, plus the base datasets it reads (a base dataset's ID
// is its DFS location, so it participates by identity). Like the workflow
// fingerprint, the digest is insensitive to workflow Name, job IDs, Origin
// bookkeeping, and — unlike it — to *dataset* IDs along the way: a branch's
// Input name is replaced by the recursive sub-fingerprint of that input, and
// a group's Output name by the ordinal of the group within its job, so two
// differently-named workflows producing a dataset by the same computation
// over the same bases collide exactly. Two datasets with equal sub-plan
// fingerprints hold identical records, which is what makes the fingerprint
// a sound key for a cross-workflow reuse catalog.
//
// ReduceCountGroup ties are deliberately omitted: they constrain the
// configuration *search*, not the data a fixed configuration produces, and
// the tied NumReduceTasks itself is already hashed via the job Config.

// SubplanFingerprint digests the producing sub-DAG of one dataset with a
// throwaway Hasher. ok is false when the dataset does not exist in w.
func SubplanFingerprint(w *Workflow, dsID string) (Fingerprint, bool) {
	return NewHasher().Subplan(w, dsID)
}

// Subplan digests the rooted subgraph producing dsID. The workflow is read,
// never modified; the Hasher's profile/program/dataset memos are shared with
// whole-workflow fingerprinting, so interleaving the two is cheap.
func (h *Hasher) Subplan(w *Workflow, dsID string) (Fingerprint, bool) {
	return h.subplan(w, dsID, map[string]Fingerprint{}, map[string]bool{})
}

func (h *Hasher) subplan(w *Workflow, dsID string, memo map[string]Fingerprint, onPath map[string]bool) (Fingerprint, bool) {
	if fp, ok := memo[dsID]; ok {
		return fp, true
	}
	d := w.Dataset(dsID)
	if d == nil || onPath[dsID] {
		return Fingerprint{}, false
	}
	if d.Base {
		// A base dataset is content-addressed by its DFS location: hash the
		// full dataset digest (which includes the ID) under a distinct tag.
		fw := newFPWriter()
		fw.str("sub-base")
		fp := h.dataset(d)
		fw.u64(fp[0])
		fw.u64(fp[1])
		out := fw.sum()
		memo[dsID] = out
		return out, true
	}
	j := w.Producer(dsID)
	if j == nil {
		return Fingerprint{}, false
	}
	onPath[dsID] = true
	defer delete(onPath, dsID)

	fw := newFPWriter()
	fw.str("sub-v1")
	fw.bool(j.AlignMapToInput)
	fw.bool(j.PinnedReducers)
	fw.config(j.Config)
	pf := h.profile(j.Profile)
	fw.u64(pf[0])
	fw.u64(pf[1])
	fw.num(len(j.MapBranches))
	for i := range j.MapBranches {
		b := &j.MapBranches[i]
		in, ok := h.subplan(w, b.Input, memo, onPath)
		if !ok {
			return Fingerprint{}, false
		}
		fw.u64(in[0])
		fw.u64(in[1])
		fw.subBranch(b)
	}
	fw.num(len(j.ReduceGroups))
	target := -1
	for i := range j.ReduceGroups {
		g := &j.ReduceGroups[i]
		if g.Output == dsID && target < 0 {
			target = i
		}
		fw.subGroup(g)
	}
	// Which of the job's outputs this fingerprint is rooted at — a
	// multi-output producer yields one distinct digest per output.
	fw.num(target)
	out := fw.sum()
	memo[dsID] = out
	return out, true
}

// subBranch is fpWriter.branch with the Input dataset name elided — the
// recursive input sub-fingerprint already stands in for it.
func (fw *fpWriter) subBranch(b *MapBranch) {
	fw.num(b.Tag)
	fw.stages(b.Stages)
	if b.Filter == nil {
		fw.bool(false)
	} else {
		fw.bool(true)
		fw.str(b.Filter.Field)
		fw.tuple(keyval.Tuple{b.Filter.Interval.Lo})
		fw.tuple(keyval.Tuple{b.Filter.Interval.Hi})
	}
	fw.strs(b.KeyIn)
	fw.strs(b.ValIn)
	fw.strs(b.KeyOut)
	fw.strs(b.ValOut)
}

// subGroup is fpWriter.group with the Output dataset name elided — the root
// ordinal written after the group list stands in for it.
func (fw *fpWriter) subGroup(g *ReduceGroup) {
	fw.num(g.Tag)
	fw.bool(g.RunsMapSide)
	fw.stages(g.Stages)
	if g.Combiner == nil {
		fw.bool(false)
	} else {
		fw.bool(true)
		fw.stage(g.Combiner)
	}
	fw.num(int(g.Part.Type))
	fw.ints(g.Part.KeyFields)
	fw.ints(g.Part.SortFields)
	fw.tuples(g.Part.SplitPoints)
	fw.num(len(g.Constraints))
	for i := range g.Constraints {
		c := &g.Constraints[i]
		fw.strs(c.CoGroup)
		fw.strs(c.SortPrefix)
		if c.RequireType == nil {
			fw.num(-1)
		} else {
			fw.num(int(*c.RequireType))
		}
	}
	fw.strs(g.KeyIn)
	fw.strs(g.ValIn)
	fw.strs(g.KeyOut)
	fw.strs(g.ValOut)
}

// ProducingJobs returns the transitive producer closure of one dataset: every
// job that must run for dsID to exist, in workflow job-slice order (which is
// deterministic and respects no particular topology — callers needing a
// topological order should TopoSort the result's workflow). Returns nil for
// base or unknown datasets.
func ProducingJobs(w *Workflow, dsID string) []*Job {
	need := map[string]bool{}
	var visit func(id string)
	visit = func(id string) {
		j := w.Producer(id)
		if j == nil || need[j.ID] {
			return
		}
		need[j.ID] = true
		for _, in := range j.Inputs() {
			visit(in)
		}
	}
	visit(dsID)
	if len(need) == 0 {
		return nil
	}
	out := make([]*Job, 0, len(need))
	for _, j := range w.Jobs {
		if need[j.ID] {
			out = append(out, j)
		}
	}
	return out
}
