package wf_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// fpWorkflow builds a small annotated two-job workflow with every
// fingerprint-relevant feature populated: schemas, filters, a combiner, a
// range-partitioned group, profiles with key samples, and a reduce-count
// tie, so the sensitivity properties below exercise each component.
func fpWorkflow() *wf.Workflow {
	mapFn := func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }
	redFn := func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) { emit(k, vs[0]) }
	prof := func(sel float64) *wf.JobProfile {
		p := &wf.JobProfile{}
		pp := &wf.PipelineProfile{
			Selectivity: sel, CPUPerRecord: 1e-6, OutBytesPerRecord: 20,
			InBytesPerRecord: 24, GroupsPerRecord: 0.5, GroupsPerMapRecord: 0.25,
			CombineReduction: 0.4,
			KeySample:        []keyval.Tuple{keyval.T("a", 1), keyval.T("b", 2), keyval.T("c", 3)},
		}
		p.SetMapProfile(0, "base", pp)
		p.SetReduceProfile(0, &wf.PipelineProfile{
			Selectivity: 0.8, CPUPerRecord: 2e-6, OutBytesPerRecord: 16, InBytesPerRecord: 20,
			GroupsPerRecord: 1, GroupsPerMapRecord: 0.5, CombineReduction: 1,
		})
		return p
	}
	combiner := wf.ReduceStage("C1", redFn, nil, 1e-7)
	return &wf.Workflow{
		Name: "fp-test",
		Datasets: []*wf.Dataset{
			{ID: "base", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"},
				EstRecords: 1000, EstBytes: 64000, EstPartitions: 4,
				Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}}},
			{ID: "mid", KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "out"},
		},
		Jobs: []*wf.Job{
			{
				ID: "j1",
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "base",
					Stages: []wf.Stage{wf.MapStage("M1", mapFn, 1e-6)},
					Filter: &wf.Filter{Field: "k", Interval: keyval.Interval{Lo: int64(1), Hi: int64(50)}},
					KeyIn:  []string{"k"}, ValIn: []string{"v"},
					KeyOut: []string{"k"}, ValOut: []string{"v"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag:      0,
					Stages:   []wf.Stage{wf.ReduceStage("R1", redFn, nil, 2e-6)},
					Combiner: &combiner,
					Output:   "mid",
					Part:     keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: []int{0}},
					KeyIn:    []string{"k"}, ValIn: []string{"v"},
					KeyOut: []string{"k"}, ValOut: []string{"v"},
				}},
				Config:           wf.DefaultConfig(),
				Profile:          prof(0.9),
				ReduceCountGroup: "tieA",
			},
			{
				ID: "j2",
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "mid",
					Stages: []wf.Stage{wf.MapStage("M2", mapFn, 1e-6)},
					KeyIn:  []string{"k"}, ValIn: []string{"v"},
					KeyOut: []string{"k"}, ValOut: []string{"v"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag:    0,
					Stages: []wf.Stage{wf.ReduceStage("R2", redFn, []int{0}, 2e-6)},
					Output: "out",
					Part: keyval.PartitionSpec{Type: keyval.RangePartition,
						KeyFields: []int{0}, SortFields: []int{0},
						SplitPoints: []keyval.Tuple{keyval.T("m")}},
					Constraints: []wf.PartitionConstraint{{CoGroup: []string{"k"}, Reason: "test"}},
					KeyIn:       []string{"k"}, ValIn: []string{"v"},
					KeyOut: []string{"k"}, ValOut: []string{"v"},
				}},
				Config:           wf.DefaultConfig(),
				Profile:          prof(0.7),
				ReduceCountGroup: "tieA",
				AlignMapToInput:  true,
			},
		},
	}
}

// TestFingerprintRenameInvariance: identity that carries no cost
// information — workflow name, job IDs, Origin bookkeeping, reduce-count
// tie labels — must not move the fingerprint.
func TestFingerprintRenameInvariance(t *testing.T) {
	w := fpWorkflow()
	base := wf.FingerprintWorkflow(w)

	r := w.Clone()
	r.Name = "renamed-workflow"
	for i, j := range r.Jobs {
		j.ID = fmt.Sprintf("packed-%c", 'x'+i)
		j.Origin = []string{"origA", "origB"}
		if j.ReduceCountGroup != "" {
			j.ReduceCountGroup = "someOtherLabel"
		}
	}
	if got := wf.FingerprintWorkflow(r); got != base {
		t.Fatalf("job-ID/name/origin/tie-label rename moved the fingerprint: %s -> %s", base, got)
	}
}

// TestFingerprintMapOrderInvariance: profile maps are hashed in sorted key
// order, so rebuilding them with a different insertion order (and hence a
// different Go map layout) must not move the fingerprint. Dataset slice
// order is presentation-only and must not move it either.
func TestFingerprintMapOrderInvariance(t *testing.T) {
	w := fpWorkflow()
	base := wf.FingerprintWorkflow(w)

	r := w.Clone()
	for _, j := range r.Jobs {
		// Rebuild each profile map in reverse insertion order.
		p := j.Profile
		rebuilt := &wf.JobProfile{
			MapSide:        map[int]*wf.PipelineProfile{},
			MapSideByInput: map[string]*wf.PipelineProfile{},
			ReduceSide:     map[int]*wf.PipelineProfile{},
		}
		var mapKeys []int
		for k := range p.MapSide {
			mapKeys = append(mapKeys, k)
		}
		for i := len(mapKeys) - 1; i >= 0; i-- {
			rebuilt.MapSide[mapKeys[i]] = p.MapSide[mapKeys[i]]
		}
		var inKeys []string
		for k := range p.MapSideByInput {
			inKeys = append(inKeys, k)
		}
		for i := len(inKeys) - 1; i >= 0; i-- {
			rebuilt.MapSideByInput[inKeys[i]] = p.MapSideByInput[inKeys[i]]
		}
		var redKeys []int
		for k := range p.ReduceSide {
			redKeys = append(redKeys, k)
		}
		for i := len(redKeys) - 1; i >= 0; i-- {
			rebuilt.ReduceSide[redKeys[i]] = p.ReduceSide[redKeys[i]]
		}
		j.Profile = rebuilt
	}
	// Reverse the dataset slice (estimation reads datasets through maps).
	for i, jj := 0, len(r.Datasets)-1; i < jj; i, jj = i+1, jj-1 {
		r.Datasets[i], r.Datasets[jj] = r.Datasets[jj], r.Datasets[i]
	}
	if got := wf.FingerprintWorkflow(r); got != base {
		t.Fatalf("map/dataset iteration order moved the fingerprint: %s -> %s", base, got)
	}
}

// TestFingerprintJobOrderSensitivity: job slice order feeds topological
// tie-breaking and slot-pool interleaving in the estimator, so it must be
// part of the identity (this is also what makes positional job-ID remapping
// on cache hits sound).
func TestFingerprintJobOrderSensitivity(t *testing.T) {
	w := fpWorkflow()
	base := wf.FingerprintWorkflow(w)
	r := w.Clone()
	r.Jobs[0], r.Jobs[1] = r.Jobs[1], r.Jobs[0]
	if got := wf.FingerprintWorkflow(r); got == base {
		t.Fatal("reordering jobs did not move the fingerprint")
	}
}

// fpMutation is one targeted change that must move the fingerprint.
type fpMutation struct {
	name   string
	mutate func(w *wf.Workflow)
}

func fpMutations() []fpMutation {
	return []fpMutation{
		{"config.NumReduceTasks", func(w *wf.Workflow) { w.Jobs[0].Config.NumReduceTasks += 7 }},
		{"config.SplitSizeMB", func(w *wf.Workflow) { w.Jobs[0].Config.SplitSizeMB *= 2 }},
		{"config.SortBufferMB", func(w *wf.Workflow) { w.Jobs[1].Config.SortBufferMB += 32 }},
		{"config.IOSortFactor", func(w *wf.Workflow) { w.Jobs[1].Config.IOSortFactor += 5 }},
		{"config.UseCombiner", func(w *wf.Workflow) { w.Jobs[0].Config.UseCombiner = !w.Jobs[0].Config.UseCombiner }},
		{"config.CompressMapOutput", func(w *wf.Workflow) { w.Jobs[0].Config.CompressMapOutput = true }},
		{"config.CompressOutput", func(w *wf.Workflow) { w.Jobs[1].Config.CompressOutput = true }},
		{"profile.Selectivity", func(w *wf.Workflow) { w.Jobs[0].Profile.MapSide[0].Selectivity *= 1.01 }},
		{"profile.CPUPerRecord", func(w *wf.Workflow) { w.Jobs[0].Profile.ReduceSide[0].CPUPerRecord *= 2 }},
		{"profile.OutBytesPerRecord", func(w *wf.Workflow) { w.Jobs[1].Profile.MapSide[0].OutBytesPerRecord++ }},
		{"profile.GroupsPerMapRecord", func(w *wf.Workflow) { w.Jobs[0].Profile.ReduceSide[0].GroupsPerMapRecord *= 3 }},
		{"profile.CombineReduction", func(w *wf.Workflow) { w.Jobs[0].Profile.MapSide[0].CombineReduction = 0.9 }},
		{"profile.KeySample value", func(w *wf.Workflow) {
			w.Jobs[0].Profile.MapSide[0].KeySample[1] = keyval.T("mutated", 99)
		}},
		{"profile.KeySample dropped", func(w *wf.Workflow) {
			p := w.Jobs[0].Profile.MapSide[0]
			p.KeySample = p.KeySample[:len(p.KeySample)-1]
		}},
		{"profile removed", func(w *wf.Workflow) { w.Jobs[1].Profile = nil }},
		{"partition.Type", func(w *wf.Workflow) {
			w.Jobs[0].ReduceGroups[0].Part = keyval.PartitionSpec{Type: keyval.RangePartition,
				KeyFields: []int{0}, SplitPoints: []keyval.Tuple{keyval.T("q")}}
		}},
		{"partition.KeyFields", func(w *wf.Workflow) { w.Jobs[0].ReduceGroups[0].Part.KeyFields = nil }},
		{"partition.SortFields", func(w *wf.Workflow) { w.Jobs[1].ReduceGroups[0].Part.SortFields = []int{0, 1} }},
		{"partition.SplitPoints", func(w *wf.Workflow) {
			w.Jobs[1].ReduceGroups[0].Part.SplitPoints = []keyval.Tuple{keyval.T("m"), keyval.T("t")}
		}},
		{"edge: branch input", func(w *wf.Workflow) { w.Jobs[1].MapBranches[0].Input = "base" }},
		{"edge: group output", func(w *wf.Workflow) { w.Jobs[1].ReduceGroups[0].Output = "out2" }},
		{"branch filter", func(w *wf.Workflow) { w.Jobs[0].MapBranches[0].Filter = nil }},
		{"filter interval", func(w *wf.Workflow) {
			w.Jobs[0].MapBranches[0].Filter.Interval.Hi = int64(60)
		}},
		{"stage CPU", func(w *wf.Workflow) { w.Jobs[0].MapBranches[0].Stages[0].CPUPerRecord *= 2 }},
		{"stage name", func(w *wf.Workflow) { w.Jobs[0].ReduceGroups[0].Stages[0].Name = "R1x" }},
		{"stage added", func(w *wf.Workflow) {
			w.Jobs[1].MapBranches[0].Stages = append(w.Jobs[1].MapBranches[0].Stages,
				wf.MapStage("M9", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-9))
		}},
		{"group RunsMapSide", func(w *wf.Workflow) { w.Jobs[1].ReduceGroups[0].RunsMapSide = true }},
		{"combiner removed", func(w *wf.Workflow) { w.Jobs[0].ReduceGroups[0].Combiner = nil }},
		{"schema KeyOut", func(w *wf.Workflow) { w.Jobs[0].ReduceGroups[0].KeyOut = []string{"k2"} }},
		{"schema nil vs empty", func(w *wf.Workflow) { w.Jobs[0].MapBranches[0].ValOut = []string{} }},
		{"job AlignMapToInput", func(w *wf.Workflow) { w.Jobs[1].AlignMapToInput = false }},
		{"job PinnedReducers", func(w *wf.Workflow) { w.Jobs[0].PinnedReducers = true }},
		{"tie structure", func(w *wf.Workflow) { w.Jobs[1].ReduceCountGroup = "" }},
		{"dataset EstRecords", func(w *wf.Workflow) { w.Datasets[0].EstRecords *= 2 }},
		{"dataset EstBytes", func(w *wf.Workflow) { w.Datasets[0].EstBytes++ }},
		{"dataset EstPartitions", func(w *wf.Workflow) { w.Datasets[0].EstPartitions = 9 }},
		{"dataset Base flag", func(w *wf.Workflow) { w.Datasets[1].Base = true }},
		{"dataset layout partition", func(w *wf.Workflow) { w.Datasets[0].Layout.PartFields = nil }},
		{"dataset layout sort", func(w *wf.Workflow) { w.Datasets[0].Layout.SortFields = []string{"k"} }},
		{"dataset layout compression", func(w *wf.Workflow) { w.Datasets[0].Layout.Compressed = true }},
		{"dataset added", func(w *wf.Workflow) {
			w.Datasets = append(w.Datasets, &wf.Dataset{ID: "extra", Base: true})
		}},
		{"job added", func(w *wf.Workflow) { w.Jobs = append(w.Jobs, w.Jobs[0].Clone()) }},
	}
}

// TestFingerprintSensitivity: every cost-relevant mutation — config knobs,
// profile fields, partition specs, edges, schemas, layouts — must move the
// fingerprint, and a fresh Hasher must agree with the shared (memoizing)
// one.
func TestFingerprintSensitivity(t *testing.T) {
	base := wf.FingerprintWorkflow(fpWorkflow())
	shared := wf.NewHasher()
	for _, m := range fpMutations() {
		w := fpWorkflow().Clone()
		m.mutate(w)
		got := wf.FingerprintWorkflow(w)
		if got == base {
			t.Errorf("%s: mutation did not move the fingerprint", m.name)
		}
		if s := shared.Workflow(w); s != got {
			t.Errorf("%s: shared hasher disagrees with fresh hasher", m.name)
		}
	}
}

// TestFingerprintPairwiseDistinct: all mutations produce distinct
// fingerprints (no two different mutations collide), a cheap birthday check
// on digest quality.
func TestFingerprintPairwiseDistinct(t *testing.T) {
	seen := map[wf.Fingerprint]string{wf.FingerprintWorkflow(fpWorkflow()): "unmutated"}
	for _, m := range fpMutations() {
		w := fpWorkflow().Clone()
		m.mutate(w)
		fp := wf.FingerprintWorkflow(w)
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s collides with %s", m.name, prev)
		}
		seen[fp] = m.name
	}
}

// TestFingerprintRandomizedStability: random rename/reorder-equivalent
// transformations composed in random order never move the fingerprint,
// while a random mutation from the sensitivity table always does — the
// property-based sweep tying the two suites together.
func TestFingerprintRandomizedStability(t *testing.T) {
	muts := fpMutations()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := fpWorkflow()
		base := wf.FingerprintWorkflow(w)
		r := w.Clone()
		// Compose 1-4 random equivalence-preserving rewrites.
		for n := 1 + rng.Intn(4); n > 0; n-- {
			switch rng.Intn(4) {
			case 0:
				for i, j := range r.Jobs {
					j.ID = fmt.Sprintf("rnd-%d-%d", seed, i)
				}
			case 1:
				r.Name = fmt.Sprintf("wf-%d", rng.Int63())
			case 2:
				rng.Shuffle(len(r.Datasets), func(i, j int) {
					r.Datasets[i], r.Datasets[j] = r.Datasets[j], r.Datasets[i]
				})
			case 3:
				for _, j := range r.Jobs {
					j.Origin = append(j.Origin, fmt.Sprintf("o%d", rng.Intn(100)))
				}
			}
		}
		if got := wf.FingerprintWorkflow(r); got != base {
			t.Fatalf("seed %d: equivalence-preserving rewrites moved the fingerprint", seed)
		}
		// Mutations index into the un-shuffled layout, so apply one to a
		// fresh clone of the original.
		m := muts[rng.Intn(len(muts))]
		mutated := w.Clone()
		m.mutate(mutated)
		if got := wf.FingerprintWorkflow(mutated); got == base {
			t.Fatalf("seed %d: mutation %s did not move the fingerprint", seed, m.name)
		}
	}
}

// TestFingerprintRealWorkload anchors the properties on a real profiled
// workload: clone-stability, rename-invariance, and a config sensitivity.
func TestFingerprintRealWorkload(t *testing.T) {
	wl, err := workloads.Build("SN", workloads.Options{SizeFactor: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 3).Annotate(wl.Workflow, wl.DFS); err != nil {
		t.Fatal(err)
	}
	base := wf.FingerprintWorkflow(wl.Workflow)
	if clone := wf.FingerprintWorkflow(wl.Workflow.Clone()); clone != base {
		t.Fatal("deep clone moved the fingerprint")
	}
	renamed := wl.Workflow.Clone()
	for i, j := range renamed.Jobs {
		j.ID = fmt.Sprintf("merge-%d", i)
	}
	if got := wf.FingerprintWorkflow(renamed); got != base {
		t.Fatal("job renames on a real workload moved the fingerprint")
	}
	tweaked := wl.Workflow.Clone()
	tweaked.Jobs[0].Config.NumReduceTasks++
	if got := wf.FingerprintWorkflow(tweaked); got == base {
		t.Fatal("config knob change on a real workload did not move the fingerprint")
	}
}
