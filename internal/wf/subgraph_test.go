package wf

import "testing"

// Shape-building helpers: tiny map-only jobs wired purely by dataset IDs,
// enough for the subgraph classifiers, which never look at stages.

func shapeJob(id string, ins []string, outs []string) *Job {
	j := &Job{ID: id, Config: DefaultConfig(), Origin: []string{id}}
	for i, out := range outs {
		j.ReduceGroups = append(j.ReduceGroups, ReduceGroup{Tag: i, Output: out})
	}
	for _, in := range ins {
		j.MapBranches = append(j.MapBranches, MapBranch{
			Tag: 0, Input: in,
			Stages: []Stage{MapStage("M_"+id+"_"+in, passMap, 1e-6)},
		})
	}
	return j
}

func shapeWorkflow(name string, jobs []*Job, base []string) *Workflow {
	w := &Workflow{Name: name}
	seen := map[string]bool{}
	for _, b := range base {
		seen[b] = true
		w.Datasets = append(w.Datasets, &Dataset{ID: b, Base: true})
	}
	for _, j := range jobs {
		w.Jobs = append(w.Jobs, j)
		for _, out := range j.Outputs() {
			if !seen[out] {
				seen[out] = true
				w.Datasets = append(w.Datasets, &Dataset{ID: out})
			}
		}
	}
	return w
}

// TestClassifySubgraphShapes is the table-driven edge-case suite the
// generator's DAG shapes motivated: single-job workflows, chains, fan-out,
// fan-in, diamond sharing, and the hybrid resolution order (many-to-one
// before one-to-many before one-to-one).
func TestClassifySubgraphShapes(t *testing.T) {
	single := shapeWorkflow("single",
		[]*Job{shapeJob("J1", []string{"b"}, []string{"o"})}, []string{"b"})
	chain := shapeWorkflow("chain", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"d1"}, []string{"o"}),
	}, []string{"b"})
	fanOut := shapeWorkflow("fan-out", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"d1"}, []string{"o2"}),
		shapeJob("J3", []string{"d1"}, []string{"o3"}),
	}, []string{"b"})
	fanIn := shapeWorkflow("fan-in", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"b"}, []string{"d2"}),
		shapeJob("J3", []string{"d1", "d2"}, []string{"o"}),
	}, []string{"b"})
	diamond := shapeWorkflow("diamond", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"d1"}, []string{"d2"}),
		shapeJob("J3", []string{"d1"}, []string{"d3"}),
		shapeJob("J4", []string{"d2", "d3"}, []string{"o"}),
	}, []string{"b"})
	// Hybrid: J3 has two producers (many-to-one) and one of them fans out
	// (one-to-many); the consumer classification resolves many-to-one first.
	hybrid := shapeWorkflow("hybrid", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"b"}, []string{"d2"}),
		shapeJob("J3", []string{"d1", "d2"}, []string{"o3"}),
		shapeJob("J4", []string{"d1"}, []string{"o4"}),
	}, []string{"b"})

	for _, w := range []*Workflow{single, chain, fanOut, fanIn, diamond, hybrid} {
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: invalid fixture: %v", w.Name, err)
		}
	}

	cases := []struct {
		w        *Workflow
		job      string
		consumer SubgraphKind // ClassifyConsumer(job)
		producer SubgraphKind // ClassifyProducer(job)
	}{
		{single, "J1", NoneToOne, OneToNone},
		{chain, "J1", NoneToOne, OneToOne},
		{chain, "J2", OneToOne, OneToNone},
		{fanOut, "J1", NoneToOne, OneToMany},
		{fanOut, "J2", OneToMany, OneToNone},
		{fanOut, "J3", OneToMany, OneToNone},
		{fanIn, "J3", ManyToOne, OneToNone},
		{fanIn, "J1", NoneToOne, ManyToOne},
		{diamond, "J1", NoneToOne, OneToMany},
		{diamond, "J2", OneToMany, ManyToOne},
		{diamond, "J4", ManyToOne, OneToNone},
		{hybrid, "J3", ManyToOne, OneToNone}, // many-to-one wins over one-to-many
		{hybrid, "J1", NoneToOne, OneToMany},
		{hybrid, "J4", OneToMany, OneToNone},
	}
	for _, tc := range cases {
		j := tc.w.Job(tc.job)
		if got := ClassifyConsumer(tc.w, j); got != tc.consumer {
			t.Errorf("%s: ClassifyConsumer(%s) = %v, want %v", tc.w.Name, tc.job, got, tc.consumer)
		}
		if got := ClassifyProducer(tc.w, j); got != tc.producer {
			t.Errorf("%s: ClassifyProducer(%s) = %v, want %v", tc.w.Name, tc.job, got, tc.producer)
		}
	}
}

// TestSoleLinkEdgeCases: exactly-one-dataset links under multi-output
// producers, double links, and re-read links.
func TestSoleLinkEdgeCases(t *testing.T) {
	// J1 writes two datasets; J2 reads both: two links, not one.
	double := shapeWorkflow("double", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1", "d2"}),
		shapeJob("J2", []string{"d1", "d2"}, []string{"o"}),
	}, []string{"b"})
	if _, ok := SoleLink(double, double.Job("J1"), double.Job("J2")); ok {
		t.Error("two-dataset link reported as sole")
	}

	// J1 writes two datasets; J2 reads only one: that one is the sole link.
	split := shapeWorkflow("split", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1", "d2"}),
		shapeJob("J2", []string{"d1"}, []string{"o"}),
		shapeJob("J3", []string{"d2"}, []string{"o3"}),
	}, []string{"b"})
	if link, ok := SoleLink(split, split.Job("J1"), split.Job("J2")); !ok || link != "d1" {
		t.Errorf("SoleLink = %q, %v; want d1, true", link, ok)
	}

	// A consumer reading the link through two branches still counts one
	// dataset: Inputs() is distinct.
	reread := shapeWorkflow("reread", []*Job{
		shapeJob("J1", []string{"b"}, []string{"d1"}),
		shapeJob("J2", []string{"d1", "d1"}, []string{"o"}),
	}, []string{"b"})
	if link, ok := SoleLink(reread, reread.Job("J1"), reread.Job("J2")); !ok || link != "d1" {
		t.Errorf("double-branch SoleLink = %q, %v; want d1, true", link, ok)
	}

	// Unrelated jobs share no link.
	if _, ok := SoleLink(split, split.Job("J2"), split.Job("J3")); ok {
		t.Error("unrelated jobs reported a sole link")
	}
}

// TestSubgraphKindString covers the display names, including the unknown
// fallback.
func TestSubgraphKindString(t *testing.T) {
	want := map[SubgraphKind]string{
		OneToOne:  "one-to-one",
		OneToMany: "one-to-many",
		ManyToOne: "many-to-one",
		NoneToOne: "none-to-one",
		OneToNone: "one-to-none",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if SubgraphKind(99).String() != "unknown" {
		t.Errorf("unknown kind renders %q", SubgraphKind(99).String())
	}
}
