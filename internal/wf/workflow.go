package wf

import (
	"fmt"
	"sort"
	"strings"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// Job is one MapReduce job vertex: J = <p, c, a> in the paper — the program
// (branches and groups), the configuration, and annotations (schemas and
// filters live on branches/groups; the profile annotation lives here).
type Job struct {
	// ID uniquely names the job within its workflow.
	ID string
	// MapBranches are the map-side pipelines, one per (tag, input).
	MapBranches []MapBranch
	// ReduceGroups are the reduce-side pipelines, one per tag.
	ReduceGroups []ReduceGroup
	// Config is the job configuration.
	Config Config
	// Profile is the profile annotation; nil if unavailable.
	Profile *JobProfile
	// AlignMapToInput forces one map task per input partition consuming it
	// in order — the configuration condition imposed on the consumer job
	// by intra-job vertical packing (Section 3.1, postcondition 2).
	AlignMapToInput bool
	// ReduceCountGroup, when non-empty, ties this job's NumReduceTasks to
	// every other job sharing the label — the many-to-one vertical packing
	// postcondition that all producers partition identically. Configuration
	// search treats tied jobs as one degree of freedom.
	ReduceCountGroup string
	// PinnedReducers freezes NumReduceTasks: a packing postcondition tied
	// it to a base dataset's partition count, so neither configuration
	// search nor rule-based tuning may change it.
	PinnedReducers bool
	// Origin lists the original job IDs packed into this job, for
	// reporting. An untransformed job lists itself.
	Origin []string
}

// MapOnly reports whether every group of the job is map-only.
func (j *Job) MapOnly() bool {
	for _, g := range j.ReduceGroups {
		if !g.MapOnly() {
			return false
		}
	}
	return true
}

// Inputs returns the distinct dataset IDs the job reads, in first-use order.
func (j *Job) Inputs() []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range j.MapBranches {
		if !seen[b.Input] {
			seen[b.Input] = true
			out = append(out, b.Input)
		}
	}
	return out
}

// Outputs returns the distinct dataset IDs the job writes, in group order.
func (j *Job) Outputs() []string {
	var out []string
	seen := map[string]bool{}
	for _, g := range j.ReduceGroups {
		if !seen[g.Output] {
			seen[g.Output] = true
			out = append(out, g.Output)
		}
	}
	return out
}

// Group returns the reduce group with the given tag, or nil.
func (j *Job) Group(tag int) *ReduceGroup {
	for i := range j.ReduceGroups {
		if j.ReduceGroups[i].Tag == tag {
			return &j.ReduceGroups[i]
		}
	}
	return nil
}

// BranchesForTag returns the map branches feeding a tag.
func (j *Job) BranchesForTag(tag int) []*MapBranch {
	var out []*MapBranch
	for i := range j.MapBranches {
		if j.MapBranches[i].Tag == tag {
			out = append(out, &j.MapBranches[i])
		}
	}
	return out
}

// Clone deep-copies the job.
func (j *Job) Clone() *Job {
	out := &Job{
		ID:               j.ID,
		Config:           j.Config,
		Profile:          j.Profile.Clone(),
		AlignMapToInput:  j.AlignMapToInput,
		ReduceCountGroup: j.ReduceCountGroup,
		PinnedReducers:   j.PinnedReducers,
		Origin:           cloneStrings(j.Origin),
	}
	out.MapBranches = make([]MapBranch, len(j.MapBranches))
	for i, b := range j.MapBranches {
		out.MapBranches[i] = b.Clone()
	}
	out.ReduceGroups = make([]ReduceGroup, len(j.ReduceGroups))
	for i, g := range j.ReduceGroups {
		out.ReduceGroups[i] = g.Clone()
	}
	return out
}

// Layout is the physical-design portion of a dataset annotation: how the
// dataset is partitioned, ordered, and compressed on the DFS (Section 2.1).
type Layout struct {
	// PartType is how the partitions were produced.
	PartType keyval.PartitionType
	// PartFields are the field names the data is partitioned on; nil means
	// unknown or unpartitioned.
	PartFields []string
	// SortFields are the per-partition sort field names; nil means unknown
	// or unsorted.
	SortFields []string
	// SplitPoints are range boundaries for range-partitioned data.
	SplitPoints []keyval.Tuple
	// Compressed marks on-disk compression.
	Compressed bool
}

// Clone deep-copies the layout.
func (l Layout) Clone() Layout {
	out := l
	out.PartFields = cloneStrings(l.PartFields)
	out.SortFields = cloneStrings(l.SortFields)
	if l.SplitPoints != nil {
		out.SplitPoints = make([]keyval.Tuple, len(l.SplitPoints))
		for i, sp := range l.SplitPoints {
			out.SplitPoints[i] = keyval.Clone(sp)
		}
	}
	return out
}

func (l Layout) String() string {
	var parts []string
	if len(l.PartFields) > 0 {
		parts = append(parts, fmt.Sprintf("%s(%s)", l.PartType, strings.Join(l.PartFields, ",")))
	}
	if len(l.SortFields) > 0 {
		parts = append(parts, "sort("+strings.Join(l.SortFields, ",")+")")
	}
	if l.Compressed {
		parts = append(parts, "compressed")
	}
	if len(parts) == 0 {
		return "unspecified"
	}
	return strings.Join(parts, " ")
}

// Dataset is one dataset vertex: D = <d, l, a> — the DFS descriptor (ID),
// layout, and dataset annotations (schema names and size estimates).
type Dataset struct {
	// ID uniquely names the dataset within its workflow.
	ID string
	// Base marks workflow input datasets that exist before execution.
	Base bool
	// Layout is the known physical design; for intermediate datasets it is
	// derived from the producing job by the optimizer and the runtime.
	Layout Layout
	// KeyFields/ValueFields name the record fields (dataset schema
	// annotation); nil means unknown.
	KeyFields, ValueFields []string
	// EstRecords/EstBytes are size annotations used for costing, in
	// materialized records and bytes (the simulator's virtual scale is
	// applied at costing time). Zero means unknown.
	EstRecords float64
	EstBytes   float64
	// EstPartitions is the known/estimated partition count (file count) of
	// the dataset on the DFS; zero means unknown.
	EstPartitions int
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := *d
	out.Layout = d.Layout.Clone()
	out.KeyFields = cloneStrings(d.KeyFields)
	out.ValueFields = cloneStrings(d.ValueFields)
	return &out
}

// Workflow is the plan: the DAG G_W plus all annotations.
type Workflow struct {
	// Name labels the workflow for reporting.
	Name string
	// Jobs and Datasets are the DAG vertices. Edges are implied by job
	// branch inputs and group outputs.
	Jobs     []*Job
	Datasets []*Dataset
}

// Job returns the job with the given ID, or nil.
func (w *Workflow) Job(id string) *Job {
	for _, j := range w.Jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// Dataset returns the dataset with the given ID, or nil.
func (w *Workflow) Dataset(id string) *Dataset {
	for _, d := range w.Datasets {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Producer returns the job writing the dataset, or nil for base datasets.
func (w *Workflow) Producer(dsID string) *Job {
	for _, j := range w.Jobs {
		for _, out := range j.Outputs() {
			if out == dsID {
				return j
			}
		}
	}
	return nil
}

// Consumers returns the jobs reading the dataset, in workflow order.
func (w *Workflow) Consumers(dsID string) []*Job {
	var out []*Job
	for _, j := range w.Jobs {
		for _, in := range j.Inputs() {
			if in == dsID {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// JobProducers returns the distinct jobs whose outputs the given job reads.
func (w *Workflow) JobProducers(j *Job) []*Job {
	var out []*Job
	seen := map[string]bool{}
	for _, in := range j.Inputs() {
		p := w.Producer(in)
		if p != nil && !seen[p.ID] {
			seen[p.ID] = true
			out = append(out, p)
		}
	}
	return out
}

// JobConsumers returns the distinct jobs that read the given job's outputs.
func (w *Workflow) JobConsumers(j *Job) []*Job {
	var out []*Job
	seen := map[string]bool{}
	for _, ds := range j.Outputs() {
		for _, c := range w.Consumers(ds) {
			if !seen[c.ID] {
				seen[c.ID] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// SinkDatasets returns datasets no job consumes (the workflow results),
// sorted by ID for determinism.
func (w *Workflow) SinkDatasets() []*Dataset {
	var out []*Dataset
	for _, d := range w.Datasets {
		if len(w.Consumers(d.ID)) == 0 && w.Producer(d.ID) != nil {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TopoSort returns the jobs in a topological order of the DAG, or an error
// if the graph has a cycle.
func (w *Workflow) TopoSort() ([]*Job, error) {
	indeg := make(map[string]int, len(w.Jobs))
	for _, j := range w.Jobs {
		indeg[j.ID] = len(w.JobProducers(j))
	}
	var ready []*Job
	for _, j := range w.Jobs {
		if indeg[j.ID] == 0 {
			ready = append(ready, j)
		}
	}
	var order []*Job
	for len(ready) > 0 {
		j := ready[0]
		ready = ready[1:]
		order = append(order, j)
		for _, c := range w.JobConsumers(j) {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(w.Jobs) {
		return nil, fmt.Errorf("wf: workflow %q has a cycle", w.Name)
	}
	return order, nil
}

// Validate checks structural invariants: unique IDs, resolvable dataset
// references, base datasets without producers, exactly one producer per
// intermediate dataset, tags consistent between branches and groups, valid
// configs and partition specs, and an acyclic graph.
func (w *Workflow) Validate() error {
	jobIDs := map[string]bool{}
	for _, j := range w.Jobs {
		if jobIDs[j.ID] {
			return fmt.Errorf("wf: duplicate job ID %q", j.ID)
		}
		jobIDs[j.ID] = true
	}
	dsIDs := map[string]bool{}
	for _, d := range w.Datasets {
		if dsIDs[d.ID] {
			return fmt.Errorf("wf: duplicate dataset ID %q", d.ID)
		}
		dsIDs[d.ID] = true
	}
	producers := map[string]string{}
	for _, j := range w.Jobs {
		if len(j.MapBranches) == 0 {
			return fmt.Errorf("wf: job %q has no map branches", j.ID)
		}
		if err := j.Config.Validate(); err != nil {
			return fmt.Errorf("wf: job %q: %w", j.ID, err)
		}
		groupTags := map[int]bool{}
		for _, g := range j.ReduceGroups {
			if groupTags[g.Tag] {
				return fmt.Errorf("wf: job %q has duplicate group tag %d", j.ID, g.Tag)
			}
			groupTags[g.Tag] = true
			if !dsIDs[g.Output] {
				return fmt.Errorf("wf: job %q writes unknown dataset %q", j.ID, g.Output)
			}
			if prev, ok := producers[g.Output]; ok && prev != j.ID {
				return fmt.Errorf("wf: dataset %q has two producers: %q and %q", g.Output, prev, j.ID)
			}
			producers[g.Output] = j.ID
			if err := g.Part.Validate(); err != nil {
				return fmt.Errorf("wf: job %q group %d: %w", j.ID, g.Tag, err)
			}
			for _, s := range g.Stages {
				if err := validateStage(s); err != nil {
					return fmt.Errorf("wf: job %q group %d: %w", j.ID, g.Tag, err)
				}
			}
		}
		for _, b := range j.MapBranches {
			if !dsIDs[b.Input] {
				return fmt.Errorf("wf: job %q reads unknown dataset %q", j.ID, b.Input)
			}
			if !groupTags[b.Tag] {
				return fmt.Errorf("wf: job %q branch tag %d has no reduce group", j.ID, b.Tag)
			}
			for _, s := range b.Stages {
				if err := validateStage(s); err != nil {
					return fmt.Errorf("wf: job %q branch %d: %w", j.ID, b.Tag, err)
				}
			}
		}
	}
	for _, d := range w.Datasets {
		prod := producers[d.ID]
		if d.Base && prod != "" {
			return fmt.Errorf("wf: base dataset %q has producer %q", d.ID, prod)
		}
		if !d.Base && prod == "" {
			return fmt.Errorf("wf: intermediate dataset %q has no producer", d.ID)
		}
	}
	if _, err := w.TopoSort(); err != nil {
		return err
	}
	return nil
}

func validateStage(s Stage) error {
	switch s.Kind {
	case MapKind:
		if s.Map == nil {
			return fmt.Errorf("map stage %q has nil function", s.Name)
		}
	case ReduceKind:
		if s.Reduce == nil {
			return fmt.Errorf("reduce stage %q has nil function", s.Name)
		}
	default:
		return fmt.Errorf("stage %q has unknown kind %d", s.Name, int(s.Kind))
	}
	if s.CPUPerRecord < 0 {
		return fmt.Errorf("stage %q has negative CPU cost", s.Name)
	}
	return nil
}

// Clone deep-copies the workflow.
func (w *Workflow) Clone() *Workflow {
	out := &Workflow{Name: w.Name}
	out.Jobs = make([]*Job, len(w.Jobs))
	for i, j := range w.Jobs {
		out.Jobs[i] = j.Clone()
	}
	out.Datasets = make([]*Dataset, len(w.Datasets))
	for i, d := range w.Datasets {
		out.Datasets[i] = d.Clone()
	}
	return out
}

// RemoveJob deletes a job by ID. Dangling datasets are left in place; use
// GC to drop unreferenced intermediates.
func (w *Workflow) RemoveJob(id string) {
	for i, j := range w.Jobs {
		if j.ID == id {
			w.Jobs = append(w.Jobs[:i], w.Jobs[i+1:]...)
			return
		}
	}
}

// GC removes intermediate datasets that no longer have a producer or a
// consumer (e.g. after inter-job packing eliminates them).
func (w *Workflow) GC() {
	var kept []*Dataset
	for _, d := range w.Datasets {
		if d.Base || w.Producer(d.ID) != nil || len(w.Consumers(d.ID)) > 0 {
			kept = append(kept, d)
		}
	}
	w.Datasets = kept
}

// Summary renders a one-line-per-job description for logs and examples.
func (w *Workflow) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s: %d jobs, %d datasets\n", w.Name, len(w.Jobs), len(w.Datasets))
	order, err := w.TopoSort()
	if err != nil {
		order = w.Jobs
	}
	for _, j := range order {
		kind := "map+reduce"
		if j.MapOnly() {
			kind = "map-only"
		}
		fmt.Fprintf(&b, "  %-8s %-10s in=%v out=%v branches=%d groups=%d origin=%v\n",
			j.ID, kind, j.Inputs(), j.Outputs(), len(j.MapBranches), len(j.ReduceGroups), j.Origin)
	}
	return b.String()
}
