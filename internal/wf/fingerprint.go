package wf

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// Fingerprint is a 128-bit canonical digest of a workflow: everything a
// What-if estimate depends on — DAG structure, per-job programs and
// configurations, partition specs, profile annotations, dataset layouts and
// size annotations — hashed deterministically. Two workflows with equal
// fingerprints are cost-equivalent: the estimator returns the same answer
// for both (job-for-job by position), so a fingerprint is a sound memo key
// for What-if results.
//
// The fingerprint is insensitive to identity that carries no cost
// information: the workflow Name, job IDs (packing merges synthesize fresh
// IDs for identical structures), Origin bookkeeping, and the iteration
// order of annotation maps. It is deliberately sensitive to slice orderings
// that feed the estimator's arithmetic (job order drives topological
// tie-breaking and slot-pool interleaving; branch order drives
// floating-point summation), so a cached estimate is bit-identical to a
// fresh one.
type Fingerprint [2]uint64

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f[0], f[1])
}

// FingerprintWorkflow digests a workflow with a throwaway Hasher. Callers
// fingerprinting many related plans (an optimizer's configuration search)
// should hold a Hasher to reuse its profile memoization.
func FingerprintWorkflow(w *Workflow) Fingerprint {
	return NewHasher().Workflow(w)
}

// Hasher computes workflow fingerprints, memoizing the expensive, stable
// parts by pointer: a configuration search re-fingerprints the same cloned
// plan hundreds of times while mutating only Config fields, so profile
// digests (key samples are the bulk of the bytes), per-job program digests
// (branches and groups), and dataset digests are computed once per pointer.
// Configurations, job flags, and tie labels are re-hashed on every call and
// may change freely between calls.
//
// A Hasher is not safe for concurrent use, and its memoization assumes
// profiles, branches, groups, and datasets are not mutated in place under a
// pointer it has already seen — the contract everywhere in this repository:
// the profiler builds fresh annotations, transformations Clone() the plan
// before editing, and the configuration search mutates only Config.
type Hasher struct {
	profMemo map[*JobProfile]Fingerprint
	jobMemo  map[*Job]Fingerprint
	dsMemo   map[*Dataset]Fingerprint
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher {
	return &Hasher{
		profMemo: make(map[*JobProfile]Fingerprint),
		jobMemo:  make(map[*Job]Fingerprint),
		dsMemo:   make(map[*Dataset]Fingerprint),
	}
}

// Workflow digests w. The workflow is read, never modified.
func (h *Hasher) Workflow(w *Workflow) Fingerprint {
	fw := newFPWriter()

	// Datasets, sorted by ID: estimation reads them through maps keyed by
	// ID, so slice order is presentation-only.
	fw.str("wf-fp-v1")
	ids := make([]string, 0, len(w.Datasets))
	byID := make(map[string]*Dataset, len(w.Datasets))
	for _, d := range w.Datasets {
		ids = append(ids, d.ID)
		byID[d.ID] = d
	}
	sort.Strings(ids)
	fw.num(len(ids))
	for _, id := range ids {
		fp := h.dataset(byID[id])
		fw.u64(fp[0])
		fw.u64(fp[1])
	}

	// Jobs in slice order, with IDs and Origin elided. ReduceCountGroup
	// labels are arbitrary strings minted by packing; canonicalize each to
	// the ordinal of its first appearance so renaming a tie label (or the
	// jobs it points at) cannot change the digest while the tie structure
	// itself still does.
	groupOrdinal := map[string]int{}
	for _, j := range w.Jobs {
		if j.ReduceCountGroup != "" {
			if _, ok := groupOrdinal[j.ReduceCountGroup]; !ok {
				groupOrdinal[j.ReduceCountGroup] = len(groupOrdinal)
			}
		}
	}
	fw.num(len(w.Jobs))
	for _, j := range w.Jobs {
		fw.bool(j.AlignMapToInput)
		fw.bool(j.PinnedReducers)
		if j.ReduceCountGroup == "" {
			fw.num(-1)
		} else {
			fw.num(groupOrdinal[j.ReduceCountGroup])
		}
		fw.config(j.Config)
		fp := h.program(j)
		fw.u64(fp[0])
		fw.u64(fp[1])
		fp = h.profile(j.Profile)
		fw.u64(fp[0])
		fw.u64(fp[1])
	}
	return fw.sum()
}

// dataset digests one dataset, memoized by pointer.
func (h *Hasher) dataset(d *Dataset) Fingerprint {
	if fp, ok := h.dsMemo[d]; ok {
		return fp
	}
	fw := newFPWriter()
	fw.str("ds")
	fw.str(d.ID)
	fw.bool(d.Base)
	fw.layout(d.Layout)
	fw.strs(d.KeyFields)
	fw.strs(d.ValueFields)
	fw.f64(d.EstRecords)
	fw.f64(d.EstBytes)
	fw.num(d.EstPartitions)
	fp := fw.sum()
	h.dsMemo[d] = fp
	return fp
}

// program digests a job's branches and groups — the parts the search never
// mutates in place — memoized by job pointer. Config, flags, and tie labels
// live outside the memo so the caller re-hashes them every time.
func (h *Hasher) program(j *Job) Fingerprint {
	if fp, ok := h.jobMemo[j]; ok {
		return fp
	}
	fw := newFPWriter()
	fw.str("job")
	fw.num(len(j.MapBranches))
	for i := range j.MapBranches {
		fw.branch(&j.MapBranches[i])
	}
	fw.num(len(j.ReduceGroups))
	for i := range j.ReduceGroups {
		fw.group(&j.ReduceGroups[i])
	}
	fp := fw.sum()
	h.jobMemo[j] = fp
	return fp
}

// profile digests a job profile, memoized by pointer.
func (h *Hasher) profile(p *JobProfile) Fingerprint {
	if p == nil {
		return Fingerprint{}
	}
	if fp, ok := h.profMemo[p]; ok {
		return fp
	}
	fw := newFPWriter()
	fw.str("prof")
	mapTags := sortedIntKeys(p.MapSide)
	fw.num(len(mapTags))
	for _, tag := range mapTags {
		fw.num(tag)
		fw.pipeline(p.MapSide[tag])
	}
	inputKeys := make([]string, 0, len(p.MapSideByInput))
	for k := range p.MapSideByInput {
		inputKeys = append(inputKeys, k)
	}
	sort.Strings(inputKeys)
	fw.num(len(inputKeys))
	for _, k := range inputKeys {
		fw.str(k)
		fw.pipeline(p.MapSideByInput[k])
	}
	redTags := sortedIntKeys(p.ReduceSide)
	fw.num(len(redTags))
	for _, tag := range redTags {
		fw.num(tag)
		fw.pipeline(p.ReduceSide[tag])
	}
	fp := fw.sum()
	h.profMemo[p] = fp
	return fp
}

func sortedIntKeys(m map[int]*PipelineProfile) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// fpWriter serializes workflow components into an FNV-1a 128 stream with
// unambiguous framing (lengths and type tags), so distinct structures never
// produce the same byte stream.
type fpWriter struct {
	h   hash.Hash
	buf [9]byte
}

func newFPWriter() *fpWriter {
	return &fpWriter{h: fnv.New128a()}
}

func (fw *fpWriter) sum() Fingerprint {
	var out Fingerprint
	s := fw.h.Sum(nil)
	out[0] = binary.BigEndian.Uint64(s[:8])
	out[1] = binary.BigEndian.Uint64(s[8:16])
	return out
}

func (fw *fpWriter) u64(v uint64) {
	fw.buf[0] = 'u'
	binary.BigEndian.PutUint64(fw.buf[1:], v)
	fw.h.Write(fw.buf[:9])
}

func (fw *fpWriter) num(v int) { fw.u64(uint64(int64(v))) }

func (fw *fpWriter) f64(v float64) {
	fw.buf[0] = 'f'
	binary.BigEndian.PutUint64(fw.buf[1:], math.Float64bits(v))
	fw.h.Write(fw.buf[:9])
}

func (fw *fpWriter) bool(v bool) {
	fw.buf[0] = 'b'
	fw.buf[1] = 0
	if v {
		fw.buf[1] = 1
	}
	fw.h.Write(fw.buf[:2])
}

func (fw *fpWriter) str(s string) {
	fw.num(len(s))
	fw.h.Write([]byte(s))
}

func (fw *fpWriter) strs(ss []string) {
	if ss == nil {
		fw.num(-1)
		return
	}
	fw.num(len(ss))
	for _, s := range ss {
		fw.str(s)
	}
}

func (fw *fpWriter) ints(vs []int) {
	if vs == nil {
		fw.num(-1)
		return
	}
	fw.num(len(vs))
	for _, v := range vs {
		fw.num(v)
	}
}

func (fw *fpWriter) tuple(t keyval.Tuple) {
	// keyval.Hash is itself framed (type tags, string terminators), so one
	// projection hash per tuple keeps streams unambiguous and cheap.
	fw.num(len(t))
	fw.u64(keyval.Hash(t, nil))
}

func (fw *fpWriter) tuples(ts []keyval.Tuple) {
	fw.num(len(ts))
	for _, t := range ts {
		fw.tuple(t)
	}
}

func (fw *fpWriter) pipeline(p *PipelineProfile) {
	if p == nil {
		fw.bool(false)
		return
	}
	fw.bool(true)
	fw.f64(p.Selectivity)
	fw.f64(p.CPUPerRecord)
	fw.f64(p.OutBytesPerRecord)
	fw.f64(p.InBytesPerRecord)
	fw.f64(p.GroupsPerRecord)
	fw.f64(p.GroupsPerMapRecord)
	fw.f64(p.CombineReduction)
	fw.tuples(p.KeySample)
}

func (fw *fpWriter) layout(l Layout) {
	fw.num(int(l.PartType))
	fw.strs(l.PartFields)
	fw.strs(l.SortFields)
	fw.tuples(l.SplitPoints)
	fw.bool(l.Compressed)
}

func (fw *fpWriter) config(c Config) {
	fw.num(c.NumReduceTasks)
	fw.num(c.SplitSizeMB)
	fw.num(c.SortBufferMB)
	fw.num(c.IOSortFactor)
	fw.bool(c.UseCombiner)
	fw.bool(c.CompressMapOutput)
	fw.bool(c.CompressOutput)
}

func (fw *fpWriter) stage(s *Stage) {
	fw.str(s.Name)
	fw.num(int(s.Kind))
	fw.ints(s.GroupFields)
	fw.f64(s.CPUPerRecord)
}

func (fw *fpWriter) stages(ss []Stage) {
	fw.num(len(ss))
	for i := range ss {
		fw.stage(&ss[i])
	}
}

func (fw *fpWriter) branch(b *MapBranch) {
	fw.num(b.Tag)
	fw.str(b.Input)
	fw.stages(b.Stages)
	if b.Filter == nil {
		fw.bool(false)
	} else {
		fw.bool(true)
		fw.str(b.Filter.Field)
		fw.tuple(keyval.Tuple{b.Filter.Interval.Lo})
		fw.tuple(keyval.Tuple{b.Filter.Interval.Hi})
	}
	fw.strs(b.KeyIn)
	fw.strs(b.ValIn)
	fw.strs(b.KeyOut)
	fw.strs(b.ValOut)
}

func (fw *fpWriter) group(g *ReduceGroup) {
	fw.num(g.Tag)
	fw.str(g.Output)
	fw.bool(g.RunsMapSide)
	fw.stages(g.Stages)
	if g.Combiner == nil {
		fw.bool(false)
	} else {
		fw.bool(true)
		fw.stage(g.Combiner)
	}
	fw.num(int(g.Part.Type))
	fw.ints(g.Part.KeyFields)
	fw.ints(g.Part.SortFields)
	fw.tuples(g.Part.SplitPoints)
	fw.num(len(g.Constraints))
	for i := range g.Constraints {
		c := &g.Constraints[i]
		fw.strs(c.CoGroup)
		fw.strs(c.SortPrefix)
		if c.RequireType == nil {
			fw.num(-1)
		} else {
			fw.num(int(*c.RequireType))
		}
	}
	fw.strs(g.KeyIn)
	fw.strs(g.ValIn)
	fw.strs(g.KeyOut)
	fw.strs(g.ValOut)
}
