package wf_test

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

func subFP(t *testing.T, w *wf.Workflow, dsID string) wf.Fingerprint {
	t.Helper()
	fp, ok := wf.SubplanFingerprint(w, dsID)
	if !ok {
		t.Fatalf("no sub-fingerprint for %s", dsID)
	}
	return fp
}

// TestSubplanFingerprintStability: deterministic, root-sensitive, and
// shared-Hasher results match the throwaway path.
func TestSubplanFingerprintStability(t *testing.T) {
	w := fpWorkflow()
	mid, out := subFP(t, w, "mid"), subFP(t, w, "out")
	if mid == out {
		t.Fatal("distinct roots share a sub-fingerprint")
	}
	if again := subFP(t, w, "out"); again != out {
		t.Fatalf("unstable: %s vs %s", again, out)
	}
	h := wf.NewHasher()
	if got, ok := h.Subplan(w, "out"); !ok || got != out {
		t.Fatalf("shared-Hasher Subplan diverged: %s vs %s", got, out)
	}
	if _, ok := wf.SubplanFingerprint(w, "nope"); ok {
		t.Fatal("unknown dataset fingerprinted")
	}
	// Base datasets fingerprint too (content-addressed identity), and
	// differ from any produced dataset's digest.
	if b := subFP(t, w, "base"); b == mid || b == out {
		t.Fatal("base digest collides with a produced dataset's")
	}
}

// TestSubplanNameInsensitivity: workflow name, job IDs, and *intermediate*
// dataset IDs carry no content, so renaming them must not move the rooted
// fingerprint — that is what lets two differently-named workflows collide
// in the reuse catalog.
func TestSubplanNameInsensitivity(t *testing.T) {
	w := fpWorkflow()
	want := subFP(t, w, "out")

	r := w.Clone()
	r.Name = "renamed"
	for i, j := range r.Jobs {
		j.ID = string(rune('a' + i))
	}
	// Rename the intermediate dataset end to end.
	r.Dataset("mid").ID = "intermediate"
	r.Jobs[0].ReduceGroups[0].Output = "intermediate"
	r.Jobs[1].MapBranches[0].Input = "intermediate"
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := subFP(t, r, "out"); got != want {
		t.Fatalf("renames moved the sub-fingerprint: %s -> %s", want, got)
	}

	// Renaming the root itself is equally free...
	r.Dataset("out").ID = "result"
	r.Jobs[1].ReduceGroups[0].Output = "result"
	if got := subFP(t, r, "result"); got != want {
		t.Fatalf("root rename moved the sub-fingerprint: %s -> %s", want, got)
	}

	// ...but renaming a *base* dataset is a different input location, and
	// must move it.
	b := w.Clone()
	b.Dataset("base").ID = "base2"
	b.Jobs[0].MapBranches[0].Input = "base2"
	if got := subFP(t, b, "out"); got == want {
		t.Fatal("base dataset rename did not move the sub-fingerprint")
	}
}

// TestSubplanContentSensitivity: anything that changes what records the
// sub-DAG produces — base data sizes, job profiles, configurations, stage
// programs — must move the fingerprint.
func TestSubplanContentSensitivity(t *testing.T) {
	w := fpWorkflow()
	want := subFP(t, w, "out")

	mutations := []struct {
		name string
		mut  func(*wf.Workflow)
	}{
		{"base size", func(m *wf.Workflow) { m.Dataset("base").EstRecords = 2000 }},
		{"upstream profile", func(m *wf.Workflow) { m.Jobs[0].Profile.MapProfile(m.Jobs[0].MapBranches[0]).Selectivity = 0.1 }},
		{"upstream config", func(m *wf.Workflow) { m.Jobs[0].Config.NumReduceTasks += 7 }},
		{"filter interval", func(m *wf.Workflow) { m.Jobs[0].MapBranches[0].Filter.Interval.Hi = int64(51) }},
		{"partitioning", func(m *wf.Workflow) { m.Jobs[1].ReduceGroups[0].Part.KeyFields = nil }},
	}
	for _, tc := range mutations {
		m := w.Clone()
		tc.mut(m)
		if got := subFP(t, m, "out"); got == want {
			t.Errorf("%s change did not move the sub-fingerprint", tc.name)
		}
	}

	// A change strictly downstream of the root must NOT move the root's
	// fingerprint: j2 does not produce "mid".
	m := w.Clone()
	m.Jobs[1].Config.NumReduceTasks += 7
	if got := subFP(t, m, "mid"); got != subFP(t, w, "mid") {
		t.Error("downstream change moved an upstream sub-fingerprint")
	}
}

func TestProducingJobs(t *testing.T) {
	w := fpWorkflow()
	if jobs := wf.ProducingJobs(w, "out"); len(jobs) != 2 || jobs[0].ID != "j1" || jobs[1].ID != "j2" {
		t.Errorf("closure of out: got %d jobs", len(jobs))
	}
	if jobs := wf.ProducingJobs(w, "mid"); len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Errorf("closure of mid wrong")
	}
	if jobs := wf.ProducingJobs(w, "base"); jobs != nil {
		t.Errorf("base closure = %v, want nil", jobs)
	}
	if jobs := wf.ProducingJobs(w, "nope"); jobs != nil {
		t.Errorf("unknown closure = %v, want nil", jobs)
	}
}
