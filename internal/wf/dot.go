package wf

import (
	"fmt"
	"strings"
)

// DOT renders the workflow DAG in Graphviz format: jobs as boxes, datasets
// as ellipses, with layout and packing provenance in the labels. Used by
// the CLI and the examples to visualize plans before and after
// optimization.
func (w *Workflow) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", w.Name)
	for _, d := range w.Datasets {
		shape := "ellipse"
		style := ""
		if d.Base {
			style = ` style="filled" fillcolor="lightgray"`
		}
		label := d.ID
		if l := d.Layout.String(); l != "unspecified" {
			label += "\\n" + l
		}
		fmt.Fprintf(&b, "  %q [shape=%s label=%q%s];\n", "ds_"+d.ID, shape, label, style)
	}
	for _, j := range w.Jobs {
		kind := "map+reduce"
		if j.MapOnly() {
			kind = "map-only"
		}
		label := fmt.Sprintf("%s\\n%s", j.ID, kind)
		if len(j.Origin) > 1 {
			label += "\\npacked: " + strings.Join(j.Origin, "+")
		}
		fmt.Fprintf(&b, "  %q [shape=box style=\"rounded\" label=%q];\n", "job_"+j.ID, label)
		for _, in := range j.Inputs() {
			fmt.Fprintf(&b, "  %q -> %q;\n", "ds_"+in, "job_"+j.ID)
		}
		for _, out := range j.Outputs() {
			fmt.Fprintf(&b, "  %q -> %q;\n", "job_"+j.ID, "ds_"+out)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
