// Package wf defines Stubby's plan representation: an annotated workflow of
// MapReduce jobs and datasets (Section 2 of the paper).
//
// A plan is a DAG whose vertices are Jobs and Datasets. Each Job carries a
// MapReduce program expressed as pipelines of stages, a configuration, and
// annotations (schema, filter, profile). Each Dataset carries a physical
// layout and dataset annotations. Transformations (package trans) rewrite
// this representation; the simulator (package mrsim) executes it.
package wf

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// Emit is the output callback passed to map and reduce functions.
type Emit func(key, value keyval.Tuple)

// MapFn is the map function signature: map(K1,V1) -> list(K2,V2).
type MapFn func(key, value keyval.Tuple, emit Emit)

// ReduceFn is the reduce/combine function signature:
// reduce(K2, list(V2)) -> list(K3,V3).
type ReduceFn func(key keyval.Tuple, values []keyval.Tuple, emit Emit)

// StageKind distinguishes per-record (map) stages from grouped (reduce)
// stages inside a pipeline.
type StageKind int

const (
	// MapKind stages are invoked once per input record.
	MapKind StageKind = iota
	// ReduceKind stages are invoked once per group of consecutive records
	// that agree on the stage's GroupFields. Correctness requires the
	// incoming stream to be clustered on those fields, which is exactly
	// what the vertical packing postconditions guarantee.
	ReduceKind
)

func (k StageKind) String() string {
	if k == MapKind {
		return "map"
	}
	return "reduce"
}

// Stage is one function in a pipeline. After vertical packing a single
// map or reduce task executes several stages back to back ("wrapper
// classes" in the paper's implementation section).
type Stage struct {
	// Name identifies the original function (e.g. "M5", "R7").
	Name string
	// Kind selects which of Map/Reduce is set.
	Kind StageKind
	// Map is the per-record function for MapKind stages.
	Map MapFn
	// Reduce is the per-group function for ReduceKind stages.
	Reduce ReduceFn
	// GroupFields are indices into the stage's incoming key tuple that
	// define its grouping (only for ReduceKind). Nil groups on the whole
	// key.
	GroupFields []int
	// CPUPerRecord is the ground-truth compute cost in seconds consumed
	// per input record. The simulator charges it when executing; the
	// profiler observes it through execution.
	CPUPerRecord float64
}

// MapStage builds a per-record stage.
func MapStage(name string, fn MapFn, cpuPerRecord float64) Stage {
	return Stage{Name: name, Kind: MapKind, Map: fn, CPUPerRecord: cpuPerRecord}
}

// ReduceStage builds a grouped stage. groupFields nil groups on the full key.
func ReduceStage(name string, fn ReduceFn, groupFields []int, cpuPerRecord float64) Stage {
	return Stage{Name: name, Kind: ReduceKind, Reduce: fn, GroupFields: groupFields, CPUPerRecord: cpuPerRecord}
}

// Clone copies a stage. Function values are immutable and shared. Nil and
// empty GroupFields are distinct (whole-key vs per-stream grouping), so the
// copy preserves nil-ness exactly.
func (s Stage) Clone() Stage {
	out := s
	if s.GroupFields != nil {
		out.GroupFields = make([]int, len(s.GroupFields))
		copy(out.GroupFields, s.GroupFields)
	}
	return out
}

// Filter is a filter annotation: the branch's map pipeline only passes
// records whose named input field lies in the interval (Section 2.2).
type Filter struct {
	// Field is the input field name the predicate applies to.
	Field string
	// Interval is the half-open accepted range.
	Interval keyval.Interval
}

// Clone copies the filter annotation.
func (f *Filter) Clone() *Filter {
	if f == nil {
		return nil
	}
	out := *f
	return &out
}

func (f *Filter) String() string {
	if f == nil {
		return "none"
	}
	return fmt.Sprintf("%s in %s", f.Field, f.Interval)
}

// MapBranch is the map-side pipeline of one packed sub-program. An
// untransformed job has exactly one branch; horizontal packing introduces
// several (one per original job), and a multi-input job (e.g. a repartition
// join) has one branch per input dataset sharing a Tag.
type MapBranch struct {
	// Tag routes this branch's output to the ReduceGroup with the same tag.
	Tag int
	// Input is the dataset ID this branch reads.
	Input string
	// Stages is the pipeline executed per input record in map tasks. It
	// may contain ReduceKind stages after intra-job vertical packing.
	Stages []Stage
	// Filter is the branch's filter annotation (nil if none/unknown).
	Filter *Filter
	// KeyIn/ValIn name the fields of the branch input (K1/V1 schema
	// annotation); nil means unknown.
	KeyIn, ValIn []string
	// KeyOut/ValOut name the fields of the branch's map output (K2/V2);
	// nil means unknown.
	KeyOut, ValOut []string
}

// Clone deep-copies the branch.
func (b MapBranch) Clone() MapBranch {
	out := b
	out.Stages = cloneStages(b.Stages)
	out.Filter = b.Filter.Clone()
	out.KeyIn = cloneStrings(b.KeyIn)
	out.ValIn = cloneStrings(b.ValIn)
	out.KeyOut = cloneStrings(b.KeyOut)
	out.ValOut = cloneStrings(b.ValOut)
	return out
}

// PartitionConstraint records a condition imposed on a group's partition
// function by an earlier transformation or by the workflow generator; any
// later partition function transformation must keep satisfying it
// (Section 3.4: "the new partition function ... should satisfy all current
// conditions").
type PartitionConstraint struct {
	// CoGroup requires all records equal on these key field names to land
	// in the same partition.
	CoGroup []string
	// SortPrefix requires the per-partition sort order to start with these
	// field names, in order.
	SortPrefix []string
	// RequireType pins the partitioning type if non-nil (e.g. a sort job
	// needs range partitioning).
	RequireType *keyval.PartitionType
	// Reason documents which transformation imposed the constraint.
	Reason string
}

// Clone copies the constraint.
func (c PartitionConstraint) Clone() PartitionConstraint {
	out := c
	out.CoGroup = cloneStrings(c.CoGroup)
	out.SortPrefix = cloneStrings(c.SortPrefix)
	if c.RequireType != nil {
		t := *c.RequireType
		out.RequireType = &t
	}
	return out
}

// ReduceGroup is the reduce-side pipeline of one packed sub-program plus
// the partition function feeding it. A group with no stages is map-only:
// its branch's map output is written directly to Output.
type ReduceGroup struct {
	// Tag matches MapBranch.Tag.
	Tag int
	// Stages is the pipeline executed in reduce tasks. It may interleave
	// MapKind and ReduceKind stages after inter-job vertical packing
	// (e.g. [R5, M7, R7] in Figure 4).
	Stages []Stage
	// RunsMapSide marks a group whose Stages execute inside map tasks,
	// pipelined after the branch pipelines on the (merged) input stream —
	// the result of intra-job vertical packing: the reduce function moves
	// to the map side because the input layout already satisfies its
	// grouping requirement (Figure 4, plan P+). Such a group performs no
	// partition/sort/shuffle.
	RunsMapSide bool
	// Combiner optionally pre-aggregates map output for this tag.
	Combiner *Stage
	// Output is the dataset ID the group writes.
	Output string
	// Part is the partition function for this tag's map output.
	Part keyval.PartitionSpec
	// Constraints restrict future changes to Part.
	Constraints []PartitionConstraint
	// KeyIn/ValIn name the reduce input fields (K2/V2); nil = unknown.
	KeyIn, ValIn []string
	// KeyOut/ValOut name the group's output fields (K3/V3); nil = unknown.
	KeyOut, ValOut []string
}

// MapOnly reports whether this group performs no shuffle: it either has no
// grouped pipeline at all or runs it map-side after vertical packing.
func (g ReduceGroup) MapOnly() bool { return len(g.Stages) == 0 || g.RunsMapSide }

// Clone deep-copies the group.
func (g ReduceGroup) Clone() ReduceGroup {
	out := g
	out.Stages = cloneStages(g.Stages)
	if g.Combiner != nil {
		c := g.Combiner.Clone()
		out.Combiner = &c
	}
	out.Part = g.Part.Clone()
	if g.Constraints != nil {
		out.Constraints = make([]PartitionConstraint, len(g.Constraints))
		for i, c := range g.Constraints {
			out.Constraints[i] = c.Clone()
		}
	}
	out.KeyIn = cloneStrings(g.KeyIn)
	out.ValIn = cloneStrings(g.ValIn)
	out.KeyOut = cloneStrings(g.KeyOut)
	out.ValOut = cloneStrings(g.ValOut)
	return out
}

func cloneStages(in []Stage) []Stage {
	if in == nil {
		return nil
	}
	out := make([]Stage, len(in))
	for i, s := range in {
		out[i] = s.Clone()
	}
	return out
}

// cloneStrings copies a string slice, preserving nil-ness exactly: nil
// schemas mean "unknown" while empty ones are known-empty, and clones must
// not blur that distinction (append([]string(nil), empty...) would).
func cloneStrings(in []string) []string {
	if in == nil {
		return nil
	}
	out := make([]string, len(in))
	copy(out, in)
	return out
}
