package wf

import "fmt"

// Compose merges independently developed workflows into one plan, stitching
// producer-consumer relationships by dataset ID — the composition style the
// paper attributes to tools like Oozie and Amazon EMR Job Flow (Section 1),
// where e.g. a hand-written cleaning workflow feeds a query-generated
// report workflow. A dataset that is a base input of one component but is
// produced by another component becomes an intermediate dataset of the
// composition, with the producer's schema annotations taking precedence.
//
// Job IDs must be unique across components; use Namespace first when
// composing workflows that reuse IDs. The result is validated.
func Compose(name string, parts ...*Workflow) (*Workflow, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("wf: Compose needs at least one workflow")
	}
	out := &Workflow{Name: name}
	seenJob := map[string]string{}
	producers := map[string]string{}
	datasets := map[string]*Dataset{}
	for _, p := range parts {
		for _, j := range p.Jobs {
			if prev, ok := seenJob[j.ID]; ok {
				return nil, fmt.Errorf("wf: Compose: job %q appears in both %q and %q; Namespace one of them", j.ID, prev, p.Name)
			}
			seenJob[j.ID] = p.Name
			out.Jobs = append(out.Jobs, j.Clone())
			for _, ds := range j.Outputs() {
				producers[ds] = j.ID
			}
		}
		for _, d := range p.Datasets {
			cur, ok := datasets[d.ID]
			if !ok {
				datasets[d.ID] = d.Clone()
				continue
			}
			merged, err := mergeDataset(cur, d)
			if err != nil {
				return nil, fmt.Errorf("wf: Compose: dataset %q: %w", d.ID, err)
			}
			datasets[d.ID] = merged
		}
	}
	// A dataset produced by any component is an intermediate of the whole.
	for id, d := range datasets {
		if producers[id] != "" {
			d.Base = false
		}
	}
	// Preserve a deterministic dataset order: first appearance across parts.
	seenDS := map[string]bool{}
	for _, p := range parts {
		for _, d := range p.Datasets {
			if !seenDS[d.ID] {
				seenDS[d.ID] = true
				out.Datasets = append(out.Datasets, datasets[d.ID])
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("wf: Compose: %w", err)
	}
	return out, nil
}

// mergeDataset reconciles two descriptors of the same dataset coming from
// different components. When exactly one side produces the dataset, that
// side is authoritative for schema and layout (the consumer's view of a
// base input yields to the producer's); unknown annotations are filled
// from the other side either way. When neither side is authoritative and
// both know a schema, the schemas must agree — otherwise the components do
// not describe the same data and composition would be unsound.
func mergeDataset(a, b *Dataset) (*Dataset, error) {
	if a.Base && !b.Base {
		a, b = b, a
	}
	authoritative := a.Base != b.Base // a produces what b consumes
	out := a.Clone()
	out.Base = a.Base && b.Base
	if !authoritative {
		if out.KeyFields != nil && b.KeyFields != nil && !FieldsEqual(out.KeyFields, b.KeyFields) {
			return nil, fmt.Errorf("key schemas disagree: %v vs %v", out.KeyFields, b.KeyFields)
		}
		if out.ValueFields != nil && b.ValueFields != nil && !FieldsEqual(out.ValueFields, b.ValueFields) {
			return nil, fmt.Errorf("value schemas disagree: %v vs %v", out.ValueFields, b.ValueFields)
		}
	}
	if out.KeyFields == nil {
		out.KeyFields = cloneStrings(b.KeyFields)
	}
	if out.ValueFields == nil {
		out.ValueFields = cloneStrings(b.ValueFields)
	}
	if len(out.Layout.PartFields) == 0 && len(out.Layout.SortFields) == 0 && !out.Layout.Compressed {
		out.Layout = b.Layout.Clone()
	}
	if out.EstRecords == 0 {
		out.EstRecords = b.EstRecords
	}
	if out.EstBytes == 0 {
		out.EstBytes = b.EstBytes
	}
	if out.EstPartitions == 0 {
		out.EstPartitions = b.EstPartitions
	}
	return out, nil
}

// Namespace returns a copy of the workflow with every job ID and every
// non-base dataset ID prefixed by "prefix/". Base dataset IDs are left
// alone: they name shared inputs on the DFS, which is exactly what
// composition stitches on.
func (w *Workflow) Namespace(prefix string) *Workflow {
	out := w.Clone()
	rename := map[string]string{}
	for _, d := range out.Datasets {
		if !d.Base {
			rename[d.ID] = prefix + "/" + d.ID
			d.ID = rename[d.ID]
		}
	}
	for _, j := range out.Jobs {
		j.ID = prefix + "/" + j.ID
		for i := range j.Origin {
			j.Origin[i] = prefix + "/" + j.Origin[i]
		}
		for i := range j.MapBranches {
			if n, ok := rename[j.MapBranches[i].Input]; ok {
				j.MapBranches[i].Input = n
			}
		}
		for i := range j.ReduceGroups {
			if n, ok := rename[j.ReduceGroups[i].Output]; ok {
				j.ReduceGroups[i].Output = n
			}
		}
		if j.ReduceCountGroup != "" {
			j.ReduceCountGroup = prefix + "/" + j.ReduceCountGroup
		}
	}
	return out
}
