package wf

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
)

func identityMap(key, value keyval.Tuple, emit Emit) { emit(key, value) }
func identityReduce(key keyval.Tuple, values []keyval.Tuple, emit Emit) {
	for _, v := range values {
		emit(key, v)
	}
}

// simpleJob builds a one-branch one-group job reading in and writing out.
func simpleJob(id, in, out string) *Job {
	return &Job{
		ID:     id,
		Config: DefaultConfig(),
		Origin: []string{id},
		MapBranches: []MapBranch{{
			Tag:    0,
			Input:  in,
			Stages: []Stage{MapStage("M_"+id, identityMap, 1e-6)},
		}},
		ReduceGroups: []ReduceGroup{{
			Tag:    0,
			Output: out,
			Stages: []Stage{ReduceStage("R_"+id, identityReduce, nil, 1e-6)},
		}},
	}
}

func ds(id string, base bool) *Dataset { return &Dataset{ID: id, Base: base} }

// chainWorkflow builds base -> J1 -> d1 -> J2 -> d2.
func chainWorkflow() *Workflow {
	return &Workflow{
		Name:     "chain",
		Jobs:     []*Job{simpleJob("J1", "base", "d1"), simpleJob("J2", "d1", "d2")},
		Datasets: []*Dataset{ds("base", true), ds("d1", false), ds("d2", false)},
	}
}

// diamondWorkflow builds the Figure 1 shape in miniature:
// base -> J1 -> d1 -> {J2, J3} (one-to-many), then J2,J3 -> J4 (many-to-one).
func diamondWorkflow() *Workflow {
	j4 := &Job{
		ID:     "J4",
		Config: DefaultConfig(),
		Origin: []string{"J4"},
		MapBranches: []MapBranch{
			{Tag: 0, Input: "d2", Stages: []Stage{MapStage("M4a", identityMap, 1e-6)}},
			{Tag: 0, Input: "d3", Stages: []Stage{MapStage("M4b", identityMap, 1e-6)}},
		},
		ReduceGroups: []ReduceGroup{{
			Tag: 0, Output: "d4",
			Stages: []Stage{ReduceStage("R4", identityReduce, nil, 1e-6)},
		}},
	}
	return &Workflow{
		Name: "diamond",
		Jobs: []*Job{
			simpleJob("J1", "base", "d1"),
			simpleJob("J2", "d1", "d2"),
			simpleJob("J3", "d1", "d3"),
			j4,
		},
		Datasets: []*Dataset{
			ds("base", true), ds("d1", false), ds("d2", false), ds("d3", false), ds("d4", false),
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	for _, w := range []*Workflow{chainWorkflow(), diamondWorkflow()} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(w *Workflow)
	}{
		{"duplicate job", func(w *Workflow) { w.Jobs = append(w.Jobs, simpleJob("J1", "base", "dX")) }},
		{"duplicate dataset", func(w *Workflow) { w.Datasets = append(w.Datasets, ds("d1", false)) }},
		{"unknown input", func(w *Workflow) { w.Jobs[0].MapBranches[0].Input = "nope" }},
		{"unknown output", func(w *Workflow) { w.Jobs[0].ReduceGroups[0].Output = "nope" }},
		{"base with producer", func(w *Workflow) { w.Dataset("d1").Base = true }},
		{"orphan intermediate", func(w *Workflow) { w.Datasets = append(w.Datasets, ds("dz", false)) }},
		{"two producers", func(w *Workflow) { w.Jobs[1].ReduceGroups[0].Output = "d1"; w.Datasets = w.Datasets[:2] }},
		{"bad config", func(w *Workflow) { w.Jobs[0].Config.NumReduceTasks = 0 }},
		{"branch without group", func(w *Workflow) { w.Jobs[0].MapBranches[0].Tag = 7 }},
		{"nil map fn", func(w *Workflow) { w.Jobs[0].MapBranches[0].Stages[0].Map = nil }},
		{"nil reduce fn", func(w *Workflow) { w.Jobs[0].ReduceGroups[0].Stages[0].Reduce = nil }},
		{"negative cpu", func(w *Workflow) { w.Jobs[0].MapBranches[0].Stages[0].CPUPerRecord = -1 }},
		{"no branches", func(w *Workflow) { w.Jobs[0].MapBranches = nil }},
		{"cycle", func(w *Workflow) {
			w.Jobs[0].MapBranches[0].Input = "d2" // J1 reads J2's output
		}},
	}
	for _, c := range cases {
		w := chainWorkflow()
		c.mut(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestTopoSort(t *testing.T) {
	w := diamondWorkflow()
	order, err := w.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, j := range order {
		pos[j.ID] = i
	}
	if !(pos["J1"] < pos["J2"] && pos["J1"] < pos["J3"] && pos["J2"] < pos["J4"] && pos["J3"] < pos["J4"]) {
		t.Errorf("invalid topological order: %v", pos)
	}
}

func TestProducersConsumers(t *testing.T) {
	w := diamondWorkflow()
	if p := w.Producer("d1"); p == nil || p.ID != "J1" {
		t.Error("Producer(d1) wrong")
	}
	if w.Producer("base") != nil {
		t.Error("base dataset should have no producer")
	}
	cons := w.Consumers("d1")
	if len(cons) != 2 {
		t.Fatalf("Consumers(d1) = %d, want 2", len(cons))
	}
	jp := w.JobProducers(w.Job("J4"))
	if len(jp) != 2 {
		t.Errorf("JobProducers(J4) = %d, want 2", len(jp))
	}
	jc := w.JobConsumers(w.Job("J1"))
	if len(jc) != 2 {
		t.Errorf("JobConsumers(J1) = %d, want 2", len(jc))
	}
	sinks := w.SinkDatasets()
	if len(sinks) != 1 || sinks[0].ID != "d4" {
		t.Errorf("SinkDatasets = %v", sinks)
	}
}

func TestClassifySubgraphs(t *testing.T) {
	w := diamondWorkflow()
	cases := []struct {
		job  string
		want SubgraphKind
	}{
		{"J1", NoneToOne},
		{"J2", OneToMany},
		{"J3", OneToMany},
		{"J4", ManyToOne},
	}
	for _, c := range cases {
		if got := ClassifyConsumer(w, w.Job(c.job)); got != c.want {
			t.Errorf("ClassifyConsumer(%s) = %v, want %v", c.job, got, c.want)
		}
	}
	if got := ClassifyProducer(w, w.Job("J4")); got != OneToNone {
		t.Errorf("ClassifyProducer(J4) = %v, want one-to-none", got)
	}
	if got := ClassifyProducer(w, w.Job("J1")); got != OneToMany {
		t.Errorf("ClassifyProducer(J1) = %v, want one-to-many", got)
	}
	cw := chainWorkflow()
	if got := ClassifyConsumer(cw, cw.Job("J2")); got != OneToOne {
		t.Errorf("ClassifyConsumer(chain J2) = %v, want one-to-one", got)
	}
	if got := ClassifyProducer(cw, cw.Job("J1")); got != OneToOne {
		t.Errorf("ClassifyProducer(chain J1) = %v, want one-to-one", got)
	}
	// Kinds render for diagnostics.
	for _, k := range []SubgraphKind{OneToOne, OneToMany, ManyToOne, NoneToOne, OneToNone} {
		if k.String() == "unknown" {
			t.Error("kind renders as unknown")
		}
	}
}

func TestSoleLink(t *testing.T) {
	w := chainWorkflow()
	link, ok := SoleLink(w, w.Job("J1"), w.Job("J2"))
	if !ok || link != "d1" {
		t.Errorf("SoleLink = %q, %v", link, ok)
	}
	if _, ok := SoleLink(w, w.Job("J2"), w.Job("J1")); ok {
		t.Error("reverse direction should have no link")
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := diamondWorkflow()
	w.Jobs[0].Profile = &JobProfile{}
	w.Jobs[0].Profile.SetMapProfile(0, "base", &PipelineProfile{Selectivity: 1, KeySample: []keyval.Tuple{keyval.T(1)}})
	w.Jobs[0].ReduceGroups[0].Constraints = []PartitionConstraint{{CoGroup: []string{"O"}}}
	c := w.Clone()
	c.Jobs[0].ID = "Jx"
	c.Jobs[1].MapBranches[0].Input = "mutated"
	c.Datasets[0].KeyFields = []string{"mutated"}
	// Pipeline profiles are write-once and shared by Clone (cloning a plan
	// must not copy key-sample reservoirs), but the profile MAPS are
	// copied: replacing a clone's entry must not leak into the original.
	if c.Jobs[0].Profile.MapSide[0] != w.Jobs[0].Profile.MapSide[0] {
		t.Error("clone should share the write-once pipeline profile")
	}
	c.Jobs[0].Profile.SetMapProfile(0, "base", &PipelineProfile{Selectivity: 99})
	c.Jobs[0].ReduceGroups[0].Constraints[0].CoGroup[0] = "mutated"
	if w.Jobs[0].ID != "J1" || w.Jobs[1].MapBranches[0].Input != "d1" {
		t.Error("clone aliases job state")
	}
	if w.Datasets[0].KeyFields != nil {
		t.Error("clone aliases dataset state")
	}
	if w.Jobs[0].Profile.MapSide[0].Selectivity == 99 {
		t.Error("clone aliases profile maps")
	}
	if w.Jobs[0].ReduceGroups[0].Constraints[0].CoGroup[0] == "mutated" {
		t.Error("clone aliases constraints")
	}
}

func TestRemoveJobAndGC(t *testing.T) {
	w := chainWorkflow()
	w.RemoveJob("J2")
	if w.Job("J2") != nil {
		t.Fatal("J2 still present")
	}
	w.GC()
	if w.Dataset("d2") != nil {
		t.Error("d2 should be garbage-collected")
	}
	if w.Dataset("d1") == nil || w.Dataset("base") == nil {
		t.Error("live datasets dropped")
	}
}

func TestJobAccessors(t *testing.T) {
	w := diamondWorkflow()
	j4 := w.Job("J4")
	if got := j4.Inputs(); len(got) != 2 || got[0] != "d2" || got[1] != "d3" {
		t.Errorf("Inputs = %v", got)
	}
	if got := j4.Outputs(); len(got) != 1 || got[0] != "d4" {
		t.Errorf("Outputs = %v", got)
	}
	if g := j4.Group(0); g == nil || g.Output != "d4" {
		t.Error("Group(0) wrong")
	}
	if j4.Group(9) != nil {
		t.Error("Group(9) should be nil")
	}
	if bs := j4.BranchesForTag(0); len(bs) != 2 {
		t.Errorf("BranchesForTag = %d, want 2", len(bs))
	}
	if j4.MapOnly() {
		t.Error("J4 is not map-only")
	}
	mo := &Job{ID: "m", ReduceGroups: []ReduceGroup{{Tag: 0, Output: "x"}}}
	if !mo.MapOnly() {
		t.Error("group without stages should be map-only")
	}
}

func TestSummaryAndDOT(t *testing.T) {
	w := diamondWorkflow()
	s := w.Summary()
	for _, want := range []string{"J1", "J4", "4 jobs"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
	d := w.DOT()
	for _, want := range []string{"digraph", "job_J1", "ds_base", "->"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NumReduceTasks: 0, SplitSizeMB: 1, SortBufferMB: 1, IOSortFactor: 2},
		{NumReduceTasks: 1, SplitSizeMB: 0, SortBufferMB: 1, IOSortFactor: 2},
		{NumReduceTasks: 1, SplitSizeMB: 1, SortBufferMB: 0, IOSortFactor: 2},
		{NumReduceTasks: 1, SplitSizeMB: 1, SortBufferMB: 1, IOSortFactor: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if !strings.Contains(good.String(), "reduce=1") {
		t.Error("Config.String malformed")
	}
}

func TestSchemaHelpers(t *testing.T) {
	if !FieldsSubset([]string{"O"}, []string{"O", "Z"}) {
		t.Error("subset failed")
	}
	if FieldsSubset([]string{"O"}, nil) {
		t.Error("nil super should reject non-empty sub")
	}
	if !FieldsSubset(nil, nil) {
		t.Error("empty sub is subset of anything")
	}
	if got := FieldsIntersect([]string{"O", "Z"}, []string{"Z", "Q"}); len(got) != 1 || got[0] != "Z" {
		t.Errorf("intersect = %v", got)
	}
	if got := FieldsMinus([]string{"O", "Z"}, []string{"O"}); len(got) != 1 || got[0] != "Z" {
		t.Errorf("minus = %v", got)
	}
	if !FieldsEqual([]string{"a"}, []string{"a"}) || FieldsEqual([]string{"a"}, []string{"b"}) {
		t.Error("FieldsEqual wrong")
	}
	idx, ok := IndicesOf([]string{"O", "Z"}, []string{"Z", "O"})
	if !ok || idx[0] != 1 || idx[1] != 0 {
		t.Errorf("IndicesOf = %v, %v", idx, ok)
	}
	if _, ok := IndicesOf([]string{"O"}, []string{"Q"}); ok {
		t.Error("missing name should fail")
	}
	if _, ok := IndicesOf(nil, []string{"Q"}); ok {
		t.Error("nil schema should fail")
	}
	// Figure 4: Jp.K2={O,Z}, Jc.K2={O} -> sort key (O, Z).
	got := CombinedSortKey([]string{"Z", "O"}, []string{"O"})
	if !FieldsEqual(got, []string{"O", "Z"}) {
		t.Errorf("CombinedSortKey = %v, want [O Z]", got)
	}
}

func TestProfileAccessors(t *testing.T) {
	p := &JobProfile{}
	p.SetMapProfile(0, "dsA", &PipelineProfile{Selectivity: 0.5})
	p.SetMapProfile(0, "dsB", &PipelineProfile{Selectivity: 0.25})
	p.SetReduceProfile(0, &PipelineProfile{Selectivity: 2})
	bA := MapBranch{Tag: 0, Input: "dsA"}
	bB := MapBranch{Tag: 0, Input: "dsB"}
	if p.MapProfile(bA).Selectivity != 0.5 {
		t.Error("per-input profile for dsA wrong")
	}
	if p.MapProfile(bB).Selectivity != 0.25 {
		t.Error("per-input profile for dsB wrong")
	}
	if p.ReduceProfile(0).Selectivity != 2 {
		t.Error("reduce profile wrong")
	}
	if p.ReduceProfile(5) != nil {
		t.Error("unknown tag should be nil")
	}
	var nilP *JobProfile
	if nilP.MapProfile(bA) != nil || nilP.ReduceProfile(0) != nil || nilP.Clone() != nil {
		t.Error("nil profile accessors should be nil-safe")
	}
}

func TestFilterAndLayoutStrings(t *testing.T) {
	f := &Filter{Field: "O", Interval: keyval.Interval{Lo: int64(0), Hi: int64(100)}}
	if got := f.String(); got != "O in [0, 100)" {
		t.Errorf("Filter.String = %q", got)
	}
	var nilF *Filter
	if nilF.String() != "none" || nilF.Clone() != nil {
		t.Error("nil filter should render/clone safely")
	}
	l := Layout{PartType: keyval.HashPartition, PartFields: []string{"C"}, SortFields: []string{"C"}, Compressed: true}
	s := l.String()
	for _, want := range []string{"hash(C)", "sort(C)", "compressed"} {
		if !strings.Contains(s, want) {
			t.Errorf("Layout.String missing %q: %s", want, s)
		}
	}
	if (Layout{}).String() != "unspecified" {
		t.Error("empty layout should be unspecified")
	}
}
