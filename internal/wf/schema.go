package wf

// Schema helpers: annotations expose key/value composition as ordered lists
// of field names ("identical field names indicate data that flows unchanged
// through different functions", Section 2.2). These helpers implement the
// set reasoning the transformation preconditions and postconditions need.

// FieldIndex returns the position of name in fields, or -1.
func FieldIndex(fields []string, name string) int {
	for i, f := range fields {
		if f == name {
			return i
		}
	}
	return -1
}

// FieldsSubset reports whether every name in sub appears in super.
// An empty sub is a subset of anything; a nil super (unknown schema) is a
// subset of nothing except the empty set.
func FieldsSubset(sub, super []string) bool {
	for _, s := range sub {
		if FieldIndex(super, s) < 0 {
			return false
		}
	}
	return true
}

// FieldsIntersect returns the names present in both lists, in a's order.
func FieldsIntersect(a, b []string) []string {
	var out []string
	for _, f := range a {
		if FieldIndex(b, f) >= 0 {
			out = append(out, f)
		}
	}
	return out
}

// FieldsMinus returns the names of a not present in b, in a's order.
func FieldsMinus(a, b []string) []string {
	var out []string
	for _, f := range a {
		if FieldIndex(b, f) < 0 {
			out = append(out, f)
		}
	}
	return out
}

// FieldsEqual reports whether the two lists hold the same names in the same
// order.
func FieldsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IndicesOf maps field names to their positions in schema. It returns false
// if any name is missing or the schema is unknown (nil).
func IndicesOf(schema []string, names []string) ([]int, bool) {
	if schema == nil {
		return nil, false
	}
	out := make([]int, len(names))
	for i, n := range names {
		idx := FieldIndex(schema, n)
		if idx < 0 {
			return nil, false
		}
		out[i] = idx
	}
	return out, true
}

// CombinedSortKey builds the sort order the intra-job vertical packing
// postcondition prescribes: the intersection fields first, then the
// remaining fields of the union — {Jp.K2 ∩ Jc.K2, (Jp.K2 ∪ Jc.K2) −
// (Jp.K2 ∩ Jc.K2)} (Section 3.1, postcondition 1). Fields outside the
// producer's own key schema cannot be sorted on by the producer and are
// dropped; for valid packings Jc.K2 ⊆ Jp.K2 so nothing is lost.
func CombinedSortKey(producerK2, consumerK2 []string) []string {
	inter := FieldsIntersect(producerK2, consumerK2)
	rest := FieldsMinus(producerK2, inter)
	return append(append([]string{}, inter...), rest...)
}
