package wf

// SubgraphKind classifies the producer-consumer relationship around a job,
// matching the five subgraph types of Figure 3. Transform preconditions
// dispatch on this classification.
type SubgraphKind int

const (
	// OneToOne: a single producer whose output feeds exactly this consumer.
	OneToOne SubgraphKind = iota
	// OneToMany: a producer whose output feeds several consumers.
	OneToMany
	// ManyToOne: a consumer fed by several producer jobs.
	ManyToOne
	// NoneToOne: a consumer reading only base datasets.
	NoneToOne
	// OneToNone: a producer whose outputs feed no further job.
	OneToNone
)

func (k SubgraphKind) String() string {
	switch k {
	case OneToOne:
		return "one-to-one"
	case OneToMany:
		return "one-to-many"
	case ManyToOne:
		return "many-to-one"
	case NoneToOne:
		return "none-to-one"
	case OneToNone:
		return "one-to-none"
	default:
		return "unknown"
	}
}

// ClassifyConsumer classifies the subgraph upstream of job jc: how many
// producer jobs feed it, and whether any shared producer output fans out.
// Hybrid combinations (the paper notes they arise) resolve to the dominant
// kind in this order: many-to-one before one-to-many before one-to-one.
func ClassifyConsumer(w *Workflow, jc *Job) SubgraphKind {
	producers := w.JobProducers(jc)
	switch len(producers) {
	case 0:
		return NoneToOne
	case 1:
		jp := producers[0]
		if len(w.JobConsumers(jp)) > 1 {
			return OneToMany
		}
		return OneToOne
	default:
		return ManyToOne
	}
}

// ClassifyProducer classifies the subgraph downstream of job jp.
func ClassifyProducer(w *Workflow, jp *Job) SubgraphKind {
	consumers := w.JobConsumers(jp)
	switch len(consumers) {
	case 0:
		return OneToNone
	case 1:
		jc := consumers[0]
		if len(w.JobProducers(jc)) > 1 {
			return ManyToOne
		}
		return OneToOne
	default:
		return OneToMany
	}
}

// SoleLink reports whether jp feeds jc through exactly one dataset and
// returns that dataset ID. Vertical packing requires knowing the single
// dataset on the packed edge.
func SoleLink(w *Workflow, jp, jc *Job) (string, bool) {
	var link string
	count := 0
	for _, out := range jp.Outputs() {
		for _, in := range jc.Inputs() {
			if out == in {
				link = out
				count++
			}
		}
	}
	if count != 1 {
		return "", false
	}
	return link, true
}
