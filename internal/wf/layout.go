package wf

import "github.com/stubby-mr/stubby/internal/keyval"

// DeriveGroupOutputLayout infers the physical layout of the dataset a
// reduce group writes, from the group's partition spec, schema annotations,
// and the job configuration. The inference is annotation-sound: partition
// and sort field names are claimed only when those names flow unchanged
// into the group's output key (same-name semantics of Section 2.2).
// Unknown schemas (nil) yield an unclaimed layout.
func DeriveGroupOutputLayout(g ReduceGroup, cfg Config) Layout {
	layout := Layout{Compressed: cfg.CompressOutput, PartType: g.Part.Type}
	if g.KeyIn == nil {
		return layout
	}
	// Partition fields: the K2 names the spec partitions on, kept only if
	// they all survive into K3.
	partNames := keyval.Project(namesToTuple(g.KeyIn), g.Part.EffectiveKeyFields(len(g.KeyIn)))
	pf := tupleToNames(partNames)
	if len(pf) > 0 && FieldsSubset(pf, g.KeyOut) {
		layout.PartFields = pf
		if g.Part.Type == keyval.RangePartition {
			layout.SplitPoints = make([]keyval.Tuple, len(g.Part.SplitPoints))
			for i, sp := range g.Part.SplitPoints {
				layout.SplitPoints[i] = keyval.Clone(sp)
			}
		}
	}
	// Sort fields: reduce tasks emit groups in per-partition sort order, so
	// the output is clustered on the longest prefix of the sort names that
	// survives into K3.
	sortNames := keyval.Project(namesToTuple(g.KeyIn), g.Part.EffectiveSortFields(len(g.KeyIn)))
	for _, f := range tupleToNames(sortNames) {
		if FieldIndex(g.KeyOut, f) < 0 {
			break
		}
		layout.SortFields = append(layout.SortFields, f)
	}
	return layout
}

// DeriveMapOnlyOutputLayout infers the layout of a map-only group's output
// from the input dataset's layout: ordering and partitioning survive a
// map-only pass only for field names that flow unchanged into the group
// output, and co-grouped partitioning survives only when map tasks are
// aligned one-to-one with input partitions (splitting a partition breaks
// co-location of equal keys).
func DeriveMapOnlyOutputLayout(in Layout, g ReduceGroup, aligned bool, cfg Config) Layout {
	layout := Layout{Compressed: cfg.CompressOutput}
	if g.KeyOut == nil {
		return layout
	}
	if aligned && len(in.PartFields) > 0 && FieldsSubset(in.PartFields, g.KeyOut) {
		layout.PartType = in.PartType
		layout.PartFields = cloneStrings(in.PartFields)
		if in.PartType == keyval.RangePartition {
			layout.SplitPoints = make([]keyval.Tuple, len(in.SplitPoints))
			for i, sp := range in.SplitPoints {
				layout.SplitPoints[i] = keyval.Clone(sp)
			}
		}
	}
	for _, f := range in.SortFields {
		if FieldIndex(g.KeyOut, f) < 0 {
			break
		}
		layout.SortFields = append(layout.SortFields, f)
	}
	return layout
}

func namesToTuple(names []string) keyval.Tuple {
	t := make(keyval.Tuple, len(names))
	for i, n := range names {
		t[i] = n
	}
	return t
}

func tupleToNames(t keyval.Tuple) []string {
	out := make([]string, 0, len(t))
	for _, f := range t {
		s, ok := f.(string)
		if !ok {
			return nil
		}
		out = append(out, s)
	}
	return out
}
