package optimizer

import (
	"reflect"
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

func sumFloat(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
	var s float64
	for _, v := range vs {
		s += v[0].(float64)
	}
	emit(k, keyval.T(s))
}

// copyChain builds src -> COPY (map-only identity) -> SUM -> sums, the
// shape the test transformation below elides.
func copyChain() *wf.Workflow {
	identity := wf.MapStage("M_id", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0.3e-6)
	rekey := wf.MapStage("M_rk", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0.3e-6)
	return &wf.Workflow{
		Name: "copychain",
		Jobs: []*wf.Job{
			{
				ID: "COPY", Config: wf.DefaultConfig(), Origin: []string{"COPY"},
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "src",
					Stages: []wf.Stage{identity},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag: 0, Output: "copied",
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
			},
			{
				ID: "SUM", Config: wf.DefaultConfig(), Origin: []string{"SUM"},
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "copied",
					Stages: []wf.Stage{rekey},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag: 0, Output: "sums",
					Stages: []wf.Stage{wf.ReduceStage("R_sum", sumFloat, nil, 0.5e-6)},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"sum"},
				}},
			},
		},
		Datasets: []*wf.Dataset{
			{ID: "src", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"x"}},
			{ID: "copied", KeyFields: []string{"k"}, ValueFields: []string{"x"}},
			{ID: "sums", KeyFields: []string{"k"}, ValueFields: []string{"sum"}},
		},
	}
}

// copyElision is a test-fixture transformation: it removes a map-only job
// whose single unfiltered branch has identical input and output schemas
// (an identity copy by construction in this test), rewiring consumers to
// the copy's input. Real extensions must justify semantic preservation the
// same way built-ins do — here the fixture controls both jobs.
type copyElision struct{}

func (copyElision) Name() string { return "copy-elision" }

func (copyElision) Apply(plan *wf.Workflow, unitJobs []string) []Proposal {
	var out []Proposal
	for _, id := range unitJobs {
		j := plan.Job(id)
		if j == nil || !j.MapOnly() || len(j.MapBranches) != 1 || len(j.ReduceGroups) != 1 {
			continue
		}
		b := j.MapBranches[0]
		if len(b.Stages) != 1 || b.Filter != nil ||
			!wf.FieldsEqual(b.KeyIn, b.KeyOut) || !wf.FieldsEqual(b.ValIn, b.ValOut) {
			continue
		}
		outDS := j.ReduceGroups[0].Output
		if len(plan.Consumers(outDS)) == 0 {
			continue // a sink copy is load-bearing
		}
		p := plan.Clone()
		for _, cj := range p.Jobs {
			for i := range cj.MapBranches {
				if cj.MapBranches[i].Input == outDS {
					cj.MapBranches[i].Input = b.Input
				}
			}
		}
		p.RemoveJob(id)
		p.GC()
		out = append(out, Proposal{Plan: p, Desc: "copy-elision(" + id + ")"})
	}
	return out
}

// brokenTransformation stresses the defensive path: nil and structurally
// invalid proposals must be discarded without aborting the search.
type brokenTransformation struct{}

func (brokenTransformation) Name() string { return "broken" }

func (brokenTransformation) Apply(plan *wf.Workflow, unitJobs []string) []Proposal {
	bad := plan.Clone()
	bad.Jobs[0].MapBranches[0].Input = "no-such-dataset"
	return []Proposal{{Plan: nil}, {Plan: bad, Desc: "invalid"}}
}

func customFixture(t *testing.T) (*wf.Workflow, *mrsim.DFS, *mrsim.Cluster) {
	t.Helper()
	w := copyChain()
	var pairs []keyval.Pair
	for i := 0; i < 600; i++ {
		pairs = append(pairs, keyval.Pair{
			Key:   keyval.T(int64(i % 40)),
			Value: keyval.T(float64(i % 13)),
		})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("src", pairs, mrsim.IngestSpec{
		NumPartitions: 4,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	}); err != nil {
		t.Fatal(err)
	}
	cl := testCluster()
	if err := profile.NewProfiler(cl, 1.0, 1).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	return w, dfs, cl
}

// TestCustomTransformationExtendsSearch pins the EXODUS-style extensibility
// contract: with the horizontal-only group (which has no built-in way to
// remove the copy job) a registered custom transformation is enumerated,
// chosen on cost, traced, and preserves results.
func TestCustomTransformationExtendsSearch(t *testing.T) {
	w, dfs, cl := customFixture(t)

	run := func(plan *wf.Workflow) []keyval.Pair {
		d := dfs.Clone()
		if _, err := mrsim.NewEngine(cl, d).RunWorkflow(plan); err != nil {
			t.Fatalf("run: %v", err)
		}
		st, ok := d.Get("sums")
		if !ok {
			t.Fatal("sums missing")
		}
		pairs := st.AllPairs()
		keyval.SortPairs(pairs, nil)
		return pairs
	}

	without, err := New(cl, Options{Seed: 1, Groups: GroupHorizontal}).Optimize(w)
	if err != nil {
		t.Fatalf("optimize without custom: %v", err)
	}
	if len(without.Plan.Jobs) != 2 {
		t.Fatalf("horizontal-only optimizer unexpectedly restructured the chain: %d jobs", len(without.Plan.Jobs))
	}

	with, err := New(cl, Options{Seed: 1, Groups: GroupHorizontal, Custom: []Transformation{copyElision{}}}).Optimize(w)
	if err != nil {
		t.Fatalf("optimize with custom: %v", err)
	}
	if len(with.Plan.Jobs) != 1 {
		t.Fatalf("custom transformation not applied: %d jobs\n%s", len(with.Plan.Jobs), with.Plan.Summary())
	}
	traced := false
	for _, u := range with.Units {
		for _, sp := range u.Subplans {
			if strings.Contains(sp.Description, "custom:copy-elision") {
				traced = true
			}
		}
	}
	if !traced {
		t.Error("custom transformation missing from the search trace")
	}
	if want, got := run(w), run(with.Plan); !reflect.DeepEqual(want, got) {
		t.Fatal("custom-optimized plan changed results")
	}
}

func TestCustomTransformationInvalidProposalsDiscarded(t *testing.T) {
	w, _, cl := customFixture(t)
	res, err := New(cl, Options{Seed: 1, Custom: []Transformation{brokenTransformation{}}}).Optimize(w)
	if err != nil {
		t.Fatalf("broken custom transformation aborted the search: %v", err)
	}
	for _, u := range res.Units {
		for _, sp := range u.Subplans {
			if strings.Contains(sp.Description, "custom:") {
				t.Fatalf("invalid proposal entered enumeration: %s", sp.Description)
			}
		}
	}
}

// TestCustomTransformationCostRejected verifies proposals lose on cost when
// they do not help: a transformation that duplicates work must not displace
// the incumbent structure.
type workDoubler struct{}

func (workDoubler) Name() string { return "work-doubler" }

func (workDoubler) Apply(plan *wf.Workflow, unitJobs []string) []Proposal {
	// Insert a pointless extra copy of the sums output: strictly worse.
	p := plan.Clone()
	var sink string
	for _, d := range p.Datasets {
		if len(p.Consumers(d.ID)) == 0 && p.Producer(d.ID) != nil {
			sink = d.ID
		}
	}
	if sink == "" {
		return nil
	}
	p.Jobs = append(p.Jobs, &wf.Job{
		ID: "WASTE", Config: wf.DefaultConfig(), Origin: []string{"WASTE"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: sink,
			Stages: []wf.Stage{wf.MapStage("M_waste", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
		}},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "wasted"}},
	})
	p.Datasets = append(p.Datasets, &wf.Dataset{ID: "wasted"})
	return []Proposal{{Plan: p, Desc: "waste"}}
}

func TestCustomTransformationCostRejected(t *testing.T) {
	w, _, cl := customFixture(t)
	res, err := New(cl, Options{Seed: 1, Custom: []Transformation{workDoubler{}}}).Optimize(w)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	for _, j := range res.Plan.Jobs {
		if j.ID == "WASTE" {
			t.Fatal("cost model accepted a strictly wasteful custom proposal")
		}
	}
}
