package optimizer

import (
	"context"
	"math"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/rrs"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// Configuration transformation (Section 3.5) searched with RRS
// (Section 4.2): the unit's jobs' configuration knobs form one joint
// parameter space; the objective is the What-if estimate of the whole
// plan, so configuration effects on downstream consumers (e.g. output
// compression) are priced in.

// configDim maps one RRS dimension onto a configuration field of one or
// more jobs (several when a many-to-one packing tied their reduce counts).
type configDim struct {
	param rrs.Param
	jobs  []string
	apply func(c *wf.Config, v float64)
	read  func(c wf.Config) float64
}

// tuneConfigs runs RRS over the configuration space of the unit's jobs in
// the given plan and returns the plan with the best configuration applied,
// its cost, and whether costing fell back to the #jobs model. The cost is
// the unit's completion time within the whole-plan estimate (Section 4.2:
// the subplan minimizing "the total running time of the MapReduce jobs in
// U(i)"), so effects on in-unit consumers are priced while unrelated
// downstream noise is not. The estimator is passed in (rather than read
// from s.est) so parallel subplan searches can use private memoization.
// Cancellation is checked between RRS evaluations.
func (s *Stubby) tuneConfigs(ctx context.Context, est searchEstimator, plan *wf.Workflow, unitOrigins map[string]bool, seed int64) (*wf.Workflow, float64, bool, error) {
	dims := s.configSpace(plan, unitOrigins)
	unitJobs := jobsWithinOrigins(plan, unitOrigins)
	unitCost := func(est *whatif.Estimate) float64 {
		if est.Fallback {
			return est.Makespan
		}
		hi := 0.0
		lo := math.Inf(1)
		for _, id := range unitJobs {
			if je, ok := est.Jobs[id]; ok {
				if je.End > hi {
					hi = je.End
				}
				if je.Start < lo {
					lo = je.Start
				}
			}
		}
		if hi == 0 {
			return est.Makespan
		}
		if lo == math.Inf(1) {
			lo = 0
		}
		return hi - lo
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	baseEst, err := est.Estimate(plan)
	if err != nil {
		return nil, 0, false, err
	}
	if len(dims) == 0 || baseEst.Fallback || s.opt.DisableConfigSearch {
		// Nothing to tune, tuning disabled, or tuning cannot be costed:
		// keep configurations as provided.
		return plan, unitCost(baseEst), baseEst.Fallback, nil
	}
	params := make([]rrs.Param, len(dims))
	initial := make(rrs.Point, len(dims))
	for i, d := range dims {
		params[i] = d.param
		initial[i] = d.read(plan.Job(d.jobs[0]).Config)
	}
	applyPoint := func(target *wf.Workflow, pt rrs.Point) {
		for i, d := range dims {
			for _, id := range d.jobs {
				j := target.Job(id)
				if j != nil {
					d.apply(&j.Config, pt[i])
				}
			}
		}
	}
	scratch := plan.Clone()
	// The RRS objective mutates only the dims' jobs' configurations, so an
	// incremental (prepared) estimator can delta-estimate each probe: the
	// plan is split at the first changeable job, the prefix is estimated
	// once, and per-probe work shrinks to the affected cone plus a cheap
	// scheduling replay. Estimates are bit-identical to the monolithic
	// path, so the search trajectory — and therefore the chosen plan — is
	// unchanged (Options.DisableIncremental escape-hatches back).
	estimateScratch := func() (*whatif.Estimate, error) { return est.Estimate(scratch) }
	if !s.opt.DisableIncremental {
		if ip, ok := est.(incrementalPreparer); ok {
			if prep, err := ip.Prepare(scratch, dimJobs(dims)); err == nil {
				estimateScratch = prep.Estimate
				// unitCost reads only the unit jobs' start/end times — plus
				// whole-plan makespan in one degenerate branch that requires
				// a job with predicted End == 0, impossible once task setup
				// costs anything. On such clusters the tail scheduled after
				// the last unit job can be skipped outright.
				if s.cluster.TaskSetupSec > 0 {
					estimateScratch = prep.EstimateChanged
				}
			}
		}
	}
	objective := func(pt rrs.Point) float64 {
		// Cancellation between RRS evaluations: short-circuit the rest of
		// the budget; the caller surfaces ctx.Err() after Minimize returns.
		if ctx.Err() != nil {
			return math.Inf(1)
		}
		applyPoint(scratch, pt)
		e, err := estimateScratch()
		if err != nil {
			return 1e18
		}
		return unitCost(e)
	}
	evals := s.opt.RRSEvals
	if evals <= 0 {
		// Adaptive budget: enough exploration and exploitation per
		// dimension for comparable tuning quality across subplans.
		evals = 50 + 25*len(dims)
		if evals > 900 {
			evals = 900
		}
	}
	res, err := rrs.Minimize(params, objective, initial, rrs.Options{
		MaxEvals:    evals,
		Seed:        s.opt.Seed ^ seed,
		ExploreOnly: s.opt.ConfigSearch == SearchRandom,
	})
	if err != nil {
		return nil, 0, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	// Hysteresis: keep the incumbent configuration unless the search
	// predicts a meaningful gain. Chasing sub-percent predicted
	// improvements only trades one estimator-noise optimum for another
	// (and would let a later traversal phase churn configurations the
	// earlier phase already settled).
	incumbent := unitCost(baseEst)
	if res.Value > incumbent*0.97 {
		return plan, incumbent, false, nil
	}
	tuned := plan.Clone()
	applyPoint(tuned, res.Best)
	return tuned, res.Value, false, nil
}

// dimJobs collects the distinct job IDs any dimension applies to — the set
// of jobs a configuration probe may reconfigure.
func dimJobs(dims []configDim) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range dims {
		for _, id := range d.jobs {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// configSpace builds the joint parameter space for jobs within the unit.
func (s *Stubby) configSpace(plan *wf.Workflow, unitOrigins map[string]bool) []configDim {
	var dims []configDim
	tied := map[string][]string{} // ReduceCountGroup label -> job IDs
	ids := jobsWithinOrigins(plan, unitOrigins)
	sort.Strings(ids)
	for _, id := range ids {
		j := plan.Job(id)
		name := j.ID

		if !j.MapOnly() {
			if j.PinnedReducers {
				// Reducer count frozen by an alignment postcondition.
			} else if j.ReduceCountGroup != "" {
				tied[j.ReduceCountGroup] = append(tied[j.ReduceCountGroup], id)
			} else if !allGroupsRangePinned(j) {
				dims = append(dims, configDim{
					param: rrs.Param{Name: name + ".reduce", Min: 1,
						Max: float64(2 * s.cluster.TotalReduceSlots()), Integer: true},
					jobs:  []string{id},
					apply: func(c *wf.Config, v float64) { c.NumReduceTasks = int(v) },
					read:  func(c wf.Config) float64 { return float64(c.NumReduceTasks) },
				})
			}
			dims = append(dims, configDim{
				param: rrs.Param{Name: name + ".sortbuf", Min: 16, Max: 512, Integer: true},
				jobs:  []string{id},
				apply: func(c *wf.Config, v float64) { c.SortBufferMB = int(v) },
				read:  func(c wf.Config) float64 { return float64(c.SortBufferMB) },
			})
			dims = append(dims, configDim{
				param: rrs.Param{Name: name + ".sortfactor", Min: 5, Max: 100, Integer: true},
				jobs:  []string{id},
				apply: func(c *wf.Config, v float64) { c.IOSortFactor = int(v) },
				read:  func(c wf.Config) float64 { return float64(c.IOSortFactor) },
			})
			dims = append(dims, configDim{
				param: rrs.Param{Name: name + ".mapcomp", Min: 0, Max: 1, Integer: true},
				jobs:  []string{id},
				apply: func(c *wf.Config, v float64) { c.CompressMapOutput = v >= 0.5 },
				read:  func(c wf.Config) float64 { return boolToF(c.CompressMapOutput) },
			})
			if hasCombiner(j) {
				dims = append(dims, configDim{
					param: rrs.Param{Name: name + ".combiner", Min: 0, Max: 1, Integer: true},
					jobs:  []string{id},
					apply: func(c *wf.Config, v float64) { c.UseCombiner = v >= 0.5 },
					read:  func(c wf.Config) float64 { return boolToF(c.UseCombiner) },
				})
			}
		}
		if !j.AlignMapToInput {
			dims = append(dims, configDim{
				param: rrs.Param{Name: name + ".split", Min: 8, Max: 512, Integer: true},
				jobs:  []string{id},
				apply: func(c *wf.Config, v float64) { c.SplitSizeMB = int(v) },
				read:  func(c wf.Config) float64 { return float64(c.SplitSizeMB) },
			})
		}
		dims = append(dims, configDim{
			param: rrs.Param{Name: name + ".outcomp", Min: 0, Max: 1, Integer: true},
			jobs:  []string{id},
			apply: func(c *wf.Config, v float64) { c.CompressOutput = v >= 0.5 },
			read:  func(c wf.Config) float64 { return boolToF(c.CompressOutput) },
		})
	}
	var labels []string
	for label := range tied {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		group := tied[label]
		sort.Strings(group)
		dims = append(dims, configDim{
			param: rrs.Param{Name: label + ".reduce", Min: 1,
				Max: float64(2 * s.cluster.TotalReduceSlots()), Integer: true},
			jobs:  group,
			apply: func(c *wf.Config, v float64) { c.NumReduceTasks = int(v) },
			read:  func(c wf.Config) float64 { return float64(c.NumReduceTasks) },
		})
	}
	return dims
}

// allGroupsRangePinned reports whether every shuffling group uses range
// partitioning (whose split points pin the reduce-task count, removing the
// degree of freedom).
func allGroupsRangePinned(j *wf.Job) bool {
	any := false
	for _, g := range j.ReduceGroups {
		if g.MapOnly() {
			continue
		}
		any = true
		if g.Part.Type != keyval.RangePartition {
			return false
		}
	}
	return any
}

func hasCombiner(j *wf.Job) bool {
	for _, g := range j.ReduceGroups {
		if !g.MapOnly() && g.Combiner != nil {
			return true
		}
	}
	return false
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
