package optimizer

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
)

// errSearchAborted marks subplan slots whose configuration search was
// skipped because a sibling already failed; the sibling's error is the one
// reported.
var errSearchAborted = errors.New("optimizer: subplan search aborted after earlier failure")

// subplan is one structural alternative for a unit.
type subplan struct {
	plan  *wf.Workflow
	steps []string // transformation descriptions, in application order
}

// tunedSubplan is the outcome of one subplan's configuration search.
type tunedSubplan struct {
	plan     *wf.Workflow
	cost     float64
	fallback bool
	err      error
}

// optimizeUnit enumerates all structural subplans for the unit (Figure 10),
// searches configurations for each with RRS, and returns the plan with the
// lowest estimated cost. Under Options.Parallelism the per-subplan searches
// run concurrently; selection and observer events still replay in
// enumeration order, so the chosen plan is identical to a serial search.
func (s *Stubby) optimizeUnit(ctx context.Context, plan *wf.Workflow, unit []string, ph phaseSpec, unitIdx int) (*wf.Workflow, *UnitReport, error) {
	unitOrigins := map[string]bool{}
	for _, id := range unit {
		for _, o := range plan.Job(id).Origin {
			unitOrigins[o] = true
		}
	}
	if obs := s.opt.Observer; obs != nil {
		obs.UnitStarted(ph.name, unitIdx, append([]string(nil), unit...))
	}
	subplans := s.enumerate(plan, unitOrigins, ph)
	tuned := s.tuneSubplans(ctx, subplans, unitOrigins, unitIdx)
	// Surface the search failure that caused any abort, never the abort
	// sentinel itself (slot order is unrelated to failure order; a
	// sentinel is only ever written after its cause's real error).
	for _, tn := range tuned {
		if tn.err != nil && !errors.Is(tn.err, errSearchAborted) {
			return nil, nil, tn.err
		}
	}
	report := &UnitReport{}
	bestIdx, bestCost := -1, 0.0
	baselineFallback := false
	var bestPlan *wf.Workflow
	for i, sp := range subplans {
		tn := tuned[i]
		if i == 0 {
			baselineFallback = tn.fallback
		}
		rep := SubplanReport{
			Description: strings.Join(sp.steps, "; "),
			Cost:        tn.cost,
			Fallback:    tn.fallback,
		}
		if rep.Description == "" {
			rep.Description = "no structural change"
		}
		if s.opt.KeepSubplans {
			rep.Plan = tn.plan
		}
		report.Subplans = append(report.Subplans, rep)
		if obs := s.opt.Observer; obs != nil {
			obs.SubplanEnumerated(unitIdx, rep.Description, tn.cost)
		}
		// Fallback (#jobs) costs are not comparable with time estimates:
		// only compare within the baseline's costing regime.
		if tn.fallback != baselineFallback {
			continue
		}
		// Hysteresis against estimator noise: a structural change must
		// predict a meaningful gain over the incumbent structure (i == 0)
		// to displace it.
		threshold := bestCost
		if bestIdx == 0 {
			threshold = bestCost * 0.97
		}
		if bestIdx == -1 || tn.cost < threshold {
			bestIdx, bestCost, bestPlan = i, tn.cost, tn.plan
			if obs := s.opt.Observer; obs != nil {
				obs.BestCostImproved(unitIdx, rep.Description, tn.cost)
			}
		}
	}
	if bestIdx == -1 {
		return nil, nil, fmt.Errorf("optimizer: no viable subplan for unit %v", unit)
	}
	if s.opt.Robustness != nil && s.opt.Robustness.Model.Perturbs() && !baselineFallback {
		idx, plan, err := s.robustTieBreak(ctx, tuned, baselineFallback, bestIdx, bestCost)
		if err != nil {
			return nil, nil, err
		}
		if idx != bestIdx && s.opt.Observer != nil {
			s.opt.Observer.BestCostImproved(unitIdx, report.Subplans[idx].Description, tuned[idx].cost)
		}
		bestIdx, bestPlan = idx, plan
	}
	report.ChosenIdx = bestIdx
	return bestPlan, report, nil
}

// robustnessTieBand is how close (relative) to the unit's best estimated
// cost a candidate must be to count as a near-tie for p99 re-ranking.
const robustnessTieBand = 1.03

// robustTieBreak re-ranks near-tie candidates on p99 makespan under the
// configured fault model: among subplans within robustnessTieBand of the
// best estimated cost, the lowest p99 wins (enumeration order breaks p99
// ties, and the incumbent keeps winning exact ties — so re-ranking is
// deterministic and a non-perturbing model can never flip a choice). The
// replay runs serially on the search's own estimator, so parallelism
// cannot change the outcome.
func (s *Stubby) robustTieBreak(ctx context.Context, tuned []tunedSubplan, baselineFallback bool, bestIdx int, bestCost float64) (int, *wf.Workflow, error) {
	band := bestCost * robustnessTieBand
	var ties []int
	for i, tn := range tuned {
		if tn.err != nil || tn.plan == nil || tn.fallback != baselineFallback {
			continue
		}
		if tn.cost <= band {
			ties = append(ties, i)
		}
	}
	if len(ties) < 2 {
		return bestIdx, tuned[bestIdx].plan, nil
	}
	p99 := make(map[int]float64, len(ties))
	for _, i := range ties {
		rob, err := s.robustness(ctx, tuned[i].plan)
		if err != nil {
			return 0, nil, err
		}
		if rob == nil {
			// Not computable for this candidate (annotations fall back);
			// keep the cost-based choice for the whole unit.
			return bestIdx, tuned[bestIdx].plan, nil
		}
		p99[i] = rob.P99
	}
	winIdx := bestIdx
	for _, i := range ties {
		if p99[i] < p99[winIdx] {
			winIdx = i
		}
	}
	return winIdx, tuned[winIdx].plan, nil
}

// tuneSubplans runs the configuration search for every enumerated subplan,
// serially or on a bounded worker pool. Per-subplan seeds derive from the
// subplan's structure (not enumeration order), so results are identical at
// any parallelism; parallel workers get private estimators because the
// What-if engine's memoization is not concurrent-safe.
func (s *Stubby) tuneSubplans(ctx context.Context, subplans []subplan, unitOrigins map[string]bool, unitIdx int) []tunedSubplan {
	out := make([]tunedSubplan, len(subplans))
	if s.estPool == nil || len(subplans) <= 1 {
		for i, sp := range subplans {
			plan, cost, fallback, err := s.tuneConfigs(ctx, s.est, sp.plan, unitOrigins, subplanSeed(unitIdx, sp.plan))
			out[i] = tunedSubplan{plan: plan, cost: cost, fallback: fallback, err: err}
			if err != nil {
				break
			}
		}
		return out
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	// The search-lifetime estimator pool doubles as the concurrency
	// bound: one private estimator per in-flight search, no cache shared
	// between goroutines.
	ests := s.estPool
	for i, sp := range subplans {
		wg.Add(1)
		go func(i int, sp subplan) {
			defer wg.Done()
			est := <-ests
			defer func() { ests <- est }()
			// Early stop, mirroring the serial break: once any search
			// fails, skip the remaining budgets instead of burning them.
			if failed.Load() {
				out[i] = tunedSubplan{err: errSearchAborted}
				return
			}
			if err := ctx.Err(); err != nil {
				failed.Store(true)
				out[i] = tunedSubplan{err: err}
				return
			}
			plan, cost, fallback, err := s.tuneConfigs(ctx, est, sp.plan, unitOrigins, subplanSeed(unitIdx, sp.plan))
			if err != nil {
				failed.Store(true)
			}
			out[i] = tunedSubplan{plan: plan, cost: cost, fallback: fallback, err: err}
		}(i, sp)
	}
	wg.Wait()
	return out
}

// enumerate exhaustively applies the phase's structural transformations
// within the unit, collecting unique subplans (Section 4.2: "Stubby
// exhaustively applies all transformations, except the configuration
// transformation").
func (s *Stubby) enumerate(plan *wf.Workflow, unitOrigins map[string]bool, ph phaseSpec) []subplan {
	seen := map[string]bool{signature(plan): true}
	queue := []subplan{{plan: plan}}
	var out []subplan
	for len(queue) > 0 && len(out) < s.opt.MaxSubplans {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, next := range s.neighbors(cur, unitOrigins, ph) {
			sig := signature(next.plan)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			// Defense in depth: a transformation bug must surface as a
			// skipped subplan, not as a broken chosen plan (a cyclic
			// proposal once slipped through costing unnoticed).
			if err := next.plan.Validate(); err != nil {
				continue
			}
			queue = append(queue, next)
		}
	}
	return out
}

// neighbors generates all single-transformation successors of a subplan.
func (s *Stubby) neighbors(cur subplan, unitOrigins map[string]bool, ph phaseSpec) []subplan {
	var out []subplan
	add := func(p *wf.Workflow, desc string) {
		out = append(out, subplan{plan: p, steps: append(append([]string{}, cur.steps...), desc)})
	}
	unitJobs := jobsWithinOrigins(cur.plan, unitOrigins)

	if ph.vertical {
		for _, jc := range unitJobs {
			if trans.CanIntraVertical(cur.plan, jc) == nil {
				if producersWithin(cur.plan, jc, unitOrigins) {
					if p, err := trans.IntraVertical(cur.plan, jc); err == nil {
						add(p, "intra-vertical("+jc+")")
					}
				}
			}
		}
		for _, jp := range unitJobs {
			for _, jc := range unitJobs {
				if jp == jc {
					continue
				}
				if trans.CanInterVertical(cur.plan, jp, jc) == nil {
					if p, err := trans.InterVertical(cur.plan, jp, jc); err == nil {
						add(p, "inter-vertical("+jp+","+jc+")")
					}
				}
			}
		}
		for _, jp := range unitJobs {
			if trans.CanInterVerticalReplicate(cur.plan, jp) == nil && consumersWithin(cur.plan, jp, unitOrigins) {
				if p, err := trans.InterVerticalReplicate(cur.plan, jp); err == nil {
					add(p, "inter-vertical-replicate("+jp+")")
				}
			}
		}
		// One-to-many extension (ii): pack the map-only producer with one
		// consumer, keeping its output materialized for the others.
		for _, jp := range unitJobs {
			for _, jc := range unitJobs {
				if jp == jc {
					continue
				}
				if trans.CanInterVerticalKeep(cur.plan, jp, jc) == nil {
					if p, err := trans.InterVerticalKeep(cur.plan, jp, jc); err == nil {
						add(p, "inter-vertical-keep("+jp+","+jc+")")
					}
				}
			}
		}
	}
	if ph.horizontal {
		// Horizontal phase: same-input sibling groups, plus the
		// concurrently-runnable extension over the whole unit.
		for _, group := range horizontalGroups(cur.plan, unitJobs) {
			if trans.CanHorizontal(cur.plan, group, false) == nil {
				if p, err := trans.Horizontal(cur.plan, group, false); err == nil {
					add(p, "horizontal("+strings.Join(group, ",")+")")
				}
			}
		}
	}

	// Partition function transformations belong to both structural groups
	// (Section 4); disabled for comparators that lack them and in the
	// config-only (Starfish) mode.
	if !s.opt.DisablePartition && !ph.configOnly {
		for _, id := range unitJobs {
			j := cur.plan.Job(id)
			for gi := range j.ReduceGroups {
				tag := j.ReduceGroups[gi].Tag
				for _, spec := range trans.EnumeratePartitionSpecs(cur.plan, id, tag, s.cluster.TotalReduceSlots()) {
					if p, err := trans.ApplyPartitionSpec(cur.plan, id, tag, spec); err == nil {
						add(p, fmt.Sprintf("partition(%s#%d:%s)", id, tag, spec.Type))
					}
				}
			}
		}
	}

	// Registered custom transformations extend both structural phases.
	// Their proposals compete on estimated cost exactly like built-ins;
	// structurally invalid proposals are discarded defensively.
	if !ph.configOnly {
		for _, tr := range s.opt.Custom {
			for _, prop := range tr.Apply(cur.plan, append([]string(nil), unitJobs...)) {
				if prop.Plan == nil || prop.Plan.Validate() != nil {
					continue
				}
				desc := prop.Desc
				if desc == "" {
					desc = tr.Name()
				}
				add(prop.Plan, "custom:"+desc)
			}
		}
	}
	return out
}

// horizontalGroups proposes candidate job sets to pack: for every dataset
// read by two or more unit jobs, each subset of its readers (size >= 2),
// plus the set of all concurrently-runnable unit jobs.
func horizontalGroups(plan *wf.Workflow, unitJobs []string) [][]string {
	byInput := map[string][]string{}
	for _, id := range unitJobs {
		for _, in := range plan.Job(id).Inputs() {
			byInput[in] = append(byInput[in], id)
		}
	}
	var out [][]string
	seen := map[string]bool{}
	addGroup := func(g []string) {
		if len(g) < 2 {
			return
		}
		g = append([]string(nil), g...)
		sort.Strings(g)
		key := strings.Join(g, "|")
		if !seen[key] {
			seen[key] = true
			out = append(out, g)
		}
	}
	var inputs []string
	for in := range byInput {
		inputs = append(inputs, in)
	}
	sort.Strings(inputs)
	for _, in := range inputs {
		readers := byInput[in]
		if len(readers) < 2 {
			continue
		}
		// All subsets of size >= 2 (reader counts are small in practice).
		n := len(readers)
		if n > 5 {
			addGroup(readers) // cap combinatorics: pack all
			continue
		}
		for mask := 1; mask < 1<<n; mask++ {
			var g []string
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					g = append(g, readers[b])
				}
			}
			addGroup(g)
		}
	}
	if len(unitJobs) >= 2 && len(unitJobs) <= 5 {
		addGroup(unitJobs)
	}
	return out
}

// jobsWithinOrigins lists current jobs composed purely of unit originals.
func jobsWithinOrigins(plan *wf.Workflow, unitOrigins map[string]bool) []string {
	var out []string
	for _, j := range plan.Jobs {
		ok := true
		for _, o := range j.Origin {
			if !unitOrigins[o] {
				ok = false
				break
			}
		}
		if ok && len(j.Origin) > 0 {
			out = append(out, j.ID)
		}
	}
	return out
}

// producersWithin reports whether every producing job of jc lies in the unit.
func producersWithin(plan *wf.Workflow, jcID string, unitOrigins map[string]bool) bool {
	for _, jp := range plan.JobProducers(plan.Job(jcID)) {
		for _, o := range jp.Origin {
			if !unitOrigins[o] {
				return false
			}
		}
	}
	return true
}

// consumersWithin reports whether every consumer of jp lies in the unit.
func consumersWithin(plan *wf.Workflow, jpID string, unitOrigins map[string]bool) bool {
	for _, jc := range plan.JobConsumers(plan.Job(jpID)) {
		for _, o := range jc.Origin {
			if !unitOrigins[o] {
				return false
			}
		}
	}
	return true
}

// signature canonically fingerprints a plan's structure: jobs (by sorted
// origin), their branch wiring, partition specs, and packing flags.
// Configurations are excluded — they are searched, not enumerated.
func signature(plan *wf.Workflow) string {
	var jobs []string
	for _, j := range plan.Jobs {
		var b strings.Builder
		origins := append([]string(nil), j.Origin...)
		sort.Strings(origins)
		b.WriteString(strings.Join(origins, "+"))
		b.WriteByte('{')
		var branches []string
		for _, br := range j.MapBranches {
			branches = append(branches, fmt.Sprintf("%d<%s", br.Tag, br.Input))
		}
		sort.Strings(branches)
		b.WriteString(strings.Join(branches, ","))
		b.WriteByte('|')
		var groups []string
		for _, g := range j.ReduceGroups {
			groups = append(groups, fmt.Sprintf("%d>%s:%s:%v:%v:%x:ms=%v",
				g.Tag, g.Output, g.Part.Type, g.Part.KeyFields, g.Part.SortFields,
				keyval.HashTuples(g.Part.SplitPoints), g.RunsMapSide))
		}
		sort.Strings(groups)
		b.WriteString(strings.Join(groups, ","))
		b.WriteByte('}')
		if j.AlignMapToInput {
			b.WriteString("@aligned")
		}
		if j.PinnedReducers {
			b.WriteString("@pinned")
		}
		jobs = append(jobs, b.String())
	}
	sort.Strings(jobs)
	return strings.Join(jobs, ";")
}

// subplanSeed derives a deterministic RRS seed from a subplan's structure.
func subplanSeed(unitIdx int, plan *wf.Workflow) int64 {
	h := fnv.New64a()
	h.Write([]byte(signature(plan)))
	return int64(h.Sum64()&0x7fffffffffffffff) ^ int64(unitIdx)
}
