package optimizer

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Test workflow: the J5 -> J7 chain plus an optional sibling J6 (a
// miniature of Figure 1's lower half, same schema conventions).

func m5(key, value keyval.Tuple, emit wf.Emit) {
	o := key[0].(int64)
	if o >= 50 && o < 500 {
		emit(keyval.T(o, value[1]), keyval.T(value[2]))
	}
}

func m6(key, value keyval.Tuple, emit wf.Emit) {
	o := key[0].(int64)
	if o < 100 {
		emit(keyval.T(value[0], value[1]), keyval.T(value[2]))
	}
}

func m7(key, value keyval.Tuple, emit wf.Emit) { emit(keyval.T(key[0]), value) }

func sumP(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

func maxP(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var m int64
	for _, v := range values {
		if v[0].(int64) > m {
			m = v[0].(int64)
		}
	}
	emit(key, keyval.T(m))
}

func buildChain(withJ6 bool) *wf.Workflow {
	j5 := &wf.Job{
		ID: "J5", Config: wf.DefaultConfig(), Origin: []string{"J5"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D4",
			Stages: []wf.Stage{wf.MapStage("M5", m5, 1e-6)},
			KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O", "Z"}, ValOut: []string{"P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D5",
			Stages: []wf.Stage{wf.ReduceStage("R5", sumP, nil, 1e-6)},
			KeyIn:  []string{"O", "Z"}, ValIn: []string{"P"},
			KeyOut: []string{"O", "Z"}, ValOut: []string{"sumP"},
		}},
	}
	j7 := &wf.Job{
		ID: "J7", Config: wf.DefaultConfig(), Origin: []string{"J7"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D5",
			Stages: []wf.Stage{wf.MapStage("M7", m7, 1e-6)},
			KeyIn:  []string{"O", "Z"}, ValIn: []string{"sumP"},
			KeyOut: []string{"O"}, ValOut: []string{"sumP"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D7",
			Stages: []wf.Stage{wf.ReduceStage("R7", maxP, nil, 1e-6)},
			KeyIn:  []string{"O"}, ValIn: []string{"sumP"},
			KeyOut: []string{"O"}, ValOut: []string{"maxP"},
		}},
	}
	w := &wf.Workflow{
		Name: "chain",
		Jobs: []*wf.Job{j5, j7},
		Datasets: []*wf.Dataset{
			{ID: "D4", Base: true, KeyFields: []string{"O"}, ValueFields: []string{"S", "Z", "P"}},
			{ID: "D5", KeyFields: []string{"O", "Z"}, ValueFields: []string{"sumP"}},
			{ID: "D7", KeyFields: []string{"O"}, ValueFields: []string{"maxP"}},
		},
	}
	if withJ6 {
		j6 := &wf.Job{
			ID: "J6", Config: wf.DefaultConfig(), Origin: []string{"J6"},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "D4",
				Stages: []wf.Stage{wf.MapStage("M6", m6, 1e-6)},
				Filter: &wf.Filter{Field: "O", Interval: keyval.Interval{Hi: int64(100)}},
				KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
				KeyOut: []string{"S", "Z"}, ValOut: []string{"P"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: "D6",
				Stages: []wf.Stage{wf.ReduceStage("R6", sumP, nil, 1e-6)},
				KeyIn:  []string{"S", "Z"}, ValIn: []string{"P"},
				KeyOut: []string{"S", "Z"}, ValOut: []string{"sumP"},
			}},
		}
		w.Jobs = append(w.Jobs, j6)
		w.Datasets = append(w.Datasets, &wf.Dataset{ID: "D6", KeyFields: []string{"S", "Z"}, ValueFields: []string{"sumP"}})
	}
	return w
}

func genD4(n int, seed int64) []keyval.Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]keyval.Pair, n)
	for i := range out {
		out[i] = keyval.Pair{
			Key:   keyval.T(int64(r.Intn(600))),
			Value: keyval.T(int64(r.Intn(20)), int64(r.Intn(10)), int64(r.Intn(100))),
		}
	}
	return out
}

func newDFS(t *testing.T, pairs []keyval.Pair) *mrsim.DFS {
	t.Helper()
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("D4", pairs, mrsim.IngestSpec{
		NumPartitions: 6,
		KeyFields:     []string{"O"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}},
	}); err != nil {
		t.Fatal(err)
	}
	return dfs
}

func testCluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.VirtualScale = 3000
	return c
}

func annotated(t *testing.T, withJ6 bool, pairs []keyval.Pair) (*wf.Workflow, *mrsim.DFS, *mrsim.Cluster) {
	t.Helper()
	w := buildChain(withJ6)
	dfs := newDFS(t, pairs)
	cl := testCluster()
	if err := profile.NewProfiler(cl, 1.0, 1).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	return w, dfs, cl
}

func collectSinks(t *testing.T, w *wf.Workflow, dfs *mrsim.DFS) (map[string][]keyval.Pair, float64) {
	t.Helper()
	rep, err := mrsim.NewEngine(testCluster(), dfs).RunWorkflow(w)
	if err != nil {
		t.Fatalf("run %s: %v", w.Name, err)
	}
	out := map[string][]keyval.Pair{}
	for _, d := range w.SinkDatasets() {
		stored, _ := dfs.Get(d.ID)
		pairs := stored.AllPairs()
		sort.Slice(pairs, func(i, j int) bool {
			if c := keyval.Compare(pairs[i].Key, pairs[j].Key); c != 0 {
				return c < 0
			}
			return keyval.Compare(pairs[i].Value, pairs[j].Value) < 0
		})
		out[d.ID] = pairs
	}
	return out, rep.Makespan
}

func TestOptimizePacksChainToOneJob(t *testing.T) {
	pairs := genD4(8000, 1)
	w, _, cl := annotated(t, false, pairs)
	res, err := New(cl, Options{Seed: 7}).Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Jobs) != 1 {
		t.Fatalf("optimized plan has %d jobs, want 1 (intra+inter packing): %s",
			len(res.Plan.Jobs), res.Plan.Summary())
	}
	if res.EstimatedCost <= 0 {
		t.Error("no estimated cost")
	}
	if res.Duration <= 0 {
		t.Error("no duration recorded")
	}
	// Equivalence and actual improvement.
	before, tBefore := collectSinks(t, w, newDFS(t, pairs))
	after, tAfter := collectSinks(t, res.Plan, newDFS(t, pairs))
	pa, pb := before["D7"], after["D7"]
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("results differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if keyval.Compare(pa[i].Key, pb[i].Key) != 0 || keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
			t.Fatalf("results differ at %d", i)
		}
	}
	if tAfter >= tBefore {
		t.Errorf("optimized plan slower: %v vs %v", tAfter, tBefore)
	}
}

func TestOptimizeVerticalOnlyGroup(t *testing.T) {
	pairs := genD4(6000, 2)
	w, _, cl := annotated(t, true, pairs)
	res, err := New(cl, Options{Groups: GroupVertical, Seed: 3}).Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical packs J5+J7; J6 stays separate (no horizontal pass).
	if len(res.Plan.Jobs) != 2 {
		t.Fatalf("vertical-only plan has %d jobs, want 2: %s", len(res.Plan.Jobs), res.Plan.Summary())
	}
	for _, j := range res.Plan.Jobs {
		if len(j.ReduceGroups) > 1 {
			t.Error("vertical-only plan contains horizontally packed job")
		}
	}
}

func TestOptimizeHorizontalOnlyGroup(t *testing.T) {
	pairs := genD4(6000, 3)
	w, _, cl := annotated(t, true, pairs)
	res, err := New(cl, Options{Groups: GroupHorizontal, Seed: 4}).Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	// No vertical packing may appear.
	for _, j := range res.Plan.Jobs {
		for _, g := range j.ReduceGroups {
			if g.RunsMapSide {
				t.Error("horizontal-only plan contains vertical packing")
			}
		}
	}
	// Equivalence still holds whatever was chosen.
	before, _ := collectSinks(t, w, newDFS(t, pairs))
	after, _ := collectSinks(t, res.Plan, newDFS(t, pairs))
	for ds, pa := range before {
		if len(after[ds]) != len(pa) {
			t.Fatalf("sink %s differs", ds)
		}
	}
}

func TestOptimizeWithoutProfilesFallsBack(t *testing.T) {
	// No annotations at all: cost model falls back to #jobs; the optimizer
	// still packs (minimizing jobs) and does not crash.
	w := buildChain(false)
	cl := testCluster()
	res, err := New(cl, Options{Seed: 5}).Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Jobs) > 2 {
		t.Errorf("fallback plan grew: %d jobs", len(res.Plan.Jobs))
	}
	foundFallback := false
	for _, u := range res.Units {
		for _, sp := range u.Subplans {
			if sp.Fallback {
				foundFallback = true
			}
		}
	}
	if !foundFallback {
		t.Error("expected fallback costing in unit reports")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	pairs := genD4(5000, 6)
	run := func() string {
		w, _, cl := annotated(t, true, pairs)
		res, err := New(cl, Options{Seed: 11}).Optimize(w)
		if err != nil {
			t.Fatal(err)
		}
		return signature(res.Plan) + res.Plan.Jobs[0].Config.String()
	}
	if run() != run() {
		t.Error("optimization not deterministic")
	}
}

func TestUnitReportsTraceSearch(t *testing.T) {
	pairs := genD4(5000, 7)
	w, _, cl := annotated(t, true, pairs)
	res, err := New(cl, Options{Seed: 8, KeepSubplans: true}).Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) == 0 {
		t.Fatal("no unit reports")
	}
	phases := map[string]bool{}
	for _, u := range res.Units {
		phases[u.Phase] = true
		if len(u.Subplans) == 0 {
			t.Error("unit with no subplans")
		}
		if u.ChosenIdx < 0 || u.ChosenIdx >= len(u.Subplans) {
			t.Error("chosen index out of range")
		}
		for _, sp := range u.Subplans {
			if sp.Plan == nil {
				t.Error("KeepSubplans did not retain plans")
			}
			if sp.Description == "" {
				t.Error("subplan without description")
			}
		}
	}
	if !phases["vertical"] || !phases["horizontal"] {
		t.Errorf("phases covered: %v", phases)
	}
	// The first vertical unit of the chain should enumerate the identity,
	// the intra packing, and the intra+inter packing (paper Figure 10
	// style: a handful of unique subplans).
	first := res.Units[0]
	var descs []string
	for _, sp := range first.Subplans {
		descs = append(descs, sp.Description)
	}
	joined := strings.Join(descs, " | ")
	if !strings.Contains(joined, "no structural change") {
		t.Errorf("identity subplan missing: %s", joined)
	}
	if !strings.Contains(joined, "intra-vertical(J7)") {
		t.Errorf("intra-vertical subplan missing: %s", joined)
	}
}

func TestConfigSpaceShape(t *testing.T) {
	w := buildChain(false)
	s := New(testCluster(), Options{})
	origins := map[string]bool{"J5": true, "J7": true}
	dims := s.configSpace(w, origins)
	names := map[string]bool{}
	for _, d := range dims {
		names[d.param.Name] = true
	}
	for _, want := range []string{"J5.reduce", "J5.split", "J5.sortbuf", "J5.outcomp", "J7.reduce"} {
		if !names[want] {
			t.Errorf("missing config dimension %s (have %v)", want, names)
		}
	}
	if names["J5.combiner"] {
		t.Error("combiner dimension offered without a combiner")
	}
	// Aligned jobs lose the split dimension; map-only jobs lose reduce dims.
	w2 := w.Clone()
	w2.Job("J7").AlignMapToInput = true
	w2.Job("J7").ReduceGroups[0].RunsMapSide = true
	dims2 := s.configSpace(w2, origins)
	for _, d := range dims2 {
		if d.param.Name == "J7.split" || d.param.Name == "J7.reduce" {
			t.Errorf("dimension %s should be removed", d.param.Name)
		}
	}
	// Tied reduce groups collapse to one dimension.
	w3 := w.Clone()
	w3.Job("J5").ReduceCountGroup = "tied-x"
	w3.Job("J7").ReduceCountGroup = "tied-x"
	dims3 := s.configSpace(w3, origins)
	tiedCount := 0
	for _, d := range dims3 {
		if d.param.Name == "tied-x.reduce" {
			tiedCount++
			if len(d.jobs) != 2 {
				t.Error("tied dimension should span both jobs")
			}
		}
		if d.param.Name == "J5.reduce" || d.param.Name == "J7.reduce" {
			t.Error("tied jobs should not keep individual reduce dims")
		}
	}
	if tiedCount != 1 {
		t.Errorf("tied dims = %d, want 1", tiedCount)
	}
}

func TestSignatureDistinguishesStructure(t *testing.T) {
	a := buildChain(false)
	b := buildChain(false)
	if signature(a) != signature(b) {
		t.Error("identical plans have different signatures")
	}
	b.Job("J7").AlignMapToInput = true
	if signature(a) == signature(b) {
		t.Error("alignment change not reflected in signature")
	}
	c := buildChain(false)
	c.Job("J5").Config.NumReduceTasks = 40
	if signature(a) != signature(c) {
		t.Error("configuration change should not affect the structural signature")
	}
}

func TestInitialFrontierAndConsumers(t *testing.T) {
	w := buildChain(true)
	front := initialFrontier(w)
	sort.Strings(front)
	if len(front) != 2 || front[0] != "J5" || front[1] != "J6" {
		t.Errorf("initial frontier = %v", front)
	}
	cons := unitConsumers(w, front)
	if len(cons) != 1 || cons[0] != "J7" {
		t.Errorf("unit consumers = %v", cons)
	}
}
