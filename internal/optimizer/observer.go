package optimizer

// Observer receives progress events from the optimizer's search. Methods
// are called synchronously from the search loop — in enumeration order even
// when subplan tuning runs in parallel — so implementations should return
// quickly. A nil observer disables reporting.
type Observer interface {
	// UnitStarted fires when the traversal opens optimization unit `unit`
	// (a global index across phases) holding the given job IDs.
	UnitStarted(phase string, unit int, jobs []string)
	// SubplanEnumerated fires once per enumerated subplan after its
	// configuration search, with its best estimated cost.
	SubplanEnumerated(unit int, desc string, cost float64)
	// BestCostImproved fires when a subplan displaces the unit's incumbent.
	BestCostImproved(unit int, desc string, cost float64)
}
