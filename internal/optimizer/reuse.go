package optimizer

import (
	"context"

	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// ReuseSource resolves rooted sub-plan fingerprints (wf.SubplanFingerprint)
// to previously materialized results — implemented by catalog.Store. A
// lookup that returns ok reports a result whose records are guaranteed
// identical to what the fingerprinted sub-DAG would produce.
type ReuseSource interface {
	Lookup(fp wf.Fingerprint) (trans.StoredResult, bool)
}

// applyReuse is the ReStore-style pre-pass, run before the structural
// phases when Options.ReuseCatalog is set: greedily replace catalog-matched
// rooted sub-DAGs with scans of their stored results, adopting a rewrite
// only when the What-if estimate says scanning beats recomputing. Each
// round fingerprints every candidate intermediate dataset, applies the
// single best strictly-cheaper rewrite, and repeats until no rewrite
// improves the plan (each adoption removes at least one job, so the loop
// terminates). Returns the (possibly) rewritten plan and how many sub-DAGs
// were replaced.
//
// Rewrites are compared within one estimation regime: a candidate whose
// estimate falls back to #jobs costing while the current plan estimates
// fully (or vice versa) is never adopted on that incomparable number.
func (s *Stubby) applyReuse(ctx context.Context, plan *wf.Workflow) (*wf.Workflow, int, error) {
	reused := 0
	h := wf.NewHasher()
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		// Collect applicable rewrites before estimating anything: a plan
		// with no catalog match must cost zero What-if calls, so attaching
		// a (cold or unrelated) catalog never perturbs estimate counters.
		var rewrites []*wf.Workflow
		for _, d := range plan.Datasets {
			if d.Base || len(plan.Consumers(d.ID)) == 0 {
				continue
			}
			fp, ok := h.Subplan(plan, d.ID)
			if !ok {
				continue
			}
			stored, ok := s.opt.ReuseCatalog.Lookup(fp)
			if !ok {
				continue
			}
			if trans.CanReuse(plan, d.ID, stored) != nil {
				continue
			}
			rewritten, err := trans.ApplyReuse(plan, d.ID, stored)
			if err != nil {
				continue
			}
			rewrites = append(rewrites, rewritten)
		}
		if len(rewrites) == 0 {
			return plan, reused, nil
		}
		base, err := s.est.Estimate(plan)
		if err != nil {
			return nil, 0, err
		}
		var bestPlan *wf.Workflow
		var bestEst *whatif.Estimate
		for _, rewritten := range rewrites {
			est, err := s.est.Estimate(rewritten)
			if err != nil {
				continue
			}
			if est.Fallback != base.Fallback || est.Makespan >= base.Makespan {
				continue
			}
			if bestEst == nil || est.Makespan < bestEst.Makespan {
				bestPlan, bestEst = rewritten, est
			}
		}
		if bestPlan == nil {
			return plan, reused, nil
		}
		plan = bestPlan
		reused++
	}
}
