// Package optimizer implements Stubby's enumeration and search strategy
// (Section 4): a two-phase greedy traversal that generates optimization
// units dynamically in topological sort order, exhaustively enumerates the
// structural transformations applicable within each unit, searches the
// configuration space of each enumerated subplan with Recursive Random
// Search, and retains the subplan with the lowest What-if cost.
package optimizer

import (
	"context"
	"time"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/whatif/estcache"
)

// Groups selects which transformation groups the optimizer applies
// (Section 4: the Vertical and Horizontal groups both include the partition
// function and configuration transformations).
type Groups int

const (
	// GroupVertical enables intra- and inter-job vertical packing (plus
	// partition and configuration transformations).
	GroupVertical Groups = 1 << iota
	// GroupHorizontal enables horizontal packing (plus partition and
	// configuration transformations).
	GroupHorizontal
	// GroupConfigOnly traverses the workflow applying only configuration
	// transformations — the Starfish comparator's plan space (Section 7.3).
	GroupConfigOnly
	// GroupAll is full Stubby.
	GroupAll = GroupVertical | GroupHorizontal
)

// Options tunes the search.
type Options struct {
	// Groups selects transformation groups (default GroupAll).
	Groups Groups
	// RRSEvals bounds configuration-search evaluations per subplan.
	// Zero (the default) sizes the budget adaptively to the number of
	// configuration dimensions, keeping tuning quality comparable across
	// subplans of different shapes.
	RRSEvals int
	// MaxSubplans caps structural enumeration per optimization unit
	// (default 64; the paper observes real units yield only a handful).
	MaxSubplans int
	// Seed drives deterministic search.
	Seed int64
	// KeepSubplans retains every enumerated subplan in the unit reports
	// (used by the Figure 14 deep-dive).
	KeepSubplans bool
	// DisablePartition turns the partition function transformation off
	// (comparators like MRShare do not consider it — Section 7.3).
	DisablePartition bool
	// DisableConfigSearch keeps job configurations as provided instead of
	// searching them (rule-configured comparators).
	DisableConfigSearch bool
	// Custom registers additional structural transformations, extending
	// the optimizer EXODUS-style (Section 1: "Stubby allows new
	// transformations to be added to extend the optimizer's functionality
	// easily"). Custom transformations participate in both structural
	// phases and compete on estimated cost like the built-ins.
	Custom []Transformation
	// ConfigSearch selects the configuration-search strategy. The default
	// is RRS; SearchRandom degrades to uniform sampling under the same
	// evaluation budget (the ablation of RRS's recursion).
	ConfigSearch SearchStrategy
	// HorizontalFirst reverses the two structural phases, applying the
	// Horizontal group before the Vertical group — the ablation of the
	// paper's ordering argument (Section 4: horizontal packing first can
	// prevent later vertical packing).
	HorizontalFirst bool
	// GlobalUnit optimizes the whole workflow as a single optimization
	// unit instead of traversing dynamically generated units — the
	// ablation of the divide-and-conquer strategy (Section 4.1). Raise
	// MaxSubplans when enabling this on larger workflows.
	GlobalUnit bool
	// Observer receives search progress events (nil disables reporting).
	Observer Observer
	// Parallelism bounds concurrent configuration searches over a unit's
	// enumerated subplans (<=1 searches serially). Results are identical
	// at any parallelism: per-subplan seeds derive from structure, and
	// selection replays in enumeration order.
	Parallelism int
	// EstimateCache, when non-nil, memoizes What-if estimates under
	// canonical workflow fingerprints: revisited cost-equivalent plans
	// (duplicate RRS samples, phase-boundary re-estimates, repeated or
	// shared workflows when the cache is shared across optimizers) reuse
	// the cached answer. Caching is transparent — estimates are pure
	// functions of (plan, cluster), so plans and costs are identical with
	// or without it; the differential test suite enforces this.
	EstimateCache *estcache.Cache
	// Robustness, when non-nil, closes the fault-aware simulator into plan
	// selection: the final plan carries a Monte-Carlo whatif.Robustness
	// report, and candidates within robustnessTieBand of a unit's best
	// cost are re-ranked on p99 makespan under perturbation instead of
	// mean estimated cost — near-ties on the clean-cluster estimate break
	// toward the plan that degrades least under faults. A model that
	// cannot perturb anything (all rates zero, no node classes) reports
	// but never re-ranks, so it cannot change the chosen plan.
	Robustness *whatif.RobustnessOptions
	// DisableIncremental forces every configuration-search probe through
	// the monolithic What-if estimator instead of the incremental
	// (prepared) path that delta-estimates only the jobs a probe affects.
	// Incremental estimation is bit-transparent — plans and costs are
	// identical either way (the differential suite and equivalence fuzz
	// tests enforce it) — so this is an escape hatch for debugging and for
	// measuring the incremental path's speedup, not a semantic knob.
	DisableIncremental bool
	// ReuseCatalog, when non-nil, enables the ReStore-style sub-plan reuse
	// pre-pass: before the structural phases, rooted sub-DAGs whose
	// fingerprints match a previously materialized result are replaced with
	// scans of the stored output — but only when the What-if estimate says
	// scanning beats recomputing. With a nil catalog (the default) the
	// pre-pass never runs and plans are byte-identical to earlier releases.
	ReuseCatalog ReuseSource
}

// SearchStrategy selects how configuration transformations are searched.
type SearchStrategy int

const (
	// SearchRRS is Recursive Random Search (the paper's choice).
	SearchRRS SearchStrategy = iota
	// SearchRandom is uniform random sampling with the same budget.
	SearchRandom
)

// Transformation is a user-defined structural transformation. Like the
// built-in transformations it must be semantics-preserving: every proposed
// plan must produce the same results as the input plan, and must only be
// proposed when its preconditions are verifiable from the annotations
// present (the information-spectrum contract).
type Transformation interface {
	// Name labels the transformation in search traces.
	Name() string
	// Apply proposes zero or more rewritten plans. The input plan must not
	// be modified; unitJobs lists the current job IDs of the optimization
	// unit under search, and proposals should restructure only those jobs.
	// Jobs merged by a proposal must union their Origin lists, as the
	// built-in packing transformations do. Invalid proposals are discarded
	// by the optimizer.
	Apply(plan *wf.Workflow, unitJobs []string) []Proposal
}

// Proposal is one plan rewrite offered by a custom Transformation.
type Proposal struct {
	// Plan is the rewritten workflow.
	Plan *wf.Workflow
	// Desc describes this specific rewrite (defaults to the
	// transformation's name in search traces).
	Desc string
}

func (o Options) withDefaults() Options {
	if o.Groups == 0 {
		o.Groups = GroupAll
	}
	if o.MaxSubplans <= 0 {
		o.MaxSubplans = 64
	}
	return o
}

// searchEstimator is what the search needs from a cost estimator: the
// What-if answer plus activity counters. Implemented by whatif.Estimator
// (direct) and estcache.Estimator (memoized through a shared cache). Both
// also implement incrementalPreparer; the interfaces are split so custom
// estimators without an incremental path still plug in.
type searchEstimator interface {
	Estimate(w *wf.Workflow) (*whatif.Estimate, error)
	Counts() whatif.Counts
}

// incrementalPreparer is the optional fast path of a searchEstimator:
// prepare one plan for repeated re-estimation under configuration probes
// that mutate only the declared jobs.
type incrementalPreparer interface {
	Prepare(w *wf.Workflow, changedJobIDs []string) (*whatif.Prepared, error)
}

// Stubby is the transformation-based workflow optimizer.
type Stubby struct {
	cluster *mrsim.Cluster
	est     searchEstimator
	// estPool hands one private estimator to each concurrent subplan
	// search (nil when Parallelism <= 1). Pool lifetime spans the whole
	// search, so per-estimator memoization (skew, fingerprints) persists
	// across units and phases just as the serial path's single estimator
	// does. With Options.EstimateCache the pool estimators additionally
	// share the concurrent-safe estimate cache.
	estPool chan searchEstimator
	// allEsts lists every estimator ever handed out, for counter sums.
	allEsts []searchEstimator
	opt     Options
}

// New builds an optimizer for the given cluster.
func New(cluster *mrsim.Cluster, opt Options) *Stubby {
	s := &Stubby{cluster: cluster, opt: opt.withDefaults()}
	s.est = s.newEstimator()
	if s.opt.Parallelism > 1 {
		s.estPool = make(chan searchEstimator, s.opt.Parallelism)
		for i := 0; i < s.opt.Parallelism; i++ {
			s.estPool <- s.newEstimator()
		}
	}
	return s
}

// newEstimator builds one private (not concurrent-safe) estimator, fronted
// by the shared estimate cache when one is configured.
func (s *Stubby) newEstimator() searchEstimator {
	inner := whatif.New(s.cluster)
	var est searchEstimator = inner
	if s.opt.EstimateCache != nil {
		est = estcache.NewEstimator(s.opt.EstimateCache, inner)
	}
	s.allEsts = append(s.allEsts, est)
	return est
}

// whatIfCounts sums what-if activity across every estimator of the search.
// Only call while no search goroutines are running (between optimizations).
func (s *Stubby) whatIfCounts() whatif.Counts {
	var total whatif.Counts
	for _, e := range s.allEsts {
		total.Add(e.Counts())
	}
	return total
}

// SubplanReport records one enumerated subplan of a unit.
type SubplanReport struct {
	// Description lists the structural transformations applied.
	Description string
	// Cost is the What-if estimate after configuration search.
	Cost float64
	// Fallback marks #jobs costing.
	Fallback bool
	// Plan is retained under Options.KeepSubplans, with its best
	// configuration applied.
	Plan *wf.Workflow
}

// UnitReport records one optimization unit's search.
type UnitReport struct {
	Phase     string
	Producers []string
	Consumers []string
	Subplans  []SubplanReport
	ChosenIdx int
}

// Result is the outcome of optimization.
type Result struct {
	// Plan is the optimized workflow.
	Plan *wf.Workflow
	// EstimatedCost is the What-if estimate of the final plan.
	EstimatedCost float64
	// Units traces the search, in traversal order.
	Units []UnitReport
	// Duration is the optimizer's own (real) running time.
	Duration time.Duration
	// WhatIfCalls is the number of What-if estimate requests the search
	// issued (candidate subplans × configuration samples, plus the final
	// plan estimate). Incremental delta estimates count as requests.
	WhatIfCalls uint64
	// WhatIfComputed is how many of those requests ran the full monolithic
	// estimator. Delta estimates are partial computations and are excluded
	// — their cost shows up in FlowCards; with Options.EstimateCache the
	// difference additionally reflects the work the cache absorbed.
	WhatIfComputed uint64
	// FlowCards is the number of per-job flow computations the search
	// performed — the estimator's expensive unit of work, and the number
	// incremental estimation drives down (a full estimate of an n-job plan
	// costs n cards; a delta estimate costs only the affected cone).
	FlowCards uint64
	// Robustness, under Options.Robustness, is the final plan's Monte-
	// Carlo makespan distribution under the configured fault model (nil
	// when the plan lacks the annotations for cost-based estimation).
	Robustness *whatif.Robustness
	// FromStore marks a result answered from a persistent plan store
	// (stubby.WithPlanStore) instead of a fresh search. Such results carry
	// the stored plan and cost but no search trace, and their What-if
	// counters are zero — no optimizer units ran.
	FromStore bool
	// ReusedSubplans counts rooted sub-DAGs the reuse pre-pass replaced
	// with scans of catalog-stored results (zero without
	// Options.ReuseCatalog).
	ReusedSubplans int
}

// Optimize runs the two-phase search and returns the optimized plan. The
// input plan is not modified.
func (s *Stubby) Optimize(w *wf.Workflow) (*Result, error) {
	return s.OptimizeContext(context.Background(), w)
}

// OptimizeContext is Optimize under a context: cancellation is checked
// between optimization units and between RRS evaluations, so long searches
// stop promptly with ctx.Err(). The input plan is not modified either way.
func (s *Stubby) OptimizeContext(ctx context.Context, w *wf.Workflow) (*Result, error) {
	start := time.Now()
	counts0 := s.whatIfCounts()
	if err := w.Validate(); err != nil {
		return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "optimize",
			Workflow: w.Name, Err: err}
	}
	plan := w.Clone()
	res := &Result{}
	var err error
	if s.opt.ReuseCatalog != nil {
		plan, res.ReusedSubplans, err = s.applyReuse(ctx, plan)
		if err != nil {
			return nil, err
		}
	}
	phases := []phaseSpec{
		{name: "vertical", vertical: true},
		{name: "horizontal", horizontal: true},
	}
	if s.opt.HorizontalFirst {
		phases[0], phases[1] = phases[1], phases[0]
	}
	for _, ph := range phases {
		if ph.vertical && s.opt.Groups&GroupVertical == 0 {
			continue
		}
		if ph.horizontal && s.opt.Groups&GroupHorizontal == 0 {
			continue
		}
		plan, err = s.traverse(ctx, plan, ph, res)
		if err != nil {
			return nil, err
		}
	}
	if s.opt.Groups&GroupConfigOnly != 0 && s.opt.Groups&GroupAll == 0 {
		plan, err = s.traverse(ctx, plan, phaseSpec{name: "config", configOnly: true}, res)
		if err != nil {
			return nil, err
		}
	}
	est, err := s.est.Estimate(plan)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.EstimatedCost = est.Makespan
	if s.opt.Robustness != nil && !est.Fallback {
		rob, rerr := s.robustness(ctx, plan)
		if rerr != nil {
			return nil, rerr
		}
		res.Robustness = rob
	}
	res.Duration = time.Since(start)
	counts1 := s.whatIfCounts()
	res.WhatIfCalls = counts1.Requests - counts0.Requests
	res.WhatIfComputed = counts1.Computed - counts0.Computed
	res.FlowCards = counts1.FlowCards - counts0.FlowCards
	return res, nil
}

// robustnessEstimator is the optional Monte-Carlo replay capability of a
// searchEstimator (whatif.Estimator directly, estcache.Estimator by
// forwarding — replays are cheap and never cached).
type robustnessEstimator interface {
	Robustness(ctx context.Context, w *wf.Workflow, opt whatif.RobustnessOptions) (*whatif.Robustness, error)
}

// robustness evaluates a plan under Options.Robustness through the
// search's estimator (falling back to a fresh direct estimator for custom
// searchEstimator implementations without the capability).
func (s *Stubby) robustness(ctx context.Context, plan *wf.Workflow) (*whatif.Robustness, error) {
	re, ok := s.est.(robustnessEstimator)
	if !ok {
		re = whatif.New(s.cluster)
	}
	return re.Robustness(ctx, plan, *s.opt.Robustness)
}

// phaseSpec selects which transformations a traversal pass applies.
type phaseSpec struct {
	name       string
	vertical   bool
	horizontal bool
	configOnly bool
}

// traverse walks the workflow in topological order, generating optimization
// units dynamically (Section 4.1) and optimizing each (Section 4.2). Each
// unit holds the current frontier (concurrently-runnable producer jobs) and
// every job consuming their outputs; the next frontier is wherever those
// consumers ended up after the unit's transformations (Figure 9).
func (s *Stubby) traverse(ctx context.Context, plan *wf.Workflow, ph phaseSpec, res *Result) (*wf.Workflow, error) {
	if s.opt.GlobalUnit {
		unit := make([]string, 0, len(plan.Jobs))
		for _, j := range plan.Jobs {
			unit = append(unit, j.ID)
		}
		newPlan, report, err := s.optimizeUnit(ctx, plan, unit, ph, len(res.Units))
		if err != nil {
			return nil, err
		}
		report.Phase = ph.name
		report.Producers = unit
		res.Units = append(res.Units, *report)
		return newPlan, nil
	}
	frontier := initialFrontier(plan)
	for iter := 0; len(frontier) > 0 && iter <= len(plan.Jobs)+len(res.Units)+4; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		consumers := unitConsumers(plan, frontier)
		unit := append(append([]string{}, frontier...), consumers...)
		var consOrigins []string
		for _, id := range consumers {
			consOrigins = append(consOrigins, plan.Job(id).Origin...)
		}
		newPlan, report, err := s.optimizeUnit(ctx, plan, unit, ph, len(res.Units))
		if err != nil {
			return nil, err
		}
		report.Phase = ph.name
		report.Producers = frontier
		report.Consumers = consumers
		res.Units = append(res.Units, *report)
		plan = newPlan
		if len(consumers) == 0 {
			break
		}
		frontier = jobsContainingOrigins(plan, consOrigins)
	}
	return plan, nil
}

// initialFrontier returns jobs with no producing jobs, in plan order.
func initialFrontier(plan *wf.Workflow) []string {
	var out []string
	for _, j := range plan.Jobs {
		if len(plan.JobProducers(j)) == 0 {
			out = append(out, j.ID)
		}
	}
	return out
}

// unitConsumers returns the jobs consuming the frontier's outputs (the
// unit's consumer set), excluding frontier members themselves.
func unitConsumers(plan *wf.Workflow, frontier []string) []string {
	inFrontier := map[string]bool{}
	for _, id := range frontier {
		inFrontier[id] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, id := range frontier {
		for _, jc := range plan.JobConsumers(plan.Job(id)) {
			if seen[jc.ID] || inFrontier[jc.ID] {
				continue
			}
			seen[jc.ID] = true
			out = append(out, jc.ID)
		}
	}
	return out
}

// jobsContainingOrigins returns current jobs holding any of the given
// original job IDs.
func jobsContainingOrigins(plan *wf.Workflow, origins []string) []string {
	want := map[string]bool{}
	for _, o := range origins {
		want[o] = true
	}
	var out []string
	for _, j := range plan.Jobs {
		for _, o := range j.Origin {
			if want[o] {
				out = append(out, j.ID)
				break
			}
		}
	}
	return out
}
