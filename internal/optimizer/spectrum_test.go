package optimizer

import (
	"reflect"
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Information-spectrum tests: Stubby must "search selectively through the
// subspace of the full plan space that can be enumerated correctly and
// costed based on the information available in any given setting", and
// must work correctly (if not optimally) when annotations are stripped.

// stripSchemas removes every schema annotation from a plan.
func stripSchemas(w *wf.Workflow) *wf.Workflow {
	out := w.Clone()
	for _, j := range out.Jobs {
		for i := range j.MapBranches {
			b := &j.MapBranches[i]
			b.KeyIn, b.ValIn, b.KeyOut, b.ValOut = nil, nil, nil, nil
		}
		for i := range j.ReduceGroups {
			g := &j.ReduceGroups[i]
			g.KeyIn, g.ValIn, g.KeyOut, g.ValOut = nil, nil, nil, nil
		}
	}
	for _, d := range out.Datasets {
		d.KeyFields, d.ValueFields = nil, nil
	}
	return out
}

// stripFilters removes every filter annotation.
func stripFilters(w *wf.Workflow) *wf.Workflow {
	out := w.Clone()
	for _, j := range out.Jobs {
		for i := range j.MapBranches {
			j.MapBranches[i].Filter = nil
		}
	}
	return out
}

// stripProfiles removes every profile annotation and dataset size estimate.
func stripProfiles(w *wf.Workflow) *wf.Workflow {
	out := w.Clone()
	for _, j := range out.Jobs {
		j.Profile = nil
	}
	for _, d := range out.Datasets {
		d.EstRecords, d.EstBytes, d.EstPartitions = 0, 0, 0
	}
	return out
}

func descriptions(res *Result) string {
	var b strings.Builder
	for _, u := range res.Units {
		for _, sp := range u.Subplans {
			b.WriteString(sp.Description)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func runSinks(t *testing.T, cl *mrsim.Cluster, dfs *mrsim.DFS, plan *wf.Workflow) map[string][]keyval.Pair {
	t.Helper()
	d := dfs.Clone()
	if _, err := mrsim.NewEngine(cl, d).RunWorkflow(plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := map[string][]keyval.Pair{}
	for _, ds := range plan.SinkDatasets() {
		st, ok := d.Get(ds.ID)
		if !ok {
			t.Fatalf("sink %s missing", ds.ID)
		}
		pairs := st.AllPairs()
		keyval.SortPairs(pairs, nil)
		out[ds.ID] = pairs
	}
	return out
}

// TestSpectrumNoSchemasDisablesVerticalPacking: without schema annotations
// the flow-unchanged precondition cannot be verified, so no intra-job
// vertical packing may be enumerated — but optimization must still succeed
// and preserve results (Section 8: "if schema annotations are not
// available, then Stubby will not consider intra-job vertical packing").
func TestSpectrumNoSchemasDisablesVerticalPacking(t *testing.T) {
	full, dfs, cl := annotated(t, false, genD4(4000, 3))

	resFull, err := New(cl, Options{Seed: 1}).Optimize(full)
	if err != nil {
		t.Fatalf("optimize full: %v", err)
	}
	if !strings.Contains(descriptions(resFull), "intra-vertical") {
		t.Fatal("fixture lost its intra-vertical opportunity; test is vacuous")
	}

	bare := stripSchemas(full)
	resBare, err := New(cl, Options{Seed: 1}).Optimize(bare)
	if err != nil {
		t.Fatalf("optimize without schemas: %v", err)
	}
	if d := descriptions(resBare); strings.Contains(d, "intra-vertical") {
		t.Fatalf("intra-vertical packing enumerated without schema annotations:\n%s", d)
	}
	want := runSinks(t, cl, dfs, full)
	got := runSinks(t, cl, dfs, resBare.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("schema-less optimization changed results")
	}
}

// TestSpectrumNoFiltersDisablesPruningPartitions: filter annotations drive
// the filter-aligned range partitioning proposals (Figure 7); stripping
// them must remove those proposals but nothing else breaks.
func TestSpectrumNoFiltersDisablesPruningPartitions(t *testing.T) {
	full, dfs, cl := annotated(t, true, genD4(4000, 4))
	resFull, err := New(cl, Options{Seed: 1, KeepSubplans: true}).Optimize(full)
	if err != nil {
		t.Fatalf("optimize full: %v", err)
	}
	_ = resFull

	bare := stripFilters(full)
	resBare, err := New(cl, Options{Seed: 1}).Optimize(bare)
	if err != nil {
		t.Fatalf("optimize without filters: %v", err)
	}
	want := runSinks(t, cl, dfs, full)
	got := runSinks(t, cl, dfs, resBare.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("filter-less optimization changed results")
	}
}

// TestSpectrumNoProfilesFallsBackEverywhere: without any profile or size
// annotations, costing falls back to the #jobs model on every subplan and
// the optimizer still returns a valid, equivalent plan (Section 5).
func TestSpectrumNoProfilesFallsBackEverywhere(t *testing.T) {
	full, dfs, cl := annotated(t, false, genD4(4000, 5))
	bare := stripProfiles(full)
	res, err := New(cl, Options{Seed: 1}).Optimize(bare)
	if err != nil {
		t.Fatalf("optimize without profiles: %v", err)
	}
	for _, u := range res.Units {
		for _, sp := range u.Subplans {
			if !sp.Fallback {
				t.Fatalf("subplan %q costed without profiles", sp.Description)
			}
		}
	}
	want := runSinks(t, cl, dfs, full)
	got := runSinks(t, cl, dfs, res.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("profile-less optimization changed results")
	}
	// The #jobs model still prefers packing: the chain must have shrunk.
	if len(res.Plan.Jobs) >= len(bare.Jobs) {
		t.Errorf("#jobs fallback did not pack: %d -> %d jobs", len(bare.Jobs), len(res.Plan.Jobs))
	}
}

// TestSpectrumZeroAnnotations is the extreme end: no schemas, no filters,
// no profiles, no dataset annotations. Stubby must degrade to correct
// passthrough behaviour (#jobs-driven packing only where preconditions
// hold without schemas — i.e. none) and never error.
func TestSpectrumZeroAnnotations(t *testing.T) {
	full, dfs, cl := annotated(t, true, genD4(4000, 6))
	bare := stripProfiles(stripFilters(stripSchemas(full)))
	res, err := New(cl, Options{Seed: 1}).Optimize(bare)
	if err != nil {
		t.Fatalf("optimize with zero annotations: %v", err)
	}
	want := runSinks(t, cl, dfs, full)
	got := runSinks(t, cl, dfs, res.Plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("zero-annotation optimization changed results")
	}
}
