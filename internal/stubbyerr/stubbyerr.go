// Package stubbyerr defines the structured error taxonomy shared by the
// stubby library, the job service, and the wire protocol. Every public
// entry point surfaces failures as a *Error carrying a Kind plus the
// workflow (and, when known, the job) the failure is about, so callers can
// branch with errors.Is/errors.As identically whether the error was raised
// in-process or reconstructed from a stubbyd response.
//
// The package sits below every other internal package (it imports nothing
// but the standard library) so error kinds can be attached at their
// sources — the optimizer, the What-if estimator, the admission queue —
// without import cycles.
package stubbyerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a failure. Kind itself implements error, so sentinels
// like KindOverloaded work directly as errors.Is targets:
//
//	if errors.Is(err, stubbyerr.KindOverloaded) { backoff() }
type Kind int

const (
	// KindInternal is the catch-all for unclassified failures.
	KindInternal Kind = iota
	// KindInvalid marks malformed inputs: invalid workflows, undecodable
	// wire documents, out-of-range options.
	KindInvalid
	// KindUnknownPlanner marks a planner name absent from the registry.
	KindUnknownPlanner
	// KindOverloaded marks a submission shed by a full admission queue.
	// The request was never enqueued; retrying later is safe.
	KindOverloaded
	// KindUnavailable marks a submission rejected because the service is
	// draining or closed.
	KindUnavailable
	// KindNotFound marks an unknown job ID.
	KindNotFound
	// KindConflict marks a request invalid in the job's current state
	// (e.g. fetching the result of a job that has not finished).
	KindConflict
	// KindCanceled marks work stopped by cancellation (context or
	// Handle.Cancel).
	KindCanceled
	// KindDeadline marks work stopped by a deadline.
	KindDeadline
)

// kindNames are the canonical wire spellings, index-aligned with the
// constants above.
var kindNames = [...]string{
	"internal",
	"invalid",
	"unknown_planner",
	"overloaded",
	"unavailable",
	"not_found",
	"conflict",
	"canceled",
	"deadline_exceeded",
}

// String returns the kind's canonical wire spelling.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "internal"
	}
	return kindNames[k]
}

// Error makes Kind usable as an errors.Is target sentinel.
func (k Kind) Error() string { return "stubby: " + k.String() }

// ParseKind maps a wire spelling back to its Kind. Unknown spellings map
// to KindInternal so a newer server never crashes an older client.
func ParseKind(s string) Kind {
	for i, n := range kindNames {
		if n == s {
			return Kind(i)
		}
	}
	return KindInternal
}

// Error is the structured error of the stubby API. Op names the operation
// ("optimize", "submit", "estimate", ...), Workflow and Job locate the
// failure, and exactly one of Err (in-process cause) or Msg (wire-
// transported message) describes it.
type Error struct {
	Kind     Kind
	Op       string
	Workflow string
	Job      string
	Msg      string
	Err      error
}

// Error renders "op: workflow …: job …: kind: cause", omitting empty parts.
func (e *Error) Error() string {
	var b strings.Builder
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	if e.Workflow != "" {
		b.WriteString("workflow ")
		b.WriteString(e.Workflow)
		b.WriteString(": ")
	}
	if e.Job != "" {
		b.WriteString("job ")
		b.WriteString(e.Job)
		b.WriteString(": ")
	}
	b.WriteString(e.Kind.String())
	switch {
	case e.Err != nil:
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	case e.Msg != "":
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	return b.String()
}

// Unwrap exposes the in-process cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches Kind sentinels: errors.Is(err, KindOverloaded) is true for
// any *Error in the chain whose Kind is KindOverloaded.
func (e *Error) Is(target error) bool {
	if k, ok := target.(Kind); ok {
		return e.Kind == k
	}
	return false
}

// New builds an *Error from parts, formatting msg with args.
func New(kind Kind, op, workflow, job, msg string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Workflow: workflow, Job: job, Msg: fmt.Sprintf(msg, args...)}
}

// Classify derives the Kind of an arbitrary error: an *Error keeps its
// kind, context errors map to KindCanceled/KindDeadline, everything else
// is KindInternal.
func Classify(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	switch {
	case errors.Is(err, context.Canceled):
		return KindCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	default:
		return KindInternal
	}
}

// From lifts err into the taxonomy for the given operation and workflow.
// An err that already is (or wraps) an *Error passes through unchanged so
// the innermost source information — the job a What-if estimate failed on,
// the kind the admission queue chose — survives; nil passes through as nil.
func From(op, workflow string, err error) error {
	if err == nil {
		return nil
	}
	var se *Error
	if errors.As(err, &se) {
		return err
	}
	return &Error{Kind: Classify(err), Op: op, Workflow: workflow, Err: err}
}

// WithKind lifts err like From but forces the kind (unless err already
// carries one).
func WithKind(kind Kind, op, workflow string, err error) error {
	if err == nil {
		return nil
	}
	var se *Error
	if errors.As(err, &se) {
		return err
	}
	return &Error{Kind: kind, Op: op, Workflow: workflow, Err: err}
}
