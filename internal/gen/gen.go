// Package gen manufactures random annotated MapReduce workflows with
// materialized synthetic datasets, spanning the plan space Stubby's
// transformations rewrite: fan-in and fan-out DAG shapes, shared inputs,
// map-only and grouped jobs, every ops stage family, skewed and uniform
// key distributions, hash and range partition specs, sorted/partitioned/
// compressed base layouts, and randomized configurations. Each generated
// case is fully executable on the mrsim substrate, and the package's
// oracle (oracle.go) proves that any transformed or optimized plan
// computes the same final answers as the original — the execution-backed
// semantic-equivalence check the transformation and planner test suites
// are built on.
//
// Generation is a pure function of the seed: the same seed always yields
// byte-identical workflows, data, and descriptors, so any failure is
// reproducible with `stubby-bench -gen -seed=N`.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// CorpusSeeds is the size of the committed seed corpus: seeds 1..CorpusSeeds
// have golden descriptors under testdata/gen/ at the repo root, and the
// same seeds prime this package's fuzz targets. Growing the corpus means
// bumping this one constant and regenerating the goldens with
// `go test -run TestGenCorpusDescriptors -update .`.
const CorpusSeeds = 16

// Options bounds the generated workflows.
type Options struct {
	// MinJobs/MaxJobs bound the job count (defaults 2 and 6).
	MinJobs, MaxJobs int
	// Records is the approximate record count per base dataset
	// (default 400; actual counts vary randomly around it).
	Records int
}

func (o Options) withDefaults() Options {
	if o.MinJobs <= 0 {
		o.MinJobs = 2
	}
	if o.MaxJobs < o.MinJobs {
		o.MaxJobs = o.MinJobs + 4
	}
	if o.Records <= 0 {
		o.Records = 400
	}
	return o
}

// Case is one generated workflow together with everything needed to
// execute and cost it.
type Case struct {
	// Seed reproduces the case exactly.
	Seed int64
	// Workflow is the unoptimized annotated plan.
	Workflow *wf.Workflow
	// DFS holds the materialized base datasets.
	DFS *mrsim.DFS
	// Cluster is a randomized evaluation cluster with VirtualScale mapping
	// the materialized bytes onto a multi-GB virtual dataset.
	Cluster *mrsim.Cluster
	// Canon maps sink dataset IDs to their canonicalization spec (e.g.
	// top-K rank keys are tie labels, not data).
	Canon map[string]mrsim.CanonSpec
}

// fieldKind classifies a generated field's dynamic type.
type fieldKind int

const (
	intKind fieldKind = iota
	strKind
	numKind // numeric, possibly float (derived aggregates)
)

func (k fieldKind) String() string {
	switch k {
	case intKind:
		return "int"
	case strKind:
		return "str"
	default:
		return "num"
	}
}

// fieldInfo tracks what the generator knows about one field: its globally
// unique name (names carry flow-through semantics in annotations, so two
// fields share a name only when they really hold the same data), its
// domain, and whether its values are integer-valued (exact — safe to
// pre-aggregate with a combiner) or unique within the dataset (safe to
// rank without ties).
type fieldInfo struct {
	name   string
	kind   fieldKind
	card   int // domain cardinality for generated fields; 0 = derived/unknown
	exact  bool
	unique bool
}

// dsInfo is the generator's view of one dataset.
type dsInfo struct {
	id   string
	key  []fieldInfo
	val  []fieldInfo
	base bool
}

// pick is one selectable field of a dataset with its Rekey source.
type pick struct {
	f   fieldInfo
	src ops.Src
}

func picksOf(d *dsInfo) []pick {
	out := make([]pick, 0, len(d.key)+len(d.val))
	for i, f := range d.key {
		out = append(out, pick{f: f, src: ops.K(i)})
	}
	for i, f := range d.val {
		out = append(out, pick{f: f, src: ops.V(i)})
	}
	return out
}

type builder struct {
	rng    *rand.Rand
	opt    Options
	w      *wf.Workflow
	dfs    *mrsim.DFS
	pool   []*dsInfo
	labels map[string][]int // sink dataset -> tie-label key positions
	fieldN int
	baseN  int
	jobN   int
	stageN int
}

// Generate builds the case for a seed. It panics if the generator ever
// produces an invalid workflow — that is a generator bug, and the fuzz
// targets hunt for it.
func Generate(seed int64, opt Options) *Case {
	opt = opt.withDefaults()
	b := &builder{
		rng:    rand.New(rand.NewSource(seed ^ 0x5eed5eed)),
		opt:    opt,
		w:      &wf.Workflow{Name: fmt.Sprintf("GEN%d", seed)},
		dfs:    mrsim.NewDFS(),
		labels: map[string][]int{},
		jobN:   1,
	}

	// Base datasets; a shared key field across the first two enables joins.
	nBases := 1 + b.rng.Intn(3)
	var shared *fieldInfo
	first := b.genBase(nil)
	if nBases >= 2 && b.rng.Intn(10) < 6 {
		shared = &first.key[0]
	}
	for i := 1; i < nBases; i++ {
		b.genBase(shared)
		shared = nil
	}

	target := opt.MinJobs + b.rng.Intn(opt.MaxJobs-opt.MinJobs+1)
	for b.jobN <= target {
		in := b.pool[b.rng.Intn(len(b.pool))]
		switch r := b.rng.Intn(20); {
		case r < 4 && target-b.jobN >= 1: // chain: two jobs, vertical fodder
			b.chainAgg(in)
		case r < 7:
			if a, c, ok := b.joinPartners(); ok {
				b.join(a, c)
			} else {
				b.groupAgg(in)
			}
		case r < 10:
			if u, ok := b.uniqueInput(); ok {
				b.topK(u)
			} else {
				b.filterMap(in)
			}
		case r < 14:
			b.filterMap(in)
		default:
			b.groupAgg(in)
		}
	}

	if err := b.w.Validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %d produced an invalid workflow: %v", seed, err))
	}
	c := &Case{
		Seed:     seed,
		Workflow: b.w,
		DFS:      b.dfs,
		Cluster:  b.cluster(),
		Canon:    map[string]mrsim.CanonSpec{},
	}
	for _, d := range b.w.SinkDatasets() {
		c.Canon[d.ID] = mrsim.CanonSpec{LabelKeyFields: b.labels[d.ID]}
	}
	return c
}

// --- fields and data ---------------------------------------------------------

func (b *builder) fresh(prefix string, kind fieldKind, card int) fieldInfo {
	b.fieldN++
	return fieldInfo{name: fmt.Sprintf("%s%d", prefix, b.fieldN), kind: kind, card: card, exact: kind != numKind}
}

func (b *builder) stageName(prefix string) string {
	b.stageN++
	return fmt.Sprintf("%s%d", prefix, b.stageN)
}

func (b *builder) cpu() float64 {
	return (0.2 + b.rng.Float64()) * 1e-6
}

// fieldValue draws one value from a field's domain; draw is the skew-aware
// index generator for key fields.
func fieldValue(f fieldInfo, idx int) keyval.Field {
	if f.kind == strKind {
		return fmt.Sprintf("s%04d", idx)
	}
	return int64(idx)
}

// genBase materializes one base dataset on the DFS. shareKey, when
// non-nil, becomes the first key field (the same name and domain as
// another base — join fodder).
func (b *builder) genBase(shareKey *fieldInfo) *dsInfo {
	id := fmt.Sprintf("B%d", b.baseN)
	b.baseN++
	var key []fieldInfo
	if shareKey != nil {
		key = append(key, *shareKey)
	} else {
		kind := intKind
		if b.rng.Intn(4) == 0 {
			kind = strKind
		}
		key = append(key, b.fresh("k", kind, 8+b.rng.Intn(40)))
	}
	if b.rng.Intn(2) == 0 {
		key = append(key, b.fresh("k", intKind, 4+b.rng.Intn(12)))
	}
	n := b.opt.Records/2 + b.rng.Intn(b.opt.Records)
	val := []fieldInfo{b.fresh("v", intKind, 40)}
	uid := -1
	if b.rng.Intn(10) < 7 {
		f := b.fresh("u", intKind, n)
		f.unique = true
		uid = len(val)
		val = append(val, f)
	}
	if b.rng.Intn(10) < 4 {
		val = append(val, b.fresh("p", strKind, 30))
	}

	// Key skew: the first key field is zipf-distributed ~40% of the time.
	var zipf *rand.Zipf
	if key[0].card > 1 && b.rng.Intn(10) < 4 {
		zipf = rand.NewZipf(b.rng, 1.2, 4, uint64(key[0].card-1))
	}
	perm := b.rng.Perm(n)
	pairs := make([]keyval.Pair, n)
	for i := 0; i < n; i++ {
		k := make(keyval.Tuple, len(key))
		for ki, kf := range key {
			idx := b.rng.Intn(kf.card)
			if ki == 0 && zipf != nil {
				idx = int(zipf.Uint64())
			}
			k[ki] = fieldValue(kf, idx)
		}
		v := make(keyval.Tuple, len(val))
		for vi, vf := range val {
			if vi == uid {
				v[vi] = int64(perm[i])
				continue
			}
			v[vi] = fieldValue(vf, b.rng.Intn(vf.card))
		}
		pairs[i] = keyval.Pair{Key: k, Value: v}
	}

	keyNames := fieldNames(key)
	layout := wf.Layout{}
	switch b.rng.Intn(4) {
	case 1:
		layout = wf.Layout{PartType: keyval.HashPartition, PartFields: keyNames[:1], SortFields: keyNames[:1]}
		if len(keyNames) > 1 && b.rng.Intn(2) == 0 {
			layout.SortFields = keyNames[:2]
		}
	case 2:
		layout = wf.Layout{PartType: keyval.HashPartition, PartFields: keyNames[:1]}
	case 3:
		layout = wf.Layout{PartType: keyval.RangePartition, PartFields: keyNames[:1], SortFields: keyNames[:1]}
	}
	layout.Compressed = b.rng.Intn(4) == 0
	if err := b.dfs.Ingest(id, pairs, mrsim.IngestSpec{
		NumPartitions: 2 + b.rng.Intn(5),
		KeyFields:     keyNames,
		Layout:        layout,
	}); err != nil {
		panic(fmt.Sprintf("gen: ingest %s: %v", id, err))
	}
	stored, _ := b.dfs.Get(id)
	b.w.Datasets = append(b.w.Datasets, &wf.Dataset{
		ID: id, Base: true,
		Layout:    stored.Layout.Clone(),
		KeyFields: keyNames, ValueFields: fieldNames(val),
		EstRecords:    float64(stored.Records()),
		EstBytes:      float64(stored.Bytes()),
		EstPartitions: len(stored.Parts),
	})
	info := &dsInfo{id: id, key: key, val: val, base: true}
	b.pool = append(b.pool, info)
	return info
}

func fieldNames(fs []fieldInfo) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.name
	}
	return out
}

// --- jobs --------------------------------------------------------------------

func (b *builder) randConfig(hasCombiner bool) wf.Config {
	cfg := wf.Config{
		NumReduceTasks: 1 + b.rng.Intn(8),
		SplitSizeMB:    []int{16, 32, 64, 128}[b.rng.Intn(4)],
		SortBufferMB:   []int{50, 100, 200}[b.rng.Intn(3)],
		IOSortFactor:   []int{5, 10, 25}[b.rng.Intn(3)],
	}
	cfg.UseCombiner = hasCombiner && b.rng.Intn(2) == 0
	cfg.CompressMapOutput = b.rng.Intn(4) == 0
	cfg.CompressOutput = b.rng.Intn(4) == 0
	return cfg
}

// splitPoints draws 1-3 strictly ascending points from a field's domain
// (or a default int domain when unknown). Any ascending points are a valid
// range partitioning; balance only affects cost, never semantics.
func (b *builder) splitPoints(f fieldInfo) []keyval.Tuple {
	domain := f.card
	if domain < 4 {
		domain = 50
	}
	n := 1 + b.rng.Intn(3)
	seen := map[int]bool{}
	var idxs []int
	for len(idxs) < n {
		i := 1 + b.rng.Intn(domain-1)
		if !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	out := make([]keyval.Tuple, len(idxs))
	for i, idx := range idxs {
		out[i] = keyval.T(fieldValue(f, idx))
	}
	return out
}

// randPartSpec draws a partition spec for a group whose map-output key is
// groupKey and whose reduce stage groups on the first gw fields. Every
// choice keeps equal group keys co-located and contiguous; in particular,
// when the grouping is a proper key prefix (gw < kw) the partition fields
// must stay inside that prefix — the zero spec (hash on the full key)
// would scatter one logical group across reduce partitions and make the
// job's output depend on its reducer count.
func (b *builder) randPartSpec(groupKey []fieldInfo, gw int) keyval.PartitionSpec {
	kw := len(groupKey)
	fallback := keyval.PartitionSpec{}
	if gw < kw {
		fallback = keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: identityInts(gw)}
	}
	switch b.rng.Intn(4) {
	case 1: // hash on a nonempty subset of the grouped prefix
		m := 1 + b.rng.Intn(gw)
		idx := b.rng.Perm(gw)[:m]
		sort.Ints(idx)
		return keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: idx}
	case 2: // explicit full-key sort permutation (whole-key grouping only)
		if gw == kw {
			return keyval.PartitionSpec{SortFields: b.rng.Perm(kw)}
		}
		return fallback
	case 3: // range on the first grouped field
		return keyval.PartitionSpec{
			Type:        keyval.RangePartition,
			KeyFields:   []int{0},
			SplitPoints: b.splitPoints(groupKey[0]),
		}
	default:
		return fallback
	}
}

func (b *builder) addJob(branches []wf.MapBranch, groups []wf.ReduceGroup, cfg wf.Config) {
	id := fmt.Sprintf("J%d", b.jobN)
	b.jobN++
	b.w.Jobs = append(b.w.Jobs, &wf.Job{
		ID: id, Config: cfg, Origin: []string{id},
		MapBranches: branches, ReduceGroups: groups,
	})
}

func (b *builder) addDS(key, val []fieldInfo) *dsInfo {
	id := fmt.Sprintf("D%d", b.jobN)
	b.w.Datasets = append(b.w.Datasets, &wf.Dataset{
		ID: id, KeyFields: fieldNames(key), ValueFields: fieldNames(val),
	})
	info := &dsInfo{id: id, key: key, val: val}
	b.pool = append(b.pool, info)
	return info
}

// keyablePicks returns the fields usable as group keys: int/str typed and
// (for derived numerics) still hashable/comparable — floats from Avg are
// excluded to keep group identities exact.
func keyablePicks(d *dsInfo) []pick {
	var out []pick
	for _, p := range picksOf(d) {
		if p.f.kind == intKind || p.f.kind == strKind {
			out = append(out, p)
		}
	}
	return out
}

func numericPicks(d *dsInfo) []pick {
	var out []pick
	for _, p := range picksOf(d) {
		if p.f.kind != strKind {
			out = append(out, p)
		}
	}
	return out
}

// chooseDistinct picks n distinct elements preserving a random order.
func (b *builder) chooseDistinct(ps []pick, n int) []pick {
	idx := b.rng.Perm(len(ps))[:n]
	out := make([]pick, n)
	for i, j := range idx {
		out[i] = ps[j]
	}
	return out
}

// groupAgg emits one grouped aggregation job over in: map-side Rekey onto
// a random group key, reduce-side Sum / Count / Avg / SumAndMax /
// DistinctMark (or a projected-grouping variant), with a matching
// combiner where the aggregate is exactly combinable.
func (b *builder) groupAgg(in *dsInfo) *dsInfo {
	keyables := keyablePicks(in)
	if len(keyables) == 0 {
		return b.filterMap(in)
	}
	ngk := 1
	if len(keyables) > 1 && b.rng.Intn(2) == 0 {
		ngk = 2
	}
	gk := b.chooseDistinct(keyables, ngk)
	nums := numericPicks(in)
	var numP pick
	if len(nums) > 0 {
		numP = nums[b.rng.Intn(len(nums))]
	} else {
		numP = keyables[0] // Count ignores the value anyway
	}

	keyFrom := make([]ops.Src, len(gk))
	groupKey := make([]fieldInfo, len(gk))
	for i, p := range gk {
		keyFrom[i] = p.src
		groupKey[i] = p.f
	}
	mapStage := ops.Rekey(b.stageName("M"), b.cpu(), keyFrom, []ops.Src{numP.src})
	branch := wf.MapBranch{
		Tag: 0, Input: in.id,
		Stages: []wf.Stage{mapStage},
		KeyIn:  fieldNames(in.key), ValIn: fieldNames(in.val),
		KeyOut: fieldNames(groupKey), ValOut: []string{numP.f.name},
	}

	gw := len(groupKey)
	var reduce wf.Stage
	var combiner *wf.Stage
	outKey := groupKey
	var outVal []fieldInfo
	exact := numP.f.exact
	switch r := b.rng.Intn(10); {
	case r < 3: // sum (+ combiner when exactly combinable)
		reduce = ops.Sum(b.stageName("R"), b.cpu(), 0)
		if exact {
			combiner = stagePtr(ops.SumCombiner(b.stageName("C"), b.cpu(), 0))
		}
		f := b.fresh("n", numKind, 0)
		f.exact = exact
		outVal = []fieldInfo{f}
	case r < 5: // count
		reduce = ops.Count(b.stageName("R"), b.cpu())
		outVal = []fieldInfo{b.fresh("n", intKind, 0)}
	case r < 6: // avg: float-valued output
		reduce = ops.Avg(b.stageName("R"), b.cpu(), 0)
		outVal = []fieldInfo{b.fresh("a", numKind, 0)}
	case r < 8: // sum and max
		reduce = ops.SumAndMax(b.stageName("R"), b.cpu(), 0)
		fs, fm := b.fresh("n", numKind, 0), b.fresh("m", numKind, 0)
		fs.exact, fm.exact = exact, exact
		outVal = []fieldInfo{fs, fm}
	case r < 9 && len(groupKey) == 2: // projected grouping on the first field
		gw = 1
		if exact {
			reduce = projSum(b.stageName("R"), b.cpu(), gw, 0)
		} else {
			reduce = projCount(b.stageName("R"), b.cpu(), gw)
		}
		outKey = groupKey[:1]
		f := b.fresh("n", numKind, 0)
		f.exact = true
		outVal = []fieldInfo{f}
	default: // distinct-group mark: constant key, duplicate tuples galore
		reduce = ops.DistinctMark(b.stageName("R"), b.cpu())
		ck := b.fresh("c", intKind, 1)
		outKey = []fieldInfo{ck}
		outVal = []fieldInfo{b.fresh("o", intKind, 1)}
	}

	out := b.addDS(outKey, outVal)
	group := wf.ReduceGroup{
		Tag: 0, Output: out.id,
		Stages:   []wf.Stage{reduce},
		Combiner: combiner,
		Part:     b.randPartSpec(groupKey, gw),
		KeyIn:    fieldNames(groupKey), ValIn: []string{numP.f.name},
		KeyOut: fieldNames(outKey), ValOut: fieldNames(outVal),
	}
	b.addJob([]wf.MapBranch{branch}, []wf.ReduceGroup{group}, b.randConfig(combiner != nil))
	return out
}

// filterMap emits one map-only job over in: an optional interval filter
// (with a truthful Filter annotation, enabling partition pruning and
// filter-aligned partition specs upstream) plus a projection that keeps
// all key fields, and occasionally an extra Identity stage.
func (b *builder) filterMap(in *dsInfo) *dsInfo {
	keyFrom := make([]ops.Src, len(in.key))
	for i := range in.key {
		keyFrom[i] = ops.K(i)
	}
	outKey := append([]fieldInfo(nil), in.key...)
	var valFrom []ops.Src
	var outVal []fieldInfo
	for i, f := range in.val {
		if len(outVal) == 0 || b.rng.Intn(2) == 0 {
			valFrom = append(valFrom, ops.V(i))
			outVal = append(outVal, f)
		}
	}

	var stages []wf.Stage
	var filter *wf.Filter
	if in.key[0].kind == intKind && in.key[0].card > 2 && b.rng.Intn(4) < 3 {
		card := in.key[0].card
		lo := b.rng.Intn(card - 1)
		hi := lo + 1 + b.rng.Intn(card-lo)
		iv := keyval.Interval{Lo: int64(lo), Hi: int64(hi)}
		if b.rng.Intn(4) == 0 {
			iv.Lo = nil
		}
		if iv.Lo != nil && b.rng.Intn(4) == 0 {
			iv.Hi = nil
		}
		filter = &wf.Filter{Field: in.key[0].name, Interval: iv}
		stages = append(stages, ops.FilterInterval(b.stageName("F"), b.cpu(), ops.K(0), iv, keyFrom, valFrom))
	} else {
		stages = append(stages, ops.Rekey(b.stageName("M"), b.cpu(), keyFrom, valFrom))
	}
	if b.rng.Intn(4) == 0 {
		stages = append(stages, ops.Identity(b.stageName("I"), b.cpu()))
	}

	out := b.addDS(outKey, outVal)
	branch := wf.MapBranch{
		Tag: 0, Input: in.id,
		Stages: stages,
		Filter: filter,
		KeyIn:  fieldNames(in.key), ValIn: fieldNames(in.val),
		KeyOut: fieldNames(outKey), ValOut: fieldNames(outVal),
	}
	group := wf.ReduceGroup{
		Tag: 0, Output: out.id,
		KeyIn: fieldNames(outKey), ValIn: fieldNames(outVal),
		KeyOut: fieldNames(outKey), ValOut: fieldNames(outVal),
	}
	b.addJob([]wf.MapBranch{branch}, []wf.ReduceGroup{group}, b.randConfig(false))
	return out
}

// chainAgg emits a two-job chain engineered so the second job's grouping
// key flows unchanged through the first job's reduce — the intra-job
// vertical packing precondition (Section 3.1): J_a groups on (x, y) and
// emits both fields; J_b regroups on one of them.
func (b *builder) chainAgg(in *dsInfo) {
	keyables := keyablePicks(in)
	if len(keyables) < 2 {
		b.groupAgg(in)
		return
	}
	gk := b.chooseDistinct(keyables, 2)
	nums := numericPicks(in)
	numP := keyables[0]
	if len(nums) > 0 {
		numP = nums[b.rng.Intn(len(nums))]
	}
	groupKey := []fieldInfo{gk[0].f, gk[1].f}
	branch := wf.MapBranch{
		Tag: 0, Input: in.id,
		Stages: []wf.Stage{ops.Rekey(b.stageName("M"), b.cpu(), []ops.Src{gk[0].src, gk[1].src}, []ops.Src{numP.src})},
		KeyIn:  fieldNames(in.key), ValIn: fieldNames(in.val),
		KeyOut: fieldNames(groupKey), ValOut: []string{numP.f.name},
	}
	sumF := b.fresh("n", numKind, 0)
	sumF.exact = numP.f.exact
	var combiner *wf.Stage
	if sumF.exact && b.rng.Intn(2) == 0 {
		combiner = stagePtr(ops.SumCombiner(b.stageName("C"), b.cpu(), 0))
	}
	mid := b.addDS(groupKey, []fieldInfo{sumF})
	b.addJob([]wf.MapBranch{branch}, []wf.ReduceGroup{{
		Tag: 0, Output: mid.id,
		Stages:   []wf.Stage{ops.Sum(b.stageName("R"), b.cpu(), 0)},
		Combiner: combiner,
		Part:     b.randPartSpec(groupKey, 2),
		KeyIn:    fieldNames(groupKey), ValIn: []string{numP.f.name},
		KeyOut: fieldNames(groupKey), ValOut: []string{sumF.name},
	}}, b.randConfig(combiner != nil))

	// Consumer: regroup on one surviving key field and aggregate the sums.
	keep := b.rng.Intn(2)
	regroup := []fieldInfo{groupKey[keep]}
	cBranch := wf.MapBranch{
		Tag: 0, Input: mid.id,
		Stages: []wf.Stage{ops.Rekey(b.stageName("M"), b.cpu(), []ops.Src{ops.K(keep)}, []ops.Src{ops.V(0)})},
		KeyIn:  fieldNames(groupKey), ValIn: []string{sumF.name},
		KeyOut: fieldNames(regroup), ValOut: []string{sumF.name},
	}
	outF := b.fresh("n", numKind, 0)
	outF.exact = sumF.exact
	var reduce wf.Stage
	if b.rng.Intn(3) == 0 {
		reduce = ops.Count(b.stageName("R"), b.cpu())
		outF = b.fresh("n", intKind, 0)
	} else {
		reduce = ops.Sum(b.stageName("R"), b.cpu(), 0)
	}
	out := b.addDS(regroup, []fieldInfo{outF})
	b.addJob([]wf.MapBranch{cBranch}, []wf.ReduceGroup{{
		Tag: 0, Output: out.id,
		Stages: []wf.Stage{reduce},
		Part:   b.randPartSpec(regroup, 1),
		KeyIn:  fieldNames(regroup), ValIn: []string{sumF.name},
		KeyOut: fieldNames(regroup), ValOut: []string{outF.name},
	}}, b.randConfig(false))
}

// joinPartners finds two pool datasets sharing their first key field name
// (the same logical column), or one dataset to self-join.
func (b *builder) joinPartners() (a, c *dsInfo, ok bool) {
	var pairs [][2]*dsInfo
	for i, x := range b.pool {
		for j, y := range b.pool {
			if i < j && x.key[0].name == y.key[0].name {
				pairs = append(pairs, [2]*dsInfo{x, y})
			}
		}
	}
	if len(pairs) > 0 && b.rng.Intn(10) < 8 {
		p := pairs[b.rng.Intn(len(pairs))]
		return p[0], p[1], true
	}
	// Self-join: both branches scan the same dataset under one tag.
	if b.rng.Intn(2) == 0 {
		d := b.pool[b.rng.Intn(len(b.pool))]
		if len(keyablePicks(d)) > 0 {
			return d, d, true
		}
	}
	return nil, nil, false
}

// join emits a repartition join of a and c on their shared first key field
// (for a self-join, on any keyable field): two tagged branches mark their
// side, one reduce group emits the per-key cross product.
func (b *builder) join(a, c *dsInfo) *dsInfo {
	side := b.fresh("t", strKind, 2)
	jk := a.key[0]
	jkSrcA, jkSrcC := ops.K(0), ops.K(0)
	if a == c {
		ks := keyablePicks(a)
		p := ks[b.rng.Intn(len(ks))]
		jk, jkSrcA, jkSrcC = p.f, p.src, p.src
	}

	mkBranch := func(d *dsInfo, jkSrc ops.Src, mark string, maxVals int) (wf.MapBranch, []fieldInfo) {
		var valFrom []ops.Src
		var outVal []fieldInfo
		for i, f := range d.val {
			if len(outVal) < maxVals && (len(outVal) == 0 || b.rng.Intn(2) == 0) {
				valFrom = append(valFrom, ops.V(i))
				outVal = append(outVal, f)
			}
		}
		if len(outVal) == 0 { // datasets always have >=1 value field, but be safe
			valFrom = append(valFrom, ops.K(0))
			outVal = append(outVal, d.key[0])
		}
		// A cross product duplicates values, so uniqueness does not survive
		// a join — downstream top-K must not treat these as tie-free scores.
		for i := range outVal {
			outVal[i].unique = false
		}
		br := wf.MapBranch{
			Tag: 0, Input: d.id,
			Stages: []wf.Stage{
				ops.Rekey(b.stageName("M"), b.cpu(), []ops.Src{jkSrc}, valFrom),
				ops.TagValue(b.stageName("T"), b.cpu(), mark),
			},
			KeyIn: fieldNames(d.key), ValIn: fieldNames(d.val),
			KeyOut: []string{jk.name},
			ValOut: append([]string{side.name}, fieldNames(outVal)...),
		}
		return br, outVal
	}
	brA, valsA := mkBranch(a, jkSrcA, "L", 2)
	brC, valsC := mkBranch(c, jkSrcC, "R", 2)

	outKey := []fieldInfo{jk}
	outVal := append(append([]fieldInfo(nil), valsA...), valsC...)
	out := b.addDS(outKey, outVal)
	group := wf.ReduceGroup{
		Tag: 0, Output: out.id,
		Stages: []wf.Stage{joinStage(b.stageName("J"), b.cpu(), "L", 64)},
		Part:   b.randPartSpec(outKey, 1),
		KeyIn:  []string{jk.name},
		KeyOut: []string{jk.name}, ValOut: fieldNames(outVal),
	}
	b.addJob([]wf.MapBranch{brA, brC}, []wf.ReduceGroup{group}, b.randConfig(false))
	return out
}

// uniqueInput finds a pool dataset carrying a unique numeric field — a
// tie-free ranking score.
func (b *builder) uniqueInput() (*dsInfo, bool) {
	var cands []*dsInfo
	for _, d := range b.pool {
		for _, f := range d.val {
			if f.unique {
				cands = append(cands, d)
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	return cands[b.rng.Intn(len(cands))], true
}

// topK emits the scalable top-K pattern: a map-side LocalTopK per task
// stream feeding a single-group MergeTopK. The score field is unique, so
// the selected set and its ranks are plan-invariant; the rank key is still
// registered as a tie label for the oracle.
func (b *builder) topK(in *dsInfo) *dsInfo {
	scoreIdx := -1
	for i, f := range in.val {
		if f.unique {
			scoreIdx = i
			break
		}
	}
	score := in.val[scoreIdx]
	k := 3 + b.rng.Intn(6)

	constF := b.fresh("c", intKind, 1)
	valFrom := []ops.Src{ops.V(scoreIdx)}
	outVal := []fieldInfo{score}
	for i, f := range in.val {
		if i != scoreIdx && b.rng.Intn(2) == 0 {
			valFrom = append(valFrom, ops.V(i))
			outVal = append(outVal, f)
		}
	}
	branch := wf.MapBranch{
		Tag: 0, Input: in.id,
		Stages: []wf.Stage{
			ops.Rekey(b.stageName("M"), b.cpu(), []ops.Src{ops.K(0)}, valFrom),
			ops.LocalTopK(b.stageName("L"), b.cpu(), k, 0),
		},
		KeyIn: fieldNames(in.key), ValIn: fieldNames(in.val),
		KeyOut: []string{constF.name}, ValOut: fieldNames(outVal),
	}
	rankF := b.fresh("r", intKind, k)
	out := b.addDS([]fieldInfo{rankF}, outVal)
	group := wf.ReduceGroup{
		Tag: 0, Output: out.id,
		Stages: []wf.Stage{ops.MergeTopK(b.stageName("G"), b.cpu(), k, 0)},
		KeyIn:  []string{constF.name}, ValIn: fieldNames(outVal),
		KeyOut: []string{rankF.name}, ValOut: fieldNames(outVal),
	}
	b.addJob([]wf.MapBranch{branch}, []wf.ReduceGroup{group}, b.randConfig(false))
	b.labels[out.id] = []int{0}
	return out
}

// cluster randomizes the evaluation cluster and maps the materialized
// bytes onto a multi-GB virtual dataset so cost dynamics (waves, spills,
// shuffle volume) resemble the paper's regime.
func (b *builder) cluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.Nodes = 10 + b.rng.Intn(41)
	if b.rng.Intn(4) == 0 {
		c.TaskSetupSec = 0
	}
	var bytes float64
	for _, id := range b.dfs.IDs() {
		stored, _ := b.dfs.Get(id)
		bytes += float64(stored.Bytes())
	}
	if bytes > 0 {
		virtGB := float64(2 + b.rng.Intn(11))
		c.VirtualScale = virtGB * 1e9 / bytes
	}
	return c
}
