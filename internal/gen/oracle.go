package gen

import (
	"fmt"
	"strings"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Subject is anything the equivalence oracle can judge plans against: a
// reference workflow with its materialized inputs and cluster. Generated
// cases provide one via Case.Subject; the paper workloads adapt through
// the same struct.
type Subject struct {
	// Name labels the subject in failure messages.
	Name string
	// Seed, when non-zero, is printed in failure messages as the
	// reproduction handle (stubby-bench -gen -seed=N).
	Seed int64
	// Workflow is the reference (identity) plan defining the semantics.
	Workflow *wf.Workflow
	// DFS holds the base data; runs clone it, so it is never mutated.
	DFS *mrsim.DFS
	// Cluster executes the runs.
	Cluster *mrsim.Cluster
	// Canon maps sink dataset IDs to canonicalization specs; missing
	// entries use the zero spec (exact comparison).
	Canon map[string]mrsim.CanonSpec
	// FloatTolerance is the relative tolerance for numeric fields
	// (0 = exact). Generated cases keep aggregation integer-exact and use
	// 0; workflows that reassociate genuine floating point (some paper
	// workloads under combiner/config changes) set a tiny tolerance.
	FloatTolerance float64
	// Fault, when non-nil, injects task failures, stragglers, heterogeneous
	// node speeds, and speculative re-execution into every Run (chaos mode).
	// Perturbation moves task timings, never data: sink outputs must stay
	// tuple-for-tuple identical to the fault-free reference.
	Fault *mrsim.FaultModel
}

// Subject adapts the case for the oracle.
func (c *Case) Subject() *Subject {
	return &Subject{
		Name:     c.Workflow.Name,
		Seed:     c.Seed,
		Workflow: c.Workflow,
		DFS:      c.DFS,
		Cluster:  c.Cluster,
		Canon:    c.Canon,
	}
}

// Outputs holds the canonicalized content of every sink dataset.
type Outputs map[string][]keyval.Pair

// sinkIDs are the reference workflow's result datasets — the datasets
// every semantics-preserving plan must still write, with the same content.
func (s *Subject) sinkIDs() []string {
	var out []string
	for _, d := range s.Workflow.SinkDatasets() {
		out = append(out, d.ID)
	}
	return out
}

// Run executes a plan over a clone of the subject's base data and returns
// the canonicalized sink outputs.
func (s *Subject) Run(plan *wf.Workflow) (Outputs, *mrsim.RunReport, error) {
	dfs := s.DFS.Clone()
	eng := mrsim.NewEngine(s.Cluster, dfs)
	eng.Fault = s.Fault
	rep, err := eng.RunWorkflow(plan)
	if err != nil {
		return nil, nil, err
	}
	outs := Outputs{}
	for _, id := range s.sinkIDs() {
		stored, ok := dfs.Get(id)
		if !ok {
			return nil, nil, fmt.Errorf("sink dataset %q was not materialized", id)
		}
		outs[id] = stored.CanonicalOutput(s.Canon[id])
	}
	return outs, rep, nil
}

// Reference runs the subject's own workflow — the identity plan every
// optimized plan is compared against.
func (s *Subject) Reference() (Outputs, error) {
	outs, _, err := s.Run(s.Workflow)
	if err != nil {
		return nil, fmt.Errorf("gen: %s: reference run failed: %w", s.Name, err)
	}
	return outs, nil
}

// CheckPlan is the semantic-equivalence oracle: it validates the candidate
// plan, executes it, and compares every sink's canonicalized output
// tuple-for-tuple against the reference. A non-nil error describes the
// divergence and embeds everything needed to reproduce it: the generator
// seed and the DOT rendering of the offending plan.
func (s *Subject) CheckPlan(ref Outputs, desc string, plan *wf.Workflow) error {
	if plan == nil {
		return s.fail(desc, plan, "planner returned a nil plan")
	}
	if err := plan.Validate(); err != nil {
		return s.fail(desc, plan, fmt.Sprintf("plan invalid: %v", err))
	}
	got, _, err := s.Run(plan)
	if err != nil {
		return s.fail(desc, plan, fmt.Sprintf("plan failed to execute: %v", err))
	}
	for _, id := range s.sinkIDs() {
		if d := mrsim.DiffPairs(ref[id], got[id], s.FloatTolerance); d != "" {
			return s.fail(desc, plan, fmt.Sprintf("sink %s diverges from reference: %s", id, d))
		}
	}
	return nil
}

// fail formats an oracle failure with the reproduction seed and plan DOT.
func (s *Subject) fail(desc string, plan *wf.Workflow, msg string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "gen: %s: plan %q: %s\n", s.Name, desc, msg)
	if s.Seed != 0 {
		fmt.Fprintf(&b, "reproduce with: stubby-bench -gen -seed=%d\n", s.Seed)
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, "fault model active: fault seed=%d failProb=%g retries=%d stragglerProb=%g sigma=%g speculative=%v classes=%d\n",
			s.Fault.Seed, s.Fault.TaskFailureProb, s.Fault.MaxRetries,
			s.Fault.StragglerProb, s.Fault.StragglerSigma, s.Fault.Speculative, len(s.Fault.NodeClasses))
	}
	if plan != nil {
		fmt.Fprintf(&b, "offending plan (DOT):\n%s", plan.DOT())
	}
	return fmt.Errorf("%s", b.String())
}
