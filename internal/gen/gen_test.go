package gen

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

// TestGenerateDeterministic: the same seed must yield byte-identical
// descriptors (structure, data, annotations) — the property the committed
// corpus and every "reproduce with -seed=N" message depend on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if a.Descriptor() != b.Descriptor() {
			t.Fatalf("seed %d: descriptors differ between identical generations", seed)
		}
	}
}

// TestGenerateValidAndRunnable: every generated workflow validates, and
// the reference plan executes on its materialized data. Re-running the
// reference must reproduce identical canonical outputs (the engine itself
// must be deterministic, or the oracle is meaningless).
func TestGenerateValidAndRunnable(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c := Generate(seed, Options{})
		if err := c.Workflow.Validate(); err != nil {
			t.Fatalf("seed %d: invalid workflow: %v", seed, err)
		}
		s := c.Subject()
		ref, err := s.Reference()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(ref) == 0 {
			t.Fatalf("seed %d: no sink outputs", seed)
		}
		if err := s.CheckPlan(ref, "identity-rerun", c.Workflow); err != nil {
			t.Fatalf("seed %d: engine nondeterminism: %v", seed, err)
		}
	}
}

// TestGenerateSpansPlanSpace: across a modest seed range the generator
// must exercise the whole annotated plan space the transformations
// dispatch on — multi-input jobs, shared inputs, map-only jobs, reduce
// variety, combiners, filters, range and hash partitioning, skew, and
// every ops stage family. This is the guard against the generator
// silently narrowing until the equivalence suite tests nothing.
func TestGenerateSpansPlanSpace(t *testing.T) {
	hits := map[string]int{}
	for seed := int64(1); seed <= 60; seed++ {
		c := Generate(seed, Options{})
		for _, j := range c.Workflow.Jobs {
			if len(j.MapBranches) > 1 {
				hits["multi-branch"]++
			}
			if j.MapOnly() {
				hits["map-only"]++
			} else {
				hits["grouped"]++
			}
			for _, g := range j.ReduceGroups {
				if g.Combiner != nil {
					hits["combiner"]++
				}
				if g.Part.Type == 1 { // keyval.RangePartition
					hits["range-part"]++
				}
				if g.Part.KeyFields != nil {
					hits["part-subset"]++
				}
				if g.Part.SortFields != nil {
					hits["sort-perm"]++
				}
				for _, st := range g.Stages {
					hits["stage:"+stagePrefix(st.Name)]++
				}
			}
			for _, br := range j.MapBranches {
				if br.Filter != nil {
					hits["filter"]++
				}
				for _, st := range br.Stages {
					hits["stage:"+stagePrefix(st.Name)]++
				}
			}
		}
		for _, d := range c.Workflow.Datasets {
			if len(c.Workflow.Consumers(d.ID)) > 1 {
				hits["fan-out"]++
			}
			if d.Base && d.Layout.PartType == 1 && len(d.Layout.PartFields) > 0 {
				hits["base-range"]++
			}
			if d.Base && d.Layout.Compressed {
				hits["base-compressed"]++
			}
		}
		if len(c.Canon) == 0 {
			t.Fatalf("seed %d: no canon specs for sinks", seed)
		}
	}
	for _, want := range []string{
		"multi-branch", "map-only", "grouped", "combiner", "range-part",
		"part-subset", "sort-perm", "filter", "fan-out", "base-range",
		"base-compressed",
		"stage:M", "stage:R", "stage:F", "stage:J", "stage:L", "stage:G",
	} {
		if hits[want] == 0 {
			t.Errorf("plan-space feature %q never generated across 60 seeds (hits: %v)", want, hits)
		}
	}
}

func stagePrefix(name string) string {
	return strings.TrimRight(name, "0123456789")
}

// TestGenerateOptionsBounds: job-count options are honored.
func TestGenerateOptionsBounds(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := Generate(seed, Options{MinJobs: 4, MaxJobs: 5, Records: 120})
		n := len(c.Workflow.Jobs)
		// chainAgg may overshoot the target by one job.
		if n < 4 || n > 6 {
			t.Fatalf("seed %d: %d jobs outside [4,6]", seed, n)
		}
	}
}

// TestSinkDatasetsSurviveOptimizationShapes: sinks must be exactly the
// datasets with a producer and no consumer, and each one must carry a
// schema annotation (the oracle keys on them).
func TestGenerateSinks(t *testing.T) {
	c := Generate(7, Options{})
	sinks := c.Workflow.SinkDatasets()
	if len(sinks) == 0 {
		t.Fatal("no sinks")
	}
	for _, d := range sinks {
		if _, ok := c.Canon[d.ID]; !ok {
			t.Errorf("sink %s has no canon spec", d.ID)
		}
		if c.Workflow.Producer(d.ID) == nil {
			t.Errorf("sink %s has no producer", d.ID)
		}
	}
	_ = wf.Workflow{}
}
