package gen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Descriptor renders the generated case as a stable, human-reviewable
// text document: the cluster, every dataset (base datasets with record
// counts, layouts, and a content hash over the materialized pairs), every
// job with its pipelines, partition specs, schemas, and configuration,
// and the per-sink canonicalization specs. The corpus under testdata/gen/
// commits one descriptor per seed, so any change to the generator's
// output — shapes, data, annotations — is an explicit, reviewed diff
// rather than silent drift.
func (c *Case) Descriptor() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen-case seed=%d jobs=%d datasets=%d\n", c.Seed, len(c.Workflow.Jobs), len(c.Workflow.Datasets))
	cl := c.Cluster
	fmt.Fprintf(&b, "cluster nodes=%d slots=%dx%d setup=%.1fs scale=%.6g\n",
		cl.Nodes, cl.MapSlotsPerNode, cl.ReduceSlotsPerNode, cl.TaskSetupSec, cl.VirtualScale)
	for _, d := range c.Workflow.Datasets {
		fmt.Fprintf(&b, "dataset %s", d.ID)
		if d.Base {
			if stored, ok := c.DFS.Get(d.ID); ok {
				fmt.Fprintf(&b, " base records=%d bytes=%d parts=%d hash=%016x",
					stored.Records(), stored.Bytes(), len(stored.Parts), dataHash(stored.Parts))
			}
		}
		fmt.Fprintf(&b, " layout=%q key=%v val=%v\n", d.Layout.String(), d.KeyFields, d.ValueFields)
	}
	for _, j := range c.Workflow.Jobs {
		fmt.Fprintf(&b, "job %s config=%q\n", j.ID, j.Config.String())
		for _, br := range j.MapBranches {
			fmt.Fprintf(&b, "  branch tag=%d in=%s stages=%s filter=%q keyout=%v valout=%v\n",
				br.Tag, br.Input, stageList(br.Stages), br.Filter.String(), br.KeyOut, br.ValOut)
		}
		for _, g := range j.ReduceGroups {
			comb := "-"
			if g.Combiner != nil {
				comb = g.Combiner.Name
			}
			fmt.Fprintf(&b, "  group tag=%d out=%s stages=%s combiner=%s part=%q keyin=%v keyout=%v valout=%v\n",
				g.Tag, g.Output, stageList(g.Stages), comb, g.Part.String(), g.KeyIn, g.KeyOut, g.ValOut)
		}
	}
	var sinks []string
	for id := range c.Canon {
		sinks = append(sinks, id)
	}
	sort.Strings(sinks)
	for _, id := range sinks {
		fmt.Fprintf(&b, "canon %s labelkey=%v\n", id, c.Canon[id].LabelKeyFields)
	}
	return b.String()
}

func stageList(stages []wf.Stage) string {
	if len(stages) == 0 {
		return "[]"
	}
	parts := make([]string, len(stages))
	for i, s := range stages {
		parts[i] = fmt.Sprintf("%s/%s", s.Name, s.Kind)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// dataHash folds every pair of every partition (in on-disk order) into one
// 64-bit fingerprint, so base-data drift shows in the descriptor without
// dumping records.
func dataHash(parts []*mrsim.Partition) uint64 {
	var h uint64 = 1469598103934665603
	for _, p := range parts {
		for _, pair := range p.Pairs {
			h ^= keyval.Hash(pair.Key, nil)
			h *= 1099511628211
			h ^= keyval.Hash(pair.Value, nil)
			h *= 1099511628211
		}
	}
	return h
}
