package gen

import (
	"fmt"
	"math/rand"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Family builds n cases whose workflows share a common prefix sub-DAG —
// identical base datasets (same IDs, same ingested content) feeding an
// identical chain of prefix jobs — and then diverge: member 0 is exactly
// the shared prefix, and each later member appends its own small suffix of
// jobs consuming the prefix's tail dataset. All members share one cluster
// model, and each member carries its own DFS holding the same base data.
//
// This is the workload shape sub-plan reuse (ReStore-style) is for: run
// member 0 to completion with a reuse catalog attached and every prefix
// dataset's rooted sub-fingerprint maps to a materialized result; optimize
// any later member against that catalog and its prefix sub-DAG is
// replaceable by scans of the stored datasets. The prefix replay is exact —
// every member re-derives it from the same seeded rng sequence — so rooted
// sub-plan fingerprints collide across members by construction (they are
// insensitive to the workflow names, which differ per member).
func Family(seed int64, n int, opt Options) []*Case {
	opt = opt.withDefaults()
	out := make([]*Case, n)
	for m := range out {
		out[m] = familyMember(seed, m, opt)
	}
	return out
}

func familyMember(seed int64, member int, opt Options) *Case {
	b := &builder{
		rng:    rand.New(rand.NewSource(seed ^ 0x5eed5eed)),
		opt:    opt,
		w:      &wf.Workflow{Name: fmt.Sprintf("FAM%d-%d", seed, member)},
		dfs:    mrsim.NewDFS(),
		labels: map[string][]int{},
		jobN:   1,
	}

	// Shared prefix: the same draw sequence as Generate, replayed from the
	// same seed for every member, so bases and prefix jobs are identical
	// across the family (and across Generate(seed) itself).
	nBases := 1 + b.rng.Intn(3)
	var shared *fieldInfo
	first := b.genBase(nil)
	if nBases >= 2 && b.rng.Intn(10) < 6 {
		shared = &first.key[0]
	}
	for i := 1; i < nBases; i++ {
		b.genBase(shared)
		shared = nil
	}

	target := opt.MinJobs + b.rng.Intn(opt.MaxJobs-opt.MinJobs+1)
	for b.jobN <= target {
		in := b.pool[b.rng.Intn(len(b.pool))]
		switch r := b.rng.Intn(20); {
		case r < 4 && target-b.jobN >= 1:
			b.chainAgg(in)
		case r < 7:
			if a, c, ok := b.joinPartners(); ok {
				b.join(a, c)
			} else {
				b.groupAgg(in)
			}
		case r < 10:
			if u, ok := b.uniqueInput(); ok {
				b.topK(u)
			} else {
				b.filterMap(in)
			}
		case r < 14:
			b.filterMap(in)
		default:
			b.groupAgg(in)
		}
	}

	// The divergence point: the most recently produced dataset. Members
	// past the first consume it, which also guarantees the rooted sub-DAG
	// at the tail has a downstream consumer (reuse never rewrites sinks).
	tail := b.pool[len(b.pool)-1]
	if member > 0 {
		b.rng = rand.New(rand.NewSource(seed ^ 0x5eed5eed ^ int64(member)*0x9e3779b9))
		cur := tail
		for i, nSuffix := 0, 1+b.rng.Intn(2); i < nSuffix; i++ {
			if b.rng.Intn(2) == 0 {
				cur = b.filterMap(cur)
			} else {
				cur = b.groupAgg(cur)
			}
		}
	}

	if err := b.w.Validate(); err != nil {
		panic(fmt.Sprintf("gen: family seed %d member %d produced an invalid workflow: %v", seed, member, err))
	}
	// The cluster draw runs on a member-independent rng (suffixes consume
	// different amounts of member-specific randomness) and the DFS holds
	// only base data, identical across members — so every member prices
	// against the same machine model.
	b.rng = rand.New(rand.NewSource(seed ^ 0x5eed5eed ^ 0x7a57e))
	c := &Case{
		Seed:     seed,
		Workflow: b.w,
		DFS:      b.dfs,
		Cluster:  b.cluster(),
		Canon:    map[string]mrsim.CanonSpec{},
	}
	for _, d := range b.w.SinkDatasets() {
		c.Canon[d.ID] = mrsim.CanonSpec{LabelKeyFields: b.labels[d.ID]}
	}
	return c
}
