package gen

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// The oracle must not be vacuous: a plan that actually computes something
// different has to be flagged, and the failure message must carry the
// reproduction seed and the offending plan's DOT (the acceptance contract
// for every suite built on the oracle).

func brokenPlan(t *testing.T, c *Case) (*wf.Workflow, string) {
	t.Helper()
	plan := c.Workflow.Clone()
	for _, j := range plan.Jobs {
		for bi := range j.MapBranches {
			b := &j.MapBranches[bi]
			for si := range b.Stages {
				st := &b.Stages[si]
				if st.Kind != wf.MapKind {
					continue
				}
				// Wrap the map function to drop every record whose first key
				// field hashes odd — a subtle, deterministic corruption.
				inner := st.Map
				st.Map = func(k, v keyval.Tuple, emit wf.Emit) {
					inner(k, v, func(ok, ov keyval.Tuple) {
						if keyval.Hash(ok, nil)%2 == 0 {
							emit(ok, ov)
						}
					})
				}
				return plan, j.ID
			}
		}
	}
	t.Fatal("no map stage to corrupt")
	return nil, ""
}

func TestOracleCatchesCorruptedPlan(t *testing.T) {
	c := Generate(3, Options{})
	s := c.Subject()
	ref, err := s.Reference()
	if err != nil {
		t.Fatal(err)
	}
	plan, jobID := brokenPlan(t, c)
	err = s.CheckPlan(ref, "corrupted", plan)
	if err == nil {
		t.Fatalf("oracle accepted a plan with a corrupted map stage in %s", jobID)
	}
	msg := err.Error()
	if !strings.Contains(msg, "-seed=3") {
		t.Errorf("failure message lacks the reproducing seed: %s", msg)
	}
	if !strings.Contains(msg, "digraph") {
		t.Errorf("failure message lacks the plan DOT: %s", msg)
	}
	if !strings.Contains(msg, "diverges") && !strings.Contains(msg, "failed to execute") {
		t.Errorf("failure message does not describe the divergence: %s", msg)
	}
}

func TestOracleRejectsInvalidPlan(t *testing.T) {
	c := Generate(4, Options{})
	s := c.Subject()
	ref, err := s.Reference()
	if err != nil {
		t.Fatal(err)
	}
	bad := c.Workflow.Clone()
	bad.Jobs[0].MapBranches = nil // structurally invalid
	if err := s.CheckPlan(ref, "invalid", bad); err == nil {
		t.Fatal("oracle accepted a structurally invalid plan")
	}
	if err := s.CheckPlan(ref, "nil", nil); err == nil {
		t.Fatal("oracle accepted a nil plan")
	}
}

// TestOracleDistinguishesLabelFromPayload: tie labels are forgiven only
// where the case declares them.
func TestOracleLabelAwareness(t *testing.T) {
	var c *Case
	var sink string
	// Find a generated case with a top-K sink (rank key registered as label).
	for seed := int64(1); seed <= 60; seed++ {
		cand := Generate(seed, Options{})
		for id, spec := range cand.Canon {
			if len(spec.LabelKeyFields) > 0 {
				c, sink = cand, id
				break
			}
		}
		if c != nil {
			break
		}
	}
	if c == nil {
		t.Fatal("no generated case with a labeled sink in 60 seeds")
	}
	s := c.Subject()
	ref, err := s.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref[sink]) == 0 {
		t.Skipf("labeled sink %s is empty for this seed", sink)
	}
	// The canonical form of a labeled sink must have cleared the label.
	if got := ref[sink][0].Key[0]; got != nil {
		t.Errorf("label key field not cleared in canonical output: %v", got)
	}
}
