package gen

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

// TestFamilySharedPrefix pins the property the reuse catalog depends on:
// every member of a family re-derives the same prefix sub-DAG, so the
// rooted sub-plan fingerprint of every member-0 dataset is identical in
// every later member — despite the workflows having different names and
// different suffixes.
func TestFamilySharedPrefix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 11} {
		fam := Family(seed, 3, Options{})
		base := fam[0]
		for k := 1; k < len(fam); k++ {
			m := fam[k]
			if m.Workflow.Name == base.Workflow.Name {
				t.Errorf("seed %d: members 0 and %d share a workflow name %q", seed, k, m.Workflow.Name)
			}
			if len(m.Workflow.Jobs) <= len(base.Workflow.Jobs) {
				t.Errorf("seed %d member %d: %d jobs, want more than member 0's %d (suffix missing)",
					seed, k, len(m.Workflow.Jobs), len(base.Workflow.Jobs))
			}
			for _, d := range base.Workflow.Datasets {
				if d.Base {
					continue
				}
				fp0, ok := wf.SubplanFingerprint(base.Workflow, d.ID)
				if !ok {
					t.Fatalf("seed %d: member 0 dataset %s has no sub-fingerprint", seed, d.ID)
				}
				fpk, ok := wf.SubplanFingerprint(m.Workflow, d.ID)
				if !ok {
					t.Fatalf("seed %d member %d: dataset %s missing from member workflow", seed, k, d.ID)
				}
				if fp0 != fpk {
					t.Errorf("seed %d member %d: dataset %s sub-fingerprint diverged: %s vs %s",
						seed, k, d.ID, fp0, fpk)
				}
			}
			// One cluster model for the whole family: every member prices
			// reuse against the machines member 0 materialized on.
			if *m.Cluster != *base.Cluster {
				t.Errorf("seed %d member %d: cluster diverged: %+v vs %+v", seed, k, m.Cluster, base.Cluster)
			}
			// Identical base data, member-private DFS.
			ids0, idsK := base.DFS.IDs(), m.DFS.IDs()
			if len(ids0) != len(idsK) {
				t.Fatalf("seed %d member %d: DFS holds %d datasets, member 0 holds %d", seed, k, len(idsK), len(ids0))
			}
			for _, id := range ids0 {
				s0, _ := base.DFS.Get(id)
				sk, ok := m.DFS.Get(id)
				if !ok {
					t.Fatalf("seed %d member %d: DFS missing base %s", seed, k, id)
				}
				if s0.Records() != sk.Records() || s0.Bytes() != sk.Bytes() {
					t.Errorf("seed %d member %d: base %s content diverged", seed, k, id)
				}
			}
		}
	}
}

// TestFamilyDeterministic: same (seed, n, opt) → identical descriptors.
func TestFamilyDeterministic(t *testing.T) {
	a := Family(5, 3, Options{})
	b := Family(5, 3, Options{})
	for i := range a {
		if a[i].Descriptor() != b[i].Descriptor() {
			t.Errorf("member %d: Family is not deterministic", i)
		}
	}
}

// TestFamilyMembersValid: every member independently runs end to end.
func TestFamilyMembersValid(t *testing.T) {
	fam := Family(9, 3, Options{})
	for k, c := range fam {
		if _, err := c.Subject().Reference(); err != nil {
			t.Errorf("member %d: identity run failed: %v", k, err)
		}
	}
}
