// Operators the generator needs beyond the ops library. Every generated
// workflow must compute the same final answer under any plan in Stubby's
// transformation space, so these stages are written to be insensitive to
// the two things plans legitimately change: the order values arrive in
// (within one group the runtime sorts on the partition spec's sort fields
// first, so the suffix order can vary between plans) and which record
// happens to lead a group (its full key is what a reduce function is
// handed). Order-independent aggregation plus emitting only the grouped
// key projection makes both irrelevant.
package gen

import (
	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

func num(f keyval.Field) float64 {
	switch x := f.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// identityInts returns [0..n).
func identityInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// projSum groups on the first gw key fields and emits (projected group key,
// sum of value field idx). Unlike ops.Sum it never exposes the group
// leader's ungrouped key fields, so a plan that reorders the within-group
// stream (a partition-function transformation is free to) cannot change
// its output.
func projSum(name string, cpu float64, gw, idx int) wf.Stage {
	gf := identityInts(gw)
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += num(v[idx])
		}
		emit(keyval.Project(k, gf), keyval.T(s))
	}, gf, cpu)
}

// projCount is projSum's counting sibling: (projected group key, |group|).
func projCount(name string, cpu float64, gw int) wf.Stage {
	gf := identityInts(gw)
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(keyval.Project(k, gf), keyval.T(int64(len(vs))))
	}, gf, cpu)
}

// joinStage is an order-insensitive repartition join: values carry a side
// marker in field 0 (ops.TagValue), and each group emits the cross product
// of left and right payloads under the group key, truncated to the first
// maxPairs combinations (a per-group LIMIT, so zipf-hot join keys cannot
// blow the output up). Both sides arrive in a deterministic order (the
// runtime breaks sort ties on the full value), so both the emission order
// and the truncation point are deterministic.
func joinStage(name string, cpu float64, leftMark string, maxPairs int) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var lefts, rights []keyval.Tuple
		for _, v := range vs {
			if len(v) == 0 {
				continue
			}
			if v[0] == leftMark {
				lefts = append(lefts, v[1:])
			} else {
				rights = append(rights, v[1:])
			}
		}
		emitted := 0
		for _, l := range lefts {
			for _, r := range rights {
				if emitted >= maxPairs {
					return
				}
				out := make(keyval.Tuple, 0, len(l)+len(r))
				out = append(out, l...)
				out = append(out, r...)
				emit(k, out)
				emitted++
			}
		}
	}, nil, cpu)
}

func stagePtr(s wf.Stage) *wf.Stage { return &s }
