package gen_test

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/gen"
)

// FuzzGenerate hunts for seeds where the generator breaks its own
// contract: the workflow must validate, execute on its materialized data,
// and regenerate byte-identically.
func FuzzGenerate(f *testing.F) {
	// The fuzz targets start from the exact seeds whose descriptors are
	// golden under testdata/gen/, then let the fuzzer mutate beyond them.
	for seed := int64(1); seed <= gen.CorpusSeeds; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := gen.Generate(seed, gen.Options{Records: 120})
		if err := c.Workflow.Validate(); err != nil {
			t.Fatalf("seed %d: invalid workflow: %v", seed, err)
		}
		if gen.Generate(seed, gen.Options{Records: 120}).Descriptor() != c.Descriptor() {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
		if _, err := c.Subject().Reference(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzRuleEquivalence hunts for seeds where a rule-based planner (no
// profiling required, so each iteration stays cheap) rewrites a generated
// workflow into one that computes different answers.
func FuzzRuleEquivalence(f *testing.F) {
	for seed := int64(1); seed <= gen.CorpusSeeds; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := gen.Generate(seed, gen.Options{Records: 120})
		s := c.Subject()
		ref, err := s.Reference()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range []baselines.Planner{
			baselines.Baseline{Cluster: c.Cluster},
			baselines.YSmart{Cluster: c.Cluster},
		} {
			plan, err := p.Plan(c.Workflow)
			if err != nil {
				t.Fatalf("seed %d: %s failed: %v", seed, p.Name(), err)
			}
			if err := s.CheckPlan(ref, p.Name(), plan); err != nil {
				t.Fatal(err)
			}
		}
	})
}
