//go:build unix

package catalog

import (
	"os"
	"syscall"
)

// tryCatFlock attempts a non-blocking exclusive lock on the catalog lock
// file. The writer holds it for its lifetime, so a second live opener of
// the same directory fails fast instead of interleaving appends; a crashed
// writer's lock vanishes with its process.
func tryCatFlock(f *os.File) bool {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}

func funlockCat(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
