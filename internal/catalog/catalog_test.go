package catalog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/wf"
)

func testEntry(t *testing.T, fp wf.Fingerprint, ds string) Entry {
	t.Helper()
	layout, err := planio.EncodeLayout(wf.Layout{
		PartType:   keyval.HashPartition,
		PartFields: []string{"k1"},
		SortFields: []string{"k1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Entry{
		Fingerprint:  fp.String(),
		Dataset:      ds,
		Workflow:     "W",
		Jobs:         2,
		Records:      100,
		Bytes:        4096,
		Partitions:   4,
		MaxPartShare: 0.3,
		KeyFields:    []string{"k1"},
		ValueFields:  []string{"v1"},
		Layout:       layout,
	}
}

func TestPutLookupRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp := wf.Fingerprint{1, 2}
	if err := s.Put(testEntry(t, fp, "D3")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup(fp)
	if !ok {
		t.Fatal("lookup missed a just-published fingerprint")
	}
	if got.Dataset != "D3" || got.Records != 100 || got.Bytes != 4096 || got.Partitions != 4 {
		t.Errorf("stored result round trip mangled: %+v", got)
	}
	if got.Layout.PartType != keyval.HashPartition || len(got.Layout.PartFields) != 1 {
		t.Errorf("layout round trip mangled: %+v", got.Layout)
	}
	if _, ok := s.Lookup(wf.Fingerprint{9, 9}); ok {
		t.Error("lookup hit an unknown fingerprint")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Errors != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %v, want 0.5", st.HitRate())
	}
}

func TestPutValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Entry{Dataset: "D1"}); err == nil {
		t.Error("Put accepted an entry without a fingerprint")
	}
	if err := s.Put(Entry{Fingerprint: "ab"}); err == nil {
		t.Error("Put accepted an entry without a dataset")
	}
}

func TestDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fps := []wf.Fingerprint{{1, 1}, {2, 2}, {3, 3}}
	for i, fp := range fps {
		if err := s.Put(testEntry(t, fp, "D"+string(rune('1'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one fingerprint with changed sizes: the stale record stays
	// in the log until the reopening compaction drops it.
	e := testEntry(t, fps[0], "D1")
	e.Records = 999
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	// A byte-identical repeat Put is a no-op.
	before := s.Stats().BytesWritten
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().BytesWritten; after != before {
		t.Errorf("identical re-Put appended %d bytes", after-before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("reopened catalog holds %d entries, want 3", r.Len())
	}
	got, ok := r.Lookup(fps[0])
	if !ok || got.Records != 999 {
		t.Errorf("last write did not win across reopen: %+v ok=%v", got, ok)
	}
	if st := r.Stats(); st.Compacted != 1 {
		t.Errorf("reopen compacted %d stale records, want 1", st.Compacted)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry(t, wf.Fingerprint{1, 1}, "D1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage after the last valid record.
	path := filepath.Join(dir, catFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x53, 0x43, 0x41}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("torn tail lost valid records: %d entries, want 1", r.Len())
	}
	if st := r.Stats(); st.TornBytes != 3 {
		t.Errorf("TornBytes = %d, want 3", st.TornBytes)
	}
	if _, ok := r.Lookup(wf.Fingerprint{1, 1}); !ok {
		t.Error("surviving record unreadable after torn-tail recovery")
	}
}

func TestCorruptRecordFreezesScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry(t, wf.Fingerprint{1, 1}, "D1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry(t, wf.Fingerprint{2, 2}, "D2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the last record: its CRC fails, the scan
	// freezes there, and only the first record survives.
	path := filepath.Join(dir, catFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("%d entries survived, want 1 (corrupt record must not decode)", r.Len())
	}
	if _, ok := r.Lookup(wf.Fingerprint{1, 1}); !ok {
		t.Error("first record lost")
	}
	if _, ok := r.Lookup(wf.Fingerprint{2, 2}); ok {
		t.Error("corrupt record resurrected")
	}
	if st := r.Stats(); st.TornBytes == 0 {
		t.Error("corruption not reported in TornBytes")
	}
}

func TestSecondOpenerFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("second live opener succeeded; the flock is not held")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close failed: %v", err)
	}
	r.Close()
}

func TestPutAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry(t, wf.Fingerprint{1, 1}, "D1")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Error("failed Put not counted in Errors")
	}
}

func TestPutStampsAndPreservesTimestamps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp := wf.Fingerprint{21, 22}
	if err := s.Put(testEntry(t, fp, "D1")); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Entry(fp)
	if !ok || e.StoredAtMS == 0 {
		t.Fatalf("Put did not stamp StoredAtMS: %+v", e)
	}
	first := e.StoredAtMS
	// Republishing the same result must neither append a record nor
	// refresh the entry's age.
	before := s.Stats().Puts
	if err := s.Put(testEntry(t, fp, "D1")); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Puts; after != before {
		t.Fatalf("republication appended: puts %d -> %d", before, after)
	}
	if e, _ := s.Entry(fp); e.StoredAtMS != first {
		t.Fatalf("republication churned the timestamp: %d -> %d", first, e.StoredAtMS)
	}
	// A genuinely changed result still wins.
	changed := testEntry(t, fp, "D2")
	if err := s.Put(changed); err != nil {
		t.Fatal(err)
	}
	if e, _ := s.Entry(fp); e.Dataset != "D2" {
		t.Fatalf("changed entry not applied: %+v", e)
	}
}

func TestTTLEvictsAtReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh := wf.Fingerprint{1, 1}
	stale := wf.Fingerprint{2, 2}
	ageless := wf.Fingerprint{3, 3}
	if err := s.Put(testEntry(t, fresh, "Dfresh")); err != nil {
		t.Fatal(err)
	}
	old := testEntry(t, stale, "Dstale")
	old.StoredAtMS = time.Now().Add(-48 * time.Hour).UnixMilli()
	if err := s.Put(old); err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-timestamp record: marshal with StoredAtMS zero and
	// append it raw, as an old writer would have.
	pre := testEntry(t, ageless, "Dageless")
	payload, err := json.Marshal(&pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, catFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frameCatRecord(payload)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, WithTTL(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup(fresh); !ok {
		t.Error("TTL evicted a fresh entry")
	}
	if _, ok := r.Lookup(stale); ok {
		t.Error("TTL kept an entry past its TTL")
	}
	if _, ok := r.Lookup(ageless); ok {
		t.Error("TTL kept an entry of unknown age")
	}
	st := r.Stats()
	if st.Expired != 2 || st.Entries != 1 || st.Errors != 0 {
		t.Errorf("stats after TTL eviction: %+v", st)
	}

	// Eviction is durable: a plain reopen no longer sees the evicted
	// entries (the compacted rewrite dropped their records).
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Len() != 1 {
		t.Errorf("entries after evicting reopen = %d, want 1", rr.Len())
	}
}

func TestLocationCheckEvictsVanished(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := wf.Fingerprint{4, 4}
	gone := wf.Fingerprint{5, 5}
	if err := s.Put(testEntry(t, kept, "Dkept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry(t, gone, "Dgone")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, WithLocationCheck(func(ds string) bool { return ds != "Dgone" }))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup(kept); !ok {
		t.Error("location check evicted an existing dataset's entry")
	}
	if _, ok := r.Lookup(gone); ok {
		t.Error("location check kept a vanished dataset's entry")
	}
	st := r.Stats()
	if st.Vanished != 1 || st.Expired != 0 || st.Entries != 1 || st.Errors != 0 {
		t.Errorf("stats after location eviction: %+v", st)
	}
}
