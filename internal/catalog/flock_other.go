//go:build !unix

package catalog

import "os"

// Without flock, double-open protection degrades to nothing: two live
// catalogs over one directory interleave appends. Unix hosts (the
// deployment target) get the real lock.
func tryCatFlock(f *os.File) bool { return true }

func funlockCat(f *os.File) {}
