// Package catalog implements the durable cross-workflow reuse catalog
// (ReStore-style): a mapping from rooted sub-plan fingerprints
// (wf.SubplanFingerprint) to previously materialized results — the DFS
// dataset the result lives under plus the layout and measured sizes a
// stored-result scan needs for costing. Sessions populate it when a plan
// runs to completion and the optimizer consults it to replace a matched
// sub-DAG with a scan of the stored result.
//
// # On-disk layout
//
// A catalog directory holds one live log plus the compaction temp file:
//
//	dir/
//	  catalog.log       append-only CRC-32C records, single writer (flock)
//	  catalog.log.tmp   compaction scratch, published via rename
//
// Each record is
//
//	magic   uint32  catMagic ("SCAT")
//	kind    uint8   catKindEntry
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) over the payload
//	payload [length]byte  JSON (Entry)
//
// in big-endian — the same record discipline as the job journal and the
// plan store's segments. A torn tail (crash mid-append) fails the length
// or CRC check and freezes the scan at the last valid record; Open then
// compacts the surviving records (last entry per fingerprint wins) into a
// fresh log via write-temp-then-rename. Payloads are kept framed in memory
// and re-verified against their CRC on every Lookup, like plan records —
// a flipped bit yields a miss (recomputation), never a wrong reuse.
package catalog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
)

const (
	catMagic      = 0x53434154 // "SCAT"
	catKindEntry  = 1
	catHeaderSize = 4 + 1 + 4 + 4
	catMaxRecord  = 1 << 30 // sanity bound; entries are a few hundred bytes

	catFile = "catalog.log"
)

var catCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Entry is the JSON payload of one catalog record: one materialized result
// keyed by its producing sub-plan's fingerprint.
type Entry struct {
	// Fingerprint is the rooted sub-plan fingerprint, 32 hex digits
	// (wf.Fingerprint.String()).
	Fingerprint string `json:"fingerprint"`
	// Dataset is the DFS dataset ID the result was materialized under.
	Dataset string `json:"dataset"`
	// Workflow names the workflow whose run produced the result (reporting
	// only; fingerprints are name-insensitive).
	Workflow string `json:"workflow,omitempty"`
	// Jobs is how many jobs the producing sub-DAG ran — the recomputation a
	// reuse hit avoids.
	Jobs int `json:"jobs,omitempty"`
	// Records/Bytes/Partitions are the measured sizes of the materialized
	// result on the DFS.
	Records    float64 `json:"records"`
	Bytes      float64 `json:"bytes"`
	Partitions int     `json:"partitions"`
	// MaxPartShare is the largest partition's fraction of the bytes (0 =
	// unknown; estimation then assumes uniform).
	MaxPartShare float64 `json:"maxPartShare,omitempty"`
	// KeyFields/ValueFields name the record fields.
	KeyFields   []string `json:"keyFields,omitempty"`
	ValueFields []string `json:"valueFields,omitempty"`
	// Layout is the materialized physical design, encoded with
	// planio.EncodeLayout (exact int64 split points).
	Layout json.RawMessage `json:"layout,omitempty"`
	// StoredAtMS is when the entry was published (Unix milliseconds),
	// stamped by Put when zero. Zero in old records, whose age is
	// therefore unknown: a TTL-bearing reopen treats them as expired.
	StoredAtMS int64 `json:"storedAtMS,omitempty"`
}

// Stats is a point-in-time snapshot of catalog activity. Counters are
// cumulative since Open.
type Stats struct {
	// Entries is the current number of distinct fingerprints held.
	Entries int
	// Puts counts entries published (including overwrites of a fingerprint).
	Puts uint64
	// Hits / Misses count Lookup outcomes; a CRC or decode failure on read
	// counts as a miss (and an Error).
	Hits   uint64
	Misses uint64
	// Compacted is how many stale records (duplicate fingerprints) the
	// reopening compaction dropped.
	Compacted int
	// Expired is how many entries the reopening scan dropped for exceeding
	// the TTL (WithTTL); Vanished is how many it dropped because their
	// stored dataset location no longer exists (WithLocationCheck). Both
	// are eviction outcomes, not errors.
	Expired  int
	Vanished int
	// TornBytes is how many trailing bytes the reopening scan discarded as a
	// torn or corrupt tail.
	TornBytes int64
	// BytesWritten counts record bytes appended (headers included).
	BytesWritten uint64
	// Errors counts append/sync/verify failures; lookups keep working when
	// it rises, falling back to recomputation.
	Errors uint64
}

// HitRate returns Hits over total lookups, or 0 when none happened.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// framed is one in-memory record: the raw payload with its CRC, re-verified
// on every read.
type framed struct {
	payload []byte
	crc     uint32
}

// Store is a durable reuse catalog. All methods are safe for concurrent
// use. A Store holds an exclusive flock on its directory for its lifetime;
// a second live opener fails rather than interleaving appends.
type Store struct {
	dir      string
	ttl      time.Duration
	locCheck func(dataset string) bool

	mu      sync.Mutex
	f       *os.File
	lock    *os.File // dir/catalog.lock, stable inode (never renamed over)
	entries map[string]framed

	expired      int
	vanished     int
	puts         uint64
	hits         uint64
	misses       uint64
	compacted    int
	tornBytes    int64
	bytesWritten uint64
	errs         uint64
}

// Option configures a Store at Open.
type Option func(*Store)

// WithTTL evicts entries older than ttl at reopen: the compaction pass
// drops them (counted in Stats.Expired, never surfaced as errors). Entries
// from before timestamps existed have unknown age and are conservatively
// treated as expired. Zero disables age-based eviction.
func WithTTL(ttl time.Duration) Option {
	return func(s *Store) {
		if ttl > 0 {
			s.ttl = ttl
		}
	}
}

// WithLocationCheck evicts entries whose stored dataset location no longer
// exists: at reopen, check(entry.Dataset) returning false drops the entry
// (counted in Stats.Vanished). A reuse hit on a vanished dataset would
// produce a plan scanning nothing, so evicting at open is strictly safer
// than discovering the hole at execution time.
func WithLocationCheck(check func(dataset string) bool) Option {
	return func(s *Store) { s.locCheck = check }
}

// Open opens (creating if needed) the catalog rooted at dir, recovering
// crash-safely: the scan stops at the first torn or corrupt record and the
// survivors — minus entries evicted by WithTTL / WithLocationCheck — are
// compacted (last entry per fingerprint wins) into a fresh log.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	path := filepath.Join(dir, catFile)
	s := &Store{dir: dir, entries: make(map[string]framed)}
	for _, o := range opts {
		o(s)
	}

	lock, err := os.OpenFile(filepath.Join(dir, "catalog.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if !tryCatFlock(lock) {
		lock.Close()
		return nil, fmt.Errorf("catalog: %s is held by a live writer", dir)
	}
	s.lock = lock
	fail := func(err error) (*Store, error) {
		funlockCat(lock)
		lock.Close()
		return nil, err
	}

	payloads, torn, err := scanCatalog(path)
	if err != nil {
		return fail(err)
	}
	s.tornBytes = torn

	// Replay, last entry per fingerprint winning, preserving first-seen
	// order for the compacted rewrite (deterministic file contents).
	var order []string
	for _, p := range payloads {
		fp, ok := payloadFingerprint(p)
		if !ok {
			s.compacted++
			continue
		}
		if _, seen := s.entries[fp]; !seen {
			order = append(order, fp)
		} else {
			s.compacted++
		}
		s.entries[fp] = framed{payload: p, crc: crc32.Checksum(p, catCRCTable)}
	}

	// Eviction pass: TTL and dataset-existence checks run against the
	// replayed survivors, so evicted entries never reach the compacted
	// rewrite — the log shrinks, and lookups can't hit stale results.
	if s.ttl > 0 || s.locCheck != nil {
		cutoff := time.Now().Add(-s.ttl).UnixMilli()
		kept := order[:0]
		for _, fp := range order {
			var e Entry
			keep := json.Unmarshal(s.entries[fp].payload, &e) == nil
			if keep && s.ttl > 0 && e.StoredAtMS <= cutoff {
				keep = false
				s.expired++
			}
			if keep && s.locCheck != nil && !s.locCheck(e.Dataset) {
				keep = false
				s.vanished++
			}
			if !keep {
				delete(s.entries, fp)
				continue
			}
			kept = append(kept, fp)
		}
		order = kept
	}

	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(fmt.Errorf("catalog: compact: %w", err))
	}
	for _, fp := range order {
		if _, err := tf.Write(frameCatRecord(s.entries[fp].payload)); err != nil {
			tf.Close()
			return fail(fmt.Errorf("catalog: compact: %w", err))
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fail(fmt.Errorf("catalog: compact: %w", err))
	}
	if err := tf.Close(); err != nil {
		return fail(fmt.Errorf("catalog: compact: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(fmt.Errorf("catalog: compact: %w", err))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("catalog: %w", err))
	}
	s.f = f
	return s, nil
}

// payloadFingerprint extracts just the fingerprint key from a payload.
func payloadFingerprint(p []byte) (string, bool) {
	var e struct {
		Fingerprint string `json:"fingerprint"`
	}
	if json.Unmarshal(p, &e) != nil || e.Fingerprint == "" {
		return "", false
	}
	return e.Fingerprint, true
}

// scanCatalog reads every valid record payload from path, stopping at the
// first torn or corrupt one. A missing file is an empty catalog.
func scanCatalog(path string) ([][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: %w", err)
	}
	var out [][]byte
	off := int64(0)
	size := int64(len(data))
	for off+catHeaderSize <= size {
		hdr := data[off:]
		if binary.BigEndian.Uint32(hdr) != catMagic || hdr[4] != catKindEntry {
			break
		}
		n := int64(binary.BigEndian.Uint32(hdr[5:]))
		if n > catMaxRecord || off+catHeaderSize+n > size {
			break
		}
		payload := data[off+catHeaderSize : off+catHeaderSize+n]
		if crc32.Checksum(payload, catCRCTable) != binary.BigEndian.Uint32(hdr[9:]) {
			break
		}
		out = append(out, append([]byte(nil), payload...))
		off += catHeaderSize + n
	}
	return out, size - off, nil
}

// frameCatRecord frames one payload: header, CRC, bytes.
func frameCatRecord(payload []byte) []byte {
	buf := make([]byte, catHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], catMagic)
	buf[4] = catKindEntry
	binary.BigEndian.PutUint32(buf[5:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[9:], crc32.Checksum(payload, catCRCTable))
	copy(buf[catHeaderSize:], payload)
	return buf
}

// Put publishes one entry, durably (appended and fsynced before returning).
// A repeat Put of a byte-identical entry is a no-op; a changed entry for a
// known fingerprint is appended and wins (and the reopening compaction
// drops the stale record).
func (s *Store) Put(e Entry) error {
	if e.Fingerprint == "" || e.Dataset == "" {
		return errors.New("catalog: entry needs a fingerprint and a dataset")
	}
	stamp := e.StoredAtMS
	if stamp == 0 {
		stamp = time.Now().UnixMilli()
	}
	e.StoredAtMS = stamp
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("catalog: encode: %w", err)
	}
	if len(payload) > catMaxRecord {
		return fmt.Errorf("catalog: entry of %d bytes exceeds limit", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		s.errs++
		return errors.New("catalog: closed")
	}
	if prev, ok := s.entries[e.Fingerprint]; ok {
		if string(prev.payload) == string(payload) {
			return nil
		}
		// A republication that differs only in its fresh timestamp is
		// still the same result — keep the original entry (and its age)
		// rather than churning the log on every run.
		var pe Entry
		if json.Unmarshal(prev.payload, &pe) == nil && pe.StoredAtMS != 0 {
			same := e
			same.StoredAtMS = pe.StoredAtMS
			if sp, err := json.Marshal(&same); err == nil && string(sp) == string(prev.payload) {
				return nil
			}
		}
	}
	buf := frameCatRecord(payload)
	if _, err := s.f.Write(buf); err != nil {
		s.errs++
		return fmt.Errorf("catalog: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.errs++
		return fmt.Errorf("catalog: sync: %w", err)
	}
	s.bytesWritten += uint64(len(buf))
	s.entries[e.Fingerprint] = framed{payload: payload, crc: crc32.Checksum(payload, catCRCTable)}
	s.puts++
	return nil
}

// Lookup resolves a sub-plan fingerprint to its stored result. The held
// payload is CRC-re-verified before decoding; a corrupt or undecodable
// entry reports a miss (reuse then falls back to recomputation).
func (s *Store) Lookup(fp wf.Fingerprint) (trans.StoredResult, bool) {
	key := fp.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.entries[key]
	if !ok {
		s.misses++
		return trans.StoredResult{}, false
	}
	if crc32.Checksum(fr.payload, catCRCTable) != fr.crc {
		s.errs++
		s.misses++
		return trans.StoredResult{}, false
	}
	var e Entry
	if err := json.Unmarshal(fr.payload, &e); err != nil {
		s.errs++
		s.misses++
		return trans.StoredResult{}, false
	}
	var layout wf.Layout
	if len(e.Layout) > 0 {
		var err error
		if layout, err = planio.DecodeLayout(e.Layout); err != nil {
			s.errs++
			s.misses++
			return trans.StoredResult{}, false
		}
	}
	s.hits++
	return trans.StoredResult{
		Dataset:     e.Dataset,
		Layout:      layout,
		KeyFields:   e.KeyFields,
		ValueFields: e.ValueFields,
		Records:     e.Records,
		Bytes:       e.Bytes,
		Partitions:  e.Partitions,
	}, true
}

// Entry returns the full catalog entry for a fingerprint (CRC-verified),
// for reporting and tests.
func (s *Store) Entry(fp wf.Fingerprint) (Entry, bool) {
	s.mu.Lock()
	fr, ok := s.entries[fp.String()]
	s.mu.Unlock()
	if !ok || crc32.Checksum(fr.payload, catCRCTable) != fr.crc {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(fr.payload, &e); err != nil {
		return Entry{}, false
	}
	return e, true
}

// Len returns the number of distinct fingerprints held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Dir returns the catalog's directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the catalog's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      len(s.entries),
		Puts:         s.puts,
		Hits:         s.hits,
		Misses:       s.misses,
		Compacted:    s.compacted,
		Expired:      s.expired,
		Vanished:     s.vanished,
		TornBytes:    s.tornBytes,
		BytesWritten: s.bytesWritten,
		Errors:       s.errs,
	}
}

// Close releases the log and its lock. Puts after Close fail and count as
// Errors; Lookups keep answering from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if s.lock != nil {
		funlockCat(s.lock)
		s.lock.Close()
		s.lock = nil
	}
	return err
}
