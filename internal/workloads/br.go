package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildBR constructs the Business Report Generation workflow — the shape of
// the paper's running example (Figure 1) and of Section 7.1's seven-job
// description: an initial scan of a lineitem-like table (J1, map-only), two
// filtered group-aggregates over {orderID, partID} and {orderID, suppID}
// (J2, J3), per-{orderID} rollups of each (J4, J5), and distinct-count jobs
// over the aggregated prices (J6, J7).
//
// The packing surface is rich: J1 replicates into J2/J3 (inter-vertical,
// one-to-many), J4/J5 pack into J2/J3 (their {orderID} grouping flows
// through {orderID, partID}/{orderID, suppID}), the two packed chains share
// a scan (horizontal), and J6/J7 are concurrently runnable (extended
// horizontal) — letting full Stubby collapse seven jobs to two.
func buildBR(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numLines := opt.n(60000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0xb123))
	var lineitem []keyval.Pair
	for i := 0; i < numLines; i++ {
		order := int64(rng.Intn(6000))
		part := int64(rng.Intn(800))
		supp := int64(rng.Intn(200))
		price := rng.Float64() * 500
		lineitem = append(lineitem, keyval.Pair{Key: keyval.T(order), Value: keyval.T(part, supp, price)})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("lineitem", lineitem, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"orderID"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"orderID"}, SortFields: []string{"orderID"}},
	}); err != nil {
		return nil, nil, err
	}

	priceFilter := keyval.Interval{Lo: 50.0} // drop cheap line items

	// J1: map-only scan/initial processing.
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "lineitem",
			Stages: []wf.Stage{ops.Identity("M1", 0.5e-6)},
			KeyIn:  []string{"orderID"}, ValIn: []string{"partID", "suppID", "price"},
			KeyOut: []string{"orderID"}, ValOut: []string{"partID", "suppID", "price"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "scanned",
			KeyOut: []string{"orderID"}, ValOut: []string{"partID", "suppID", "price"},
		}},
	}

	// groupAgg builds a filtered sum+max aggregate over (orderID, dim).
	groupAgg := func(id, out, dim string, dimIdx int) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "scanned",
				Stages: []wf.Stage{wf.MapStage("M_"+id, func(k, v keyval.Tuple, emit wf.Emit) {
					if !priceFilter.Contains(v[2]) {
						return
					}
					emit(keyval.T(k[0], v[dimIdx]), keyval.T(v[2]))
				}, 0.6e-6)},
				Filter: &wf.Filter{Field: "price", Interval: priceFilter},
				KeyIn:  []string{"orderID"}, ValIn: []string{"partID", "suppID", "price"},
				KeyOut: []string{"orderID", dim}, ValOut: []string{"price"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{ops.SumAndMax("R_"+id, 0.6e-6, 0)},
				KeyIn:  []string{"orderID", dim}, ValIn: []string{"price"},
				KeyOut: []string{"orderID", dim}, ValOut: []string{"sumP", "maxP"},
			}},
		}
	}
	j2 := groupAgg("J2", "bypart", "partID", 0)
	j3 := groupAgg("J3", "bysupp", "suppID", 1)

	// rollup builds the per-orderID rollup of a group-aggregate output.
	rollup := func(id, in, dim, out string) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: in,
				Stages: []wf.Stage{ops.Rekey("M_"+id, 0.4e-6, []ops.Src{ops.K(0)}, []ops.Src{ops.V(0)})},
				KeyIn:  []string{"orderID", dim}, ValIn: []string{"sumP", "maxP"},
				KeyOut: []string{"orderID"}, ValOut: []string{"sumP"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{ops.SumAndMax("R_"+id, 0.5e-6, 0)},
				KeyIn:  []string{"orderID"}, ValIn: []string{"sumP"},
				KeyOut: []string{"orderID"}, ValOut: []string{"sumP", "maxP"},
			}},
		}
	}
	j4 := rollup("J4", "bypart", "partID", "orderpart")
	j5 := rollup("J5", "bysupp", "suppID", "ordersupp")

	// distinct builds the distinct-aggregated-price counter.
	distinct := func(id, in, out string) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: in,
				Stages: []wf.Stage{wf.MapStage("M_"+id, func(k, v keyval.Tuple, emit wf.Emit) {
					emit(keyval.T(float64(int64(asF(v[0])))), keyval.T(int64(1)))
				}, 0.4e-6)},
				KeyIn: []string{"orderID"}, ValIn: []string{"sumP", "maxP"},
				KeyOut: []string{"bucket"}, ValOut: []string{"n"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{ops.DistinctMark("R_"+id, 0.4e-6)},
				KeyIn:  []string{"bucket"}, ValIn: []string{"n"},
				KeyOut: []string{"g"}, ValOut: []string{"one"},
			}},
		}
	}
	j6 := distinct("J6", "orderpart", "distinctpart")
	j7 := distinct("J7", "ordersupp", "distinctsupp")

	w := &wf.Workflow{
		Name: "BR",
		Jobs: []*wf.Job{j1, j2, j3, j4, j5, j6, j7},
		Datasets: []*wf.Dataset{
			{ID: "lineitem", Base: true, KeyFields: []string{"orderID"}, ValueFields: []string{"partID", "suppID", "price"}},
			{ID: "scanned", KeyFields: []string{"orderID"}, ValueFields: []string{"partID", "suppID", "price"}},
			{ID: "bypart", KeyFields: []string{"orderID", "partID"}, ValueFields: []string{"sumP", "maxP"}},
			{ID: "bysupp", KeyFields: []string{"orderID", "suppID"}, ValueFields: []string{"sumP", "maxP"}},
			{ID: "orderpart", KeyFields: []string{"orderID"}, ValueFields: []string{"sumP", "maxP"}},
			{ID: "ordersupp", KeyFields: []string{"orderID"}, ValueFields: []string{"sumP", "maxP"}},
			{ID: "distinctpart", KeyFields: []string{"g"}, ValueFields: []string{"one"}},
			{ID: "distinctsupp", KeyFields: []string{"g"}, ValueFields: []string{"one"}},
		},
	}
	return w, dfs, nil
}
