package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildBA constructs the Business Analytics Query workflow: TPC-H Q17
// ("average yearly revenue lost if small-quantity orders were no longer
// filled"), a four-job plan over lineitem and part, both partitioned on
// {partID} as Table 1 annotates (Section 7.1):
//
//	J1 scans and projects lineitem (map-only);
//	J2 filters part by brand/container, joins with J1's output, and
//	   computes 0.2 x avg(quantity) per part;
//	J3 joins J1's and J2's outputs, keeping lineitem rows below the
//	   threshold;
//	J4 sums their price / 7.
//
// Both J2 and J3 group on {partID}, which flows unchanged end to end, and
// the base tables are co-partitioned and sorted on partID — so intra-job
// vertical packing cascades down the whole plan, and J2/J3's shared scan of
// J1's output offers horizontal packing, matching the paper's description
// of BA exercising both groups.
func buildBA(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numParts := opt.n(6000)
	numLines := opt.n(60000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0xba17))
	var lineitem []keyval.Pair
	for i := 0; i < numLines; i++ {
		pk := int64(rng.Intn(numParts))
		qty := float64(rng.Intn(50) + 1)
		price := rng.Float64() * 1000
		lineitem = append(lineitem, keyval.Pair{Key: keyval.T(pk), Value: keyval.T(qty, price)})
	}
	var part []keyval.Pair
	for p := 0; p < numParts; p++ {
		brand := int64(rng.Intn(25))
		container := int64(rng.Intn(40))
		part = append(part, keyval.Pair{Key: keyval.T(int64(p)), Value: keyval.T(brand, container)})
	}
	dfs := mrsim.NewDFS()
	// Co-partitioned base tables: same partitioning, same file counts.
	layout := wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"partkey"}, SortFields: []string{"partkey"}}
	if err := dfs.Ingest("lineitem", lineitem, mrsim.IngestSpec{
		NumPartitions: 24, KeyFields: []string{"partkey"}, Layout: layout,
	}); err != nil {
		return nil, nil, err
	}
	if err := dfs.Ingest("part", part, mrsim.IngestSpec{
		NumPartitions: 24, KeyFields: []string{"partkey"}, Layout: layout,
	}); err != nil {
		return nil, nil, err
	}

	brandFilter := keyval.Interval{Lo: int64(0), Hi: int64(5)} // ~20% of parts

	// J1: map-only scan/projection of lineitem.
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "lineitem",
			Stages: []wf.Stage{ops.Identity("M1", 0.5e-6)},
			KeyIn:  []string{"partkey"}, ValIn: []string{"qty", "price"},
			KeyOut: []string{"partkey"}, ValOut: []string{"qty", "price"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "lproj",
			KeyOut: []string{"partkey"}, ValOut: []string{"qty", "price"},
		}},
	}

	// J2: filtered join with part; 0.2 x avg quantity per part.
	j2Join := wf.ReduceStage("R2", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		match := false
		var sum float64
		var n int
		for _, v := range vs {
			switch v[0].(string) {
			case "P":
				match = true
			case "L":
				sum += asF(v[1])
				n++
			}
		}
		if match && n > 0 {
			emit(k, keyval.T(0.2*sum/float64(n)))
		}
	}, nil, 0.9e-6)
	j2 := &wf.Job{
		ID: "J2", Config: wf.DefaultConfig(), Origin: []string{"J2"},
		MapBranches: []wf.MapBranch{
			{
				Tag: 0, Input: "lproj",
				Stages: []wf.Stage{ops.TagValue("M2l", 0.4e-6, "L")},
				KeyIn:  []string{"partkey"}, ValIn: []string{"qty", "price"},
				KeyOut: []string{"partkey"}, ValOut: []string{"tag", "qty", "price"},
			},
			{
				Tag: 0, Input: "part",
				Stages: []wf.Stage{wf.MapStage("M2p", func(k, v keyval.Tuple, emit wf.Emit) {
					if brandFilter.Contains(v[0]) {
						emit(keyval.T(k[0]), keyval.T("P"))
					}
				}, 0.4e-6)},
				Filter: &wf.Filter{Field: "brand", Interval: brandFilter},
				KeyIn:  []string{"partkey"}, ValIn: []string{"brand", "container"},
				KeyOut: []string{"partkey"}, ValOut: []string{"tag"},
			},
		},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "threshold",
			Stages: []wf.Stage{j2Join},
			KeyIn:  []string{"partkey"}, ValIn: []string{"tag", "payload"},
			KeyOut: []string{"partkey"}, ValOut: []string{"limit"},
		}},
	}

	// J3: join lineitem rows with thresholds; keep below-threshold rows.
	j3Join := wf.ReduceStage("R3", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		limit := -1.0
		for _, v := range vs {
			if v[0].(string) == "T" {
				limit = asF(v[1])
				break
			}
		}
		if limit < 0 {
			return
		}
		for _, v := range vs {
			if v[0].(string) == "L" && asF(v[1]) < limit {
				emit(k, keyval.T(v[2]))
			}
		}
	}, nil, 0.9e-6)
	j3 := &wf.Job{
		ID: "J3", Config: wf.DefaultConfig(), Origin: []string{"J3"},
		MapBranches: []wf.MapBranch{
			{
				Tag: 0, Input: "lproj",
				Stages: []wf.Stage{ops.TagValue("M3l", 0.4e-6, "L")},
				KeyIn:  []string{"partkey"}, ValIn: []string{"qty", "price"},
				KeyOut: []string{"partkey"}, ValOut: []string{"tag", "qty", "price"},
			},
			{
				Tag: 0, Input: "threshold",
				Stages: []wf.Stage{ops.TagValue("M3t", 0.4e-6, "T")},
				KeyIn:  []string{"partkey"}, ValIn: []string{"limit"},
				KeyOut: []string{"partkey"}, ValOut: []string{"tag", "limit"},
			},
		},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "losses",
			Stages: []wf.Stage{j3Join},
			KeyIn:  []string{"partkey"}, ValIn: []string{"tag", "payload"},
			KeyOut: []string{"partkey"}, ValOut: []string{"price"},
		}},
	}

	// J4: total yearly loss = sum(price) / 7.
	j4Reduce := wf.ReduceStage("R4", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += asF(v[0])
		}
		emit(k, keyval.T(s/7))
	}, nil, 0.5e-6)
	j4 := &wf.Job{
		ID: "J4", Config: wf.DefaultConfig(), Origin: []string{"J4"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "losses",
			Stages: []wf.Stage{ops.Rekey("M4", 0.4e-6, []ops.Src{}, []ops.Src{ops.V(0)}),
				wf.MapStage("M4g", func(k, v keyval.Tuple, emit wf.Emit) {
					emit(keyval.T(int64(0)), v)
				}, 0.1e-6)},
			KeyIn: []string{"partkey"}, ValIn: []string{"price"},
			KeyOut: []string{"g"}, ValOut: []string{"price"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "avgloss",
			Stages:   []wf.Stage{j4Reduce},
			Combiner: stagePtr(ops.SumCombiner("C4", 0.4e-6, 0)),
			KeyIn:    []string{"g"}, ValIn: []string{"price"},
			KeyOut: []string{"g"}, ValOut: []string{"loss"},
		}},
	}

	w := &wf.Workflow{
		Name: "BA",
		Jobs: []*wf.Job{j1, j2, j3, j4},
		Datasets: []*wf.Dataset{
			{ID: "lineitem", Base: true, KeyFields: []string{"partkey"}, ValueFields: []string{"qty", "price"}},
			{ID: "part", Base: true, KeyFields: []string{"partkey"}, ValueFields: []string{"brand", "container"}},
			{ID: "lproj", KeyFields: []string{"partkey"}, ValueFields: []string{"qty", "price"}},
			{ID: "threshold", KeyFields: []string{"partkey"}, ValueFields: []string{"limit"}},
			{ID: "losses", KeyFields: []string{"partkey"}, ValueFields: []string{"price"}},
			{ID: "avgloss", KeyFields: []string{"g"}, ValueFields: []string{"loss"}},
		},
	}
	return w, dfs, nil
}
