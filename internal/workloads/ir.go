package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildIR constructs the Information Retrieval workflow: TF-IDF over a
// randomly generated corpus partitioned on the document name (Section 7.1).
// Three jobs: (a) word frequency per document, (b) total words per
// document, (c) document frequency per word and the TF-IDF weight of each
// (word, document) pair.
//
// The vertical packing opportunity: J2 groups on {doc}, which flows
// unchanged through J1's reduce (K2/K3 = {word, doc}), so J1 can partition
// on {doc} and sort on (doc, word), turning J2 map-only and then packing it
// into J1. J3 groups on {word}, which does not flow through J2's {doc}
// grouping, so J3 keeps its shuffle.
func buildIR(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numDocs := opt.n(300)
	wordsPerDoc := 200
	vocab := opt.n(2000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x1221))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(vocab-1))
	var pairs []keyval.Pair
	for d := 0; d < numDocs; d++ {
		for i := 0; i < wordsPerDoc; i++ {
			w := fmt.Sprintf("w%05d", zipf.Uint64())
			pairs = append(pairs, keyval.Pair{Key: keyval.T(int64(d)), Value: keyval.T(w)})
		}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("docs", pairs, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"doc"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"doc"}, SortFields: []string{"doc"}},
	}); err != nil {
		return nil, nil, err
	}

	totalDocs := float64(numDocs)

	// J1: word frequency n(word, doc).
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "docs",
			Stages: []wf.Stage{wf.MapStage("M1", func(k, v keyval.Tuple, emit wf.Emit) {
				emit(keyval.T(v[0], k[0]), keyval.T(int64(1)))
			}, 0.8e-6)},
			KeyIn: []string{"doc"}, ValIn: []string{"word"},
			KeyOut: []string{"word", "doc"}, ValOut: []string{"n"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "freq",
			Stages:   []wf.Stage{ops.Sum("R1", 0.5e-6, 0)},
			Combiner: stagePtr(ops.SumCombiner("C1", 0.5e-6, 0)),
			KeyIn:    []string{"word", "doc"}, ValIn: []string{"n"},
			KeyOut: []string{"word", "doc"}, ValOut: []string{"n"},
		}},
	}

	// J2: words per document; emits (word, doc) -> (n, N).
	j2Reduce := wf.ReduceStage("R2", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var total float64
		for _, v := range vs {
			total += asF(v[1])
		}
		for _, v := range vs {
			emit(keyval.T(v[0], k[0]), keyval.T(v[1], total))
		}
	}, nil, 0.7e-6)
	j2 := &wf.Job{
		ID: "J2", Config: wf.DefaultConfig(), Origin: []string{"J2"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "freq",
			Stages: []wf.Stage{ops.Rekey("M2", 0.5e-6, []ops.Src{ops.K(1)}, []ops.Src{ops.K(0), ops.V(0)})},
			KeyIn:  []string{"word", "doc"}, ValIn: []string{"n"},
			KeyOut: []string{"doc"}, ValOut: []string{"word", "n"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "perdoc",
			Stages: []wf.Stage{j2Reduce},
			KeyIn:  []string{"doc"}, ValIn: []string{"word", "n"},
			KeyOut: []string{"word", "doc"}, ValOut: []string{"n", "N"},
		}},
	}

	// J3: document frequency and TF-IDF weight per (word, doc).
	j3Reduce := wf.ReduceStage("R3", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		m := float64(len(vs))
		idf := math.Log(totalDocs / m)
		for _, v := range vs {
			tf := asF(v[1]) / asF(v[2])
			emit(keyval.T(k[0], v[0]), keyval.T(tf*idf))
		}
	}, nil, 0.9e-6)
	j3 := &wf.Job{
		ID: "J3", Config: wf.DefaultConfig(), Origin: []string{"J3"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "perdoc",
			Stages: []wf.Stage{ops.Rekey("M3", 0.5e-6, []ops.Src{ops.K(0)}, []ops.Src{ops.K(1), ops.V(0), ops.V(1)})},
			KeyIn:  []string{"word", "doc"}, ValIn: []string{"n", "N"},
			KeyOut: []string{"word"}, ValOut: []string{"doc", "n", "N"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "tfidf",
			Stages: []wf.Stage{j3Reduce},
			KeyIn:  []string{"word"}, ValIn: []string{"doc", "n", "N"},
			KeyOut: []string{"word", "doc"}, ValOut: []string{"tfidf"},
		}},
	}

	w := &wf.Workflow{
		Name: "IR",
		Jobs: []*wf.Job{j1, j2, j3},
		Datasets: []*wf.Dataset{
			{ID: "docs", Base: true, KeyFields: []string{"doc"}, ValueFields: []string{"word"}},
			{ID: "freq", KeyFields: []string{"word", "doc"}, ValueFields: []string{"n"}},
			{ID: "perdoc", KeyFields: []string{"word", "doc"}, ValueFields: []string{"n", "N"}},
			{ID: "tfidf", KeyFields: []string{"word", "doc"}, ValueFields: []string{"tfidf"}},
		},
	}
	return w, dfs, nil
}

func stagePtr(s wf.Stage) *wf.Stage { return &s }

func asF(f keyval.Field) float64 {
	switch x := f.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}
