package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildLA constructs the Log Analysis workflow (Pavlo et al.'s complex join
// task, Section 7.1): filter uservisits by a date range and join with
// pageranks on the page URL (J1); aggregate average pagerank and total ad
// revenue per user (J2); re-key by revenue (J3, map-only — standing in for
// the paper's split-point sampling job, whose role Stubby's profile-driven
// partition transformation subsumes, see DESIGN.md); find the user with the
// highest total ad revenue (J4).
//
// uservisits is range partitioned on {date} (the Table 1 annotation), so
// J1's filter annotation enables partition pruning at the base input.
func buildLA(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numVisits := opt.n(60000)
	numURLs := opt.n(8000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x1a1a))
	var visits []keyval.Pair
	for i := 0; i < numVisits; i++ {
		date := int64(rng.Intn(365))
		url := int64(rng.Intn(numURLs))
		user := int64(rng.Intn(4000))
		revenue := rng.Float64() * 10
		visits = append(visits, keyval.Pair{Key: keyval.T(date, url), Value: keyval.T(user, revenue)})
	}
	var ranks []keyval.Pair
	for u := 0; u < numURLs; u++ {
		ranks = append(ranks, keyval.Pair{Key: keyval.T(int64(u)), Value: keyval.T(rng.Float64())})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("uservisits", visits, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"date", "url"},
		Layout:        wf.Layout{PartType: keyval.RangePartition, PartFields: []string{"date"}, SortFields: []string{"date"}},
	}); err != nil {
		return nil, nil, err
	}
	if err := dfs.Ingest("pageranks", ranks, mrsim.IngestSpec{
		NumPartitions: 8,
		KeyFields:     []string{"url"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"url"}},
	}); err != nil {
		return nil, nil, err
	}

	dateFilter := keyval.Interval{Lo: int64(90), Hi: int64(180)} // one quarter

	// J1: filtered repartition join on url.
	j1Join := wf.ReduceStage("R1", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var rank float64
		found := false
		for _, v := range vs {
			if v[0].(string) == "R" {
				rank = asF(v[1])
				found = true
				break
			}
		}
		if !found {
			return
		}
		for _, v := range vs {
			if v[0].(string) == "V" {
				emit(keyval.T(v[1]), keyval.T(rank, v[2]))
			}
		}
	}, nil, 1.0e-6)
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{
			{
				Tag: 0, Input: "uservisits",
				Stages: []wf.Stage{wf.MapStage("M1v", func(k, v keyval.Tuple, emit wf.Emit) {
					if !dateFilter.Contains(k[0]) {
						return
					}
					emit(keyval.T(k[1]), keyval.T("V", v[0], v[1]))
				}, 0.6e-6)},
				Filter: &wf.Filter{Field: "date", Interval: dateFilter},
				KeyIn:  []string{"date", "url"}, ValIn: []string{"user", "revenue"},
				KeyOut: []string{"url"}, ValOut: []string{"tag", "user", "revenue"},
			},
			{
				Tag: 0, Input: "pageranks",
				Stages: []wf.Stage{ops.TagValue("M1r", 0.4e-6, "R")},
				KeyIn:  []string{"url"}, ValIn: []string{"rank"},
				KeyOut: []string{"url"}, ValOut: []string{"tag", "rank"},
			},
		},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "joined",
			Stages: []wf.Stage{j1Join},
			KeyIn:  []string{"url"}, ValIn: []string{"tag", "payload"},
			KeyOut: []string{"user"}, ValOut: []string{"rank", "revenue"},
		}},
	}

	// J2: per-user average rank and total revenue.
	j2Reduce := wf.ReduceStage("R2", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var sumRank, sumRev float64
		for _, v := range vs {
			sumRank += asF(v[0])
			sumRev += asF(v[1])
		}
		emit(k, keyval.T(sumRank/float64(len(vs)), sumRev))
	}, nil, 0.7e-6)
	j2 := &wf.Job{
		ID: "J2", Config: wf.DefaultConfig(), Origin: []string{"J2"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "joined",
			Stages: []wf.Stage{ops.Identity("M2", 0.4e-6)},
			KeyIn:  []string{"user"}, ValIn: []string{"rank", "revenue"},
			KeyOut: []string{"user"}, ValOut: []string{"rank", "revenue"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "peruser",
			Stages: []wf.Stage{j2Reduce},
			KeyIn:  []string{"user"}, ValIn: []string{"rank", "revenue"},
			KeyOut: []string{"user"}, ValOut: []string{"avgrank", "totalrev"},
		}},
	}

	// J3: map-only re-key by total revenue (inter-packable into J2).
	j3 := &wf.Job{
		ID: "J3", Config: wf.DefaultConfig(), Origin: []string{"J3"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "peruser",
			Stages: []wf.Stage{ops.Rekey("M3", 0.4e-6, []ops.Src{ops.V(1)}, []ops.Src{ops.K(0), ops.V(0)})},
			KeyIn:  []string{"user"}, ValIn: []string{"avgrank", "totalrev"},
			KeyOut: []string{"totalrev"}, ValOut: []string{"user", "avgrank"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "byrev",
			KeyOut: []string{"totalrev"}, ValOut: []string{"user", "avgrank"},
		}},
	}

	// J4: the user with the highest total revenue.
	j4 := &wf.Job{
		ID: "J4", Config: wf.DefaultConfig(), Origin: []string{"J4"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "byrev",
			Stages: []wf.Stage{
				ops.Rekey("M4", 0.4e-6, []ops.Src{}, []ops.Src{ops.K(0), ops.V(0)}),
				ops.LocalTopK("T4", 0.4e-6, 1, 0),
			},
			KeyIn: []string{"totalrev"}, ValIn: []string{"user", "avgrank"},
			KeyOut: []string{"g"}, ValOut: []string{"totalrev", "user"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "topuser",
			Stages: []wf.Stage{ops.MergeTopK("R4", 0.4e-6, 1, 0)},
			KeyIn:  []string{"g"}, ValIn: []string{"totalrev", "user"},
			KeyOut: []string{"rank"}, ValOut: []string{"totalrev", "user"},
		}},
	}

	w := &wf.Workflow{
		Name: "LA",
		Jobs: []*wf.Job{j1, j2, j3, j4},
		Datasets: []*wf.Dataset{
			{ID: "uservisits", Base: true, KeyFields: []string{"date", "url"}, ValueFields: []string{"user", "revenue"}},
			{ID: "pageranks", Base: true, KeyFields: []string{"url"}, ValueFields: []string{"rank"}},
			{ID: "joined", KeyFields: []string{"user"}, ValueFields: []string{"rank", "revenue"}},
			{ID: "peruser", KeyFields: []string{"user"}, ValueFields: []string{"avgrank", "totalrev"}},
			{ID: "byrev", KeyFields: []string{"totalrev"}, ValueFields: []string{"user", "avgrank"}},
			{ID: "topuser", KeyFields: []string{"rank"}, ValueFields: []string{"totalrev", "user"}},
		},
	}
	return w, dfs, nil
}
