package workloads

import (
	"math"
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildPJ constructs the Post-processing Jobs workflow: a three-job
// pipeline over a small (~10 GB) dataset — an initial map-only scan, then
// two compute-heavy group-aggregates (covariance and correlation) reading
// its output (Section 7.1).
//
// This is the workload where horizontal packing is the wrong decision: the
// cluster has slack to run both aggregates concurrently, so rule-based
// optimizers that always pack (Baseline, YSmart) serialize compute that
// cost-based ones (Stubby, MRShare) leave parallel.
func buildPJ(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numRecords := opt.n(16000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x9191))
	var events []keyval.Pair
	for i := 0; i < numRecords; i++ {
		g := int64(rng.Intn(40))
		x := rng.NormFloat64()
		y := 0.6*x + 0.4*rng.NormFloat64()
		events = append(events, keyval.Pair{Key: keyval.T(g), Value: keyval.T(x, y)})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("events", events, mrsim.IngestSpec{
		NumPartitions: 8,
		KeyFields:     []string{"g"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"g"}},
	}); err != nil {
		return nil, nil, err
	}

	// J1: map-only scan / initial processing.
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "events",
			Stages: []wf.Stage{ops.Identity("M1", 0.6e-6)},
			KeyIn:  []string{"g"}, ValIn: []string{"x", "y"},
			KeyOut: []string{"g"}, ValOut: []string{"x", "y"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "cleaned",
			KeyOut: []string{"g"}, ValOut: []string{"x", "y"},
		}},
	}

	// Compute-heavy per-group statistics: CPU dominates I/O here, which is
	// what makes concurrent execution beat a packed job.
	const statCPU = 24e-6
	moments := func(vs []keyval.Tuple) (sx, sy, sxy, sxx, syy float64) {
		for _, v := range vs {
			x, y := asF(v[0]), asF(v[1])
			sx += x
			sy += y
			sxy += x * y
			sxx += x * x
			syy += y * y
		}
		return
	}
	cov := wf.ReduceStage("R2", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		n := float64(len(vs))
		sx, sy, sxy, _, _ := moments(vs)
		emit(k, keyval.T(sxy/n-(sx/n)*(sy/n)))
	}, nil, statCPU)
	corr := wf.ReduceStage("R3", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		n := float64(len(vs))
		sx, sy, sxy, sxx, syy := moments(vs)
		c := sxy/n - (sx/n)*(sy/n)
		vx := sxx/n - (sx/n)*(sx/n)
		vy := syy/n - (sy/n)*(sy/n)
		if vx <= 0 || vy <= 0 {
			emit(k, keyval.T(0.0))
			return
		}
		emit(k, keyval.T(c/math.Sqrt(vx*vy)))
	}, nil, statCPU)

	agg := func(id, out string, stage wf.Stage, mapCPU float64) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "cleaned",
				Stages: []wf.Stage{ops.Identity("M_"+id, mapCPU)},
				KeyIn:  []string{"g"}, ValIn: []string{"x", "y"},
				KeyOut: []string{"g"}, ValOut: []string{"x", "y"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{stage},
				KeyIn:  []string{"g"}, ValIn: []string{"x", "y"},
				KeyOut: []string{"g"}, ValOut: []string{"stat"},
			}},
		}
	}
	j2 := agg("J2", "covariance", cov, 8e-6)
	j3 := agg("J3", "correlation", corr, 8e-6)

	w := &wf.Workflow{
		Name: "PJ",
		Jobs: []*wf.Job{j1, j2, j3},
		Datasets: []*wf.Dataset{
			{ID: "events", Base: true, KeyFields: []string{"g"}, ValueFields: []string{"x", "y"}},
			{ID: "cleaned", KeyFields: []string{"g"}, ValueFields: []string{"x", "y"}},
			{ID: "covariance", KeyFields: []string{"g"}, ValueFields: []string{"stat"}},
			{ID: "correlation", KeyFields: []string{"g"}, ValueFields: []string{"stat"}},
		},
	}
	return w, dfs, nil
}
