// Package workloads builds the eight evaluation workflows of the paper's
// Section 7.1 (Table 1) as annotated plans over synthetic datasets
// materialized on the simulated DFS. Dataset scales are laptop-sized in
// records; each workload carries a cluster whose VirtualScale maps the
// materialized bytes onto the paper's dataset sizes (e.g. 264 GB for IR),
// so cost dynamics — waves, shuffle volumes, spills — match the paper's
// regime. DESIGN.md records the per-workload substitutions.
package workloads

import (
	"fmt"
	"sort"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Options controls workload construction.
type Options struct {
	// SizeFactor scales the materialized record counts (default 1.0).
	// The virtual (paper-equivalent) size is unaffected: fewer records
	// simply stand for more real records each.
	SizeFactor float64
	// Seed drives the deterministic generators.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SizeFactor <= 0 {
		o.SizeFactor = 1
	}
	return o
}

func (o Options) n(base int) int {
	n := int(float64(base) * o.SizeFactor)
	if n < 10 {
		n = 10
	}
	return n
}

// Workload is one evaluation workflow plus its materialized inputs and the
// cluster scaled to the paper's dataset size.
type Workload struct {
	// Abbr is the paper's abbreviation (IR, SN, LA, WG, BA, BR, PJ, US).
	Abbr string
	// Title is the workload's name in Table 1.
	Title string
	// PaperGB is the dataset size reported in Table 1.
	PaperGB float64
	// Workflow is the unoptimized annotated plan.
	Workflow *wf.Workflow
	// DFS holds the generated base datasets.
	DFS *mrsim.DFS
	// Cluster is the evaluation cluster with VirtualScale set so the
	// materialized data represents PaperGB.
	Cluster *mrsim.Cluster
}

type entry struct {
	abbr, title string
	gb          float64
	build       func(opt Options) (*wf.Workflow, *mrsim.DFS, error)
}

var registry = []entry{
	{"IR", "Information Retrieval", 264, buildIR},
	{"SN", "Social Network Analysis", 267, buildSN},
	{"LA", "Log Analysis", 500, buildLA},
	{"WG", "Web Graph Analysis", 255, buildWG},
	{"BA", "Business Analytics Query", 550, buildBA},
	{"BR", "Business Report Generation", 530, buildBR},
	{"PJ", "Post-processing Jobs", 10, buildPJ},
	{"US", "User-defined Logical Splits", 530, buildUS},
}

// Abbrs lists the workload abbreviations in Table 1 order.
func Abbrs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.abbr
	}
	return out
}

// Title returns the full workload name for an abbreviation.
func Title(abbr string) string {
	for _, e := range registry {
		if e.abbr == abbr {
			return e.title
		}
	}
	return ""
}

// PaperGB returns the Table 1 dataset size for an abbreviation.
func PaperGB(abbr string) float64 {
	for _, e := range registry {
		if e.abbr == abbr {
			return e.gb
		}
	}
	return 0
}

// Build constructs a workload by abbreviation.
func Build(abbr string, opt Options) (*Workload, error) {
	opt = opt.withDefaults()
	for _, e := range registry {
		if e.abbr != abbr {
			continue
		}
		w, dfs, err := e.build(opt)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", abbr, err)
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", abbr, err)
		}
		cluster := mrsim.DefaultCluster()
		var bytes float64
		for _, id := range dfs.IDs() {
			stored, _ := dfs.Get(id)
			bytes += float64(stored.Bytes())
		}
		if bytes > 0 {
			cluster.VirtualScale = e.gb * 1e9 / bytes
		}
		return &Workload{
			Abbr: e.abbr, Title: e.title, PaperGB: e.gb,
			Workflow: w, DFS: dfs, Cluster: cluster,
		}, nil
	}
	known := Abbrs()
	sort.Strings(known)
	return nil, fmt.Errorf("workloads: unknown workload %q (known: %v)", abbr, known)
}
