package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildWG constructs the Web Graph Analysis workflow: two PageRank
// iterations over a power-law adjacency list (Section 7.1). Each iteration
// is two jobs: a join of the adjacency list with the current ranks on
// {page} emitting per-link contributions, and a rank update summing
// contributions per target page.
//
// As the paper observes, the rank-update computation dominates and the
// iteration structure offers little packing opportunity (contribution keys
// do not flow through the join's grouping key), so gains here come almost
// entirely from cost-based configuration — the smallest bars of Figure 11.
func buildWG(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numPages := opt.n(12000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x3636))
	zipf := rand.NewZipf(rng, 1.4, 3, 14) // out-degree, power-law, <= 15
	var adj []keyval.Pair
	for p := 0; p < numPages; p++ {
		k := int(zipf.Uint64()) + 1
		outs := make(keyval.Tuple, 0, k)
		for i := 0; i < k; i++ {
			outs = append(outs, int64(rng.Intn(numPages)))
		}
		adj = append(adj, keyval.Pair{Key: keyval.T(int64(p)), Value: outs})
	}
	var ranks []keyval.Pair
	for p := 0; p < numPages; p++ {
		ranks = append(ranks, keyval.Pair{Key: keyval.T(int64(p)), Value: keyval.T(1.0 / float64(numPages))})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("adj", adj, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"page"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"page"}},
	}); err != nil {
		return nil, nil, err
	}
	if err := dfs.Ingest("ranks0", ranks, mrsim.IngestSpec{
		NumPartitions: 12,
		KeyFields:     []string{"page"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"page"}},
	}); err != nil {
		return nil, nil, err
	}

	w := &wf.Workflow{
		Name: "WG",
		Datasets: []*wf.Dataset{
			{ID: "adj", Base: true, KeyFields: []string{"page"}, ValueFields: []string{"outs"}},
			{ID: "ranks0", Base: true, KeyFields: []string{"page"}, ValueFields: []string{"rank"}},
		},
	}
	for iter := 1; iter <= 2; iter++ {
		in := "ranks0"
		if iter > 1 {
			in = "ranks1"
		}
		contrib := "contrib" + itoa(iter)
		out := "ranks" + itoa(iter)
		join := wf.ReduceStage("Rj"+itoa(iter), func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			var rank float64
			var outs keyval.Tuple
			for _, v := range vs {
				switch v[0].(string) {
				case "R":
					rank = asF(v[1])
				case "A":
					outs = v[1:]
				}
			}
			if len(outs) == 0 {
				emit(keyval.T(k[0]), keyval.T(0.0)) // dangling page keeps a row
				return
			}
			share := rank / float64(len(outs))
			emit(keyval.T(k[0]), keyval.T(0.0))
			for _, o := range outs {
				emit(keyval.T(o), keyval.T(share))
			}
		}, nil, 1.0e-6)
		jJoin := &wf.Job{
			ID: "Jj" + itoa(iter), Config: wf.DefaultConfig(), Origin: []string{"Jj" + itoa(iter)},
			MapBranches: []wf.MapBranch{
				{
					Tag: 0, Input: "adj",
					Stages: []wf.Stage{ops.TagValue("Ma"+itoa(iter), 0.5e-6, "A")},
					KeyIn:  []string{"page"}, ValIn: []string{"outs"},
					KeyOut: []string{"page"}, ValOut: []string{"tag", "outs"},
				},
				{
					Tag: 0, Input: in,
					Stages: []wf.Stage{ops.TagValue("Mr"+itoa(iter), 0.4e-6, "R")},
					KeyIn:  []string{"page"}, ValIn: []string{"rank"},
					KeyOut: []string{"page"}, ValOut: []string{"tag", "rank"},
				},
			},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: contrib,
				Stages: []wf.Stage{join},
				KeyIn:  []string{"page"}, ValIn: []string{"tag", "payload"},
				KeyOut: []string{"dpage"}, ValOut: []string{"share"},
			}},
		}
		update := wf.ReduceStage("Ru"+itoa(iter), func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			var sum float64
			for _, v := range vs {
				sum += asF(v[0])
			}
			emit(k, keyval.T(0.15/float64(numPages)+0.85*sum))
		}, nil, 1.6e-6)
		jRank := &wf.Job{
			ID: "Jr" + itoa(iter), Config: wf.DefaultConfig(), Origin: []string{"Jr" + itoa(iter)},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: contrib,
				Stages: []wf.Stage{ops.Identity("Mu"+itoa(iter), 0.4e-6)},
				KeyIn:  []string{"dpage"}, ValIn: []string{"share"},
				KeyOut: []string{"dpage"}, ValOut: []string{"share"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages:   []wf.Stage{update},
				Combiner: stagePtr(ops.SumCombiner("Cu"+itoa(iter), 0.5e-6, 0)),
				KeyIn:    []string{"dpage"}, ValIn: []string{"share"},
				KeyOut: []string{"dpage"}, ValOut: []string{"rank"},
			}},
		}
		w.Jobs = append(w.Jobs, jJoin, jRank)
		w.Datasets = append(w.Datasets,
			&wf.Dataset{ID: contrib, KeyFields: []string{"dpage"}, ValueFields: []string{"share"}},
			&wf.Dataset{ID: out, KeyFields: []string{"page"}, ValueFields: []string{"rank"}},
		)
	}
	return w, dfs, nil
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
