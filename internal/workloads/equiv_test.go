package workloads_test

import (
	"os"
	"testing"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// TestWorkloadPlannerEquivalence runs every registered planner over every
// paper workload and proves the optimized plans compute the same final
// answers as the unoptimized workflows — executed, not inferred from plan
// shape. The repo's other suites pin plan/cost identity; this one pins
// semantics, through the same oracle the generated-workflow suites use.
func TestWorkloadPlannerEquivalence(t *testing.T) {
	reg := baselines.DefaultRegistry()
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: 0.08, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
				t.Fatal(err)
			}
			s := &gen.Subject{
				Name:     abbr,
				Workflow: wl.Workflow,
				DFS:      wl.DFS,
				Cluster:  wl.Cluster,
				// Several workloads aggregate genuine floating point (TF-IDF
				// weights, averages); combiner and config changes reassociate
				// those sums, so numeric fields compare under a relative
				// tolerance while ints and strings stay exact.
				FloatTolerance: 1e-9,
			}
			ref, err := s.Reference()
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range reg.Specs() {
				p := spec.New(wl.Cluster, 1)
				// CI runs this suite in both estimation modes; mirror the
				// differential/baselines env hook for the Stubby variants.
				if sp, ok := p.(baselines.StubbyPlanner); ok && os.Getenv("STUBBY_DISABLE_INCREMENTAL") != "" {
					sp.DisableIncremental = true
					p = sp
				}
				plan, err := p.Plan(wl.Workflow)
				if err != nil {
					t.Errorf("%s on %s: %v", spec.Name, abbr, err)
					continue
				}
				if err := s.CheckPlan(ref, spec.Name, plan); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
