package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildSN constructs the Social Network Analysis workflow: find the top 20
// coauthor pairs over power-law (paperID, authorID) pairs partitioned on
// {paperID} (Section 7.1). Four jobs: J1 combines all authors per paper;
// J2 creates the coauthor pairs (map-only); J3 counts each pair; J4 finds
// the top 20 pairs in decreasing order.
//
// Substitution note (DESIGN.md): the paper's J3 samples split points for
// J4's range partitioning; here split-point selection is subsumed by
// Stubby's partition function transformation driven by profile key samples,
// and pair creation (map-only J2) carries the workload's inter-job vertical
// packing opportunity — J2 packs into J1's reduce, eliminating the large
// intermediate pairs dataset.
func buildSN(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numPapers := opt.n(9000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5172))
	zipf := rand.NewZipf(rng, 1.6, 2, 7) // authors per paper, power-law, <= 8
	var pairs []keyval.Pair
	for p := 0; p < numPapers; p++ {
		k := int(zipf.Uint64()) + 1
		seen := map[int64]bool{}
		for i := 0; i < k; i++ {
			a := int64(rng.Intn(3000))
			if !seen[a] {
				seen[a] = true
				pairs = append(pairs, keyval.Pair{Key: keyval.T(int64(p)), Value: keyval.T(a)})
			}
		}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("pubs", pairs, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"paper"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"paper"}, SortFields: []string{"paper"}},
	}); err != nil {
		return nil, nil, err
	}

	// J1: authors per paper (variable-length value tuple).
	j1Reduce := wf.ReduceStage("R1", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		authors := make(keyval.Tuple, 0, len(vs))
		for _, v := range vs {
			authors = append(authors, v[0])
		}
		emit(k, authors)
	}, nil, 0.5e-6)
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "pubs",
			Stages: []wf.Stage{ops.Identity("M1", 0.4e-6)},
			KeyIn:  []string{"paper"}, ValIn: []string{"author"},
			KeyOut: []string{"paper"}, ValOut: []string{"author"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "authorsets",
			Stages: []wf.Stage{j1Reduce},
			KeyIn:  []string{"paper"}, ValIn: []string{"author"},
			KeyOut: []string{"paper"}, ValOut: []string{"authors"},
		}},
	}

	// J2: map-only coauthor pair creation.
	j2Map := wf.MapStage("M2", func(k, v keyval.Tuple, emit wf.Emit) {
		for i := 0; i < len(v); i++ {
			for j := i + 1; j < len(v); j++ {
				a, b := v[i].(int64), v[j].(int64)
				if a > b {
					a, b = b, a
				}
				emit(keyval.T(a, b), keyval.T(int64(1)))
			}
		}
	}, 1.2e-6)
	j2 := &wf.Job{
		ID: "J2", Config: wf.DefaultConfig(), Origin: []string{"J2"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "authorsets",
			Stages: []wf.Stage{j2Map},
			KeyIn:  []string{"paper"}, ValIn: []string{"authors"},
			KeyOut: []string{"a1", "a2"}, ValOut: []string{"n"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "pairs",
			KeyOut: []string{"a1", "a2"}, ValOut: []string{"n"},
		}},
	}

	// J3: count collaborations per pair.
	j3 := &wf.Job{
		ID: "J3", Config: wf.DefaultConfig(), Origin: []string{"J3"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "pairs",
			Stages: []wf.Stage{ops.Identity("M3", 0.4e-6)},
			KeyIn:  []string{"a1", "a2"}, ValIn: []string{"n"},
			KeyOut: []string{"a1", "a2"}, ValOut: []string{"n"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "counts",
			Stages:   []wf.Stage{ops.Sum("R3", 0.5e-6, 0)},
			Combiner: stagePtr(ops.SumCombiner("C3", 0.5e-6, 0)),
			KeyIn:    []string{"a1", "a2"}, ValIn: []string{"n"},
			KeyOut: []string{"a1", "a2"}, ValOut: []string{"cnt"},
		}},
	}

	// J4: global top-20 by count (map-side local top-20, one merge group).
	j4 := &wf.Job{
		ID: "J4", Config: wf.DefaultConfig(), Origin: []string{"J4"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "counts",
			Stages: []wf.Stage{
				ops.Rekey("M4", 0.4e-6, []ops.Src{}, []ops.Src{ops.V(0), ops.K(0), ops.K(1)}),
				ops.LocalTopK("T4", 0.4e-6, 20, 0),
			},
			KeyIn: []string{"a1", "a2"}, ValIn: []string{"cnt"},
			KeyOut: []string{"g"}, ValOut: []string{"cnt", "a1", "a2"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "top20",
			Stages: []wf.Stage{ops.MergeTopK("R4", 0.4e-6, 20, 0)},
			KeyIn:  []string{"g"}, ValIn: []string{"cnt", "a1", "a2"},
			KeyOut: []string{"rank"}, ValOut: []string{"cnt", "a1", "a2"},
		}},
	}

	w := &wf.Workflow{
		Name: "SN",
		Jobs: []*wf.Job{j1, j2, j3, j4},
		Datasets: []*wf.Dataset{
			{ID: "pubs", Base: true, KeyFields: []string{"paper"}, ValueFields: []string{"author"}},
			{ID: "authorsets", KeyFields: []string{"paper"}, ValueFields: []string{"authors"}},
			{ID: "pairs", KeyFields: []string{"a1", "a2"}, ValueFields: []string{"n"}},
			{ID: "counts", KeyFields: []string{"a1", "a2"}, ValueFields: []string{"cnt"}},
			{ID: "top20", KeyFields: []string{"rank"}, ValueFields: []string{"cnt", "a1", "a2"}},
		},
	}
	return w, dfs, nil
}
