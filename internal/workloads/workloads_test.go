package workloads

import (
	"sort"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// small returns build options that keep integration tests quick.
func small() Options { return Options{SizeFactor: 0.25, Seed: 42} }

func TestRegistry(t *testing.T) {
	abbrs := Abbrs()
	if len(abbrs) != 8 {
		t.Fatalf("expected 8 workloads, got %d", len(abbrs))
	}
	want := []string{"IR", "SN", "LA", "WG", "BA", "BR", "PJ", "US"}
	for i, a := range want {
		if abbrs[i] != a {
			t.Errorf("position %d: %s, want %s (Table 1 order)", i, abbrs[i], a)
		}
	}
	if Title("IR") != "Information Retrieval" || PaperGB("BA") != 550 {
		t.Error("metadata lookup wrong")
	}
	if Title("nope") != "" || PaperGB("nope") != 0 {
		t.Error("unknown abbr should yield zero values")
	}
	if _, err := Build("nope", Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func sinksOf(t *testing.T, w *wf.Workflow, dfs *mrsim.DFS) map[string][]keyval.Pair {
	t.Helper()
	out := map[string][]keyval.Pair{}
	for _, d := range w.SinkDatasets() {
		stored, ok := dfs.Get(d.ID)
		if !ok {
			t.Fatalf("sink %s missing", d.ID)
		}
		pairs := stored.AllPairs()
		sort.Slice(pairs, func(i, j int) bool {
			if c := keyval.Compare(pairs[i].Key, pairs[j].Key); c != 0 {
				return c < 0
			}
			return keyval.Compare(pairs[i].Value, pairs[j].Value) < 0
		})
		out[d.ID] = pairs
	}
	return out
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, abbr := range Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl, err := Build(abbr, small())
			if err != nil {
				t.Fatal(err)
			}
			if wl.Cluster.VirtualScale <= 1 {
				t.Errorf("virtual scale %v should exceed 1 (paper-sized data)", wl.Cluster.VirtualScale)
			}
			rep, err := mrsim.NewEngine(wl.Cluster, wl.DFS.Clone()).RunWorkflow(wl.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Makespan <= 0 {
				t.Error("zero makespan")
			}
			dfs := wl.DFS.Clone()
			if _, err := mrsim.NewEngine(wl.Cluster, dfs).RunWorkflow(wl.Workflow); err != nil {
				t.Fatal(err)
			}
			sinks := sinksOf(t, wl.Workflow, dfs)
			if len(sinks) == 0 {
				t.Fatal("workflow has no sinks")
			}
			for ds, pairs := range sinks {
				if len(pairs) == 0 {
					t.Errorf("sink %s is empty", ds)
				}
			}
		})
	}
}

// TestOptimizedPlansEquivalent is the repository's central integration
// test: for every evaluation workflow, profile, optimize with full Stubby,
// and verify the optimized plan produces byte-identical sink datasets.
func TestOptimizedPlansEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("integration: optimize+run every workflow; skipped in -short")
	}
	for _, abbr := range Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl, err := Build(abbr, small())
			if err != nil {
				t.Fatal(err)
			}
			if err := profile.NewProfiler(wl.Cluster, 0.5, 7).Annotate(wl.Workflow, wl.DFS); err != nil {
				t.Fatal(err)
			}
			res, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: 1}).Optimize(wl.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Plan.Jobs) > len(wl.Workflow.Jobs) {
				t.Errorf("optimization grew the plan: %d -> %d jobs",
					len(wl.Workflow.Jobs), len(res.Plan.Jobs))
			}
			dfsA := wl.DFS.Clone()
			if _, err := mrsim.NewEngine(wl.Cluster, dfsA).RunWorkflow(wl.Workflow); err != nil {
				t.Fatal(err)
			}
			dfsB := wl.DFS.Clone()
			if _, err := mrsim.NewEngine(wl.Cluster, dfsB).RunWorkflow(res.Plan); err != nil {
				t.Fatalf("optimized plan failed to run: %v\n%s", err, res.Plan.Summary())
			}
			a := sinksOf(t, wl.Workflow, dfsA)
			b := sinksOf(t, res.Plan, dfsB)
			if len(a) != len(b) {
				t.Fatalf("sink sets differ: %d vs %d", len(a), len(b))
			}
			for ds, pa := range a {
				pb, ok := b[ds]
				if !ok {
					t.Fatalf("sink %s missing from optimized plan", ds)
				}
				if len(pa) != len(pb) {
					t.Fatalf("sink %s: %d vs %d records", ds, len(pa), len(pb))
				}
				for i := range pa {
					if keyval.Compare(pa[i].Key, pb[i].Key) != 0 ||
						keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
						t.Fatalf("sink %s differs at record %d", ds, i)
					}
				}
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a, err := Build("SN", small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("SN", small())
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.DFS.Get("pubs")
	sb, _ := b.DFS.Get("pubs")
	if sa.Records() != sb.Records() || sa.Bytes() != sb.Bytes() {
		t.Error("generators not deterministic")
	}
	c, err := Build("SN", Options{SizeFactor: 0.25, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := c.DFS.Get("pubs")
	if sc.Bytes() == sa.Bytes() {
		t.Error("different seed produced identical data")
	}
}

func TestExpectedPackingOpportunities(t *testing.T) {
	if testing.Short() {
		t.Skip("integration: optimizer decisions per workflow; skipped in -short")
	}
	// Structural spot checks tying the workloads to the transformations
	// they were designed to exercise (DESIGN.md experiment index).
	cases := []struct {
		abbr     string
		origJobs int
		maxJobs  int // after full Stubby
	}{
		{"IR", 3, 2}, // J2 packs into J1
		{"SN", 4, 3}, // J2 (pair creation) packs into J1
		{"LA", 4, 3}, // J3 packs into J2
		{"BR", 7, 4}, // replicate + two rollup packs + horizontal
		{"BA", 4, 3}, // join cascade packs
		{"WG", 4, 4}, // nothing structural applies
	}
	for _, c := range cases {
		c := c
		t.Run(c.abbr, func(t *testing.T) {
			wl, err := Build(c.abbr, small())
			if err != nil {
				t.Fatal(err)
			}
			if len(wl.Workflow.Jobs) != c.origJobs {
				t.Fatalf("original plan has %d jobs, want %d", len(wl.Workflow.Jobs), c.origJobs)
			}
			if err := profile.NewProfiler(wl.Cluster, 0.5, 7).Annotate(wl.Workflow, wl.DFS); err != nil {
				t.Fatal(err)
			}
			res, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: 1}).Optimize(wl.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Plan.Jobs) > c.maxJobs {
				t.Errorf("optimized plan has %d jobs, expected <= %d:\n%s",
					len(res.Plan.Jobs), c.maxJobs, res.Plan.Summary())
			}
		})
	}
}

func TestUSPartitionPruningChosen(t *testing.T) {
	if testing.Short() {
		t.Skip("integration: partition pruning end to end; skipped in -short")
	}
	wl, err := Build("US", small())
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 7).Annotate(wl.Workflow, wl.DFS); err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: 1}).Optimize(wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	dfs := wl.DFS.Clone()
	rep, err := mrsim.NewEngine(wl.Cluster, dfs).RunWorkflow(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	rangeProducer := false
	for _, jr := range rep.Jobs {
		pruned += jr.PrunedPartitions
	}
	for _, j := range res.Plan.Jobs {
		for _, g := range j.ReduceGroups {
			if g.Part.Type == keyval.RangePartition {
				rangeProducer = true
			}
		}
	}
	if !rangeProducer && pruned == 0 {
		t.Errorf("expected range partitioning + pruning in the US plan:\n%s", res.Plan.Summary())
	}
}
