package workloads

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/ops"
	"github.com/stubby-mr/stubby/internal/wf"
)

// buildUS constructs the User-defined Logical Splits workflow: a
// preprocessing producer whose output two consumers analyze over disjoint
// record subsets — e.g. a Web-portal log analyzed per age group — each
// consumer filtering in its map function (Section 7.1).
//
// This is the workload where the partition function transformation shines
// (Figure 7's mechanism): Stubby can switch the producer to range
// partitioning on {age} with split points at the filter boundaries, so each
// consumer prunes the partitions outside its age group instead of scanning
// everything.
func buildUS(opt Options) (*wf.Workflow, *mrsim.DFS, error) {
	numRecords := opt.n(60000)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5511))
	var logs []keyval.Pair
	for i := 0; i < numRecords; i++ {
		uid := int64(rng.Intn(10000))
		age := int64(rng.Intn(100))
		metric := rng.Float64() * 100
		logs = append(logs, keyval.Pair{Key: keyval.T(uid), Value: keyval.T(age, metric)})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("logs", logs, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"uid"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"uid"}},
	}); err != nil {
		return nil, nil, err
	}

	young := keyval.Interval{Lo: int64(0), Hi: int64(40)}
	old := keyval.Interval{Lo: int64(40), Hi: int64(100)}

	// J1: preprocessing producer keyed by (age, uid).
	j1Reduce := wf.ReduceStage("R1", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += asF(v[0])
		}
		emit(k, keyval.T(s))
	}, nil, 0.6e-6)
	j1 := &wf.Job{
		ID: "J1", Config: wf.DefaultConfig(), Origin: []string{"J1"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "logs",
			Stages: []wf.Stage{ops.Rekey("M1", 0.5e-6, []ops.Src{ops.V(0), ops.K(0)}, []ops.Src{ops.V(1)})},
			KeyIn:  []string{"uid"}, ValIn: []string{"age", "metric"},
			KeyOut: []string{"age", "uid"}, ValOut: []string{"metric"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "byage",
			Stages: []wf.Stage{j1Reduce},
			KeyIn:  []string{"age", "uid"}, ValIn: []string{"metric"},
			KeyOut: []string{"age", "uid"}, ValOut: []string{"total"},
		}},
	}

	// consumer builds one per-age-group aggregate with a map-side filter.
	consumer := func(id, out string, iv keyval.Interval) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "byage",
				Stages: []wf.Stage{wf.MapStage("M_"+id, func(k, v keyval.Tuple, emit wf.Emit) {
					if iv.Contains(k[0]) {
						emit(keyval.T(k[0]), keyval.T(v[0]))
					}
				}, 0.5e-6)},
				Filter: &wf.Filter{Field: "age", Interval: iv},
				KeyIn:  []string{"age", "uid"}, ValIn: []string{"total"},
				KeyOut: []string{"age"}, ValOut: []string{"total"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{ops.Avg("R_"+id, 0.6e-6, 0)},
				KeyIn:  []string{"age"}, ValIn: []string{"total"},
				KeyOut: []string{"age"}, ValOut: []string{"avg"},
			}},
		}
	}
	j2 := consumer("J2", "youngstats", young)
	j3 := consumer("J3", "oldstats", old)

	w := &wf.Workflow{
		Name: "US",
		Jobs: []*wf.Job{j1, j2, j3},
		Datasets: []*wf.Dataset{
			{ID: "logs", Base: true, KeyFields: []string{"uid"}, ValueFields: []string{"age", "metric"}},
			{ID: "byage", KeyFields: []string{"age", "uid"}, ValueFields: []string{"total"}},
			{ID: "youngstats", KeyFields: []string{"age"}, ValueFields: []string{"avg"}},
			{ID: "oldstats", KeyFields: []string{"age"}, ValueFields: []string{"avg"}},
		},
	}
	return w, dfs, nil
}
