// Package ops is a library of reusable map and reduce operators for
// building MapReduce workflows. Each constructor returns a wf.Stage whose
// semantics are simple enough to annotate mechanically — mirroring how the
// paper's Pig integration derives schema and filter annotations from query
// operators (Section 6) while the engine itself treats programs as black
// boxes.
package ops

import (
	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Src selects a field from an incoming record: either key position or
// value position.
type Src struct {
	// FromValue selects the value tuple instead of the key tuple.
	FromValue bool
	// Idx is the field position.
	Idx int
}

// K selects key field i.
func K(i int) Src { return Src{Idx: i} }

// V selects value field i.
func V(i int) Src { return Src{FromValue: true, Idx: i} }

func pick(s Src, key, value keyval.Tuple) keyval.Field {
	t := key
	if s.FromValue {
		t = value
	}
	if s.Idx < len(t) {
		return t[s.Idx]
	}
	return nil
}

// Identity passes records through unchanged.
func Identity(name string, cpu float64) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, cpu)
}

// Rekey rebuilds the output key and value from selected input fields — the
// workhorse projection/regrouping map operator.
func Rekey(name string, cpu float64, keyFrom, valFrom []Src) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		nk := make(keyval.Tuple, len(keyFrom))
		for i, s := range keyFrom {
			nk[i] = pick(s, k, v)
		}
		nv := make(keyval.Tuple, len(valFrom))
		for i, s := range valFrom {
			nv[i] = pick(s, k, v)
		}
		emit(nk, nv)
	}, cpu)
}

// FilterInterval passes records whose selected field lies in the interval,
// then rekeys like Rekey. Pair it with a wf.Filter annotation on the branch
// so the optimizer can reason about it.
func FilterInterval(name string, cpu float64, field Src, iv keyval.Interval, keyFrom, valFrom []Src) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		if !iv.Contains(pick(field, k, v)) {
			return
		}
		nk := make(keyval.Tuple, len(keyFrom))
		for i, s := range keyFrom {
			nk[i] = pick(s, k, v)
		}
		nv := make(keyval.Tuple, len(valFrom))
		for i, s := range valFrom {
			nv[i] = pick(s, k, v)
		}
		emit(nk, nv)
	}, cpu)
}

// TagValue prepends a string tag to the value tuple — the classic
// repartition-join marker distinguishing input sides inside one group.
func TagValue(name string, cpu float64, tag string) wf.Stage {
	return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) {
		nv := make(keyval.Tuple, 0, len(v)+1)
		nv = append(nv, tag)
		nv = append(nv, v...)
		emit(k, nv)
	}, cpu)
}

// --- reduce-side operators ---------------------------------------------------

func num(f keyval.Field) float64 {
	switch x := f.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// Sum groups and sums value field idx, emitting (key, sum).
func Sum(name string, cpu float64, idx int) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += num(v[idx])
		}
		emit(k, keyval.T(s))
	}, nil, cpu)
}

// SumCombiner is the algebraic combiner matching Sum on value field idx.
func SumCombiner(name string, cpu float64, idx int) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += num(v[idx])
		}
		out := make(keyval.Tuple, len(vs[0]))
		copy(out, vs[0])
		out[idx] = s
		emit(k, out)
	}, nil, cpu)
}

// SumAndMax emits (key, sum, max) of value field idx.
func SumAndMax(name string, cpu float64, idx int) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s, m float64
		for i, v := range vs {
			x := num(v[idx])
			s += x
			if i == 0 || x > m {
				m = x
			}
		}
		emit(k, keyval.T(s, m))
	}, nil, cpu)
}

// Count emits (key, n) for each group.
func Count(name string, cpu float64) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(k, keyval.T(int64(len(vs))))
	}, nil, cpu)
}

// CountCombiner pre-counts: values are assumed to carry partial counts in
// field idx (use with map output value (1)).
func CountCombiner(name string, cpu float64, idx int) wf.Stage {
	return SumCombiner(name, cpu, idx)
}

// Avg emits (key, mean) of value field idx.
func Avg(name string, cpu float64, idx int) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += num(v[idx])
		}
		emit(k, keyval.T(s/float64(len(vs))))
	}, nil, cpu)
}

// DistinctMark emits one record per group under a constant key — counting
// the output records counts the distinct group keys.
func DistinctMark(name string, cpu float64) wf.Stage {
	return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		emit(keyval.T(int64(0)), keyval.T(int64(1)))
	}, nil, cpu)
}

// LocalTopK is a map-side operator emitting the task-local top k records by
// value field idx under a constant key, so a downstream single-group reduce
// can merge them — the standard scalable top-K pattern.
func LocalTopK(name string, cpu float64, k int, idx int) wf.Stage {
	return wf.ReduceStage(name, func(key keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		top := topK(vs, k, idx)
		for _, v := range top {
			emit(keyval.T(int64(0)), v)
		}
	}, []int{}, cpu) // empty group fields: one group per task/stream
}

// MergeTopK merges candidate top lists into the global top k by value field
// idx, emitting them in decreasing order as (rank, record...).
func MergeTopK(name string, cpu float64, k int, idx int) wf.Stage {
	return wf.ReduceStage(name, func(key keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		top := topK(vs, k, idx)
		for i, v := range top {
			emit(keyval.T(int64(i+1)), v)
		}
	}, nil, cpu)
}

func topK(vs []keyval.Tuple, k, idx int) []keyval.Tuple {
	out := make([]keyval.Tuple, 0, k+1)
	for _, v := range vs {
		x := num(v[idx])
		pos := len(out)
		for pos > 0 && num(out[pos-1][idx]) < x {
			pos--
		}
		if pos >= k {
			continue
		}
		out = append(out, nil)
		copy(out[pos+1:], out[pos:])
		out[pos] = v
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}
