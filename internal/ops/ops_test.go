package ops

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

func runMap(s wf.Stage, pairs []keyval.Pair) []keyval.Pair {
	var out []keyval.Pair
	emit := func(k, v keyval.Tuple) { out = append(out, keyval.Pair{Key: k, Value: v}) }
	for _, p := range pairs {
		s.Map(p.Key, p.Value, emit)
	}
	return out
}

func runReduce(s wf.Stage, key keyval.Tuple, values []keyval.Tuple) []keyval.Pair {
	var out []keyval.Pair
	emit := func(k, v keyval.Tuple) { out = append(out, keyval.Pair{Key: k, Value: v}) }
	s.Reduce(key, values, emit)
	return out
}

func TestIdentity(t *testing.T) {
	in := []keyval.Pair{{Key: keyval.T(1), Value: keyval.T("a")}}
	out := runMap(Identity("id", 1e-6), in)
	if len(out) != 1 || keyval.Compare(out[0].Key, in[0].Key) != 0 {
		t.Fatalf("identity mangled record: %v", out)
	}
}

func TestRekeyAndSrc(t *testing.T) {
	st := Rekey("rk", 0, []Src{V(1), K(0)}, []Src{V(0)})
	out := runMap(st, []keyval.Pair{{Key: keyval.T(7), Value: keyval.T("x", 42)}})
	if keyval.Compare(out[0].Key, keyval.T(42, 7)) != 0 {
		t.Errorf("key = %v", out[0].Key)
	}
	if keyval.Compare(out[0].Value, keyval.T("x")) != 0 {
		t.Errorf("value = %v", out[0].Value)
	}
	// Out-of-range sources yield nil fields, not panics.
	st2 := Rekey("rk2", 0, []Src{K(9)}, nil)
	out2 := runMap(st2, []keyval.Pair{{Key: keyval.T(1), Value: keyval.T(2)}})
	if out2[0].Key[0] != nil {
		t.Error("out-of-range source should be nil")
	}
}

func TestFilterInterval(t *testing.T) {
	iv := keyval.Interval{Lo: int64(10), Hi: int64(20)}
	st := FilterInterval("f", 0, K(0), iv, []Src{K(0)}, []Src{V(0)})
	in := []keyval.Pair{
		{Key: keyval.T(5), Value: keyval.T(1)},
		{Key: keyval.T(15), Value: keyval.T(2)},
		{Key: keyval.T(25), Value: keyval.T(3)},
	}
	out := runMap(st, in)
	if len(out) != 1 || out[0].Value[0].(int64) != 2 {
		t.Fatalf("filter kept %v", out)
	}
}

func TestTagValue(t *testing.T) {
	out := runMap(TagValue("t", 0, "L"), []keyval.Pair{{Key: keyval.T(1), Value: keyval.T(9, 8)}})
	if keyval.Compare(out[0].Value, keyval.T("L", 9, 8)) != 0 {
		t.Errorf("tagged value = %v", out[0].Value)
	}
}

func TestAggregates(t *testing.T) {
	vals := []keyval.Tuple{keyval.T(2.0), keyval.T(int64(3)), keyval.T(5.0)}
	key := keyval.T("g")

	if out := runReduce(Sum("s", 0, 0), key, vals); out[0].Value[0].(float64) != 10 {
		t.Errorf("sum = %v", out[0].Value)
	}
	if out := runReduce(Count("c", 0), key, vals); out[0].Value[0].(int64) != 3 {
		t.Errorf("count = %v", out[0].Value)
	}
	if out := runReduce(Avg("a", 0, 0), key, vals); out[0].Value[0].(float64) != 10.0/3 {
		t.Errorf("avg = %v", out[0].Value)
	}
	out := runReduce(SumAndMax("sm", 0, 0), key, vals)
	if out[0].Value[0].(float64) != 10 || out[0].Value[1].(float64) != 5 {
		t.Errorf("sum+max = %v", out[0].Value)
	}
	dm := runReduce(DistinctMark("d", 0), key, vals)
	if len(dm) != 1 || dm[0].Key[0].(int64) != 0 {
		t.Errorf("distinct mark = %v", dm)
	}
}

func TestSumCombinerIsAlgebraic(t *testing.T) {
	// combiner(combiner(a,b), combiner(c)) must equal sum(a,b,c).
	comb := SumCombiner("c", 0, 0)
	key := keyval.T("g")
	p1 := runReduce(comb, key, []keyval.Tuple{keyval.T(1.0), keyval.T(2.0)})
	p2 := runReduce(comb, key, []keyval.Tuple{keyval.T(4.0)})
	final := runReduce(Sum("s", 0, 0), key, []keyval.Tuple{p1[0].Value, p2[0].Value})
	if final[0].Value[0].(float64) != 7 {
		t.Errorf("combined sum = %v", final[0].Value)
	}
	// Extra value fields survive combining.
	rich := runReduce(SumCombiner("c", 0, 1), key,
		[]keyval.Tuple{keyval.T("x", 2.0), keyval.T("x", 3.0)})
	if rich[0].Value[1].(float64) != 5 || rich[0].Value[0].(string) != "x" {
		t.Errorf("rich combine = %v", rich[0].Value)
	}
}

func TestTopKOperators(t *testing.T) {
	vs := []keyval.Tuple{
		keyval.T(3.0, "c"), keyval.T(9.0, "a"), keyval.T(1.0, "d"), keyval.T(7.0, "b"),
	}
	top := topK(vs, 2, 0)
	if len(top) != 2 || top[0][1].(string) != "a" || top[1][1].(string) != "b" {
		t.Fatalf("topK = %v", top)
	}
	// MergeTopK emits ranked output in decreasing order.
	out := runReduce(MergeTopK("m", 0, 3, 0), keyval.T(int64(0)), vs)
	if len(out) != 3 {
		t.Fatalf("merge emitted %d", len(out))
	}
	if out[0].Key[0].(int64) != 1 || out[0].Value[0].(float64) != 9 {
		t.Errorf("rank 1 = %v %v", out[0].Key, out[0].Value)
	}
	if out[2].Value[0].(float64) != 3 {
		t.Errorf("rank 3 = %v", out[2].Value)
	}
	// Fewer values than k.
	small := runReduce(MergeTopK("m", 0, 10, 0), keyval.T(int64(0)), vs[:2])
	if len(small) != 2 {
		t.Errorf("small merge = %d", len(small))
	}
}

func TestLocalTopKStreams(t *testing.T) {
	// LocalTopK groups the whole stream (empty group fields) and emits the
	// task-local top k under a constant key.
	st := LocalTopK("lt", 0, 2, 0)
	var out []keyval.Pair
	emit := func(k, v keyval.Tuple) { out = append(out, keyval.Pair{Key: k, Value: v}) }
	st.Reduce(keyval.T(int64(1), int64(2)), []keyval.Tuple{
		keyval.T(5.0), keyval.T(9.0), keyval.T(2.0),
	}, emit)
	if len(out) != 2 {
		t.Fatalf("local top emitted %d", len(out))
	}
	if out[0].Key[0].(int64) != 0 {
		t.Error("local top key should be constant 0")
	}
	if out[0].Value[0].(float64) != 9 || out[1].Value[0].(float64) != 5 {
		t.Errorf("local top = %v", out)
	}
}

func TestNumCoercion(t *testing.T) {
	if num(int64(4)) != 4 || num(4.5) != 4.5 || num("x") != 0 || num(nil) != 0 {
		t.Error("num coercion wrong")
	}
}
