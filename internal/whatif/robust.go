package whatif

import (
	"context"
	"errors"
	"sort"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
)

var errNilModel = errors.New("robustness requires a fault model")

// DefaultRobustnessSamples is the Monte-Carlo sample count used when
// RobustnessOptions leaves Samples zero.
const DefaultRobustnessSamples = 32

// RobustnessOptions configures Monte-Carlo robustness evaluation.
type RobustnessOptions struct {
	// Model is the fault model to perturb with; sample i runs under
	// Model.Reseed(mrsim.PerturbSeed(Model.Seed, i)).
	Model *mrsim.FaultModel
	// Samples is the number of perturbation seeds (default
	// DefaultRobustnessSamples).
	Samples int
}

// Robustness is a plan's makespan distribution under perturbation: the
// flow layer runs once and the scheduling layer is replayed across N
// fault seeds, so the whole report costs N cheap schedule replays, not N
// estimates.
type Robustness struct {
	// Samples is the number of perturbation seeds evaluated.
	Samples int
	// Mean and the percentiles summarize the per-sample makespans.
	Mean, P50, P95, P99, Min, Max float64
	// FailedOut counts samples in which some task exhausted its retry
	// budget (its fail time still contributes to that sample's makespan).
	FailedOut int
	// Makespans holds the per-sample makespans in sample order.
	Makespans []float64
}

// Percentile returns the q-quantile (0 < q <= 1) of the sampled makespans
// using the nearest-rank method.
func (r *Robustness) Percentile(q float64) float64 {
	sorted := append([]float64(nil), r.Makespans...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Robustness Monte-Carlo-replays w's scheduling under opt.Model. Flow
// cards are computed once (the same per-job cards Estimate uses); each
// sample then replays only the scheduling layer against perturbed
// heterogeneous slot pools rewound with Snapshot/Restore — the same
// replay structure the incremental estimator uses for SlotPool. Unlike
// the nominal schedule, the replay spreads per-task durations (one
// straggler task at the card's max duration, placed in the first wave,
// the rest at the average), so skewed jobs perturb realistically.
//
// The result is a pure function of (w, cluster, model, samples). When the
// workflow lacks the annotations for cost-based estimation (the fallback
// #jobs regime), robustness is not computable and (nil, nil) is returned.
func (e *Estimator) Robustness(ctx context.Context, w *wf.Workflow, opt RobustnessOptions) (*Robustness, error) {
	if opt.Model == nil {
		return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "whatif.robustness",
			Workflow: w.Name, Err: errNilModel}
	}
	if err := opt.Model.Validate(); err != nil {
		return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "whatif.robustness",
			Workflow: w.Name, Err: err}
	}
	samples := opt.Samples
	if samples <= 0 {
		samples = DefaultRobustnessSamples
	}
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	if !profile.HasFullProfiles(w) || !hasBaseSizes(w) {
		return nil, nil
	}

	// Flow layer, once: the same evolving-dataset pass Estimate runs.
	type jobPlay struct {
		id      string
		card    *jobCard
		inputs  []string
		outputs []string
	}
	datasets := make(map[string]*DatasetEstimate, len(w.Datasets))
	seedBaseDatasets(w, datasets)
	plays := make([]jobPlay, 0, len(order))
	for _, job := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		card, err := e.flowJob(job, datasets)
		if err != nil {
			return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "whatif.robustness",
				Workflow: w.Name, Job: job.ID, Err: err}
		}
		card.applyOutputs(datasets)
		plays = append(plays, jobPlay{id: job.ID, card: card,
			inputs: job.Inputs(), outputs: job.Outputs()})
	}

	// Scheduling layer, N times.
	mapPool := mrsim.NewFaultyPool(opt.Model.SlotSpeeds(e.Cluster, false))
	redPool := mrsim.NewFaultyPool(opt.Model.SlotSpeeds(e.Cluster, true))
	mapSnap, redSnap := mapPool.Snapshot(), redPool.Snapshot()
	rep := &Robustness{Samples: samples, Makespans: make([]float64, 0, samples)}
	ready := make(map[string]float64, len(w.Datasets))
	for i := 0; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fm := opt.Model.Reseed(mrsim.PerturbSeed(opt.Model.Seed, i))
		mapPool.Restore(mapSnap)
		redPool.Restore(redSnap)
		for k := range ready {
			delete(ready, k)
		}
		makespan, failed := 0.0, false
		for _, p := range plays {
			jobReady := 0.0
			for _, in := range p.inputs {
				if t := ready[in]; t > jobReady {
					jobReady = t
				}
			}
			end := replayJob(fm, p.card, p.id, jobReady, mapPool, redPool, &failed)
			for _, out := range p.outputs {
				ready[out] = end
			}
			if end > makespan {
				makespan = end
			}
		}
		if failed {
			rep.FailedOut++
		}
		rep.Makespans = append(rep.Makespans, makespan)
	}

	var sum float64
	sorted := append([]float64(nil), rep.Makespans...)
	sort.Float64s(sorted)
	for _, m := range sorted {
		sum += m
	}
	rep.Mean = sum / float64(len(sorted))
	rep.Min, rep.Max = sorted[0], sorted[len(sorted)-1]
	rep.P50 = percentileSorted(sorted, 0.50)
	rep.P95 = percentileSorted(sorted, 0.95)
	rep.P99 = percentileSorted(sorted, 0.99)
	return rep, nil
}

// replayJob replays one card's tasks under the fault model, spreading
// durations: task 0 is the straggler (max duration, first wave), the rest
// run at the average — mirroring SlotPool.ScheduleSpread, which fixed the
// old append-the-straggler-last wave-packing model.
func replayJob(fm *mrsim.FaultModel, card *jobCard, jobID string, jobReady float64, mapPool, redPool *mrsim.FaultyPool, failed *bool) float64 {
	mapsDone := jobReady
	for t := 0; t < card.mapTasks; t++ {
		dur := card.avgMapDur
		if t == 0 {
			dur = card.maxMapDur
		}
		fate := fm.ScheduleTask(mapPool, fm.TaskKey(jobID, false, t), jobReady, dur)
		if fate.FailedOut {
			*failed = true
		}
		if fate.End > mapsDone {
			mapsDone = fate.End
		}
	}
	end := mapsDone
	if card.hasReduce {
		for t := 0; t < card.reduceTasks; t++ {
			dur := card.avgRedDur
			if t == 0 {
				dur = card.maxRedDur
			}
			fate := fm.ScheduleTask(redPool, fm.TaskKey(jobID, true, t), mapsDone, dur)
			if fate.FailedOut {
				*failed = true
			}
			if fate.End > end {
				end = fate.End
			}
		}
	}
	return end
}
