package whatif

import (
	"math"
	"math/rand"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

func passMap(key, value keyval.Tuple, emit wf.Emit) { emit(key, value) }

func sumReduce(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

func genPairs(n, card int, seed int64) []keyval.Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]keyval.Pair, n)
	for i := range out {
		out[i] = keyval.Pair{Key: keyval.T(int64(r.Intn(card))), Value: keyval.T(int64(1))}
	}
	return out
}

func sumJob(id, in, out string) *wf.Job {
	return &wf.Job{
		ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: in,
			Stages: []wf.Stage{wf.MapStage("M_"+id, passMap, 1e-6)},
			KeyIn:  []string{"k"}, KeyOut: []string{"k"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: out,
			Stages: []wf.Stage{wf.ReduceStage("R_"+id, sumReduce, nil, 1e-6)},
			KeyIn:  []string{"k"}, KeyOut: []string{"k"},
		}},
	}
}

func testCluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.VirtualScale = 5000
	return c
}

// buildAnnotated returns a profiled two-job chain workflow and its DFS.
func buildAnnotated(t *testing.T, card int) (*wf.Workflow, *mrsim.DFS, *mrsim.Cluster) {
	t.Helper()
	pairs := genPairs(20000, card, 42)
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("in", pairs, mrsim.IngestSpec{
		NumPartitions: 8,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	}); err != nil {
		t.Fatal(err)
	}
	j1 := sumJob("J1", "in", "mid")
	j1.Config.NumReduceTasks = 8
	j2 := sumJob("J2", "mid", "out")
	j2.Config.NumReduceTasks = 4
	w := &wf.Workflow{
		Name: "chain",
		Jobs: []*wf.Job{j1, j2},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "mid", KeyFields: []string{"k"}},
			{ID: "out"},
		},
	}
	cl := testCluster()
	if err := profile.NewProfiler(cl, 1.0, 3).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	return w, dfs, cl
}

func TestEstimateTracksActual(t *testing.T) {
	w, dfs, cl := buildAnnotated(t, 500)
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if est.Fallback {
		t.Fatal("unexpected fallback")
	}
	rep, err := mrsim.NewEngine(cl, dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	// Profiled at fraction 1.0, estimate should track actual closely.
	ratio := est.Makespan / rep.Makespan
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("estimate %v vs actual %v (ratio %v)", est.Makespan, rep.Makespan, ratio)
	}
	// Task counts must match the executor's.
	for _, id := range []string{"J1", "J2"} {
		je, jr := est.Jobs[id], rep.Job(id)
		if je.MapTasks != jr.NumMapTasks {
			t.Errorf("%s: est %d map tasks, actual %d", id, je.MapTasks, jr.NumMapTasks)
		}
		if je.ReduceTasks != jr.NumReduceTasks {
			t.Errorf("%s: est %d reduce tasks, actual %d", id, je.ReduceTasks, jr.NumReduceTasks)
		}
	}
}

func TestEstimateOrdersConfigurations(t *testing.T) {
	// The estimator must prefer the configuration that actually runs
	// faster — the property RRS relies on.
	w, dfs, cl := buildAnnotated(t, 5000)
	run := func(reducers int) (float64, float64) {
		wc := w.Clone()
		wc.Job("J1").Config.NumReduceTasks = reducers
		est, err := New(cl).Estimate(wc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mrsim.NewEngine(cl, dfs.Clone()).RunWorkflow(wc)
		if err != nil {
			t.Fatal(err)
		}
		return est.Makespan, rep.Makespan
	}
	est1, act1 := run(1)
	est40, act40 := run(40)
	if (est40 < est1) != (act40 < act1) {
		t.Errorf("estimator disagrees with actual: est(1)=%v est(40)=%v act(1)=%v act(40)=%v",
			est1, est40, act1, act40)
	}
	if est40 >= est1 {
		t.Errorf("estimator should prefer 40 reducers for a large shuffle: %v vs %v", est40, est1)
	}
}

func TestEstimateCompressionDirection(t *testing.T) {
	w, _, cl := buildAnnotated(t, 20000)
	base, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	wc := w.Clone()
	wc.Job("J1").Config.CompressMapOutput = true
	comp, err := New(cl).Estimate(wc)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Makespan >= base.Makespan {
		t.Errorf("compression should reduce estimated cost: %v vs %v", comp.Makespan, base.Makespan)
	}
	if comp.Jobs["J1"].ShuffleBytesVirtual >= base.Jobs["J1"].ShuffleBytesVirtual {
		t.Error("compression should shrink estimated shuffle bytes")
	}
}

func TestFallbackWithoutProfiles(t *testing.T) {
	w, _, cl := buildAnnotated(t, 100)
	w.Job("J2").Profile = nil
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Fallback {
		t.Fatal("expected fallback without profiles")
	}
	if est.Makespan != 2 {
		t.Errorf("fallback cost should be #jobs = 2, got %v", est.Makespan)
	}
}

func TestFallbackWithoutBaseSizes(t *testing.T) {
	w, _, cl := buildAnnotated(t, 100)
	w.Dataset("in").EstRecords = 0
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Fallback {
		t.Error("expected fallback without dataset size annotations")
	}
}

func TestSkewEstimatedFromKeySample(t *testing.T) {
	// One hot key -> straggler estimate well above the average.
	pairs := make([]keyval.Pair, 20000)
	for i := range pairs {
		k := int64(1)
		if i%10 == 0 {
			k = int64(i)
		}
		pairs[i] = keyval.Pair{Key: keyval.T(k), Value: keyval.T(int64(1))}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("in", pairs, mrsim.IngestSpec{NumPartitions: 4, KeyFields: []string{"k"},
		Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}}}); err != nil {
		t.Fatal(err)
	}
	j := sumJob("J1", "in", "out")
	j.Config.NumReduceTasks = 10
	w := &wf.Workflow{Name: "skew", Jobs: []*wf.Job{j}, Datasets: []*wf.Dataset{
		{ID: "in", Base: true, KeyFields: []string{"k"}}, {ID: "out"}}}
	cl := testCluster()
	if err := profile.NewProfiler(cl, 1.0, 5).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	je := est.Jobs["J1"]
	if je.MaxReduceTaskSec < je.AvgReduceTaskSec*2 {
		t.Errorf("skew not detected: max %v vs avg %v", je.MaxReduceTaskSec, je.AvgReduceTaskSec)
	}
}

func TestPruneKeepFraction(t *testing.T) {
	layout := wf.Layout{
		PartType:    keyval.RangePartition,
		PartFields:  []string{"k"},
		SplitPoints: []keyval.Tuple{keyval.T(int64(100)), keyval.T(int64(200)), keyval.T(int64(300))},
	}
	job := &wf.Job{MapBranches: []wf.MapBranch{{
		Tag: 0, Input: "d",
		Filter: &wf.Filter{Field: "k", Interval: keyval.Interval{Hi: int64(100)}},
	}}}
	e := New(testCluster())
	if got := e.pruneKeepFraction(job, "d", layout); got != 0.25 {
		t.Errorf("keep fraction = %v, want 0.25", got)
	}
	// Second branch without filter blocks pruning.
	job.MapBranches = append(job.MapBranches, wf.MapBranch{Tag: 1, Input: "d"})
	if got := e.pruneKeepFraction(job, "d", layout); got != 1 {
		t.Errorf("keep fraction with unfiltered branch = %v, want 1", got)
	}
	// Hash layout: no pruning.
	if got := e.pruneKeepFraction(job, "d", wf.Layout{PartType: keyval.HashPartition}); got != 1 {
		t.Errorf("hash layout keep fraction = %v", got)
	}
}

func TestDatasetEstimatesPropagate(t *testing.T) {
	w, dfs, cl := buildAnnotated(t, 300)
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mrsim.NewEngine(cl, dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	mid, ok := est.Datasets["mid"]
	if !ok {
		t.Fatal("no estimate for mid")
	}
	// J1 groups 20000 records into 300 keys.
	if math.Abs(mid.Records-300) > 30 {
		t.Errorf("mid records estimate = %v, want ~300", mid.Records)
	}
	if mid.Partitions != 8 {
		t.Errorf("mid partitions = %d, want 8", mid.Partitions)
	}
	stored, _ := dfs.Get("mid")
	if int64(mid.Records) != stored.Records() {
		t.Errorf("estimated %v records, actual %d", mid.Records, stored.Records())
	}
	if len(mid.Layout.PartFields) != 1 || mid.Layout.PartFields[0] != "k" {
		t.Errorf("mid layout = %v", mid.Layout)
	}
}

func TestEstimateCycleError(t *testing.T) {
	w, _, cl := buildAnnotated(t, 100)
	w.Job("J1").MapBranches[0].Input = "out" // J1 reads J2's output: cycle
	if _, err := New(cl).Estimate(w); err == nil {
		t.Error("cycle accepted")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {0, 5, 1}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
