package whatif

import "github.com/stubby-mr/stubby/internal/mrsim"

// This file is the scheduling layer of the estimator: replaying a job's
// duration card against the workflow's shared map and reduce slot pools.
// The pool operations — their order and arguments — are the contract shared
// by the monolithic and incremental paths: as long as cards are identical
// and the pools start from identical states, the predicted start/end times
// are bit-for-bit identical.

// scheduleJob places the card's tasks on the pools and returns the job's
// predicted end time.
func scheduleJob(card *jobCard, jobReady float64, mapPool, redPool *mrsim.SlotPool) float64 {
	mapsDone := mapPool.ScheduleUniform(jobReady, card.avgMapDur, card.mapTasks-1)
	if _, e := mapPool.Schedule(jobReady, card.maxMapDur); e > mapsDone {
		mapsDone = e
	}
	end := mapsDone
	if card.hasReduce {
		end = redPool.ScheduleUniform(mapsDone, card.avgRedDur, card.reduceTasks-1)
		if _, tend := redPool.Schedule(mapsDone, card.maxRedDur); tend > end {
			end = tend
		}
	}
	return end
}
