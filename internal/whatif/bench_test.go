package whatif

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
)

// BenchmarkEstimate measures one What-if evaluation of a profiled two-job
// workflow — the inner loop of Stubby's configuration search, invoked
// hundreds of times per enumerated subplan.
func BenchmarkEstimate(b *testing.B) {
	t := &testing.T{}
	w, _, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	est := New(cl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedEstimate measures one delta estimate on the same
// fixture with J2's configuration perturbed per iteration — the incremental
// probe the configuration search issues hundreds of times per subplan.
// ReportAllocs guards the hot path: skew-cache lookups use comparable
// struct keys and the probe buffers are reused, so steady-state allocations
// stay flat regardless of plan size.
func BenchmarkPreparedEstimate(b *testing.B) {
	t := &testing.T{}
	w, _, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	prep, err := New(cl).Prepare(w, []string{"J2"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Job("J2").Config.NumReduceTasks = 1 + i%16
		if _, err := prep.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedEstimateChanged is the truncated probe path the RRS
// objective actually calls (reused buffers, tail skipped).
func BenchmarkPreparedEstimateChanged(b *testing.B) {
	t := &testing.T{}
	w, _, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	prep, err := New(cl).Prepare(w, []string{"J1"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Job("J1").Config.SortBufferMB = 16 + i%256
		if _, err := prep.EstimateChanged(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkewShare isolates the skew-cache lookup on a hot sample: after
// the first computation every iteration must be a cache hit, and with
// comparable struct keys a hit performs zero allocations.
func BenchmarkSkewShare(b *testing.B) {
	t := &testing.T{}
	w, _, cl := buildAnnotated(t, 5000)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	est := New(cl)
	job := w.Job("J1")
	te := &tagEst{group: &job.ReduceGroups[0], numParts: 8, maxShare: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te.numParts = 2 + i%8
		est.skewShare(job, 0, te)
	}
}

// BenchmarkProfileAnnotate measures the sampling profiler on the same
// fixture (executed once per workload before optimization).
func BenchmarkProfileAnnotate(b *testing.B) {
	t := &testing.T{}
	w, dfs, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := profile.NewProfiler(cl, 0.3, int64(i)).Annotate(w, dfs); err != nil {
			b.Fatal(err)
		}
	}
}
