package whatif

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
)

// BenchmarkEstimate measures one What-if evaluation of a profiled two-job
// workflow — the inner loop of Stubby's configuration search, invoked
// hundreds of times per enumerated subplan.
func BenchmarkEstimate(b *testing.B) {
	t := &testing.T{}
	w, _, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	est := New(cl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileAnnotate measures the sampling profiler on the same
// fixture (executed once per workload before optimization).
func BenchmarkProfileAnnotate(b *testing.B) {
	t := &testing.T{}
	w, dfs, cl := buildAnnotated(t, 500)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := profile.NewProfiler(cl, 0.3, int64(i)).Annotate(w, dfs); err != nil {
			b.Fatal(err)
		}
	}
}
