package estcache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// contextWorkload builds one small profiled workload for the context
// tests (shared; estimation treats it read-only).
var (
	ctxWlOnce sync.Once
	ctxWl     *workloads.Workload
	ctxWlErr  error
)

func contextWorkload(t *testing.T) *workloads.Workload {
	t.Helper()
	ctxWlOnce.Do(func() {
		wl, err := workloads.Build("IR", workloads.Options{SizeFactor: 0.05, Seed: 1})
		if err != nil {
			ctxWlErr = err
			return
		}
		if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
			ctxWlErr = err
			return
		}
		ctxWl = wl
	})
	if ctxWlErr != nil {
		t.Fatal(ctxWlErr)
	}
	return ctxWl
}

// TestEstimateContextCanceledNotCached: a canceled computation surfaces
// ctx's error, caches nothing, and the next live caller computes cleanly.
func TestEstimateContextCanceledNotCached(t *testing.T) {
	wl := contextWorkload(t)
	cache := New(0)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewEstimator(cache, whatif.New(wl.Cluster)).EstimateContext(canceled, wl.Workflow); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled estimate = %v, want context.Canceled", err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("canceled computation was cached: %+v", st)
	}
	est, err := NewEstimator(cache, whatif.New(wl.Cluster)).EstimateContext(context.Background(), wl.Workflow)
	if err != nil || est == nil {
		t.Fatalf("live estimate after canceled one = %v, %v", est, err)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("live computation not cached: %+v", st)
	}
}

// TestEstimateContextCancelDoesNotPoisonWaiters: when a canceled caller
// owns the single flight, concurrent live callers on the same key must
// still get an estimate — their shared-flight error is retried, never
// surfaced. (The overlap is probabilistic; the invariant checked — live
// callers never see a cancellation error — must hold on every schedule.)
func TestEstimateContextCancelDoesNotPoisonWaiters(t *testing.T) {
	wl := contextWorkload(t)
	for round := 0; round < 30; round++ {
		cache := New(0) // fresh: every round recomputes, so flights form
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // the canceled caller, racing to own the flight
			defer wg.Done()
			_, _ = NewEstimator(cache, whatif.New(wl.Cluster)).EstimateContext(ctx, wl.Workflow)
		}()
		var liveErr error
		go func() { // the live caller that must never be poisoned
			defer wg.Done()
			_, liveErr = NewEstimator(cache, whatif.New(wl.Cluster)).EstimateContext(context.Background(), wl.Workflow)
		}()
		cancel()
		wg.Wait()
		if liveErr != nil {
			t.Fatalf("round %d: live caller failed with %v", round, liveErr)
		}
	}
}
