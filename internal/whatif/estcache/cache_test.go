package estcache

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

func key(n uint64) Key {
	return Key{Plan: wf.Fingerprint{n, n ^ 0x9e3779b97f4a7c15}}
}

func estimate(makespan float64) *whatif.Estimate {
	return &whatif.Estimate{
		Makespan: makespan,
		Jobs:     map[string]*whatif.JobEstimate{},
		Datasets: map[string]*whatif.DatasetEstimate{},
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	c := New(64)
	computes := 0
	get := func() (*whatif.Estimate, error) {
		est, err := c.GetOrCompute(key(1), []string{"j1"}, func() (*whatif.Estimate, error) {
			computes++
			return estimate(42), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return est, nil
	}
	first, _ := get()
	second, _ := get()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if first != second {
		t.Fatal("hit did not return the cached estimate")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := New(64)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(key(2), nil, func() (*whatif.Estimate, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: the next call recomputes.
	est, err := c.GetOrCompute(key(2), nil, func() (*whatif.Estimate, error) {
		return estimate(7), nil
	})
	if err != nil || est.Makespan != 7 {
		t.Fatalf("recompute after error: est=%v err=%v", est, err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(numShards) // one entry per shard
	// Fill one shard (fixed low bits select the shard) beyond capacity.
	k1, k2 := key(16), key(32) // same shard: low bits zero
	if c.shard(k1) != c.shard(k2) {
		t.Fatal("test keys landed in different shards")
	}
	for i, k := range []Key{k1, k2} {
		c.GetOrCompute(k, nil, func() (*whatif.Estimate, error) {
			return estimate(float64(i)), nil
		})
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// k2 survives (hit, no recompute); k1 was evicted (recomputes).
	recomputed := false
	c.GetOrCompute(k2, nil, func() (*whatif.Estimate, error) {
		recomputed = true
		return estimate(9), nil
	})
	if recomputed {
		t.Fatal("most recent entry evicted")
	}
	c.GetOrCompute(k1, nil, func() (*whatif.Estimate, error) {
		recomputed = true
		return estimate(9), nil
	})
	if !recomputed {
		t.Fatal("oldest entry not evicted")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := New(64)
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 8
	results := make([]*whatif.Estimate, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, err := c.GetOrCompute(key(3), nil, func() (*whatif.Estimate, error) {
				computes.Add(1)
				<-release
				return estimate(9), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = est
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times under concurrency, want 1 (single flight)", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different estimate pointers")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := New(32) // small: force evictions under concurrency
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(uint64(i % 50))
				want := float64(i % 50)
				est, err := c.GetOrCompute(k, nil, func() (*whatif.Estimate, error) {
					return estimate(want), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if est.Makespan != want {
					t.Errorf("key %d returned makespan %v, want %v", i%50, est.Makespan, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheReset(t *testing.T) {
	c := New(64)
	c.GetOrCompute(key(5), nil, func() (*whatif.Estimate, error) { return estimate(1), nil })
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset = %+v, want zeroes", st)
	}
}

// TestEstimatorTransparency is the package-level core guarantee: a cached
// estimator returns the exact estimate of an uncached one — on first
// computation, on a hit, and on a hit from a job-renamed clone of the plan.
func TestEstimatorTransparency(t *testing.T) {
	wl, err := workloads.Build("IR", workloads.Options{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
		t.Fatal(err)
	}
	plain, err := whatif.New(wl.Cluster).Estimate(wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	cache := New(0)
	cached := NewEstimator(cache, whatif.New(wl.Cluster))
	first, err := cached.Estimate(wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.Estimate(wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("second estimate was not the cached value")
	}
	if first.Makespan != plain.Makespan || first.Fallback != plain.Fallback {
		t.Fatalf("cached makespan %v != plain %v", first.Makespan, plain.Makespan)
	}
	for id, je := range plain.Jobs {
		cj, ok := first.Jobs[id]
		if !ok {
			t.Fatalf("cached estimate missing job %s", id)
		}
		if *cj != *je {
			t.Fatalf("job %s: cached %+v != plain %+v", id, *cj, *je)
		}
	}

	// Renamed jobs: same fingerprint, remapped job keys, shared values.
	renamed := wl.Workflow.Clone()
	for i, j := range renamed.Jobs {
		j.ID = fmt.Sprintf("renamed-%d", i)
	}
	re, err := cached.Estimate(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if re.Makespan != plain.Makespan {
		t.Fatalf("renamed makespan %v != plain %v", re.Makespan, plain.Makespan)
	}
	if len(re.Jobs) != len(plain.Jobs) {
		t.Fatalf("renamed estimate has %d jobs, want %d", len(re.Jobs), len(plain.Jobs))
	}
	for i, j := range renamed.Jobs {
		if _, ok := re.Jobs[j.ID]; !ok {
			t.Fatalf("renamed estimate missing job %d (%s)", i, j.ID)
		}
	}
	if st := cache.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
	if c := cached.Counts(); c.Requests != 3 || c.Computed != 1 {
		t.Fatalf("counts = (%d, %d), want (3, 1)", c.Requests, c.Computed)
	}
}

func TestClusterFingerprintDistinguishesClusters(t *testing.T) {
	a := mrsim.DefaultCluster()
	b := mrsim.DefaultCluster()
	if ClusterFingerprint(a) != ClusterFingerprint(b) {
		t.Fatal("identical clusters fingerprint differently")
	}
	b.VirtualScale *= 2
	if ClusterFingerprint(a) == ClusterFingerprint(b) {
		t.Fatal("different clusters share a fingerprint")
	}
	// Drift guard: ClusterFingerprint hand-enumerates every Cluster field.
	// A new cost-relevant field that it misses would let sessions with
	// different clusters share cache entries silently; fail loudly instead.
	if n := reflect.TypeOf(mrsim.Cluster{}).NumField(); n != 10 {
		t.Fatalf("mrsim.Cluster has %d fields; update ClusterFingerprint to cover the new ones, then this count", n)
	}
}
