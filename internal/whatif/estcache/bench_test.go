package estcache

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

func benchWorkflow(b *testing.B) (*wf.Workflow, *workloads.Workload) {
	wl, err := workloads.Build("BA", workloads.Options{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
		b.Fatal(err)
	}
	return wl.Workflow, wl
}

// BenchmarkFingerprint measures one workflow fingerprint with a warm Hasher
// — the per-request overhead the cache adds on top of a lookup.
func BenchmarkFingerprint(b *testing.B) {
	w, _ := benchWorkflow(b)
	h := wf.NewHasher()
	h.Workflow(w) // warm the profile memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Workflow(w)
	}
}

// BenchmarkEstimateUncached is the baseline the cache competes with.
func BenchmarkEstimateUncached(b *testing.B) {
	w, wl := benchWorkflow(b)
	est := whatif.New(wl.Cluster)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures the raw Cache.GetOrCompute hit path alone
// (no fingerprinting): lock, LRU touch, job-ID comparison. It must not
// allocate — TestCacheHitZeroAllocs enforces that.
func BenchmarkCacheHit(b *testing.B) {
	w, wl := benchWorkflow(b)
	c := New(0)
	key := Key{Plan: wf.FingerprintWorkflow(w), Cluster: ClusterFingerprint(wl.Cluster)}
	jobIDs := jobIDsOf(w)
	compute := func() (*whatif.Estimate, error) { return whatif.New(wl.Cluster).Estimate(w) }
	if _, err := c.GetOrCompute(key, jobIDs, compute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOrCompute(key, jobIDs, compute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheStats measures the atomic stats snapshot /statsz polls.
func BenchmarkCacheStats(b *testing.B) {
	c := New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Stats()
	}
}

// TestCacheHitZeroAllocs pins the hit path's allocation count at zero: the
// optimizer consults the cache millions of times per search, so a single
// allocation here shows up directly in optimization throughput.
func TestCacheHitZeroAllocs(t *testing.T) {
	wl, err := workloads.Build("BA", workloads.Options{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
		t.Fatal(err)
	}
	c := New(0)
	key := Key{Plan: wf.FingerprintWorkflow(wl.Workflow), Cluster: ClusterFingerprint(wl.Cluster)}
	jobIDs := jobIDsOf(wl.Workflow)
	compute := func() (*whatif.Estimate, error) { return whatif.New(wl.Cluster).Estimate(wl.Workflow) }
	if _, err := c.GetOrCompute(key, jobIDs, compute); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.GetOrCompute(key, jobIDs, compute); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f times per lookup, want 0", allocs)
	}
}

// jobIDsOf extracts the workflow's job-ID vector in Jobs slice order.
func jobIDsOf(w *wf.Workflow) []string {
	ids := make([]string, len(w.Jobs))
	for i, j := range w.Jobs {
		ids[i] = j.ID
	}
	return ids
}

// BenchmarkEstimateCacheHit measures the full cached path on a hit:
// fingerprint + sharded lookup.
func BenchmarkEstimateCacheHit(b *testing.B) {
	w, wl := benchWorkflow(b)
	est := NewEstimator(New(0), whatif.New(wl.Cluster))
	if _, err := est.Estimate(w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}
