package estcache

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

func benchWorkflow(b *testing.B) (*wf.Workflow, *workloads.Workload) {
	wl, err := workloads.Build("BA", workloads.Options{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
		b.Fatal(err)
	}
	return wl.Workflow, wl
}

// BenchmarkFingerprint measures one workflow fingerprint with a warm Hasher
// — the per-request overhead the cache adds on top of a lookup.
func BenchmarkFingerprint(b *testing.B) {
	w, _ := benchWorkflow(b)
	h := wf.NewHasher()
	h.Workflow(w) // warm the profile memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Workflow(w)
	}
}

// BenchmarkEstimateUncached is the baseline the cache competes with.
func BenchmarkEstimateUncached(b *testing.B) {
	w, wl := benchWorkflow(b)
	est := whatif.New(wl.Cluster)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateCacheHit measures the full cached path on a hit:
// fingerprint + sharded lookup.
func BenchmarkEstimateCacheHit(b *testing.B) {
	w, wl := benchWorkflow(b)
	est := NewEstimator(New(0), whatif.New(wl.Cluster))
	if _, err := est.Estimate(w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(w); err != nil {
			b.Fatal(err)
		}
	}
}
