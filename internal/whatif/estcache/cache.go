// Package estcache memoizes What-if cost estimates under canonical workflow
// fingerprints (package wf), so a search that revisits a cost-equivalent
// plan — the same structure, configurations, profiles, and layouts,
// regardless of job-ID renaming — reuses the earlier answer instead of
// re-running the estimator. The cache is sharded and concurrent-safe, bounds
// memory with per-shard LRU eviction, deduplicates concurrent computations
// of the same plan with a single-flight guard, and counts hits, misses, and
// evictions for observability.
//
// Cached *whatif.Estimate values are shared between callers and MUST be
// treated as immutable; every consumer in this repository only reads them.
package estcache

import (
	"container/list"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// DefaultCapacity bounds a cache built with New(0). Estimates are small
// (per-job aggregates, not per-task data), so thousands of entries cost a
// few MB at most.
const DefaultCapacity = 8192

const numShards = 16 // power of two; key[0] low bits select the shard

// Key identifies one (workflow, cluster) estimation question.
type Key struct {
	// Plan is the canonical workflow fingerprint.
	Plan wf.Fingerprint
	// Cluster digests the cluster description, so one cache shared across
	// sessions with different clusters never cross-pollinates.
	Cluster uint64
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts lookups answered from the cache, including lookups that
	// waited on another caller's in-flight computation instead of starting
	// their own.
	Hits uint64
	// Misses counts lookups that had to run the estimator.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Entries is the current number of cached estimates.
	Entries int
	// Capacity is the maximum number of cached estimates.
	Capacity int
}

// Lookups returns the total number of cache consultations.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits over Lookups in [0, 1] (zero when empty).
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// entry is one cached estimate plus the job-ID vector of the workflow that
// computed it (in Jobs slice order), so a hit from a fingerprint-equal
// workflow with renamed jobs can be re-keyed before use.
type entry struct {
	key    Key
	jobIDs []string
	est    *whatif.Estimate
}

// flight tracks one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	ent  *entry
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element // of *entry
	lru     *list.List            // front = most recently used
	flights map[Key]*flight
	// The counters are atomics (size mirrors lru.Len()) so Stats can
	// snapshot them without taking shard locks — a /statsz poll never
	// contends with the optimizer's hot lookup path.
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
	size    atomic.Int64
}

// Cache is a sharded, LRU-bounded, single-flight memo of What-if estimates.
// It is safe for concurrent use and may be shared across estimators,
// optimizers, and sessions (that is the point: an OptimizeAll fan-out over
// workflows sharing plans amortizes estimates through one shared cache).
type Cache struct {
	shards      [numShards]*shard
	capPerShard int
}

// New builds a cache bounded to roughly capacity entries (<= 0 uses
// DefaultCapacity). The bound is enforced per shard, so the effective
// capacity is capacity rounded up to a multiple of the shard count.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{capPerShard: per}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[Key]*list.Element),
			lru:     list.New(),
			flights: make(map[Key]*flight),
		}
	}
	return c
}

// Capacity returns the total entry bound.
func (c *Cache) Capacity() int { return c.capPerShard * numShards }

func (c *Cache) shard(k Key) *shard {
	return c.shards[k.Plan[0]&(numShards-1)]
}

// GetOrCompute returns the estimate for key, running compute on a miss.
// Concurrent callers with the same key share one computation (single
// flight); errors are returned to every waiter and never cached. jobIDs is
// the calling workflow's job-ID vector in Jobs slice order: on a hit whose
// cached vector differs (fingerprint-equal workflow with renamed jobs), the
// returned estimate is re-keyed position-for-position, which the
// fingerprint's job-order sensitivity makes sound.
func (c *Cache) GetOrCompute(key Key, jobIDs []string,
	compute func() (*whatif.Estimate, error)) (*whatif.Estimate, error) {

	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		sh.hits.Add(1)
		ent := el.Value.(*entry)
		sh.mu.Unlock()
		return remap(ent, jobIDs), nil
	}
	if fl, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			// The flight's owner failed. Other waiters surface the same
			// error; nothing was cached.
			return nil, fl.err
		}
		sh.hits.Add(1)
		return remap(fl.ent, jobIDs), nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[key] = fl
	sh.misses.Add(1)
	sh.mu.Unlock()

	est, err := compute()
	sh.mu.Lock()
	delete(sh.flights, key)
	if err != nil {
		sh.mu.Unlock()
		fl.err = err
		close(fl.done)
		return nil, err
	}
	ent := &entry{key: key, jobIDs: append([]string(nil), jobIDs...), est: est}
	el := sh.lru.PushFront(ent)
	sh.entries[key] = el
	sh.size.Add(1)
	for sh.lru.Len() > c.capPerShard {
		old := sh.lru.Back()
		sh.lru.Remove(old)
		delete(sh.entries, old.Value.(*entry).key)
		sh.evicted.Add(1)
		sh.size.Add(-1)
	}
	sh.mu.Unlock()
	fl.ent = ent
	close(fl.done)
	return est, nil
}

// Stats snapshots the cache counters, summed across shards. The counters
// are atomics, so the snapshot takes no locks and never contends with
// concurrent lookups (each individual counter is exact; the sum is a
// consistent-enough point-in-time view for monitoring).
func (c *Cache) Stats() Stats {
	out := Stats{Capacity: c.Capacity()}
	for _, sh := range c.shards {
		out.Hits += sh.hits.Load()
		out.Misses += sh.misses.Load()
		out.Evictions += sh.evicted.Load()
		out.Entries += int(sh.size.Load())
	}
	return out
}

// Reset drops every entry and zeroes the counters. In-flight computations
// complete but their results land in the cleared maps as usual.
func (c *Cache) Reset() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[Key]*list.Element)
		sh.lru = list.New()
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.evicted.Store(0)
		sh.size.Store(0)
		sh.mu.Unlock()
	}
}

// remap returns the cached estimate re-keyed to the caller's job IDs. When
// the vectors already agree (the overwhelmingly common case) the cached
// value is returned as-is; otherwise the Jobs map is rebuilt with the
// caller's IDs, sharing the per-job and per-dataset values.
func remap(ent *entry, jobIDs []string) *whatif.Estimate {
	if slices.Equal(ent.jobIDs, jobIDs) {
		return ent.est
	}
	out := &whatif.Estimate{
		Makespan: ent.est.Makespan,
		Fallback: ent.est.Fallback,
		Jobs:     make(map[string]*whatif.JobEstimate, len(ent.est.Jobs)),
		Datasets: ent.est.Datasets,
	}
	for i, old := range ent.jobIDs {
		if i >= len(jobIDs) {
			break
		}
		if je, ok := ent.est.Jobs[old]; ok {
			out.Jobs[jobIDs[i]] = je
		}
	}
	return out
}
