package estcache

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// Estimator is a memoizing front to one whatif.Estimator: Estimate
// fingerprints the workflow and answers from the shared Cache, falling back
// to the wrapped estimator on a miss. Like whatif.Estimator it is NOT safe
// for concurrent use (fingerprint memoization is private state); concurrent
// searches each hold their own Estimator around one shared Cache, which is
// concurrent-safe and deduplicates in-flight work across them.
type Estimator struct {
	cache     *Cache
	inner     *whatif.Estimator
	hasher    *wf.Hasher
	clusterFP uint64
	requests  uint64
}

// NewEstimator wraps inner with the shared cache.
func NewEstimator(cache *Cache, inner *whatif.Estimator) *Estimator {
	return &Estimator{
		cache:     cache,
		inner:     inner,
		hasher:    wf.NewHasher(),
		clusterFP: ClusterFingerprint(inner.Cluster),
	}
}

// Estimate predicts the execution of w, reusing a cached estimate when a
// cost-equivalent workflow was estimated before (by any estimator sharing
// the cache). The returned estimate is shared and must be treated as
// immutable. Errors are never cached.
func (e *Estimator) Estimate(w *wf.Workflow) (*whatif.Estimate, error) {
	return e.EstimateContext(context.Background(), w)
}

// EstimateContext is Estimate under a context: a cache hit returns
// immediately, and a miss computes through the wrapped estimator with
// cancellation checked between per-job flow computations. A canceled
// computation is never cached.
func (e *Estimator) EstimateContext(ctx context.Context, w *wf.Workflow) (*whatif.Estimate, error) {
	e.requests++
	key := Key{Plan: e.hasher.Workflow(w), Cluster: e.clusterFP}
	jobIDs := make([]string, len(w.Jobs))
	for i, j := range w.Jobs {
		jobIDs[i] = j.ID
	}
	for {
		est, err := e.cache.GetOrCompute(key, jobIDs, func() (*whatif.Estimate, error) {
			return e.inner.EstimateContext(ctx, w)
		})
		// The single flight returns the owner's error to every waiter. A
		// ctx-derived error with OUR ctx still live means a fingerprint-
		// equal caller was canceled mid-computation — their cancellation
		// must not poison this caller, so recompute (the failed flight was
		// removed, so the retry starts fresh).
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return est, err
	}
}

// Counts reports what-if activity through this estimator: Requests is every
// Estimate call plus every incremental (Prepared) delta estimate; Computed
// is how many ran the full estimator (misses this estimator computed itself
// — cache hits, delta estimates, and waits on other estimators' flights are
// excluded); FlowCards counts the wrapped estimator's per-job flow
// computations.
func (e *Estimator) Counts() whatif.Counts {
	ic := e.inner.Counts()
	return whatif.Counts{
		// Every full computation of the inner estimator happened on a miss
		// of this cache, so the inner requests beyond Computed are exactly
		// its delta estimates.
		Requests:  e.requests + (ic.Requests - ic.Computed),
		Computed:  ic.Computed,
		FlowCards: ic.FlowCards,
	}
}

// Robustness forwards Monte-Carlo robustness evaluation to the wrapped
// estimator. Reports are cheap schedule replays over once-computed flow
// cards and are deliberately not cached.
func (e *Estimator) Robustness(ctx context.Context, w *wf.Workflow, opt whatif.RobustnessOptions) (*whatif.Robustness, error) {
	return e.inner.Robustness(ctx, w, opt)
}

// Prepare builds an incremental estimator on the wrapped What-if engine.
// Delta estimates bypass the cache — their whole point is that consecutive
// search probes are cheaper to re-derive than to fingerprint — but they
// share the inner estimator's memoization and are counted in Counts.
func (e *Estimator) Prepare(w *wf.Workflow, changedJobIDs []string) (*whatif.Prepared, error) {
	return e.inner.Prepare(w, changedJobIDs)
}

// Cache returns the shared cache backing this estimator.
func (e *Estimator) Cache() *Cache { return e.cache }

// ClusterFingerprint digests the cluster description for cache keying. The
// cluster is a flat struct of scalars, hashed field by field.
func ClusterFingerprint(c *mrsim.Cluster) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(c.Nodes))
	wu(uint64(c.MapSlotsPerNode))
	wu(uint64(c.ReduceSlotsPerNode))
	wu(math.Float64bits(c.DiskMBps))
	wu(math.Float64bits(c.NetMBps))
	wu(math.Float64bits(c.TaskSetupSec))
	wu(math.Float64bits(c.SortCPUPerRecord))
	wu(math.Float64bits(c.CompressRatio))
	wu(math.Float64bits(c.CompressCPUSecPerMB))
	wu(math.Float64bits(c.VirtualScale))
	return h.Sum64()
}
