package whatif

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Prepared is an incremental What-if estimator for one plan under
// configuration search: the caller declares up front which jobs a probe may
// reconfigure, Prepare pays the full cost of everything scheduled before
// the first such job once, and each subsequent Estimate recomputes flow
// only for the affected cone — the changed jobs plus any job whose input
// dataset estimates actually changed — while replaying scheduling (cheap
// slot-pool arithmetic) from a snapshot.
//
// Equivalence contract: Prepared.Estimate returns estimates bit-identical
// to Estimator.Estimate on the same plan. Per-job flow arithmetic, the
// slot-pool operation order, and the pools' internal state are shared with
// the monolithic path, so no float ever takes a different path; the
// differential suite and the equivalence fuzz test enforce this.
//
// A Prepared is bound to the plan value passed to Prepare: callers mutate
// the configurations of the declared jobs in place between Estimate calls
// (the structure — jobs, branches, groups, partition specs — must not
// change). Like Estimator, it is not safe for concurrent use.
type Prepared struct {
	est     *Estimator
	plan    *wf.Workflow
	order   []*wf.Job
	split   int // topo index of the first changeable job
	limit   int // one past the last changeable job (EstimateChanged's stop)
	changed map[string]bool

	fallback bool

	// Prefix snapshot: per-job estimates, dataset estimates, dataset-ready
	// times, and partial makespan for order[:split], plus the slot pools'
	// exact state after scheduling the prefix.
	prefixJobs     []prefixJob
	prefixDatasets []prefixDataset
	prefixReady    map[string]float64
	prefixMakespan float64
	mapPool        *mrsim.SlotPool
	redPool        *mrsim.SlotPool
	mapSnap        mrsim.PoolSnapshot
	redSnap        mrsim.PoolSnapshot

	// memo holds flow cards for suffix jobs, keyed per job by the exact
	// configuration they were computed under; a card is reused when the
	// job's configuration recurs and its input dataset estimates match the
	// card's (flow is a pure function of job, configuration, and inputs).
	// Unchanged jobs have a constant configuration, so their bucket holds
	// one card that survives while upstream probes leave their inputs
	// alone; changed jobs accumulate one card per visited configuration,
	// which the clustered probes of RRS's exploit phase revisit heavily.
	memo map[string]map[wf.Config]*jobCard

	// window precomputes each probe-path job's distinct input/output
	// dataset IDs: job.Inputs/Outputs allocate per call, and probes run
	// hundreds of times per subplan.
	window []windowJob

	// cur* are EstimateChanged's reusable buffers: one Estimate skeleton
	// whose prefix entries are seeded once and whose suffix entries are
	// overwritten in place per call, so a probe allocates nothing
	// proportional to the plan.
	cur      *Estimate
	curReady map[string]float64
}

type windowJob struct {
	job       *wf.Job
	ins, outs []string
}

type prefixJob struct {
	id string
	je JobEstimate
}

type prefixDataset struct {
	id string
	de DatasetEstimate
}

// Prepare builds an incremental estimator for w, declaring that subsequent
// probes mutate only the configurations of changedJobIDs. The prefix — every
// job topologically ordered before the first changeable job — is estimated
// and scheduled once, here.
func (e *Estimator) Prepare(w *wf.Workflow, changedJobIDs []string) (*Prepared, error) {
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		est:     e,
		plan:    w,
		order:   order,
		changed: make(map[string]bool, len(changedJobIDs)),
		memo:    make(map[string]map[wf.Config]*jobCard),
	}
	for _, id := range changedJobIDs {
		p.changed[id] = true
	}
	if !profile.HasFullProfiles(w) || !hasBaseSizes(w) {
		// Fallback costing ignores configurations entirely; every Estimate
		// reproduces the monolithic #jobs answer.
		p.fallback = true
		return p, nil
	}
	p.split = len(order)
	for i, job := range order {
		if p.changed[job.ID] {
			p.split = i
			break
		}
	}
	p.limit = p.split
	for i := p.split; i < len(order); i++ {
		if p.changed[order[i].ID] {
			p.limit = i + 1
		}
	}

	// Run flow + scheduling for the prefix once. This mirrors the
	// monolithic loop exactly, so the pools' state at the split point is
	// the state a full estimate would have reached.
	datasets := make(map[string]*DatasetEstimate, len(w.Datasets))
	seedBaseDatasets(w, datasets)
	p.mapPool = mrsim.NewSlotPool(e.Cluster.TotalMapSlots())
	p.redPool = mrsim.NewSlotPool(e.Cluster.TotalReduceSlots())
	p.prefixReady = make(map[string]float64)
	for _, job := range order[:p.split] {
		jobReady := readyTime(job, p.prefixReady)
		card, err := e.flowJob(job, datasets)
		if err != nil {
			return nil, fmt.Errorf("whatif: job %s: %w", job.ID, err)
		}
		end := scheduleJob(card, jobReady, p.mapPool, p.redPool)
		je := card.jobEstimate(jobReady, end)
		card.applyOutputs(datasets)
		p.prefixJobs = append(p.prefixJobs, prefixJob{id: job.ID, je: *je})
		for _, out := range job.Outputs() {
			p.prefixReady[out] = je.End
		}
		if je.End > p.prefixMakespan {
			p.prefixMakespan = je.End
		}
	}
	for id, de := range datasets {
		p.prefixDatasets = append(p.prefixDatasets, prefixDataset{id: id, de: *de})
	}
	p.mapSnap = p.mapPool.Snapshot()
	p.redSnap = p.redPool.Snapshot()
	for _, job := range order[p.split:p.limit] {
		p.window = append(p.window, windowJob{job: job, ins: job.Inputs(), outs: job.Outputs()})
	}
	return p, nil
}

// Estimate predicts the execution of the prepared plan under its current
// configurations. Flow is recomputed only for changed jobs and for jobs
// whose input dataset estimates differ from their memoized card; everything
// else replays. The result is bit-identical to Estimator.Estimate on the
// same plan and safe for the caller to hold across calls; like every
// estimate in this package, its Layout slice fields alias plan/card state
// and must be treated as immutable.
func (p *Prepared) Estimate() (*Estimate, error) {
	return p.estimate()
}

// EstimateChanged is the configuration search's probe path: Estimate
// truncated after the last changeable job in topological order — jobs
// scheduled later cannot influence when the changeable jobs (or anything
// before them) run, so a caller pricing only the changeable jobs can skip
// the tail entirely. Every JobEstimate and DatasetEstimate present is
// bit-identical to the full estimate's; Makespan covers only the processed
// prefix+window, so callers needing whole-plan makespan must use Estimate.
//
// The returned Estimate is a reused buffer: it is valid only until the next
// EstimateChanged call and must not be mutated or retained. (Estimate
// returns fresh allocations and has no such restriction.)
func (p *Prepared) EstimateChanged() (*Estimate, error) {
	p.est.deltaCalls++
	if p.fallback {
		return fallbackEstimate(p.plan), nil
	}
	if p.cur == nil {
		p.cur = &Estimate{
			Jobs:     make(map[string]*JobEstimate, len(p.plan.Jobs)),
			Datasets: make(map[string]*DatasetEstimate, len(p.plan.Datasets)),
		}
		for i := range p.prefixJobs {
			p.cur.Jobs[p.prefixJobs[i].id] = &p.prefixJobs[i].je
		}
		for i := range p.prefixDatasets {
			p.cur.Datasets[p.prefixDatasets[i].id] = &p.prefixDatasets[i].de
		}
		p.curReady = make(map[string]float64, len(p.prefixReady))
		for id, t := range p.prefixReady {
			p.curReady[id] = t
		}
	}
	est := p.cur
	est.Makespan = p.prefixMakespan
	p.mapPool.Restore(p.mapSnap)
	p.redPool.Restore(p.redSnap)
	for i := range p.window {
		w := &p.window[i]
		// Stale suffix entries from the previous probe are safe: topological
		// order guarantees every entry a job reads was refreshed this probe
		// (prefix entries are immutable; suffix inputs come from suffix jobs
		// already processed above).
		jobReady := 0.0
		for _, in := range w.ins {
			if t := p.curReady[in]; t > jobReady {
				jobReady = t
			}
		}
		card, err := p.probeCard(w.job, est.Datasets)
		if err != nil {
			return nil, err
		}
		end := scheduleJob(card, jobReady, p.mapPool, p.redPool)
		je := est.Jobs[w.job.ID]
		if je == nil {
			je = &JobEstimate{}
			est.Jobs[w.job.ID] = je
		}
		card.fillJobEstimate(je, jobReady, end)
		for i := range card.outputs {
			if de := est.Datasets[card.outputs[i].id]; de != nil {
				*de = card.outputs[i].est
			} else {
				v := card.outputs[i].est
				est.Datasets[card.outputs[i].id] = &v
			}
		}
		for _, out := range w.outs {
			p.curReady[out] = je.End
		}
		if je.End > est.Makespan {
			est.Makespan = je.End
		}
	}
	return est, nil
}

// probeCard returns the job's flow card for its current configuration and
// input estimates, recomputing on a memo miss.
func (p *Prepared) probeCard(job *wf.Job, datasets map[string]*DatasetEstimate) (*jobCard, error) {
	bucket := p.memo[job.ID]
	if bucket == nil {
		bucket = make(map[wf.Config]*jobCard)
		p.memo[job.ID] = bucket
	}
	card := bucket[job.Config]
	if card == nil || !card.inputsMatch(datasets) {
		var err error
		card, err = p.est.flowJob(job, datasets)
		if err != nil {
			return nil, fmt.Errorf("whatif: job %s: %w", job.ID, err)
		}
		bucket[job.Config] = card
	}
	return card, nil
}

// estimate is the full (non-truncated, freshly assembled) delta-estimate
// loop behind Estimate; the probe path with truncation and buffer reuse is
// EstimateChanged's separate loop.
func (p *Prepared) estimate() (*Estimate, error) {
	p.est.deltaCalls++
	if p.fallback {
		return fallbackEstimate(p.plan), nil
	}
	est := &Estimate{
		Makespan: p.prefixMakespan,
		Jobs:     make(map[string]*JobEstimate, len(p.plan.Jobs)),
		Datasets: make(map[string]*DatasetEstimate, len(p.plan.Datasets)),
	}
	for i := range p.prefixJobs {
		je := p.prefixJobs[i].je
		est.Jobs[p.prefixJobs[i].id] = &je
	}
	for i := range p.prefixDatasets {
		de := p.prefixDatasets[i].de
		est.Datasets[p.prefixDatasets[i].id] = &de
	}
	ready := make(map[string]float64, len(p.prefixReady))
	for id, t := range p.prefixReady {
		ready[id] = t
	}
	p.mapPool.Restore(p.mapSnap)
	p.redPool.Restore(p.redSnap)
	for _, job := range p.order[p.split:] {
		jobReady := readyTime(job, ready)
		card, err := p.probeCard(job, est.Datasets)
		if err != nil {
			return nil, err
		}
		end := scheduleJob(card, jobReady, p.mapPool, p.redPool)
		je := card.jobEstimate(jobReady, end)
		est.Jobs[job.ID] = je
		card.applyOutputs(est.Datasets)
		for _, out := range job.Outputs() {
			ready[out] = je.End
		}
		if je.End > est.Makespan {
			est.Makespan = je.End
		}
	}
	return est, nil
}

// Plan returns the workflow this Prepared is bound to.
func (p *Prepared) Plan() *wf.Workflow { return p.plan }
