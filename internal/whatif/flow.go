package whatif

import (
	"fmt"
	"math"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// This file is the flow layer of the estimator: everything about one job
// that does not depend on when the cluster can run it — input pruning, tag
// flow, the combiner model, skew, task counts, average and straggler task
// durations, and output dataset estimates. The result is an immutable
// jobCard; the scheduling layer (schedule.go) turns cards into start/end
// times. Keeping this layer pure (a function of the job and its input
// dataset estimates only) is what lets Prepared reuse cards across
// configuration-search probes.

// jobCard is the flow layer's answer for one job: the task counts and
// durations scheduling needs, plus the output dataset estimates downstream
// jobs consume. Cards are immutable once built.
type jobCard struct {
	mapTasks    int
	reduceTasks int
	hasReduce   bool
	// avgMapDur / maxMapDur are mean and straggler (input-skew-adjusted)
	// map task durations; avgRedDur / maxRedDur the reduce equivalents.
	avgMapDur, maxMapDur float64
	avgRedDur, maxRedDur float64
	// shuffleWire is the predicted on-wire shuffle volume.
	shuffleWire float64
	// inputs snapshots the input dataset estimates the card was computed
	// from, in job input order — Prepared's invalidation check.
	inputs []cardInput
	// outputs are the job's output dataset estimates, in tag order.
	outputs []cardOutput
}

type cardInput struct {
	id  string
	est DatasetEstimate
}

type cardOutput struct {
	id  string
	est DatasetEstimate
}

// jobEstimate assembles the public per-job estimate from the card and the
// scheduling layer's start/end times.
func (cd *jobCard) jobEstimate(start, end float64) *JobEstimate {
	je := &JobEstimate{}
	cd.fillJobEstimate(je, start, end)
	return je
}

// fillJobEstimate is jobEstimate into a caller-owned value (the probe path
// reuses one JobEstimate per job across estimates).
func (cd *jobCard) fillJobEstimate(je *JobEstimate, start, end float64) {
	*je = JobEstimate{
		MapTasks:      cd.mapTasks,
		ReduceTasks:   cd.reduceTasks,
		AvgMapTaskSec: cd.avgMapDur,
		Start:         start,
		End:           end,
	}
	if cd.hasReduce {
		je.AvgReduceTaskSec = cd.avgRedDur
		je.MaxReduceTaskSec = cd.maxRedDur
		je.ShuffleBytesVirtual = cd.shuffleWire
	}
}

// applyOutputs publishes the card's output dataset estimates as fresh
// value copies. Scalar fields are therefore caller-independent; the Layout
// slice fields still alias the card's (layouts are treated as immutable
// throughout the estimator).
func (cd *jobCard) applyOutputs(datasets map[string]*DatasetEstimate) {
	for i := range cd.outputs {
		de := cd.outputs[i].est
		datasets[cd.outputs[i].id] = &de
	}
}

// inputsMatch reports whether the card's captured input estimates equal the
// current ones — if so, the card (a pure function of job and inputs) is
// reusable as-is for an unchanged job.
func (cd *jobCard) inputsMatch(datasets map[string]*DatasetEstimate) bool {
	for i := range cd.inputs {
		cur := datasets[cd.inputs[i].id]
		if cur == nil || !datasetEstimateEqual(*cur, cd.inputs[i].est) {
			return false
		}
	}
	return true
}

func datasetEstimateEqual(a, b DatasetEstimate) bool {
	return a.Records == b.Records && a.Bytes == b.Bytes &&
		a.Partitions == b.Partitions && a.MaxPartShare == b.MaxPartShare &&
		layoutEqual(a.Layout, b.Layout)
}

func layoutEqual(a, b wf.Layout) bool {
	if a.PartType != b.PartType || a.Compressed != b.Compressed ||
		!wf.FieldsEqual(a.PartFields, b.PartFields) ||
		!wf.FieldsEqual(a.SortFields, b.SortFields) ||
		len(a.SplitPoints) != len(b.SplitPoints) {
		return false
	}
	for i := range a.SplitPoints {
		if keyval.Compare(a.SplitPoints[i], b.SplitPoints[i]) != 0 {
			return false
		}
	}
	return true
}

// tagEst carries per-tag flow predictions while estimating one job.
type tagEst struct {
	group         *wf.ReduceGroup
	numParts      int
	mapOutRecords float64
	mapOutBytes   float64
	outRecords    float64 // final pipeline output
	outBytes      float64
	maxShare      float64 // largest reduce-partition share (skew)
}

// flowJob runs the flow layer for one job against the current dataset
// estimates and returns its duration card. It performs no slot-pool
// operations; the arithmetic and its order are shared with the historical
// monolithic estimator, so card-based estimates are bit-identical to it.
func (e *Estimator) flowJob(job *wf.Job, datasets map[string]*DatasetEstimate) (*jobCard, error) {
	e.flowCards++
	c := e.Cluster
	cfg := job.Config
	card := &jobCard{}

	// --- input volumes, with pruning-fraction estimation ---
	type inEst struct {
		records, bytes float64
		compressed     bool
		parts          int
		layout         wf.Layout
		maxShare       float64
	}
	inIDs := job.Inputs()
	ins := make(map[string]*inEst, len(inIDs))
	for _, in := range inIDs {
		de, ok := datasets[in]
		if !ok {
			return nil, fmt.Errorf("no estimate for input %q", in)
		}
		card.inputs = append(card.inputs, cardInput{id: in, est: *de})
		frac := 1.0
		if !job.AlignMapToInput {
			frac = e.pruneKeepFraction(job, in, de.Layout)
		}
		parts := maxInt(de.Partitions, 1)
		if frac < 1 {
			parts = maxInt(1, int(frac*float64(parts)+0.5))
		}
		share := de.MaxPartShare
		if share <= 0 {
			share = 1 / float64(parts)
		}
		ins[in] = &inEst{
			records:    de.Records * frac,
			bytes:      de.Bytes * frac,
			compressed: de.Layout.Compressed,
			parts:      parts,
			layout:     de.Layout,
			maxShare:   share,
		}
	}

	// --- map-side flow per tag ---
	tags := make(map[int]*tagEst)
	var tagOrder []int
	for i := range job.ReduceGroups {
		g := &job.ReduceGroups[i]
		tags[g.Tag] = &tagEst{group: g, maxShare: 1}
		tagOrder = append(tagOrder, g.Tag)
	}
	sort.Ints(tagOrder)

	var totalMapCPU float64 // real seconds basis, scaled later
	for bi := range job.MapBranches {
		b := &job.MapBranches[bi]
		mp := job.Profile.MapProfile(*b)
		if mp == nil {
			return nil, fmt.Errorf("missing map profile for tag %d input %s", b.Tag, b.Input)
		}
		in := ins[b.Input]
		te := tags[b.Tag]
		outRecs := in.records * mp.Selectivity
		te.mapOutRecords += outRecs
		te.mapOutBytes += outRecs * mp.OutBytesPerRecord
		totalMapCPU += in.records * mp.CPUPerRecord
	}

	// --- task counts ---
	numMapTasks := 0
	if job.AlignMapToInput {
		for _, in := range inIDs {
			if p := ins[in].parts; p > numMapTasks {
				numMapTasks = p
			}
		}
	} else {
		// Splits never cross partition boundaries (matching the executor):
		// each partition chunks independently into ceil(partBytes/split).
		// Iteration follows job input order — a deterministic order keeps
		// flow a pure function of (job, inputs), which card reuse and the
		// bitwise-equivalence bar both rely on.
		for _, id := range inIDs {
			in := ins[id]
			perPart := c.Scale(in.bytes) / float64(in.parts)
			numMapTasks += in.parts * int(ceilDiv(perPart, float64(cfg.SplitSizeMB)*mrsim.MB))
		}
	}
	if numMapTasks < 1 {
		numMapTasks = 1
	}
	card.mapTasks = numMapTasks

	numReduce := 0
	hasReduce := false
	for _, tag := range tagOrder {
		te := tags[tag]
		if te.group.MapOnly() {
			continue
		}
		hasReduce = true
		n := te.group.Part.NumPartitions(cfg.NumReduceTasks)
		te.numParts = n
		if n > numReduce {
			numReduce = n
		}
	}
	if hasReduce {
		for _, te := range tags {
			if !te.group.MapOnly() && te.group.Part.Type == keyval.HashPartition {
				te.numParts = numReduce
			}
		}
	}
	card.hasReduce = hasReduce
	if hasReduce {
		card.reduceTasks = numReduce
	}

	// --- combiner, skew, reduce flow ---
	var mapWriteOnly float64 // map-only output bytes written by map tasks
	var combineCPU float64
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		if g.MapOnly() {
			te.outRecords = te.mapOutRecords
			te.outBytes = te.mapOutBytes
			if g.RunsMapSide && len(g.Stages) > 0 {
				// Intra-packed pipeline: the grouped stages run map-side.
				rp := job.Profile.ReduceProfile(tag)
				if rp == nil {
					return nil, fmt.Errorf("missing map-side group profile for tag %d", tag)
				}
				totalMapCPU += te.mapOutRecords * rp.CPUPerRecord
				te.outRecords = te.mapOutRecords * rp.Selectivity
				te.outBytes = te.outRecords * rp.OutBytesPerRecord
			}
			mapWriteOnly += te.outBytes
			continue
		}
		rp := job.Profile.ReduceProfile(tag)
		if rp == nil {
			return nil, fmt.Errorf("missing reduce profile for tag %d", tag)
		}
		if cfg.UseCombiner && g.Combiner != nil && rp.CombineReduction > 0 && rp.CombineReduction < 1 {
			combineCPU += te.mapOutRecords * g.Combiner.CPUPerRecord
			reduction := combinerReduction(rp, te, numMapTasks)
			te.mapOutBytes *= reduction
			te.mapOutRecords *= reduction
		}
		te.maxShare = e.skewShare(job, tag, te)
		te.outRecords = te.mapOutRecords * rp.Selectivity
		te.outBytes = te.outRecords * rp.OutBytesPerRecord
	}

	// --- map task duration ---
	var readTime float64
	for _, id := range inIDs {
		in := ins[id]
		readTime += c.ReadTime(c.Scale(in.bytes), in.compressed)
	}
	var shuffledBytes, shuffledRecords float64
	for _, tag := range tagOrder {
		te := tags[tag]
		if !te.group.MapOnly() {
			shuffledBytes += te.mapOutBytes
			shuffledRecords += te.mapOutRecords
		}
	}
	perTaskOutBytes := c.Scale(shuffledBytes) / float64(numMapTasks)
	perTaskOutRecords := c.Scale(shuffledRecords) / float64(numMapTasks)
	mapDur := c.TaskSetupSec +
		readTime/float64(numMapTasks) +
		c.Scale(totalMapCPU+combineCPU)/float64(numMapTasks) +
		c.SortCPU(perTaskOutRecords) +
		c.SpillIOTime(perTaskOutBytes, cfg.SortBufferMB, cfg.IOSortFactor, cfg.CompressMapOutput) +
		c.WriteTime(c.Scale(mapWriteOnly)/float64(numMapTasks), cfg.CompressOutput)
	card.avgMapDur = mapDur
	// Aligned map tasks inherit the input partitioning's load skew: the
	// biggest partition becomes the straggler map task.
	mapSkew := 1.0
	if job.AlignMapToInput {
		for _, id := range inIDs {
			if s := ins[id].maxShare * float64(numMapTasks); s > mapSkew {
				mapSkew = s
			}
		}
	}
	card.maxMapDur = c.TaskSetupSec + (mapDur-c.TaskSetupSec)*mapSkew

	if hasReduce {
		card.avgRedDur, card.maxRedDur = e.reduceDurations(job, tags, tagOrder, numReduce, numMapTasks)
		wire := c.Scale(shuffledBytes)
		if cfg.CompressMapOutput {
			wire *= c.CompressRatio
		}
		card.shuffleWire = wire
	}

	// --- output dataset estimates ---
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		de := DatasetEstimate{Records: te.outRecords, Bytes: te.outBytes}
		if g.MapOnly() {
			de.Partitions = numMapTasks
			de.MaxPartShare = 1 / float64(maxInt(numMapTasks, 1))
			var inLayout wf.Layout
			for bi := range job.MapBranches {
				if job.MapBranches[bi].Tag == tag {
					in := ins[job.MapBranches[bi].Input]
					inLayout = in.layout
					if job.AlignMapToInput && in.maxShare > de.MaxPartShare {
						de.MaxPartShare = in.maxShare
					}
					break
				}
			}
			de.Layout = wf.DeriveMapOnlyOutputLayout(inLayout, *g, job.AlignMapToInput, cfg)
		} else {
			de.Partitions = te.numParts
			de.MaxPartShare = te.maxShare
			de.Layout = wf.DeriveGroupOutputLayout(*g, cfg)
		}
		card.outputs = append(card.outputs, cardOutput{id: g.Output, est: de})
	}
	return card, nil
}

// combinerReduction models combiner effectiveness at the configured task
// granularity. The combiner runs per (map task, reduce partition) bucket
// and can only merge duplicate keys landing in the same bucket, so its
// output is the expected number of distinct keys per bucket: with Dp keys
// per partition and nb records per bucket, Dp*(1-(1-1/Dp)^nb). Spreading
// the same data over more tasks leaves fewer duplicates per bucket, which
// is why a constant profiled ratio would mislead the search.
func combinerReduction(rp *wf.PipelineProfile, te *tagEst, numMapTasks int) float64 {
	pre := te.mapOutRecords
	if pre <= 0 {
		return 1
	}
	reduction := rp.CombineReduction
	if rp.GroupsPerMapRecord > 0 && te.numParts > 0 && numMapTasks > 0 {
		d := pre * rp.GroupsPerMapRecord // distinct groups overall
		buckets := float64(numMapTasks * te.numParts)
		dp := d / float64(te.numParts) // distinct keys per partition
		nb := pre / buckets            // records per bucket
		var outPerBucket float64
		if dp <= 1 {
			outPerBucket = dp
			if nb < dp {
				outPerBucket = nb
			}
		} else {
			outPerBucket = dp * (1 - math.Pow(1-1/dp, nb))
		}
		if est := outPerBucket * buckets; est < pre {
			reduction = est / pre
		} else {
			reduction = 1
		}
	}
	if reduction > 1 {
		reduction = 1
	}
	if reduction < 1e-4 {
		reduction = 1e-4
	}
	return reduction
}

// reduceDurations computes average and straggler (skew-adjusted) reduce
// task durations.
func (e *Estimator) reduceDurations(job *wf.Job, tags map[int]*tagEst, tagOrder []int, numReduce, numMapTasks int) (avg, max float64) {
	c := e.Cluster
	cfg := job.Config
	var avgContent, maxContent float64
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		if g.MapOnly() {
			continue
		}
		rp := job.Profile.ReduceProfile(tag)
		inBytesAvg := c.Scale(te.mapOutBytes) / float64(te.numParts)
		inRecsAvg := c.Scale(te.mapOutRecords) / float64(te.numParts)
		outBytesAvg := c.Scale(te.outBytes) / float64(te.numParts)
		scale := te.maxShare * float64(te.numParts) // >= 1
		for i, f := range []float64{1, scale} {
			inBytes := inBytesAvg * f
			inRecs := inRecsAvg * f
			outBytes := outBytesAvg * f
			wire := inBytes
			var decomp float64
			if cfg.CompressMapOutput {
				decomp = wire / mrsim.MB * c.CompressCPUSecPerMB
				wire *= c.CompressRatio
			}
			d := c.NetTime(wire) + decomp +
				c.MergeIOTime(inBytes, numMapTasks, cfg.IOSortFactor) +
				inRecs*rp.CPUPerRecord +
				c.WriteTime(outBytes, cfg.CompressOutput)
			if i == 0 {
				avgContent += d
			} else {
				maxContent += d
			}
		}
	}
	return c.TaskSetupSec + avgContent, c.TaskSetupSec + maxContent
}

// skewShare estimates the largest partition share for a tag from the
// profile's map-output key sample: the frequency of the hottest projected
// partition key. Counting per projected key (rather than per partition)
// keeps the estimate free of the sampling-collision noise that would
// otherwise fabricate stragglers at high reducer counts, while still
// catching both hot-key skew and coarse partition fields with few distinct
// values (the limited-parallelism degradation of Section 3.1).
func (e *Estimator) skewShare(job *wf.Job, tag int, te *tagEst) float64 {
	mp := job.Profile.MapSide[tag]
	uniform := 1.0 / float64(maxInt(te.numParts, 1))
	if mp == nil || len(mp.KeySample) == 0 || te.numParts <= 1 {
		return uniform
	}
	var share float64
	if te.group.Part.Type == keyval.RangePartition {
		// Split points are fixed, so counting sampled keys per partition
		// is an unbiased load estimate. Keys are content-based (sample
		// digest, not identity), so equal samples hit across plan clones.
		// Partition projects the key through the spec's key fields before
		// comparing to split points, so the fields are part of the identity.
		key := skewKey{
			ranged:   true,
			numParts: te.numParts,
			fields:   specFieldsHash(te.group.Part, len(mp.KeySample[0])),
			splits:   keyval.HashTuples(te.group.Part.SplitPoints),
			sample:   e.sampleHash(mp.KeySample),
		}
		if v, ok := e.skewCache[key]; ok {
			share = v
		} else {
			counts := make([]int, te.numParts)
			best := 0
			for _, k := range mp.KeySample {
				counts[te.group.Part.Partition(k, te.numParts)]++
			}
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			share = float64(best) / float64(len(mp.KeySample))
			e.skewCache[key] = share
		}
	} else {
		// Hash partitioning: count per projected key, not per partition —
		// partition-collision counting in a small sample would fabricate
		// stragglers at high reducer counts. Independent of the reducer
		// count, so cacheable across configuration search.
		key := skewKey{
			fields: specFieldsHash(te.group.Part, len(mp.KeySample[0])),
			sample: e.sampleHash(mp.KeySample),
		}
		if v, ok := e.skewCache[key]; ok {
			share = v
		} else {
			fields := te.group.Part.EffectiveKeyFields(len(mp.KeySample[0]))
			counts := make(map[uint64]int, len(mp.KeySample))
			best := 0
			for _, k := range mp.KeySample {
				h := keyval.Hash(k, fields)
				counts[h]++
				if counts[h] > best {
					best = counts[h]
				}
			}
			share = float64(best) / float64(len(mp.KeySample))
			e.skewCache[key] = share
		}
	}
	if share < uniform {
		share = uniform
	}
	return share
}

// specFieldsHash digests the partition spec's effective key fields for the
// skew cache without materializing the identity projection (nil KeyFields
// means "all key fields of the sample's width"): cache-hit lookups on the
// per-sample search path must not allocate.
func specFieldsHash(spec keyval.PartitionSpec, width int) uint64 {
	if spec.KeyFields != nil {
		return keyval.HashInts(spec.KeyFields)
	}
	// Distinct-by-construction marker for the identity projection of this
	// width (explicit [0..width) specs recompute into their own entry; the
	// computed share is identical either way).
	return uint64(width)<<1 | 1
}

// pruneKeepFraction estimates the fraction of a dataset the job must read
// after partition pruning: the share of range partitions whose bounds
// overlap every filter annotation over that input.
func (e *Estimator) pruneKeepFraction(job *wf.Job, dsID string, layout wf.Layout) float64 {
	if layout.PartType != keyval.RangePartition || len(layout.PartFields) == 0 || len(layout.SplitPoints) == 0 {
		return 1
	}
	field := layout.PartFields[0]
	var filters []keyval.Interval
	for i := range job.MapBranches {
		b := &job.MapBranches[i]
		if b.Input != dsID {
			continue
		}
		if b.Filter == nil || b.Filter.Field != field {
			return 1 // some branch reads everything
		}
		filters = append(filters, b.Filter.Interval)
	}
	if len(filters) == 0 {
		return 1
	}
	bounds := keyval.RangeBounds(layout.SplitPoints)
	kept := 0
	for _, pb := range bounds {
		needed := false
		for _, f := range filters {
			if pb.FieldRangeOverlaps(f) {
				needed = true
				break
			}
		}
		if needed {
			kept++
		}
	}
	return float64(kept) / float64(len(bounds))
}
