package whatif

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// The incremental estimator's contract is bitwise equivalence: for any plan,
// any declared changed-job set, and any sequence of configuration mutations
// to those jobs, Prepared.Estimate must return exactly the estimate the
// monolithic Estimator.Estimate returns — same Makespan bits, same per-job
// and per-dataset fields. These tests fuzz that contract across the eight
// paper workloads × randomized changed sets × randomized configuration
// points, mirroring how the optimizer's RRS objective drives it.

var (
	equivOnce sync.Once
	equivWls  map[string]*workloads.Workload
	equivErr  error
)

// equivWorkloads builds and profiles every paper workload once (profiling
// dominates runtime; every test in this file starts from the same plans).
func equivWorkloads(t *testing.T) map[string]*workloads.Workload {
	t.Helper()
	equivOnce.Do(func() {
		equivWls = make(map[string]*workloads.Workload)
		for _, abbr := range workloads.Abbrs() {
			wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: 0.1, Seed: 1})
			if err != nil {
				equivErr = err
				return
			}
			if err := profile.NewProfiler(wl.Cluster, 0.5, 18).Annotate(wl.Workflow, wl.DFS); err != nil {
				equivErr = err
				return
			}
			equivWls[abbr] = wl
		}
	})
	if equivErr != nil {
		t.Fatal(equivErr)
	}
	return equivWls
}

// randomizeConfig draws a configuration the way the optimizer's search
// space does (internal/optimizer.configSpace ranges).
func randomizeConfig(rng *rand.Rand, c *wf.Config) {
	c.NumReduceTasks = 1 + rng.Intn(300)
	c.SplitSizeMB = 8 + rng.Intn(505)
	c.SortBufferMB = 16 + rng.Intn(497)
	c.IOSortFactor = 5 + rng.Intn(96)
	c.UseCombiner = rng.Intn(2) == 1
	c.CompressMapOutput = rng.Intn(2) == 1
	c.CompressOutput = rng.Intn(2) == 1
}

// requireEqualEstimates asserts exact (bitwise, == on every float) equality.
func requireEqualEstimates(t *testing.T, want, got *Estimate, ctx string) {
	t.Helper()
	if want.Fallback != got.Fallback {
		t.Fatalf("%s: Fallback %v vs %v", ctx, want.Fallback, got.Fallback)
	}
	if want.Makespan != got.Makespan {
		t.Fatalf("%s: Makespan %.17g vs %.17g", ctx, want.Makespan, got.Makespan)
	}
	if len(want.Jobs) != len(got.Jobs) {
		t.Fatalf("%s: %d jobs vs %d", ctx, len(want.Jobs), len(got.Jobs))
	}
	for id, wj := range want.Jobs {
		gj := got.Jobs[id]
		if gj == nil {
			t.Fatalf("%s: job %s missing", ctx, id)
		}
		if *wj != *gj {
			t.Fatalf("%s: job %s diverged:\n  mono %+v\n  incr %+v", ctx, id, *wj, *gj)
		}
	}
	if len(want.Datasets) != len(got.Datasets) {
		t.Fatalf("%s: %d datasets vs %d", ctx, len(want.Datasets), len(got.Datasets))
	}
	for id, wd := range want.Datasets {
		gd := got.Datasets[id]
		if gd == nil {
			t.Fatalf("%s: dataset %s missing", ctx, id)
		}
		if !datasetEstimateEqual(*wd, *gd) {
			t.Fatalf("%s: dataset %s diverged:\n  mono %+v\n  incr %+v", ctx, id, *wd, *gd)
		}
	}
}

// TestPreparedMatchesMonolithic is the core equivalence fuzz: for every
// paper workload, random changed-job subsets × random configuration points,
// delta estimates must be bitwise-identical to full monolithic estimates
// computed by an independent estimator.
func TestPreparedMatchesMonolithic(t *testing.T) {
	wls := equivWorkloads(t)
	rng := rand.New(rand.NewSource(7))
	for _, abbr := range workloads.Abbrs() {
		wl := wls[abbr]
		t.Run(abbr, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				plan := wl.Workflow.Clone()
				var ids []string
				for _, j := range plan.Jobs {
					ids = append(ids, j.ID)
				}
				// Random non-empty changed subset.
				rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
				changed := ids[:1+rng.Intn(len(ids))]
				inc := New(wl.Cluster)
				mono := New(wl.Cluster)
				prep, err := inc.Prepare(plan, changed)
				if err != nil {
					t.Fatal(err)
				}
				for sample := 0; sample < 6; sample++ {
					for _, id := range changed {
						randomizeConfig(rng, &plan.Job(id).Config)
					}
					got, err := prep.Estimate()
					if err != nil {
						t.Fatal(err)
					}
					want, err := mono.Estimate(plan)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualEstimates(t, want, got,
						abbr+" full")
					// The truncated probe path: every job and dataset it
					// reports must carry exactly the full estimate's values.
					probe, err := prep.EstimateChanged()
					if err != nil {
						t.Fatal(err)
					}
					if probe.Fallback != want.Fallback {
						t.Fatal("probe fallback diverged")
					}
					for id, pj := range probe.Jobs {
						if *pj != *want.Jobs[id] {
							t.Fatalf("%s: probe job %s diverged:\n  mono %+v\n  probe %+v",
								abbr, id, *want.Jobs[id], *pj)
						}
					}
					for id, pd := range probe.Datasets {
						if !datasetEstimateEqual(*pd, *want.Datasets[id]) {
							t.Fatalf("%s: probe dataset %s diverged", abbr, id)
						}
					}
					for _, id := range changed {
						if probe.Jobs[id] == nil {
							t.Fatalf("%s: probe estimate missing changed job %s", abbr, id)
						}
					}
				}
			}
		})
	}
}

// TestPreparedNoChangedJobs: an empty changed set makes every estimate a
// pure replay of the prefix — still bitwise-identical to the monolithic
// answer.
func TestPreparedNoChangedJobs(t *testing.T) {
	wl := equivWorkloads(t)["IR"]
	plan := wl.Workflow.Clone()
	prep, err := New(wl.Cluster).Prepare(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(wl.Cluster).Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := prep.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		requireEqualEstimates(t, want, got, "no-changed")
	}
}

// TestPreparedFallback: plans without full profiles fall back to #jobs
// costing through the incremental path exactly as through the monolithic
// one.
func TestPreparedFallback(t *testing.T) {
	wl := equivWorkloads(t)["SN"]
	plan := wl.Workflow.Clone()
	plan.Jobs[0].Profile = nil
	est := New(wl.Cluster)
	prep, err := est.Prepare(plan, []string{plan.Jobs[0].ID})
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(wl.Cluster).Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Fallback {
		t.Fatal("fixture should fall back")
	}
	got, err := prep.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualEstimates(t, want, got, "fallback")
	probe, err := prep.EstimateChanged()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualEstimates(t, want, probe, "fallback probe")
}

// TestPreparedCountsFlowCards: delta estimates must register as requests
// (not full computations) and reuse must show up as fewer flow cards than
// jobs × estimates.
func TestPreparedCountsFlowCards(t *testing.T) {
	wl := equivWorkloads(t)["BR"]
	plan := wl.Workflow.Clone()
	est := New(wl.Cluster)
	changed := []string{plan.Jobs[len(plan.Jobs)-1].ID}
	prep, err := est.Prepare(plan, changed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const samples = 20
	for i := 0; i < samples; i++ {
		randomizeConfig(rng, &plan.Job(changed[0]).Config)
		if _, err := prep.Estimate(); err != nil {
			t.Fatal(err)
		}
	}
	c := est.Counts()
	if c.Computed != 0 {
		t.Errorf("delta estimates counted as full computations: %d", c.Computed)
	}
	if c.Requests != samples {
		t.Errorf("requests = %d, want %d", c.Requests, samples)
	}
	full := uint64(samples * len(plan.Jobs))
	if c.FlowCards >= full {
		t.Errorf("flow cards %d not below monolithic bound %d", c.FlowCards, full)
	}
	if c.FlowCards == 0 {
		t.Error("flow cards never counted")
	}
}
