package whatif

import (
	"context"
	"math"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

func robustModel(seed int64) *mrsim.FaultModel { return mrsim.StandardFaultProfile(seed) }

func TestRobustnessBasicShape(t *testing.T) {
	w, _, cl := buildAnnotated(t, 500)
	rob, err := New(cl).Robustness(context.Background(), w, RobustnessOptions{Model: robustModel(1), Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rob == nil {
		t.Fatal("annotated workflow reported as fallback")
	}
	if rob.Samples != 64 || len(rob.Makespans) != 64 {
		t.Fatalf("samples = %d / %d makespans, want 64", rob.Samples, len(rob.Makespans))
	}
	if !(rob.Min <= rob.P50 && rob.P50 <= rob.P95 && rob.P95 <= rob.P99 && rob.P99 <= rob.Max) {
		t.Errorf("percentiles not ordered: min=%g p50=%g p95=%g p99=%g max=%g",
			rob.Min, rob.P50, rob.P95, rob.P99, rob.Max)
	}
	if rob.Min <= 0 || math.IsInf(rob.Max, 0) || math.IsNaN(rob.Mean) {
		t.Errorf("degenerate distribution: min=%g max=%g mean=%g", rob.Min, rob.Max, rob.Mean)
	}
	if rob.Min == rob.Max {
		t.Error("perturbing model produced no spread at all across 64 samples")
	}
	// The nominal estimate is fault-free; a profile with slow nodes and
	// stragglers should not make the plan faster on average.
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if rob.Mean < est.Makespan*0.5 {
		t.Errorf("perturbed mean %g implausibly beats nominal %g", rob.Mean, est.Makespan)
	}
}

// TestRobustnessDeterministicAcrossEstimators: the report is a pure
// function of (workflow, cluster, model, samples) — fresh estimators and
// concurrent evaluation (one estimator per goroutine, as the optimizer's
// parallel search holds them) must agree sample for sample. CI runs this
// under -race.
func TestRobustnessDeterministicAcrossEstimators(t *testing.T) {
	w, _, cl := buildAnnotated(t, 500)
	opt := RobustnessOptions{Model: robustModel(7), Samples: 32}
	want, err := New(cl).Robustness(context.Background(), w, opt)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([]*Robustness, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = New(cl).Robustness(context.Background(), w, opt)
		}()
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for s, m := range got[i].Makespans {
			if math.Float64bits(m) != math.Float64bits(want.Makespans[s]) {
				t.Fatalf("worker %d sample %d: %.17g vs %.17g", i, s, m, want.Makespans[s])
			}
		}
	}
}

// TestRobustnessSeedSensitivity: different base seeds must explore
// different perturbations (else the Monte-Carlo loop is replaying one
// sample), while the same seed reproduces exactly.
func TestRobustnessSeedSensitivity(t *testing.T) {
	w, _, cl := buildAnnotated(t, 500)
	e := New(cl)
	a, err := e.Robustness(context.Background(), w, RobustnessOptions{Model: robustModel(1), Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Robustness(context.Background(), w, RobustnessOptions{Model: robustModel(2), Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Makespans {
		if a.Makespans[i] != b.Makespans[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical sample sets")
	}
	c, err := e.Robustness(context.Background(), w, RobustnessOptions{Model: robustModel(1), Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Makespans {
		if math.Float64bits(a.Makespans[i]) != math.Float64bits(c.Makespans[i]) {
			t.Fatalf("sample %d not reproducible for the same seed", i)
		}
	}
}

// TestRobustnessFallbackAndErrors: unannotated workflows are not scorable
// (nil report, nil error); a missing or invalid model is an error.
func TestRobustnessFallbackAndErrors(t *testing.T) {
	w := &wf.Workflow{Name: "bare", Jobs: []*wf.Job{sumJob("J1", "in", "out")},
		Datasets: []*wf.Dataset{{ID: "in", Base: true, KeyFields: []string{"k"}}, {ID: "out"}}}
	cl := testCluster()
	rob, err := New(cl).Robustness(context.Background(), w, RobustnessOptions{Model: robustModel(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rob != nil {
		t.Error("fallback workflow produced a robustness report")
	}
	if _, err := New(cl).Robustness(context.Background(), w, RobustnessOptions{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(cl).Robustness(context.Background(), w,
		RobustnessOptions{Model: &mrsim.FaultModel{TaskFailureProb: 2}}); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestRobustnessReplaySpreadsSkew pins the straggler-aware replay on a
// known-skewed key sample: one hot key drives MaxReduceTaskSec far above
// the average, and the replay must schedule that straggler from wave one —
// so under a straggler-free, failure-free model on uniform hardware, every
// sample's makespan equals the fault-free spread schedule, straggler
// included, not the old uniform-then-append model.
func TestRobustnessReplaySpreadsSkew(t *testing.T) {
	// Same construction as TestSkewEstimatedFromKeySample: 90% of records
	// share one key.
	pairs := make([]keyval.Pair, 20000)
	for i := range pairs {
		k := int64(1)
		if i%10 == 0 {
			k = int64(i)
		}
		pairs[i] = keyval.Pair{Key: keyval.T(k), Value: keyval.T(int64(1))}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("in", pairs, mrsim.IngestSpec{NumPartitions: 4, KeyFields: []string{"k"},
		Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}}}); err != nil {
		t.Fatal(err)
	}
	j := sumJob("J1", "in", "out")
	j.Config.NumReduceTasks = 10
	w := &wf.Workflow{Name: "skew", Jobs: []*wf.Job{j}, Datasets: []*wf.Dataset{
		{ID: "in", Base: true, KeyFields: []string{"k"}}, {ID: "out"}}}
	cl := testCluster()
	if err := profile.NewProfiler(cl, 1.0, 5).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	est, err := New(cl).Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	je := est.Jobs["J1"]
	if je.MaxReduceTaskSec < je.AvgReduceTaskSec*2 {
		t.Fatalf("sample not skewed enough: max %g avg %g", je.MaxReduceTaskSec, je.AvgReduceTaskSec)
	}
	// A quiet-but-attached model isolates the replay's wave packing.
	quiet := &mrsim.FaultModel{Seed: 3, NodeClasses: []mrsim.NodeClass{{Name: "n", Nodes: cl.Nodes, Speed: 1}}}
	rob, err := New(cl).Robustness(context.Background(), w, RobustnessOptions{Model: quiet, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rob == nil {
		t.Fatal("unexpected fallback")
	}
	for i, m := range rob.Makespans {
		if m != rob.Makespans[0] {
			t.Fatalf("quiet model varied across samples: %g vs %g", m, rob.Makespans[0])
		}
		// The replayed makespan must at least cover the straggler reduce
		// task launched at the start of the reduce phase — the bound the
		// old uniform-then-append model undercut when waves were full.
		if i == 0 && m < je.MaxReduceTaskSec {
			t.Fatalf("replay makespan %g shorter than the straggler task itself (%g)", m, je.MaxReduceTaskSec)
		}
	}
}
