package whatif_test

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// ExampleEstimator_Prepare shows the incremental estimation workflow the
// optimizer's configuration search uses: Prepare once for the set of jobs a
// search may reconfigure, then mutate those jobs' configurations in place
// and re-estimate cheaply. Estimates are bit-identical to the monolithic
// path; only the amount of per-job flow work differs (the Counts deltas).
func ExampleEstimator_Prepare() {
	// A profiled two-job aggregation chain over synthetic data.
	pairs := make([]keyval.Pair, 5000)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(i % 400)), Value: keyval.T(int64(1))}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("in", pairs, mrsim.IngestSpec{
		NumPartitions: 8,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	}); err != nil {
		panic(err)
	}
	sum := func(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
		var s int64
		for _, v := range values {
			s += v[0].(int64)
		}
		emit(key, keyval.T(s))
	}
	job := func(id, in, out string) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{Tag: 0, Input: in,
				Stages: []wf.Stage{wf.MapStage("M_"+id, func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)}}},
			ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: out,
				Stages: []wf.Stage{wf.ReduceStage("R_"+id, sum, nil, 1e-6)}}},
		}
	}
	w := &wf.Workflow{
		Name: "chain",
		Jobs: []*wf.Job{job("J1", "in", "mid"), job("J2", "mid", "out")},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}},
			{ID: "mid"}, {ID: "out"},
		},
	}
	cluster := mrsim.DefaultCluster()
	if err := profile.NewProfiler(cluster, 1.0, 3).Annotate(w, dfs); err != nil {
		panic(err)
	}

	// Prepare for probes that reconfigure only J2: J1 is the prefix, paid
	// once. Each probe then recomputes flow for J2 alone.
	est := whatif.New(cluster)
	prep, err := est.Prepare(w, []string{"J2"})
	if err != nil {
		panic(err)
	}
	mono := whatif.New(cluster)
	identical := true
	for _, reducers := range []int{2, 8, 32} {
		w.Job("J2").Config.NumReduceTasks = reducers
		delta, err := prep.Estimate()
		if err != nil {
			panic(err)
		}
		full, err := mono.Estimate(w)
		if err != nil {
			panic(err)
		}
		identical = identical && delta.Makespan == full.Makespan
	}
	ic, mc := est.Counts(), mono.Counts()
	fmt.Printf("bit-identical makespans: %v\n", identical)
	fmt.Printf("incremental: %d requests, %d full computations, %d flow cards\n",
		ic.Requests, ic.Computed, ic.FlowCards)
	fmt.Printf("monolithic:  %d requests, %d full computations, %d flow cards\n",
		mc.Requests, mc.Computed, mc.FlowCards)
	// Output:
	// bit-identical makespans: true
	// incremental: 3 requests, 0 full computations, 4 flow cards
	// monolithic:  3 requests, 3 full computations, 6 flow cards
}
