// Package whatif is the cost estimator standing in for Starfish's What-if
// Engine (Section 5). Given (1) dataflow and cost statistics from profile
// annotations, (2) a configuration per job, (3) size and layout information
// for the input datasets, and (4) the cluster setup, it predicts per-job
// and whole-workflow running times using the same cost formulas the mrsim
// executor charges, applied to estimated aggregates instead of observed
// per-task data.
//
// When profile or dataset annotations are missing, estimation falls back to
// the simpler #jobs cost model, as the paper prescribes for the information
// spectrum.
package whatif

import (
	"fmt"
	"math"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// DatasetEstimate is the estimator's belief about one dataset.
type DatasetEstimate struct {
	Records    float64
	Bytes      float64
	Partitions int
	Layout     wf.Layout
	// MaxPartShare is the estimated fraction of the dataset held by its
	// most loaded partition (>= 1/Partitions) — aligned consumers inherit
	// this as map-task skew.
	MaxPartShare float64
}

// JobEstimate is the predicted execution of one job.
type JobEstimate struct {
	MapTasks, ReduceTasks int
	// AvgMapTaskSec / AvgReduceTaskSec are mean task durations;
	// MaxReduceTaskSec includes the skew estimate from key samples.
	AvgMapTaskSec, AvgReduceTaskSec, MaxReduceTaskSec float64
	// Start/End are predicted simulated times within the workflow.
	Start, End float64
	// ShuffleBytesVirtual is the predicted on-wire shuffle volume.
	ShuffleBytesVirtual float64
}

// Span returns the predicted job span.
func (j *JobEstimate) Span() float64 { return j.End - j.Start }

// Estimate is the What-if engine's answer for a workflow.
type Estimate struct {
	// Makespan is the predicted completion time. Under Fallback it is the
	// job count (a coarse, unit-free cost).
	Makespan float64
	// Fallback marks that annotations were insufficient for cost-based
	// estimation and the #jobs model was used.
	Fallback bool
	Jobs     map[string]*JobEstimate
	Datasets map[string]*DatasetEstimate
}

// Estimator predicts workflow cost on a given cluster. It memoizes skew
// computations across calls (configuration search evaluates thousands of
// plans whose key samples are identical).
type Estimator struct {
	Cluster   *mrsim.Cluster
	skewCache map[string]float64
	// sampleHashes memoizes key-sample content digests by the address of
	// the sample's first tuple. The pointer map key pins the backing array,
	// so an address uniquely identifies one sample for the estimator's
	// lifetime. (A formatted "%p" inside a string key — the previous
	// scheme — pins nothing: a freed sample's address could be reused by a
	// different sample, resurrecting stale skew entries nondeterministically
	// with GC timing.)
	sampleHashes map[*keyval.Tuple]uint64
	calls        uint64
}

// New builds an estimator.
func New(c *mrsim.Cluster) *Estimator {
	return &Estimator{
		Cluster:      c,
		skewCache:    make(map[string]float64),
		sampleHashes: make(map[*keyval.Tuple]uint64),
	}
}

// sampleHash digests a key sample's contents, memoized by (pinned) address.
func (e *Estimator) sampleHash(sample []keyval.Tuple) uint64 {
	p := &sample[0]
	if h, ok := e.sampleHashes[p]; ok {
		return h
	}
	var h uint64 = 1469598103934665603
	for _, k := range sample {
		h ^= keyval.Hash(k, nil)
		h *= 1099511628211
	}
	e.sampleHashes[p] = h
	return h
}

// Counts reports what-if activity: both values are the number of full
// estimations this estimator has run (requests equal computations when no
// cache fronts the estimator; package estcache's wrapper reports them
// separately).
func (e *Estimator) Counts() (requests, computed uint64) {
	return e.calls, e.calls
}

// Estimate predicts the execution of w. Base datasets must carry size
// annotations and every job a profile annotation; otherwise the fallback
// #jobs model is returned (never an error, mirroring Stubby's tolerance of
// missing information).
func (e *Estimator) Estimate(w *wf.Workflow) (*Estimate, error) {
	e.calls++
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	if !profile.HasFullProfiles(w) || !hasBaseSizes(w) {
		return &Estimate{Makespan: float64(len(w.Jobs)), Fallback: true,
			Jobs: map[string]*JobEstimate{}, Datasets: map[string]*DatasetEstimate{}}, nil
	}
	est := &Estimate{
		Jobs:     make(map[string]*JobEstimate, len(w.Jobs)),
		Datasets: make(map[string]*DatasetEstimate, len(w.Datasets)),
	}
	for _, d := range w.Datasets {
		if d.Base {
			parts := maxInt(d.EstPartitions, 1)
			est.Datasets[d.ID] = &DatasetEstimate{
				Records:      d.EstRecords,
				Bytes:        d.EstBytes,
				Partitions:   parts,
				Layout:       d.Layout.Clone(),
				MaxPartShare: 1 / float64(parts),
			}
		}
	}
	mapPool := mrsim.NewSlotPool(e.Cluster.TotalMapSlots())
	redPool := mrsim.NewSlotPool(e.Cluster.TotalReduceSlots())
	ready := make(map[string]float64)
	for _, job := range order {
		jobReady := 0.0
		for _, in := range job.Inputs() {
			if t := ready[in]; t > jobReady {
				jobReady = t
			}
		}
		je, err := e.estimateJob(w, job, jobReady, mapPool, redPool, est)
		if err != nil {
			return nil, fmt.Errorf("whatif: job %s: %w", job.ID, err)
		}
		est.Jobs[job.ID] = je
		for _, out := range job.Outputs() {
			ready[out] = je.End
		}
		if je.End > est.Makespan {
			est.Makespan = je.End
		}
	}
	return est, nil
}

// tagEst carries per-tag flow predictions while estimating one job.
type tagEst struct {
	group         *wf.ReduceGroup
	numParts      int
	mapOutRecords float64
	mapOutBytes   float64
	outRecords    float64 // final pipeline output
	outBytes      float64
	maxShare      float64 // largest reduce-partition share (skew)
}

func (e *Estimator) estimateJob(w *wf.Workflow, job *wf.Job, jobReady float64,
	mapPool, redPool *mrsim.SlotPool, est *Estimate) (*JobEstimate, error) {

	c := e.Cluster
	cfg := job.Config
	je := &JobEstimate{Start: jobReady}

	// --- input volumes, with pruning-fraction estimation ---
	type inEst struct {
		records, bytes float64
		compressed     bool
		parts          int
		layout         wf.Layout
		maxShare       float64
	}
	ins := make(map[string]*inEst)
	for _, in := range job.Inputs() {
		de, ok := est.Datasets[in]
		if !ok {
			return nil, fmt.Errorf("no estimate for input %q", in)
		}
		frac := 1.0
		if !job.AlignMapToInput {
			frac = e.pruneKeepFraction(job, in, de.Layout)
		}
		parts := maxInt(de.Partitions, 1)
		if frac < 1 {
			parts = maxInt(1, int(frac*float64(parts)+0.5))
		}
		share := de.MaxPartShare
		if share <= 0 {
			share = 1 / float64(parts)
		}
		ins[in] = &inEst{
			records:    de.Records * frac,
			bytes:      de.Bytes * frac,
			compressed: de.Layout.Compressed,
			parts:      parts,
			layout:     de.Layout,
			maxShare:   share,
		}
	}

	// --- map-side flow per tag ---
	tags := make(map[int]*tagEst)
	var tagOrder []int
	for i := range job.ReduceGroups {
		g := &job.ReduceGroups[i]
		tags[g.Tag] = &tagEst{group: g, maxShare: 1}
		tagOrder = append(tagOrder, g.Tag)
	}
	sort.Ints(tagOrder)

	var totalMapCPU float64 // real seconds basis, scaled later
	for bi := range job.MapBranches {
		b := &job.MapBranches[bi]
		mp := job.Profile.MapProfile(*b)
		if mp == nil {
			return nil, fmt.Errorf("missing map profile for tag %d input %s", b.Tag, b.Input)
		}
		in := ins[b.Input]
		te := tags[b.Tag]
		outRecs := in.records * mp.Selectivity
		te.mapOutRecords += outRecs
		te.mapOutBytes += outRecs * mp.OutBytesPerRecord
		totalMapCPU += in.records * mp.CPUPerRecord
	}

	// --- task counts ---
	numMapTasks := 0
	if job.AlignMapToInput {
		for _, in := range job.Inputs() {
			if p := ins[in].parts; p > numMapTasks {
				numMapTasks = p
			}
		}
	} else {
		// Splits never cross partition boundaries (matching the executor):
		// each partition chunks independently into ceil(partBytes/split).
		for _, in := range ins {
			perPart := c.Scale(in.bytes) / float64(in.parts)
			numMapTasks += in.parts * int(ceilDiv(perPart, float64(cfg.SplitSizeMB)*mrsim.MB))
		}
	}
	if numMapTasks < 1 {
		numMapTasks = 1
	}
	je.MapTasks = numMapTasks

	numReduce := 0
	hasReduce := false
	for _, tag := range tagOrder {
		te := tags[tag]
		if te.group.MapOnly() {
			continue
		}
		hasReduce = true
		n := te.group.Part.NumPartitions(cfg.NumReduceTasks)
		te.numParts = n
		if n > numReduce {
			numReduce = n
		}
	}
	if hasReduce {
		for _, te := range tags {
			if !te.group.MapOnly() && te.group.Part.Type == keyval.HashPartition {
				te.numParts = numReduce
			}
		}
	}
	je.ReduceTasks = 0
	if hasReduce {
		je.ReduceTasks = numReduce
	}

	// --- combiner, skew, reduce flow ---
	var mapWriteOnly float64 // map-only output bytes written by map tasks
	var combineCPU float64
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		if g.MapOnly() {
			te.outRecords = te.mapOutRecords
			te.outBytes = te.mapOutBytes
			if g.RunsMapSide && len(g.Stages) > 0 {
				// Intra-packed pipeline: the grouped stages run map-side.
				rp := job.Profile.ReduceProfile(tag)
				if rp == nil {
					return nil, fmt.Errorf("missing map-side group profile for tag %d", tag)
				}
				totalMapCPU += te.mapOutRecords * rp.CPUPerRecord
				te.outRecords = te.mapOutRecords * rp.Selectivity
				te.outBytes = te.outRecords * rp.OutBytesPerRecord
			}
			mapWriteOnly += te.outBytes
			continue
		}
		rp := job.Profile.ReduceProfile(tag)
		if rp == nil {
			return nil, fmt.Errorf("missing reduce profile for tag %d", tag)
		}
		if cfg.UseCombiner && g.Combiner != nil && rp.CombineReduction > 0 && rp.CombineReduction < 1 {
			combineCPU += te.mapOutRecords * g.Combiner.CPUPerRecord
			te.mapOutBytes *= combinerReduction(rp, te, numMapTasks)
			te.mapOutRecords *= combinerReduction(rp, te, numMapTasks)
		}
		te.maxShare = e.skewShare(job, tag, te)
		te.outRecords = te.mapOutRecords * rp.Selectivity
		te.outBytes = te.outRecords * rp.OutBytesPerRecord
	}

	// --- map task duration ---
	var readTime float64
	for _, in := range ins {
		readTime += c.ReadTime(c.Scale(in.bytes), in.compressed)
	}
	var shuffledBytes, shuffledRecords float64
	for _, tag := range tagOrder {
		te := tags[tag]
		if !te.group.MapOnly() {
			shuffledBytes += te.mapOutBytes
			shuffledRecords += te.mapOutRecords
		}
	}
	perTaskOutBytes := c.Scale(shuffledBytes) / float64(numMapTasks)
	perTaskOutRecords := c.Scale(shuffledRecords) / float64(numMapTasks)
	mapDur := c.TaskSetupSec +
		readTime/float64(numMapTasks) +
		c.Scale(totalMapCPU+combineCPU)/float64(numMapTasks) +
		c.SortCPU(perTaskOutRecords) +
		c.SpillIOTime(perTaskOutBytes, cfg.SortBufferMB, cfg.IOSortFactor, cfg.CompressMapOutput) +
		c.WriteTime(c.Scale(mapWriteOnly)/float64(numMapTasks), cfg.CompressOutput)
	je.AvgMapTaskSec = mapDur
	// Aligned map tasks inherit the input partitioning's load skew: the
	// biggest partition becomes the straggler map task.
	mapSkew := 1.0
	if job.AlignMapToInput {
		for _, in := range ins {
			if s := in.maxShare * float64(numMapTasks); s > mapSkew {
				mapSkew = s
			}
		}
	}
	mapsDone := mapPool.ScheduleUniform(jobReady, mapDur, numMapTasks-1)
	maxMapDur := c.TaskSetupSec + (mapDur-c.TaskSetupSec)*mapSkew
	if _, e := mapPool.Schedule(jobReady, maxMapDur); e > mapsDone {
		mapsDone = e
	}

	end := mapsDone
	if hasReduce {
		avgDur, maxDur := e.reduceDurations(job, tags, tagOrder, numReduce, numMapTasks)
		je.AvgReduceTaskSec = avgDur
		je.MaxReduceTaskSec = maxDur
		wire := c.Scale(shuffledBytes)
		if cfg.CompressMapOutput {
			wire *= c.CompressRatio
		}
		je.ShuffleBytesVirtual = wire
		end = redPool.ScheduleUniform(mapsDone, avgDur, numReduce-1)
		if _, tend := redPool.Schedule(mapsDone, maxDur); tend > end {
			end = tend
		}
	}
	je.End = end

	// --- output dataset estimates ---
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		de := &DatasetEstimate{Records: te.outRecords, Bytes: te.outBytes}
		if g.MapOnly() {
			de.Partitions = numMapTasks
			de.MaxPartShare = 1 / float64(maxInt(numMapTasks, 1))
			var inLayout wf.Layout
			for bi := range job.MapBranches {
				if job.MapBranches[bi].Tag == tag {
					in := ins[job.MapBranches[bi].Input]
					inLayout = in.layout
					if job.AlignMapToInput && in.maxShare > de.MaxPartShare {
						de.MaxPartShare = in.maxShare
					}
					break
				}
			}
			de.Layout = wf.DeriveMapOnlyOutputLayout(inLayout, *g, job.AlignMapToInput, cfg)
		} else {
			de.Partitions = te.numParts
			de.MaxPartShare = te.maxShare
			de.Layout = wf.DeriveGroupOutputLayout(*g, cfg)
		}
		est.Datasets[g.Output] = de
	}
	return je, nil
}

// combinerReduction models combiner effectiveness at the configured task
// granularity. The combiner runs per (map task, reduce partition) bucket
// and can only merge duplicate keys landing in the same bucket, so its
// output is the expected number of distinct keys per bucket: with Dp keys
// per partition and nb records per bucket, Dp*(1-(1-1/Dp)^nb). Spreading
// the same data over more tasks leaves fewer duplicates per bucket, which
// is why a constant profiled ratio would mislead the search.
func combinerReduction(rp *wf.PipelineProfile, te *tagEst, numMapTasks int) float64 {
	pre := te.mapOutRecords
	if pre <= 0 {
		return 1
	}
	reduction := rp.CombineReduction
	if rp.GroupsPerMapRecord > 0 && te.numParts > 0 && numMapTasks > 0 {
		d := pre * rp.GroupsPerMapRecord // distinct groups overall
		buckets := float64(numMapTasks * te.numParts)
		dp := d / float64(te.numParts) // distinct keys per partition
		nb := pre / buckets            // records per bucket
		var outPerBucket float64
		if dp <= 1 {
			outPerBucket = dp
			if nb < dp {
				outPerBucket = nb
			}
		} else {
			outPerBucket = dp * (1 - math.Pow(1-1/dp, nb))
		}
		if est := outPerBucket * buckets; est < pre {
			reduction = est / pre
		} else {
			reduction = 1
		}
	}
	if reduction > 1 {
		reduction = 1
	}
	if reduction < 1e-4 {
		reduction = 1e-4
	}
	return reduction
}

// reduceDurations computes average and straggler (skew-adjusted) reduce
// task durations.
func (e *Estimator) reduceDurations(job *wf.Job, tags map[int]*tagEst, tagOrder []int, numReduce, numMapTasks int) (avg, max float64) {
	c := e.Cluster
	cfg := job.Config
	var avgContent, maxContent float64
	for _, tag := range tagOrder {
		te := tags[tag]
		g := te.group
		if g.MapOnly() {
			continue
		}
		rp := job.Profile.ReduceProfile(tag)
		inBytesAvg := c.Scale(te.mapOutBytes) / float64(te.numParts)
		inRecsAvg := c.Scale(te.mapOutRecords) / float64(te.numParts)
		outBytesAvg := c.Scale(te.outBytes) / float64(te.numParts)
		scale := te.maxShare * float64(te.numParts) // >= 1
		for i, f := range []float64{1, scale} {
			inBytes := inBytesAvg * f
			inRecs := inRecsAvg * f
			outBytes := outBytesAvg * f
			wire := inBytes
			var decomp float64
			if cfg.CompressMapOutput {
				decomp = wire / mrsim.MB * c.CompressCPUSecPerMB
				wire *= c.CompressRatio
			}
			d := c.NetTime(wire) + decomp +
				c.MergeIOTime(inBytes, numMapTasks, cfg.IOSortFactor) +
				inRecs*rp.CPUPerRecord +
				c.WriteTime(outBytes, cfg.CompressOutput)
			if i == 0 {
				avgContent += d
			} else {
				maxContent += d
			}
		}
	}
	return c.TaskSetupSec + avgContent, c.TaskSetupSec + maxContent
}

// skewShare estimates the largest partition share for a tag from the
// profile's map-output key sample: the frequency of the hottest projected
// partition key. Counting per projected key (rather than per partition)
// keeps the estimate free of the sampling-collision noise that would
// otherwise fabricate stragglers at high reducer counts, while still
// catching both hot-key skew and coarse partition fields with few distinct
// values (the limited-parallelism degradation of Section 3.1).
func (e *Estimator) skewShare(job *wf.Job, tag int, te *tagEst) float64 {
	mp := job.Profile.MapSide[tag]
	uniform := 1.0 / float64(maxInt(te.numParts, 1))
	if mp == nil || len(mp.KeySample) == 0 || te.numParts <= 1 {
		return uniform
	}
	var share float64
	if te.group.Part.Type == keyval.RangePartition {
		// Split points are fixed, so counting sampled keys per partition
		// is an unbiased load estimate. Keys are content-based (sample
		// digest, not identity), so equal samples hit across plan clones.
		// Partition projects the key through the spec's key fields before
		// comparing to split points, so the fields are part of the identity.
		fields := te.group.Part.EffectiveKeyFields(len(mp.KeySample[0]))
		key := fmt.Sprintf("r|%d|%v|%x|%x", te.numParts, fields,
			splitPointsHash(te.group.Part.SplitPoints), e.sampleHash(mp.KeySample))
		if v, ok := e.skewCache[key]; ok {
			share = v
		} else {
			counts := make([]int, te.numParts)
			best := 0
			for _, k := range mp.KeySample {
				counts[te.group.Part.Partition(k, te.numParts)]++
			}
			for _, n := range counts {
				if n > best {
					best = n
				}
			}
			share = float64(best) / float64(len(mp.KeySample))
			e.skewCache[key] = share
		}
	} else {
		// Hash partitioning: count per projected key, not per partition —
		// partition-collision counting in a small sample would fabricate
		// stragglers at high reducer counts. Independent of the reducer
		// count, so cacheable across configuration search.
		fields := te.group.Part.EffectiveKeyFields(len(mp.KeySample[0]))
		key := fmt.Sprintf("h|%v|%x", fields, e.sampleHash(mp.KeySample))
		if v, ok := e.skewCache[key]; ok {
			share = v
		} else {
			counts := make(map[uint64]int, len(mp.KeySample))
			best := 0
			for _, k := range mp.KeySample {
				h := keyval.Hash(k, fields)
				counts[h]++
				if counts[h] > best {
					best = counts[h]
				}
			}
			share = float64(best) / float64(len(mp.KeySample))
			e.skewCache[key] = share
		}
	}
	if share < uniform {
		share = uniform
	}
	return share
}

// splitPointsHash fingerprints range boundaries for the skew cache.
func splitPointsHash(points []keyval.Tuple) uint64 {
	var h uint64 = 1469598103934665603
	for _, p := range points {
		h ^= keyval.Hash(p, nil)
		h *= 1099511628211
	}
	return h
}

// pruneKeepFraction estimates the fraction of a dataset the job must read
// after partition pruning: the share of range partitions whose bounds
// overlap every filter annotation over that input.
func (e *Estimator) pruneKeepFraction(job *wf.Job, dsID string, layout wf.Layout) float64 {
	if layout.PartType != keyval.RangePartition || len(layout.PartFields) == 0 || len(layout.SplitPoints) == 0 {
		return 1
	}
	field := layout.PartFields[0]
	var filters []keyval.Interval
	for i := range job.MapBranches {
		b := &job.MapBranches[i]
		if b.Input != dsID {
			continue
		}
		if b.Filter == nil || b.Filter.Field != field {
			return 1 // some branch reads everything
		}
		filters = append(filters, b.Filter.Interval)
	}
	if len(filters) == 0 {
		return 1
	}
	bounds := keyval.RangeBounds(layout.SplitPoints)
	kept := 0
	for _, pb := range bounds {
		needed := false
		for _, f := range filters {
			if pb.FieldRangeOverlaps(f) {
				needed = true
				break
			}
		}
		if needed {
			kept++
		}
	}
	return float64(kept) / float64(len(bounds))
}

func hasBaseSizes(w *wf.Workflow) bool {
	for _, d := range w.Datasets {
		if d.Base && (d.EstRecords <= 0 || d.EstBytes <= 0) {
			return false
		}
	}
	return true
}

func ceilDiv(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	n := a / b
	if n != float64(int64(n)) {
		return float64(int64(n)) + 1
	}
	if n < 1 {
		return 1
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
