// Package whatif is the cost estimator standing in for Starfish's What-if
// Engine (Section 5). Given (1) dataflow and cost statistics from profile
// annotations, (2) a configuration per job, (3) size and layout information
// for the input datasets, and (4) the cluster setup, it predicts per-job
// and whole-workflow running times using the same cost formulas the mrsim
// executor charges, applied to estimated aggregates instead of observed
// per-task data.
//
// When profile or dataset annotations are missing, estimation falls back to
// the simpler #jobs cost model, as the paper prescribes for the information
// spectrum.
//
// # Architecture
//
// Estimation is split into two layers. The flow layer (flow.go) is the pure
// per-job computation — input pruning, tag flow, the combiner model, skew,
// task counts, average and straggler task durations, and output dataset
// estimates — producing an immutable per-job duration card. The scheduling
// layer (schedule.go) replays cards against the workflow's shared map and
// reduce slot pools, which is cheap arithmetic. Estimate composes the two;
// Prepare (prepared.go) exploits the split to answer configuration-search
// probes incrementally, recomputing flow only for jobs a probe actually
// affects while replaying scheduling from a slot-pool snapshot.
package whatif

import (
	"context"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
)

// DatasetEstimate is the estimator's belief about one dataset.
type DatasetEstimate struct {
	Records    float64
	Bytes      float64
	Partitions int
	Layout     wf.Layout
	// MaxPartShare is the estimated fraction of the dataset held by its
	// most loaded partition (>= 1/Partitions) — aligned consumers inherit
	// this as map-task skew.
	MaxPartShare float64
}

// JobEstimate is the predicted execution of one job.
type JobEstimate struct {
	MapTasks, ReduceTasks int
	// AvgMapTaskSec / AvgReduceTaskSec are mean task durations;
	// MaxReduceTaskSec includes the skew estimate from key samples.
	AvgMapTaskSec, AvgReduceTaskSec, MaxReduceTaskSec float64
	// Start/End are predicted simulated times within the workflow.
	Start, End float64
	// ShuffleBytesVirtual is the predicted on-wire shuffle volume.
	ShuffleBytesVirtual float64
}

// Span returns the predicted job span.
func (j *JobEstimate) Span() float64 { return j.End - j.Start }

// Estimate is the What-if engine's answer for a workflow.
type Estimate struct {
	// Makespan is the predicted completion time. Under Fallback it is the
	// job count (a coarse, unit-free cost).
	Makespan float64
	// Fallback marks that annotations were insufficient for cost-based
	// estimation and the #jobs model was used.
	Fallback bool
	Jobs     map[string]*JobEstimate
	Datasets map[string]*DatasetEstimate
}

// Counts reports what-if activity through an estimator (or a stack of
// estimators — package estcache's wrapper fills the same struct).
type Counts struct {
	// Requests is every estimate request issued: full workflow estimates
	// plus incremental (Prepared) delta estimates.
	Requests uint64
	// Computed is how many requests ran the full monolithic estimator.
	// Delta estimates and cache hits are excluded — their cost shows up in
	// FlowCards instead.
	Computed uint64
	// FlowCards is the number of per-job flow computations performed — the
	// expensive unit of estimation work. A full estimate of an n-job
	// workflow computes n cards; a delta estimate computes cards only for
	// the affected cone.
	FlowCards uint64
}

// Add accumulates another estimator's counters.
func (c *Counts) Add(o Counts) {
	c.Requests += o.Requests
	c.Computed += o.Computed
	c.FlowCards += o.FlowCards
}

// Estimator predicts workflow cost on a given cluster. It memoizes skew
// computations across calls (configuration search evaluates thousands of
// plans whose key samples are identical). It is not safe for concurrent use.
type Estimator struct {
	Cluster   *mrsim.Cluster
	skewCache map[skewKey]float64
	// sampleHashes memoizes key-sample content digests by the address of
	// the sample's first tuple. The pointer map key pins the backing array,
	// so an address uniquely identifies one sample for the estimator's
	// lifetime. (A formatted "%p" inside a string key — the previous
	// scheme — pins nothing: a freed sample's address could be reused by a
	// different sample, resurrecting stale skew entries nondeterministically
	// with GC timing.)
	sampleHashes map[*keyval.Tuple]uint64
	fullCalls    uint64
	deltaCalls   uint64
	flowCards    uint64
}

// skewKey identifies one skew-cache entry without allocating: the partition
// scheme, the projected key fields and split points (hashed), and the key
// sample's content digest. Comparable struct keys keep per-sample lookups
// on the configuration-search hot path allocation-free.
type skewKey struct {
	ranged   bool
	numParts int // 0 for hash partitioning (sample count is parts-free there)
	fields   uint64
	splits   uint64
	sample   uint64
}

// New builds an estimator.
func New(c *mrsim.Cluster) *Estimator {
	return &Estimator{
		Cluster:      c,
		skewCache:    make(map[skewKey]float64),
		sampleHashes: make(map[*keyval.Tuple]uint64),
	}
}

// sampleHash digests a key sample's contents, memoized by (pinned) address.
func (e *Estimator) sampleHash(sample []keyval.Tuple) uint64 {
	p := &sample[0]
	if h, ok := e.sampleHashes[p]; ok {
		return h
	}
	h := keyval.HashTuples(sample)
	e.sampleHashes[p] = h
	return h
}

// Counts reports what-if activity: full estimates, delta estimates issued
// through Prepare, and per-job flow computations.
func (e *Estimator) Counts() Counts {
	return Counts{
		Requests:  e.fullCalls + e.deltaCalls,
		Computed:  e.fullCalls,
		FlowCards: e.flowCards,
	}
}

// Estimate predicts the execution of w. Base datasets must carry size
// annotations and every job a profile annotation; otherwise the fallback
// #jobs model is returned (never an error, mirroring Stubby's tolerance of
// missing information).
func (e *Estimator) Estimate(w *wf.Workflow) (*Estimate, error) {
	return e.EstimateContext(context.Background(), w)
}

// EstimateContext is Estimate under a context: cancellation is checked
// between per-job flow computations, so estimates of long workflows stop
// promptly with ctx.Err().
func (e *Estimator) EstimateContext(ctx context.Context, w *wf.Workflow) (*Estimate, error) {
	e.fullCalls++
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	if !profile.HasFullProfiles(w) || !hasBaseSizes(w) {
		return fallbackEstimate(w), nil
	}
	est := &Estimate{
		Jobs:     make(map[string]*JobEstimate, len(w.Jobs)),
		Datasets: make(map[string]*DatasetEstimate, len(w.Datasets)),
	}
	seedBaseDatasets(w, est.Datasets)
	mapPool := mrsim.NewSlotPool(e.Cluster.TotalMapSlots())
	redPool := mrsim.NewSlotPool(e.Cluster.TotalReduceSlots())
	ready := make(map[string]float64)
	for _, job := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		jobReady := readyTime(job, ready)
		card, err := e.flowJob(job, est.Datasets)
		if err != nil {
			return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "whatif",
				Workflow: w.Name, Job: job.ID, Err: err}
		}
		end := scheduleJob(card, jobReady, mapPool, redPool)
		je := card.jobEstimate(jobReady, end)
		est.Jobs[job.ID] = je
		card.applyOutputs(est.Datasets)
		for _, out := range job.Outputs() {
			ready[out] = je.End
		}
		if je.End > est.Makespan {
			est.Makespan = je.End
		}
	}
	return est, nil
}

// fallbackEstimate is the #jobs cost model used when annotations are
// insufficient for cost-based estimation.
func fallbackEstimate(w *wf.Workflow) *Estimate {
	return &Estimate{Makespan: float64(len(w.Jobs)), Fallback: true,
		Jobs: map[string]*JobEstimate{}, Datasets: map[string]*DatasetEstimate{}}
}

// seedBaseDatasets fills dst with estimates for the workflow's base inputs.
func seedBaseDatasets(w *wf.Workflow, dst map[string]*DatasetEstimate) {
	for _, d := range w.Datasets {
		if d.Base {
			parts := maxInt(d.EstPartitions, 1)
			dst[d.ID] = &DatasetEstimate{
				Records:      d.EstRecords,
				Bytes:        d.EstBytes,
				Partitions:   parts,
				Layout:       d.Layout.Clone(),
				MaxPartShare: 1 / float64(parts),
			}
		}
	}
}

// readyTime is the earliest time every input of the job is materialized.
func readyTime(job *wf.Job, ready map[string]float64) float64 {
	jobReady := 0.0
	for _, in := range job.Inputs() {
		if t := ready[in]; t > jobReady {
			jobReady = t
		}
	}
	return jobReady
}

func hasBaseSizes(w *wf.Workflow) bool {
	for _, d := range w.Datasets {
		if d.Base && (d.EstRecords <= 0 || d.EstBytes <= 0) {
			return false
		}
	}
	return true
}

func ceilDiv(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	n := a / b
	if n != float64(int64(n)) {
		return float64(int64(n)) + 1
	}
	if n < 1 {
		return 1
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
