package mrsim

import "math"

// Cost primitives shared by the executor (which applies them to actual
// per-task record and byte counts) and the What-if engine (which applies
// them to profile-estimated aggregates). Keeping one set of formulas is
// what makes cost estimates track actual simulated performance, up to
// profiling error — exactly the relationship Figure 14 plots.

// SpillRuns returns how many sorted runs the map side writes for the given
// (virtual) output bytes and sort buffer size. Output fitting in the buffer
// spills once.
func SpillRuns(outBytesVirtual float64, sortBufferMB int) int {
	if outBytesVirtual <= 0 {
		return 0
	}
	buf := float64(sortBufferMB) * MB
	runs := int(math.Ceil(outBytesVirtual / buf))
	if runs < 1 {
		runs = 1
	}
	return runs
}

// ExtraMergePasses returns how many additional full read+write passes over
// the data are needed to merge `runs` sorted runs with a fan-in of
// `factor`: ceil(log_factor(runs)) - 1 extra passes beyond the initial
// spill, floored at zero.
func ExtraMergePasses(runs, factor int) int {
	if runs <= 1 || factor < 2 {
		return 0
	}
	passes := int(math.Ceil(math.Log(float64(runs)) / math.Log(float64(factor))))
	if passes < 1 {
		passes = 1
	}
	return passes - 1
}

// ReadTime returns the seconds to read bytesVirtual of logical data from
// local disk, given its on-disk compression state.
func (c *Cluster) ReadTime(bytesVirtual float64, compressed bool) float64 {
	if bytesVirtual <= 0 {
		return 0
	}
	disk := bytesVirtual
	var cpu float64
	if compressed {
		disk *= c.CompressRatio
		cpu = bytesVirtual / MB * c.CompressCPUSecPerMB
	}
	return disk/MB/c.DiskMBps + cpu
}

// WriteTime returns the seconds to write bytesVirtual of logical data to
// local disk, compressing first if requested.
func (c *Cluster) WriteTime(bytesVirtual float64, compress bool) float64 {
	if bytesVirtual <= 0 {
		return 0
	}
	disk := bytesVirtual
	var cpu float64
	if compress {
		disk *= c.CompressRatio
		cpu = bytesVirtual / MB * c.CompressCPUSecPerMB
	}
	return disk/MB/c.DiskMBps + cpu
}

// NetTime returns the seconds to move bytesVirtual of on-wire data across
// the network (compression, if any, is applied by the caller to the byte
// count).
func (c *Cluster) NetTime(bytesVirtual float64) float64 {
	if bytesVirtual <= 0 {
		return 0
	}
	return bytesVirtual / MB / c.NetMBps
}

// SortCPU returns the comparison cost of sorting recordsVirtual records.
func (c *Cluster) SortCPU(recordsVirtual float64) float64 {
	if recordsVirtual < 2 {
		return 0
	}
	return recordsVirtual * math.Log2(recordsVirtual) * c.SortCPUPerRecord
}

// SpillIOTime returns the disk seconds for the map-side sort/spill
// pipeline: one write of the (possibly compressed) map output plus
// read+write for each extra merge pass.
func (c *Cluster) SpillIOTime(outBytesVirtual float64, sortBufferMB, ioSortFactor int, compressed bool) float64 {
	if outBytesVirtual <= 0 {
		return 0
	}
	onDisk := outBytesVirtual
	var cpu float64
	if compressed {
		onDisk *= c.CompressRatio
		cpu = outBytesVirtual / MB * c.CompressCPUSecPerMB
	}
	runs := SpillRuns(outBytesVirtual, sortBufferMB)
	extra := ExtraMergePasses(runs, ioSortFactor)
	diskTime := onDisk / MB / c.DiskMBps * float64(1+2*extra)
	return diskTime + cpu
}

// MergeIOTime returns the reduce-side disk seconds to merge `runs` fetched
// map segments totalling bytesVirtual: read+write per extra pass.
func (c *Cluster) MergeIOTime(bytesVirtual float64, runs, ioSortFactor int) float64 {
	extra := ExtraMergePasses(runs, ioSortFactor)
	if extra == 0 || bytesVirtual <= 0 {
		return 0
	}
	return bytesVirtual / MB / c.DiskMBps * float64(2*extra)
}
