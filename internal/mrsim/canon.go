package mrsim

import (
	"fmt"
	"math"

	"github.com/stubby-mr/stubby/internal/keyval"
)

// CanonSpec controls how a dataset's materialized output is canonicalized
// before semantic comparison. The zero value compares everything exactly.
type CanonSpec struct {
	// LabelKeyFields are key positions whose values are labels an execution
	// assigns rather than data it computes — e.g. the rank a top-K merge
	// emits when several records tie on the ranking score. Two correct
	// executions may permute such labels among the tied records, so they
	// are cleared before comparison and the remaining fields decide
	// equivalence.
	LabelKeyFields []int
	// LabelValueFields are the same for value positions.
	LabelValueFields []int
}

// CanonicalPairs returns the order- and partition-insensitive canonical
// form of a dataset's records: label fields are cleared per the spec, and
// the pairs are sorted by the full tuple — key first, then value.
//
// Sorting by the full tuple (not the key alone) is what makes the form
// deterministic for reduce outputs with duplicate keys: distinct jobs
// routinely emit several records under one key (per-group fan-out,
// constant-key marks), and those records arrive concatenated in partition
// order, which legitimately differs between plans. A key-only sort would
// leave the value order of such duplicates plan-dependent and flag
// equivalent executions as divergent.
//
// The input is not modified.
func CanonicalPairs(pairs []keyval.Pair, spec CanonSpec) []keyval.Pair {
	out := make([]keyval.Pair, len(pairs))
	for i, p := range pairs {
		k, v := keyval.Clone(p.Key), keyval.Clone(p.Value)
		for _, f := range spec.LabelKeyFields {
			if f >= 0 && f < len(k) {
				k[f] = nil
			}
		}
		for _, f := range spec.LabelValueFields {
			if f >= 0 && f < len(v) {
				v[f] = nil
			}
		}
		out[i] = keyval.Pair{Key: k, Value: v}
	}
	keyval.SortPairs(out, nil) // full key, ties broken on the full value
	return out
}

// CanonicalOutput canonicalizes a stored dataset's records across all of
// its partitions.
func (s *Stored) CanonicalOutput(spec CanonSpec) []keyval.Pair {
	return CanonicalPairs(s.AllPairs(), spec)
}

// DiffPairs compares two canonicalized outputs tuple-for-tuple and returns
// "" when they are equivalent, or a description of the first difference.
// floatTol is a relative tolerance applied when both fields are numeric
// (0 demands exact equality) — workflows that legitimately accumulate
// non-integer floating point can absorb reassociation noise without
// weakening the comparison of integer and string fields.
//
// Known limitation of non-zero tolerances: pairing is positional after an
// exact full-tuple sort, so two records under one key whose leading float
// fields are within tolerance of *each other* can sort crosswise between
// the two sides and be compared against the wrong partner. Keep exact
// (int/string) fields ahead of tolerant floats in such outputs — true for
// every current subject, whose keys are exact — or use tolerance 0.
func DiffPairs(a, b []keyval.Pair, floatTol float64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if d := diffTuple(a[i].Key, b[i].Key, floatTol); d != "" {
			return fmt.Sprintf("record %d key: %s (%v vs %v)", i, d, a[i].Key, b[i].Key)
		}
		if d := diffTuple(a[i].Value, b[i].Value, floatTol); d != "" {
			return fmt.Sprintf("record %d value: %s (%v=%v vs %v=%v)",
				i, d, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
	return ""
}

func diffTuple(a, b keyval.Tuple, floatTol float64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("widths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if keyval.CompareFields(a[i], b[i]) == 0 {
			continue
		}
		if floatTol > 0 {
			x, xok := numeric(a[i])
			y, yok := numeric(b[i])
			if xok && yok && math.Abs(x-y) <= floatTol*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
				continue
			}
		}
		return fmt.Sprintf("field %d differs", i)
	}
	return ""
}

func numeric(f keyval.Field) (float64, bool) {
	switch v := f.(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, true
	default:
		return 0, false
	}
}
