package mrsim

import (
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// BenchmarkExecuteGroupSum measures raw executor throughput: one
// group-and-sum job over 50k records on the default cluster.
func BenchmarkExecuteGroupSum(b *testing.B) {
	pairs := genPairs(50000, 500, 1)
	job := sumJob("J", "in", "out")
	job.Config.NumReduceTasks = 50
	w := singleJobWorkflow(job, "in", "out")
	cluster := testCluster()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dfs := NewDFS()
		if err := dfs.Ingest("in", pairs, IngestSpec{
			NumPartitions: 8,
			KeyFields:     []string{"k"},
			Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := NewEngine(cluster, dfs).RunWorkflow(w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50000*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSlotPoolSchedule measures the event scheduler.
func BenchmarkSlotPoolSchedule(b *testing.B) {
	pool := NewSlotPool(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Schedule(0, 1)
	}
}

// BenchmarkScheduleUniform measures the batched scheduler the What-if
// engine uses for thousands of uniform tasks.
func BenchmarkScheduleUniform(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := NewSlotPool(150)
		pool.ScheduleUniform(0, 3.5, 5000)
	}
}

// BenchmarkChainPush measures pipeline execution: a three-stage chain
// (map, grouped sum, map) over a clustered stream.
func BenchmarkChainPush(b *testing.B) {
	stages := []wf.Stage{
		wf.MapStage("m", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0),
		wf.ReduceStage("r", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			emit(k, keyval.T(int64(len(vs))))
		}, []int{0}, 0),
		wf.MapStage("m2", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0),
	}
	pairs := make([]keyval.Pair, 1000)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(i / 10)), Value: keyval.T(int64(1))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := newChain(stages, func(keyval.Pair) {})
		for _, p := range pairs {
			ch.head(p)
		}
		ch.close()
	}
}
