package mrsim

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// --- helpers ---------------------------------------------------------------

func testCluster() *Cluster {
	c := DefaultCluster()
	c.VirtualScale = 1000
	return c
}

func passMap(key, value keyval.Tuple, emit wf.Emit) { emit(key, value) }

func sumReduce(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

// sumJob groups by key and sums the first value field.
func sumJob(id, in, out string) *wf.Job {
	return &wf.Job{
		ID:     id,
		Config: wf.DefaultConfig(),
		Origin: []string{id},
		MapBranches: []wf.MapBranch{{
			Tag:    0,
			Input:  in,
			Stages: []wf.Stage{wf.MapStage("M_"+id, passMap, 1e-6)},
			KeyIn:  []string{"k"}, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"v"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Output: out,
			Stages: []wf.Stage{wf.ReduceStage("R_"+id, sumReduce, nil, 1e-6)},
			KeyIn:  []string{"k"}, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"sum"},
		}},
	}
}

// genPairs makes n records with keys in [0, cardinality).
func genPairs(n, cardinality int, seed int64) []keyval.Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]keyval.Pair, n)
	for i := range out {
		out[i] = keyval.Pair{Key: keyval.T(int64(r.Intn(cardinality))), Value: keyval.T(int64(1))}
	}
	return out
}

func singleJobWorkflow(j *wf.Job, in, out string) *wf.Workflow {
	return &wf.Workflow{
		Name:     "test",
		Jobs:     []*wf.Job{j},
		Datasets: []*wf.Dataset{{ID: in, Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}}, {ID: out}},
	}
}

func ingest(t *testing.T, dfs *DFS, id string, pairs []keyval.Pair, parts int) {
	t.Helper()
	err := dfs.Ingest(id, pairs, IngestSpec{
		NumPartitions: parts,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// groundTruthSums computes expected group sums.
func groundTruthSums(pairs []keyval.Pair) map[int64]int64 {
	m := map[int64]int64{}
	for _, p := range pairs {
		m[p.Key[0].(int64)] += p.Value[0].(int64)
	}
	return m
}

func checkSums(t *testing.T, dfs *DFS, ds string, want map[int64]int64) {
	t.Helper()
	stored, ok := dfs.Get(ds)
	if !ok {
		t.Fatalf("output %q missing", ds)
	}
	got := map[int64]int64{}
	for _, p := range stored.AllPairs() {
		got[p.Key[0].(int64)] += p.Value[0].(int64)
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: sum %d, want %d", k, got[k], v)
		}
	}
}

// --- DFS -------------------------------------------------------------------

func TestIngestHashLayout(t *testing.T) {
	dfs := NewDFS()
	pairs := genPairs(1000, 50, 1)
	err := dfs.Ingest("d", pairs, IngestSpec{
		NumPartitions: 8,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}, SortFields: []string{"k"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := dfs.Get("d")
	if len(s.Parts) != 8 {
		t.Fatalf("parts = %d", len(s.Parts))
	}
	if s.Records() != 1000 {
		t.Fatalf("records = %d", s.Records())
	}
	if s.Bytes() != keyval.PairsSize(pairs) {
		t.Error("bytes mismatch")
	}
	// Co-partitioning: every key appears in exactly one partition.
	keyPart := map[int64]int{}
	for pi, part := range s.Parts {
		if !keyval.IsSortedOn(part.Pairs, []int{0}) {
			t.Errorf("partition %d not sorted", pi)
		}
		for _, p := range part.Pairs {
			k := p.Key[0].(int64)
			if prev, ok := keyPart[k]; ok && prev != pi {
				t.Fatalf("key %d in partitions %d and %d", k, prev, pi)
			}
			keyPart[k] = pi
		}
	}
}

func TestIngestRangeLayoutAndBounds(t *testing.T) {
	dfs := NewDFS()
	var pairs []keyval.Pair
	for i := 0; i < 400; i++ {
		pairs = append(pairs, keyval.Pair{Key: keyval.T(int64(i)), Value: keyval.T(int64(1))})
	}
	err := dfs.Ingest("d", pairs, IngestSpec{
		NumPartitions: 4,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.RangePartition, PartFields: []string{"k"}, SortFields: []string{"k"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := dfs.Get("d")
	if len(s.Parts) != 4 {
		t.Fatalf("parts = %d", len(s.Parts))
	}
	if len(s.Layout.SplitPoints) != 3 {
		t.Fatalf("split points = %d", len(s.Layout.SplitPoints))
	}
	for pi, part := range s.Parts {
		iv := part.Bounds.Interval()
		for _, p := range part.Pairs {
			if !iv.Contains(p.Key[0]) {
				t.Fatalf("partition %d holds key %v outside bounds %v", pi, p.Key, iv)
			}
		}
	}
}

func TestIngestErrors(t *testing.T) {
	dfs := NewDFS()
	if err := dfs.Ingest("d", nil, IngestSpec{NumPartitions: 0}); err == nil {
		t.Error("zero partitions accepted")
	}
	err := dfs.Ingest("d", nil, IngestSpec{
		NumPartitions: 2,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartFields: []string{"missing"}},
	})
	if err == nil {
		t.Error("unknown partition field accepted")
	}
	err = dfs.Ingest("d", nil, IngestSpec{
		NumPartitions: 2,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{SortFields: []string{"missing"}},
	})
	if err == nil {
		t.Error("unknown sort field accepted")
	}
}

func TestDFSCloneIndependence(t *testing.T) {
	dfs := NewDFS()
	ingest(t, dfs, "d", genPairs(100, 10, 2), 2)
	clone := dfs.Clone()
	clone.Delete("d")
	if _, ok := dfs.Get("d"); !ok {
		t.Error("delete on clone affected original")
	}
	if len(dfs.IDs()) != 1 || dfs.IDs()[0] != "d" {
		t.Errorf("IDs = %v", dfs.IDs())
	}
}

// --- correctness -----------------------------------------------------------

func TestRunSingleJobCorrectness(t *testing.T) {
	pairs := genPairs(5000, 100, 3)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 8)
	job := sumJob("J1", "in", "out")
	job.Config.NumReduceTasks = 7
	w := singleJobWorkflow(job, "in", "out")
	eng := NewEngine(testCluster(), dfs)
	rep, err := eng.RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, dfs, "out", groundTruthSums(pairs))
	if rep.Makespan <= 0 {
		t.Error("zero makespan")
	}
	jr := rep.Job("J1")
	if jr == nil || jr.NumReduceTasks != 7 {
		t.Fatalf("job report wrong: %+v", jr)
	}
	if jr.Tags[0].MapByInput["in"].InRecords != 5000 {
		t.Errorf("map input records = %d", jr.Tags[0].MapByInput["in"].InRecords)
	}
	if jr.Tags[0].Reduce.OutRecords != 100 {
		t.Errorf("reduce output records = %d, want 100 groups", jr.Tags[0].Reduce.OutRecords)
	}
	// Output layout derived: hash partitioned on k, 7 partitions.
	out, _ := dfs.Get("out")
	if len(out.Parts) != 7 {
		t.Errorf("output partitions = %d", len(out.Parts))
	}
	if len(out.Layout.PartFields) != 1 || out.Layout.PartFields[0] != "k" {
		t.Errorf("output layout = %v", out.Layout)
	}
}

func TestRunDeterminism(t *testing.T) {
	pairs := genPairs(2000, 37, 4)
	run := func() (*RunReport, []keyval.Pair) {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 4)
		job := sumJob("J1", "in", "out")
		job.Config.NumReduceTasks = 5
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		stored, _ := dfs.Get("out")
		return rep, stored.AllPairs()
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Makespan != r2.Makespan {
		t.Errorf("makespans differ: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if len(o1) != len(o2) {
		t.Fatalf("output sizes differ")
	}
	for i := range o1 {
		if keyval.Compare(o1[i].Key, o2[i].Key) != 0 || keyval.Compare(o1[i].Value, o2[i].Value) != 0 {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

func TestChainedJobsCorrectness(t *testing.T) {
	// J1 sums per key; J2 re-keys to k%10 and sums again.
	pairs := genPairs(3000, 100, 5)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 4)
	j1 := sumJob("J1", "in", "mid")
	j1.Config.NumReduceTasks = 4
	j2 := sumJob("J2", "mid", "out")
	j2.MapBranches[0].Stages = []wf.Stage{wf.MapStage("M_J2", func(k, v keyval.Tuple, emit wf.Emit) {
		emit(keyval.T(k[0].(int64)%10), v)
	}, 1e-6)}
	j2.Config.NumReduceTasks = 3
	w := &wf.Workflow{
		Name: "chain",
		Jobs: []*wf.Job{j1, j2},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "mid", KeyFields: []string{"k"}, ValueFields: []string{"sum"}},
			{ID: "out"},
		},
	}
	if _, err := NewEngine(testCluster(), dfs).RunWorkflow(w); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{}
	for k, v := range groundTruthSums(pairs) {
		want[k%10] += v
	}
	checkSums(t, dfs, "out", want)
}

func TestMapOnlyJob(t *testing.T) {
	pairs := genPairs(1000, 20, 6)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 3)
	job := &wf.Job{
		ID: "M", Config: wf.DefaultConfig(), Origin: []string{"M"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "in",
			Stages: []wf.Stage{wf.MapStage("double", func(k, v keyval.Tuple, emit wf.Emit) {
				emit(k, keyval.T(v[0].(int64)*2))
			}, 1e-6)},
			KeyOut: []string{"k"},
		}},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "out", KeyOut: []string{"k"}}},
	}
	w := singleJobWorkflow(job, "in", "out")
	rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Job("M")
	if jr.NumReduceTasks != 0 {
		t.Error("map-only job scheduled reduce tasks")
	}
	if jr.ShuffleBytesVirtual != 0 {
		t.Error("map-only job shuffled data")
	}
	want := map[int64]int64{}
	for _, p := range pairs {
		want[p.Key[0].(int64)] += 2
	}
	checkSums(t, dfs, "out", want)
}

func TestCombinerReducesShuffle(t *testing.T) {
	pairs := genPairs(20000, 10, 7) // heavy duplication: combiner helps
	run := func(useCombiner bool) (*RunReport, map[int64]int64) {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 4)
		job := sumJob("J1", "in", "out")
		comb := wf.ReduceStage("C", sumReduce, nil, 1e-6)
		job.ReduceGroups[0].Combiner = &comb
		job.Config.UseCombiner = useCombiner
		job.Config.NumReduceTasks = 4
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		stored, _ := dfs.Get("out")
		got := map[int64]int64{}
		for _, p := range stored.AllPairs() {
			got[p.Key[0].(int64)] = p.Value[0].(int64)
		}
		return rep, got
	}
	with, outWith := run(true)
	without, outWithout := run(false)
	want := groundTruthSums(pairs)
	for k, v := range want {
		if outWith[k] != v || outWithout[k] != v {
			t.Fatalf("key %d: with=%d without=%d want=%d", k, outWith[k], outWithout[k], v)
		}
	}
	jw, jo := with.Job("J1"), without.Job("J1")
	if jw.ShuffleBytesVirtual >= jo.ShuffleBytesVirtual {
		t.Errorf("combiner did not reduce shuffle: %v vs %v", jw.ShuffleBytesVirtual, jo.ShuffleBytesVirtual)
	}
	if jw.Tags[0].CombineOut >= jw.Tags[0].CombineIn {
		t.Error("combine stats show no reduction")
	}
	if jo.Tags[0].CombineIn != jo.Tags[0].CombineOut {
		t.Error("combiner ran while disabled")
	}
}

func TestCompressionTradeoff(t *testing.T) {
	pairs := genPairs(20000, 20000, 8) // no duplication
	makespan := func(comp bool) float64 {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 4)
		job := sumJob("J1", "in", "out")
		job.Config.CompressMapOutput = comp
		job.Config.NumReduceTasks = 8
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	// With default calibration (cheap compression CPU, slow network),
	// compressing map output should win for shuffle-heavy jobs.
	if makespan(true) >= makespan(false) {
		t.Error("map-output compression should speed up shuffle-heavy job")
	}
}

func TestPartitionPruning(t *testing.T) {
	var pairs []keyval.Pair
	for i := 0; i < 4000; i++ {
		pairs = append(pairs, keyval.Pair{Key: keyval.T(int64(i % 1000)), Value: keyval.T(int64(1))})
	}
	build := func(withFilter bool) (*RunReport, *DFS) {
		dfs := NewDFS()
		err := dfs.Ingest("in", pairs, IngestSpec{
			NumPartitions: 10,
			KeyFields:     []string{"k"},
			Layout:        wf.Layout{PartType: keyval.RangePartition, PartFields: []string{"k"}, SortFields: []string{"k"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		job := sumJob("J1", "in", "out")
		job.MapBranches[0].Stages = []wf.Stage{wf.MapStage("filter", func(k, v keyval.Tuple, emit wf.Emit) {
			if k[0].(int64) < 100 {
				emit(k, v)
			}
		}, 1e-6)}
		if withFilter {
			job.MapBranches[0].Filter = &wf.Filter{Field: "k", Interval: keyval.Interval{Hi: int64(100)}}
		}
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep, dfs
	}
	withF, dfsF := build(true)
	withoutF, dfsN := build(false)
	if withF.Job("J1").PrunedPartitions == 0 {
		t.Error("no partitions pruned despite filter annotation")
	}
	if withoutF.Job("J1").PrunedPartitions != 0 {
		t.Error("partitions pruned without filter annotation")
	}
	if withF.Job("J1").MapInputBytes >= withoutF.Job("J1").MapInputBytes {
		t.Error("pruning did not reduce input bytes")
	}
	// Pruning must not change results (invariant 6 in DESIGN.md).
	a, _ := dfsF.Get("out")
	b, _ := dfsN.Get("out")
	ga, gb := map[int64]int64{}, map[int64]int64{}
	for _, p := range a.AllPairs() {
		ga[p.Key[0].(int64)] += p.Value[0].(int64)
	}
	for _, p := range b.AllPairs() {
		gb[p.Key[0].(int64)] += p.Value[0].(int64)
	}
	if len(ga) != len(gb) {
		t.Fatalf("pruned result has %d keys, unpruned %d", len(ga), len(gb))
	}
	for k, v := range gb {
		if ga[k] != v {
			t.Fatalf("pruning changed result for key %d", k)
		}
	}
}

func TestHorizontalTagsShareScan(t *testing.T) {
	// One job with two tags reading the same input: tag 0 sums, tag 1 counts.
	pairs := genPairs(3000, 50, 9)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 4)
	countReduce := func(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
		emit(key, keyval.T(int64(len(values))))
	}
	job := &wf.Job{
		ID: "H", Config: wf.DefaultConfig(), Origin: []string{"A", "B"},
		MapBranches: []wf.MapBranch{
			{Tag: 0, Input: "in", Stages: []wf.Stage{wf.MapStage("Ma", passMap, 1e-6)}, KeyOut: []string{"k"}},
			{Tag: 1, Input: "in", Stages: []wf.Stage{wf.MapStage("Mb", passMap, 1e-6)}, KeyOut: []string{"k"}},
		},
		ReduceGroups: []wf.ReduceGroup{
			{Tag: 0, Output: "sums", Stages: []wf.Stage{wf.ReduceStage("Ra", sumReduce, nil, 1e-6)}, KeyIn: []string{"k"}, KeyOut: []string{"k"}},
			{Tag: 1, Output: "counts", Stages: []wf.Stage{wf.ReduceStage("Rb", countReduce, nil, 1e-6)}, KeyIn: []string{"k"}, KeyOut: []string{"k"}},
		},
	}
	job.Config.NumReduceTasks = 3
	w := &wf.Workflow{
		Name: "horizontal",
		Jobs: []*wf.Job{job},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}},
			{ID: "sums"}, {ID: "counts"},
		},
	}
	rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, dfs, "sums", groundTruthSums(pairs))
	counts, _ := dfs.Get("counts")
	var total int64
	for _, p := range counts.AllPairs() {
		total += p.Value[0].(int64)
	}
	if total != 3000 {
		t.Errorf("counts total = %d, want 3000", total)
	}
	// The scan is shared: input bytes read once, not twice.
	if got, want := rep.Job("H").MapInputBytes, keyval.PairsSize(pairs); got != want {
		t.Errorf("map input bytes = %d, want %d (single scan)", got, want)
	}
}

func TestAlignedMapToInput(t *testing.T) {
	// Producer range-partitions and sorts by k; consumer is map-only with a
	// pipelined reduce stage that relies on input clustering.
	pairs := genPairs(4000, 200, 10)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 4)
	j1 := sumJob("J1", "in", "mid")
	j1.Config.NumReduceTasks = 5
	// Consumer: map-only job whose pipeline is [identity map, sum reduce]
	// grouping on k — valid only because input partitions are sorted by k
	// and map tasks are aligned to partitions.
	j2 := &wf.Job{
		ID: "J2", Config: wf.DefaultConfig(), Origin: []string{"J2"}, AlignMapToInput: true,
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "mid",
			Stages: []wf.Stage{
				wf.MapStage("M2", passMap, 1e-6),
				wf.ReduceStage("R2", sumReduce, []int{0}, 1e-6),
			},
			KeyIn: []string{"k"}, KeyOut: []string{"k"},
		}},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "out", KeyOut: []string{"k"}}},
	}
	w := &wf.Workflow{
		Name: "aligned",
		Jobs: []*wf.Job{j1, j2},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true, KeyFields: []string{"k"}},
			{ID: "mid", KeyFields: []string{"k"}},
			{ID: "out"},
		},
	}
	rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Job("J2").NumMapTasks; got != 5 {
		t.Errorf("aligned consumer has %d map tasks, want 5 (producer reducers)", got)
	}
	// J1 already summed per key; J2 re-sums — results must match ground truth.
	checkSums(t, dfs, "out", groundTruthSums(pairs))
}

func TestAlignedMismatchedPartitionsFails(t *testing.T) {
	dfs := NewDFS()
	ingest(t, dfs, "a", genPairs(100, 10, 11), 2)
	ingest(t, dfs, "b", genPairs(100, 10, 12), 3)
	job := &wf.Job{
		ID: "J", Config: wf.DefaultConfig(), AlignMapToInput: true,
		MapBranches: []wf.MapBranch{
			{Tag: 0, Input: "a", Stages: []wf.Stage{wf.MapStage("Ma", passMap, 0)}},
			{Tag: 0, Input: "b", Stages: []wf.Stage{wf.MapStage("Mb", passMap, 0)}},
		},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "out", Stages: []wf.Stage{wf.ReduceStage("R", sumReduce, nil, 0)}}},
	}
	w := &wf.Workflow{
		Name: "bad",
		Jobs: []*wf.Job{job},
		Datasets: []*wf.Dataset{
			{ID: "a", Base: true}, {ID: "b", Base: true}, {ID: "out"},
		},
	}
	if _, err := NewEngine(testCluster(), dfs).RunWorkflow(w); err == nil {
		t.Error("mismatched aligned partitions accepted")
	}
}

func TestMissingBaseDatasetFails(t *testing.T) {
	w := singleJobWorkflow(sumJob("J1", "in", "out"), "in", "out")
	if _, err := NewEngine(testCluster(), NewDFS()).RunWorkflow(w); err == nil {
		t.Error("missing base dataset accepted")
	}
}

// --- performance model -----------------------------------------------------

func TestMoreReducersMoreParallelism(t *testing.T) {
	pairs := genPairs(30000, 5000, 13)
	makespan := func(reducers int) float64 {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 8)
		job := sumJob("J1", "in", "out")
		job.Config.NumReduceTasks = reducers
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	if makespan(40) >= makespan(1) {
		t.Error("40 reducers should beat 1 reducer on a large shuffle")
	}
}

func TestSkewSlowsReduce(t *testing.T) {
	// All records share one key: a single reducer does all the work.
	skewed := make([]keyval.Pair, 8000)
	for i := range skewed {
		skewed[i] = keyval.Pair{Key: keyval.T(int64(1)), Value: keyval.T(int64(1))}
	}
	uniform := genPairs(8000, 1000, 14)
	run := func(pairs []keyval.Pair) *JobReport {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 4)
		job := sumJob("J1", "in", "out")
		job.Config.NumReduceTasks = 8
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Job("J1")
	}
	s, u := run(skewed), run(uniform)
	if s.MaxReduceTaskSec <= u.MaxReduceTaskSec {
		t.Error("skewed data should produce a slower straggler reduce task")
	}
}

func TestWavesScheduling(t *testing.T) {
	c := testCluster()
	c.Nodes = 2
	c.MapSlotsPerNode = 1
	c.ReduceSlotsPerNode = 1
	// 4 map tasks on 2 slots -> 2 waves.
	pool := NewSlotPool(2)
	var last float64
	for i := 0; i < 4; i++ {
		_, end := pool.Schedule(0, 10)
		if end > last {
			last = end
		}
	}
	if last != 20 {
		t.Errorf("4 tasks x 10s on 2 slots should finish at 20, got %v", last)
	}
	if pool.EarliestFree() != 20 {
		t.Errorf("earliest free = %v", pool.EarliestFree())
	}
}

func TestConcurrentJobsOverlap(t *testing.T) {
	// Two independent small jobs should overlap on the cluster: combined
	// makespan well below the sum of their solo makespans. This is the
	// mechanism behind the Post-processing Jobs result (Section 7.2).
	pairsA := genPairs(4000, 100, 15)
	pairsB := genPairs(4000, 100, 16)
	solo := func(pairs []keyval.Pair) float64 {
		dfs := NewDFS()
		ingest(t, dfs, "in", pairs, 4)
		job := sumJob("J", "in", "out")
		job.Config.NumReduceTasks = 4
		w := singleJobWorkflow(job, "in", "out")
		rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	dfs := NewDFS()
	ingest(t, dfs, "a", pairsA, 4)
	ingest(t, dfs, "b", pairsB, 4)
	ja := sumJob("JA", "a", "outA")
	ja.Config.NumReduceTasks = 4
	jb := sumJob("JB", "b", "outB")
	jb.Config.NumReduceTasks = 4
	w := &wf.Workflow{
		Name: "parallel",
		Jobs: []*wf.Job{ja, jb},
		Datasets: []*wf.Dataset{
			{ID: "a", Base: true}, {ID: "b", Base: true}, {ID: "outA"}, {ID: "outB"},
		},
	}
	rep, err := NewEngine(testCluster(), dfs).RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	sum := solo(pairsA) + solo(pairsB)
	if rep.Makespan >= sum*0.75 {
		t.Errorf("concurrent jobs did not overlap: makespan %v vs solo sum %v", rep.Makespan, sum)
	}
}

// --- cost primitives ---------------------------------------------------------

func TestSpillRunsAndMergePasses(t *testing.T) {
	if SpillRuns(0, 100) != 0 {
		t.Error("no output should spill zero runs")
	}
	if SpillRuns(50*MB, 100) != 1 {
		t.Error("output within buffer should spill one run")
	}
	if SpillRuns(250*MB, 100) != 3 {
		t.Error("250MB/100MB buffer should spill 3 runs")
	}
	if ExtraMergePasses(1, 10) != 0 {
		t.Error("single run needs no merge")
	}
	if ExtraMergePasses(10, 10) != 0 {
		t.Error("runs == factor merges in the final pass")
	}
	if ExtraMergePasses(100, 10) != 1 {
		t.Error("100 runs at factor 10 need one extra pass")
	}
	if ExtraMergePasses(5, 1) != 0 {
		t.Error("invalid factor should be safe")
	}
}

func TestCostTimes(t *testing.T) {
	c := DefaultCluster()
	plain := c.ReadTime(90*MB, false)
	if plain != 1.0 {
		t.Errorf("reading 90MB at 90MB/s = %v, want 1.0", plain)
	}
	comp := c.ReadTime(90*MB, true)
	wantDisk := 90.0 * c.CompressRatio / 90.0
	wantCPU := 90.0 * c.CompressCPUSecPerMB
	if diff := comp - (wantDisk + wantCPU); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("compressed read = %v, want %v", comp, wantDisk+wantCPU)
	}
	if c.NetTime(45*MB) != 1.0 {
		t.Errorf("NetTime wrong")
	}
	if c.SortCPU(1) != 0 {
		t.Error("sorting one record should be free")
	}
	if c.SortCPU(1e6) <= 0 {
		t.Error("sort CPU should be positive")
	}
	if c.WriteTime(0, false) != 0 || c.ReadTime(0, true) != 0 || c.NetTime(-1) != 0 {
		t.Error("zero/negative bytes should cost nothing")
	}
	if c.SpillIOTime(0, 100, 10, false) != 0 {
		t.Error("no spill for no output")
	}
	one := c.SpillIOTime(50*MB, 100, 10, false)
	three := c.SpillIOTime(250*MB, 100, 10, false)
	if three <= one {
		t.Error("more spills should cost more")
	}
	if c.MergeIOTime(100*MB, 5, 10) != 0 {
		t.Error("5 runs at factor 10 need no extra pass")
	}
	if c.MergeIOTime(100*MB, 100, 10) <= 0 {
		t.Error("100 runs at factor 10 need extra passes")
	}
}

func TestClusterValidate(t *testing.T) {
	if err := DefaultCluster().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Cluster){
		func(c *Cluster) { c.Nodes = 0 },
		func(c *Cluster) { c.DiskMBps = 0 },
		func(c *Cluster) { c.CompressRatio = 0 },
		func(c *Cluster) { c.CompressRatio = 1.5 },
		func(c *Cluster) { c.VirtualScale = 0 },
		func(c *Cluster) { c.TaskSetupSec = -1 },
	}
	for i, mut := range bad {
		c := DefaultCluster()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid cluster accepted", i)
		}
	}
	if DefaultCluster().TotalMapSlots() != 150 || DefaultCluster().TotalReduceSlots() != 100 {
		t.Error("default cluster slot totals wrong")
	}
}

// --- pipeline chain ----------------------------------------------------------

func TestChainMixedStages(t *testing.T) {
	// [map rekey, reduce sum, map annotate] over a clustered stream.
	stages := []wf.Stage{
		wf.MapStage("rekey", func(k, v keyval.Tuple, emit wf.Emit) {
			emit(keyval.T(k[0].(int64)/10), v)
		}, 1e-6),
		wf.ReduceStage("sum", sumReduce, []int{0}, 1e-6),
		wf.MapStage("annotate", func(k, v keyval.Tuple, emit wf.Emit) {
			emit(k, keyval.T(v[0].(int64), "done"))
		}, 1e-6),
	}
	var out []keyval.Pair
	ch := newChain(stages, func(p keyval.Pair) { out = append(out, p) })
	// Stream clustered by k/10: keys 10,11,12 then 20,21.
	for _, k := range []int64{10, 11, 12, 20, 21} {
		ch.head(keyval.Pair{Key: keyval.T(k), Value: keyval.T(int64(1))})
	}
	ch.close()
	if len(out) != 2 {
		t.Fatalf("out = %d groups, want 2", len(out))
	}
	if out[0].Value[0].(int64) != 3 || out[1].Value[0].(int64) != 2 {
		t.Errorf("group sums wrong: %v", out)
	}
	if out[0].Value[1].(string) != "done" {
		t.Error("post-reduce map stage did not run")
	}
	if ch.stats.InRecords != 5 || ch.stats.OutRecords != 2 {
		t.Errorf("stats in=%d out=%d", ch.stats.InRecords, ch.stats.OutRecords)
	}
	if ch.stats.CPU <= 0 {
		t.Error("no CPU charged")
	}
}

func TestChainGroupingOnPrefix(t *testing.T) {
	// Sorted on (O,Z); group on O only (index 0).
	var out []keyval.Pair
	ch := newChain([]wf.Stage{
		wf.ReduceStage("count", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			emit(keyval.T(k[0]), keyval.T(int64(len(vs))))
		}, []int{0}, 0),
	}, func(p keyval.Pair) { out = append(out, p) })
	keys := [][2]int64{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}}
	for _, k := range keys {
		ch.head(keyval.Pair{Key: keyval.T(k[0], k[1]), Value: keyval.T(int64(0))})
	}
	ch.close()
	if len(out) != 2 || out[0].Value[0].(int64) != 3 || out[1].Value[0].(int64) != 2 {
		t.Errorf("prefix grouping wrong: %v", out)
	}
}

func TestReservoirDeterministicAndBounded(t *testing.T) {
	r1 := newReservoir(10, 42)
	r2 := newReservoir(10, 42)
	for i := 0; i < 1000; i++ {
		r1.add(keyval.T(int64(i)))
		r2.add(keyval.T(int64(i)))
	}
	if len(r1.keys) != 10 {
		t.Fatalf("reservoir size = %d", len(r1.keys))
	}
	for i := range r1.keys {
		if keyval.Compare(r1.keys[i], r2.keys[i]) != 0 {
			t.Fatal("reservoir not deterministic")
		}
	}
	seen := map[int64]bool{}
	for _, k := range r1.keys {
		v := k[0].(int64)
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatal("invalid sample")
		}
		seen[v] = true
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &RunReport{Jobs: []*JobReport{
		{JobID: "a", MapTaskSeconds: 5, ReduceTaskSeconds: 3, Start: 0, End: 10},
		{JobID: "b", MapTaskSeconds: 2, Start: 10, End: 15},
	}}
	if rep.Job("a") == nil || rep.Job("c") != nil {
		t.Error("Job lookup wrong")
	}
	if rep.TotalTaskSeconds() != 10 {
		t.Errorf("TotalTaskSeconds = %v", rep.TotalTaskSeconds())
	}
	if rep.Jobs[0].Span() != 10 {
		t.Error("Span wrong")
	}
	ts := &TagStats{MapByInput: map[string]*PipeStats{
		"a": {InRecords: 1, OutRecords: 2},
		"b": {InRecords: 3, OutRecords: 4},
	}}
	tot := ts.MapTotals()
	if tot.InRecords != 4 || tot.OutRecords != 6 {
		t.Errorf("MapTotals = %+v", tot)
	}
}

func TestOutputPartitionOrderStable(t *testing.T) {
	// Range-partitioned output keeps split-point order and bounds.
	pairs := genPairs(2000, 500, 17)
	dfs := NewDFS()
	ingest(t, dfs, "in", pairs, 4)
	job := sumJob("J1", "in", "out")
	var keys []keyval.Tuple
	for _, p := range pairs {
		keys = append(keys, p.Key)
	}
	points := keyval.EquiDepthSplitPoints(keys, nil, 5)
	job.ReduceGroups[0].Part = keyval.PartitionSpec{Type: keyval.RangePartition, SplitPoints: points}
	w := singleJobWorkflow(job, "in", "out")
	if _, err := NewEngine(testCluster(), dfs).RunWorkflow(w); err != nil {
		t.Fatal(err)
	}
	out, _ := dfs.Get("out")
	if len(out.Parts) != len(points)+1 {
		t.Fatalf("output parts = %d, want %d", len(out.Parts), len(points)+1)
	}
	var all []int64
	for pi, part := range out.Parts {
		iv := part.Bounds.Interval()
		var local []int64
		for _, p := range part.Pairs {
			if !iv.Contains(p.Key[0]) {
				t.Fatalf("partition %d key %v outside bounds %v", pi, p.Key, iv)
			}
			local = append(local, p.Key[0].(int64))
		}
		if !sort.SliceIsSorted(local, func(i, j int) bool { return local[i] < local[j] }) {
			t.Errorf("partition %d not sorted", pi)
		}
		all = append(all, local...)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("range partitions not globally ordered")
	}
	if out.Layout.PartType != keyval.RangePartition || len(out.Layout.SplitPoints) != len(points) {
		t.Error("output layout missing range metadata")
	}
}
