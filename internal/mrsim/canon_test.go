package mrsim

import (
	"sort"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
)

func pr(key any, val ...any) keyval.Pair {
	return keyval.Pair{Key: keyval.T(key), Value: keyval.T(val...)}
}

// TestCanonicalPairsDuplicateKeysAcrossPartitions is the regression test
// for the canonicalization determinism fix: reduce outputs routinely hold
// several records under one key (per-group fan-out, constant-key marks),
// and different plans concatenate partitions in different orders. The
// canonical form must sort by the FULL tuple — a key-only sort leaves the
// value order of duplicate keys plan-dependent and two equivalent
// executions would compare as divergent.
func TestCanonicalPairsDuplicateKeysAcrossPartitions(t *testing.T) {
	// The same multiset as two plans would materialize it: partition
	// boundaries (and so concatenation order) differ.
	planA := []keyval.Pair{ // partition 0 then partition 1
		pr(int64(1), "x", int64(10)),
		pr(int64(1), "y", int64(20)),
		pr(int64(2), "z", int64(30)),
	}
	planB := []keyval.Pair{ // same records, other partitioning
		pr(int64(1), "y", int64(20)),
		pr(int64(2), "z", int64(30)),
		pr(int64(1), "x", int64(10)),
	}
	ca := CanonicalPairs(planA, CanonSpec{})
	cb := CanonicalPairs(planB, CanonSpec{})
	if d := DiffPairs(ca, cb, 0); d != "" {
		t.Fatalf("equivalent outputs compared as divergent: %s", d)
	}

	// Demonstrate why key-only ordering is insufficient: a stable key-only
	// sort of the two arrival orders leaves the duplicate-key records in
	// different relative positions.
	keyOnly := func(in []keyval.Pair) []keyval.Pair {
		out := append([]keyval.Pair(nil), in...)
		sort.SliceStable(out, func(i, j int) bool {
			return keyval.Compare(out[i].Key, out[j].Key) < 0
		})
		return out
	}
	ka, kb := keyOnly(planA), keyOnly(planB)
	if DiffPairs(ka, kb, 0) == "" {
		t.Fatal("key-only sort unexpectedly canonicalized duplicate keys; the regression scenario no longer exercises the fix")
	}
}

// TestCanonicalPairsLabels: label fields are cleared before comparison, so
// executions that permute assigned labels (tie ranks) among otherwise
// equal records still compare equal — and a difference in a non-label
// field still fails.
func TestCanonicalPairsLabels(t *testing.T) {
	spec := CanonSpec{LabelKeyFields: []int{0}}
	a := []keyval.Pair{pr(int64(1), "alpha"), pr(int64(2), "beta")}
	b := []keyval.Pair{pr(int64(2), "alpha"), pr(int64(1), "beta")} // ranks swapped among ties
	if d := DiffPairs(CanonicalPairs(a, spec), CanonicalPairs(b, spec), 0); d != "" {
		t.Fatalf("tie-label permutation flagged as divergence: %s", d)
	}
	cMut := []keyval.Pair{pr(int64(1), "alpha"), pr(int64(2), "gamma")}
	if DiffPairs(CanonicalPairs(a, spec), CanonicalPairs(cMut, spec), 0) == "" {
		t.Fatal("payload mutation hidden by label clearing")
	}
	// Without the spec the swap is a real difference.
	if DiffPairs(CanonicalPairs(a, CanonSpec{}), CanonicalPairs(b, CanonSpec{}), 0) == "" {
		t.Fatal("label swap compared equal without a label spec")
	}
}

// TestCanonicalPairsDoesNotMutateInput: canonicalization must clone.
func TestCanonicalPairsDoesNotMutateInput(t *testing.T) {
	in := []keyval.Pair{pr(int64(3), "v"), pr(int64(1), "w")}
	_ = CanonicalPairs(in, CanonSpec{LabelKeyFields: []int{0}})
	if in[0].Key[0] != int64(3) || in[1].Key[0] != int64(1) {
		t.Fatal("input mutated")
	}
}

// TestDiffPairsFloatTolerance: numeric fields compare under the relative
// tolerance; integer and string fields stay exact regardless.
func TestDiffPairsFloatTolerance(t *testing.T) {
	a := []keyval.Pair{pr("k", 1.0000000001)}
	b := []keyval.Pair{pr("k", 1.0)}
	if d := DiffPairs(a, b, 0); d == "" {
		t.Fatal("exact mode ignored a float difference")
	}
	if d := DiffPairs(a, b, 1e-9); d != "" {
		t.Fatalf("tolerance failed to absorb reassociation noise: %s", d)
	}
	sa := []keyval.Pair{pr("k", "x")}
	sb := []keyval.Pair{pr("k", "y")}
	if DiffPairs(sa, sb, 1e-3) == "" {
		t.Fatal("tolerance leaked into string comparison")
	}
	if DiffPairs(a, []keyval.Pair{}, 1e-9) == "" {
		t.Fatal("length mismatch not reported")
	}
}
