// Package mrsim is the MapReduce runtime substrate standing in for Hadoop:
// a deterministic in-process engine that really executes workflow programs
// over records while accounting simulated wall-clock time with a calibrated
// cost model (disk and network bandwidth, per-record CPU, task setup, sort
// and spill passes, compression trade-offs) on a simulated cluster of task
// slots. DESIGN.md documents why this substitution preserves the behaviour
// the paper's evaluation exercises.
package mrsim

import "fmt"

// MB is the simulator's megabyte (decimal, matching disk vendor units).
const MB = 1e6

// Cluster describes the simulated cluster and the cost-model calibration.
// Defaults mirror the paper's testbed shape: 50 worker nodes, each running
// at most 3 map and 2 reduce tasks concurrently (Section 7).
type Cluster struct {
	// Nodes is the number of worker nodes.
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode bound concurrent tasks.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// DiskMBps is sequential local-disk bandwidth per task.
	DiskMBps float64
	// NetMBps is shuffle network bandwidth per reduce task.
	NetMBps float64
	// TaskSetupSec is the fixed cost of launching one task (JVM start,
	// scheduling, commit) — the overhead vertical packing eliminates when
	// it removes whole task waves.
	TaskSetupSec float64
	// SortCPUPerRecord calibrates comparison cost: sorting n records costs
	// n·log2(n)·SortCPUPerRecord seconds.
	SortCPUPerRecord float64
	// CompressRatio is compressed size over uncompressed size.
	CompressRatio float64
	// CompressCPUSecPerMB is the CPU cost to (de)compress one MB.
	CompressCPUSecPerMB float64
	// VirtualScale is the data-scale substitution: each materialized
	// record stands for VirtualScale real records in all cost accounting,
	// letting laptop-sized in-memory data exercise the cost dynamics of
	// the paper's multi-hundred-GB datasets.
	VirtualScale float64
}

// DefaultCluster returns the evaluation cluster: 50 nodes x (3 map, 2
// reduce) slots, matching the concurrency shape of the paper's 51-node EC2
// deployment (one node is the master).
func DefaultCluster() *Cluster {
	return &Cluster{
		Nodes:               50,
		MapSlotsPerNode:     3,
		ReduceSlotsPerNode:  2,
		DiskMBps:            90,
		NetMBps:             45,
		TaskSetupSec:        2.0,
		SortCPUPerRecord:    40e-9,
		CompressRatio:       0.35,
		CompressCPUSecPerMB: 0.008,
		VirtualScale:        1,
	}
}

// TotalMapSlots returns cluster-wide concurrent map capacity.
func (c *Cluster) TotalMapSlots() int { return c.Nodes * c.MapSlotsPerNode }

// TotalReduceSlots returns cluster-wide concurrent reduce capacity.
func (c *Cluster) TotalReduceSlots() int { return c.Nodes * c.ReduceSlotsPerNode }

// SlotSpeeds expands the cluster's node population into per-slot speed
// factors for the map (reduce=false) or reduce (reduce=true) side. With
// no node classes every slot runs at speed 1 and the population is the
// cluster's own Nodes x slots-per-node; a non-empty class list replaces
// that population entirely, in declaration order, with each class
// contributing Nodes x per-node slots at its Speed (per-node counts
// default to the cluster's when a class leaves them zero).
func (c *Cluster) SlotSpeeds(classes []NodeClass, reduce bool) []float64 {
	if len(classes) == 0 {
		n := c.TotalMapSlots()
		if reduce {
			n = c.TotalReduceSlots()
		}
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 1
		}
		return speeds
	}
	var speeds []float64
	for _, nc := range classes {
		per := nc.MapSlotsPerNode
		if reduce {
			per = nc.ReduceSlotsPerNode
		}
		if per == 0 {
			if reduce {
				per = c.ReduceSlotsPerNode
			} else {
				per = c.MapSlotsPerNode
			}
		}
		for i := 0; i < nc.Nodes*per; i++ {
			speeds = append(speeds, nc.Speed)
		}
	}
	if len(speeds) == 0 {
		speeds = []float64{1}
	}
	return speeds
}

// Validate rejects non-positive parameters.
func (c *Cluster) Validate() error {
	switch {
	case c.Nodes < 1 || c.MapSlotsPerNode < 1 || c.ReduceSlotsPerNode < 1:
		return fmt.Errorf("mrsim: cluster must have positive nodes and slots")
	case c.DiskMBps <= 0 || c.NetMBps <= 0:
		return fmt.Errorf("mrsim: cluster bandwidths must be positive")
	case c.CompressRatio <= 0 || c.CompressRatio > 1:
		return fmt.Errorf("mrsim: compress ratio must be in (0,1]")
	case c.VirtualScale <= 0:
		return fmt.Errorf("mrsim: virtual scale must be positive")
	case c.TaskSetupSec < 0 || c.SortCPUPerRecord < 0 || c.CompressCPUSecPerMB < 0:
		return fmt.Errorf("mrsim: cost constants must be non-negative")
	}
	return nil
}

// Scale converts a materialized count or byte size to its virtual
// equivalent for cost accounting.
func (c *Cluster) Scale(n float64) float64 { return n * c.VirtualScale }
