package mrsim

import (
	"math"
	"math/rand"
	"testing"
)

// --- zero-model identity (unit level) -----------------------------------

// TestZeroModelMatchesSlotPool drives a zero-rate FaultModel and a plain
// SlotPool through the same placement sequence: every task's end time must
// agree bit for bit. This is the unit-level core of the zero-perturbation
// metamorphic suite (the engine- and optimizer-level halves live in the
// root package).
func TestZeroModelMatchesSlotPool(t *testing.T) {
	fm := &FaultModel{Seed: 11, Speculative: true}
	if err := fm.Validate(); err != nil {
		t.Fatal(err)
	}
	if fm.Perturbs() {
		t.Fatal("zero-rate model claims to perturb")
	}
	for _, slots := range []int{1, 2, 7, 32} {
		plain := NewSlotPool(slots)
		speeds := make([]float64, slots)
		for i := range speeds {
			speeds[i] = 1
		}
		faulty := NewFaultyPool(speeds)
		r := rand.New(rand.NewSource(int64(slots)))
		ready := 0.0
		for i := 0; i < 500; i++ {
			if r.Intn(4) == 0 {
				ready += r.Float64() * 10
			}
			dur := 0.1 + r.Float64()*20
			_, wantEnd := plain.Schedule(ready, dur)
			fate := fm.ScheduleTask(faulty, fm.TaskKey("J", false, i), ready, dur)
			if math.Float64bits(wantEnd) != math.Float64bits(fate.End) {
				t.Fatalf("slots=%d task %d: SlotPool end %.17g, zero-model end %.17g",
					slots, i, wantEnd, fate.End)
			}
			if fate.Attempts != 1 || fate.Failures != 0 || fate.Speculated || fate.FailedOut {
				t.Fatalf("slots=%d task %d: zero-rate fate has fault activity: %+v", slots, i, fate)
			}
		}
	}
}

// --- determinism and replay ---------------------------------------------

// TestScheduleTaskDeterministicReplay rewinds a FaultyPool with
// Snapshot/Restore and replays the same placement sequence: every fate must
// be identical, regardless of what ran in between — the contract the
// Monte-Carlo robustness evaluator is built on.
func TestScheduleTaskDeterministicReplay(t *testing.T) {
	fm := StandardFaultProfile(5)
	cl := DefaultCluster()
	pool := NewFaultyPool(fm.SlotSpeeds(cl, false))
	snap := pool.Snapshot()
	run := func() []TaskFate {
		pool.Restore(snap)
		fates := make([]TaskFate, 0, 200)
		for i := 0; i < 200; i++ {
			fates = append(fates, fm.ScheduleTask(pool, fm.TaskKey("J1", i%2 == 0, i), float64(i)/7, 3+float64(i%5)))
		}
		return fates
	}
	first := run()
	// Disturb the pool between replays; Restore must erase all of it.
	for i := 0; i < 50; i++ {
		fm.ScheduleTask(pool, fm.TaskKey("noise", false, i), 0, 100)
	}
	again := run()
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("task %d fate diverged across replay:\nfirst %+v\nagain %+v", i, first[i], again[i])
		}
	}
}

// TestPerturbSeedsDistinct: the derived Monte-Carlo seeds must differ from
// each other and from the base seed (a collision would silently halve the
// sample diversity).
func TestPerturbSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{42: true}
	for i := 0; i < 1000; i++ {
		s := PerturbSeed(42, i)
		if seen[s] {
			t.Fatalf("perturbation seed collision at i=%d: %d", i, s)
		}
		seen[s] = true
	}
}

// --- straggler-aware wave packing (satellite: exec.go blind spot) --------

// TestScheduleSpreadStragglerFirst pins the fix for the straggler blind
// spot in the wave-packing model: scheduling the straggler task after the
// uniform waves (the old scheduleJob ordering) charges it a full extra
// wave, while the engine actually runs it from wave one. The worked
// example: 2 slots, 6 tasks, avg 1s, one straggler of 10s. The engine
// finishes at 10s (straggler on one slot, five 1s tasks on the other);
// uniform-then-max finishes at 12s; ScheduleSpread matches the engine.
func TestScheduleSpreadStragglerFirst(t *testing.T) {
	const avg, max = 1.0, 10.0
	oldPool := NewSlotPool(2)
	uniformEnd := oldPool.ScheduleUniform(0, avg, 5)
	_, oldEnd := oldPool.Schedule(0, max)
	if uniformEnd != 3 || oldEnd != 12 {
		t.Fatalf("old ordering: uniform end %g (want 3), total %g (want 12)", uniformEnd, oldEnd)
	}
	newPool := NewSlotPool(2)
	if end := newPool.ScheduleSpread(0, avg, max, 6); end != 10 {
		t.Fatalf("ScheduleSpread = %g, want 10 (straggler scheduled in wave one)", end)
	}
}

// TestScheduleSpreadNeverWorseThanOldOrdering: across random skewed task
// sets, straggler-first packing is never later than uniform-then-max and
// never beats the trivial lower bounds (the straggler itself; total work
// over slots).
func TestScheduleSpreadNeverWorseThanOldOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		slots := 1 + r.Intn(12)
		count := 1 + r.Intn(40)
		avg := 0.5 + r.Float64()*5
		max := avg * (1 + r.Float64()*9)
		ready := r.Float64() * 20

		oldPool := NewSlotPool(slots)
		oldPool.ScheduleUniform(ready, avg, count-1)
		_, oldEnd := oldPool.Schedule(ready, max)

		newPool := NewSlotPool(slots)
		newEnd := newPool.ScheduleSpread(ready, avg, max, count)

		if newEnd > oldEnd+1e-9 {
			t.Fatalf("trial %d (slots=%d count=%d avg=%g max=%g): spread %g worse than old %g",
				trial, slots, count, avg, max, newEnd, oldEnd)
		}
		work := max + avg*float64(count-1)
		lower := math.Max(ready+max, ready+work/float64(slots))
		if newEnd < lower-1e-9 {
			t.Fatalf("trial %d: spread %g beats lower bound %g", trial, newEnd, lower)
		}
	}
}

// --- fault schedule invariants (fuzz) -----------------------------------

// FuzzFaultSchedule drives ScheduleTask with arbitrary model parameters and
// placement sequences and checks the invariants no perturbation may break:
// attempts bounded by the retry budget, ends after starts, no task both
// winning speculation and failing out, per-slot clocks monotone, and the
// whole schedule a pure function of its inputs (bit-identical on replay).
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), 0.02, 3, 0.1, 0.5, true, uint8(20))
	f.Add(int64(7), 0.5, 0, 0.0, 0.0, false, uint8(5))
	f.Add(int64(42), 0.0, 2, 0.9, 1.5, true, uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, failProb float64, retries int,
		stragProb, sigma float64, spec bool, n uint8) {
		fm := &FaultModel{
			Seed:            seed,
			TaskFailureProb: failProb,
			MaxRetries:      retries,
			StragglerProb:   stragProb,
			StragglerSigma:  sigma,
			Speculative:     spec,
		}
		if fm.Validate() != nil {
			t.Skip("invalid model")
		}
		speeds := []float64{1, 1, 0.7, 1.3}
		run := func() ([]TaskFate, []float64) {
			pool := NewFaultyPool(speeds)
			fates := make([]TaskFate, 0, int(n))
			for i := 0; i < int(n); i++ {
				ready := float64(i%7) * 1.5
				dur := 1 + float64(i%4)
				fates = append(fates, fm.ScheduleTask(pool, fm.TaskKey("F", i%3 == 0, i), ready, dur))
			}
			frees := make([]float64, len(speeds))
			for range speeds {
				slot, start, _ := pool.Acquire(0)
				frees[slot] = start
			}
			return fates, frees
		}
		fates, frees := run()
		for i, fate := range fates {
			ready := float64(i%7) * 1.5
			if fate.Start < ready {
				t.Errorf("task %d started at %g before ready %g", i, fate.Start, ready)
			}
			if fate.End < fate.Start {
				t.Errorf("task %d ended at %g before start %g", i, fate.End, fate.Start)
			}
			if fate.Attempts > fm.MaxRetries+1 {
				t.Errorf("task %d launched %d attempts, retry bound %d", i, fate.Attempts, fm.MaxRetries)
			}
			if fate.Failures > fate.Attempts {
				t.Errorf("task %d: %d failures out of %d attempts", i, fate.Failures, fate.Attempts)
			}
			if fate.FailedOut {
				if fate.Failures != fm.MaxRetries+1 {
					t.Errorf("task %d failed out after %d failures, want %d", i, fate.Failures, fm.MaxRetries+1)
				}
				if fate.Speculated || fate.SpecWon {
					t.Errorf("task %d both failed out and speculated: %+v", i, fate)
				}
			}
			if fate.SpecWon && !fate.Speculated {
				t.Errorf("task %d won speculation without speculating", i)
			}
		}
		for slot, free := range frees {
			if free < 0 || math.IsNaN(free) || math.IsInf(free, 0) {
				t.Errorf("slot %d clock not finite/monotone: %g", slot, free)
			}
		}
		fates2, frees2 := run()
		for i := range fates {
			if fates[i] != fates2[i] {
				t.Errorf("task %d fate not deterministic: %+v vs %+v", i, fates[i], fates2[i])
			}
		}
		for i := range frees {
			if math.Float64bits(frees[i]) != math.Float64bits(frees2[i]) {
				t.Errorf("slot %d clock not deterministic: %g vs %g", i, frees[i], frees2[i])
			}
		}
	})
}

// --- heterogeneous slot expansion ---------------------------------------

func TestSlotSpeedsExpansion(t *testing.T) {
	cl := DefaultCluster()
	// No classes: uniform pool at the cluster's own slot counts.
	uniform := cl.SlotSpeeds(nil, false)
	if len(uniform) != cl.TotalMapSlots() {
		t.Fatalf("uniform map slots = %d, want %d", len(uniform), cl.TotalMapSlots())
	}
	for _, s := range uniform {
		if s != 1 {
			t.Fatalf("uniform speed %g, want 1", s)
		}
	}
	// Classes replace the population: counts and speeds per class.
	classes := []NodeClass{
		{Name: "fast", Nodes: 3, Speed: 1.0, MapSlotsPerNode: 2},
		{Name: "slow", Nodes: 2, Speed: 0.5}, // cluster-default slots
	}
	got := cl.SlotSpeeds(classes, false)
	want := 3*2 + 2*cl.MapSlotsPerNode
	if len(got) != want {
		t.Fatalf("heterogeneous map slots = %d, want %d", len(got), want)
	}
	fast, slow := 0, 0
	for _, s := range got {
		switch s {
		case 1.0:
			fast++
		case 0.5:
			slow++
		default:
			t.Fatalf("unexpected speed %g", s)
		}
	}
	if fast != 6 || slow != 2*cl.MapSlotsPerNode {
		t.Fatalf("speed split %d fast / %d slow, want 6 / %d", fast, slow, 2*cl.MapSlotsPerNode)
	}
}

// TestFaultProfilesValidate: every named profile must pass its own
// validation and actually perturb.
func TestFaultProfilesValidate(t *testing.T) {
	for _, name := range []string{"standard", "failures", "stragglers"} {
		fm, err := FaultProfile(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := fm.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if !fm.Perturbs() {
			t.Errorf("profile %s does not perturb", name)
		}
	}
	if _, err := FaultProfile("nope", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}
