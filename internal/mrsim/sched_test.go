package mrsim

import (
	"math/rand"
	"testing"
)

// replaySchedule drives a pool through a deterministic mixed workload of
// Schedule and ScheduleUniform calls (including counts large enough to take
// ScheduleUniform's analytic water-level path) and returns every value the
// pool produced.
func replaySchedule(p *SlotPool, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var out []float64
	ready := 0.0
	for i := 0; i < 40; i++ {
		switch i % 3 {
		case 0:
			s, e := p.Schedule(ready, 1+rng.Float64()*5)
			out = append(out, s, e)
			ready = e * 0.75
		case 1:
			e := p.ScheduleUniform(ready, 0.5+rng.Float64()*2, rng.Intn(8))
			out = append(out, e)
		default:
			// Large count: exercises the binary-search assignment whose
			// per-slot trimming is sensitive to the heap's slice layout.
			e := p.ScheduleUniform(ready, 0.1+rng.Float64(), 40+rng.Intn(100))
			out = append(out, e)
		}
	}
	return out
}

// TestSlotPoolSnapshotRestoreExactReplay is the property the incremental
// What-if estimator depends on: restoring a snapshot and replaying the same
// operations must yield bit-identical results, every time, including through
// ScheduleUniform's layout-sensitive analytic path.
func TestSlotPoolSnapshotRestoreExactReplay(t *testing.T) {
	pool := NewSlotPool(12)
	// Put the pool in a non-trivial state first.
	replaySchedule(pool, 1)
	snap := pool.Snapshot()

	want := replaySchedule(pool, 2)
	for round := 0; round < 3; round++ {
		pool.Restore(snap)
		got := replaySchedule(pool, 2)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: result %d = %.17g, want %.17g", round, i, got[i], want[i])
			}
		}
	}
}

// TestSlotPoolSnapshotIsolated: mutating the pool after Snapshot must not
// corrupt the snapshot (and Restore must not alias it either).
func TestSlotPoolSnapshotIsolated(t *testing.T) {
	pool := NewSlotPool(4)
	pool.Schedule(0, 5)
	snap := pool.Snapshot()
	free := pool.EarliestFree()
	pool.ScheduleUniform(0, 3, 50)
	pool.Restore(snap)
	if got := pool.EarliestFree(); got != free {
		t.Fatalf("restored earliest-free = %v, want %v", got, free)
	}
	// Mutating after restore must not write through into the snapshot.
	pool.Schedule(0, 100)
	pool.Restore(snap)
	if got := pool.EarliestFree(); got != free {
		t.Fatalf("snapshot corrupted by post-restore mutation: %v, want %v", got, free)
	}
}

// TestSlotPoolRestoreResizes: restoring onto a pool whose heap length
// diverged (defensive path) reallocates correctly.
func TestSlotPoolRestoreResizes(t *testing.T) {
	a := NewSlotPool(8)
	a.Schedule(0, 2)
	snap := a.Snapshot()
	b := NewSlotPool(3)
	b.Restore(snap)
	if b.EarliestFree() != a.EarliestFree() {
		t.Fatalf("resized restore: earliest-free %v, want %v", b.EarliestFree(), a.EarliestFree())
	}
}
