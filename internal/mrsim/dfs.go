package mrsim

import (
	"fmt"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Partition is one DFS partition (file) of a stored dataset.
type Partition struct {
	// Pairs are the materialized records, in on-disk order.
	Pairs []keyval.Pair
	// Bytes is the encoded (uncompressed, unscaled) size of Pairs.
	Bytes int64
	// Bounds are the key bounds covered by this partition when the dataset
	// is range partitioned; zero bounds mean unknown/unbounded.
	Bounds keyval.PartitionBounds
}

// NewPartition builds a partition and computes its encoded size.
func NewPartition(pairs []keyval.Pair) *Partition {
	return &Partition{Pairs: pairs, Bytes: keyval.PairsSize(pairs)}
}

// Stored is a dataset materialized on the simulated DFS.
type Stored struct {
	// ID is the dataset descriptor.
	ID string
	// Parts are the partitions in partition order.
	Parts []*Partition
	// Layout is the physical design the data actually satisfies.
	Layout wf.Layout
}

// Records returns the total materialized record count.
func (s *Stored) Records() int64 {
	var n int64
	for _, p := range s.Parts {
		n += int64(len(p.Pairs))
	}
	return n
}

// Bytes returns the total encoded (uncompressed, unscaled) size.
func (s *Stored) Bytes() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.Bytes
	}
	return n
}

// AllPairs concatenates all partitions, for tests and result comparison.
func (s *Stored) AllPairs() []keyval.Pair {
	var out []keyval.Pair
	for _, p := range s.Parts {
		out = append(out, p.Pairs...)
	}
	return out
}

// DFS is the simulated distributed file system: named datasets made of
// partitions. It is the persistent storage layer between workflow jobs.
type DFS struct {
	data map[string]*Stored
}

// NewDFS returns an empty file system.
func NewDFS() *DFS {
	return &DFS{data: make(map[string]*Stored)}
}

// Put stores (or replaces) a dataset.
func (f *DFS) Put(id string, parts []*Partition, layout wf.Layout) {
	f.data[id] = &Stored{ID: id, Parts: parts, Layout: layout}
}

// Get returns a stored dataset.
func (f *DFS) Get(id string) (*Stored, bool) {
	s, ok := f.data[id]
	return s, ok
}

// Delete removes a dataset.
func (f *DFS) Delete(id string) { delete(f.data, id) }

// IDs lists stored dataset IDs in sorted order.
func (f *DFS) IDs() []string {
	out := make([]string, 0, len(f.data))
	for id := range f.data {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Clone returns a DFS sharing the (immutable) record slices but with
// independent structure, so one base DFS can serve many workflow runs.
func (f *DFS) Clone() *DFS {
	out := NewDFS()
	for id, s := range f.data {
		parts := make([]*Partition, len(s.Parts))
		for i, p := range s.Parts {
			cp := *p
			parts[i] = &cp
		}
		out.data[id] = &Stored{ID: id, Parts: parts, Layout: s.Layout.Clone()}
	}
	return out
}

// IngestSpec tells Ingest how to lay out a generated base dataset.
type IngestSpec struct {
	// NumPartitions is the target partition count (>=1).
	NumPartitions int
	// KeyFields names the record key fields, enabling the layout's
	// partition/sort names to be resolved to positions.
	KeyFields []string
	// Layout requests the physical design. For RangePartition with nil
	// SplitPoints, equi-depth points are derived from the data.
	Layout wf.Layout
}

// Ingest materializes a base dataset with the requested layout: it
// partitions pairs by the layout's partition fields (hash or range), sorts
// each partition by the sort fields, and records range bounds.
func (f *DFS) Ingest(id string, pairs []keyval.Pair, spec IngestSpec) error {
	if spec.NumPartitions < 1 {
		return fmt.Errorf("mrsim: ingest %q: NumPartitions must be >= 1", id)
	}
	layout := spec.Layout.Clone()
	var partIdx []int
	if len(layout.PartFields) > 0 {
		var ok bool
		partIdx, ok = wf.IndicesOf(spec.KeyFields, layout.PartFields)
		if !ok {
			return fmt.Errorf("mrsim: ingest %q: partition fields %v not in key schema %v",
				id, layout.PartFields, spec.KeyFields)
		}
	}
	pspec := keyval.PartitionSpec{Type: layout.PartType, KeyFields: partIdx}
	n := spec.NumPartitions
	if layout.PartType == keyval.RangePartition && len(layout.PartFields) > 0 {
		if layout.SplitPoints == nil {
			keys := make([]keyval.Tuple, len(pairs))
			for i, p := range pairs {
				keys[i] = p.Key
			}
			layout.SplitPoints = keyval.EquiDepthSplitPoints(keys, partIdx, n)
		}
		pspec.SplitPoints = layout.SplitPoints
		n = len(layout.SplitPoints) + 1
	}
	buckets := make([][]keyval.Pair, n)
	if len(layout.PartFields) == 0 {
		// Unpartitioned data: round-robin into files of similar size.
		for i, p := range pairs {
			b := i % n
			buckets[b] = append(buckets[b], p)
		}
	} else {
		for _, p := range pairs {
			b := pspec.Partition(p.Key, n)
			buckets[b] = append(buckets[b], p)
		}
	}
	var sortIdx []int
	if len(layout.SortFields) > 0 {
		var ok bool
		sortIdx, ok = wf.IndicesOf(spec.KeyFields, layout.SortFields)
		if !ok {
			return fmt.Errorf("mrsim: ingest %q: sort fields %v not in key schema %v",
				id, layout.SortFields, spec.KeyFields)
		}
	}
	parts := make([]*Partition, n)
	var bounds []keyval.PartitionBounds
	if layout.PartType == keyval.RangePartition && len(layout.PartFields) > 0 {
		bounds = keyval.RangeBounds(layout.SplitPoints)
	}
	for i, b := range buckets {
		if sortIdx != nil {
			keyval.SortPairs(b, sortIdx)
		}
		parts[i] = NewPartition(b)
		if bounds != nil {
			parts[i].Bounds = bounds[i]
		}
	}
	f.Put(id, parts, layout)
	return nil
}
