package mrsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// keySampleSize is the reservoir size for profile key samples. It bounds
// both the quality of derived range split points and the resolution of
// skew estimates, so it is sized like production samplers (TeraSort-style
// partitioners sample thousands of keys).
const keySampleSize = 1500

// JobObserver receives engine progress events. Callbacks run synchronously
// from the simulation loop, so implementations should return quickly.
type JobObserver interface {
	// JobFinished fires after each job completes, with its full report.
	JobFinished(r *JobReport)
}

// Engine executes workflows on a simulated cluster over a simulated DFS.
type Engine struct {
	Cluster *Cluster
	DFS     *DFS
	// Observer, when non-nil, receives a callback after every job.
	Observer JobObserver
	// Fault, when non-nil, perturbs task scheduling: failures with
	// bounded retries, lognormal stragglers, heterogeneous slot speeds,
	// and speculative re-execution. Only simulated timings move — the
	// data path is untouched — and a model with all rates zero and no
	// node classes reproduces the nil-model timings bit for bit.
	Fault *FaultModel
	// RecordTaskEvents, when true, collects one TaskEvent per simulated
	// task into the run report, in scheduling order.
	RecordTaskEvents bool
}

// NewEngine builds an engine.
func NewEngine(c *Cluster, dfs *DFS) *Engine {
	return &Engine{Cluster: c, DFS: dfs}
}

// TagStats aggregates per-tag dataflow statistics over a whole job run.
type TagStats struct {
	// MapByInput holds map-pipeline stats per input dataset feeding the tag.
	MapByInput map[string]*PipeStats
	// Reduce holds reduce-pipeline stats (zero for map-only tags).
	Reduce PipeStats
	// CombineIn/CombineOut count records entering and surviving the
	// combiner (equal when no combiner ran).
	CombineIn, CombineOut int64
	// MapKeySample is a uniform sample of map-output keys for this tag.
	MapKeySample []keyval.Tuple
}

// MapTotals sums the per-input map stats.
func (t *TagStats) MapTotals() PipeStats {
	var out PipeStats
	for _, s := range t.MapByInput {
		out.Add(*s)
	}
	return out
}

// JobReport records the execution of one job: task counts, simulated
// timings, and per-tag dataflow statistics.
type JobReport struct {
	JobID          string
	NumMapTasks    int
	NumReduceTasks int
	// Start and End are simulated times; MapsDone is when the map phase
	// finished (reduce tasks become ready then).
	Start, End, MapsDone float64
	// MapTaskSeconds/ReduceTaskSeconds sum task durations (work, not span).
	MapTaskSeconds, ReduceTaskSeconds float64
	// MaxMapTaskSec/MaxReduceTaskSec expose straggler effects (skew);
	// the What-if replay prices them into wave packing with
	// SlotPool.ScheduleSpread (the straggler holds a slot from wave one).
	MaxMapTaskSec, MaxReduceTaskSec float64
	// TaskFailures/TaskRetries count failed attempts and the re-executions
	// they triggered; SpeculativeTasks/SpeculativeWins count tasks that
	// launched a backup and backups that committed. All zero when the
	// engine runs without a FaultModel.
	TaskFailures, TaskRetries         int
	SpeculativeTasks, SpeculativeWins int
	// ShuffleBytesVirtual is the total on-wire shuffle volume.
	ShuffleBytesVirtual float64
	// MapInputBytes is the real (unscaled, uncompressed) input volume read.
	MapInputBytes int64
	// PrunedPartitions counts input partitions skipped by partition pruning.
	PrunedPartitions int
	// Tags holds per-tag dataflow statistics.
	Tags map[int]*TagStats
}

// Span returns End-Start.
func (r *JobReport) Span() float64 { return r.End - r.Start }

// RunReport is the result of executing a workflow.
type RunReport struct {
	Workflow string
	// Makespan is the simulated completion time of the whole workflow.
	Makespan float64
	Jobs     []*JobReport
	// TaskEvents holds the per-task trace when Engine.RecordTaskEvents is
	// set, in scheduling order (deterministic for a given plan and model).
	TaskEvents []TaskEvent
}

// TaskEvent records one simulated task placement for trace-based replay
// testing.
type TaskEvent struct {
	Job        string
	Reduce     bool
	Index      int
	Start, End float64
	// Attempts/Failures and the speculation flags mirror TaskFate
	// (Attempts is 1 with a nil or quiet fault model).
	Attempts, Failures  int
	Speculated, SpecWon bool
}

// TraceBytes renders the task-event trace in a fixed format, one line per
// task — the byte-identical replay contract is asserted on this form.
func (r *RunReport) TraceBytes() []byte {
	var b []byte
	for _, ev := range r.TaskEvents {
		kind := "map"
		if ev.Reduce {
			kind = "red"
		}
		b = append(b, fmt.Sprintf("%s %s[%d] %.9g %.9g a=%d f=%d spec=%v won=%v\n",
			ev.Job, kind, ev.Index, ev.Start, ev.End,
			ev.Attempts, ev.Failures, ev.Speculated, ev.SpecWon)...)
	}
	return b
}

// Job returns the report for a job ID, or nil.
func (r *RunReport) Job(id string) *JobReport {
	for _, j := range r.Jobs {
		if j.JobID == id {
			return j
		}
	}
	return nil
}

// TotalTaskSeconds sums all task work across the run.
func (r *RunReport) TotalTaskSeconds() float64 {
	var t float64
	for _, j := range r.Jobs {
		t += j.MapTaskSeconds + j.ReduceTaskSeconds
	}
	return t
}

// RunWorkflow validates and executes the workflow, materializing every
// job's outputs on the DFS and returning simulated timings.
func (e *Engine) RunWorkflow(w *wf.Workflow) (*RunReport, error) {
	return e.RunWorkflowContext(context.Background(), w)
}

// RunWorkflowContext is RunWorkflow under a context: cancellation is
// checked between jobs and between task scheduling waves, so a long
// simulated run stops promptly with ctx.Err(). Outputs of jobs completed
// before cancellation remain on the DFS; the workflow is not modified.
func (e *Engine) RunWorkflowContext(ctx context.Context, w *wf.Workflow) (*RunReport, error) {
	if err := e.Cluster.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, d := range w.Datasets {
		if d.Base {
			if _, ok := e.DFS.Get(d.ID); !ok {
				return nil, fmt.Errorf("mrsim: base dataset %q not on DFS", d.ID)
			}
		}
	}
	sched := &taskSched{
		mapPool: NewSlotPool(e.Cluster.TotalMapSlots()),
		redPool: NewSlotPool(e.Cluster.TotalReduceSlots()),
		record:  e.RecordTaskEvents,
	}
	if e.Fault != nil {
		if err := e.Fault.Validate(); err != nil {
			return nil, err
		}
		sched.fm = e.Fault
		sched.fMap = NewFaultyPool(e.Fault.SlotSpeeds(e.Cluster, false))
		sched.fRed = NewFaultyPool(e.Fault.SlotSpeeds(e.Cluster, true))
	}
	ready := make(map[string]float64)
	report := &RunReport{Workflow: w.Name}
	for _, job := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var jobReady float64
		for _, in := range job.Inputs() {
			if t := ready[in]; t > jobReady {
				jobReady = t
			}
		}
		jr, end, err := e.runJob(ctx, w, job, jobReady, sched)
		if err != nil {
			return nil, fmt.Errorf("mrsim: job %s: %w", job.ID, err)
		}
		report.Jobs = append(report.Jobs, jr)
		for _, out := range job.Outputs() {
			ready[out] = end
		}
		if end > report.Makespan {
			report.Makespan = end
		}
		if e.Observer != nil {
			e.Observer.JobFinished(jr)
		}
	}
	report.TaskEvents = sched.events
	return report, nil
}

// taskSched dispatches task placements either to the plain slot pools or,
// when a FaultModel is attached, to the perturbed heterogeneous pools.
// The indirection keeps the fault-free path running exactly the old slot
// arithmetic, which the zero-perturbation metamorphic suite pins down.
type taskSched struct {
	mapPool, redPool *SlotPool
	fm               *FaultModel
	fMap, fRed       *FaultyPool
	record           bool
	events           []TaskEvent
}

// place schedules one task and returns its end time. With a fault model,
// a task that exhausts its retry budget fails the run.
func (s *taskSched) place(jr *JobReport, reduce bool, index int, ready, dur float64) (float64, error) {
	if s.fm == nil {
		pool := s.mapPool
		if reduce {
			pool = s.redPool
		}
		start, end := pool.Schedule(ready, dur)
		if s.record {
			s.events = append(s.events, TaskEvent{Job: jr.JobID, Reduce: reduce,
				Index: index, Start: start, End: end, Attempts: 1})
		}
		return end, nil
	}
	pool := s.fMap
	if reduce {
		pool = s.fRed
	}
	fate := s.fm.ScheduleTask(pool, s.fm.TaskKey(jr.JobID, reduce, index), ready, dur)
	jr.TaskFailures += fate.Failures
	if fate.Speculated {
		jr.SpeculativeTasks++
		if fate.SpecWon {
			jr.SpeculativeWins++
		}
	}
	if s.record {
		s.events = append(s.events, TaskEvent{Job: jr.JobID, Reduce: reduce,
			Index: index, Start: fate.Start, End: fate.End,
			Attempts: fate.Attempts, Failures: fate.Failures,
			Speculated: fate.Speculated, SpecWon: fate.SpecWon})
	}
	if fate.FailedOut {
		kind := "map"
		if reduce {
			kind = "reduce"
		}
		return 0, fmt.Errorf("%s task %d failed %d attempts (retry bound %d, fault seed %d)",
			kind, index, fate.Attempts, s.fm.MaxRetries, s.fm.Seed)
	}
	jr.TaskRetries += fate.Failures
	return fate.End, nil
}

// splitRec carries one record with its source dataset for branch routing.
type splitRec struct {
	input string
	pair  keyval.Pair
}

// mapSplit is the input of one map task.
type mapSplit struct {
	recs       []splitRec
	bytes      int64           // real encoded bytes
	compressed map[string]bool // per-input on-disk compression
	perInput   map[string]int64
	srcBounds  keyval.PartitionBounds // bounds of source partition (aligned)
}

// tagRuntime caches per-tag execution state for one job.
type tagRuntime struct {
	group    *wf.ReduceGroup
	numParts int
	sortIdx  []int // resolved lazily against key width
	stats    *TagStats
	sample   *reservoir
}

func (e *Engine) runJob(ctx context.Context, w *wf.Workflow, job *wf.Job, jobReady float64, sched *taskSched) (*JobReport, float64, error) {
	cfg := job.Config
	jr := &JobReport{JobID: job.ID, Start: jobReady, Tags: make(map[int]*TagStats)}

	// Resolve per-tag runtime info and the job-wide reduce task count.
	tags := make(map[int]*tagRuntime)
	var tagOrder []int
	numReduce := 0
	hasReduce := false
	for i := range job.ReduceGroups {
		g := &job.ReduceGroups[i]
		ts := &TagStats{MapByInput: make(map[string]*PipeStats)}
		jr.Tags[g.Tag] = ts
		rt := &tagRuntime{
			group:  g,
			stats:  ts,
			sample: newReservoir(keySampleSize, sampleSeed(job.ID, g.Tag)),
		}
		tags[g.Tag] = rt
		tagOrder = append(tagOrder, g.Tag)
		if !g.MapOnly() {
			hasReduce = true
			n := g.Part.NumPartitions(cfg.NumReduceTasks)
			rt.numParts = n
			if n > numReduce {
				numReduce = n
			}
		}
	}
	sort.Ints(tagOrder)
	if hasReduce {
		// Hash-partitioned tags span the full reduce task count.
		for _, tag := range tagOrder {
			rt := tags[tag]
			if !rt.group.MapOnly() && rt.group.Part.Type == keyval.HashPartition {
				rt.numParts = numReduce
			}
		}
	}

	splits, err := e.buildSplits(w, job, jr)
	if err != nil {
		return nil, 0, err
	}
	jr.NumMapTasks = len(splits)

	// Execute map tasks.
	type mapTaskOut struct {
		buckets map[int][][]keyval.Pair // tag -> partition -> pairs
		mapOnly map[int][]keyval.Pair   // tag -> output pairs
	}
	taskOuts := make([]mapTaskOut, len(splits))
	mapsDone := jobReady
	for ti, sp := range splits {
		// Cancellation between map scheduling waves: each iteration places
		// one simulated task, so this bounds the wait to one task's work.
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		out := mapTaskOut{
			buckets: make(map[int][][]keyval.Pair),
			mapOnly: make(map[int][]keyval.Pair),
		}
		for _, tag := range tagOrder {
			if rt := tags[tag]; !rt.group.MapOnly() {
				out.buckets[tag] = make([][]keyval.Pair, rt.numParts)
			}
		}
		// Map-side group chains: intra-packed reduce pipelines that run
		// inside the map task on the merged branch output stream.
		groupChains := make(map[int]*chain)
		for _, tag := range tagOrder {
			if rt := tags[tag]; rt.group.RunsMapSide && len(rt.group.Stages) > 0 {
				t := tag
				groupChains[tag] = newChain(rt.group.Stages, func(p keyval.Pair) {
					out.mapOnly[t] = append(out.mapOnly[t], p)
				})
			}
		}
		// One chain per branch, fresh per task so stats stay per-task.
		type branchExec struct {
			branch *wf.MapBranch
			ch     *chain
		}
		var execs []branchExec
		var taskCPU float64
		for bi := range job.MapBranches {
			b := &job.MapBranches[bi]
			rt := tags[b.Tag]
			g := rt.group
			tag := b.Tag
			var sink func(keyval.Pair)
			switch {
			case groupChains[tag] != nil:
				gc := groupChains[tag]
				sink = func(p keyval.Pair) {
					rt.sample.add(p.Key)
					gc.head(p)
				}
			case g.MapOnly():
				sink = func(p keyval.Pair) {
					rt.sample.add(p.Key)
					out.mapOnly[tag] = append(out.mapOnly[tag], p)
				}
			default:
				n := rt.numParts
				spec := g.Part
				sink = func(p keyval.Pair) {
					rt.sample.add(p.Key)
					r := spec.Partition(p.Key, n)
					out.buckets[tag][r] = append(out.buckets[tag][r], p)
				}
			}
			execs = append(execs, branchExec{branch: b, ch: newChain(b.Stages, sink)})
		}
		for _, rec := range sp.recs {
			for _, be := range execs {
				if be.branch.Input == rec.input {
					be.ch.head(rec.pair)
				}
			}
		}
		for _, be := range execs {
			be.ch.close()
			taskCPU += be.ch.stats.CPU
			st := tags[be.branch.Tag].stats
			ps := st.MapByInput[be.branch.Input]
			if ps == nil {
				ps = &PipeStats{}
				st.MapByInput[be.branch.Input] = ps
			}
			ps.Add(be.ch.stats)
		}
		for _, tag := range tagOrder {
			gc := groupChains[tag]
			if gc == nil {
				continue
			}
			gc.close()
			taskCPU += gc.stats.CPU
			tags[tag].stats.Reduce.Add(gc.stats)
		}

		// Sort, combine, and size the map output. Tags iterate in sorted
		// order so the combiner CPU folded into taskCPU accumulates in a
		// fixed float order — map-order iteration left multi-tag task
		// durations (and so reported makespans) varying per process.
		var outRecords, outBytes int64
		for _, tag := range tagOrder {
			rt := tags[tag]
			g := rt.group
			if g.MapOnly() {
				continue
			}
			for r := range out.buckets[tag] {
				bucket := out.buckets[tag][r]
				if len(bucket) == 0 {
					continue
				}
				sortIdx := resolveSortFields(rt, bucket[0].Key)
				keyval.SortPairs(bucket, sortIdx)
				if cfg.UseCombiner && g.Combiner != nil {
					combined, in, cpu := runCombiner(*g.Combiner, bucket)
					rt.stats.CombineIn += in
					rt.stats.CombineOut += int64(len(combined))
					taskCPU += cpu
					bucket = combined
					out.buckets[tag][r] = bucket
				}
				outRecords += int64(len(bucket))
				outBytes += keyval.PairsSize(bucket)
			}
		}

		// Map task duration.
		c := e.Cluster
		dur := c.TaskSetupSec
		for input, b := range sp.perInput {
			dur += c.ReadTime(c.Scale(float64(b)), sp.compressed[input])
		}
		dur += c.Scale(taskCPU)
		if outRecords > 0 {
			dur += c.SortCPU(c.Scale(float64(outRecords)))
			dur += c.SpillIOTime(c.Scale(float64(outBytes)), cfg.SortBufferMB, cfg.IOSortFactor, cfg.CompressMapOutput)
		}
		for _, tag := range tagOrder {
			if pairs := out.mapOnly[tag]; len(pairs) > 0 {
				dur += c.WriteTime(c.Scale(float64(keyval.PairsSize(pairs))), cfg.CompressOutput)
			}
		}
		end, err := sched.place(jr, false, ti, jobReady, dur)
		if err != nil {
			return nil, 0, err
		}
		if end > mapsDone {
			mapsDone = end
		}
		jr.MapTaskSeconds += dur
		if dur > jr.MaxMapTaskSec {
			jr.MaxMapTaskSec = dur
		}
		jr.MapInputBytes += sp.bytes
		taskOuts[ti] = out
	}
	jr.MapsDone = mapsDone

	// Materialize map-only outputs: one partition per map task.
	for _, tag := range tagOrder {
		rt := tags[tag]
		if !rt.group.MapOnly() {
			continue
		}
		parts := make([]*Partition, len(splits))
		for ti := range splits {
			p := NewPartition(taskOuts[ti].mapOnly[tag])
			p.Bounds = splits[ti].srcBounds
			parts[ti] = p
		}
		layout := e.mapOnlyLayout(w, job, rt.group)
		e.DFS.Put(rt.group.Output, parts, layout)
		rt.stats.MapKeySample = rt.sample.keys
	}

	end := mapsDone
	if hasReduce {
		jr.NumReduceTasks = numReduce
		outParts := make(map[int][]*Partition) // tag -> partitions
		for _, tag := range tagOrder {
			rt := tags[tag]
			if !rt.group.MapOnly() {
				outParts[tag] = make([]*Partition, rt.numParts)
			}
		}
		c := e.Cluster
		for r := 0; r < numReduce; r++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			var shuffleBytes int64
			var fetchRuns int
			var taskCPU float64
			var outBytes int64
			for _, tag := range tagOrder {
				rt := tags[tag]
				g := rt.group
				if g.MapOnly() || r >= rt.numParts {
					continue
				}
				var input []keyval.Pair
				for ti := range taskOuts {
					seg := taskOuts[ti].buckets[tag][r]
					if len(seg) > 0 {
						input = append(input, seg...)
						fetchRuns++
					}
				}
				shuffleBytes += keyval.PairsSize(input)
				if len(input) > 0 {
					sortIdx := resolveSortFields(rt, input[0].Key)
					keyval.SortPairs(input, sortIdx)
				}
				var outputs []keyval.Pair
				ch := newChain(g.Stages, func(p keyval.Pair) { outputs = append(outputs, p) })
				for _, p := range input {
					ch.head(p)
				}
				ch.close()
				rt.stats.Reduce.Add(ch.stats)
				taskCPU += ch.stats.CPU
				outBytes += keyval.PairsSize(outputs)
				outParts[tag][r] = NewPartition(outputs)
			}
			wire := c.Scale(float64(shuffleBytes))
			var decompCPU float64
			if cfg.CompressMapOutput {
				decompCPU = wire / MB * c.CompressCPUSecPerMB
				wire *= c.CompressRatio
			}
			dur := c.TaskSetupSec +
				c.NetTime(wire) + decompCPU +
				c.MergeIOTime(c.Scale(float64(shuffleBytes)), fetchRuns, cfg.IOSortFactor) +
				c.Scale(taskCPU) +
				c.WriteTime(c.Scale(float64(outBytes)), cfg.CompressOutput)
			tend, terr := sched.place(jr, true, r, mapsDone, dur)
			if terr != nil {
				return nil, 0, terr
			}
			if tend > end {
				end = tend
			}
			jr.ReduceTaskSeconds += dur
			if dur > jr.MaxReduceTaskSec {
				jr.MaxReduceTaskSec = dur
			}
			jr.ShuffleBytesVirtual += wire
		}
		// Materialize reduce outputs.
		for _, tag := range tagOrder {
			rt := tags[tag]
			g := rt.group
			if g.MapOnly() {
				continue
			}
			parts := outParts[tag]
			for i, p := range parts {
				if p == nil {
					parts[i] = NewPartition(nil)
				}
			}
			if g.Part.Type == keyval.RangePartition {
				bounds := keyval.RangeBounds(g.Part.SplitPoints)
				for i := range parts {
					if i < len(bounds) {
						parts[i].Bounds = bounds[i]
					}
				}
			}
			e.DFS.Put(g.Output, parts, wf.DeriveGroupOutputLayout(*g, cfg))
			rt.stats.MapKeySample = rt.sample.keys
		}
	}
	jr.End = end
	return jr, end, nil
}

// buildSplits constructs the map-task inputs: aligned one-task-per-partition
// when a vertical packing postcondition requires it, otherwise size-based
// splits with partition pruning against filter annotations.
func (e *Engine) buildSplits(w *wf.Workflow, job *wf.Job, jr *JobReport) ([]mapSplit, error) {
	inputs := job.Inputs()
	if job.AlignMapToInput {
		return e.buildAlignedSplits(w, job, inputs)
	}
	splitBytes := int64(float64(job.Config.SplitSizeMB) * MB / e.Cluster.VirtualScale)
	if splitBytes < 1 {
		splitBytes = 1
	}
	var splits []mapSplit
	for _, in := range inputs {
		stored, ok := e.DFS.Get(in)
		if !ok {
			return nil, fmt.Errorf("input dataset %q not on DFS", in)
		}
		for _, part := range stored.Parts {
			if e.canPrune(job, in, stored.Layout, part) {
				jr.PrunedPartitions++
				continue
			}
			// Chunk the partition without crossing partition boundaries.
			start := 0
			var bytes int64
			for i, p := range part.Pairs {
				bytes += keyval.PairSize(p)
				if bytes >= splitBytes || i == len(part.Pairs)-1 {
					recs := make([]splitRec, 0, i-start+1)
					for _, q := range part.Pairs[start : i+1] {
						recs = append(recs, splitRec{input: in, pair: q})
					}
					splits = append(splits, mapSplit{
						recs:       recs,
						bytes:      bytes,
						compressed: map[string]bool{in: stored.Layout.Compressed},
						perInput:   map[string]int64{in: bytes},
					})
					start = i + 1
					bytes = 0
				}
			}
			if len(part.Pairs) == 0 {
				// Empty partitions produce no map task.
				continue
			}
		}
	}
	return splits, nil
}

// buildAlignedSplits creates one map task per input partition, merging
// aligned partitions of multiple inputs in their shared sort order so that
// pipelined ReduceKind stages see correctly clustered data.
func (e *Engine) buildAlignedSplits(w *wf.Workflow, job *wf.Job, inputs []string) ([]mapSplit, error) {
	type src struct {
		id     string
		stored *Stored
		keyIdx []int // sort projection for merging
	}
	var srcs []src
	numParts := -1
	for _, in := range inputs {
		stored, ok := e.DFS.Get(in)
		if !ok {
			return nil, fmt.Errorf("input dataset %q not on DFS", in)
		}
		if numParts == -1 {
			numParts = len(stored.Parts)
		} else if numParts != len(stored.Parts) {
			return nil, fmt.Errorf("aligned inputs have mismatched partition counts (%q has %d, want %d)",
				in, len(stored.Parts), numParts)
		}
		s := src{id: in, stored: stored}
		ds := w.Dataset(in)
		if ds != nil && len(stored.Layout.SortFields) > 0 {
			if idx, ok := wf.IndicesOf(ds.KeyFields, stored.Layout.SortFields); ok {
				s.keyIdx = idx
			}
		}
		srcs = append(srcs, s)
	}
	canMerge := len(srcs) > 1
	for _, s := range srcs {
		if s.keyIdx == nil {
			canMerge = false
		}
	}
	splits := make([]mapSplit, numParts)
	for pi := 0; pi < numParts; pi++ {
		sp := mapSplit{
			compressed: make(map[string]bool),
			perInput:   make(map[string]int64),
		}
		if len(srcs) == 1 {
			s := srcs[0]
			part := s.stored.Parts[pi]
			for _, p := range part.Pairs {
				sp.recs = append(sp.recs, splitRec{input: s.id, pair: p})
			}
			sp.bytes = part.Bytes
			sp.perInput[s.id] = part.Bytes
			sp.compressed[s.id] = s.stored.Layout.Compressed
			sp.srcBounds = part.Bounds
		} else {
			// K-way merge of the aligned partitions.
			cursors := make([]int, len(srcs))
			for si, s := range srcs {
				part := s.stored.Parts[pi]
				sp.bytes += part.Bytes
				sp.perInput[s.id] += part.Bytes
				sp.compressed[s.id] = s.stored.Layout.Compressed
				_ = si
			}
			if pi < len(srcs[0].stored.Parts) {
				sp.srcBounds = srcs[0].stored.Parts[pi].Bounds
			}
			for {
				best := -1
				for si, s := range srcs {
					part := s.stored.Parts[pi]
					if cursors[si] >= len(part.Pairs) {
						continue
					}
					if best == -1 {
						best = si
						continue
					}
					if !canMerge {
						continue // keep input order: drain sources in order
					}
					a := part.Pairs[cursors[si]].Key
					bPart := srcs[best].stored.Parts[pi]
					b := bPart.Pairs[cursors[best]].Key
					if keyval.Compare(keyval.Project(a, s.keyIdx), keyval.Project(b, srcs[best].keyIdx)) < 0 {
						best = si
					}
				}
				if best == -1 {
					break
				}
				s := srcs[best]
				sp.recs = append(sp.recs, splitRec{input: s.id, pair: s.stored.Parts[pi].Pairs[cursors[best]]})
				cursors[best]++
			}
		}
		splits[pi] = sp
	}
	return splits, nil
}

// canPrune decides whether an input partition can be skipped: the dataset
// must be range partitioned on the filtered field and every branch of the
// job reading it must filter out the partition's whole key range.
func (e *Engine) canPrune(job *wf.Job, dsID string, layout wf.Layout, part *Partition) bool {
	if layout.PartType != keyval.RangePartition || len(layout.PartFields) == 0 {
		return false
	}
	field := layout.PartFields[0]
	any := false
	for i := range job.MapBranches {
		b := &job.MapBranches[i]
		if b.Input != dsID {
			continue
		}
		any = true
		if b.Filter == nil || b.Filter.Field != field {
			return false
		}
		if part.Bounds.FieldRangeOverlaps(b.Filter.Interval) {
			return false
		}
	}
	return any
}

// mapOnlyLayout derives the output layout of a map-only group from its
// (first) branch's input dataset layout.
func (e *Engine) mapOnlyLayout(w *wf.Workflow, job *wf.Job, g *wf.ReduceGroup) wf.Layout {
	var in wf.Layout
	for i := range job.MapBranches {
		if job.MapBranches[i].Tag == g.Tag {
			if stored, ok := e.DFS.Get(job.MapBranches[i].Input); ok {
				in = stored.Layout
			}
			break
		}
	}
	return wf.DeriveMapOnlyOutputLayout(in, *g, job.AlignMapToInput, job.Config)
}

// resolveSortFields resolves a tag's sort projection against an observed
// key width.
func resolveSortFields(rt *tagRuntime, key keyval.Tuple) []int {
	if rt.sortIdx == nil {
		rt.sortIdx = rt.group.Part.EffectiveSortFields(len(key))
	}
	return rt.sortIdx
}

// runCombiner applies the combine function to a sorted run, grouping on the
// full key, and returns the surviving pairs, input count, and CPU charged.
func runCombiner(combiner wf.Stage, sorted []keyval.Pair) ([]keyval.Pair, int64, float64) {
	var out []keyval.Pair
	emit := func(k, v keyval.Tuple) { out = append(out, keyval.Pair{Key: k, Value: v}) }
	i := 0
	var cpu float64
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && keyval.Compare(sorted[i].Key, sorted[j].Key) == 0 {
			j++
		}
		vals := make([]keyval.Tuple, 0, j-i)
		for _, p := range sorted[i:j] {
			vals = append(vals, p.Value)
		}
		cpu += float64(j-i) * combiner.CPUPerRecord
		combiner.Reduce(sorted[i].Key, vals, emit)
		i = j
	}
	return out, int64(len(sorted)), cpu
}

func sampleSeed(jobID string, tag int) int64 {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	h.Write([]byte{byte(tag), byte(tag >> 8)})
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
