package mrsim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math"
)

// FaultModel perturbs task scheduling with the failure modes production
// clusters actually exhibit: per-task failures with bounded retries,
// lognormal straggler slowdowns, heterogeneous node classes, and
// speculative re-execution that cancels the losing attempt. Every draw is
// a pure function of (Seed, job, task, attempt), so a given (plan, model)
// pair always simulates identically — across runs, across goroutines, and
// across replay orders.
//
// The model only moves simulated time. The engine's data path (chains,
// combiners, partitioning, DFS materialization) never sees it, so retried
// and speculated tasks cannot duplicate, drop, or reorder output tuples.
// A model with all rates zero and no node classes reproduces the
// nil-model timings bit for bit.
type FaultModel struct {
	// Seed roots every random draw. Two models differing only in Seed
	// perturb the same plan differently; equal seeds perturb identically.
	Seed int64
	// TaskFailureProb is the per-attempt probability that a task attempt
	// fails partway through, surrendering its slot and re-queuing.
	TaskFailureProb float64
	// MaxRetries bounds re-executions after the first attempt. A task
	// whose attempts all fail (MaxRetries+1 of them) fails the job.
	MaxRetries int
	// StragglerProb is the per-attempt probability the attempt straggles:
	// its duration is multiplied by exp(StragglerSigma·|z|), z ~ N(0,1) —
	// the right half of a lognormal, so stragglers only ever slow down.
	StragglerProb float64
	// StragglerSigma is the lognormal shape of straggler slowdowns
	// (0.5 means a median straggler runs ~1.4x slow, p95 ~2.7x).
	StragglerSigma float64
	// Speculative enables backup attempts: when an attempt's drawn
	// duration exceeds SpeculativeSlowdown times the nominal duration, a
	// backup launches once the nominal deadline passes, and whichever
	// attempt finishes first commits while the loser is canceled.
	Speculative bool
	// SpeculativeSlowdown is the overrun factor that triggers a backup
	// (default 1.5 when zero).
	SpeculativeSlowdown float64
	// NodeClasses, when non-empty, replaces the cluster's uniform node
	// population with heterogeneous classes (slot counts and speeds).
	NodeClasses []NodeClass
}

// NodeClass describes one homogeneous group of nodes in a mixed cluster.
type NodeClass struct {
	// Name labels the class in reports ("fast", "old-gen", ...).
	Name string
	// Nodes is the class population.
	Nodes int
	// Speed divides task durations on this class's slots (1 = baseline,
	// 0.5 = half speed).
	Speed float64
	// MapSlotsPerNode/ReduceSlotsPerNode override the cluster's per-node
	// slot counts for this class (0 = cluster default).
	MapSlotsPerNode, ReduceSlotsPerNode int
}

// Validate checks the model's parameters.
func (fm *FaultModel) Validate() error {
	switch {
	case fm.TaskFailureProb < 0 || fm.TaskFailureProb >= 1:
		return fmt.Errorf("mrsim: fault model: TaskFailureProb %v outside [0,1)", fm.TaskFailureProb)
	case fm.StragglerProb < 0 || fm.StragglerProb > 1:
		return fmt.Errorf("mrsim: fault model: StragglerProb %v outside [0,1]", fm.StragglerProb)
	case fm.MaxRetries < 0:
		return fmt.Errorf("mrsim: fault model: negative MaxRetries %d", fm.MaxRetries)
	case fm.StragglerSigma < 0:
		return fmt.Errorf("mrsim: fault model: negative StragglerSigma %v", fm.StragglerSigma)
	case fm.SpeculativeSlowdown < 0 || (fm.SpeculativeSlowdown > 0 && fm.SpeculativeSlowdown < 1):
		return fmt.Errorf("mrsim: fault model: SpeculativeSlowdown %v must be 0 (default) or >= 1", fm.SpeculativeSlowdown)
	}
	for _, nc := range fm.NodeClasses {
		if nc.Nodes <= 0 {
			return fmt.Errorf("mrsim: fault model: node class %q has %d nodes", nc.Name, nc.Nodes)
		}
		if nc.Speed <= 0 {
			return fmt.Errorf("mrsim: fault model: node class %q has speed %v", nc.Name, nc.Speed)
		}
		if nc.MapSlotsPerNode < 0 || nc.ReduceSlotsPerNode < 0 {
			return fmt.Errorf("mrsim: fault model: node class %q has negative slot counts", nc.Name)
		}
	}
	return nil
}

// Perturbs reports whether the model can move any timing at all. A
// non-perturbing model (all rates zero, no node classes) is the
// metamorphic identity: attaching it changes nothing.
func (fm *FaultModel) Perturbs() bool {
	return fm != nil && (fm.TaskFailureProb > 0 || fm.StragglerProb > 0 || len(fm.NodeClasses) > 0)
}

// Reseed returns a copy of the model rooted at a different seed —
// Monte-Carlo robustness sampling draws one copy per perturbation seed.
func (fm *FaultModel) Reseed(seed int64) *FaultModel {
	c := *fm
	c.Seed = seed
	return &c
}

func (fm *FaultModel) specThreshold() float64 {
	if fm.SpeculativeSlowdown > 0 {
		return fm.SpeculativeSlowdown
	}
	return 1.5
}

// SlotSpeeds expands the model into per-slot speed factors for the map
// (reduce=false) or reduce (reduce=true) side of cluster c (see
// Cluster.SlotSpeeds).
func (fm *FaultModel) SlotSpeeds(c *Cluster, reduce bool) []float64 {
	return c.SlotSpeeds(fm.NodeClasses, reduce)
}

// --- deterministic draws ------------------------------------------------
//
// Draws are counter-based: mix64 (splitmix64's finalizer) over a per-task
// key and a per-purpose salt. No generator state exists, so evaluation
// order, goroutine interleaving, and replay cannot change any draw.

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PerturbSeed derives the i-th Monte-Carlo perturbation seed from a base
// seed — a fixed, well-mixed sequence so sample sets are reproducible.
func PerturbSeed(seed int64, i int) int64 {
	return int64(mix64(mix64(uint64(seed)) ^ uint64(i+1)))
}

// TaskKey identifies one simulated task for fault draws.
func (fm *FaultModel) TaskKey(jobID string, reduce bool, index int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	k := h.Sum64()
	if reduce {
		k = mix64(k ^ 0x52454455434552) // "REDUCER" discriminator
	}
	return mix64(mix64(uint64(fm.Seed)) ^ mix64(k) ^ mix64(uint64(index)))
}

// u01 is a uniform draw in [0,1).
func u01(key, salt uint64) float64 {
	return float64(mix64(key^mix64(salt))>>11) / (1 << 53)
}

// absNormal is |z| for z ~ N(0,1), via Box-Muller on two salted draws.
func absNormal(key, salt uint64) float64 {
	u1 := u01(key, salt)
	u2 := u01(key, salt+1)
	return math.Abs(math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2))
}

// Per-attempt salt layout (stride attemptSaltStride):
//
//	+0 straggler gate   +1,+2 straggler magnitude
//	+3 failure gate     +4    failure progress fraction
//	+5 backup straggler gate   +6,+7 backup magnitude
const attemptSaltStride = 8

// maxStragglerFactor caps one attempt's straggler slowdown. Real stragglers
// are orders of magnitude slow, not infinitely slow; without the cap an
// extreme StragglerSigma overflows exp to +Inf and poisons the simulated
// clock (found by FuzzFaultSchedule).
const maxStragglerFactor = 1000.0

// attemptDur draws one attempt's duration on a slot of the given speed.
func (fm *FaultModel) attemptDur(key, salt uint64, dur, speed float64) float64 {
	d := dur / speed
	if fm.StragglerProb > 0 && u01(key, salt) < fm.StragglerProb {
		f := math.Exp(fm.StragglerSigma * absNormal(key, salt+1))
		if f > maxStragglerFactor {
			f = maxStragglerFactor
		}
		d *= f
	}
	return d
}

// TaskFate is how one simulated task ultimately completed under faults.
type TaskFate struct {
	// Start is when the first attempt started; End when the winning
	// attempt committed (or the last attempt failed, for FailedOut).
	Start, End float64
	// Attempts counts attempts launched (1 when nothing went wrong;
	// speculative backups are not attempts).
	Attempts int
	// Failures counts failed attempts.
	Failures int
	// Speculated marks that a backup launched; SpecWon that it committed.
	Speculated, SpecWon bool
	// FailedOut marks that every allowed attempt failed.
	FailedOut bool
}

// ScheduleTask places one task (ready at `ready`, nominal duration `dur`)
// on the pool under this model: failed attempts hold their slot until the
// failure instant and re-queue, stragglers run long, and an overrunning
// final attempt may race a speculative backup — the first to finish
// commits, the loser's slot is released at the commit instant.
func (fm *FaultModel) ScheduleTask(p *FaultyPool, key uint64, ready, dur float64) TaskFate {
	fate := TaskFate{Start: math.Inf(1)}
	for attempt := 0; ; attempt++ {
		slot, start, _ := p.Acquire(ready)
		if start < fate.Start {
			fate.Start = start
		}
		fate.Attempts++
		salt := uint64(attempt) * attemptSaltStride
		d := fm.attemptDur(key, salt, dur, p.Speed(slot))
		if fm.TaskFailureProb > 0 && u01(key, salt+3) < fm.TaskFailureProb {
			fate.Failures++
			failAt := start + d*u01(key, salt+4)
			p.Release(slot, failAt)
			if fate.Failures > fm.MaxRetries {
				fate.End = failAt
				fate.FailedOut = true
				return fate
			}
			ready = failAt
			continue
		}
		end := start + d
		if fm.Speculative && d > fm.specThreshold()*dur {
			// The attempt will overrun; a backup becomes schedulable at the
			// nominal deadline and the first finisher cancels the other.
			fate.Speculated = true
			bslot, bstart, bfree := p.Acquire(start + dur)
			bd := fm.attemptDur(key, salt+5, dur, p.Speed(bslot))
			if bend := bstart + bd; bend < end {
				fate.SpecWon = true
				p.Release(slot, bend)
				p.Release(bslot, bend)
				fate.End = bend
				return fate
			}
			if bstart >= end {
				// The primary finished before the backup could start: the
				// backup is canceled unlaunched and its slot never blocked.
				p.Release(bslot, bfree)
			} else {
				p.Release(bslot, end)
			}
		}
		p.Release(slot, end)
		fate.End = end
		return fate
	}
}

// --- FaultyPool ---------------------------------------------------------

// FaultyPool is the heterogeneous sibling of SlotPool: a fixed set of
// slots, each with its own speed factor, assigned earliest-free with
// slot-index tie-breaking (fully deterministic). Unlike SlotPool it
// supports holding a slot across a simulated interval (Acquire/Release),
// which failure retries and speculative races need.
type FaultyPool struct {
	h     faultSlotHeap
	speed []float64
}

// NewFaultyPool builds a pool with one slot per speed factor, all free at
// time zero.
func NewFaultyPool(speeds []float64) *FaultyPool {
	p := &FaultyPool{h: make(faultSlotHeap, len(speeds)), speed: speeds}
	for i := range p.h {
		p.h[i] = faultSlot{idx: i}
	}
	heap.Init(&p.h)
	return p
}

// Slots reports the pool size.
func (p *FaultyPool) Slots() int { return len(p.speed) }

// Speed reports a slot's speed factor.
func (p *FaultyPool) Speed(slot int) float64 { return p.speed[slot] }

// Acquire takes the earliest-free slot (lowest index on ties) for a task
// ready at `ready`, returning the slot, its start time, and the free time
// it had (so an unused acquisition can be released unchanged).
func (p *FaultyPool) Acquire(ready float64) (slot int, start, prevFree float64) {
	s := heap.Pop(&p.h).(faultSlot)
	start = ready
	if s.free > start {
		start = s.free
	}
	return s.idx, start, s.free
}

// Release returns a slot to the pool, free from `free` on.
func (p *FaultyPool) Release(slot int, free float64) {
	heap.Push(&p.h, faultSlot{free: free, idx: slot})
}

// EarliestFree reports the earliest time any pooled slot is available.
func (p *FaultyPool) EarliestFree() float64 { return p.h[0].free }

// FaultyPoolSnapshot is a saved FaultyPool state (see Snapshot/Restore).
type FaultyPoolSnapshot struct {
	h faultSlotHeap
}

// Snapshot captures the pool's exact heap layout; like SlotPool.Snapshot
// it preserves tie-break behavior so a restored replay is bit-identical.
// All slots must be released (no task mid-flight).
func (p *FaultyPool) Snapshot() FaultyPoolSnapshot {
	s := FaultyPoolSnapshot{h: make(faultSlotHeap, len(p.h))}
	copy(s.h, p.h)
	return s
}

// Restore rewinds the pool to a snapshot from a same-sized pool, reusing
// the backing storage.
func (p *FaultyPool) Restore(s FaultyPoolSnapshot) {
	if len(p.h) != len(s.h) {
		p.h = make(faultSlotHeap, len(s.h))
	}
	copy(p.h, s.h)
}

type faultSlot struct {
	free float64
	idx  int
}

type faultSlotHeap []faultSlot

func (h faultSlotHeap) Len() int { return len(h) }
func (h faultSlotHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h faultSlotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *faultSlotHeap) Push(x interface{}) { *h = append(*h, x.(faultSlot)) }
func (h *faultSlotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// --- standard profiles --------------------------------------------------

// StandardFaultProfile is the benchmark fault profile: moderate failures
// and stragglers with speculation on, on a 60/40 fast/slow cluster. BENCH
// robustness rows and the CLIs' "standard" profile use it.
func StandardFaultProfile(seed int64) *FaultModel {
	return &FaultModel{
		Seed:            seed,
		TaskFailureProb: 0.02,
		MaxRetries:      3,
		StragglerProb:   0.08,
		StragglerSigma:  0.5,
		Speculative:     true,
		NodeClasses: []NodeClass{
			{Name: "fast", Nodes: 30, Speed: 1.0},
			{Name: "slow", Nodes: 20, Speed: 0.7},
		},
	}
}

// FailureFaultProfile stresses retries: frequent failures, no stragglers.
func FailureFaultProfile(seed int64) *FaultModel {
	return &FaultModel{Seed: seed, TaskFailureProb: 0.10, MaxRetries: 5}
}

// StragglerFaultProfile stresses speculation: heavy-tailed slowdowns with
// backups enabled, homogeneous hardware.
func StragglerFaultProfile(seed int64) *FaultModel {
	return &FaultModel{
		Seed:           seed,
		StragglerProb:  0.25,
		StragglerSigma: 0.8,
		Speculative:    true,
	}
}

// FaultProfile returns a named profile ("standard", "failures",
// "stragglers") or an error listing the valid names.
func FaultProfile(name string, seed int64) (*FaultModel, error) {
	switch name {
	case "standard":
		return StandardFaultProfile(seed), nil
	case "failures":
		return FailureFaultProfile(seed), nil
	case "stragglers":
		return StragglerFaultProfile(seed), nil
	}
	return nil, fmt.Errorf("mrsim: unknown fault profile %q (want standard, failures, or stragglers)", name)
}
