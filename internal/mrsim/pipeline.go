package mrsim

import (
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// PipeStats accumulates dataflow and cost statistics for one pipeline
// execution — the raw material of profile annotations.
type PipeStats struct {
	InRecords  int64
	OutRecords int64
	InBytes    int64
	OutBytes   int64
	CPU        float64
	// Groups counts invocations of the pipeline's first grouped stage
	// (the number of distinct reduce groups seen).
	Groups int64
}

// Add accumulates another stats block.
func (s *PipeStats) Add(o PipeStats) {
	s.InRecords += o.InRecords
	s.OutRecords += o.OutRecords
	s.InBytes += o.InBytes
	s.OutBytes += o.OutBytes
	s.CPU += o.CPU
	s.Groups += o.Groups
}

// chain executes a pipeline of stages over a pushed stream of pairs. It
// implements the paper's "wrapper classes": several map/reduce functions
// executing back to back inside one task. ReduceKind stages buffer
// consecutive records agreeing on their group fields, relying on the
// stream being clustered on those fields (the vertical packing
// postconditions guarantee it).
type chain struct {
	head  func(keyval.Pair)
	close func()
	stats PipeStats
}

// newChain builds an executor for stages whose final outputs are passed to
// sink. Stats count records entering the chain, records leaving it, and
// total stage CPU seconds.
func newChain(stages []wf.Stage, sink func(keyval.Pair)) *chain {
	c := &chain{}
	// Terminal: count outputs.
	next := func(p keyval.Pair) {
		c.stats.OutRecords++
		c.stats.OutBytes += keyval.PairSize(p)
		sink(p)
	}
	closeNext := func() {}
	firstReduce := -1
	for i, st := range stages {
		if st.Kind == wf.ReduceKind {
			firstReduce = i
			break
		}
	}
	// Build from last stage backward.
	for i := len(stages) - 1; i >= 0; i-- {
		st := stages[i]
		downstream := next
		downstreamClose := closeNext
		switch st.Kind {
		case wf.MapKind:
			emit := func(k, v keyval.Tuple) { downstream(keyval.Pair{Key: k, Value: v}) }
			next = func(p keyval.Pair) {
				c.stats.CPU += st.CPUPerRecord
				st.Map(p.Key, p.Value, emit)
			}
			closeNext = downstreamClose
		case wf.ReduceKind:
			g := &grouper{stage: st, emitPair: downstream, countGroups: i == firstReduce}
			next = g.push
			closeNext = func() {
				g.flush()
				downstreamClose()
			}
			// CPU is charged per record inside grouper.push via the chain.
			g.chain = c
		}
	}
	entry := next
	entryClose := closeNext
	c.head = func(p keyval.Pair) {
		c.stats.InRecords++
		c.stats.InBytes += keyval.PairSize(p)
		entry(p)
	}
	c.close = entryClose
	return c
}

// grouper buffers consecutive records equal on the stage's group fields and
// invokes the reduce function once per group.
type grouper struct {
	stage       wf.Stage
	chain       *chain
	emitPair    func(keyval.Pair)
	fields      []int // resolved group fields; nil until first record
	resolved    bool
	countGroups bool
	firstKey    keyval.Tuple
	vals        []keyval.Tuple
}

func (g *grouper) push(p keyval.Pair) {
	g.chain.stats.CPU += g.stage.CPUPerRecord
	if !g.resolved {
		g.fields = g.stage.GroupFields
		if g.fields == nil {
			g.fields = make([]int, len(p.Key))
			for i := range g.fields {
				g.fields[i] = i
			}
		}
		g.resolved = true
	}
	if g.firstKey != nil && !keyval.EqualOn(g.firstKey, p.Key, g.fields) {
		g.flush()
	}
	if g.firstKey == nil {
		g.firstKey = p.Key
	}
	g.vals = append(g.vals, p.Value)
}

func (g *grouper) flush() {
	if g.firstKey == nil {
		return
	}
	if g.countGroups {
		g.chain.stats.Groups++
	}
	key, vals := g.firstKey, g.vals
	g.firstKey, g.vals = nil, nil
	emit := func(k, v keyval.Tuple) { g.emitPair(keyval.Pair{Key: k, Value: v}) }
	g.stage.Reduce(key, vals, emit)
}

// reservoir is a deterministic fixed-size uniform sample of tuples, used to
// collect the key samples in profile annotations.
type reservoir struct {
	cap  int
	seen int64
	keys []keyval.Tuple
	rng  *rand.Rand
}

func newReservoir(capacity int, seed int64) *reservoir {
	return &reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

func (r *reservoir) add(t keyval.Tuple) {
	r.seen++
	if len(r.keys) < r.cap {
		r.keys = append(r.keys, keyval.Clone(t))
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.cap) {
		r.keys[j] = keyval.Clone(t)
	}
}
