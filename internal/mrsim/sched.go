package mrsim

import "container/heap"

// SlotPool models a fixed set of task slots (map or reduce) shared by all
// jobs of a workflow run. Tasks are assigned greedily to the earliest-free
// slot, which is how concurrently runnable jobs end up overlapping on the
// cluster — the effect the Post-processing Jobs workflow depends on
// (Section 7.2: packing loses when the cluster can run the jobs
// concurrently).
type SlotPool struct {
	free timeHeap
}

// NewSlotPool returns a pool of n slots, all free at time zero.
func NewSlotPool(n int) *SlotPool {
	if n < 1 {
		n = 1
	}
	p := &SlotPool{free: make(timeHeap, n)}
	heap.Init(&p.free)
	return p
}

// Schedule places a task that becomes ready at `ready` and runs for `dur`
// seconds on the earliest-free slot, returning its start and end times.
func (p *SlotPool) Schedule(ready, dur float64) (start, end float64) {
	slotFree := p.free[0]
	start = ready
	if slotFree > start {
		start = slotFree
	}
	end = start + dur
	p.free[0] = end
	heap.Fix(&p.free, 0)
	return start, end
}

// EarliestFree reports the earliest time any slot is available.
func (p *SlotPool) EarliestFree() float64 { return p.free[0] }

// PoolSnapshot is a saved SlotPool state (see Snapshot/Restore).
type PoolSnapshot struct {
	free []float64
}

// Snapshot captures the pool's exact internal state. The copy preserves the
// heap's slice layout, not just the multiset of free times: ScheduleUniform
// breaks ties in slice order, so replaying the same schedule from a restored
// snapshot is bit-for-bit identical to never having diverged — the property
// the incremental What-if estimator depends on.
func (p *SlotPool) Snapshot() PoolSnapshot {
	s := PoolSnapshot{free: make([]float64, len(p.free))}
	copy(s.free, p.free)
	return s
}

// Restore rewinds the pool to a snapshot taken from a pool of the same
// size. It reuses the pool's backing storage, so restoring on a hot path
// allocates nothing.
func (p *SlotPool) Restore(s PoolSnapshot) {
	if len(p.free) != len(s.free) {
		p.free = make(timeHeap, len(s.free))
	}
	copy(p.free, s.free)
}

// ScheduleUniform places count equal-duration tasks, all ready at `ready`,
// with greedy earliest-slot assignment, and returns the time the last task
// ends. It is equivalent to calling Schedule count times but costs
// O(slots log slots) instead of O(count log slots) — the What-if engine
// uses it to price jobs with thousands of uniform tasks cheaply.
func (p *SlotPool) ScheduleUniform(ready, dur float64, count int) float64 {
	if count <= 0 {
		return ready
	}
	n := len(p.free)
	if dur <= 0 {
		// Zero-length tasks occupy no slot time: they all run on the
		// earliest-free slot the moment it is available.
		if p.free[0] > ready {
			return p.free[0]
		}
		return ready
	}
	if count <= 2*n {
		end := ready
		for i := 0; i < count; i++ {
			if _, e := p.Schedule(ready, dur); e > end {
				end = e
			}
		}
		return end
	}
	// Effective start per slot.
	starts := make([]float64, n)
	lo, hi := 0.0, 0.0
	for i, f := range p.free {
		s := f
		if s < ready {
			s = ready
		}
		starts[i] = s
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// Binary search the water level L: the smallest time by which `count`
	// tasks can have completed under greedy assignment.
	fits := func(L float64) int {
		total := 0
		for _, s := range starts {
			if L > s {
				total += int((L - s) / dur)
			}
			if total >= count {
				return total
			}
		}
		return total
	}
	hiL := hi + float64(count)*dur/float64(n) + 2*dur
	for fits(hiL) < count {
		hiL += float64(count) * dur
	}
	loL := lo
	for i := 0; i < 60 && hiL-loL > 1e-9*(1+hiL); i++ {
		mid := (loL + hiL) / 2
		if fits(mid) >= count {
			hiL = mid
		} else {
			loL = mid
		}
	}
	// Assign per-slot task counts at the found level, trimming surplus.
	counts := make([]int, n)
	total := 0
	for i, s := range starts {
		if hiL > s {
			counts[i] = int((hiL - s) / dur)
			total += counts[i]
		}
	}
	for i := 0; total > count; i = (i + 1) % n {
		if counts[i] > 0 {
			counts[i]--
			total--
		}
	}
	end := ready
	for i := range starts {
		if counts[i] == 0 {
			continue
		}
		e := starts[i] + float64(counts[i])*dur
		p.free[i] = e
		if e > end {
			end = e
		}
	}
	heap.Init(&p.free)
	return end
}

// ScheduleSpread places count tasks sharing one ready time but with a
// known duration spread: one straggler of maxDur and count-1 tasks of
// avgDur. The straggler is placed first, so it occupies a slot from the
// first wave — greedy engines start the oversized split whenever its turn
// comes, not after every uniform wave has drained, so appending it after
// the uniform pack (the What-if estimator's historical model) overstates
// skewed jobs whose task count exceeds the slot count by up to a full
// task length. Returns the time the last task ends.
func (p *SlotPool) ScheduleSpread(ready, avgDur, maxDur float64, count int) float64 {
	if count <= 0 {
		return ready
	}
	if maxDur < avgDur {
		maxDur = avgDur
	}
	_, end := p.Schedule(ready, maxDur)
	if e := p.ScheduleUniform(ready, avgDur, count-1); e > end {
		end = e
	}
	return end
}

type timeHeap []float64

func (h timeHeap) Len() int            { return len(h) }
func (h timeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *timeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
