package mrsim

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Failure injection: the engine must reject broken inputs with descriptive
// errors instead of corrupting the DFS or panicking.

func failureWorkflow() *wf.Workflow {
	return &wf.Workflow{
		Name: "fail",
		Jobs: []*wf.Job{{
			ID: "J", Config: wf.DefaultConfig(), Origin: []string{"J"},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "in",
				Stages: []wf.Stage{wf.MapStage("M", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: "out",
				Stages: []wf.Stage{wf.ReduceStage("R", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
					emit(k, vs[0])
				}, nil, 1e-6)},
			}},
		}},
		Datasets: []*wf.Dataset{
			{ID: "in", Base: true},
			{ID: "out"},
		},
	}
}

func failureDFS(t *testing.T) *DFS {
	t.Helper()
	dfs := NewDFS()
	var pairs []keyval.Pair
	for i := 0; i < 50; i++ {
		pairs = append(pairs, keyval.Pair{Key: keyval.T(int64(i % 7)), Value: keyval.T(int64(i))})
	}
	if err := dfs.Ingest("in", pairs, IngestSpec{NumPartitions: 3}); err != nil {
		t.Fatal(err)
	}
	return dfs
}

func TestRunMissingBaseDataset(t *testing.T) {
	w := failureWorkflow()
	dfs := NewDFS() // "in" never ingested
	_, err := NewEngine(DefaultCluster(), dfs).RunWorkflow(w)
	if err == nil || !strings.Contains(err.Error(), "in") {
		t.Fatalf("missing base dataset not reported: %v", err)
	}
}

func TestRunInvalidConfigRejected(t *testing.T) {
	w := failureWorkflow()
	w.Jobs[0].Config.NumReduceTasks = 0
	_, err := NewEngine(DefaultCluster(), failureDFS(t)).RunWorkflow(w)
	if err == nil || !strings.Contains(err.Error(), "NumReduceTasks") {
		t.Fatalf("invalid config not rejected: %v", err)
	}
}

func TestRunCyclicWorkflowRejected(t *testing.T) {
	w := failureWorkflow()
	// Close a cycle: J also consumes its own output through a second job.
	w.Jobs = append(w.Jobs, &wf.Job{
		ID: "LOOP", Config: wf.DefaultConfig(), Origin: []string{"LOOP"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "out",
			Stages: []wf.Stage{wf.MapStage("ML", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
		}},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "loopout"}},
	})
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "loopout"})
	w.Jobs[0].MapBranches = append(w.Jobs[0].MapBranches, wf.MapBranch{
		Tag: 0, Input: "loopout",
		Stages: []wf.Stage{wf.MapStage("MC", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
	})
	_, err := NewEngine(DefaultCluster(), failureDFS(t)).RunWorkflow(w)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cyclic workflow not rejected: %v", err)
	}
}

func TestRunInvalidClusterRejected(t *testing.T) {
	w := failureWorkflow()
	c := DefaultCluster()
	c.Nodes = 0
	_, err := NewEngine(c, failureDFS(t)).RunWorkflow(w)
	if err == nil {
		t.Fatal("invalid cluster not rejected")
	}
}

func TestRunDoesNotMutateDFSOnFailure(t *testing.T) {
	w := failureWorkflow()
	w.Jobs[0].Config.SortBufferMB = -1
	dfs := failureDFS(t)
	before := dfs.IDs()
	if _, err := NewEngine(DefaultCluster(), dfs).RunWorkflow(w); err == nil {
		t.Fatal("invalid config not rejected")
	}
	after := dfs.IDs()
	if len(before) != len(after) {
		t.Fatalf("failed run changed DFS contents: %v -> %v", before, after)
	}
}

func TestRunUnknownIntermediateProducerRejected(t *testing.T) {
	w := failureWorkflow()
	w.Jobs[0].MapBranches[0].Input = "ghost"
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "ghost"}) // non-base, no producer
	_, err := NewEngine(DefaultCluster(), failureDFS(t)).RunWorkflow(w)
	if err == nil {
		t.Fatal("unproduced intermediate input not rejected")
	}
}
