package rrs

import "testing"

// BenchmarkMinimize measures RRS over a 12-dimensional space with a cheap
// objective — the shape of one subplan's configuration search.
func BenchmarkMinimize(b *testing.B) {
	params := make([]Param, 12)
	target := make(Point, 12)
	for i := range params {
		params[i] = Param{Name: "p", Min: 0, Max: 100, Integer: i%2 == 0}
		target[i] = float64(10 * i % 100)
	}
	obj := sphere(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(params, obj, nil, Options{MaxEvals: 400, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
