// Package rrs implements Recursive Random Search (Ye & Kalyanaraman,
// SIGMETRICS 2003), the black-box optimizer Stubby uses to search the
// high-dimensional job configuration space (Section 4.2).
//
// RRS alternates two phases: EXPLORE draws uniform samples to find a
// promising region (a point whose value is in the best r-percentile with
// confidence p), then EXPLOIT samples recursively inside a shrinking
// neighborhood of the incumbent, re-centering on improvement and shrinking
// on failure, until the neighborhood collapses; then exploration restarts.
// The search is deterministic for a fixed seed.
package rrs

import (
	"fmt"
	"math"
	"math/rand"
)

// Param describes one search dimension.
type Param struct {
	// Name labels the dimension for diagnostics.
	Name string
	// Min and Max bound the dimension (inclusive).
	Min, Max float64
	// Integer rounds sampled values to integers (booleans are Integer
	// dimensions over [0,1]).
	Integer bool
}

// Clamp projects v into the parameter's domain.
func (p Param) Clamp(v float64) float64 {
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	if p.Integer {
		v = math.Round(v)
		if v < p.Min {
			v = math.Ceil(p.Min)
		}
		if v > p.Max {
			v = math.Floor(p.Max)
		}
	}
	return v
}

// Point is a position in the search space, one value per Param.
type Point []float64

// Objective evaluates a point; lower is better.
type Objective func(Point) float64

// Options tunes the search.
type Options struct {
	// MaxEvals bounds objective evaluations (default 100).
	MaxEvals int
	// Seed makes the search deterministic.
	Seed int64
	// Confidence p and Percentile r size the exploration phase:
	// n = ln(1-p)/ln(1-r) samples (defaults 0.99 and 0.1 -> 44).
	Confidence float64
	Percentile float64
	// ShrinkFactor contracts the exploit neighborhood on failed samples
	// (default 0.5); MinRadius ends exploitation (default 0.01). Radii are
	// in normalized [0,1] coordinates.
	ShrinkFactor float64
	MinRadius    float64
	// ExploitSamples per radius level before shrinking (default 5).
	ExploitSamples int
	// ExploreOnly disables the recursive exploitation phase, degrading
	// the search to pure uniform random sampling under the same
	// evaluation budget — the ablation baseline isolating the value of
	// RRS's recursion (Section 4.2).
	ExploreOnly bool
}

func (o Options) withDefaults() Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 100
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.99
	}
	if o.Percentile <= 0 || o.Percentile >= 1 {
		o.Percentile = 0.1
	}
	if o.ShrinkFactor <= 0 || o.ShrinkFactor >= 1 {
		o.ShrinkFactor = 0.5
	}
	if o.MinRadius <= 0 {
		o.MinRadius = 0.01
	}
	if o.ExploitSamples <= 0 {
		o.ExploitSamples = 5
	}
	return o
}

// Result reports the best point found and search statistics.
type Result struct {
	Best  Point
	Value float64
	Evals int
}

// Minimize runs RRS over the given parameter space. Initial, if non-nil, is
// evaluated first so the search never returns something worse than the
// incumbent configuration.
func Minimize(params []Param, obj Objective, initial Point, opt Options) (Result, error) {
	if len(params) == 0 {
		return Result{}, fmt.Errorf("rrs: empty parameter space")
	}
	for _, p := range params {
		if p.Min > p.Max {
			return Result{}, fmt.Errorf("rrs: param %q has Min > Max", p.Name)
		}
	}
	o := opt.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	evals := 0
	best := Result{Value: math.Inf(1)}
	eval := func(pt Point) float64 {
		evals++
		v := obj(pt)
		if v < best.Value {
			best.Value = v
			best.Best = append(Point(nil), pt...)
		}
		return v
	}
	if initial != nil {
		pt := make(Point, len(params))
		for i, p := range params {
			pt[i] = p.Clamp(initial[i])
		}
		eval(pt)
	}

	exploreN := int(math.Ceil(math.Log(1-o.Confidence) / math.Log(1-o.Percentile)))
	if exploreN < 2 {
		exploreN = 2
	}

	uniform := func() Point {
		pt := make(Point, len(params))
		for i, p := range params {
			pt[i] = p.Clamp(p.Min + rng.Float64()*(p.Max-p.Min))
		}
		return pt
	}
	neighbor := func(center Point, radius float64) Point {
		pt := make(Point, len(params))
		for i, p := range params {
			span := (p.Max - p.Min) * radius
			v := center[i] + (rng.Float64()*2-1)*span
			pt[i] = p.Clamp(v)
		}
		return pt
	}

	if o.ExploreOnly {
		for evals < o.MaxEvals {
			eval(uniform())
		}
		best.Evals = evals
		return best, nil
	}

	for evals < o.MaxEvals {
		// EXPLORE: uniform sampling to find a promising region.
		regionCenter := uniform()
		regionValue := eval(regionCenter)
		for i := 1; i < exploreN && evals < o.MaxEvals; i++ {
			pt := uniform()
			if v := eval(pt); v < regionValue {
				regionValue = v
				regionCenter = pt
			}
		}
		// EXPLOIT: recursive shrink-and-recenter around the region.
		radius := o.Percentile // initial neighborhood size
		center, centerVal := regionCenter, regionValue
		for radius > o.MinRadius && evals < o.MaxEvals {
			improved := false
			for s := 0; s < o.ExploitSamples && evals < o.MaxEvals; s++ {
				pt := neighbor(center, radius)
				if v := eval(pt); v < centerVal {
					center, centerVal = pt, v
					improved = true // re-center, keep radius
					break
				}
			}
			if !improved {
				radius *= o.ShrinkFactor
			}
		}
	}
	best.Evals = evals
	return best, nil
}
