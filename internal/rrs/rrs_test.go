package rrs

import (
	"math"
	"testing"
	"testing/quick"
)

func sphere(target Point) Objective {
	return func(p Point) float64 {
		var s float64
		for i := range p {
			d := p[i] - target[i]
			s += d * d
		}
		return s
	}
}

func TestMinimizeSphere(t *testing.T) {
	params := []Param{
		{Name: "x", Min: -10, Max: 10},
		{Name: "y", Min: -10, Max: 10},
	}
	res, err := Minimize(params, sphere(Point{3, -4}), nil, Options{MaxEvals: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 0.5 {
		t.Errorf("RRS ended at value %v, want near 0", res.Value)
	}
	if res.Evals > 400 {
		t.Errorf("exceeded eval budget: %d", res.Evals)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	params := []Param{
		{Name: "x", Min: 2, Max: 5},
		{Name: "n", Min: 1, Max: 9, Integer: true},
	}
	seen := 0
	obj := func(p Point) float64 {
		seen++
		if p[0] < 2 || p[0] > 5 {
			t.Fatalf("x out of bounds: %v", p[0])
		}
		if p[1] != math.Round(p[1]) || p[1] < 1 || p[1] > 9 {
			t.Fatalf("n not an in-range integer: %v", p[1])
		}
		return p[0] + p[1]
	}
	res, err := Minimize(params, obj, nil, Options{MaxEvals: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("objective never evaluated")
	}
	if res.Best[0] != 2 || res.Best[1] != 1 {
		t.Errorf("best = %v, want (2, 1)", res.Best)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	params := []Param{{Name: "x", Min: 0, Max: 100}}
	obj := sphere(Point{42})
	a, _ := Minimize(params, obj, nil, Options{MaxEvals: 100, Seed: 7})
	b, _ := Minimize(params, obj, nil, Options{MaxEvals: 100, Seed: 7})
	if a.Value != b.Value || a.Best[0] != b.Best[0] {
		t.Error("same seed produced different results")
	}
	c, _ := Minimize(params, obj, nil, Options{MaxEvals: 100, Seed: 8})
	_ = c // different seed may differ; just must not crash
}

func TestMinimizeNeverWorseThanInitial(t *testing.T) {
	params := []Param{
		{Name: "x", Min: 0, Max: 1},
		{Name: "y", Min: 0, Max: 1},
	}
	// Pathological objective: best exactly at the initial point.
	initial := Point{0.123, 0.456}
	obj := func(p Point) float64 {
		if p[0] == initial[0] && p[1] == initial[1] {
			return -1
		}
		return 1
	}
	res, err := Minimize(params, obj, initial, Options{MaxEvals: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != -1 {
		t.Errorf("initial incumbent lost: %v", res.Value)
	}
}

func TestMinimizeErrors(t *testing.T) {
	if _, err := Minimize(nil, func(Point) float64 { return 0 }, nil, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	bad := []Param{{Name: "x", Min: 5, Max: 1}}
	if _, err := Minimize(bad, func(Point) float64 { return 0 }, nil, Options{}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestClamp(t *testing.T) {
	p := Param{Min: 2, Max: 8, Integer: true}
	cases := []struct{ in, want float64 }{
		{1, 2}, {9, 8}, {4.4, 4}, {4.6, 5}, {2, 2}, {8, 8},
	}
	for _, c := range cases {
		if got := p.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Fractional bounds with Integer: rounding must stay inside.
	f := Param{Min: 1.2, Max: 3.8, Integer: true}
	if got := f.Clamp(1.2); got != 2 {
		t.Errorf("Clamp(1.2) = %v, want 2", got)
	}
	if got := f.Clamp(3.8); got != 3 {
		t.Errorf("Clamp(3.8) = %v, want 3", got)
	}
}

func TestClampPropertyInDomain(t *testing.T) {
	p := Param{Min: -3, Max: 7, Integer: true}
	f := func(v float64) bool {
		got := p.Clamp(v)
		return got >= p.Min && got <= p.Max && got == math.Round(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBudgetRespected(t *testing.T) {
	params := []Param{{Name: "x", Min: 0, Max: 1}}
	count := 0
	obj := func(p Point) float64 { count++; return p[0] }
	res, _ := Minimize(params, obj, Point{0.5}, Options{MaxEvals: 17, Seed: 4})
	if count > 17+1 { // +1 tolerance for the initial point
		t.Errorf("evaluated %d times, budget 17", count)
	}
	if res.Evals != count {
		t.Errorf("Evals=%d, actual %d", res.Evals, count)
	}
}

func TestMultimodalFindsGoodBasin(t *testing.T) {
	// Two basins; global optimum at x=80 (value -2), local at x=20 (-1).
	params := []Param{{Name: "x", Min: 0, Max: 100}}
	obj := func(p Point) float64 {
		x := p[0]
		v := 0.0
		if x > 10 && x < 30 {
			v = -1 * (1 - math.Abs(x-20)/10)
		}
		if x > 70 && x < 90 {
			v = -2 * (1 - math.Abs(x-80)/10)
		}
		return v
	}
	res, _ := Minimize(params, obj, nil, Options{MaxEvals: 500, Seed: 5})
	if res.Value > -1.8 {
		t.Errorf("RRS missed the global basin: best %v at %v", res.Value, res.Best)
	}
}
