// Package faultproxy is a seed-deterministic in-process fault injector
// for TCP/HTTP traffic: a localhost proxy that sits between a client and
// a server and, per connection, injects latency, answers with a canned
// 503 (Retry-After stamped), resets the connection mid-response-body, or
// truncates the response — the network half of the chaos harness that
// drives the crash-safe job-service drills.
//
// Determinism: every per-connection decision is a counter-based mix64
// draw over (seed, connection index, salt) — the same discipline as
// mrsim's fault model — so a fixed seed and connection order reproduce
// the same fault sequence. Concurrent clients race for connection
// indexes, so cross-run determinism is exact only for serialized
// traffic; what is always deterministic is the multiset of faults
// injected over N connections.
//
// The proxy is HTTP-shaped but byte-level: it parses just enough of the
// request to frame one exchange per connection (forcing Connection: close
// upstream), then forwards raw response bytes, cutting or resetting them
// at a drawn offset. Cuts mid-body exercise exactly the failure a
// streaming NDJSON consumer must survive via its resume cursor.
package faultproxy

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Profile sets the per-connection fault probabilities (each in [0,1]) and
// shapes. The zero Profile injects nothing — the proxy is then a plain
// forwarder, useful as the control arm of a benchmark.
type Profile struct {
	// LatencyProb is the chance a connection's request is delayed before
	// forwarding, by a deterministic duration in [LatencyMin, LatencyMax].
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// Reject503Prob is the chance the proxy answers 503 Service
	// Unavailable (Retry-After: 1) itself without contacting the server —
	// an injected overload.
	Reject503Prob float64
	// ResetProb is the chance the client connection is hard-reset (RST)
	// after forwarding a bounded prefix of the response.
	ResetProb float64
	// TruncateProb is the chance the response is cut short by a graceful
	// close after a bounded prefix — a torn body without a reset.
	TruncateProb float64
	// CutAfterMaxBytes bounds where resets/truncations cut: the cut offset
	// is drawn in [1, CutAfterMaxBytes] (default 4096).
	CutAfterMaxBytes int
}

// Stats counts what the proxy did, cumulatively since New.
type Stats struct {
	Connections uint64
	Delayed     uint64
	Injected503 uint64
	Resets      uint64
	Truncations uint64
	// Errors counts forwarding failures that were not injected (e.g. the
	// target was down — expected while a crash drill's server is dead).
	Errors uint64
}

// Proxy is a live fault-injecting forwarder. Create with New, point
// clients at Addr, and Close when done. SetTarget retargets new
// connections — a crash drill restarts its server on a fresh port and
// swings the proxy over without clients noticing.
type Proxy struct {
	ln      net.Listener
	seed    int64
	profile Profile

	mu     sync.Mutex
	target string

	conns   atomic.Uint64
	delayed atomic.Uint64
	i503    atomic.Uint64
	resets  atomic.Uint64
	truncs  atomic.Uint64
	errs    atomic.Uint64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// New starts a proxy on 127.0.0.1 (ephemeral port) forwarding to target
// ("host:port") with the given fault profile and seed.
func New(target string, seed int64, profile Profile) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultproxy: %w", err)
	}
	if profile.CutAfterMaxBytes <= 0 {
		profile.CutAfterMaxBytes = 4096
	}
	p := &Proxy{ln: ln, seed: seed, profile: profile, target: target}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetTarget swings new connections to a different backend address.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Connections: p.conns.Load(),
		Delayed:     p.delayed.Load(),
		Injected503: p.i503.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncs.Load(),
		Errors:      p.errs.Load(),
	}
}

// Close stops accepting and waits for in-flight connections to unwind.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.conns.Add(1) - 1
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn, n)
		}()
	}
}

// mix64 is splitmix64's finalizer (the same counter-based draw discipline
// as mrsim's fault model).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw yields a uniform float64 in [0,1) for (connection, salt).
func (p *Proxy) draw(conn uint64, salt uint64) float64 {
	h := mix64(mix64(uint64(p.seed)) ^ mix64(conn*0x9e37+salt))
	return float64(h>>11) / float64(1<<53)
}

// Draw salts, one per independent decision.
const (
	saltLatency = iota + 1
	saltLatencyAmount
	salt503
	saltReset
	saltTruncate
	saltCutOffset
)

// serve handles one client connection: one HTTP exchange, faults applied.
func (p *Proxy) serve(client net.Conn, n uint64) {
	defer client.Close()
	pr := p.profile

	// Read one request (headers + body) off the client.
	br := bufio.NewReader(client)
	req, err := http.ReadRequest(br)
	if err != nil {
		p.errs.Add(1)
		return
	}
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		p.errs.Add(1)
		return
	}

	if pr.LatencyProb > 0 && p.draw(n, saltLatency) < pr.LatencyProb {
		span := pr.LatencyMax - pr.LatencyMin
		d := pr.LatencyMin
		if span > 0 {
			d += time.Duration(p.draw(n, saltLatencyAmount) * float64(span))
		}
		p.delayed.Add(1)
		time.Sleep(d)
	}

	if pr.Reject503Prob > 0 && p.draw(n, salt503) < pr.Reject503Prob {
		p.i503.Add(1)
		fmt.Fprintf(client, "HTTP/1.1 503 Service Unavailable\r\n"+
			"Content-Type: application/json\r\nRetry-After: 1\r\nConnection: close\r\n"+
			"Content-Length: %d\r\n\r\n%s", len(injected503Body), injected503Body)
		return
	}

	// Decide the response fate up front so the cut applies from byte one
	// of the stream (headers included — clients must survive that too).
	cut := -1
	reset := false
	switch {
	case pr.ResetProb > 0 && p.draw(n, saltReset) < pr.ResetProb:
		reset = true
		cut = 1 + int(p.draw(n, saltCutOffset)*float64(pr.CutAfterMaxBytes))
		p.resets.Add(1)
	case pr.TruncateProb > 0 && p.draw(n, saltTruncate) < pr.TruncateProb:
		cut = 1 + int(p.draw(n, saltCutOffset)*float64(pr.CutAfterMaxBytes))
		p.truncs.Add(1)
	}

	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	upstream, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		p.errs.Add(1)
		// The backend is down (mid-drill kill): tell the client in-protocol
		// so it backs off and retries instead of seeing a naked hangup.
		fmt.Fprintf(client, "HTTP/1.1 503 Service Unavailable\r\n"+
			"Content-Type: application/json\r\nRetry-After: 1\r\nConnection: close\r\n"+
			"Content-Length: %d\r\n\r\n%s", len(backendDownBody), backendDownBody)
		return
	}
	defer upstream.Close()

	// One exchange per connection: force Connection: close upstream so the
	// response is EOF-delimited and the client never tries to reuse a
	// connection whose next exchange we might corrupt.
	req.Close = true
	req.Header.Set("Connection", "close")
	req.Body = io.NopCloser(newBytesReader(body))
	req.ContentLength = int64(len(body))
	if err := req.Write(upstream); err != nil {
		p.errs.Add(1)
		return
	}

	// Forward raw response bytes, applying the drawn cut.
	var w io.Writer = client
	if cut >= 0 {
		w = &cutWriter{w: client, remaining: cut}
	}
	_, cpErr := io.Copy(w, upstream)
	if cut >= 0 {
		if reset {
			// SetLinger(0) turns Close into an RST: the client sees a hard
			// connection reset, not a graceful FIN.
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		return
	}
	if cpErr != nil {
		p.errs.Add(1)
	}
}

// errCut is the sentinel a cutWriter returns once its budget is spent.
var errCut = fmt.Errorf("faultproxy: response cut")

// cutWriter forwards at most `remaining` bytes, then errors the copy.
type cutWriter struct {
	w         io.Writer
	remaining int
}

func (c *cutWriter) Write(b []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errCut
	}
	if len(b) > c.remaining {
		n, _ := c.w.Write(b[:c.remaining])
		c.remaining = 0
		return n, errCut
	}
	n, err := c.w.Write(b)
	c.remaining -= n
	return n, err
}

const (
	injected503Body = `{"error":{"kind":"unavailable","op":"proxy","message":"injected fault: service unavailable"}}`
	backendDownBody = `{"error":{"kind":"unavailable","op":"proxy","message":"backend connection refused"}}`
)

// newBytesReader avoids importing bytes just for one reader.
func newBytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
