package faultproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend returns a test server that echoes a fixed-size body.
func backend(t *testing.T, size int) *httptest.Server {
	t.Helper()
	body := strings.Repeat("x", size)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func targetOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// oneShot performs a GET through the proxy on a fresh connection.
func oneShot(t *testing.T, p *Proxy) (*http.Response, []byte, error) {
	t.Helper()
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 10 * time.Second}
	resp, err := hc.Get(p.URL() + "/echo")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func TestPassThrough(t *testing.T) {
	srv := backend(t, 1000)
	p, err := New(targetOf(srv), 1, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 5; i++ {
		resp, body, err := oneShot(t, p)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 200 || len(body) != 1000 {
			t.Fatalf("request %d: status %d, %d bytes", i, resp.StatusCode, len(body))
		}
	}
	st := p.Stats()
	if st.Connections != 5 || st.Injected503+st.Resets+st.Truncations+st.Delayed != 0 {
		t.Fatalf("zero profile injected faults: %+v", st)
	}
}

func TestInjected503HasRetryAfter(t *testing.T) {
	srv := backend(t, 100)
	p, err := New(targetOf(srv), 7, Profile{Reject503Prob: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, body, err := oneShot(t, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "unavailable") {
		t.Fatalf("body = %q", body)
	}
	if p.Stats().Injected503 != 1 {
		t.Fatalf("stats: %+v", p.Stats())
	}
}

func TestResetCutsResponse(t *testing.T) {
	// Response far larger than the cut bound, so every reset truncates.
	srv := backend(t, 1<<20)
	p, err := New(targetOf(srv), 3, Profile{ResetProb: 1, CutAfterMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, body, err := oneShot(t, p)
	if err == nil && len(body) == 1<<20 {
		t.Fatal("full response delivered despite reset profile")
	}
	if p.Stats().Resets == 0 {
		t.Fatalf("no reset recorded: %+v", p.Stats())
	}
}

func TestTruncateCutsResponse(t *testing.T) {
	srv := backend(t, 1<<20)
	p, err := New(targetOf(srv), 5, Profile{TruncateProb: 1, CutAfterMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, body, err := oneShot(t, p)
	if err == nil && len(body) == 1<<20 {
		t.Fatal("full response delivered despite truncate profile")
	}
	if p.Stats().Truncations == 0 {
		t.Fatalf("no truncation recorded: %+v", p.Stats())
	}
}

func TestLatencyInjection(t *testing.T) {
	srv := backend(t, 10)
	p, err := New(targetOf(srv), 11, Profile{
		LatencyProb: 1, LatencyMin: 30 * time.Millisecond, LatencyMax: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	if _, _, err := oneShot(t, p); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("round trip %v, want >= 30ms of injected latency", d)
	}
	if p.Stats().Delayed != 1 {
		t.Fatalf("stats: %+v", p.Stats())
	}
}

// TestDeterministicFaultSequence: same seed + same profile ⇒ the same
// per-connection fault decisions, independent of wall clock.
func TestDeterministicFaultSequence(t *testing.T) {
	srv := backend(t, 4096)
	prof := Profile{Reject503Prob: 0.3, TruncateProb: 0.3, CutAfterMaxBytes: 128}

	run := func(seed int64) Stats {
		p, err := New(targetOf(srv), seed, prof)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 40; i++ {
			oneShot(t, p) // errors expected under faults
		}
		return p.Stats()
	}

	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
	if a.Injected503 == 0 || a.Truncations == 0 {
		t.Fatalf("profile injected nothing over 40 connections: %+v", a)
	}
	c := run(43)
	if a == c {
		t.Fatalf("different seeds produced identical fault sequence: %+v", a)
	}
}

func TestSetTargetRetargetsNewConnections(t *testing.T) {
	srvA := backend(t, 11)
	srvB := backend(t, 22)
	p, err := New(targetOf(srvA), 1, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, body, err := oneShot(t, p)
	if err != nil || len(body) != 11 {
		t.Fatalf("before retarget: %d bytes, err %v", len(body), err)
	}
	p.SetTarget(targetOf(srvB))
	_, body, err = oneShot(t, p)
	if err != nil || len(body) != 22 {
		t.Fatalf("after retarget: %d bytes, err %v", len(body), err)
	}
}

func TestBackendDownYields503(t *testing.T) {
	srv := backend(t, 10)
	target := targetOf(srv)
	srv.Close() // port now refuses connections

	p, err := New(target, 1, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, _, err := oneShot(t, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("status %d Retry-After %q, want 503 / 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if p.Stats().Errors == 0 {
		t.Fatalf("no error recorded: %+v", p.Stats())
	}
}
