// Package baselines implements the comparator optimizers of the paper's
// evaluation (Section 7): the production Baseline (Pig's rule-based
// multi-query optimization plus rule-of-thumb configuration tuning),
// Starfish (cost-based configuration only), YSmart (rule-based packing that
// minimizes the job count), and MRShare (cost-based horizontal packing with
// rule-based configuration).
package baselines

import (
	"context"
	"fmt"
	"sort"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Planner is the common interface of all workflow optimizers compared in
// the evaluation.
type Planner interface {
	// Name labels the planner in result tables.
	Name() string
	// Plan returns an optimized copy of the workflow.
	Plan(w *wf.Workflow) (*wf.Workflow, error)
}

// ContextPlanner extends Planner with a cancellable variant. All built-in
// planners implement it; callers holding a plain Planner can type-assert.
type ContextPlanner interface {
	Planner
	// PlanContext is Plan under a context: long cost-based searches stop
	// promptly with ctx.Err() when the context is cancelled.
	PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error)
}

// RuleConfig applies rule-of-thumb configuration tuning in place, standing
// in for the "manually-tuned using rules-of-thumb" settings of the paper's
// Baseline (Cloudera's classic Hadoop tuning tips): reducers sized to
// ~90% of the cluster's reduce slots, a large sort buffer and merge
// factor, and the combiner enabled where one exists.
func RuleConfig(w *wf.Workflow, c *mrsim.Cluster) {
	reducers := int(0.9 * float64(c.TotalReduceSlots()))
	if reducers < 1 {
		reducers = 1
	}
	for _, j := range w.Jobs {
		if !j.PinnedReducers {
			j.Config.NumReduceTasks = reducers
		}
		j.Config.SplitSizeMB = 128
		j.Config.SortBufferMB = 200
		j.Config.IOSortFactor = 25
		j.Config.UseCombiner = hasCombiner(j)
		j.Config.CompressMapOutput = false
		j.Config.CompressOutput = false
	}
}

func hasCombiner(j *wf.Job) bool {
	for _, g := range j.ReduceGroups {
		if !g.MapOnly() && g.Combiner != nil {
			return true
		}
	}
	return false
}

// packAllSameInput repeatedly horizontally packs every set of jobs sharing
// an input dataset, until no packing applies — Pig's unconditional
// multi-query execution rule.
func packAllSameInput(w *wf.Workflow) *wf.Workflow {
	plan := w.Clone()
	for {
		groups := sameInputGroups(plan)
		applied := false
		for _, g := range groups {
			if trans.CanHorizontal(plan, g, true) != nil {
				continue
			}
			next, err := trans.Horizontal(plan, g, true)
			if err == nil {
				plan = next
				applied = true
				break
			}
		}
		if !applied {
			return plan
		}
	}
}

// sameInputGroups lists maximal sets of single-input jobs sharing their
// input, deterministically ordered.
func sameInputGroups(w *wf.Workflow) [][]string {
	byInput := map[string][]string{}
	for _, j := range w.Jobs {
		ins := j.Inputs()
		if len(ins) == 1 {
			byInput[ins[0]] = append(byInput[ins[0]], j.ID)
		}
	}
	var inputs []string
	for in, ids := range byInput {
		if len(ids) >= 2 {
			inputs = append(inputs, in)
		}
	}
	sort.Strings(inputs)
	var out [][]string
	for _, in := range inputs {
		ids := byInput[in]
		sort.Strings(ids)
		out = append(out, ids)
	}
	return out
}

// Baseline is the production comparator: Pig's rule-based horizontal
// packing wherever possible, plus rule-of-thumb configurations.
type Baseline struct {
	Cluster *mrsim.Cluster
}

// Name implements Planner.
func (b Baseline) Name() string { return "Baseline" }

// Plan implements Planner.
func (b Baseline) Plan(w *wf.Workflow) (*wf.Workflow, error) {
	plan := packAllSameInput(w)
	RuleConfig(plan, b.Cluster)
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return plan, nil
}

// PlanContext implements ContextPlanner. Baseline's rule pass is fast, so
// only the entry is checked.
func (b Baseline) PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Plan(w)
}

// Starfish is the cost-based configuration-only comparator [8]: it finds
// good configuration parameter settings for each job but misses every
// packing opportunity.
type Starfish struct {
	Cluster *mrsim.Cluster
	Seed    int64
}

// Name implements Planner.
func (s Starfish) Name() string { return "Starfish" }

// Plan implements Planner.
func (s Starfish) Plan(w *wf.Workflow) (*wf.Workflow, error) {
	return s.PlanContext(context.Background(), w)
}

// PlanContext implements ContextPlanner.
func (s Starfish) PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error) {
	opt := optimizer.New(s.Cluster, optimizer.Options{
		Groups: optimizer.GroupConfigOnly,
		Seed:   s.Seed,
	})
	res, err := opt.OptimizeContext(ctx, w)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// YSmart is the rule-based comparator [11]: it packs vertically and
// horizontally wherever preconditions allow, minimizing the total number of
// jobs regardless of cost, with rule-based configuration settings
// (the paper's enhancement).
type YSmart struct {
	Cluster *mrsim.Cluster
}

// Name implements Planner.
func (y YSmart) Name() string { return "YSmart" }

// Plan implements Planner.
func (y YSmart) Plan(w *wf.Workflow) (*wf.Workflow, error) {
	return y.PlanContext(context.Background(), w)
}

// PlanContext implements ContextPlanner, checking between packing rounds.
func (y YSmart) PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error) {
	plan := w.Clone()
	for guard := 0; guard < 4*len(w.Jobs)+8; guard++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if next, ok := ySmartStep(plan); ok {
			plan = next
			continue
		}
		break
	}
	RuleConfig(plan, y.Cluster)
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return plan, nil
}

// ySmartStep applies the first available job-eliminating transformation:
// inter-job packing (directly removes a job), intra-job packing (enables
// inter), then horizontal packing of same-input siblings.
func ySmartStep(plan *wf.Workflow) (*wf.Workflow, bool) {
	order, err := plan.TopoSort()
	if err != nil {
		return nil, false
	}
	for _, jp := range order {
		for _, jc := range plan.JobConsumers(jp) {
			if trans.CanInterVertical(plan, jp.ID, jc.ID) == nil {
				if next, err := trans.InterVertical(plan, jp.ID, jc.ID); err == nil {
					return next, true
				}
			}
		}
	}
	for _, jc := range order {
		if trans.CanIntraVertical(plan, jc.ID) == nil {
			// Only worthwhile for YSmart if it unlocks an inter packing
			// that removes a job; apply and check.
			mid, err := trans.IntraVertical(plan, jc.ID)
			if err != nil {
				continue
			}
			for _, jp := range mid.JobProducers(mid.Job(jc.ID)) {
				if trans.CanInterVertical(mid, jp.ID, jc.ID) == nil {
					if next, err := trans.InterVertical(mid, jp.ID, jc.ID); err == nil {
						return next, true
					}
				}
			}
		}
	}
	for _, g := range sameInputGroups(plan) {
		if trans.CanHorizontal(plan, g, true) == nil {
			if next, err := trans.Horizontal(plan, g, true); err == nil {
				return next, true
			}
		}
	}
	return nil, false
}

// MRShare is the cost-based horizontal packing comparator [13]: it decides
// scan sharing with the What-if cost model but applies rule-based
// configurations and considers neither vertical packing nor partition
// function transformations.
type MRShare struct {
	Cluster *mrsim.Cluster
	Seed    int64
}

// Name implements Planner.
func (m MRShare) Name() string { return "MRShare" }

// Plan implements Planner.
func (m MRShare) Plan(w *wf.Workflow) (*wf.Workflow, error) {
	return m.PlanContext(context.Background(), w)
}

// PlanContext implements ContextPlanner.
func (m MRShare) PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error) {
	plan := w.Clone()
	RuleConfig(plan, m.Cluster)
	opt := optimizer.New(m.Cluster, optimizer.Options{
		Groups:              optimizer.GroupHorizontal,
		DisablePartition:    true,
		DisableConfigSearch: true,
		Seed:                m.Seed,
	})
	res, err := opt.OptimizeContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// StubbyPlanner adapts the full optimizer (or one of its transformation
// groups) to the Planner interface.
type StubbyPlanner struct {
	Cluster *mrsim.Cluster
	Groups  optimizer.Groups
	Seed    int64
	Label   string
	// DisableIncremental forces every configuration-search probe through
	// the monolithic What-if estimator (see optimizer.Options). Incremental
	// estimation is bit-transparent, so this never changes plans; the
	// equivalence suites run under both settings to keep it that way.
	DisableIncremental bool
}

// Name implements Planner.
func (s StubbyPlanner) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "Stubby"
}

// Plan implements Planner.
func (s StubbyPlanner) Plan(w *wf.Workflow) (*wf.Workflow, error) {
	return s.PlanContext(context.Background(), w)
}

// PlanContext implements ContextPlanner.
func (s StubbyPlanner) PlanContext(ctx context.Context, w *wf.Workflow) (*wf.Workflow, error) {
	res, err := optimizer.New(s.Cluster, s.Options()).OptimizeContext(ctx, w)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// Options exposes the optimizer options this planner runs with, letting a
// caller that wants the full search trace (or progress observation) drive
// the optimizer directly with the same settings.
func (s StubbyPlanner) Options() optimizer.Options {
	return optimizer.Options{Groups: s.Groups, Seed: s.Seed, DisableIncremental: s.DisableIncremental}
}
