package baselines_test

import (
	"fmt"
	"os"
	"testing"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// The end-to-end planner equivalence suite: every registered planner, run
// over randomly generated annotated workflows with materialized data, must
// produce a plan that computes the same final answers as the unoptimized
// workflow (Stubby-vs-identity semantic equivalence, checked by actually
// executing both), and full Stubby's estimated cost must not lose to any
// comparator restricted to a subset of its plan space (the cost-dominance
// invariant — a regression here means a transformation group stopped being
// enumerated or the search stopped finding plans it used to find).

// equivSeeds sizes the matrix: equivSeeds workflows x all registered
// planners. The CI acceptance floor is 200 (workflow, planner) pairs.
const equivSeeds = 30

// dominanceSlack is the tolerated relative excess of Stubby's estimated
// cost over a comparator's. Stubby's plan space is a superset of every
// comparator's, but its unit-by-unit greedy search and bounded RRS budget
// are heuristic, so exact dominance is not a theorem; a small slack keeps
// the invariant tight enough to flag real plan-space regressions without
// tripping on search noise.
const dominanceSlack = 1.05

// dominanceBaselines are the comparator optimizers the dominance invariant
// is asserted against. Stubby's own single-group ablations (vertical,
// horizontal) are excluded from the hard check: the optimizer picks each
// unit's subplan by the paper's unit-completion-time metric, so on
// adversarial random DAGs the greedy interaction between the two
// structural phases can leave full Stubby marginally behind one of its
// ablations — expected search behavior, not a plan-space regression. Their
// worst ratio is still computed and logged so drift stays visible.
var dominanceBaselines = []string{"baseline", "starfish", "ysmart", "mrshare"}

// disableIncremental mirrors the differential suite's env hook so CI can
// run the whole equivalence matrix in both estimation modes.
func disableIncremental() bool {
	return os.Getenv("STUBBY_DISABLE_INCREMENTAL") != ""
}

func TestGeneratedPlannerEquivalenceAndDominance(t *testing.T) {
	reg := baselines.DefaultRegistry()
	pairs := 0
	worstRatio := 0.0
	for seed := int64(1); seed <= equivSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Options{})
			if err := profile.NewProfiler(c.Cluster, 0.5, seed).Annotate(c.Workflow, c.DFS); err != nil {
				t.Fatalf("seed %d: profiling failed: %v", seed, err)
			}
			s := c.Subject()
			ref, err := s.Reference()
			if err != nil {
				t.Fatal(err)
			}
			est := whatif.New(c.Cluster)
			costs := map[string]float64{}
			for _, spec := range reg.Specs() {
				p := spec.New(c.Cluster, seed)
				if sp, ok := p.(baselines.StubbyPlanner); ok && disableIncremental() {
					sp.DisableIncremental = true
					p = sp
				}
				plan, err := p.Plan(c.Workflow)
				if err != nil {
					t.Errorf("seed %d: planner %s failed: %v", seed, spec.Name, err)
					continue
				}
				if err := s.CheckPlan(ref, spec.Name, plan); err != nil {
					t.Error(err)
					continue
				}
				e, err := est.Estimate(plan)
				if err != nil {
					t.Errorf("seed %d: estimating %s's plan: %v", seed, spec.Name, err)
					continue
				}
				costs[spec.Name] = e.Makespan
				pairs++
			}
			stubby, ok := costs["stubby"]
			if !ok {
				return // already reported above
			}
			for _, spec := range reg.Specs() {
				other, ok := costs[spec.Name]
				if !ok || other <= 0 {
					continue
				}
				if r := stubby / other; r > worstRatio {
					worstRatio = r
				}
			}
			for _, name := range dominanceBaselines {
				other, ok := costs[name]
				if !ok || other <= 0 {
					continue
				}
				if stubby > other*dominanceSlack {
					t.Errorf("seed %d: cost dominance violated: stubby %.3fs > %s %.3fs (x%.3f)\nreproduce with: stubby-bench -gen -seed=%d",
						seed, stubby, name, other, stubby/other, seed)
				}
			}
		})
	}
	t.Logf("equivalence verified over %d (workflow, planner) pairs; worst stubby/comparator cost ratio %.4f", pairs, worstRatio)
	if pairs < 200 {
		t.Errorf("equivalence suite covered only %d pairs, want >= 200", pairs)
	}
}
