package baselines

import (
	"math/rand"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

func passMap(key, value keyval.Tuple, emit wf.Emit) { emit(key, value) }

func sumReduce(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

func job(id, in, out string, k2InK1 bool) *wf.Job {
	keyIn := []string{"k"}
	if !k2InK1 {
		keyIn = []string{"q"}
	}
	return &wf.Job{
		ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: in,
			Stages: []wf.Stage{wf.MapStage("M_"+id, passMap, 1e-6)},
			KeyIn:  keyIn, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"v"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: out,
			Stages: []wf.Stage{wf.ReduceStage("R_"+id, sumReduce, nil, 1e-6)},
			KeyIn:  []string{"k"}, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"sum"},
		}},
	}
}

// fanout builds base -> {A, B} (same input) plus a downstream C of A.
func fanout() *wf.Workflow {
	return &wf.Workflow{
		Name: "fanout",
		Jobs: []*wf.Job{
			job("A", "base", "dA", true),
			job("B", "base", "dB", true),
			job("C", "dA", "dC", true),
		},
		Datasets: []*wf.Dataset{
			{ID: "base", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "dA", KeyFields: []string{"k"}}, {ID: "dB", KeyFields: []string{"k"}}, {ID: "dC"},
		},
	}
}

func testCluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.VirtualScale = 1000
	return c
}

func TestRuleConfig(t *testing.T) {
	w := fanout()
	c := testCluster()
	comb := wf.ReduceStage("C", sumReduce, nil, 1e-6)
	w.Jobs[0].ReduceGroups[0].Combiner = &comb
	w.Jobs[1].PinnedReducers = true
	w.Jobs[1].Config.NumReduceTasks = 7
	RuleConfig(w, c)
	if got := w.Jobs[0].Config.NumReduceTasks; got != 90 {
		t.Errorf("rule reducers = %d, want 90 (0.9 x 100 slots)", got)
	}
	if !w.Jobs[0].Config.UseCombiner {
		t.Error("combiner should be enabled where present")
	}
	if w.Jobs[2].Config.UseCombiner {
		t.Error("combiner enabled where absent")
	}
	if w.Jobs[1].Config.NumReduceTasks != 7 {
		t.Error("rule config must not override pinned reducers")
	}
}

func TestBaselinePacksAllSameInput(t *testing.T) {
	b := Baseline{Cluster: testCluster()}
	plan, err := b.Plan(fanout())
	if err != nil {
		t.Fatal(err)
	}
	// A and B share base -> packed; C remains.
	if len(plan.Jobs) != 2 {
		t.Fatalf("baseline plan has %d jobs, want 2: %s", len(plan.Jobs), plan.Summary())
	}
	packed := plan.Job("A+B")
	if packed == nil {
		t.Fatalf("packed job missing: %s", plan.Summary())
	}
	if len(packed.ReduceGroups) != 2 {
		t.Error("packed job should carry both reduce groups")
	}
	// Rule config applied.
	if packed.Config.NumReduceTasks != 90 {
		t.Errorf("baseline reducers = %d", packed.Config.NumReduceTasks)
	}
}

func TestYSmartMinimizesJobs(t *testing.T) {
	// Chain where J2's grouping flows through J1 (packable) plus a
	// same-input sibling pair: YSmart should pack aggressively.
	w := &wf.Workflow{
		Name: "ysmart",
		Jobs: []*wf.Job{
			job("J1", "base", "d1", true),
			job("J2", "d1", "d2", true),
		},
		Datasets: []*wf.Dataset{
			{ID: "base", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"}},
			{ID: "d1", KeyFields: []string{"k"}},
			{ID: "d2"},
		},
	}
	y := YSmart{Cluster: testCluster()}
	plan, err := y.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 1 {
		t.Fatalf("YSmart left %d jobs, want 1: %s", len(plan.Jobs), plan.Summary())
	}
	// YSmart packs regardless of cost; the packed job keeps rule config.
	if plan.Jobs[0].Config.SortBufferMB != 200 {
		t.Error("rule config not applied")
	}
}

func TestYSmartPacksFanoutHorizontally(t *testing.T) {
	y := YSmart{Cluster: testCluster()}
	plan, err := y.Plan(fanout())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range plan.Jobs {
		if len(j.ReduceGroups) > 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("YSmart did not pack same-input siblings: %s", plan.Summary())
	}
}

func TestPlannersPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := make([]keyval.Pair, 4000)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(rng.Intn(50))), Value: keyval.T(int64(1))}
	}
	mk := func() *mrsim.DFS {
		dfs := mrsim.NewDFS()
		if err := dfs.Ingest("base", pairs, mrsim.IngestSpec{
			NumPartitions: 4, KeyFields: []string{"k"},
			Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
		}); err != nil {
			t.Fatal(err)
		}
		return dfs
	}
	cluster := testCluster()
	w := fanout()
	if err := profile.NewProfiler(cluster, 1.0, 1).Annotate(w, mk()); err != nil {
		t.Fatal(err)
	}
	ground := map[string]map[int64]int64{}
	dfs0 := mk()
	if _, err := mrsim.NewEngine(cluster, dfs0).RunWorkflow(w); err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"dB", "dC"} {
		stored, _ := dfs0.Get(ds)
		m := map[int64]int64{}
		for _, p := range stored.AllPairs() {
			m[p.Key[0].(int64)] += p.Value[0].(int64)
		}
		ground[ds] = m
	}
	planners := []Planner{
		Baseline{Cluster: cluster},
		Starfish{Cluster: cluster, Seed: 2},
		YSmart{Cluster: cluster},
		MRShare{Cluster: cluster, Seed: 2},
		StubbyPlanner{Cluster: cluster, Seed: 2},
	}
	for _, p := range planners {
		plan, err := p.Plan(w)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s produced invalid plan: %v", p.Name(), err)
		}
		dfs := mk()
		if _, err := mrsim.NewEngine(cluster, dfs).RunWorkflow(plan); err != nil {
			t.Fatalf("%s plan failed: %v", p.Name(), err)
		}
		for ds, want := range ground {
			stored, ok := dfs.Get(ds)
			if !ok {
				t.Fatalf("%s: sink %s missing", p.Name(), ds)
			}
			got := map[int64]int64{}
			for _, pr := range stored.AllPairs() {
				got[pr.Key[0].(int64)] += pr.Value[0].(int64)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: sink %s has %d keys, want %d", p.Name(), ds, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%s: sink %s key %d = %d, want %d", p.Name(), ds, k, got[k], v)
				}
			}
		}
	}
}

func TestStarfishOnlyTunesConfig(t *testing.T) {
	cluster := testCluster()
	w := fanout()
	rng := rand.New(rand.NewSource(9))
	pairs := make([]keyval.Pair, 3000)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(rng.Intn(40))), Value: keyval.T(int64(1))}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("base", pairs, mrsim.IngestSpec{NumPartitions: 4, KeyFields: []string{"k"},
		Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}}}); err != nil {
		t.Fatal(err)
	}
	if err := profile.NewProfiler(cluster, 1.0, 1).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	s := Starfish{Cluster: cluster, Seed: 3}
	plan, err := s.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != len(w.Jobs) {
		t.Error("Starfish changed the plan structure")
	}
	changed := false
	for i, j := range plan.Jobs {
		if j.Config != w.Jobs[i].Config {
			changed = true
		}
	}
	if !changed {
		t.Error("Starfish did not tune any configuration")
	}
}

func TestMRSharePacksOnlyHorizontally(t *testing.T) {
	cluster := testCluster()
	w := fanout()
	m := MRShare{Cluster: cluster, Seed: 4}
	plan, err := m.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plan.Jobs {
		if j.AlignMapToInput {
			t.Error("MRShare applied vertical packing")
		}
		for _, g := range j.ReduceGroups {
			if g.RunsMapSide {
				t.Error("MRShare moved a reduce pipeline map-side")
			}
		}
	}
}

func TestPlannerNames(t *testing.T) {
	c := testCluster()
	cases := []struct {
		p    Planner
		want string
	}{
		{Baseline{Cluster: c}, "Baseline"},
		{Starfish{Cluster: c}, "Starfish"},
		{YSmart{Cluster: c}, "YSmart"},
		{MRShare{Cluster: c}, "MRShare"},
		{StubbyPlanner{Cluster: c}, "Stubby"},
		{StubbyPlanner{Cluster: c, Label: "Vertical"}, "Vertical"},
	}
	for _, cse := range cases {
		if got := cse.p.Name(); got != cse.want {
			t.Errorf("Name() = %q, want %q", got, cse.want)
		}
	}
}
