package baselines

import (
	"fmt"
	"strings"
	"sync"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
)

// Spec describes one registered planner: a canonical name, a one-line
// description for listings, and a constructor binding the planner to a
// cluster and seed.
type Spec struct {
	// Name is the canonical (lowercase) registry key.
	Name string
	// Description is a one-line summary for -list-optimizers output.
	Description string
	// New constructs the planner for a cluster. Seed drives cost-based
	// planners deterministically; rule-based planners ignore it.
	New func(c *mrsim.Cluster, seed int64) Planner
}

// Registry maps planner names to constructors. It replaces the
// string→planner switches that used to be duplicated across the CLI, the
// benchmark harness, and the experiment drivers, and gives user code one
// place to add planners. A Registry is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]Spec
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register adds a spec under its (case-insensitive) name. Registering an
// existing name replaces it, so callers can shadow a built-in planner.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" || s.New == nil {
		return fmt.Errorf("baselines: spec needs a name and a constructor")
	}
	key := strings.ToLower(s.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.specs[key]; !exists {
		r.order = append(r.order, key)
	}
	s.Name = key
	r.specs[key] = s
	return nil
}

// Lookup returns the spec registered under name (case-insensitive).
func (r *Registry) Lookup(name string) (Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[strings.ToLower(name)]
	return s, ok
}

// New constructs the named planner for the cluster, or an error naming the
// registered alternatives.
func (r *Registry) New(name string, c *mrsim.Cluster, seed int64) (Planner, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("baselines: unknown planner %q (have %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return s.New(c, seed), nil
}

// Names lists the registered planner names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Specs lists the registered specs in registration order.
func (r *Registry) Specs() []Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Spec, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.specs[name])
	}
	return out
}

// Clone returns an independent copy, so a session can extend the default
// registry without mutating it for everyone else.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := &Registry{
		specs: make(map[string]Spec, len(r.specs)),
		order: append([]string(nil), r.order...),
	}
	for k, v := range r.specs {
		out.specs[k] = v
	}
	return out
}

// builtinSpecs is the paper's comparator set (Section 7.3) plus the Stubby
// variants restricted to one transformation group (Figure 11).
func builtinSpecs() []Spec {
	return []Spec{
		{
			Name:        "stubby",
			Description: "full transformation-based cost-based optimizer (the paper's system)",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return StubbyPlanner{Cluster: c, Groups: optimizer.GroupAll, Seed: seed, Label: "Stubby"}
			},
		},
		{
			Name:        "vertical",
			Description: "Stubby restricted to the Vertical transformation group",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return StubbyPlanner{Cluster: c, Groups: optimizer.GroupVertical, Seed: seed, Label: "Vertical"}
			},
		},
		{
			Name:        "horizontal",
			Description: "Stubby restricted to the Horizontal transformation group",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return StubbyPlanner{Cluster: c, Groups: optimizer.GroupHorizontal, Seed: seed, Label: "Horizontal"}
			},
		},
		{
			Name:        "baseline",
			Description: "production baseline: Pig rule-based packing + rule-of-thumb configs",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return Baseline{Cluster: c}
			},
		},
		{
			Name:        "starfish",
			Description: "cost-based configuration-only tuning (no packing)",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return Starfish{Cluster: c, Seed: seed}
			},
		},
		{
			Name:        "ysmart",
			Description: "rule-based packing minimizing job count",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return YSmart{Cluster: c}
			},
		},
		{
			Name:        "mrshare",
			Description: "cost-based horizontal scan sharing, rule-based configs",
			New: func(c *mrsim.Cluster, seed int64) Planner {
				return MRShare{Cluster: c, Seed: seed}
			},
		},
	}
}

// defaultRegistry holds the built-ins, constructed once.
var defaultRegistry = func() *Registry {
	r := NewRegistry()
	for _, s := range builtinSpecs() {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
	return r
}()

// DefaultRegistry returns the shared registry of built-in planners. Callers
// that want to add planners without affecting other users should Clone it.
func DefaultRegistry() *Registry { return defaultRegistry }
