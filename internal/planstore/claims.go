package planstore

// claims.go extends the per-process single-flight of GetOrCompute across
// processes: before computing, a replica takes a claim on the address — a
// flock-held file under dir/claims/ — and replicas that find the claim held
// poll the store instead of computing, so N concurrent submissions of one
// workflow across a whole cluster of replicas cost exactly one
// optimization.
//
// The discipline is the same crash-safe one the segment writers (and
// internal/catalog) use: the flock, not the file's existence, is the claim.
// A replica that dies mid-compute drops its lock with its process, so the
// next waiter's try-acquire simply succeeds and takes the computation over
// — a stale claim file can delay nothing and deadlock nothing. A finished
// owner removes its claim file before unlocking; an acquirer therefore
// re-verifies (via inode identity) that the file it locked is still the
// file at the claim path, and treats a lock on an orphaned inode as a
// failed attempt.

import (
	"context"
	"os"
	"path/filepath"
	"time"
)

// claimPollInterval is how often a waiting replica re-probes the store and
// re-tries the claim. Optimizations run for milliseconds to seconds, so a
// short poll keeps waiters prompt without meaningful load (each probe is an
// in-memory map lookup plus, at worst, a directory rescan).
const claimPollInterval = 10 * time.Millisecond

// claim is one held cross-process claim: the flocked file under claims/.
type claim struct{ f *os.File }

func (c *claim) release() {
	// Remove before unlocking: once the path is gone no fresh opener can
	// lock this inode, and anyone who raced the removal fails the inode
	// identity check below and retries against the new path.
	_ = os.Remove(c.f.Name())
	funlock(c.f)
	_ = c.f.Close()
}

func (s *Store) claimPath(addr Address) string {
	return filepath.Join(s.dir, "claims", addr.String()+".lock")
}

// tryClaim attempts to become the cluster-wide computing replica for addr.
// Any failure — the lock held elsewhere, an orphaned inode, an I/O error —
// reports false; the caller waits and retries.
func (s *Store) tryClaim(addr Address) (*claim, bool) {
	path := s.claimPath(addr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, false
	}
	if !tryFlock(f) {
		f.Close()
		return nil, false
	}
	fi, ferr := f.Stat()
	di, derr := os.Stat(path)
	if ferr != nil || derr != nil || !os.SameFile(fi, di) {
		funlock(f)
		f.Close()
		return nil, false
	}
	return &claim{f: f}, true
}

// waitOrClaim blocks until this process holds addr's claim (the caller must
// compute), another replica's publish for addr lands (the answer is the
// returned document), or ctx ends. Exactly one of claim/doc is non-nil on a
// nil error.
func (s *Store) waitOrClaim(ctx context.Context, key Key, addr Address) (*claim, []byte, error) {
	if cl, ok := s.tryClaim(addr); ok {
		s.claims.Add(1)
		return cl, nil, nil
	}
	s.claimWaits.Add(1)
	timer := time.NewTimer(claimPollInterval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-timer.C:
		}
		if doc, ok, err := s.Get(key); err != nil {
			return nil, nil, err
		} else if ok {
			s.claimHits.Add(1)
			return nil, doc, nil
		}
		if cl, ok := s.tryClaim(addr); ok {
			s.claims.Add(1)
			return cl, nil, nil
		}
		timer.Reset(claimPollInterval)
	}
}
