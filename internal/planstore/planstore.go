// Package planstore is a durable, content-addressed store for optimized
// plans: the persistence layer that lets a stubbyd replica (or a restarted
// process) answer a repeat submission without re-running the optimizer.
// Entries are opaque byte documents keyed by a 128-bit address derived from
// the canonical workflow fingerprint (package wf) plus everything else the
// optimization outcome depends on — cluster digest, planner name, search
// seed — so two keys collide only when the optimizer would produce
// byte-identical plans for both.
//
// # On-disk layout
//
// A store directory holds append-only segment files plus a snapshot index:
//
//	dir/
//	  segments/seg-000001.log   one per writer lifetime, CRC-checked records
//	  index.json                atomic-rename snapshot of address → location
//
// Each writer appends to its own segment, created with O_EXCL and held
// under an exclusive flock for the writer's lifetime. No two processes ever
// write the same file, so the write path needs no cross-process
// coordination beyond the per-fingerprint single-flight inside each
// process; the read path is lock-free (records are immutable once their
// CRC validates). Replicas see each other's publishes by rescanning
// segments past their remembered high-water marks on a read miss.
//
// # Durability and crash safety
//
// A record is published by a single buffered write followed (by default) by
// fdatasync, and the index snapshot is published with the classic
// write-temp-then-rename dance. Reopening a directory is crash-safe: a
// valid index accelerates the load, a missing or corrupt one degrades to a
// full segment scan, and torn record tails — a crash mid-append — are
// detected by length/magic/CRC checks. Tails of segments whose writer is
// provably gone (their flock is free) are physically truncated to the last
// valid record; a live writer's tail is left alone and simply ignored until
// the record completes.
package planstore

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/stubby-mr/stubby/internal/wf"
)

// Key identifies one optimization outcome. Two equal keys always map to
// byte-identical optimized plans: the search is deterministic given the
// workflow fingerprint, the cluster, the planner, and the seed.
type Key struct {
	// Plan is the canonical fingerprint of the *submitted* workflow (not of
	// the optimized plan stored under the key).
	Plan wf.Fingerprint
	// Cluster digests the cluster description (estcache.ClusterFingerprint).
	Cluster uint64
	// Planner names the planner that produced the plan.
	Planner string
	// Seed is the search seed.
	Seed int64
}

// Address collapses the key into the 128-bit content address records are
// stored under.
func (k Key) Address() Address {
	h := fnv.New128a()
	var buf [8]byte
	for _, v := range []uint64{k.Plan[0], k.Plan[1], k.Cluster, uint64(k.Seed)} {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(k.Planner))
	var sum [16]byte
	h.Sum(sum[:0])
	return Address{binary.BigEndian.Uint64(sum[:8]), binary.BigEndian.Uint64(sum[8:])}
}

// Address is the 128-bit on-disk key of a record.
type Address [2]uint64

// String renders the address as 32 hex digits.
func (a Address) String() string { return fmt.Sprintf("%016x%016x", a[0], a[1]) }

// Stats is a point-in-time snapshot of store activity. All counters are
// cumulative since Open.
type Stats struct {
	// Hits counts lookups answered without running compute: memory hits,
	// disk hits, and single-flight waits on another caller's computation.
	Hits uint64
	// MemHits / DiskHits split Hits by where the bytes came from (waits on
	// an in-flight computation count toward Hits only).
	MemHits  uint64
	DiskHits uint64
	// Misses counts lookups that found nothing anywhere.
	Misses uint64
	// Computes counts GetOrCompute calls that actually ran compute — the
	// number of optimizations the whole process paid for.
	Computes uint64
	// Puts counts records appended to this writer's segment.
	Puts uint64
	// Evictions counts in-memory LRU evictions (disk entries are never
	// evicted).
	Evictions uint64
	// BytesWritten / BytesRead count record payload traffic to/from disk.
	BytesWritten uint64
	BytesRead    uint64
	// Errors counts background persistence failures (a failed append or
	// index publish); reads and computes still succeed when it rises.
	Errors uint64
	// Claims counts cross-process claims this store acquired — the times it
	// became the cluster-wide computing replica for an address.
	Claims uint64
	// ClaimWaits counts GetOrCompute calls that found another replica's
	// live claim and waited on it instead of computing.
	ClaimWaits uint64
	// ClaimHits counts waits answered by another replica's publish — the
	// cross-replica single-flight hits: optimizations this replica was
	// about to run that another replica's concurrent computation covered.
	ClaimHits uint64
	// Entries is the number of distinct addresses known (memory + disk).
	Entries int
	// Segments is the number of segment files in the directory.
	Segments int
}

// HitRate returns Hits over (Hits+Misses) in [0, 1] (zero when empty).
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// recLoc locates one record's payload inside a segment.
type recLoc struct {
	seg string
	off int64 // offset of the record header
	n   int   // payload length
}

// memEntry is one in-memory cached document.
type memEntry struct {
	addr Address
	doc  []byte
}

// flight tracks one in-progress computation other callers wait on.
type flight struct {
	done chan struct{}
	doc  []byte
	err  error
}

// Option configures a Store under construction.
type Option func(*Store)

// WithMemoryEntries bounds the in-memory document cache (default 256
// entries; <= 0 keeps the default). Disk entries are unbounded.
func WithMemoryEntries(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.memCap = n
		}
	}
}

// WithSync controls whether every appended record is fdatasync'd before
// Put returns (default true). Disabling trades crash durability of the
// most recent publishes for latency; the format stays crash-safe either
// way (a torn tail is detected and dropped on reopen).
func WithSync(sync bool) Option {
	return func(s *Store) { s.sync = sync }
}

// indexPublishEvery is how many Puts elapse between index snapshots. The
// index is purely an accelerator — reopen falls back to a segment scan —
// so publishing lazily costs nothing but reopen time.
const indexPublishEvery = 16

// Store is a durable content-addressed document store with an in-memory
// LRU front and a per-address single-flight. It is safe for concurrent use
// within a process, and any number of Stores (in one process or many) may
// share a directory.
type Store struct {
	dir    string
	segDir string
	memCap int
	sync   bool

	mu               sync.Mutex
	index            map[Address]recLoc        // disk records (this store has seen)
	mem              map[Address]*list.Element // of *memEntry
	lru              *list.List                // front = most recently used
	seg              *segmentWriter            // own segment; nil after Close
	marks            map[string]int64          // segment name → scanned high-water offset
	frozen           map[string]bool           // segments with a detected corrupt region
	putsSincePublish int
	closed           bool

	flMu    sync.Mutex
	flights map[Address]*flight

	hits, memHits, diskHits, misses   atomic.Uint64
	computes, puts, evictions         atomic.Uint64
	bytesWritten, bytesRead, errCount atomic.Uint64
	claims, claimWaits, claimHits     atomic.Uint64
}

// Open opens (creating if needed) the store directory: it loads the index
// snapshot when one is present and valid, scans segments for records past
// the snapshot, truncates torn tails of writer-less segments, and claims a
// fresh segment file for this store's own appends.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:     dir,
		segDir:  filepath.Join(dir, "segments"),
		memCap:  256,
		sync:    true,
		index:   make(map[Address]recLoc),
		mem:     make(map[Address]*list.Element),
		lru:     list.New(),
		marks:   make(map[string]int64),
		frozen:  make(map[string]bool),
		flights: make(map[Address]*flight),
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(s.segDir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "claims"), 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	s.loadIndex() // best effort; a corrupt index degrades to a full scan
	s.mu.Lock()
	s.recoverSegmentsLocked()
	if err := s.refreshLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	seg, err := openSegmentWriter(s.segDir)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.seg = seg
	s.marks[seg.name] = 0
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the document stored under key, consulting the in-memory LRU,
// then the known disk index, then — still on a miss — rescanning the
// directory for records other replicas published since the last look.
func (s *Store) Get(key Key) ([]byte, bool, error) {
	addr := key.Address()
	s.mu.Lock()
	if el, ok := s.mem[addr]; ok {
		s.lru.MoveToFront(el)
		doc := el.Value.(*memEntry).doc
		s.mu.Unlock()
		s.hits.Add(1)
		s.memHits.Add(1)
		return doc, true, nil
	}
	if doc, ok := s.readAndCacheLocked(addr); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		s.diskHits.Add(1)
		return doc, true, nil
	}
	// Nothing local: another replica may have published since we last
	// looked. Rescan past the high-water marks before declaring a miss.
	if err := s.refreshLocked(); err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	if doc, ok := s.readAndCacheLocked(addr); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		s.diskHits.Add(1)
		return doc, true, nil
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return nil, false, nil
}

// readAndCacheLocked reads addr's record payload from disk and promotes it
// into the memory LRU. Callers hold s.mu. A record that fails its CRC (disk
// rot after indexing) is dropped from the index and reported as absent.
func (s *Store) readAndCacheLocked(addr Address) ([]byte, bool) {
	loc, ok := s.index[addr]
	if !ok {
		return nil, false
	}
	doc, err := readRecordPayload(filepath.Join(s.segDir, loc.seg), loc.off, loc.n, addr)
	if err != nil {
		delete(s.index, addr)
		s.errCount.Add(1)
		return nil, false
	}
	s.bytesRead.Add(uint64(len(doc)))
	s.cacheLocked(addr, doc)
	return doc, true
}

// cacheLocked inserts doc into the memory LRU. Callers hold s.mu.
func (s *Store) cacheLocked(addr Address, doc []byte) {
	if el, ok := s.mem[addr]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*memEntry).doc = doc
		return
	}
	s.mem[addr] = s.lru.PushFront(&memEntry{addr: addr, doc: doc})
	for s.lru.Len() > s.memCap {
		old := s.lru.Back()
		s.lru.Remove(old)
		delete(s.mem, old.Value.(*memEntry).addr)
		s.evictions.Add(1)
	}
}

// Put publishes doc under key: append to the owned segment (fdatasync'd
// unless WithSync(false)), index it, cache it, and occasionally snapshot
// the index. Publishing the same address twice is harmless — the store is
// content-addressed, so duplicates carry identical bytes and the
// last-indexed location wins.
func (s *Store) Put(key Key, doc []byte) error {
	addr := key.Address()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(addr, doc)
}

func (s *Store) putLocked(addr Address, doc []byte) error {
	if s.closed {
		return errors.New("planstore: store is closed")
	}
	off, err := s.seg.append(addr, doc, s.sync)
	if err != nil {
		s.errCount.Add(1)
		return fmt.Errorf("planstore: append: %w", err)
	}
	s.index[addr] = recLoc{seg: s.seg.name, off: off, n: len(doc)}
	s.marks[s.seg.name] = s.seg.off
	s.cacheLocked(addr, doc)
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(len(doc)))
	s.putsSincePublish++
	if s.putsSincePublish >= indexPublishEvery {
		s.publishIndexLocked()
	}
	return nil
}

// GetOrCompute returns the document for key, running compute on a miss.
// Concurrent callers with the same key share one computation. See
// GetOrComputeCtx for the full semantics; GetOrCompute waits without a
// cancellation context.
func (s *Store) GetOrCompute(key Key, compute func() ([]byte, error)) (doc []byte, hit bool, err error) {
	return s.GetOrComputeCtx(context.Background(), key, compute)
}

// GetOrComputeCtx returns the document for key, running compute on a miss.
// Single-flight holds at two levels: concurrent callers within the process
// share one computation through an in-process flight, and concurrent
// callers across processes sharing the directory share one through a
// flock-backed claim under dir/claims/ — N simultaneous submissions of one
// workflow across a whole cluster of replicas cost exactly one
// optimization. hit reports whether the document came from the store
// (memory, disk, another caller's flight, or another replica's concurrent
// computation) rather than this call's compute. ctx bounds only the
// waiting; a compute this call started runs to its own completion. Errors
// are returned to every in-process waiter and never stored; a replica
// whose claimed compute fails releases the claim, so the next waiter takes
// the computation over rather than inheriting the failure.
func (s *Store) GetOrComputeCtx(ctx context.Context, key Key, compute func() ([]byte, error)) (doc []byte, hit bool, err error) {
	addr := key.Address()
	for {
		if doc, ok, err := s.Get(key); err != nil {
			return nil, false, err
		} else if ok {
			return doc, true, nil
		}
		s.flMu.Lock()
		if fl, ok := s.flights[addr]; ok {
			s.flMu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err != nil {
				return nil, false, fl.err
			}
			s.hits.Add(1)
			return fl.doc, true, nil
		}
		fl := &flight{done: make(chan struct{})}
		s.flights[addr] = fl
		s.flMu.Unlock()

		// Re-check under flight ownership: a previous owner may have
		// published between our miss and our registration.
		if doc, ok, err := s.Get(key); err != nil || ok {
			s.resolveFlight(addr, fl, doc, err)
			return doc, ok, err
		}
		// Cross-process single-flight: only the claim holder computes.
		cl, waited, err := s.waitOrClaim(ctx, key, addr)
		if err != nil || waited != nil {
			s.resolveFlight(addr, fl, waited, err)
			return waited, waited != nil, err
		}
		// One more probe now that the claim is ours: the previous holder
		// may have published and released between our last Get and the
		// acquisition.
		if doc, ok, gerr := s.Get(key); gerr != nil || ok {
			cl.release()
			s.resolveFlight(addr, fl, doc, gerr)
			return doc, ok, gerr
		}
		s.computes.Add(1)
		doc, err = compute()
		if err == nil {
			s.mu.Lock()
			// A failed append is a durability problem, not a correctness
			// one: the computed document is still returned (and cached) so
			// the caller's optimization is never wasted on a full disk.
			if perr := s.putLocked(addr, doc); perr != nil {
				s.cacheLocked(addr, doc)
			}
			s.mu.Unlock()
		}
		cl.release()
		s.resolveFlight(addr, fl, doc, err)
		return doc, false, err
	}
}

func (s *Store) resolveFlight(addr Address, fl *flight, doc []byte, err error) {
	s.flMu.Lock()
	delete(s.flights, addr)
	s.flMu.Unlock()
	fl.doc, fl.err = doc, err
	close(fl.done)
}

// Stats snapshots the store's counters. The counters are atomics, so a
// stats poll never contends with the read or write path.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:         s.hits.Load(),
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Computes:     s.computes.Load(),
		Puts:         s.puts.Load(),
		Evictions:    s.evictions.Load(),
		BytesWritten: s.bytesWritten.Load(),
		BytesRead:    s.bytesRead.Load(),
		Errors:       s.errCount.Load(),
		Claims:       s.claims.Load(),
		ClaimWaits:   s.claimWaits.Load(),
		ClaimHits:    s.claimHits.Load(),
	}
	s.mu.Lock()
	st.Entries = len(s.index)
	st.Segments = len(s.marks)
	s.mu.Unlock()
	return st
}

// Close publishes a final index snapshot and releases the owned segment
// (truncating it away entirely if this writer never published a record).
// Close is idempotent; Get keeps working on a closed store, Put fails.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.publishIndexLocked()
	return s.seg.close()
}

// --- index snapshot ----------------------------------------------------------

const (
	indexFormat  = "stubby-planstore-index"
	indexVersion = 1
)

type indexEntryDoc struct {
	Addr string `json:"addr"`
	Seg  string `json:"seg"`
	Off  int64  `json:"off"`
	Len  int    `json:"len"`
}

type indexDoc struct {
	Format   string           `json:"format"`
	Version  int              `json:"version"`
	Segments map[string]int64 `json:"segments"` // validated prefix sizes
	Entries  []indexEntryDoc  `json:"entries"`
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// publishIndexLocked snapshots the index via write-temp-then-rename. A
// failure only costs reopen speed, so it is counted, not returned. Callers
// hold s.mu.
func (s *Store) publishIndexLocked() {
	s.putsSincePublish = 0
	doc := indexDoc{Format: indexFormat, Version: indexVersion, Segments: make(map[string]int64, len(s.marks))}
	for name, off := range s.marks {
		doc.Segments[name] = off
	}
	doc.Entries = make([]indexEntryDoc, 0, len(s.index))
	for addr, loc := range s.index {
		doc.Entries = append(doc.Entries, indexEntryDoc{Addr: addr.String(), Seg: loc.seg, Off: loc.off, Len: loc.n})
	}
	sort.Slice(doc.Entries, func(i, j int) bool { return doc.Entries[i].Addr < doc.Entries[j].Addr })
	data, err := json.MarshalIndent(&doc, "", " ")
	if err != nil {
		s.errCount.Add(1)
		return
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		s.errCount.Add(1)
		return
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		s.errCount.Add(1)
		_ = os.Remove(tmp)
	}
}

// loadIndex loads the snapshot if present and structurally valid. Every
// claim the snapshot makes is re-verified lazily: locations are CRC-checked
// on first read, and high-water marks only seed the scan start (a mark
// beyond a segment's real size rescans from zero). Corruption therefore
// costs a scan, never a wrong answer.
func (s *Store) loadIndex() {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return
	}
	var doc indexDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return
	}
	if doc.Format != indexFormat || doc.Version != indexVersion {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, off := range doc.Segments {
		if fi, err := os.Stat(filepath.Join(s.segDir, name)); err != nil || off > fi.Size() || off < 0 {
			continue // stale claim; scan this segment from zero
		}
		s.marks[name] = off
	}
	for _, e := range doc.Entries {
		addr, ok := parseAddress(e.Addr)
		if !ok || e.Off < 0 || e.Len < 0 {
			continue
		}
		if _, tracked := s.marks[e.Seg]; !tracked {
			continue
		}
		s.index[addr] = recLoc{seg: e.Seg, off: e.Off, n: e.Len}
	}
}

func parseAddress(v string) (Address, bool) {
	if len(v) != 32 {
		return Address{}, false
	}
	var a Address
	if _, err := fmt.Sscanf(v, "%016x%016x", &a[0], &a[1]); err != nil {
		return Address{}, false
	}
	return a, true
}

// --- segment discovery and scanning ------------------------------------------

// recoverSegmentsLocked truncates torn tails of segments with no live
// writer. A segment's writer holds an exclusive flock for its lifetime, so
// a successfully acquired lock proves the writer is gone and the file is
// immutable — safe to scan to the last valid record and physically truncate
// the rest. Segments whose lock is held are left to refreshLocked, which
// ignores incomplete tails until they finish. Callers hold s.mu.
func (s *Store) recoverSegmentsLocked() {
	for _, name := range s.listSegments() {
		path := filepath.Join(s.segDir, name)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			continue
		}
		if !tryFlock(f) {
			f.Close() // live writer; leave the tail alone
			continue
		}
		if valid, corrupt, _, err := scanRecords(path, 0); err == nil {
			if corrupt {
				s.errCount.Add(1)
			}
			if fi, err := f.Stat(); err == nil && valid < fi.Size() {
				_ = f.Truncate(valid)
			}
		}
		funlock(f)
		f.Close()
	}
}

// listSegments returns the segment file names in the directory, sorted.
func (s *Store) listSegments() []string {
	ents, err := os.ReadDir(s.segDir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// refreshLocked scans every segment past its high-water mark, absorbing
// newly published records into the index. This is how one replica observes
// another's publishes without any cross-process locking: records are
// immutable once complete, and an incomplete tail (a writer mid-append)
// simply leaves the mark in place for the next refresh. A segment whose
// scan hits provable corruption (bad magic or CRC on a complete record) is
// frozen at its last valid offset so the damage is skipped, not re-read
// forever. Callers hold s.mu.
func (s *Store) refreshLocked() error {
	for _, name := range s.listSegments() {
		if s.frozen[name] {
			continue
		}
		if s.seg != nil && name == s.seg.name {
			continue // own appends are indexed synchronously by Put
		}
		mark := s.marks[name]
		path := filepath.Join(s.segDir, name)
		fi, err := os.Stat(path)
		if err != nil || fi.Size() <= mark {
			if err == nil {
				s.marks[name] = mark // track segment existence
			}
			continue
		}
		newMark, corrupt, recs, err := scanRecords(path, mark)
		if err != nil {
			s.errCount.Add(1)
			continue
		}
		for _, r := range recs {
			s.index[r.addr] = recLoc{seg: name, off: r.off, n: r.n}
		}
		s.marks[name] = newMark
		if corrupt {
			s.frozen[name] = true
			s.errCount.Add(1)
		}
	}
	return nil
}
