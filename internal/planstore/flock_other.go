//go:build !unix

package planstore

import "os"

// Without flock, dead writers can't be told apart from live ones, so
// recovery conservatively treats every foreign segment as live (torn tails
// are ignored rather than truncated — still correct, just never cleaned).
func tryFlock(f *os.File) bool { return false }

func funlock(f *os.File) {}
