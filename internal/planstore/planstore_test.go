package planstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

func testKey(i int) Key {
	return Key{Plan: wf.Fingerprint{uint64(i + 1), uint64(i * 31)}, Cluster: 7, Planner: "stubby", Seed: 1}
}

func testDoc(i int) []byte {
	return []byte(fmt.Sprintf(`{"plan":"document-%d","padding":"%032d"}`, i, i))
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAddressDistinguishesKeyFields(t *testing.T) {
	base := Key{Plan: wf.Fingerprint{1, 2}, Cluster: 3, Planner: "stubby", Seed: 4}
	variants := []Key{
		{Plan: wf.Fingerprint{9, 2}, Cluster: 3, Planner: "stubby", Seed: 4},
		{Plan: wf.Fingerprint{1, 2}, Cluster: 9, Planner: "stubby", Seed: 4},
		{Plan: wf.Fingerprint{1, 2}, Cluster: 3, Planner: "ysmart", Seed: 4},
		{Plan: wf.Fingerprint{1, 2}, Cluster: 3, Planner: "stubby", Seed: 9},
	}
	for i, v := range variants {
		if v.Address() == base.Address() {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
	if base.Address() != base.Address() {
		t.Error("address is not deterministic")
	}
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	const n = 24 // spans an index publish boundary
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		doc, ok, err := s.Get(testKey(i))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(doc, testDoc(i)) {
			t.Fatalf("get %d returned wrong bytes", i)
		}
	}
	st := s.Stats()
	if st.Puts != n || st.Hits != n || st.Misses != 0 {
		t.Fatalf("stats = %+v, want %d puts, %d hits, 0 misses", st, n, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (a "restart"): every document must come back from disk,
	// byte-identical, via the published index.
	r := mustOpen(t, dir)
	for i := 0; i < n; i++ {
		doc, ok, err := r.Get(testKey(i))
		if err != nil || !ok {
			t.Fatalf("reopened get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(doc, testDoc(i)) {
			t.Fatalf("reopened get %d returned wrong bytes", i)
		}
	}
	if st := r.Stats(); st.DiskHits != n || st.Entries != n {
		t.Fatalf("reopened stats = %+v, want %d disk hits and entries", st, n)
	}
}

func TestReopenWithoutIndexScansSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir)
	for i := 0; i < 5; i++ {
		doc, ok, err := r.Get(testKey(i))
		if err != nil || !ok || !bytes.Equal(doc, testDoc(i)) {
			t.Fatalf("get %d after index removal: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestMemoryLRUBoundsAndEvicts(t *testing.T) {
	s := mustOpen(t, t.TempDir(), WithMemoryEntries(4))
	for i := 0; i < 10; i++ {
		if err := s.Put(testKey(i), testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
	// Evicted entries must still be served — from disk.
	if _, ok, err := s.Get(testKey(0)); err != nil || !ok {
		t.Fatalf("evicted entry unreadable: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := testKey(0)
	var computes int
	var mu sync.Mutex
	start := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	docs := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			doc, _, err := s.GetOrCompute(key, func() ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return testDoc(0), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			docs[i] = doc
		}(i)
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (single-flight)", computes)
	}
	for i, doc := range docs {
		if !bytes.Equal(doc, testDoc(0)) {
			t.Fatalf("caller %d got wrong bytes", i)
		}
	}
	if st := s.Stats(); st.Computes != 1 {
		t.Fatalf("stats computes = %d, want 1", st.Computes)
	}
}

func TestGetOrComputeErrorNotStored(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := testKey(0)
	wantErr := fmt.Errorf("optimization failed")
	if _, _, err := s.GetOrCompute(key, func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("a failed computation was stored")
	}
	// The next compute must run (the flight was not poisoned).
	doc, hit, err := s.GetOrCompute(key, func() ([]byte, error) { return testDoc(0), nil })
	if err != nil || hit || !bytes.Equal(doc, testDoc(0)) {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
}

func TestTwoStoresShareDirectoryLive(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir)
	b := mustOpen(t, dir)

	// A publishes; B must observe it without reopening (refresh scan).
	if err := a.Put(testKey(1), testDoc(1)); err != nil {
		t.Fatal(err)
	}
	doc, ok, err := b.Get(testKey(1))
	if err != nil || !ok || !bytes.Equal(doc, testDoc(1)) {
		t.Fatalf("b missed a's publish: ok=%v err=%v", ok, err)
	}
	// And the reverse: each writer owns its own segment.
	if err := b.Put(testKey(2), testDoc(2)); err != nil {
		t.Fatal(err)
	}
	doc, ok, err = a.Get(testKey(2))
	if err != nil || !ok || !bytes.Equal(doc, testDoc(2)) {
		t.Fatalf("a missed b's publish: ok=%v err=%v", ok, err)
	}
	if st := a.Stats(); st.Segments < 2 {
		t.Fatalf("segments = %d, want >= 2 (one per writer)", st.Segments)
	}
	// GetOrCompute on B must hit A's entry, not recompute.
	_, hit, err := b.GetOrCompute(testKey(1), func() ([]byte, error) {
		t.Error("recomputed an entry another replica already published")
		return testDoc(1), nil
	})
	if err != nil || !hit {
		t.Fatalf("cross-replica GetOrCompute: hit=%v err=%v", hit, err)
	}
}

func TestCloseIsIdempotentAndGetSurvives(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put(testKey(0), testDoc(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(testKey(0)); err != nil || !ok {
		t.Fatalf("get after close: ok=%v err=%v", ok, err)
	}
	if err := s.Put(testKey(1), testDoc(1)); err == nil {
		t.Fatal("put after close succeeded")
	}
}
