package planstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// paperPlanDocs builds one planio result document per paper workload
// (annotated, fingerprint-stamped) — real store payloads, so recovery
// assertions exercise the same decode-and-verify path the session uses.
func paperPlanDocs(t *testing.T) (keys []Key, docs [][]byte) {
	t.Helper()
	for _, abbr := range workloads.Abbrs() {
		wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
			t.Fatal(err)
		}
		fp := wf.FingerprintWorkflow(wl.Workflow)
		doc, err := planio.EncodeResult(&planio.Result{
			Plan:          wl.Workflow,
			EstimatedCost: 1000,
			Fingerprint:   fp.String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, Key{Plan: fp, Cluster: 7, Planner: "stubby", Seed: 1})
		docs = append(docs, doc)
	}
	return keys, docs
}

// singleSegment returns the path of the store directory's only segment.
func singleSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, "segments", "seg-*.log"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("segments = %v (err %v), want exactly one", ents, err)
	}
	return ents[0]
}

// TestRecoveryTornTailAndCorruptIndex is the crash drill: a store of real
// plan documents loses the tail of its last record (torn write) and has
// its index snapshot corrupted at random offsets. Reopening must recover
// every surviving plan — each decoding with its fingerprint verified — and
// report the torn one as absent, never as wrong bytes.
func TestRecoveryTornTailAndCorruptIndex(t *testing.T) {
	keys, docs := paperPlanDocs(t)
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := range keys {
		if err := s.Put(keys[i], docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	seg := singleSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(docs) - 1
	// Tear the last record: cut a random number of its payload bytes, as a
	// crash mid-append would.
	cut := int64(1 + rng.Intn(len(docs[last])-1))
	if err := os.Truncate(seg, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
	// Scribble over the index at random offsets.
	idxPath := filepath.Join(dir, "index.json")
	idx, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		idx[rng.Intn(len(idx))] ^= 0xff
	}
	if err := os.WriteFile(idxPath, idx, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	for i := 0; i < last; i++ {
		doc, ok, err := r.Get(keys[i])
		if err != nil || !ok {
			t.Fatalf("surviving plan %d unreadable: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(doc, docs[i]) {
			t.Fatalf("surviving plan %d returned different bytes", i)
		}
		// The decode-time fingerprint check (planio, PR 5) must pass — the
		// stored bytes still reproduce the stamped fingerprint exactly.
		res, err := planio.DecodeResult(doc)
		if err != nil {
			t.Fatalf("surviving plan %d does not decode: %v", i, err)
		}
		if got := wf.FingerprintWorkflow(res.Plan); got != keys[i].Plan {
			t.Fatalf("surviving plan %d decoded to fingerprint %s, want %s", i, got, keys[i].Plan)
		}
	}
	if _, ok, err := r.Get(keys[last]); err != nil || ok {
		t.Fatalf("torn plan: ok=%v err=%v, want a clean miss", ok, err)
	}
	// The torn tail was physically truncated (the writer was provably dead,
	// so the reopen could reclaim the bytes).
	fi2, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() >= fi.Size()-cut {
		t.Fatalf("torn tail not truncated: %d bytes, had %d", fi2.Size(), fi.Size()-cut)
	}
}

// TestRecoveryCorruptMiddleRecord flips bytes inside an interior record:
// reopening must freeze the segment at the last record before the damage —
// corruption is never misread as data, and earlier records survive.
func TestRecoveryCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	const n = 6
	var offs []int64
	for i := 0; i < n; i++ {
		s.mu.Lock()
		off := s.seg.off
		s.mu.Unlock()
		offs = append(offs, off)
		if err := s.Put(testKey(i), testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "index.json")) // force a full scan

	seg := singleSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt record 3's payload (header stays valid, CRC won't).
	data[offs[3]+recHeaderSize+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		doc, ok, err := r.Get(testKey(i))
		if err != nil || !ok || !bytes.Equal(doc, testDoc(i)) {
			t.Fatalf("record %d before the damage: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 3; i < n; i++ {
		if _, ok, err := r.Get(testKey(i)); err != nil || ok {
			t.Fatalf("record %d at/after the damage: ok=%v err=%v, want a miss", i, ok, err)
		}
	}
	if st := r.Stats(); st.Errors == 0 {
		t.Fatal("corruption left no trace in the error counter")
	}
}
