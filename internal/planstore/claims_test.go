package planstore

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stubby-mr/stubby/internal/wf"
)

func claimKey(n uint64) Key {
	return Key{Plan: wf.Fingerprint{n, ^n}, Cluster: 7, Planner: "stubby", Seed: 1}
}

// TestClaimCrossProcessSingleFlight opens several stores over one directory
// (the in-process stand-in for separate replicas) and races identical
// GetOrComputeCtx calls through all of them: exactly one compute must run
// cluster-wide, every caller must get the same bytes, and the claim file
// must be gone afterwards.
func TestClaimCrossProcessSingleFlight(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	const replicas = 3
	const callersPer = 4
	stores := make([]*Store, replicas)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open replica %d: %v", i, err)
		}
		defer s.Close()
		stores[i] = s
	}
	key := claimKey(101)
	var computes atomic.Int64
	want := []byte(`{"plan":"claimed"}`)
	var wg sync.WaitGroup
	errs := make(chan error, replicas*callersPer)
	for ri, s := range stores {
		for c := 0; c < callersPer; c++ {
			wg.Add(1)
			go func(ri, c int, s *Store) {
				defer wg.Done()
				doc, _, err := s.GetOrComputeCtx(context.Background(), key, func() ([]byte, error) {
					computes.Add(1)
					time.Sleep(30 * time.Millisecond) // widen the race window
					return want, nil
				})
				if err != nil {
					errs <- fmt.Errorf("replica %d caller %d: %v", ri, c, err)
					return
				}
				if string(doc) != string(want) {
					errs <- fmt.Errorf("replica %d caller %d: doc %q", ri, c, doc)
				}
			}(ri, c, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("cluster-wide computes = %d, want 1", n)
	}
	var total Stats
	for _, s := range stores {
		st := s.Stats()
		total.Computes += st.Computes
		total.Claims += st.Claims
		total.ClaimHits += st.ClaimHits
	}
	if total.Computes != 1 {
		t.Fatalf("summed Stats.Computes = %d, want 1", total.Computes)
	}
	if total.Claims < 1 {
		t.Fatalf("summed Stats.Claims = %d, want >= 1", total.Claims)
	}
	// Replicas that lost the claim race must have been answered by the
	// winner's publish, not their own compute.
	if replicas > 1 && total.ClaimHits == 0 {
		t.Fatalf("summed Stats.ClaimHits = 0, want > 0 across %d replicas", replicas)
	}
	if _, err := os.Stat(stores[0].claimPath(key.Address())); !os.IsNotExist(err) {
		t.Fatalf("claim file still present after release: err=%v", err)
	}
}

// TestClaimFailedComputeReleases proves a failed compute releases the claim
// so a second replica can take the computation over instead of inheriting
// the failure.
func TestClaimFailedComputeReleases(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	defer b.Close()
	key := claimKey(202)
	boom := fmt.Errorf("synthetic optimizer failure")
	if _, _, err := a.GetOrComputeCtx(context.Background(), key, func() ([]byte, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("replica a error = %v, want %v", err, boom)
	}
	doc, hit, err := b.GetOrComputeCtx(context.Background(), key, func() ([]byte, error) {
		return []byte(`{"plan":"recovered"}`), nil
	})
	if err != nil || hit {
		t.Fatalf("replica b after failure: doc=%q hit=%v err=%v", doc, hit, err)
	}
	if string(doc) != `{"plan":"recovered"}` {
		t.Fatalf("replica b doc = %q", doc)
	}
}

// TestClaimStaleFileSuperseded simulates a replica that crashed mid-compute:
// its claim file is left on disk but no process holds the flock. A fresh
// replica must acquire the claim straight through the stale file.
func TestClaimStaleFileSuperseded(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	key := claimKey(303)
	// A crashed owner leaves the file; its flock died with the process.
	if err := os.WriteFile(s.claimPath(key.Address()), nil, 0o644); err != nil {
		t.Fatalf("plant stale claim: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		doc, hit, err := s.GetOrComputeCtx(context.Background(), key, func() ([]byte, error) {
			return []byte(`{"plan":"takeover"}`), nil
		})
		if err != nil || hit || string(doc) != `{"plan":"takeover"}` {
			t.Errorf("takeover: doc=%q hit=%v err=%v", doc, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("takeover of stale claim did not complete; stale file blocked the claim")
	}
}

// TestClaimWaiterCancellation cancels a waiter stuck behind a foreign
// claim; the wait must end promptly with the context's error.
func TestClaimWaiterCancellation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	defer b.Close()
	key := claimKey(404)
	cl, ok := a.tryClaim(key.Address())
	if !ok {
		t.Fatal("initial tryClaim failed")
	}
	defer cl.release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, err = b.GetOrComputeCtx(ctx, key, func() ([]byte, error) {
		t.Error("compute ran while the claim was held elsewhere")
		return nil, nil
	})
	if err != context.Canceled {
		t.Fatalf("canceled waiter error = %v, want context.Canceled", err)
	}
}

// TestClaimWaiterServedByPublish parks a waiter behind a held claim, then
// publishes the document from the claim holder: the waiter must return the
// published bytes as a hit and count a ClaimHit.
func TestClaimWaiterServedByPublish(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	defer b.Close()
	key := claimKey(505)
	cl, ok := a.tryClaim(key.Address())
	if !ok {
		t.Fatal("initial tryClaim failed")
	}
	type res struct {
		doc []byte
		hit bool
		err error
	}
	ch := make(chan res, 1)
	go func() {
		doc, hit, err := b.GetOrComputeCtx(context.Background(), key, func() ([]byte, error) {
			return []byte(`{"plan":"wrong-owner"}`), nil
		})
		ch <- res{doc, hit, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter park on the claim
	if err := a.Put(key, []byte(`{"plan":"published"}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	cl.release()
	select {
	case r := <-ch:
		if r.err != nil || !r.hit || string(r.doc) != `{"plan":"published"}` {
			t.Fatalf("waiter got doc=%q hit=%v err=%v", r.doc, r.hit, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never unblocked after publish")
	}
	if st := b.Stats(); st.ClaimWaits == 0 || st.ClaimHits == 0 {
		t.Fatalf("waiter stats = %+v, want ClaimWaits>0 and ClaimHits>0", st)
	}
}
