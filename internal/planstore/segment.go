package planstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Segment files hold a flat sequence of records:
//
//	magic   uint32  recMagic
//	kind    uint8   recKindPlan
//	addrHi  uint64  ┐ 128-bit content address
//	addrLo  uint64  ┘
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) over the payload
//	payload [length]byte
//
// All integers are big-endian. A record is valid when the magic matches,
// the full payload is present, and the CRC verifies; anything else at the
// tail is either an in-progress append (live writer) or a torn write
// (crash), and scanning stops at the last valid record either way.

const (
	recMagic        = 0x53504c4e // "SPLN"
	recKindPlan     = 1
	recHeaderSize   = 4 + 1 + 8 + 8 + 4 + 4
	maxRecordLength = 1 << 30 // sanity bound; plans are a few KB

	segPrefix = "seg-"
	segSuffix = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentWriter owns one append-only segment file, holding its exclusive
// flock for the writer's lifetime so other processes can tell a live
// writer from a dead one.
type segmentWriter struct {
	name string
	f    *os.File
	off  int64
}

// openSegmentWriter claims a fresh segment file with O_EXCL, retrying past
// names already taken by concurrent writers.
func openSegmentWriter(segDir string) (*segmentWriter, error) {
	for n := 1; n < 1_000_000; n++ {
		name := fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix)
		f, err := os.OpenFile(filepath.Join(segDir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("planstore: create segment: %w", err)
		}
		if !tryFlock(f) {
			// A dead writer's O_EXCL file persists, but its lock does not,
			// so a lock failure here means a live writer somehow shares the
			// name (clock-free counter reuse). Skip it.
			f.Close()
			continue
		}
		return &segmentWriter{name: name, f: f}, nil
	}
	return nil, errors.New("planstore: segment namespace exhausted")
}

// append writes one record and returns the record's starting offset.
func (w *segmentWriter) append(addr Address, payload []byte, sync bool) (int64, error) {
	if len(payload) > maxRecordLength {
		return 0, fmt.Errorf("planstore: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, recHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], recMagic)
	buf[4] = recKindPlan
	binary.BigEndian.PutUint64(buf[5:], addr[0])
	binary.BigEndian.PutUint64(buf[13:], addr[1])
	binary.BigEndian.PutUint32(buf[21:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[25:], crc32.Checksum(payload, crcTable))
	copy(buf[recHeaderSize:], payload)
	off := w.off
	if _, err := w.f.Write(buf); err != nil {
		// The tail is now indeterminate; reopen-time recovery (or a reader
		// hitting the bad CRC) handles it. Keep off honest for retries.
		if pos, serr := w.f.Seek(0, io.SeekCurrent); serr == nil {
			w.off = pos
		}
		return 0, err
	}
	w.off += int64(len(buf))
	if sync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// close releases the flock and removes the segment entirely when it never
// received a record (so idle replicas don't litter the directory).
func (w *segmentWriter) close() error {
	empty := w.off == 0
	funlock(w.f)
	err := w.f.Close()
	if empty {
		_ = os.Remove(filepath.Join(filepath.Dir(w.f.Name()), w.name))
	}
	return err
}

// scannedRec is one valid record found by scanRecords.
type scannedRec struct {
	addr Address
	off  int64
	n    int
}

// scanRecords reads records from off to the end of the segment. It returns
// the offset just past the last valid record, whether provable corruption
// (bad magic, oversize length, or CRC failure on a complete record) was
// found, and the records themselves. A clean-but-short tail is not
// corruption — it is a live writer mid-append — so corrupt stays false and
// the returned offset lets a later scan resume where this one stopped.
func scanRecords(path string, off int64) (int64, bool, []scannedRec, error) {
	f, err := os.Open(path)
	if err != nil {
		return off, false, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return off, false, nil, err
	}
	size := fi.Size()
	var recs []scannedRec
	var hdr [recHeaderSize]byte
	for off+recHeaderSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return off, false, recs, nil
		}
		if binary.BigEndian.Uint32(hdr[0:]) != recMagic || hdr[4] != recKindPlan {
			return off, true, recs, nil
		}
		n := binary.BigEndian.Uint32(hdr[21:])
		if n > maxRecordLength {
			return off, true, recs, nil
		}
		if off+recHeaderSize+int64(n) > size {
			return off, false, recs, nil // incomplete tail; not corruption
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+recHeaderSize); err != nil {
			return off, false, recs, nil
		}
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[25:]) {
			return off, true, recs, nil
		}
		addr := Address{binary.BigEndian.Uint64(hdr[5:]), binary.BigEndian.Uint64(hdr[13:])}
		recs = append(recs, scannedRec{addr: addr, off: off, n: int(n)})
		off += recHeaderSize + int64(n)
	}
	return off, false, recs, nil
}

// readRecordPayload re-reads and re-verifies one record's payload. The
// address and CRC are both checked, so a stale index entry (or disk rot)
// reads as absence, never as a wrong document.
func readRecordPayload(path string, off int64, n int, want Address) ([]byte, error) {
	if n < 0 || n > maxRecordLength || off < 0 {
		return nil, errors.New("planstore: bad record location")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, recHeaderSize+n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != recMagic || buf[4] != recKindPlan {
		return nil, errors.New("planstore: bad record header")
	}
	addr := Address{binary.BigEndian.Uint64(buf[5:]), binary.BigEndian.Uint64(buf[13:])}
	if addr != want {
		return nil, errors.New("planstore: record address mismatch")
	}
	if binary.BigEndian.Uint32(buf[21:]) != uint32(n) {
		return nil, errors.New("planstore: record length mismatch")
	}
	payload := buf[recHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(buf[25:]) {
		return nil, errors.New("planstore: record checksum mismatch")
	}
	return payload, nil
}
