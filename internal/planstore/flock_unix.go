//go:build unix

package planstore

import (
	"os"
	"syscall"
)

// tryFlock attempts a non-blocking exclusive lock on f. Segment writers
// hold this lock for their lifetime; acquiring it on someone else's
// segment proves the writer process is gone.
func tryFlock(f *os.File) bool {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}

func funlock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
