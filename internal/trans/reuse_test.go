package trans

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// storedFor snapshots a materialized dataset as the catalog would publish it.
func storedFor(t *testing.T, dfs *mrsim.DFS, id string, ds *wf.Dataset) StoredResult {
	t.Helper()
	st, ok := dfs.Get(id)
	if !ok {
		t.Fatalf("dataset %s not on DFS", id)
	}
	return StoredResult{
		Dataset:     id,
		Layout:      st.Layout.Clone(),
		KeyFields:   ds.KeyFields,
		ValueFields: ds.ValueFields,
		Records:     float64(st.Records()),
		Bytes:       float64(st.Bytes()),
		Partitions:  len(st.Parts),
	}
}

// TestApplyReuseInPlace: the stored result lives under the dataset's own
// ID — the producing job disappears, the dataset flips to an annotated
// base, the orphaned feeding base is pruned, and the rewritten plan
// produces identical sink output over the materialized data.
func TestApplyReuseInPlace(t *testing.T) {
	orig := exampleWorkflow(false) // D4 -> J5 -> D5 -> J7 -> D7
	pairs := genD4(500, 1)
	dfs := newDFS(t, pairs)
	full := runAndCollect(t, orig, dfs) // materializes D5 and D7

	stored := storedFor(t, dfs, "D5", orig.Dataset("D5"))
	if err := CanReuse(orig, "D5", stored); err != nil {
		t.Fatalf("CanReuse: %v", err)
	}
	rew, err := ApplyReuse(orig, "D5", stored)
	if err != nil {
		t.Fatalf("ApplyReuse: %v", err)
	}
	if len(orig.Jobs) != 2 || orig.Dataset("D5").Base {
		t.Fatal("ApplyReuse mutated its input plan")
	}
	if len(rew.Jobs) != 1 || rew.Jobs[0].ID != "J7" {
		t.Fatalf("rewritten plan has jobs %v, want just J7", len(rew.Jobs))
	}
	d5 := rew.Dataset("D5")
	if d5 == nil || !d5.Base || d5.EstRecords != stored.Records || d5.EstPartitions != stored.Partitions {
		t.Fatalf("D5 not flipped to an annotated base: %+v", d5)
	}
	if rew.Dataset("D4") != nil {
		t.Error("base D4 fed only the removed closure and should be pruned")
	}

	// The rewritten plan runs over the DFS that holds the materialized D5
	// and must reproduce D7 exactly.
	got := runAndCollect(t, rew, dfs.Clone())
	if d := mrsim.DiffPairs(full["D7"], got["D7"], 0); d != "" {
		t.Errorf("reused plan diverges on D7: %s", d)
	}
}

// TestApplyReuseRelocated: the stored result lives under a different DFS
// ID — a fresh base dataset is added, consumers repoint to it, and the
// replaced dataset is GC'd.
func TestApplyReuseRelocated(t *testing.T) {
	orig := exampleWorkflow(false)
	pairs := genD4(500, 1)
	dfs := newDFS(t, pairs)
	full := runAndCollect(t, orig, dfs)

	stored := storedFor(t, dfs, "D5", orig.Dataset("D5"))
	stored.Dataset = "EXT5"
	rew, err := ApplyReuse(orig, "D5", stored)
	if err != nil {
		t.Fatalf("ApplyReuse: %v", err)
	}
	if rew.Dataset("D5") != nil {
		t.Error("replaced dataset D5 should be GC'd after repointing")
	}
	ext := rew.Dataset("EXT5")
	if ext == nil || !ext.Base {
		t.Fatalf("stored location EXT5 not added as a base: %+v", ext)
	}
	if rew.Jobs[0].MapBranches[0].Input != "EXT5" {
		t.Errorf("consumer still reads %s", rew.Jobs[0].MapBranches[0].Input)
	}

	// Execute: publish the materialized D5 under EXT5 and compare sinks.
	run := dfs.Clone()
	d5, _ := run.Get("D5")
	run.Put("EXT5", d5.Parts, d5.Layout.Clone())
	got := runAndCollect(t, rew, run)
	if d := mrsim.DiffPairs(full["D7"], got["D7"], 0); d != "" {
		t.Errorf("relocated reuse diverges on D7: %s", d)
	}
}

func TestCanReusePreconditions(t *testing.T) {
	w := exampleWorkflow(false)
	good := StoredResult{Dataset: "D5", Records: 100, Bytes: 1000, Partitions: 2}

	cases := []struct {
		name   string
		dsID   string
		stored StoredResult
		want   string
	}{
		{"unknown dataset", "NOPE", good, "unknown dataset"},
		{"base input", "D4", good, "base input"},
		{"sink", "D7", good, "is a sink"},
		{"no records", "D5", StoredResult{Dataset: "D5", Bytes: 1, Partitions: 1}, "size estimates"},
		{"no bytes", "D5", StoredResult{Dataset: "D5", Records: 1, Partitions: 1}, "size estimates"},
		{"no partitions", "D5", StoredResult{Dataset: "D5", Records: 1, Bytes: 1}, "size estimates"},
		{"no location", "D5", StoredResult{Records: 1, Bytes: 1, Partitions: 1}, "no dataset location"},
		{"ID collision", "D5", StoredResult{Dataset: "D7", Records: 1, Bytes: 1, Partitions: 1}, "collides"},
		{"key schema", "D5", StoredResult{Dataset: "D5", KeyFields: []string{"X", "Y"}, Records: 1, Bytes: 1, Partitions: 1}, "key schema"},
		{"value schema", "D5", StoredResult{Dataset: "D5", ValueFields: []string{"X"}, Records: 1, Bytes: 1, Partitions: 1}, "value schema"},
	}
	for _, tc := range cases {
		err := CanReuse(w, tc.dsID, tc.stored)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := CanReuse(w, "D5", good); err != nil {
		t.Errorf("valid reuse rejected: %v", err)
	}
}

// TestCanReuseSeverability: a closure job whose side output is consumed
// outside the closure (or is itself a sink) blocks reuse — removing the
// closure would drop data the rest of the workflow needs.
func TestCanReuseSeverability(t *testing.T) {
	pass := func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }
	first := func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) { emit(k, vs[0]) }
	chain := func(id, in, out string, key, val []string) *wf.Job {
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(),
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: in,
				Stages: []wf.Stage{wf.MapStage("M"+id, pass, 1e-6)},
				KeyIn:  key, ValIn: val, KeyOut: key, ValOut: val,
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{wf.ReduceStage("R"+id, first, nil, 1e-6)},
				KeyIn:  key, ValIn: val, KeyOut: key, ValOut: val,
			}},
		}
	}

	// D4 -> J5 -> D5 -> J7 -> D7 -> J8 -> D8, plus J9: D5 -> D9. The
	// closure of D7 is {J5, J7}, and J5's output D5 leaks to J9.
	w := exampleWorkflow(false)
	w.Jobs = append(w.Jobs,
		chain("J8", "D7", "D8", []string{"O"}, []string{"maxP"}),
		chain("J9", "D5", "D9", []string{"O", "Z"}, []string{"sumP"}),
	)
	w.Datasets = append(w.Datasets,
		&wf.Dataset{ID: "D8", KeyFields: []string{"O"}, ValueFields: []string{"maxP"}},
		&wf.Dataset{ID: "D9", KeyFields: []string{"O", "Z"}, ValueFields: []string{"sumP"}},
	)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	stored := StoredResult{Dataset: "D7", Records: 10, Bytes: 100, Partitions: 1}
	err := CanReuse(w, "D7", stored)
	if err == nil || !strings.Contains(err.Error(), "outside the sub-DAG") {
		t.Errorf("leaking side output not rejected: %v", err)
	}
	// D5 itself is still reusable: its closure is just {J5}, whose only
	// output is D5.
	stored.Dataset = "D5"
	if err := CanReuse(w, "D5", stored); err != nil {
		t.Errorf("multi-consumer root rejected: %v", err)
	}
}
