package trans

import (
	"strings"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/wf"
)

// keepFixture builds the one-to-many shape of Section 3.2's extension (ii):
// a map-only producer P feeding two aggregating consumers C1 and C2.
func keepFixture() *wf.Workflow {
	filterHalf := wf.MapStage("M_p", func(k, v keyval.Tuple, emit wf.Emit) {
		if v[0].(int64)%2 == 0 {
			emit(k, v)
		}
	}, 0.5e-6)
	count := func(name string) wf.Stage {
		return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			emit(k, keyval.T(int64(len(vs))))
		}, nil, 0.5e-6)
	}
	sum := func(name string) wf.Stage {
		return wf.ReduceStage(name, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
			var s int64
			for _, v := range vs {
				s += v[0].(int64)
			}
			emit(k, keyval.T(s))
		}, nil, 0.5e-6)
	}
	identity := func(name string) wf.Stage {
		return wf.MapStage(name, func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0.3e-6)
	}
	return &wf.Workflow{
		Name: "keep",
		Jobs: []*wf.Job{
			{
				ID: "P", Config: wf.DefaultConfig(), Origin: []string{"P"},
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "src",
					Stages: []wf.Stage{filterHalf},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag: 0, Output: "D",
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
			},
			{
				ID: "C1", Config: wf.DefaultConfig(), Origin: []string{"C1"},
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "D",
					Stages: []wf.Stage{identity("M_c1")},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag: 0, Output: "out1",
					Stages: []wf.Stage{count("R_c1")},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"n"},
				}},
			},
			{
				ID: "C2", Config: wf.DefaultConfig(), Origin: []string{"C2"},
				MapBranches: []wf.MapBranch{{
					Tag: 0, Input: "D",
					Stages: []wf.Stage{identity("M_c2")},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"x"},
				}},
				ReduceGroups: []wf.ReduceGroup{{
					Tag: 0, Output: "out2",
					Stages: []wf.Stage{sum("R_c2")},
					KeyIn:  []string{"k"}, ValIn: []string{"x"},
					KeyOut: []string{"k"}, ValOut: []string{"s"},
				}},
			},
		},
		Datasets: []*wf.Dataset{
			{ID: "src", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"x"}},
			{ID: "D", KeyFields: []string{"k"}, ValueFields: []string{"x"}},
			{ID: "out1", KeyFields: []string{"k"}, ValueFields: []string{"n"}},
			{ID: "out2", KeyFields: []string{"k"}, ValueFields: []string{"s"}},
		},
	}
}

func keepDFS(t *testing.T) *mrsim.DFS {
	t.Helper()
	var pairs []keyval.Pair
	for i := 0; i < 900; i++ {
		pairs = append(pairs, keyval.Pair{
			Key:   keyval.T(int64(i % 31)),
			Value: keyval.T(int64(i % 17)),
		})
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("src", pairs, mrsim.IngestSpec{
		NumPartitions: 5,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	}); err != nil {
		t.Fatal(err)
	}
	return dfs
}

func TestInterVerticalKeepPreconditions(t *testing.T) {
	w := keepFixture()
	if err := CanInterVerticalKeep(w, "P", "C1"); err != nil {
		t.Fatalf("preconditions should hold: %v", err)
	}
	if err := CanInterVerticalKeep(w, "C1", "C2"); err == nil {
		t.Fatal("non-map-only producer accepted")
	}
	if err := CanInterVerticalKeep(w, "P", "P"); err == nil {
		t.Fatal("self-packing accepted")
	}
	// Single-consumer case must defer to plain InterVertical.
	single := keepFixture()
	single.RemoveJob("C2")
	single.GC()
	if err := CanInterVerticalKeep(single, "P", "C1"); err == nil ||
		!strings.Contains(err.Error(), "InterVertical") {
		t.Fatalf("single-consumer case not redirected: %v", err)
	}
}

func TestInterVerticalKeepPostconditions(t *testing.T) {
	w := keepFixture()
	after, err := InterVerticalKeep(w, "P", "C1")
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("transformed plan invalid: %v", err)
	}
	if len(after.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2\n%s", len(after.Jobs), after.Summary())
	}
	merged := after.Job("P+C1")
	if merged == nil {
		t.Fatalf("merged job missing:\n%s", after.Summary())
	}
	// The merged job writes both the consumer's output and the original D.
	outs := map[string]bool{}
	for _, o := range merged.Outputs() {
		outs[o] = true
	}
	if !outs["out1"] || !outs["D"] {
		t.Fatalf("merged outputs = %v, want out1 and D", merged.Outputs())
	}
	// Both branches read the producer's input: one shared scan, no read of D.
	for _, b := range merged.MapBranches {
		if b.Input != "src" {
			t.Fatalf("merged branch still reads %q", b.Input)
		}
	}
	// The untouched consumer still reads the materialized D.
	c2 := after.Job("C2")
	if c2 == nil || c2.Inputs()[0] != "D" {
		t.Fatalf("C2 rewired unexpectedly:\n%s", after.Summary())
	}
	if got := after.Producer("D"); got == nil || got.ID != "P+C1" {
		t.Fatalf("D's producer = %v", got)
	}
}

func TestInterVerticalKeepEquivalence(t *testing.T) {
	w := keepFixture()
	after, err := InterVerticalKeep(w, "P", "C1")
	if err != nil {
		t.Fatal(err)
	}
	a := runAndCollect(t, w, keepDFS(t))
	b := runAndCollect(t, after, keepDFS(t))
	for ds, pa := range a {
		pb := b[ds]
		if len(pa) != len(pb) {
			t.Fatalf("sink %s: %d vs %d records", ds, len(pa), len(pb))
		}
		for i := range pa {
			if keyval.Compare(pa[i].Key, pb[i].Key) != 0 || keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
				t.Fatalf("sink %s differs at %d", ds, i)
			}
		}
	}
	// And the materialized D itself must be identical.
	dfsA, dfsB := keepDFS(t), keepDFS(t)
	if _, err := mrsim.NewEngine(testCluster(), dfsA).RunWorkflow(w); err != nil {
		t.Fatal(err)
	}
	if _, err := mrsim.NewEngine(testCluster(), dfsB).RunWorkflow(after); err != nil {
		t.Fatal(err)
	}
	da, _ := dfsA.Get("D")
	db, _ := dfsB.Get("D")
	pa, pb := da.AllPairs(), db.AllPairs()
	keyval.SortPairs(pa, nil)
	keyval.SortPairs(pb, nil)
	if len(pa) != len(pb) {
		t.Fatalf("materialized D differs: %d vs %d records", len(pa), len(pb))
	}
	for i := range pa {
		if keyval.Compare(pa[i].Key, pb[i].Key) != 0 || keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
			t.Fatalf("materialized D differs at %d", i)
		}
	}
}

func TestInterVerticalKeepBothConsumers(t *testing.T) {
	// Packing into C2 instead of C1 must work symmetrically.
	w := keepFixture()
	after, err := InterVerticalKeep(w, "P", "C2")
	if err != nil {
		t.Fatal(err)
	}
	merged := after.Job("P+C2")
	if merged == nil {
		t.Fatalf("merged job missing:\n%s", after.Summary())
	}
	a := runAndCollect(t, w, keepDFS(t))
	b := runAndCollect(t, after, keepDFS(t))
	for ds, pa := range a {
		pb := b[ds]
		if len(pa) != len(pb) {
			t.Fatalf("sink %s: %d vs %d records", ds, len(pa), len(pb))
		}
	}
}

// TestInterVerticalKeepRefusesCycle is the regression test for the shape
// that broke the BA workflow: D's other consumer C2 feeds a dataset the
// chosen consumer C1 also reads (P -> D -> C2 -> E -> C1). Packing P into
// C1 would make the merged job both the producer of D and a transitive
// consumer of it.
func TestInterVerticalKeepRefusesCycle(t *testing.T) {
	w := keepFixture()
	// Rewire: C2 emits E; C1 reads D and E.
	c2 := w.Job("C2")
	c2.ReduceGroups[0].Output = "E"
	c1 := w.Job("C1")
	c1.MapBranches = append(c1.MapBranches, wf.MapBranch{
		Tag: 0, Input: "E",
		Stages: []wf.Stage{wf.MapStage("M_e", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 0.3e-6)},
	})
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "E", KeyFields: []string{"k"}, ValueFields: []string{"s"}})
	w.GC()
	if err := w.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	err := CanInterVerticalKeep(w, "P", "C1")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("upstream consumer not rejected: %v", err)
	}
	// Packing into C2 (which nothing downstream of D feeds) stays legal.
	if err := CanInterVerticalKeep(w, "P", "C2"); err != nil {
		t.Fatalf("legal direction rejected: %v", err)
	}
	after, err := InterVerticalKeep(w, "P", "C2")
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("transformed plan invalid: %v", err)
	}
}
