package trans

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// CanIntraVertical checks the preconditions of the intra-job vertical
// packing transformation on consumer job jcID (Section 3.1): a
// one-to-one / none-to-one / many-to-one subgraph where the consumer's
// reduce grouping key flows unchanged from each producer's reduce input to
// the consumer's map output, verified through schema annotations. A nil
// return means the transformation applies.
func CanIntraVertical(w *wf.Workflow, jcID string) error {
	jc := w.Job(jcID)
	if jc == nil {
		return fmt.Errorf("trans: no job %q", jcID)
	}
	if jc.MapOnly() {
		return fmt.Errorf("trans: %s is already map-only", jcID)
	}
	gc, err := singleGroup(jc)
	if err != nil {
		return err
	}
	k2 := gc.KeyIn
	if k2 == nil {
		return fmt.Errorf("trans: %s has no K2 schema annotation", jcID)
	}
	// Jc.K2 must flow unchanged through every map branch of the consumer.
	for i := range jc.MapBranches {
		b := &jc.MapBranches[i]
		if b.KeyIn == nil || b.KeyOut == nil {
			return fmt.Errorf("trans: %s branch on %s lacks schema annotations", jcID, b.Input)
		}
		if !wf.FieldsSubset(k2, b.KeyOut) {
			return fmt.Errorf("trans: K2 %v not produced by %s's map on %s", k2, jcID, b.Input)
		}
		if !wf.FieldsSubset(k2, b.KeyIn) {
			return fmt.Errorf("trans: K2 %v does not flow through %s's map input on %s", k2, jcID, b.Input)
		}
	}
	// Each input must either come pre-grouped (base / map-only producer) or
	// from a producer whose partition function we may rewrite. Aligned map
	// tasks consume co-partitions, so all inputs must end up with the same
	// partition count: inputs with a fixed count (base data, aligned
	// map-only chains, range-partitioned producers) must agree, and free
	// producers get their reducer counts pinned/tied to match (the
	// many-to-one postcondition, Section 3.1 extensions).
	fixedCount := 0
	for _, in := range jc.Inputs() {
		jp := w.Producer(in)
		if jp != nil && !jp.MapOnly() {
			continue
		}
		n := StaticPartitionCount(w, in)
		if n == 0 && len(jc.Inputs()) > 1 {
			return fmt.Errorf("trans: input %s has an unknown partition count; cannot align", in)
		}
		if n > 0 {
			if fixedCount != 0 && fixedCount != n {
				return fmt.Errorf("trans: inputs have mismatched partition counts (%d vs %d)", fixedCount, n)
			}
			fixedCount = n
		}
	}
	for _, in := range jc.Inputs() {
		jp := w.Producer(in)
		if jp == nil || jp.MapOnly() {
			if !LayoutSatisfiesGrouping(StaticLayout(w, in), consumerClusterNames(gc, k2)) {
				return fmt.Errorf("trans: input %s layout does not satisfy grouping on %v", in, consumerClusterNames(gc, k2))
			}
			continue
		}
		if len(w.Consumers(in)) != 1 {
			return fmt.Errorf("trans: dataset %s fans out to multiple consumers", in)
		}
		gp, err := singleGroup(jp)
		if err != nil {
			return err
		}
		if gp.KeyIn == nil || gp.KeyOut == nil {
			return fmt.Errorf("trans: producer %s lacks K2/K3 schema annotations", jp.ID)
		}
		// Flow-unchanged condition: Jc.K2 present in Jp.K2 and Jp.K3.
		if !wf.FieldsSubset(k2, gp.KeyIn) || !wf.FieldsSubset(k2, gp.KeyOut) {
			return fmt.Errorf("trans: K2 %v does not flow through producer %s", k2, jp.ID)
		}
		spec := rewrittenSpec(gp, gc, k2)
		if err := checkPartitionConstraints(gp, spec); err != nil {
			return fmt.Errorf("trans: producer %s: %w", jp.ID, err)
		}
		if err := groupingPreserved(gp, spec); err != nil {
			return fmt.Errorf("trans: producer %s: %w", jp.ID, err)
		}
	}
	if len(jc.Inputs()) > 1 {
		if err := alignedCoPartition(w, jc, k2); err != nil {
			return err
		}
	}
	return nil
}

// alignedCoPartition verifies that the multi-input alignment postcondition
// is achievable: aligned map tasks merge the i-th partition of every
// input, so all inputs must be partitioned by the same function (equal
// K2 groups must land at the same partition index everywhere) and sorted
// with one common K2-covering prefix (so the k-way merge keeps groups
// contiguous). Rewritable producers will be re-partitioned to hash on
// their K2∩k2 projection; fixed inputs (base data, map-only chains) keep
// their existing layout and must already agree. Matching partition counts
// alone — what the count check establishes — is not enough: two range
// partitionings with different split points, or a range input beside a
// hash-rewritten producer, agree on counts yet split K2 groups across
// tasks, silently corrupting the packed job's groupings. (The execution
// oracle over generated workflows caught exactly that.)
func alignedCoPartition(w *wf.Workflow, jc *wf.Job, k2 []string) error {
	type partFn struct {
		typ    keyval.PartitionType
		fields []string
		splits []keyval.Tuple
		prefix []string
	}
	var want *partFn
	merge := func(in string, got partFn) error {
		if len(got.prefix) > len(k2) {
			got.prefix = got.prefix[:len(k2)]
		}
		if want == nil {
			want = &got
			return nil
		}
		switch {
		case got.typ != want.typ:
			return fmt.Errorf("trans: aligned inputs mix %v and %v partitioning", want.typ, got.typ)
		case !wf.FieldsEqual(got.fields, want.fields):
			return fmt.Errorf("trans: input %s partitions on %v, other inputs on %v", in, got.fields, want.fields)
		case len(got.splits) != len(want.splits):
			return fmt.Errorf("trans: input %s has %d range split points, other inputs %d", in, len(got.splits), len(want.splits))
		case !wf.FieldsEqual(got.prefix, want.prefix):
			return fmt.Errorf("trans: input %s sort prefix %v disagrees with %v", in, got.prefix, want.prefix)
		}
		for i := range got.splits {
			if keyval.Compare(got.splits[i], want.splits[i]) != 0 {
				return fmt.Errorf("trans: input %s range split points differ from other inputs", in)
			}
		}
		return nil
	}
	gc := &jc.ReduceGroups[0]
	for _, in := range jc.Inputs() {
		jp := w.Producer(in)
		if jp == nil || jp.MapOnly() {
			l := StaticLayout(w, in)
			if err := merge(in, partFn{typ: l.PartType, fields: l.PartFields, splits: l.SplitPoints, prefix: l.SortFields}); err != nil {
				return err
			}
			continue
		}
		gp := &jp.ReduceGroups[0]
		spec := rewrittenSpec(gp, gc, k2)
		if err := merge(in, partFn{
			typ:    keyval.HashPartition,
			fields: projectNames(gp.KeyIn, spec.KeyFields),
			prefix: projectNames(gp.KeyIn, spec.SortFields),
		}); err != nil {
			return err
		}
	}
	return nil
}

// consumerClusterNames returns the field names the consumer's first
// grouped stage needs co-located and contiguous: its GroupFields projected
// onto K2. A consumer grouping on its whole key (nil GroupFields, or a
// permutation covering K2), one with no grouped stage, or one grouping
// per-stream ([]int{} — no cross-record contract) requires clustering on
// k2 itself, matching the classic postcondition.
func consumerClusterNames(gc *wf.ReduceGroup, k2 []string) []string {
	var gf []int
	found := false
	for _, s := range gc.Stages {
		if s.Kind == wf.ReduceKind {
			gf = s.GroupFields
			found = true
			break
		}
	}
	if !found || gf == nil || len(gf) == 0 {
		return k2
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(gf))
	for _, i := range gf {
		if i < 0 || i >= len(k2) {
			return k2 // unverifiable grouping: fall back to the whole-key requirement
		}
		if !seen[k2[i]] {
			seen[k2[i]] = true
			names = append(names, k2[i])
		}
	}
	return names
}

// rewrittenSpec builds the producer partition spec the intra-vertical
// postcondition prescribes: partition on Jp.K2 ∩ Jc.K2 and sort on
// (∩, rest of Jp.K2) — Figure 4's hash(O), sort(O,Z). When the consumer's
// grouped stage groups on a proper subset of its K2, the spec tightens to
// that subset: partitioning or sorting on the full K2 would scatter one
// consumer group across aligned tasks (different partition indices) or
// interleave its records (sorted on a non-group field first), and the
// packed map-side pipeline would aggregate fragments. (The execution
// oracle over generated workflows caught exactly that.)
func rewrittenSpec(gp, gc *wf.ReduceGroup, k2 []string) keyval.PartitionSpec {
	cluster := consumerClusterNames(gc, k2)
	if wf.FieldsSubset(k2, cluster) {
		// Whole-key grouping: the classic spec.
		inter := wf.FieldsIntersect(gp.KeyIn, k2)
		sortNames := wf.CombinedSortKey(gp.KeyIn, k2)
		partIdx, _ := wf.IndicesOf(gp.KeyIn, inter)
		sortIdx, _ := wf.IndicesOf(gp.KeyIn, sortNames)
		return keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: partIdx, SortFields: sortIdx}
	}
	sortNames := append(append([]string{}, cluster...), wf.FieldsMinus(wf.CombinedSortKey(gp.KeyIn, k2), cluster)...)
	partIdx, _ := wf.IndicesOf(gp.KeyIn, cluster)
	sortIdx, _ := wf.IndicesOf(gp.KeyIn, sortNames)
	return keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: partIdx, SortFields: sortIdx}
}

// IntraVertical applies intra-job vertical packing to consumer jcID,
// returning a transformed copy: the consumer becomes a Map-only job whose
// grouped pipeline runs map-side, producers are re-partitioned to satisfy
// both grouping requirements, and the consumer's map tasks are aligned
// one-to-one with input partitions (the configuration postcondition).
func IntraVertical(w *wf.Workflow, jcID string) (*wf.Workflow, error) {
	if err := CanIntraVertical(w, jcID); err != nil {
		return nil, err
	}
	out := w.Clone()
	jc := out.Job(jcID)
	gc := &jc.ReduceGroups[0]
	k2 := gc.KeyIn

	var producers []*wf.Job
	fixedCount := 0
	for _, in := range jc.Inputs() {
		jp := out.Producer(in)
		if jp == nil || jp.MapOnly() {
			if n := StaticPartitionCount(out, in); n > 0 {
				fixedCount = n
			}
			continue
		}
		gp := &jp.ReduceGroups[0]
		spec := rewrittenSpec(gp, gc, k2)
		partNames := projectNames(gp.KeyIn, spec.EffectiveKeyFields(len(gp.KeyIn)))
		gp.Part = spec
		gp.Constraints = append(gp.Constraints, wf.PartitionConstraint{
			CoGroup:    append([]string(nil), partNames...),
			SortPrefix: append([]string(nil), partNames...),
			Reason:     "intra-job vertical packing for " + jcID,
		})
		producers = append(producers, jp)
	}
	// Alignment postcondition: every input must deliver the same partition
	// count. Inputs with fixed counts (base data, aligned map-only chains)
	// pin the free producers' reducer counts; otherwise the producers are
	// tied to one shared degree of freedom (many-to-one extension).
	if fixedCount > 0 {
		for _, jp := range producers {
			jp.Config.NumReduceTasks = fixedCount
			jp.PinnedReducers = true
		}
	} else if len(producers) > 1 {
		label := "tied-" + jcID
		maxR := 1
		for _, jp := range producers {
			if jp.Config.NumReduceTasks > maxR {
				maxR = jp.Config.NumReduceTasks
			}
		}
		for _, jp := range producers {
			jp.ReduceCountGroup = label
			jp.Config.NumReduceTasks = maxR
		}
	}
	// The consumer's reduce pipeline moves to the map side.
	gc.RunsMapSide = true
	gc.Combiner = nil
	jc.AlignMapToInput = true
	return out, nil
}

// CanInterVertical checks the preconditions of inter-job vertical packing
// between producer jpID and consumer jcID (Section 3.2): a one-to-one
// subgraph where one of the two jobs is Map-only.
func CanInterVertical(w *wf.Workflow, jpID, jcID string) error {
	jp, jc := w.Job(jpID), w.Job(jcID)
	if jp == nil || jc == nil {
		return fmt.Errorf("trans: missing job %q or %q", jpID, jcID)
	}
	link, ok := wf.SoleLink(w, jp, jc)
	if !ok {
		return fmt.Errorf("trans: %s and %s are not linked by exactly one dataset", jpID, jcID)
	}
	if len(w.Consumers(link)) != 1 || len(w.JobConsumers(jp)) != 1 {
		return fmt.Errorf("trans: %s fans out; not a one-to-one subgraph", jpID)
	}
	if !jp.MapOnly() && !jc.MapOnly() {
		return fmt.Errorf("trans: neither %s nor %s is map-only", jpID, jcID)
	}
	if _, err := singleGroup(jp); err != nil {
		return err
	}
	if _, err := singleGroup(jc); err != nil {
		return err
	}
	if jc.MapOnly() {
		// Absorb consumer into producer: the consumer must read only the
		// link (its whole input is the producer's output) through a single
		// branch. Packing appends exactly one flattened pipeline to the
		// producer; a multi-branch consumer (e.g. a map-side join produced
		// by intra-job packing) routes every record through several
		// pipelines, which a flat append cannot represent — absorbing only
		// its first branch silently drops the others' work. (The execution
		// oracle over generated workflows caught exactly that.)
		if len(jc.MapBranches) != 1 {
			return fmt.Errorf("trans: map-only consumer %s has %d branches; packing absorbs a single pipeline", jcID, len(jc.MapBranches))
		}
		ins := jc.Inputs()
		if len(ins) != 1 || ins[0] != link {
			return fmt.Errorf("trans: map-only consumer %s reads datasets beyond the link", jcID)
		}
		return nil
	}
	// Absorb map-only producer into consumer.
	if len(jp.MapBranches) != 1 {
		return fmt.Errorf("trans: map-only producer %s must have a single branch", jpID)
	}
	if pipelineHasGrouping(jp) && len(jc.Inputs()) != 1 {
		return fmt.Errorf("trans: producer %s pipeline needs aligned input; consumer %s is multi-input", jpID, jcID)
	}
	return nil
}

// pipelineOf flattens a single-branch map-only job into one stage list
// (branch stages followed by map-side group stages).
func pipelineOf(j *wf.Job) []wf.Stage {
	var out []wf.Stage
	for _, s := range j.MapBranches[0].Stages {
		out = append(out, s.Clone())
	}
	g := &j.ReduceGroups[0]
	if g.RunsMapSide {
		for _, s := range g.Stages {
			out = append(out, s.Clone())
		}
	}
	return out
}

// pipelineHasGrouping reports whether a map-only job's pipeline contains
// grouped stages (which require ordered, aligned input).
func pipelineHasGrouping(j *wf.Job) bool {
	for _, s := range pipelineOf(j) {
		if s.Kind == wf.ReduceKind {
			return true
		}
	}
	return false
}

// compositeMapProfile returns the profile of a map-only job's whole
// pipeline (map side composed with any map-side group stages).
func compositeMapProfile(j *wf.Job) *wf.PipelineProfile {
	if j.Profile == nil {
		return nil
	}
	mp := j.Profile.MapProfile(j.MapBranches[0])
	g := &j.ReduceGroups[0]
	if g.RunsMapSide && len(g.Stages) > 0 {
		return profile.ComposeSerial(mp, j.Profile.ReduceProfile(g.Tag))
	}
	if mp == nil {
		return nil
	}
	return mp.Clone()
}

// finalSchema returns the output key/value schema of a map-only job.
func finalSchema(j *wf.Job) (key, val []string) {
	g := &j.ReduceGroups[0]
	if g.RunsMapSide && len(g.Stages) > 0 {
		return g.KeyOut, g.ValOut
	}
	return j.MapBranches[0].KeyOut, j.MapBranches[0].ValOut
}

// InterVertical applies inter-job vertical packing, eliminating one job
// and the intermediate dataset between jpID and jcID.
func InterVertical(w *wf.Workflow, jpID, jcID string) (*wf.Workflow, error) {
	if err := CanInterVertical(w, jpID, jcID); err != nil {
		return nil, err
	}
	out := w.Clone()
	jp, jc := out.Job(jpID), out.Job(jcID)
	link, _ := wf.SoleLink(out, jp, jc)

	if jc.MapOnly() {
		mergeConsumerIntoProducer(out, jp, jc, link)
	} else {
		mergeProducerIntoConsumer(out, jp, jc, link)
	}
	out.GC()
	return out, nil
}

// mergeConsumerIntoProducer appends a map-only consumer's pipeline to the
// producer (after its reduce stages if it has any) — Figure 4's right-hand
// plan, where J7's functions run inside J5's reduce tasks.
func mergeConsumerIntoProducer(out *wf.Workflow, jp, jc *wf.Job, link string) {
	gp := &jp.ReduceGroups[0]
	gc := &jc.ReduceGroups[0]
	consumerStages := pipelineOf(jc)
	keyOut, valOut := finalSchema(jc)

	if gp.MapOnly() {
		// Two map-only jobs collapse into one map-only pipeline.
		if gp.RunsMapSide && len(gp.Stages) > 0 {
			// Flatten producer's map-side group into the branch pipeline.
			for bi := range jp.MapBranches {
				if jp.MapBranches[bi].Tag == gp.Tag {
					jp.MapBranches[bi].Stages = append(jp.MapBranches[bi].Stages, gp.Stages...)
				}
			}
			gp.Stages = nil
			gp.RunsMapSide = false
		}
		for bi := range jp.MapBranches {
			jp.MapBranches[bi].Stages = append(jp.MapBranches[bi].Stages, cloneStageList(consumerStages)...)
			jp.MapBranches[bi].KeyOut = keyOut
			jp.MapBranches[bi].ValOut = valOut
		}
		if jp.Profile != nil {
			cons := compositeMapProfile(jc)
			for bi := range jp.MapBranches {
				b := jp.MapBranches[bi]
				jp.Profile.SetMapProfile(b.Tag, b.Input, profile.ComposeSerial(jp.Profile.MapProfile(b), cons))
			}
			jp.Profile.ReduceSide = nil
		}
	} else {
		gp.Stages = append(gp.Stages, consumerStages...)
		if jp.Profile != nil {
			jp.Profile.SetReduceProfile(gp.Tag,
				profile.AdjustInterVerticalIntoReduce(jp.Profile.ReduceProfile(gp.Tag), compositeMapProfile(jc)))
		}
	}
	gp.Output = gc.Output
	gp.KeyOut = keyOut
	gp.ValOut = valOut
	jp.ID = mergeIDs(jp.ID, jc.ID)
	jp.Origin = mergeOrigins(jp, jc)
	out.RemoveJob(jc.ID)
	_ = link
}

// mergeProducerIntoConsumer prepends a map-only producer's pipeline to the
// consumer branch that read its output. For one-to-one subgraphs only; the
// one-to-many replication variant is InterVerticalReplicate.
func mergeProducerIntoConsumer(out *wf.Workflow, jp, jc *wf.Job, link string) {
	pb := &jp.MapBranches[0]
	prodStages := pipelineOf(jp)
	prodProfile := compositeMapProfile(jp)
	for bi := range jc.MapBranches {
		b := &jc.MapBranches[bi]
		if b.Input != link {
			continue
		}
		oldProf := (*wf.PipelineProfile)(nil)
		if jc.Profile != nil {
			oldProf = jc.Profile.MapProfile(*b)
		}
		b.Stages = append(cloneStageList(prodStages), b.Stages...)
		b.Input = pb.Input
		b.Filter = pb.Filter.Clone()
		b.KeyIn = append([]string(nil), pb.KeyIn...)
		b.ValIn = append([]string(nil), pb.ValIn...)
		if jc.Profile != nil {
			jc.Profile.SetMapProfile(b.Tag, b.Input,
				profile.AdjustInterVerticalIntoMap(prodProfile, oldProf))
		}
	}
	if jp.AlignMapToInput || pipelineHasGroupingStages(prodStages) {
		jc.AlignMapToInput = true
	}
	jc.ID = mergeIDs(jp.ID, jc.ID)
	jc.Origin = mergeOrigins(jp, jc)
	out.RemoveJob(jp.ID)
}

// CanInterVerticalReplicate checks the one-to-many extension: a map-only
// producer replicated into each of its consumers (Section 3.2, extension i).
func CanInterVerticalReplicate(w *wf.Workflow, jpID string) error {
	jp := w.Job(jpID)
	if jp == nil {
		return fmt.Errorf("trans: no job %q", jpID)
	}
	if !jp.MapOnly() {
		return fmt.Errorf("trans: %s is not map-only", jpID)
	}
	if len(jp.MapBranches) != 1 {
		return fmt.Errorf("trans: producer %s must have a single branch", jpID)
	}
	if _, err := singleGroup(jp); err != nil {
		return err
	}
	link := jp.ReduceGroups[0].Output
	consumers := w.Consumers(link)
	if len(consumers) < 2 {
		return fmt.Errorf("trans: %s has %d consumers; replication needs several", jpID, len(consumers))
	}
	grouping := pipelineHasGrouping(jp)
	for _, jc := range consumers {
		if grouping && len(jc.Inputs()) != 1 {
			return fmt.Errorf("trans: consumer %s is multi-input but producer pipeline needs alignment", jc.ID)
		}
	}
	return nil
}

// InterVerticalReplicate replicates a map-only producer's pipeline into
// every consumer, eliminating the producer and its output dataset at the
// cost of recomputing the pipeline per consumer.
func InterVerticalReplicate(w *wf.Workflow, jpID string) (*wf.Workflow, error) {
	if err := CanInterVerticalReplicate(w, jpID); err != nil {
		return nil, err
	}
	out := w.Clone()
	jp := out.Job(jpID)
	pb := &jp.MapBranches[0]
	link := jp.ReduceGroups[0].Output
	prodStages := pipelineOf(jp)
	prodProfile := compositeMapProfile(jp)
	needAlign := jp.AlignMapToInput || pipelineHasGroupingStages(prodStages)
	for _, jc := range out.Consumers(link) {
		for bi := range jc.MapBranches {
			b := &jc.MapBranches[bi]
			if b.Input != link {
				continue
			}
			oldProf := (*wf.PipelineProfile)(nil)
			if jc.Profile != nil {
				oldProf = jc.Profile.MapProfile(*b)
			}
			b.Stages = append(cloneStageList(prodStages), b.Stages...)
			b.Input = pb.Input
			b.Filter = pb.Filter.Clone()
			b.KeyIn = append([]string(nil), pb.KeyIn...)
			b.ValIn = append([]string(nil), pb.ValIn...)
			if jc.Profile != nil {
				jc.Profile.SetMapProfile(b.Tag, b.Input,
					profile.AdjustInterVerticalIntoMap(prodProfile, oldProf))
			}
		}
		if needAlign {
			jc.AlignMapToInput = true
		}
		jc.Origin = mergeOrigins(jp, jc)
	}
	out.RemoveJob(jp.ID)
	out.GC()
	return out, nil
}

// CanInterVerticalKeep checks the other one-to-many extension (Section
// 3.2, extension ii): a map-only producer packs into one chosen consumer
// "while ensuring that Jp's original output dataset is still generated
// (materialized to disk) for the other consumer jobs".
func CanInterVerticalKeep(w *wf.Workflow, jpID, jcID string) error {
	jp, jc := w.Job(jpID), w.Job(jcID)
	if jp == nil || jc == nil {
		return fmt.Errorf("trans: missing job %q or %q", jpID, jcID)
	}
	if !jp.MapOnly() {
		return fmt.Errorf("trans: %s is not map-only", jpID)
	}
	if len(jp.MapBranches) != 1 {
		return fmt.Errorf("trans: producer %s must have a single branch", jpID)
	}
	if _, err := singleGroup(jp); err != nil {
		return err
	}
	if _, err := singleGroup(jc); err != nil {
		return err
	}
	link := jp.ReduceGroups[0].Output
	if len(w.Consumers(link)) < 2 {
		return fmt.Errorf("trans: %s has a single consumer; use InterVertical", jpID)
	}
	readsLink := false
	for _, in := range jc.Inputs() {
		if in == link {
			readsLink = true
		}
	}
	if !readsLink {
		return fmt.Errorf("trans: %s does not consume %s", jcID, link)
	}
	if pipelineHasGrouping(jp) && len(jc.Inputs()) != 1 {
		return fmt.Errorf("trans: producer %s pipeline needs aligned input; consumer %s is multi-input", jpID, jcID)
	}
	// The merged job becomes the producer of the materialized dataset, so
	// no other consumer of that dataset may be upstream of the chosen
	// consumer — the merge would close a dependency cycle.
	for _, other := range w.Consumers(link) {
		if other.ID != jcID && PathExists(w, other.ID, jcID) {
			return fmt.Errorf("trans: consumer %s of %s is upstream of %s; packing would create a cycle", other.ID, link, jcID)
		}
	}
	return nil
}

// InterVerticalKeep packs the map-only producer jpID into consumer jcID
// while keeping the producer's output materialized for its other
// consumers: the merged job gains an extra tagged branch-and-group pair
// that runs the producer pipeline and writes the original dataset, sharing
// the input scan with the packed branch (the same wrapper-and-tagging
// machinery horizontal packing uses). One job and one read of the
// producer's input are eliminated; nothing downstream changes.
func InterVerticalKeep(w *wf.Workflow, jpID, jcID string) (*wf.Workflow, error) {
	if err := CanInterVerticalKeep(w, jpID, jcID); err != nil {
		return nil, err
	}
	out := w.Clone()
	jp, jc := out.Job(jpID), out.Job(jcID)
	pb := &jp.MapBranches[0]
	gp := &jp.ReduceGroups[0]
	link := gp.Output
	prodStages := pipelineOf(jp)
	prodProfile := compositeMapProfile(jp)
	prodKeyOut, prodValOut := finalSchema(jp)

	// Rewire the consumer's link branch(es): producer pipeline in front,
	// reading the producer's input directly.
	for bi := range jc.MapBranches {
		b := &jc.MapBranches[bi]
		if b.Input != link {
			continue
		}
		oldProf := (*wf.PipelineProfile)(nil)
		if jc.Profile != nil {
			oldProf = jc.Profile.MapProfile(*b)
		}
		b.Stages = append(cloneStageList(prodStages), b.Stages...)
		b.Input = pb.Input
		b.Filter = pb.Filter.Clone()
		b.KeyIn = append([]string(nil), pb.KeyIn...)
		b.ValIn = append([]string(nil), pb.ValIn...)
		if jc.Profile != nil {
			jc.Profile.SetMapProfile(b.Tag, b.Input,
				profile.AdjustInterVerticalIntoMap(prodProfile, oldProf))
		}
	}

	// A fresh tag materializes the producer's output for the remaining
	// consumers, sharing the packed branch's scan of the input.
	newTag := 0
	for _, g := range jc.ReduceGroups {
		if g.Tag >= newTag {
			newTag = g.Tag + 1
		}
	}
	jc.MapBranches = append(jc.MapBranches, wf.MapBranch{
		Tag:    newTag,
		Input:  pb.Input,
		Stages: cloneStageList(prodStages),
		Filter: pb.Filter.Clone(),
		KeyIn:  append([]string(nil), pb.KeyIn...),
		ValIn:  append([]string(nil), pb.ValIn...),
		KeyOut: append([]string(nil), prodKeyOut...),
		ValOut: append([]string(nil), prodValOut...),
	})
	matGroup := wf.ReduceGroup{
		Tag:    newTag,
		Output: link,
		Part:   gp.Part.Clone(),
		KeyIn:  append([]string(nil), gp.KeyIn...),
		ValIn:  append([]string(nil), gp.ValIn...),
		KeyOut: append([]string(nil), prodKeyOut...),
		ValOut: append([]string(nil), prodValOut...),
	}
	for _, c := range gp.Constraints {
		matGroup.Constraints = append(matGroup.Constraints, c.Clone())
	}
	jc.ReduceGroups = append(jc.ReduceGroups, matGroup)
	if jc.Profile != nil && prodProfile != nil {
		jc.Profile.SetMapProfile(newTag, pb.Input, prodProfile.Clone())
	}

	if jp.AlignMapToInput || pipelineHasGroupingStages(prodStages) {
		jc.AlignMapToInput = true
	}
	jc.ID = mergeIDs(jp.ID, jc.ID)
	jc.Origin = mergeOrigins(jp, jc)
	out.RemoveJob(jp.ID)
	out.GC()
	return out, nil
}

func pipelineHasGroupingStages(stages []wf.Stage) bool {
	for _, s := range stages {
		if s.Kind == wf.ReduceKind {
			return true
		}
	}
	return false
}

func cloneStageList(in []wf.Stage) []wf.Stage {
	out := make([]wf.Stage, len(in))
	for i, s := range in {
		out[i] = s.Clone()
	}
	return out
}
