package trans

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// CanHorizontal checks the preconditions of the horizontal packing
// transformation on the given jobs (Section 3.3): two or more
// concurrently-runnable single-tag jobs. When requireSameInput is true the
// classic precondition applies — all jobs must read the same dataset (scan
// sharing); false enables the paper's extension to any concurrently
// runnable set (used to pack J1 and J2 of the running example).
func CanHorizontal(w *wf.Workflow, ids []string, requireSameInput bool) error {
	if len(ids) < 2 {
		return fmt.Errorf("trans: horizontal packing needs at least two jobs")
	}
	seen := map[string]bool{}
	var sharedInput string
	for i, id := range ids {
		if seen[id] {
			return fmt.Errorf("trans: duplicate job %q", id)
		}
		seen[id] = true
		j := w.Job(id)
		if j == nil {
			return fmt.Errorf("trans: no job %q", id)
		}
		if _, err := singleGroup(j); err != nil {
			return err
		}
		if j.AlignMapToInput {
			return fmt.Errorf("trans: %s has aligned map tasks; cannot pack horizontally", id)
		}
		if j.PinnedReducers {
			return fmt.Errorf("trans: %s has a pinned reducer count; cannot pack horizontally", id)
		}
		if requireSameInput {
			ins := j.Inputs()
			if len(ins) != 1 {
				return fmt.Errorf("trans: %s reads %d datasets; same-input packing needs one", id, len(ins))
			}
			if i == 0 {
				sharedInput = ins[0]
			} else if ins[0] != sharedInput {
				return fmt.Errorf("trans: %s reads %s, others read %s", id, ins[0], sharedInput)
			}
		}
	}
	if !ConcurrentlyRunnable(w, ids) {
		return fmt.Errorf("trans: jobs %v are not concurrently runnable", ids)
	}
	// A job must not consume another packed job's output (covered by the
	// concurrency check) nor share an output dataset (impossible: one
	// producer per dataset).
	return nil
}

// Horizontal applies horizontal packing: the jobs' map (reduce) pipelines
// become parallel tagged branches (groups) of one job sharing a single
// scan, configuration, and shuffle (Figure 6). Tags are assigned in the
// given job order.
func Horizontal(w *wf.Workflow, ids []string, requireSameInput bool) (*wf.Workflow, error) {
	if err := CanHorizontal(w, ids, requireSameInput); err != nil {
		return nil, err
	}
	out := w.Clone()
	jobs := make([]*wf.Job, len(ids))
	for i, id := range ids {
		jobs[i] = out.Job(id)
	}
	packed := &wf.Job{
		ID:     mergeIDs(ids...),
		Config: mergedConfig(jobs),
		Origin: mergeOrigins(jobs...),
	}
	tagOf := make(map[string]int, len(jobs))
	for i, j := range jobs {
		tagOf[j.ID] = i
		orig := j.ReduceGroups[0].Tag
		for bi := range j.MapBranches {
			b := j.MapBranches[bi].Clone()
			b.Tag = b.Tag - orig + i
			packed.MapBranches = append(packed.MapBranches, b)
		}
		g := j.ReduceGroups[0].Clone()
		g.Tag = i
		packed.ReduceGroups = append(packed.ReduceGroups, g)
	}
	// Adjustment: merge per-tag profiles; unknown inputs poison the merge.
	packed.Profile = profile.MergeHorizontal(jobs, offsetsFromSingleTags(jobs, tagOf))
	for _, id := range ids {
		out.RemoveJob(id)
	}
	out.Jobs = append(out.Jobs, packed)
	out.GC()
	return out, nil
}

// offsetsFromSingleTags converts "new tag of job" into "offset added to the
// job's original tag" as MergeHorizontal expects.
func offsetsFromSingleTags(jobs []*wf.Job, tagOf map[string]int) map[string]int {
	out := make(map[string]int, len(jobs))
	for _, j := range jobs {
		out[j.ID] = tagOf[j.ID] - j.ReduceGroups[0].Tag
	}
	return out
}

// mergedConfig builds the single configuration a horizontally packed job
// must run with — the dependence the paper flags as a packing cost. The
// merge takes the most generous setting per knob; cost-based configuration
// search refines it afterwards.
func mergedConfig(jobs []*wf.Job) wf.Config {
	cfg := jobs[0].Config
	for _, j := range jobs[1:] {
		c := j.Config
		if c.NumReduceTasks > cfg.NumReduceTasks {
			cfg.NumReduceTasks = c.NumReduceTasks
		}
		if c.SplitSizeMB < cfg.SplitSizeMB {
			cfg.SplitSizeMB = c.SplitSizeMB
		}
		if c.SortBufferMB > cfg.SortBufferMB {
			cfg.SortBufferMB = c.SortBufferMB
		}
		if c.IOSortFactor > cfg.IOSortFactor {
			cfg.IOSortFactor = c.IOSortFactor
		}
		cfg.UseCombiner = cfg.UseCombiner || c.UseCombiner
		cfg.CompressMapOutput = cfg.CompressMapOutput || c.CompressMapOutput
		cfg.CompressOutput = cfg.CompressOutput || c.CompressOutput
	}
	return cfg
}
