package trans

import (
	"math/rand"
	"testing"

	"github.com/stubby-mr/stubby/internal/wf"
)

// TestTransformationSequencesPreserveResults is the repository's central
// property test: for randomized inputs and randomized sequences of
// applicable transformations, the transformed plan must produce sink
// datasets identical to the original plan's. This is the paper's
// correctness contract ("P- and P+ will produce the same result").
func TestTransformationSequencesPreserveResults(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		w := exampleWorkflow(true)
		pairs := genD4(3000+rng.Intn(3000), int64(trial)+100)

		// Apply a random sequence of applicable transformations.
		var applied []string
		plan := w
		for step := 0; step < 4; step++ {
			type cand struct {
				name  string
				apply func() (*wf.Workflow, error)
			}
			var cands []cand
			for _, j := range plan.Jobs {
				id := j.ID
				if CanIntraVertical(plan, id) == nil {
					cands = append(cands, cand{"intra(" + id + ")",
						func() (*wf.Workflow, error) { return IntraVertical(plan, id) }})
				}
				if CanInterVerticalReplicate(plan, id) == nil {
					cands = append(cands, cand{"replicate(" + id + ")",
						func() (*wf.Workflow, error) { return InterVerticalReplicate(plan, id) }})
				}
				for _, jc := range plan.JobConsumers(plan.Job(id)) {
					jcID := jc.ID
					if CanInterVertical(plan, id, jcID) == nil {
						cands = append(cands, cand{"inter(" + id + "," + jcID + ")",
							func() (*wf.Workflow, error) { return InterVertical(plan, id, jcID) }})
					}
					if CanInterVerticalKeep(plan, id, jcID) == nil {
						cands = append(cands, cand{"keep(" + id + "," + jcID + ")",
							func() (*wf.Workflow, error) { return InterVerticalKeep(plan, id, jcID) }})
					}
				}
				for gi := range j.ReduceGroups {
					tag := j.ReduceGroups[gi].Tag
					specs := EnumeratePartitionSpecs(plan, id, tag, 2+rng.Intn(30))
					if len(specs) > 0 {
						spec := specs[rng.Intn(len(specs))]
						cands = append(cands, cand{"partition(" + id + ")",
							func() (*wf.Workflow, error) { return ApplyPartitionSpec(plan, id, tag, spec) }})
					}
				}
			}
			var ids []string
			for _, j := range plan.Jobs {
				ids = append(ids, j.ID)
			}
			if len(ids) >= 2 && CanHorizontal(plan, sortedIDs(ids), false) == nil {
				group := sortedIDs(ids)
				cands = append(cands, cand{"horizontal",
					func() (*wf.Workflow, error) { return Horizontal(plan, group, false) }})
			}
			if len(cands) == 0 {
				break
			}
			c := cands[rng.Intn(len(cands))]
			next, err := c.apply()
			if err != nil {
				t.Fatalf("trial %d: %s failed after %v: %v", trial, c.name, applied, err)
			}
			if err := next.Validate(); err != nil {
				t.Fatalf("trial %d: %s produced invalid plan after %v: %v", trial, c.name, applied, err)
			}
			plan = next
			applied = append(applied, c.name)

			// Random configuration mutation between transformations (the
			// configuration transformation composes with all others).
			for _, j := range plan.Jobs {
				if rng.Intn(2) == 0 && !j.PinnedReducers {
					j.Config.NumReduceTasks = 1 + rng.Intn(40)
				}
				if rng.Intn(3) == 0 {
					j.Config.CompressMapOutput = !j.Config.CompressMapOutput
				}
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("trial %d: config mutation broke plan: %v", trial, err)
			}
		}
		if len(applied) == 0 {
			t.Fatalf("trial %d: no transformations applicable", trial)
		}
		assertEquivalent(t, w, plan, pairs)
	}
}
