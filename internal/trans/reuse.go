package trans

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/wf"
)

// StoredResult describes a previously materialized dataset a reuse catalog
// has matched to a rooted sub-plan fingerprint: where the result lives on
// the DFS and everything costing a scan of it needs (ReStore-style reuse —
// the catalog entry's DatasetEstimate/layout metadata).
type StoredResult struct {
	// Dataset is the DFS dataset ID the result was materialized under.
	Dataset string
	// Layout is the physical design the result was written with.
	Layout wf.Layout
	// KeyFields/ValueFields name the record fields.
	KeyFields, ValueFields []string
	// Records/Bytes/Partitions are the measured sizes of the materialized
	// result; all must be positive for the scan to be estimable.
	Records    float64
	Bytes      float64
	Partitions int
}

// CanReuse checks the preconditions for replacing the rooted sub-DAG that
// produces dsID with a scan of a stored result:
//
//   - dsID is an intermediate dataset with a producer and at least one
//     consumer (replacing a sink's producer would leave the workflow with
//     nothing to run for that output — reuse never rewrites sinks);
//   - the stored result is estimable (positive records/bytes, >= 1
//     partition), so the rewritten plan never falls out of the full
//     estimation regime its original was costed in;
//   - the producing closure is severable: no job in it writes a second
//     dataset that is consumed outside the closure or is itself a sink;
//   - the stored schema agrees with the dataset's own annotation (a
//     fingerprint match implies this; the check guards catalog corruption);
//   - the stored DFS location does not collide with a different dataset
//     already named in the workflow.
//
// A nil error means ApplyReuse with the same arguments will succeed.
func CanReuse(w *wf.Workflow, dsID string, stored StoredResult) error {
	ds := w.Dataset(dsID)
	if ds == nil {
		return fmt.Errorf("reuse: unknown dataset %q", dsID)
	}
	if ds.Base {
		return fmt.Errorf("reuse: dataset %q is a base input", dsID)
	}
	if w.Producer(dsID) == nil {
		return fmt.Errorf("reuse: dataset %q has no producer", dsID)
	}
	if len(w.Consumers(dsID)) == 0 {
		return fmt.Errorf("reuse: dataset %q is a sink", dsID)
	}
	if stored.Records <= 0 || stored.Bytes <= 0 || stored.Partitions < 1 {
		return fmt.Errorf("reuse: stored result %q has no usable size estimates", stored.Dataset)
	}
	if stored.Dataset == "" {
		return fmt.Errorf("reuse: stored result has no dataset location")
	}
	if stored.Dataset != dsID && w.Dataset(stored.Dataset) != nil {
		return fmt.Errorf("reuse: stored dataset ID %q collides with an existing dataset", stored.Dataset)
	}
	if err := schemaAgrees(ds.KeyFields, stored.KeyFields); err != nil {
		return fmt.Errorf("reuse: dataset %q key schema: %w", dsID, err)
	}
	if err := schemaAgrees(ds.ValueFields, stored.ValueFields); err != nil {
		return fmt.Errorf("reuse: dataset %q value schema: %w", dsID, err)
	}
	closure := wf.ProducingJobs(w, dsID)
	inClosure := make(map[string]bool, len(closure))
	for _, j := range closure {
		inClosure[j.ID] = true
	}
	for _, j := range closure {
		for _, out := range j.Outputs() {
			if out == dsID {
				continue
			}
			consumers := w.Consumers(out)
			if len(consumers) == 0 {
				return fmt.Errorf("reuse: removing producer %s would drop sink %q", j.ID, out)
			}
			for _, c := range consumers {
				if !inClosure[c.ID] {
					return fmt.Errorf("reuse: side output %q of %s is consumed outside the sub-DAG by %s", out, j.ID, c.ID)
				}
			}
		}
	}
	return nil
}

// schemaAgrees accepts when either side is unannotated or both list the same
// field names in order.
func schemaAgrees(have, stored []string) error {
	if have == nil || stored == nil {
		return nil
	}
	if len(have) != len(stored) {
		return fmt.Errorf("annotation has %d fields, stored result %d", len(have), len(stored))
	}
	for i := range have {
		if have[i] != stored[i] {
			return fmt.Errorf("field %d is %q, stored result has %q", i, have[i], stored[i])
		}
	}
	return nil
}

// ApplyReuse replaces the rooted sub-DAG producing dsID with a scan of the
// stored result: the producing closure's jobs are removed, dsID's consumers
// read the stored dataset as a base input annotated with the catalog's
// measured layout and sizes, and base datasets that fed only the removed
// jobs are pruned. The input plan is untouched; the returned deep copy
// validates.
func ApplyReuse(w *wf.Workflow, dsID string, stored StoredResult) (*wf.Workflow, error) {
	if err := CanReuse(w, dsID, stored); err != nil {
		return nil, err
	}
	out := w.Clone()
	closure := wf.ProducingJobs(out, dsID)

	// Base inputs that fed the removed closure; pruned below if orphaned
	// (Workflow.GC never drops base datasets).
	fedClosure := map[string]bool{}
	for _, j := range closure {
		for _, in := range j.Inputs() {
			if d := out.Dataset(in); d != nil && d.Base {
				fedClosure[in] = true
			}
		}
	}

	for _, j := range closure {
		out.RemoveJob(j.ID)
	}

	ds := out.Dataset(dsID)
	if stored.Dataset == dsID {
		// The result lives under the dataset's own ID: flip it to a base
		// input carrying the materialized layout and measured sizes.
		ds.Base = true
		ds.Layout = stored.Layout.Clone()
		ds.EstRecords = stored.Records
		ds.EstBytes = stored.Bytes
		ds.EstPartitions = stored.Partitions
		if stored.KeyFields != nil {
			ds.KeyFields = append([]string(nil), stored.KeyFields...)
		}
		if stored.ValueFields != nil {
			ds.ValueFields = append([]string(nil), stored.ValueFields...)
		}
	} else {
		// The result lives elsewhere: add it as a fresh base dataset and
		// repoint every consumer branch; the orphaned dsID is GC'd below.
		out.Datasets = append(out.Datasets, &wf.Dataset{
			ID:            stored.Dataset,
			Base:          true,
			Layout:        stored.Layout.Clone(),
			KeyFields:     append([]string(nil), stored.KeyFields...),
			ValueFields:   append([]string(nil), stored.ValueFields...),
			EstRecords:    stored.Records,
			EstBytes:      stored.Bytes,
			EstPartitions: stored.Partitions,
		})
		for _, j := range out.Jobs {
			for bi := range j.MapBranches {
				if j.MapBranches[bi].Input == dsID {
					j.MapBranches[bi].Input = stored.Dataset
				}
			}
		}
	}
	out.GC()
	var kept []*wf.Dataset
	for _, d := range out.Datasets {
		if fedClosure[d.ID] && len(out.Consumers(d.ID)) == 0 {
			continue
		}
		kept = append(kept, d)
	}
	out.Datasets = kept
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("reuse: rewritten plan invalid: %w", err)
	}
	return out, nil
}
