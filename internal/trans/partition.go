package trans

import (
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// ApplyPartitionSpec returns a transformed copy where the given job group's
// partition function is replaced (Section 3.4). The new spec must satisfy
// every current condition on the group's partition function — constraints
// imposed by earlier packings, plus the group's own reduce-side grouping
// requirement.
func ApplyPartitionSpec(w *wf.Workflow, jobID string, tag int, spec keyval.PartitionSpec) (*wf.Workflow, error) {
	j := w.Job(jobID)
	if j == nil {
		return nil, fmt.Errorf("trans: no job %q", jobID)
	}
	g := j.Group(tag)
	if g == nil {
		return nil, fmt.Errorf("trans: job %s has no group %d", jobID, tag)
	}
	if g.MapOnly() {
		return nil, fmt.Errorf("trans: group %d of %s is map-only; no partition function", tag, jobID)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if g.KeyIn != nil {
		for _, f := range spec.KeyFields {
			if f < 0 || f >= len(g.KeyIn) {
				return nil, fmt.Errorf("trans: partition field %d out of K2 range", f)
			}
		}
		for _, f := range spec.SortFields {
			if f < 0 || f >= len(g.KeyIn) {
				return nil, fmt.Errorf("trans: sort field %d out of K2 range", f)
			}
		}
	}
	if err := checkPartitionConstraints(g, spec); err != nil {
		return nil, fmt.Errorf("trans: %s group %d: %w", jobID, tag, err)
	}
	if err := groupingPreserved(g, spec); err != nil {
		return nil, fmt.Errorf("trans: %s group %d: %w", jobID, tag, err)
	}
	if j.PinnedReducers && spec.NumPartitions(j.Config.NumReduceTasks) != j.Config.NumReduceTasks {
		return nil, fmt.Errorf("trans: %s group %d: partition count pinned to %d by an alignment postcondition",
			jobID, tag, j.Config.NumReduceTasks)
	}
	out := w.Clone()
	out.Job(jobID).Group(tag).Part = spec.Clone()
	return out, nil
}

// EnumeratePartitionSpecs proposes alternative partition functions for a
// group, beyond its current one:
//
//   - range partitioning on the current partition fields with equi-depth
//     split points derived from the profile's map-output key sample
//     (reduces skew — Section 3.4, first benefit);
//   - range partitioning aligned to the filter annotations of the jobs
//     consuming the group's output, enabling partition pruning (Figure 7 —
//     second benefit).
//
// Only specs that pass ApplyPartitionSpec's checks are returned.
// targetParts sizes the split-point count (the desired reduce-side
// parallelism, typically the cluster's reduce slots); zero falls back to
// the job's configured reducer count.
func EnumeratePartitionSpecs(w *wf.Workflow, jobID string, tag int, targetParts int) []keyval.PartitionSpec {
	j := w.Job(jobID)
	if j == nil {
		return nil
	}
	g := j.Group(tag)
	if g == nil || g.MapOnly() || g.KeyIn == nil {
		return nil
	}
	var sample []keyval.Tuple
	if j.Profile != nil {
		if mp := j.Profile.MapSide[tag]; mp != nil {
			sample = mp.KeySample
		}
	}
	var out []keyval.PartitionSpec
	tryAdd := func(spec keyval.PartitionSpec) {
		if spec.Validate() != nil || len(spec.SplitPoints) == 0 {
			return
		}
		if checkPartitionConstraints(g, spec) != nil || groupingPreserved(g, spec) != nil {
			return
		}
		if j.PinnedReducers && spec.NumPartitions(j.Config.NumReduceTasks) != j.Config.NumReduceTasks {
			return
		}
		for _, prev := range out {
			if prev.Equal(spec) {
				return
			}
		}
		out = append(out, spec)
	}

	curKey := g.Part.EffectiveKeyFields(len(g.KeyIn))
	curSort := g.Part.EffectiveSortFields(len(g.KeyIn))
	n := targetParts
	if n < 2 {
		n = j.Config.NumReduceTasks
	}
	// Split-point quality is bounded by the sample: demand at least ~15
	// sampled keys per boundary or the ranges would be noise.
	if cap := len(sample) / 15; n > cap {
		n = cap
	}
	if n < 2 {
		n = 2
	}

	// 1. Equi-depth range partitioning on the current partition fields.
	if len(sample) > 0 {
		points := keyval.EquiDepthSplitPoints(sample, curKey, n)
		tryAdd(keyval.PartitionSpec{
			Type:        keyval.RangePartition,
			KeyFields:   append([]int(nil), curKey...),
			SortFields:  append([]int(nil), curSort...),
			SplitPoints: points,
		})
	}

	// 2. Filter-aligned range partitioning for partition pruning: for each
	// consumer filter over a field of this group's output key, partition on
	// that field with split points at the filter boundaries (plus
	// equi-depth refinement from the sample).
	for _, field := range consumerFilterFields(w, g.Output) {
		idx := wf.FieldIndex(g.KeyIn, field)
		if idx < 0 || wf.FieldIndex(g.KeyOut, field) < 0 {
			continue
		}
		var points []keyval.Tuple
		for _, b := range consumerFilterBounds(w, g.Output, field) {
			points = append(points, keyval.T(b))
		}
		if len(sample) > 0 {
			points = append(points, keyval.EquiDepthSplitPoints(sample, []int{idx}, n)...)
		}
		points = sortDedupPoints(points)
		// Sort order must start with the partition field to keep range
		// bounds aligned with the data; keep covering the grouping.
		sortIdx := append([]int{idx}, removeInt(curSort, idx)...)
		tryAdd(keyval.PartitionSpec{
			Type:        keyval.RangePartition,
			KeyFields:   []int{idx},
			SortFields:  sortIdx,
			SplitPoints: points,
		})
	}
	return out
}

// consumerFilterFields returns the distinct fields on which consumers of a
// dataset declare filter annotations, in consumer order.
func consumerFilterFields(w *wf.Workflow, dsID string) []string {
	var out []string
	seen := map[string]bool{}
	for _, jc := range w.Consumers(dsID) {
		for i := range jc.MapBranches {
			b := &jc.MapBranches[i]
			if b.Input == dsID && b.Filter != nil && !seen[b.Filter.Field] {
				seen[b.Filter.Field] = true
				out = append(out, b.Filter.Field)
			}
		}
	}
	return out
}

// consumerFilterBounds collects the finite interval endpoints of consumer
// filters over the given field.
func consumerFilterBounds(w *wf.Workflow, dsID, field string) []keyval.Field {
	var out []keyval.Field
	for _, jc := range w.Consumers(dsID) {
		for i := range jc.MapBranches {
			b := &jc.MapBranches[i]
			if b.Input != dsID || b.Filter == nil || b.Filter.Field != field {
				continue
			}
			if b.Filter.Interval.Lo != nil {
				out = append(out, b.Filter.Interval.Lo)
			}
			if b.Filter.Interval.Hi != nil {
				out = append(out, b.Filter.Interval.Hi)
			}
		}
	}
	return out
}

func sortDedupPoints(points []keyval.Tuple) []keyval.Tuple {
	keyval.SortTuples(points)
	var out []keyval.Tuple
	for _, p := range points {
		if len(out) == 0 || keyval.Compare(out[len(out)-1], p) < 0 {
			out = append(out, p)
		}
	}
	return out
}

func removeInt(xs []int, v int) []int {
	var out []int
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
